(* Quickstart: build a circuit, break it, measure it, diagnose it.

   Run with:  dune exec examples/quickstart.exe *)

module Interval = Flames_fuzzy.Interval
module Component = Flames_circuit.Component
module Netlist = Flames_circuit.Netlist
module Quantity = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault
module Mna = Flames_sim.Mna
module Measure = Flames_sim.Measure
module Diagnose = Flames_core.Diagnose
module Report = Flames_core.Report

let () =
  (* 1. Describe the circuit.  Component parameters are fuzzy intervals,
     so manufacturing tolerances are part of the model: a 10 kΩ ±1 %
     resistor is [around 10e3 ~rel:0.01]. *)
  let circuit =
    Netlist.make ~name:"quickstart-divider" ~ground:"gnd"
      [
        Component.vsource "vin"
          ~volts:(Interval.number 10. ~spread:0.05)
          ~p:"in" ~n:"gnd";
        Component.resistor "r1"
          ~ohms:(Interval.around 10e3 ~rel:0.01)
          ~p:"in" ~n:"mid";
        Component.resistor "r2"
          ~ohms:(Interval.around 10e3 ~rel:0.01)
          ~p:"mid" ~n:"gnd";
      ]
  in

  (* 2. Break it: r2 drifts 40 % high — a soft fault, well outside the
     1 % tolerance but far from a hard open. *)
  let faulty = Fault.inject circuit (Fault.shifted "r2" ~parameter:"R" 14e3) in

  (* 3. Measure the faulty board (the MNA simulator stands in for the
     bench; measurements carry the instrument's imprecision). *)
  let bench = Mna.solve faulty in
  let observations =
    Measure.probe_all bench [ Quantity.voltage "in"; Quantity.voltage "mid" ]
  in
  Format.printf "measured: %s@.@."
    (String.concat ", "
       (List.map
          (fun (q, v) ->
            Format.asprintf "%a = %.3f V" Quantity.pp q (Interval.centroid v))
          observations));

  (* 4. Diagnose against the healthy model. *)
  let result = Diagnose.run circuit observations in
  Format.printf "%a@." Report.pp_result result;
  Format.printf "%s@." (Report.summary result)
