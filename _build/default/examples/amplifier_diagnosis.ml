(* The paper's flagship scenario (figs. 6–7): soft and hard faults on the
   three-stage amplifier, diagnosed from three voltage probes, with the
   graded Dc consistency degrees doing the ranking and fault-model
   fitting doing the final discrimination.

   Run with:  dune exec examples/amplifier_diagnosis.exe *)

module Interval = Flames_fuzzy.Interval
module Quantity = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault
module Library = Flames_circuit.Library
module Mna = Flames_sim.Mna
module Measure = Flames_sim.Measure
module Diagnose = Flames_core.Diagnose

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Measure.relative = 0.002; floor = 5e-4 }
let probes = [ "vs"; "n2"; "v1" ]

let diagnose_defect label fault =
  let nominal = Library.three_stage_amplifier ~tolerance:0.005 () in
  let faulty = fault nominal in
  let bench = Mna.solve faulty in
  let observations =
    Measure.probe_all ~instrument bench (List.map Quantity.voltage probes)
  in
  let r = Diagnose.run ~config nominal observations in
  Format.printf "── defect: %s@." label;
  List.iter
    (fun (s : Diagnose.symptom) ->
      match s.Diagnose.verdict with
      | Some v ->
        Format.printf "   %a: %a@." Quantity.pp s.Diagnose.quantity
          Flames_fuzzy.Consistency.pp_verdict v
      | None -> ())
    r.Diagnose.symptoms;
  let explainers =
    List.filter (fun (s : Diagnose.suspect) -> s.Diagnose.explains) r.Diagnose.suspects
  in
  if explainers = [] then
    Format.printf "   no single-fault explanation found@."
  else
    List.iter
      (fun (s : Diagnose.suspect) ->
        List.iter
          (fun (e : Diagnose.mode_estimate) ->
            match (e.Diagnose.estimated, e.Diagnose.fit_residual) with
            | Some v, Some residual when residual <= Diagnose.fit_threshold ->
              Format.printf
                "   %s.%s ≈ %.4g would explain every probe%s@."
                s.Diagnose.component e.Diagnose.parameter v
                (match e.Diagnose.modes with
                | (m, d) :: _ ->
                  Format.asprintf " (%a @@ %.2f)" Fault.pp_mode m d
                | [] -> "")
            | (Some _ | None), (Some _ | None) -> ())
          s.Diagnose.estimates)
      explainers;
  Format.printf "@."

let () =
  Format.printf
    "FLAMES on the fig-6 three-stage amplifier, probing %s only:@.@."
    (String.concat ", " probes);
  diagnose_defect "healthy board" (fun n -> n);
  diagnose_defect "R2 short-circuited"
    (fun n -> Fault.inject n (Fault.short "r2" ~parameter:"R"));
  diagnose_defect "R2 slightly high (12 kΩ → 12.18 kΩ, +1.5 %)"
    (fun n -> Fault.inject n (Fault.shifted "r2" ~parameter:"R" 12.18e3));
  diagnose_defect "beta2 slightly low (200 → 194)"
    (fun n -> Fault.inject n (Fault.shifted "t2" ~parameter:"beta" 194.));
  diagnose_defect "R3 open-circuited"
    (fun n -> Fault.inject n (Fault.opened "r3" ~parameter:"R"));
  diagnose_defect "node N1 broken"
    (fun n -> Fault.open_node n "n1")
