examples/amplifier_diagnosis.mli:
