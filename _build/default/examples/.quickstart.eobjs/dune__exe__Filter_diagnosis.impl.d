examples/filter_diagnosis.ml: Flames_circuit Flames_core Flames_sim Float Format List
