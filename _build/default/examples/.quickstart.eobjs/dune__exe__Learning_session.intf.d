examples/learning_session.mli:
