examples/test_sequencing.mli:
