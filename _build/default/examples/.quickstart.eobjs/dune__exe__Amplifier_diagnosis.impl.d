examples/amplifier_diagnosis.ml: Flames_circuit Flames_core Flames_fuzzy Flames_sim Format List String
