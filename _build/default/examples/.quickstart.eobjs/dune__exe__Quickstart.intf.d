examples/quickstart.mli:
