examples/filter_diagnosis.mli:
