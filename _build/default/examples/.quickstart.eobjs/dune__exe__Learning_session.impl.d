examples/learning_session.ml: Flames_circuit Flames_core Flames_learning Flames_sim Format List
