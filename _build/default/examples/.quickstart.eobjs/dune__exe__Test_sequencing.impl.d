examples/test_sequencing.ml: Flames_circuit Flames_core Flames_fuzzy Flames_sim Flames_strategy Format List String
