(* Learning from experience (paper section 7): FLAMES diagnoses the same
   board model over a series of repair episodes, the expert confirms the
   culprit each time, and the knowledge base turns the episodes into
   symptom→failure rules that advise later diagnoses.

   Run with:  dune exec examples/learning_session.exe *)

module Quantity = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault
module Library = Flames_circuit.Library
module Measure = Flames_sim.Measure
module Diagnose = Flames_core.Diagnose
module Kb = Flames_learning.Knowledge_base
module Experience = Flames_learning.Experience

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Measure.relative = 0.002; floor = 5e-4 }

let diagnose fault =
  let nominal = Library.three_stage_amplifier ~tolerance:0.005 () in
  let faulty = Fault.inject nominal fault in
  let bench = Flames_sim.Mna.solve faulty in
  let observations =
    Measure.probe_all ~instrument bench
      (List.map Quantity.voltage [ "vs"; "n2"; "v1" ])
  in
  Diagnose.run ~config nominal observations

let () =
  let kb = Kb.create () in
  (* the expert knows from the field that this resistor family fails
     often: an a-priori estimation, usable before any episode *)
  Kb.add_prior kb ~component:"r2" 0.4;

  Format.printf "=== repair episodes (defect: r2 short) ===@.";
  for episode = 1 to 3 do
    let r = diagnose (Fault.short "r2" ~parameter:"R") in
    let recorded =
      Experience.record kb
        { Experience.result = r; confirmed = "r2"; mode = Some Fault.Short }
    in
    let certainty =
      match Kb.rules_for kb ~circuit:"three-stage-amplifier" with
      | rule :: _ -> rule.Flames_learning.Rule.certainty
      | [] -> 0.
    in
    Format.printf "episode %d: expert confirms r2 (recorded: %b), rule certainty %.3g@."
      episode recorded certainty
  done;

  Format.printf "@.=== knowledge base ===@.%a@.@." Kb.pp kb;

  Format.printf "=== a fresh board with the same symptoms ===@.";
  let fresh = diagnose (Fault.short "r2" ~parameter:"R") in
  (match Experience.suggest kb fresh with
  | (component, confidence) :: _ ->
    Format.printf "experience says: suspect %s (confidence %.2f)@." component
      confidence
  | [] -> Format.printf "no advice@.");
  Format.printf "combined ranking (model + priors + rules):@.";
  List.iteri
    (fun i (component, score) ->
      if i < 5 then Format.printf "  %d. %s (%.3g)@." (i + 1) component score)
    (Experience.rerank kb fresh);

  Format.printf "@.=== a different defect must not trigger the rule ===@.";
  let other = diagnose (Fault.opened "r3" ~parameter:"R") in
  match Experience.suggest kb other with
  | [] -> Format.printf "no advice, as expected@."
  | advice ->
    List.iter
      (fun (c, d) -> Format.printf "weak advice: %s @@ %.2f@." c d)
      advice
