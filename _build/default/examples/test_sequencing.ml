(* Interactive-style test sequencing (paper section 8): after each probe
   the strategy unit recommends the next best test point by fuzzy
   expected entropy, and stops when one suspect dominates.

   Run with:  dune exec examples/test_sequencing.exe *)

module Interval = Flames_fuzzy.Interval
module Quantity = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault
module Library = Flames_circuit.Library
module Measure = Flames_sim.Measure
module Diagnose = Flames_core.Diagnose
module Estimation = Flames_strategy.Estimation
module Best_test = Flames_strategy.Best_test

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Measure.relative = 0.002; floor = 5e-4 }

let () =
  let nominal = Library.three_stage_amplifier ~tolerance:0.005 () in
  (* the hidden defect the session is supposed to find *)
  let faulty = Fault.inject nominal (Fault.short "r2" ~parameter:"R") in
  let bench = Flames_sim.Mna.solve faulty in
  let probe node =
    Measure.probe_all ~instrument bench [ Quantity.voltage node ]
  in
  let all_tests = Best_test.test_points_of_netlist nominal in
  let node_of = function
    | Quantity.Node_voltage n -> Some n
    | Quantity.Branch_current _ | Quantity.Terminal_current _
    | Quantity.Voltage_drop _ | Quantity.Parameter _ ->
      None
  in
  Format.printf "hidden defect: r2 short; starting from the output probe@.@.";
  let rec session observations probed step =
    let r = Diagnose.run ~config nominal observations in
    let estimations = Estimation.of_diagnosis r in
    let entropy = Best_test.system_entropy estimations in
    Format.printf "step %d: %d probe(s), system entropy %.3g@." step
      (List.length observations)
      (Interval.centroid entropy);
    let explainers =
      List.filter
        (fun (s : Diagnose.suspect) -> s.Diagnose.explains)
        r.Diagnose.suspects
      |> List.map (fun (s : Diagnose.suspect) -> s.Diagnose.component)
    in
    Format.printf "   single-fault explanations: %s@."
      (if explainers = [] then "(none yet)" else String.concat ", " explainers);
    if List.length explainers = 1 || step >= 4 then begin
      Format.printf "@.session over after %d probes: suspect %s@."
        (List.length observations)
        (match explainers with c :: _ -> c | [] -> "(ambiguous)")
    end
    else begin
      let remaining =
        List.filter
          (fun (t : Best_test.test_point) ->
            match node_of t.Best_test.quantity with
            | Some n -> not (List.mem n probed)
            | None -> false)
          all_tests
      in
      match Best_test.best estimations remaining with
      | None -> Format.printf "no further test available@."
      | Some e -> begin
        match node_of e.Best_test.test.Best_test.quantity with
        | Some node ->
          Format.printf "   recommended next probe: %s (%a)@.@." node
            Best_test.pp_evaluation e;
          session (observations @ probe node) (node :: probed) (step + 1)
        | None -> ()
      end
    end
  in
  session (probe "vs") [ "vs" ] 1
