(* Dynamic-mode diagnosis (the paper's "dynamic mode"): a drifted
   capacitor in an RC low-pass and a drifted inductor in an RLC band-pass
   are found from output-magnitude measurements at a few frequencies.

   Run with:  dune exec examples/filter_diagnosis.exe *)

module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Ac = Flames_sim.Ac
module Dynamic = Flames_core.Dynamic

let show_response label netlist frequencies =
  Format.printf "%s frequency response:@." label;
  List.iter
    (fun f ->
      let r = Ac.solve netlist f in
      Format.printf "   %8.1f Hz: %6.2f dB@." f (Ac.gain_db r "out"))
    frequencies;
  Format.printf "@."

let diagnose label netlist ~trusted fault frequencies =
  let faulty = F.inject netlist fault in
  let observations =
    List.map
      (fun frequency ->
        Dynamic.observe ~source:"vin" faulty ~node:"out" ~frequency)
      frequencies
  in
  Format.printf "── %s@." label;
  let r = Dynamic.run ~trusted netlist observations in
  Format.printf "%a@." Dynamic.pp_result r;
  List.iter
    (fun (s : Dynamic.suspect) ->
      if s.Dynamic.explains then
        List.iter
          (fun (e : Dynamic.mode_estimate) ->
            match e.Dynamic.estimated with
            | Some v ->
              Format.printf "   fitted %s.%s ≈ %.3g (nominal %.3g)@."
                s.Dynamic.component e.Dynamic.parameter v e.Dynamic.nominal
            | None -> ())
          s.Dynamic.estimates)
    r.Dynamic.suspects;
  Format.printf "@."

let () =
  let rc = L.rc_lowpass () in
  let corner = 1. /. (2. *. Float.pi *. 10e3 *. 10e-9) in
  show_response "RC low-pass" rc [ corner /. 10.; corner; corner *. 10. ];
  diagnose "RC low-pass, C1 drifted 10 nF → 15 nF" rc ~trusted:[ "vin" ]
    (F.shifted "c1" ~parameter:"C" 15e-9)
    [ corner /. 8.; corner; corner *. 5. ];

  let rlc = L.rlc_bandpass () in
  let f0 = 1. /. (2. *. Float.pi *. Float.sqrt (10e-3 *. 100e-9)) in
  show_response "RLC band-pass" rlc [ f0 /. 5.; f0; f0 *. 5. ];
  diagnose "RLC band-pass, L1 drifted 10 mH → 15 mH" rlc ~trusted:[ "vin" ]
    (F.shifted "l1" ~parameter:"L" 15e-3)
    [ f0 /. 3.; f0; f0 *. 3. ]
