(* Tests for the dynamic-mode substrate: complex linear algebra, the AC
   phasor solver on textbook filters, and the frequency-domain diagnosis
   driver. *)

module I = Flames_fuzzy.Interval
module C = Flames_circuit.Component
module N = Flames_circuit.Netlist
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Clinalg = Flames_sim.Clinalg
module Ac = Flames_sim.Ac
module Mna = Flames_sim.Mna
module Dynamic = Flames_core.Dynamic

let check_bool = Alcotest.(check bool)
let check_close msg tol expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* {1 Complex linear algebra} *)

let c re im = { Complex.re; im }

let test_clinalg_identity () =
  let a = [| [| c 1. 0.; c 0. 0. |]; [| c 0. 0.; c 1. 0. |] |] in
  let b = [| c 3. 1.; c 4. (-2.) |] in
  let x = Clinalg.solve a b in
  check_close "x0 re" 1e-12 3. x.(0).Complex.re;
  check_close "x0 im" 1e-12 1. x.(0).Complex.im;
  check_close "x1 re" 1e-12 4. x.(1).Complex.re

let test_clinalg_complex_pivot () =
  (* purely imaginary diagonal forces complex arithmetic *)
  let a = [| [| c 0. 2.; c 1. 0. |]; [| c 1. 0.; c 0. 0. |] |] in
  let b = [| c 0. 2.; c 5. 0. |] in
  let x = Clinalg.solve a b in
  (* x1 from second row: x0 = 5; first row: 2j·5 + x1 = 2j → x1 = 2j − 10j *)
  check_close "x0" 1e-12 5. x.(0).Complex.re;
  check_close "x1 im" 1e-12 (-8.) x.(1).Complex.im;
  check_bool "residual tiny" true (Clinalg.residual_norm a x b < 1e-9)

let test_clinalg_dimension_mismatch () =
  match Clinalg.solve [| [| c 1. 0. |] |] [| c 1. 0.; c 2. 0. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dimension mismatch must raise"

let test_clinalg_singular () =
  let a = [| [| c 1. 1.; c 2. 2. |]; [| c 2. 2.; c 4. 4. |] |] in
  match Clinalg.solve a [| c 1. 0.; c 2. 0. |] with
  | exception Clinalg.Singular -> ()
  | _ -> Alcotest.fail "singular complex matrix must raise"

(* {1 AC solver on textbook filters} *)

let test_rc_lowpass_response () =
  let rc = L.rc_lowpass () in
  (* corner frequency 1/(2πRC) = 1591.5 Hz: −3 dB, 45° lag *)
  let corner = 1. /. (2. *. Float.pi *. 10e3 *. 10e-9) in
  let r = Ac.solve rc corner in
  check_close "corner magnitude" 1e-3 (1. /. Float.sqrt 2.)
    (Ac.magnitude r "out");
  check_close "corner phase" 1e-3 (-.Float.pi /. 4.) (Ac.phase r "out");
  (* passband ≈ unity, one decade above ≈ −20 dB *)
  check_close "passband" 1e-2 1.
    (Ac.magnitude (Ac.solve rc (corner /. 100.)) "out");
  check_close "one decade above" 0.3 (-20.)
    (Ac.gain_db (Ac.solve rc (corner *. 10.)) "out")

let test_rlc_resonance () =
  let rlc = L.rlc_bandpass () in
  let f0 = 1. /. (2. *. Float.pi *. Float.sqrt (10e-3 *. 100e-9)) in
  check_close "unity at resonance" 1e-3 1.
    (Ac.magnitude (Ac.solve rlc f0) "out");
  check_bool "attenuated off resonance" true
    (Ac.magnitude (Ac.solve rlc (f0 /. 5.)) "out" < 0.5
    && Ac.magnitude (Ac.solve rlc (f0 *. 5.)) "out" < 0.5)

let test_sallen_key_second_order () =
  let sk = L.sallen_key_lowpass () in
  let corner = 1. /. (2. *. Float.pi *. 10e3 *. 10e-9) in
  (* a second-order filter falls at −40 dB/decade *)
  let two_decades = Ac.gain_db (Ac.solve sk (corner *. 100.)) "out" in
  check_close "-80 dB two decades up" 1. (-80.) two_decades;
  check_close "unity in passband" 1e-2 1.
    (Ac.magnitude (Ac.solve sk (corner /. 100.)) "out")

let test_ac_source_selection () =
  let rc = L.rc_lowpass () in
  (* driving explicitly by name is the same as the default *)
  let a = Ac.solve ~source:"vin" rc 1000. and b = Ac.solve rc 1000. in
  check_close "same response" 1e-12 (Ac.magnitude a "out") (Ac.magnitude b "out")

let test_ac_rejects_nonlinear () =
  let amp = L.three_stage_amplifier () in
  match Ac.solve amp 1000. with
  | exception Ac.Unsupported _ -> ()
  | _ -> Alcotest.fail "BJTs must be rejected by the AC solver"

let test_ac_invalid_frequency () =
  match Ac.solve (L.rc_lowpass ()) 0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero frequency must be rejected"

let test_rlc_phase_at_resonance () =
  (* at resonance the series RLC is purely resistive: zero phase *)
  let rlc = L.rlc_bandpass () in
  let f0 = 1. /. (2. *. Float.pi *. Float.sqrt (10e-3 *. 100e-9)) in
  check_close "zero phase" 1e-3 0. (Ac.phase (Ac.solve rlc f0) "out");
  check_close "0 dB" 1e-2 0. (Ac.gain_db (Ac.solve rlc f0) "out")

let test_ac_no_source () =
  let net =
    N.make ~ports:[ "in" ] ~name:"passive" ~ground:"gnd"
      [
        C.resistor "r1" ~ohms:(I.crisp 1e3) ~p:"in" ~n:"out";
        C.resistor "r2" ~ohms:(I.crisp 1e3) ~p:"out" ~n:"gnd";
      ]
  in
  match Ac.solve net 1000. with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "a circuit without a source must be rejected"

let test_ac_sweep () =
  let rs = Ac.sweep (L.rc_lowpass ()) [ 100.; 1000.; 10000. ] in
  Alcotest.(check int) "three points" 3 (List.length rs);
  let mags = List.map (fun r -> Ac.magnitude r "out") rs in
  check_bool "monotone low-pass" true
    (List.sort (fun a b -> Float.compare b a) mags = mags)

(* {1 Reactive components at DC} *)

let test_capacitor_open_at_dc () =
  let net =
    N.make ~name:"rc-dc" ~ground:"gnd"
      [
        C.vsource "vin" ~volts:(I.crisp 5.) ~p:"in" ~n:"gnd";
        C.resistor "r1" ~ohms:(I.crisp 1e3) ~p:"in" ~n:"out";
        C.capacitor "c1" ~farads:(I.crisp 1e-6) ~p:"out" ~n:"gnd";
      ]
  in
  let sol = Mna.solve net in
  (* no DC current: the output settles at the source voltage *)
  check_close "output at vin" 1e-6 5. (Mna.voltage sol "out");
  check_close "no current" 1e-8 0. (Mna.current sol "r1")

let test_inductor_short_at_dc () =
  let net =
    N.make ~name:"rl-dc" ~ground:"gnd"
      [
        C.vsource "vin" ~volts:(I.crisp 5.) ~p:"in" ~n:"gnd";
        C.resistor "r1" ~ohms:(I.crisp 1e3) ~p:"in" ~n:"out";
        C.inductor "l1" ~henries:(I.crisp 1e-3) ~p:"out" ~n:"gnd";
      ]
  in
  let sol = Mna.solve net in
  check_close "inductor shorts the output" 1e-9 0. (Mna.voltage sol "out");
  check_close "full current" 1e-9 5e-3 (Mna.current sol "l1")

(* {1 Dynamic-mode diagnosis} *)

let corner = 1. /. (2. *. Float.pi *. 10e3 *. 10e-9)
let freqs = [ corner /. 8.; corner; corner *. 5. ]

let observe_faulty nominal fault =
  let faulty = F.inject nominal fault in
  List.map
    (fun frequency ->
      Dynamic.observe ~source:"vin" faulty ~node:"out" ~frequency)
    freqs

let test_dynamic_healthy () =
  let rc = L.rc_lowpass () in
  let obs =
    List.map
      (fun frequency -> Dynamic.observe ~source:"vin" rc ~node:"out" ~frequency)
      freqs
  in
  let r = Dynamic.run ~trusted:[ "vin" ] rc obs in
  check_bool "healthy" true (Dynamic.healthy r)

let test_dynamic_detects_drift () =
  let rc = L.rc_lowpass () in
  let obs = observe_faulty rc (F.shifted "c1" ~parameter:"C" 15e-9) in
  let r = Dynamic.run ~trusted:[ "vin" ] rc obs in
  check_bool "detected" true (not (Dynamic.healthy r));
  (* single-pole RC: R and C are degenerate (only the product matters),
     so both are implicated and both explain *)
  check_bool "c1 implicated" true
    (List.exists
       (fun (s : Dynamic.suspect) ->
         s.Dynamic.component = "c1" && s.Dynamic.suspicion > 0.5)
       r.Dynamic.suspects);
  check_bool "c1 explains" true
    (List.exists
       (fun (s : Dynamic.suspect) ->
         s.Dynamic.component = "c1" && s.Dynamic.explains)
       r.Dynamic.suspects)

let test_dynamic_fit_recovers_value () =
  let rc = L.rc_lowpass () in
  let obs = observe_faulty rc (F.shifted "c1" ~parameter:"C" 15e-9) in
  let r = Dynamic.run ~trusted:[ "vin" ] rc obs in
  let c1 =
    List.find
      (fun (s : Dynamic.suspect) -> s.Dynamic.component = "c1")
      r.Dynamic.suspects
  in
  let estimate =
    List.find_map
      (fun (e : Dynamic.mode_estimate) ->
        if e.Dynamic.parameter = "C" then e.Dynamic.estimated else None)
      c1.Dynamic.estimates
  in
  match estimate with
  | Some v -> check_close "fitted C ≈ 15 nF" 1e-9 15e-9 v
  | None -> Alcotest.fail "no fitted value for c1.C"

let test_dynamic_rlc_separates_l_and_r () =
  (* in the band-pass, an R fault changes the bandwidth but not the
     resonance; an L fault moves the resonance: measuring on and around
     the resonance separates them *)
  let rlc = L.rlc_bandpass () in
  let f0 = 1. /. (2. *. Float.pi *. Float.sqrt (10e-3 *. 100e-9)) in
  let fs = [ f0 /. 3.; f0; f0 *. 3. ] in
  let diagnose fault =
    let faulty = F.inject rlc fault in
    let obs =
      List.map
        (fun frequency ->
          Dynamic.observe ~source:"vin" faulty ~node:"out" ~frequency)
        fs
    in
    Dynamic.run ~trusted:[ "vin" ] rlc obs
  in
  let l_fault = diagnose (F.shifted "l1" ~parameter:"L" 15e-3) in
  check_bool "L drift detected" true (not (Dynamic.healthy l_fault));
  let explains r name =
    List.exists
      (fun (s : Dynamic.suspect) ->
        s.Dynamic.component = name && s.Dynamic.explains)
      r.Dynamic.suspects
  in
  check_bool "l1 explains the L-fault response" true (explains l_fault "l1");
  check_bool "r1 does not explain the L-fault response" false
    (explains l_fault "r1")

let test_dynamic_hard_fault () =
  let rc = L.rc_lowpass () in
  let obs = observe_faulty rc (F.short "c1" ~parameter:"C") in
  (* C short = ratio 1e-6 of 10 nF… a shorted capacitor in AC terms means
     huge capacitance; inject as parameter low = tiny C = open in the AC
     sense.  Either way the response deviates hard. *)
  let r = Dynamic.run ~trusted:[ "vin" ] rc obs in
  check_bool "hard deviation detected" true (not (Dynamic.healthy r));
  check_bool "hard conflict" true
    (List.exists
       (fun (c : Flames_atms.Candidates.conflict) ->
         c.Flames_atms.Candidates.degree > 0.9)
       r.Dynamic.conflicts)

let test_dynamic_sallen_key () =
  let sk = L.sallen_key_lowpass () in
  let fs = [ corner /. 8.; corner; corner *. 4. ] in
  let faulty = F.inject sk (F.shifted "c2" ~parameter:"C" 22e-9) in
  let obs =
    List.map
      (fun frequency ->
        Dynamic.observe ~source:"vin" faulty ~node:"out" ~frequency)
      fs
  in
  let r = Dynamic.run ~trusted:[ "vin"; "amp" ] sk obs in
  check_bool "active-filter fault detected" true (not (Dynamic.healthy r));
  check_bool "c2 implicated" true
    (List.exists
       (fun (s : Dynamic.suspect) ->
         s.Dynamic.component = "c2" && s.Dynamic.suspicion > 0.3)
       r.Dynamic.suspects)

let () =
  Alcotest.run "ac"
    [
      ( "clinalg",
        [
          Alcotest.test_case "identity" `Quick test_clinalg_identity;
          Alcotest.test_case "complex pivot" `Quick test_clinalg_complex_pivot;
          Alcotest.test_case "singular" `Quick test_clinalg_singular;
          Alcotest.test_case "dimensions" `Quick
            test_clinalg_dimension_mismatch;
        ] );
      ( "solver",
        [
          Alcotest.test_case "rc lowpass" `Quick test_rc_lowpass_response;
          Alcotest.test_case "rlc resonance" `Quick test_rlc_resonance;
          Alcotest.test_case "sallen-key" `Quick test_sallen_key_second_order;
          Alcotest.test_case "source selection" `Quick
            test_ac_source_selection;
          Alcotest.test_case "rejects nonlinear" `Quick
            test_ac_rejects_nonlinear;
          Alcotest.test_case "invalid frequency" `Quick
            test_ac_invalid_frequency;
          Alcotest.test_case "sweep" `Quick test_ac_sweep;
          Alcotest.test_case "phase at resonance" `Quick
            test_rlc_phase_at_resonance;
          Alcotest.test_case "no source" `Quick test_ac_no_source;
        ] );
      ( "reactive-dc",
        [
          Alcotest.test_case "capacitor open" `Quick
            test_capacitor_open_at_dc;
          Alcotest.test_case "inductor short" `Quick
            test_inductor_short_at_dc;
        ] );
      ( "dynamic-diagnosis",
        [
          Alcotest.test_case "healthy" `Quick test_dynamic_healthy;
          Alcotest.test_case "detects drift" `Quick
            test_dynamic_detects_drift;
          Alcotest.test_case "fit recovers value" `Quick
            test_dynamic_fit_recovers_value;
          Alcotest.test_case "rlc separates L and R" `Quick
            test_dynamic_rlc_separates_l_and_r;
          Alcotest.test_case "hard fault" `Quick test_dynamic_hard_fault;
          Alcotest.test_case "sallen-key" `Quick test_dynamic_sallen_key;
        ] );
    ]
