(* Tests for the learning unit: rules, knowledge base and
   learning-from-experience episodes. *)

module I = Flames_fuzzy.Interval
module Cons = Flames_fuzzy.Consistency
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Rule = Flames_learning.Rule
module Kb = Flames_learning.Knowledge_base
module Experience = Flames_learning.Experience

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let symptom quantity dc direction : Flames_core.Diagnose.symptom =
  {
    Flames_core.Diagnose.quantity;
    measured = I.crisp dc;
    predicted = Some (I.crisp dc);
    verdict = Some { Cons.dc; direction };
    signed_dc = Some dc;
  }

(* {1 Rule} *)

let test_rule_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Rule.make ~circuit:"c" ~patterns:[] ~suspect:"r" ~certainty:0.5 ());
  let p = Rule.pattern (Q.voltage "v") Cons.Low ~dc:0.5 in
  expect_invalid (fun () ->
      Rule.make ~circuit:"c" ~patterns:[ p ] ~suspect:"r" ~certainty:0. ());
  expect_invalid (fun () ->
      Rule.make ~circuit:"c" ~patterns:[ p ] ~suspect:"r" ~certainty:1.5 ())

let test_pattern_band () =
  let p = Rule.pattern (Q.voltage "v") Cons.Low ~dc:0.5 in
  check_float "dc inside band" 1. (I.membership p.Rule.dc_band 0.5);
  check_bool "far dc outside band" true (I.membership p.Rule.dc_band 0.95 = 0.)

let test_match_degree () =
  let p = Rule.pattern (Q.voltage "v") Cons.Low ~dc:0.5 in
  let rule =
    Rule.make ~circuit:"c" ~patterns:[ p ] ~suspect:"r" ~certainty:0.5 ()
  in
  check_float "exact match" 1.
    (Rule.match_degree rule [ symptom (Q.voltage "v") 0.5 Cons.Low ]);
  check_float "wrong direction" 0.
    (Rule.match_degree rule [ symptom (Q.voltage "v") 0.5 Cons.High ]);
  check_float "wrong quantity" 0.
    (Rule.match_degree rule [ symptom (Q.voltage "w") 0.5 Cons.Low ]);
  check_float "missing symptom" 0. (Rule.match_degree rule []);
  check_bool "near dc partial" true
    (let d =
       Rule.match_degree rule [ symptom (Q.voltage "v") 0.65 Cons.Low ]
     in
     d > 0. && d < 1.)

let test_match_degree_min_over_patterns () =
  let p1 = Rule.pattern (Q.voltage "v") Cons.Low ~dc:0.5 in
  let p2 = Rule.pattern (Q.voltage "w") Cons.High ~dc:0.9 in
  let rule =
    Rule.make ~circuit:"c" ~patterns:[ p1; p2 ] ~suspect:"r" ~certainty:0.5 ()
  in
  (* only one symptom present: the other pattern forces 0 *)
  check_float "conjunctive" 0.
    (Rule.match_degree rule [ symptom (Q.voltage "v") 0.5 Cons.Low ])

let test_confirm_contradict () =
  let p = Rule.pattern (Q.voltage "v") Cons.Low ~dc:0.5 in
  let rule =
    Rule.make ~circuit:"c" ~patterns:[ p ] ~suspect:"r" ~certainty:0.5 ()
  in
  let stronger = Rule.confirm rule in
  check_float "confirm raises" 0.625 stronger.Rule.certainty;
  check_int "confirmation counted" 1 stronger.Rule.confirmations;
  let weaker = Rule.contradict rule in
  check_float "contradict halves" 0.25 weaker.Rule.certainty;
  (* certainty stays within (0, 1] under repeated updates *)
  let rec iterate r n = if n = 0 then r else iterate (Rule.confirm r) (n - 1) in
  check_bool "bounded above" true ((iterate rule 50).Rule.certainty <= 1.)

let test_of_symptoms () =
  let symptoms = [ symptom (Q.voltage "v") 0.4 Cons.Low ] in
  (match Rule.of_symptoms ~circuit:"c" symptoms ~suspect:"r" () with
  | Some rule ->
    check_int "one pattern" 1 (List.length rule.Rule.patterns);
    check_float "initial certainty" 0.5 rule.Rule.certainty
  | None -> Alcotest.fail "expected a rule");
  let no_verdict =
    {
      Flames_core.Diagnose.quantity = Q.voltage "v";
      measured = I.crisp 0.;
      predicted = None;
      verdict = None;
      signed_dc = None;
    }
  in
  check_bool "no verdicts, no rule" true
    (Rule.of_symptoms ~circuit:"c" [ no_verdict ] ~suspect:"r" () = None)

(* {1 Knowledge base} *)

let mk_rule ?(suspect = "r") ?(dc = 0.5) () =
  Rule.make ~circuit:"c"
    ~patterns:[ Rule.pattern (Q.voltage "v") Cons.Low ~dc ]
    ~suspect ~certainty:0.5 ()

let test_kb_add_and_consult () =
  let kb = Kb.create () in
  Kb.add_rule kb (mk_rule ());
  check_int "one rule" 1 (Kb.size kb);
  let advices = Kb.consult kb ~circuit:"c" [ symptom (Q.voltage "v") 0.5 Cons.Low ] in
  check_int "one advice" 1 (List.length advices);
  check_bool "degree capped by certainty" true
    ((List.hd advices).Kb.degree <= 0.5);
  check_int "other circuit silent" 0
    (List.length (Kb.consult kb ~circuit:"zz" [ symptom (Q.voltage "v") 0.5 Cons.Low ]))

let test_kb_same_shape_replaces () =
  let kb = Kb.create () in
  Kb.add_rule kb (mk_rule ());
  Kb.add_rule kb (mk_rule ());
  check_int "same shape replaced" 1 (Kb.size kb);
  Kb.add_rule kb (mk_rule ~suspect:"other" ());
  check_int "different suspect adds" 2 (Kb.size kb)

let test_kb_priors () =
  let kb = Kb.create () in
  check_float "default prior" 0.1 (Kb.prior kb "any");
  Kb.add_prior kb ~component:"c1" 0.8;
  check_float "recorded prior" 0.8 (Kb.prior kb "c1");
  Kb.add_prior kb ~component:"c2" 7.;
  check_float "clamped prior" 1. (Kb.prior kb "c2")

let test_kb_reinforce () =
  let kb = Kb.create () in
  let rule = mk_rule () in
  Kb.add_rule kb rule;
  Kb.reinforce kb rule ~confirmed:true;
  (match Kb.rules kb with
  | [ r ] -> check_float "strengthened" 0.625 r.Rule.certainty
  | _ -> Alcotest.fail "expected one rule");
  Kb.reinforce kb rule ~confirmed:false;
  match Kb.rules kb with
  | [ r ] -> check_bool "weakened" true (r.Rule.certainty < 0.625)
  | _ -> Alcotest.fail "expected one rule"

(* {1 Experience} *)

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let diagnose_fault fault =
  let nominal = L.three_stage_amplifier ~tolerance:0.005 () in
  let faulty = F.inject nominal fault in
  let sol = Flames_sim.Mna.solve faulty in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage [ "vs"; "n2"; "v1" ])
  in
  Flames_core.Diagnose.run ~config nominal obs

let test_experience_record_and_suggest () =
  let kb = Kb.create () in
  let r = diagnose_fault (F.short "r2" ~parameter:"R") in
  check_bool "recorded" true
    (Experience.record kb
       { Experience.result = r; confirmed = "r2"; mode = Some F.Short });
  check_int "one rule learnt" 1 (Kb.size kb);
  (* a fresh occurrence of the same fault is recognised *)
  let fresh = diagnose_fault (F.short "r2" ~parameter:"R") in
  (match Experience.suggest kb fresh with
  | (comp, degree) :: _ ->
    Alcotest.(check string) "suggests r2" "r2" comp;
    check_bool "positive confidence" true (degree > 0.)
  | [] -> Alcotest.fail "expected a suggestion")

let test_experience_repeat_strengthens () =
  let kb = Kb.create () in
  let certainty () =
    match Kb.rules kb with r :: _ -> r.Rule.certainty | [] -> 0.
  in
  let episode () =
    let r = diagnose_fault (F.short "r2" ~parameter:"R") in
    ignore
      (Experience.record kb
         { Experience.result = r; confirmed = "r2"; mode = Some F.Short })
  in
  episode ();
  let c1 = certainty () in
  episode ();
  let c2 = certainty () in
  check_bool "confirmation strengthens" true (c2 > c1);
  check_int "still one rule" 1 (Kb.size kb)

let test_experience_different_symptoms_no_match () =
  let kb = Kb.create () in
  let r = diagnose_fault (F.short "r2" ~parameter:"R") in
  ignore
    (Experience.record kb
       { Experience.result = r; confirmed = "r2"; mode = Some F.Short });
  (* an R3-open fault shows different symptoms: the learnt rule must not
     fire *)
  let other = diagnose_fault (F.opened "r3" ~parameter:"R") in
  check_bool "no bogus suggestion" true
    (List.for_all (fun (_, d) -> d < 0.5) (Experience.suggest kb other))

let test_experience_rerank () =
  let kb = Kb.create () in
  Kb.add_prior kb ~component:"r2" 0.9;
  let r = diagnose_fault (F.short "r2" ~parameter:"R") in
  ignore
    (Experience.record kb
       { Experience.result = r; confirmed = "r2"; mode = Some F.Short });
  let fresh = diagnose_fault (F.short "r2" ~parameter:"R") in
  match Experience.rerank kb fresh with
  | (best, _) :: _ -> Alcotest.(check string) "r2 ranked first" "r2" best
  | [] -> Alcotest.fail "no ranking"

let () =
  Alcotest.run "learning"
    [
      ( "rule",
        [
          Alcotest.test_case "validation" `Quick test_rule_validation;
          Alcotest.test_case "pattern band" `Quick test_pattern_band;
          Alcotest.test_case "match degree" `Quick test_match_degree;
          Alcotest.test_case "conjunctive match" `Quick
            test_match_degree_min_over_patterns;
          Alcotest.test_case "confirm/contradict" `Quick
            test_confirm_contradict;
          Alcotest.test_case "of symptoms" `Quick test_of_symptoms;
        ] );
      ( "knowledge-base",
        [
          Alcotest.test_case "add and consult" `Quick test_kb_add_and_consult;
          Alcotest.test_case "same shape replaces" `Quick
            test_kb_same_shape_replaces;
          Alcotest.test_case "priors" `Quick test_kb_priors;
          Alcotest.test_case "reinforce" `Quick test_kb_reinforce;
        ] );
      ( "experience",
        [
          Alcotest.test_case "record and suggest" `Quick
            test_experience_record_and_suggest;
          Alcotest.test_case "repeat strengthens" `Quick
            test_experience_repeat_strengthens;
          Alcotest.test_case "different symptoms" `Quick
            test_experience_different_symptoms_no_match;
          Alcotest.test_case "rerank" `Quick test_experience_rerank;
        ] );
    ]
