(* Tests for the circuit substrate: quantities, components, netlists,
   fault modes and the prebuilt library circuits. *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module C = Flames_circuit.Component
module N = Flames_circuit.Netlist
module F = Flames_circuit.Fault
module L = Flames_circuit.Library

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* {1 Quantity} *)

let test_quantity_printing () =
  check_string "voltage" "V(n1)" (Q.to_string (Q.voltage "n1"));
  check_string "current" "I(r1)" (Q.to_string (Q.current "r1"));
  check_string "terminal" "I(t1.b)" (Q.to_string (Q.terminal_current "t1" "b"));
  check_string "drop" "U(r1)" (Q.to_string (Q.drop "r1"));
  check_string "parameter" "r1.R" (Q.to_string (Q.parameter "r1" "R"))

let test_quantity_order_and_sets () =
  check_bool "equal" true (Q.equal (Q.voltage "a") (Q.voltage "a"));
  check_bool "distinct" false (Q.equal (Q.voltage "a") (Q.current "a"));
  let s = Q.Set.of_list [ Q.voltage "a"; Q.voltage "a"; Q.current "a" ] in
  check_int "set dedup" 2 (Q.Set.cardinal s);
  let m = Q.Map.singleton (Q.voltage "a") 1 in
  check_int "map lookup" 1 (Q.Map.find (Q.voltage "a") m)

(* {1 Component} *)

let test_component_terminals () =
  Alcotest.(check (list string))
    "resistor" [ "p"; "n" ]
    (C.terminals (C.Resistor (I.crisp 1.)));
  Alcotest.(check (list string))
    "bjt" [ "b"; "c"; "e" ]
    (C.terminals (C.Bjt { beta = I.crisp 100.; vbe = I.crisp 0.7 }))

let test_component_parameters () =
  let r = C.resistor "r" ~ohms:(I.crisp 1e3) ~p:"a" ~n:"b" in
  check_float "R nominal" 1e3 (I.centroid (C.nominal_parameter r "R"));
  let r' = C.with_parameter r "R" (I.crisp 2e3) in
  check_float "R updated" 2e3 (I.centroid (C.nominal_parameter r' "R"));
  check_float "original untouched" 1e3 (I.centroid (C.nominal_parameter r "R"));
  (match C.nominal_parameter r "bogus" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown parameter must raise");
  let t =
    C.bjt "t" ~beta:(I.crisp 100.) ~vbe:(I.crisp 0.7) ~b:"b" ~c:"c" ~e:"e"
  in
  Alcotest.(check (list string))
    "bjt params" [ "beta"; "vbe" ]
    (C.parameter_names t.C.kind);
  check_float "beta" 100. (I.centroid (C.nominal_parameter t "beta"))

let test_component_node_of () =
  let r = C.resistor "r" ~ohms:(I.crisp 1.) ~p:"x" ~n:"y" in
  check_string "p" "x" (C.node_of r "p");
  check_string "n" "y" (C.node_of r "n");
  match C.node_of r "z" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown terminal must raise"

(* {1 Netlist} *)

let divider () = L.voltage_divider ()

let test_netlist_nodes () =
  let net = divider () in
  Alcotest.(check (list string))
    "nodes sorted" [ "gnd"; "in"; "mid" ] (N.nodes net)

let test_netlist_find_and_replace () =
  let net = divider () in
  let r1 = N.find net "r1" in
  check_string "found" "r1" r1.C.name;
  let net' = N.replace net (C.with_parameter r1 "R" (I.crisp 42.)) in
  check_float "replaced" 42. (I.centroid (C.nominal_parameter (N.find net' "r1") "R"));
  check_bool "mem" true (N.mem net "r2");
  check_bool "not mem" false (N.mem net "nope");
  match N.find net "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "find of unknown must raise"

let test_netlist_components_at () =
  let net = divider () in
  let at_mid = List.map (fun (c : C.t) -> c.C.name) (N.components_at net "mid") in
  Alcotest.(check (list string)) "mid components" [ "r1"; "r2" ]
    (List.sort String.compare at_mid)

let test_netlist_validation () =
  let expect_ill f =
    match f () with
    | exception N.Ill_formed _ -> ()
    | _ -> Alcotest.fail "expected Ill_formed"
  in
  (* duplicate names *)
  expect_ill (fun () ->
      N.make ~name:"bad" ~ground:"gnd"
        [
          C.resistor "r" ~ohms:(I.crisp 1.) ~p:"a" ~n:"gnd";
          C.resistor "r" ~ohms:(I.crisp 1.) ~p:"a" ~n:"gnd";
        ]);
  (* dangling node *)
  expect_ill (fun () ->
      N.make ~name:"bad" ~ground:"gnd"
        [
          C.resistor "r1" ~ohms:(I.crisp 1.) ~p:"a" ~n:"gnd";
          C.resistor "r2" ~ohms:(I.crisp 1.) ~p:"b" ~n:"gnd";
        ]);
  (* unknown ground *)
  expect_ill (fun () ->
      N.make ~name:"bad" ~ground:"zz"
        [ C.resistor "r1" ~ohms:(I.crisp 1.) ~p:"a" ~n:"b";
          C.resistor "r2" ~ohms:(I.crisp 1.) ~p:"a" ~n:"b" ])

let test_netlist_ports_exempt () =
  (* a port node may dangle *)
  let net =
    N.make ~ports:[ "in" ] ~name:"ported" ~ground:"gnd"
      [
        C.resistor "r1" ~ohms:(I.crisp 1.) ~p:"in" ~n:"mid";
        C.resistor "r2" ~ohms:(I.crisp 1.) ~p:"mid" ~n:"gnd";
      ]
  in
  check_bool "port" true (N.is_port net "in");
  check_bool "not port" false (N.is_port net "mid")

(* {1 Fault modes} *)

let test_mode_regions () =
  check_float "short at ratio 0" 1. (F.mode_membership F.Short ~nominal:10. ~actual:0.);
  check_bool "short at nominal" true
    (F.mode_membership F.Short ~nominal:10. ~actual:10. = 0.);
  check_float "open at huge ratio" 1.
    (F.mode_membership F.Open ~nominal:10. ~actual:1e6);
  check_float "low at 50%" 1. (F.mode_membership F.Low ~nominal:10. ~actual:5.);
  check_float "high at 2x" 1. (F.mode_membership F.High ~nominal:10. ~actual:20.)

let test_mode_shifted () =
  check_float "shifted exact" 1.
    (F.mode_membership (F.Shifted 12.18e3) ~nominal:12e3 ~actual:12.18e3);
  check_bool "shifted off" true
    (F.mode_membership (F.Shifted 12.18e3) ~nominal:12e3 ~actual:20e3 = 0.)

let test_classify_orders_best_first () =
  match F.classify ~nominal:10e3 ~actual:50. with
  | (F.Short, d) :: _ -> check_bool "short dominates" true (d > 0.5)
  | _ -> Alcotest.fail "expected short as the best mode"

let test_classify_slight_deviation () =
  (* a 1.5 % drift matches no generic mode: this is what Dc is for *)
  check_int "no generic mode" 0
    (List.length (F.classify ~nominal:12e3 ~actual:12.18e3))

let test_inject_short_and_open () =
  let net = divider () in
  let shorted = F.inject net (F.short "r1" ~parameter:"R") in
  check_bool "short tiny" true
    (I.centroid (C.nominal_parameter (N.find shorted "r1") "R") < 1.);
  let opened = F.inject net (F.opened "r1" ~parameter:"R") in
  check_bool "open huge" true
    (I.centroid (C.nominal_parameter (N.find opened "r1") "R") > 1e9);
  let shifted = F.inject net (F.shifted "r1" ~parameter:"R" 123.) in
  check_float "shifted exact" 123.
    (I.centroid (C.nominal_parameter (N.find shifted "r1") "R"));
  match F.inject net (F.short "zz" ~parameter:"R") with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown component must raise"

let test_open_node () =
  let net = L.three_stage_amplifier () in
  let opened = F.open_node net "n1" in
  (* three terminals at n1 → three break resistors *)
  check_int "components grew by 3" (N.size net + 3) (N.size opened);
  check_bool "break resistors present" true (N.mem opened "break_n1_1");
  (* opening a node with fewer than 2 terminals is the identity *)
  let same = F.open_node net "does-not-exist" in
  check_int "unknown node unchanged" (N.size net) (N.size same)

(* {1 Library circuits} *)

let test_chain_nodes () =
  Alcotest.(check (list string)) "3 stages" [ "A"; "B"; "C"; "D" ]
    (L.chain_nodes 3)

let test_amplifier_chain_structure () =
  let net = L.amplifier_chain () in
  check_bool "amp1" true (N.mem net "amp1");
  check_bool "amp3" true (N.mem net "amp3");
  check_bool "source" true (N.mem net "va");
  check_bool "load" true (N.mem net "load")

let test_diode_resistor_variants () =
  let unpowered = L.diode_resistor () in
  check_bool "port on in" true (N.is_port unpowered "in");
  check_bool "no source" false (N.mem unpowered "vin");
  let powered = L.diode_resistor ~powered:true () in
  check_bool "source present" true (N.mem powered "vin");
  check_bool "no port" false (N.is_port powered "in")

let test_three_stage_amplifier_parts () =
  let net = L.three_stage_amplifier () in
  check_int "10 components" 10 (N.size net);
  List.iter
    (fun name -> check_bool name true (N.mem net name))
    [ "vcc"; "r1"; "r2"; "r3"; "r4"; "r5"; "r6"; "t1"; "t2"; "t3" ];
  (* the paper's part values *)
  let r name = I.centroid (C.nominal_parameter (N.find net name) "R") in
  check_float "R1" 200e3 (r "r1");
  check_float "R2" 12e3 (r "r2");
  check_float "R3" 24e3 (r "r3");
  check_float "R4" 3e3 (r "r4");
  check_float "R5" 2.2e3 (r "r5");
  check_float "R6" 1.8e3 (r "r6");
  let beta name = I.centroid (C.nominal_parameter (N.find net name) "beta") in
  check_float "beta1" 300. (beta "t1");
  check_float "beta2" 200. (beta "t2");
  check_float "beta3" 100. (beta "t3")

let test_probe_points () =
  let net = divider () in
  let probes = L.probe_points net in
  check_bool "ground excluded" true
    (not (List.exists (Q.equal (Q.voltage "gnd")) probes));
  check_bool "mid included" true
    (List.exists (Q.equal (Q.voltage "mid")) probes)

let () =
  Alcotest.run "circuit"
    [
      ( "quantity",
        [
          Alcotest.test_case "printing" `Quick test_quantity_printing;
          Alcotest.test_case "order and sets" `Quick
            test_quantity_order_and_sets;
        ] );
      ( "component",
        [
          Alcotest.test_case "terminals" `Quick test_component_terminals;
          Alcotest.test_case "parameters" `Quick test_component_parameters;
          Alcotest.test_case "node_of" `Quick test_component_node_of;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "nodes" `Quick test_netlist_nodes;
          Alcotest.test_case "find/replace" `Quick
            test_netlist_find_and_replace;
          Alcotest.test_case "components_at" `Quick
            test_netlist_components_at;
          Alcotest.test_case "validation" `Quick test_netlist_validation;
          Alcotest.test_case "ports" `Quick test_netlist_ports_exempt;
        ] );
      ( "fault",
        [
          Alcotest.test_case "mode regions" `Quick test_mode_regions;
          Alcotest.test_case "shifted" `Quick test_mode_shifted;
          Alcotest.test_case "classify hard" `Quick
            test_classify_orders_best_first;
          Alcotest.test_case "classify slight" `Quick
            test_classify_slight_deviation;
          Alcotest.test_case "inject" `Quick test_inject_short_and_open;
          Alcotest.test_case "open node" `Quick test_open_node;
        ] );
      ( "library",
        [
          Alcotest.test_case "chain nodes" `Quick test_chain_nodes;
          Alcotest.test_case "amplifier chain" `Quick
            test_amplifier_chain_structure;
          Alcotest.test_case "diode resistor" `Quick
            test_diode_resistor_variants;
          Alcotest.test_case "three-stage amplifier" `Quick
            test_three_stage_amplifier_parts;
          Alcotest.test_case "probe points" `Quick test_probe_points;
        ] );
    ]
