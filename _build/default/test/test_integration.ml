(* Cross-module integration tests: full diagnose→strategy→probe→learn
   loops on several circuits, plus robustness checks (every single-fault
   injection on the amplifier is detected and implicates the true
   culprit). *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module N = Flames_circuit.Netlist
module Diagnose = Flames_core.Diagnose

let check_bool = Alcotest.(check bool)

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let amplifier () = L.three_stage_amplifier ~tolerance:0.005 ()

let probe_faulty nominal fault probes =
  let faulty = F.inject nominal fault in
  let sol = Flames_sim.Mna.solve faulty in
  Flames_sim.Measure.probe_all ~instrument sol (List.map Q.voltage probes)

let all_probes = [ "n1"; "e1"; "v1"; "n2"; "vs" ]

(* {1 Exhaustive single-fault injection} *)

let hard_faults =
  (* every diagnosable resistor, shorted and opened *)
  List.concat_map
    (fun r -> [ F.short r ~parameter:"R"; F.opened r ~parameter:"R" ])
    [ "r1"; "r2"; "r3"; "r4"; "r5"; "r6" ]

let test_every_hard_fault_detected () =
  let nominal = amplifier () in
  List.iter
    (fun fault ->
      let label = Format.asprintf "%a" F.pp fault in
      match probe_faulty nominal fault all_probes with
      | obs ->
        let r = Diagnose.run ~config nominal obs in
        check_bool (label ^ " detected") true (not (Diagnose.healthy r))
      | exception Flames_sim.Mna.No_convergence _ -> ()
      (* a pathological region assignment is acceptable for extreme
         injections; everything that simulates must be caught *))
    hard_faults

let test_culprit_always_implicated () =
  (* the culprit must carry a suspicion comparable to the strongest
     suspect of its run — some faults (an open follower load under the
     constant-Vbe model) barely move any probe, so the absolute degree
     can be small while the ranking is still right *)
  let nominal = amplifier () in
  List.iter
    (fun fault ->
      let label = Format.asprintf "%a" F.pp fault in
      match probe_faulty nominal fault all_probes with
      | obs ->
        let r = Diagnose.run ~config nominal obs in
        let top =
          List.fold_left
            (fun acc (s : Diagnose.suspect) ->
              Float.max acc s.Diagnose.suspicion)
            0. r.Diagnose.suspects
        in
        let suspected =
          List.exists
            (fun (s : Diagnose.suspect) ->
              s.Diagnose.component = fault.F.component
              && s.Diagnose.suspicion >= 0.5 *. top)
            r.Diagnose.suspects
        in
        check_bool (label ^ " culprit implicated") true suspected
      | exception Flames_sim.Mna.No_convergence _ -> ())
    hard_faults

let test_no_false_alarm_across_tolerance_draws () =
  (* a healthy circuit probed everywhere must stay healthy *)
  let nominal = amplifier () in
  let sol = Flames_sim.Mna.solve nominal in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol (List.map Q.voltage all_probes)
  in
  let r = Diagnose.run ~config nominal obs in
  check_bool "healthy" true (Diagnose.healthy r)

(* {1 Diagnose → best-test → probe → diagnose loop} *)

let test_guided_probing_loop () =
  let nominal = amplifier () in
  let fault = F.short "r2" ~parameter:"R" in
  let faulty = F.inject nominal fault in
  let sol = Flames_sim.Mna.solve faulty in
  let probe node =
    Flames_sim.Measure.probe_all ~instrument sol [ Q.voltage node ]
  in
  (* start from the output, follow the strategy's advice twice *)
  let rec loop obs probed steps =
    if steps = 0 then obs
    else
      let r = Diagnose.run ~config nominal obs in
      let estimations = Flames_strategy.Estimation.of_diagnosis r in
      let tests =
        Flames_strategy.Best_test.test_points_of_netlist nominal
        |> List.filter (fun (t : Flames_strategy.Best_test.test_point) ->
               match t.Flames_strategy.Best_test.quantity with
               | Q.Node_voltage n -> not (List.mem n probed)
               | Q.Branch_current _ | Q.Terminal_current _ | Q.Voltage_drop _
               | Q.Parameter _ ->
                 false)
      in
      match Flames_strategy.Best_test.best estimations tests with
      | Some e -> begin
        match e.Flames_strategy.Best_test.test.Flames_strategy.Best_test.quantity with
        | Q.Node_voltage n -> loop (obs @ probe n) (n :: probed) (steps - 1)
        | Q.Branch_current _ | Q.Terminal_current _ | Q.Voltage_drop _
        | Q.Parameter _ ->
          obs
      end
      | None -> obs
  in
  let obs = loop (probe "vs") [ "vs" ] 2 in
  check_bool "gathered more evidence" true (List.length obs >= 3);
  let final = Diagnose.run ~config nominal obs in
  check_bool "fault still detected" true (not (Diagnose.healthy final));
  check_bool "culprit implicated after guided probing" true
    (List.exists
       (fun (s : Diagnose.suspect) ->
         s.Diagnose.component = "r2" && s.Diagnose.suspicion > 0.9)
       final.Diagnose.suspects)

(* {1 Learn on one fault, advise on the next occurrence} *)

let test_full_learning_cycle () =
  let kb = Flames_learning.Knowledge_base.create () in
  let nominal = amplifier () in
  let diagnose () =
    let obs =
      probe_faulty nominal (F.short "r2" ~parameter:"R") [ "vs"; "n2"; "v1" ]
    in
    Diagnose.run ~config nominal obs
  in
  let first = diagnose () in
  check_bool "episode recorded" true
    (Flames_learning.Experience.record kb
       {
         Flames_learning.Experience.result = first;
         confirmed = "r2";
         mode = Some F.Short;
       });
  let second = diagnose () in
  (match Flames_learning.Experience.suggest kb second with
  | (c, _) :: _ -> Alcotest.(check string) "advice" "r2" c
  | [] -> Alcotest.fail "no advice on repeat occurrence");
  match Flames_learning.Experience.rerank kb second with
  | (best, _) :: _ -> Alcotest.(check string) "rerank" "r2" best
  | [] -> Alcotest.fail "no reranking"

(* {1 Other circuits end-to-end} *)

let test_divider_diagnosis () =
  let nominal = L.voltage_divider () in
  let faulty = F.inject nominal (F.shifted "r2" ~parameter:"R" 30e3) in
  let sol = Flames_sim.Mna.solve faulty in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol
      [ Q.voltage "in"; Q.voltage "mid" ]
  in
  let r = Diagnose.run nominal obs in
  check_bool "detected" true (not (Diagnose.healthy r));
  check_bool "r2 implicated" true
    (List.exists
       (fun (s : Diagnose.suspect) ->
         s.Diagnose.component = "r2" && s.Diagnose.suspicion > 0.5)
       r.Diagnose.suspects)

let test_gain_chain_diagnosis () =
  let nominal = L.amplifier_chain () in
  let faulty = F.inject nominal (F.shifted "amp2" ~parameter:"gain" 1.5) in
  let sol = Flames_sim.Mna.solve faulty in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage [ "A"; "B"; "C"; "D" ])
  in
  let r = Diagnose.run nominal obs in
  check_bool "detected" true (not (Diagnose.healthy r));
  check_bool "amp2 implicated" true
    (List.exists
       (fun (s : Diagnose.suspect) ->
         s.Diagnose.component = "amp2" && s.Diagnose.suspicion > 0.5)
       r.Diagnose.suspects);
  (* downstream amp3 cannot explain a deviation already visible at C *)
  let amp1_susp =
    List.fold_left
      (fun acc (s : Diagnose.suspect) ->
        if s.Diagnose.component = "amp1" then
          Float.max acc s.Diagnose.suspicion
        else acc)
      0. r.Diagnose.suspects
  in
  check_bool "amp1 exonerated by B consistent" true (amp1_susp < 1.)

let test_scaling_chains () =
  (* longer chains still propagate and localise *)
  List.iter
    (fun k ->
      let gains = List.init k (fun i -> 1. +. (0.5 *. float_of_int (i mod 3))) in
      let nominal = L.amplifier_chain ~gains () in
      let faulty =
        F.inject nominal (F.shifted "amp2" ~parameter:"gain" 10.)
      in
      let sol = Flames_sim.Mna.solve faulty in
      let obs =
        Flames_sim.Measure.probe_all ~instrument sol
          (List.map Q.voltage (L.chain_nodes k))
      in
      let r = Diagnose.run nominal obs in
      check_bool
        (Printf.sprintf "chain of %d localises amp2" k)
        true
        (List.exists
           (fun (s : Diagnose.suspect) ->
             s.Diagnose.component = "amp2" && s.Diagnose.suspicion > 0.9)
           r.Diagnose.suspects))
    [ 4; 8; 16 ]

let test_multiple_faults_conflicts () =
  (* two simultaneous faults in independent stages of the gain chain:
     the ATMS machinery must implicate both, and no single-component
     fault model can reproduce the combined symptoms (the paper's
     motivation for entertaining multiple faults at all).  The BJT
     cascade is unsuitable here: its strong backward coupling makes many
     double faults observationally degenerate with a single one. *)
  let nominal = L.amplifier_chain () in
  let faulty =
    F.inject
      (F.inject nominal (F.shifted "amp1" ~parameter:"gain" 2.))
      (F.shifted "amp3" ~parameter:"gain" 1.)
  in
  let sol = Flames_sim.Mna.solve faulty in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage [ "A"; "B"; "C"; "D" ])
  in
  let r = Diagnose.run nominal obs in
  check_bool "detected" true (not (Diagnose.healthy r));
  let susp name =
    List.fold_left
      (fun acc (s : Diagnose.suspect) ->
        if s.Diagnose.component = name then Float.max acc s.Diagnose.suspicion
        else acc)
      0. r.Diagnose.suspects
  in
  check_bool "amp1 implicated" true (susp "amp1" > 0.5);
  check_bool "amp3 implicated" true (susp "amp3" > 0.5);
  (* no single-component fault value reproduces all the measurements *)
  check_bool "no single-fault explanation" true
    (List.for_all
       (fun (s : Diagnose.suspect) -> not s.Diagnose.explains)
       r.Diagnose.suspects)

let () =
  Alcotest.run "integration"
    [
      ( "robustness",
        [
          Alcotest.test_case "every hard fault detected" `Slow
            test_every_hard_fault_detected;
          Alcotest.test_case "culprit always implicated" `Slow
            test_culprit_always_implicated;
          Alcotest.test_case "no false alarm" `Quick
            test_no_false_alarm_across_tolerance_draws;
        ] );
      ( "loops",
        [
          Alcotest.test_case "guided probing" `Quick test_guided_probing_loop;
          Alcotest.test_case "learning cycle" `Quick test_full_learning_cycle;
        ] );
      ( "circuits",
        [
          Alcotest.test_case "divider" `Quick test_divider_diagnosis;
          Alcotest.test_case "gain chain" `Quick test_gain_chain_diagnosis;
          Alcotest.test_case "scaling chains" `Slow test_scaling_chains;
          Alcotest.test_case "multiple faults" `Quick
            test_multiple_faults_conflicts;
        ] );
    ]
