test/test_circuit.ml: Alcotest Flames_circuit Flames_fuzzy List String
