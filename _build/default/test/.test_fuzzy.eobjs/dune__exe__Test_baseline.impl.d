test/test_baseline.ml: Alcotest Flames_atms Flames_baseline Flames_circuit Flames_core Flames_fuzzy Flames_sim List
