test/test_learning.mli:
