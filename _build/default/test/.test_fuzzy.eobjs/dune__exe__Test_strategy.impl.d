test/test_strategy.ml: Alcotest Flames_circuit Flames_core Flames_fuzzy Flames_sim Flames_strategy Float List
