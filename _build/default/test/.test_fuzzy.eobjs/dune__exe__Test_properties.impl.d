test/test_properties.ml: Alcotest Flames_atms Flames_circuit Flames_core Flames_fuzzy Flames_sim Float List Printf QCheck QCheck_alcotest
