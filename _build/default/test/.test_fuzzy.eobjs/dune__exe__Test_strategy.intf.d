test/test_strategy.mli:
