test/test_ac.ml: Alcotest Array Complex Flames_atms Flames_circuit Flames_core Flames_fuzzy Flames_sim Float List
