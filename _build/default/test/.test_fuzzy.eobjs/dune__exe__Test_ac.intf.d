test/test_ac.mli:
