test/test_learning.ml: Alcotest Flames_circuit Flames_core Flames_fuzzy Flames_learning Flames_sim List
