test/test_rules.mli:
