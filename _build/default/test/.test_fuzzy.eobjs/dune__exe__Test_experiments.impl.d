test/test_experiments.ml: Alcotest Flames_experiments Flames_fuzzy Float Lazy List
