test/test_atms.ml: Alcotest Flames_atms List Printf QCheck QCheck_alcotest String
