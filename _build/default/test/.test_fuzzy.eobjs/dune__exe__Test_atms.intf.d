test/test_atms.mli:
