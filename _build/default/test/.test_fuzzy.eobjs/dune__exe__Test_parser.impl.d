test/test_parser.ml: Alcotest Flames_circuit Flames_core Flames_fuzzy Flames_sim List Option
