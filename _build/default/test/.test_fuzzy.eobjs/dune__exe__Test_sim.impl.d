test/test_sim.ml: Alcotest Array Flames_circuit Flames_fuzzy Flames_sim List
