test/test_circuit.mli:
