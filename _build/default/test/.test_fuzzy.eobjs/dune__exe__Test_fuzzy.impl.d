test/test_fuzzy.ml: Alcotest Flames_fuzzy Float List QCheck QCheck_alcotest
