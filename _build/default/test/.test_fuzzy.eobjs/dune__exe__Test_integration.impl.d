test/test_integration.ml: Alcotest Flames_circuit Flames_core Flames_fuzzy Flames_learning Flames_sim Flames_strategy Float Format List Printf
