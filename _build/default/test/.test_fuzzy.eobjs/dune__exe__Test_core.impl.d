test/test_core.ml: Alcotest Array Flames_atms Flames_circuit Flames_core Flames_fuzzy Flames_sim Float Format List String
