test/test_rules.ml: Alcotest Flames_atms Flames_fuzzy Flames_learning List
