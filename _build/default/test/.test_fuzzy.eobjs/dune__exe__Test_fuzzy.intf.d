test/test_fuzzy.mli:
