(* Tests for the fuzzy qualitative rule engine (knowledge-base unit). *)

module I = Flames_fuzzy.Interval
module Lin = Flames_fuzzy.Linguistic
module Tnorm = Flames_fuzzy.Tnorm
module R = Flames_learning.Fuzzy_rules
module Atms = Flames_atms.Atms

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_close msg tol expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* a voltage-style scale on [0, 1] reusing the linguistic machinery; for
   circuit voltages we scale the readings into [0, 1] before matching *)
let low = Lin.term "low" (I.make ~m1:0. ~m2:0.25 ~alpha:0. ~beta:0.15)
let mid = Lin.term "mid" (I.make ~m1:0.4 ~m2:0.6 ~alpha:0.15 ~beta:0.15)
let high = Lin.term "high" (I.make ~m1:0.75 ~m2:1. ~alpha:0.15 ~beta:0.)

let test_rule_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      R.rule "bad" ~antecedents:[] ~consequent:(R.is_ "x" low));
  expect_invalid (fun () ->
      R.rule ~certainty:0. "bad"
        ~antecedents:[ R.is_ "x" low ]
        ~consequent:(R.is_ "y" low))

let test_observation_matching () =
  let t = R.create () in
  R.assert_value t "v" (I.crisp 0.1);
  check_float "fully low" 1. (R.degree t (R.is_ "v" low));
  check_float "not high" 0. (R.degree t (R.is_ "v" high));
  R.assert_value t "v" (I.crisp 0.33);
  let d = R.degree t (R.is_ "v" low) in
  check_bool "partially low" true (d > 0. && d < 1.)

let test_simple_firing () =
  let t = R.create () in
  R.add_rule t
    (R.rule "r1" ~antecedents:[ R.is_ "vbe" low ]
       ~consequent:(R.is_ "transistor" high));
  R.assert_value t "vbe" (I.crisp 0.1);
  check_float "fired at full degree" 1. (R.degree t (R.is_ "transistor" high));
  check_int "one conclusion" 1 (List.length (R.conclusions t))

let test_certainty_scales_firing () =
  let t = R.create () in
  R.add_rule t
    (R.rule ~certainty:0.7 "r1" ~antecedents:[ R.is_ "x" low ]
       ~consequent:(R.is_ "y" high));
  R.assert_value t "x" (I.crisp 0.1);
  check_float "capped by certainty" 0.7 (R.degree t (R.is_ "y" high))

let test_min_conjunction () =
  let t = R.create () in
  R.add_rule t
    (R.rule "r1"
       ~antecedents:[ R.is_ "a" low; R.is_ "b" high ]
       ~consequent:(R.is_ "c" mid));
  R.assert_value t "a" (I.crisp 0.1);
  (* b at the edge of high: membership 0.5 *)
  R.assert_value t "b" (I.crisp 0.675);
  check_close "min of antecedents" 1e-6 0.5 (R.degree t (R.is_ "c" mid))

let test_missing_antecedent_blocks () =
  let t = R.create () in
  R.add_rule t
    (R.rule "r1"
       ~antecedents:[ R.is_ "a" low; R.is_ "unseen" high ]
       ~consequent:(R.is_ "c" mid));
  R.assert_value t "a" (I.crisp 0.1);
  check_float "no firing without evidence" 0. (R.degree t (R.is_ "c" mid))

let test_chaining () =
  let t = R.create () in
  R.add_rule t
    (R.rule ~certainty:0.9 "r1" ~antecedents:[ R.is_ "a" low ]
       ~consequent:(R.is_ "b" high));
  R.add_rule t
    (R.rule ~certainty:0.8 "r2" ~antecedents:[ R.is_ "b" high ]
       ~consequent:(R.is_ "c" high));
  R.assert_value t "a" (I.crisp 0.05);
  (* min chaining: 0.9 then min(0.8, 0.9) *)
  check_close "chained degree" 1e-9 0.8 (R.degree t (R.is_ "c" high))

let test_two_rules_tconorm () =
  let t = R.create () in
  R.add_rule t
    (R.rule ~certainty:0.6 "r1" ~antecedents:[ R.is_ "a" low ]
       ~consequent:(R.is_ "c" high));
  R.add_rule t
    (R.rule ~certainty:0.8 "r2" ~antecedents:[ R.is_ "b" low ]
       ~consequent:(R.is_ "c" high));
  R.assert_value t "a" (I.crisp 0.05);
  R.assert_value t "b" (I.crisp 0.05);
  (* max combination of the two supports *)
  check_close "max of rules" 1e-9 0.8 (R.degree t (R.is_ "c" high))

let test_product_tnorm () =
  let t = R.create ~tnorm:Tnorm.Product () in
  R.add_rule t
    (R.rule ~certainty:0.5 "r1"
       ~antecedents:[ R.is_ "a" low; R.is_ "b" low ]
       ~consequent:(R.is_ "c" high));
  R.assert_value t "a" (I.crisp 0.05);
  R.assert_value t "b" (I.crisp 0.05);
  check_close "product combination" 1e-9 0.5 (R.degree t (R.is_ "c" high))

let test_assert_degree_direct () =
  let t = R.create () in
  R.add_rule t
    (R.rule "r1" ~antecedents:[ R.is_ "x" high ]
       ~consequent:(R.is_ "y" high));
  R.assert_degree t (R.is_ "x" high) 0.6;
  check_close "expert assertion chains" 1e-9 0.6 (R.degree t (R.is_ "y" high))

let test_reassertion_resets () =
  let t = R.create () in
  R.add_rule t
    (R.rule "r1" ~antecedents:[ R.is_ "x" low ] ~consequent:(R.is_ "y" high));
  R.assert_value t "x" (I.crisp 0.05);
  check_float "first" 1. (R.degree t (R.is_ "y" high));
  R.assert_value t "x" (I.crisp 0.95);
  check_float "retracted after new evidence" 0. (R.degree t (R.is_ "y" high))

let test_defuzzify () =
  let t = R.create () in
  R.add_rule t
    (R.rule "r1" ~antecedents:[ R.is_ "x" low ]
       ~consequent:(R.is_ "fault" high));
  R.assert_value t "x" (I.crisp 0.05);
  (match R.defuzzify t "fault" with
  | Some v -> check_bool "centroid in the high region" true (v > 0.7)
  | None -> Alcotest.fail "expected a defuzzified value");
  check_bool "unknown variable" true (R.defuzzify t "nothing" = None)

let test_fixpoint_on_cycle () =
  (* a cyclic rule base must still terminate (degrees are monotone) *)
  let t = R.create () in
  R.add_rule t
    (R.rule ~certainty:0.9 "ab" ~antecedents:[ R.is_ "a" high ]
       ~consequent:(R.is_ "b" high));
  R.add_rule t
    (R.rule ~certainty:0.9 "ba" ~antecedents:[ R.is_ "b" high ]
       ~consequent:(R.is_ "a" high));
  R.assert_degree t (R.is_ "a" high) 0.5;
  check_close "stable" 1e-6 0.5 (R.degree t (R.is_ "b" high))

(* {1 ATMS bridge} *)

let test_justify_in_atms () =
  let t = R.create () in
  R.add_rule t
    (R.rule ~certainty:0.8 "conduct"
       ~antecedents:[ R.is_ "Vbe(t2)" high ]
       ~consequent:(R.is_ "On(t2)" high));
  let atms = Atms.create () in
  let t2 = Atms.assumption atms "t2" in
  R.justify_in_atms t atms ~assumptions:[ ("t2", t2) ];
  let premise_node = Atms.node atms (R.atms_datum (R.is_ "Vbe(t2)" high)) in
  Atms.premise atms premise_node;
  let conclusion = Atms.node atms (R.atms_datum (R.is_ "On(t2)" high)) in
  (* the conclusion holds only under the t2 assumption, at the rule's
     certainty — the paper's "O(T) will be defined as a fuzzy set" *)
  let env = Atms.env_of_assumptions atms [ t2 ] in
  check_close "graded, assumption-dependent" 1e-9 0.8
    (Atms.holds_in atms conclusion env);
  check_bool "not free-standing" false
    (Atms.is_in atms conclusion Flames_atms.Env.empty)

let () =
  Alcotest.run "rules"
    [
      ( "engine",
        [
          Alcotest.test_case "validation" `Quick test_rule_validation;
          Alcotest.test_case "observation matching" `Quick
            test_observation_matching;
          Alcotest.test_case "simple firing" `Quick test_simple_firing;
          Alcotest.test_case "certainty" `Quick test_certainty_scales_firing;
          Alcotest.test_case "min conjunction" `Quick test_min_conjunction;
          Alcotest.test_case "missing antecedent" `Quick
            test_missing_antecedent_blocks;
          Alcotest.test_case "chaining" `Quick test_chaining;
          Alcotest.test_case "tconorm of rules" `Quick test_two_rules_tconorm;
          Alcotest.test_case "product t-norm" `Quick test_product_tnorm;
          Alcotest.test_case "direct assertion" `Quick
            test_assert_degree_direct;
          Alcotest.test_case "reassertion resets" `Quick
            test_reassertion_resets;
          Alcotest.test_case "defuzzify" `Quick test_defuzzify;
          Alcotest.test_case "cycle fixpoint" `Quick test_fixpoint_on_cycle;
        ] );
      ( "atms-bridge",
        [ Alcotest.test_case "graded justification" `Quick test_justify_in_atms ] );
    ]
