(* Tests pinning the reproduced paper results: each experiment module must
   keep matching the rows and orderings the paper reports (EXPERIMENTS.md
   records the full correspondence). *)

module I = Flames_fuzzy.Interval
module Fig2 = Flames_experiments.Fig2
module Fig4 = Flames_experiments.Fig4
module Fig5 = Flames_experiments.Fig5
module Fig7 = Flames_experiments.Fig7
module Strategy_demo = Flames_experiments.Strategy_demo
module Learning_demo = Flames_experiments.Learning_demo
module Ablation = Flames_experiments.Ablation
module Dynamic_demo = Flames_experiments.Dynamic_demo
module Explosion = Flames_experiments.Explosion
module Rules_demo = Flames_experiments.Rules_demo

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_close msg tol expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* {1 Fig 2} *)

let fig2 = lazy (Fig2.run ())

let row label =
  let r = Lazy.force fig2 in
  List.find (fun (x : Fig2.row) -> x.Fig2.label = label) r.Fig2.rows

let test_fig2_crisp_column () =
  (* paper: Vb[2.95,3.05,0.15,0.15], Vc[5.90,6.10,0.44,0.46],
     Vd[8.85,9.15,0.58,0.62] *)
  let vb = (row "Vb").Fig2.crisp in
  check_close "Vb m1" 1e-6 2.95 vb.I.m1;
  check_close "Vb alpha" 0.005 0.15 vb.I.alpha;
  let vc = (row "Vc").Fig2.crisp in
  check_close "Vc m1" 1e-6 5.9 vc.I.m1;
  check_close "Vc alpha" 0.01 0.44 vc.I.alpha;
  check_close "Vc beta" 0.01 0.46 vc.I.beta;
  let vd = (row "Vd").Fig2.crisp in
  check_close "Vd m1" 1e-6 8.85 vd.I.m1;
  check_close "Vd m2" 1e-6 9.15 vd.I.m2;
  check_close "Vd alpha" 0.01 0.58 vd.I.alpha;
  check_close "Vd beta" 0.01 0.62 vd.I.beta

let test_fig2_fuzzy_column () =
  (* paper: Vb[3,3,0.20,0.20], Vc[6,6,0.54,0.57], Vd[9,9,0.73,0.77] *)
  let vb = (row "Vb").Fig2.fuzzy in
  check_close "Vb center" 1e-6 3. vb.I.m1;
  check_close "Vb alpha" 0.01 0.2 vb.I.alpha;
  let vc = (row "Vc").Fig2.fuzzy in
  check_close "Vc alpha" 0.01 0.54 vc.I.alpha;
  check_close "Vc beta" 0.01 0.57 vc.I.beta;
  let vd = (row "Vd").Fig2.fuzzy in
  check_close "Vd alpha" 0.01 0.73 vd.I.alpha;
  check_close "Vd beta" 0.01 0.77 vd.I.beta

let test_fig2_masking () =
  let m = (Lazy.force fig2).Fig2.masking in
  (* paper: Vb = [3.11, 3.11], Va crisp = [2.96, 3.27] overlapping the
     nominal — masked; fuzzy Dc < 1 flags it *)
  check_close "Vb estimate" 0.01 3.11 (I.centroid m.Fig2.vb_estimate);
  check_close "Va crisp lo" 0.01 2.96 m.Fig2.va_crisp.I.m1;
  check_close "Va crisp hi" 0.01 3.27 m.Fig2.va_crisp.I.m2;
  check_bool "crisp masked" false m.Fig2.crisp_detects;
  check_bool "fuzzy flags" true (m.Fig2.fuzzy_dc < 0.9)

(* {1 Fig 4} *)

let test_fig4_cases () =
  let cases = Fig4.run () in
  check_int "five cases" 5 (List.length cases);
  let coincidence label =
    (List.find (fun (c : Fig4.case) -> c.Fig4.label = label) cases)
      .Fig4.coincidence
  in
  check_bool "conflict case" true
    (coincidence "case b: conflict" = Flames_fuzzy.Consistency.Conflict);
  check_bool "corroboration case" true
    (coincidence "case c: corroboration"
    = Flames_fuzzy.Consistency.Corroboration);
  match coincidence "case b: partial conflict" with
  | Flames_fuzzy.Consistency.Partial_conflict d ->
    check_bool "graded" true (d > 0. && d < 1.)
  | Flames_fuzzy.Consistency.(
      Corroboration | Split_measured_in_nominal | Split_nominal_in_measured
      | Conflict) ->
    Alcotest.fail "expected partial conflict"

(* {1 Fig 5} *)

let fig5 = lazy (Fig5.run ())

let test_fig5_paper_degrees () =
  let r = Lazy.force fig5 in
  check_close "{r1,d1} at 0.5" 0.02 0.5 r.Fig5.r1_d1_degree;
  check_close "{r2,d1} at 1.0" 1e-9 1.0 r.Fig5.r2_d1_degree

let test_fig5_ordering () =
  (* the paper's point: the fuzzy degrees order the two nogoods *)
  let r = Lazy.force fig5 in
  check_bool "{r2,d1} outranks {r1,d1}" true
    (r.Fig5.r2_d1_degree > r.Fig5.r1_d1_degree)

let test_fig5_crisp_uniform () =
  let r = Lazy.force fig5 in
  check_bool "crisp found conflicts" true (r.Fig5.crisp_conflicts <> []);
  List.iter
    (fun (c : Fig5.conflict) ->
      check_close "all at weight 1" 1e-9 1. c.Fig5.degree)
    r.Fig5.crisp_conflicts

(* {1 Fig 6 / Fig 7} *)

let test_fig6_linear_region () =
  let bias = Fig7.bias_point () in
  let v n = List.assoc n bias in
  check_bool "v1 between rails" true (v "v1" > 1. && v "v1" < 17.);
  check_close "follower t2" 1e-6 0.7 (v "v1" -. v "n2");
  check_close "follower t3" 1e-6 0.7 (v "n2" -. v "vs")

let fig7 = lazy (Fig7.run ())

let fig7_row id =
  List.find
    (fun (r : Fig7.row) -> r.Fig7.scenario.Fig7.id = id)
    (Lazy.force fig7)

let test_fig7_r2_short () =
  let r = fig7_row "R2 short" in
  (* stage-1 candidate set with r2's short mode confirmed among the
     single-fault explanations *)
  check_bool "r2 among suspects" true
    (List.exists (fun (c, d) -> c = "r2" && d > 0.9) r.Fig7.suspects);
  check_bool "r2-short fits the symptoms" true
    (List.exists
       (fun (c, m, d) -> c = "r2" && m = "short" && d > 0.9)
       r.Fig7.mode_matches)

let test_fig7_r2_short_exonerates_downstream () =
  (* fault-model fitting exonerates the downstream follower: no r6 value
     reproduces the symptoms, so r6 never appears among the single-fault
     explanations *)
  let r = fig7_row "R2 short" in
  check_bool "r6 explains nothing" true
    (List.for_all (fun (c, _, _) -> c <> "r6") r.Fig7.mode_matches)

let test_fig7_soft_rows_graded () =
  (* the two slight-fault rows must yield strictly partial conflicts *)
  List.iter
    (fun id ->
      let r = fig7_row id in
      check_bool (id ^ " produced conflicts") true (r.Fig7.conflicts <> []);
      List.iter
        (fun (_, d) -> check_bool (id ^ " graded") true (d < 1.))
        r.Fig7.conflicts)
    [ "R2 slightly high"; "Beta2 slightly low" ]

let test_fig7_dc_ordering_between_rows () =
  (* R2 +1.5 % disturbs the bias more than β2 −3 %: its conflicts are
     stronger (the paper's 0.89 vs 0.96 consistency ordering) *)
  let strength id =
    List.fold_left
      (fun acc (_, d) -> Float.max acc d)
      0. (fig7_row id).Fig7.conflicts
  in
  check_bool "R2 drift stronger than beta2 drift" true
    (strength "R2 slightly high" > strength "Beta2 slightly low")

let test_fig7_r2_high_low_side () =
  (* the drift pulls every probed voltage down: signed Dc negative *)
  let r = fig7_row "R2 slightly high" in
  List.iter
    (fun (n, d) -> check_bool (n ^ " low side") true (d < 0.))
    r.Fig7.dcs

let test_fig7_r3_open_divider_ambiguity () =
  (* the paper's comment: the sign of Dc leaves "lower resistor high or
     upper low" — both divider resistors carry a hard suspicion *)
  let r = fig7_row "R3 open" in
  let susp name =
    List.fold_left
      (fun acc (c, d) -> if c = name then Float.max acc d else acc)
      0. r.Fig7.suspects
  in
  check_bool "r3 fully suspect" true (susp "r3" >= 0.9);
  check_bool "r1 fully suspect" true (susp "r1" >= 0.9)

let test_fig7_n1_open_detected () =
  let r = fig7_row "N1 open" in
  check_bool "conflicts found" true (r.Fig7.conflicts <> []);
  (* diagnosed through stage-1 components, as the paper does *)
  check_bool "stage-1 implicated" true
    (List.exists (fun (c, d) -> c = "r3" && d > 0.9) r.Fig7.suspects)

(* {1 Strategy demo} *)

let test_strategy_demo () =
  let r = Strategy_demo.run () in
  check_bool "fuzzy ranking non-empty" true (r.Strategy_demo.fuzzy_ranking <> []);
  check_bool "probabilistic ranking non-empty" true
    (r.Strategy_demo.probabilistic_ranking <> []);
  match r.Strategy_demo.fuzzy_step with
  | Some s ->
    check_bool "probes an upstream node" true
      (List.mem s.Strategy_demo.probe [ "v1"; "e1"; "n1"; "n2" ])
  | None -> Alcotest.fail "no recommendation"

(* {1 Learning demo} *)

let test_learning_demo () =
  let r = Learning_demo.run () in
  check_int "three episodes" 3 r.Learning_demo.episodes;
  (* certainty strictly increases across confirmations *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  check_bool "certainty grows" true (increasing r.Learning_demo.rule_certainties);
  (match r.Learning_demo.suggestion with
  | Some (c, d) ->
    Alcotest.(check string) "suggests r2" "r2" c;
    check_bool "confident" true (d > 0.5)
  | None -> Alcotest.fail "no suggestion");
  Alcotest.(check (option string)) "rerank best" (Some "r2")
    r.Learning_demo.reranked_first

(* {1 Ablation} *)

let test_ablation_monotone_grading () =
  let points = Ablation.run () in
  (* the fuzzy conflict degree grows with the drift magnitude *)
  let rec non_decreasing = function
    | (a : Ablation.point) :: (b :: _ as rest) ->
      a.Ablation.max_dc_deviation <= b.Ablation.max_dc_deviation +. 0.05
      && non_decreasing rest
    | [ _ ] | [] -> true
  in
  check_bool "grading monotone" true (non_decreasing points)

let test_ablation_fuzzy_earlier_than_crisp () =
  let points = Ablation.run () in
  match (Ablation.detection_threshold points, Ablation.crisp_threshold points) with
  | Some fuzzy, Some crisp ->
    check_bool "fuzzy fires no later than crisp" true (fuzzy <= crisp)
  | Some _, None -> () (* crisp never fires: even stronger *)
  | None, _ -> Alcotest.fail "fuzzy never reached 0.5 in the sweep"

let test_ablation_no_explosion () =
  (* the fuzzy candidate sets stay bounded (the anti-explosion claim) *)
  let points = Ablation.run () in
  List.iter
    (fun (p : Ablation.point) ->
      check_bool "bounded candidates" true (p.Ablation.fuzzy_candidates <= 64))
    points

(* {1 Dynamic mode} *)

let test_dynamic_rows () =
  let rows = Dynamic_demo.run () in
  check_int "four scenarios" 4 (List.length rows);
  List.iter
    (fun (r : Dynamic_demo.row) ->
      let label = r.Dynamic_demo.circuit ^ "/" ^ r.Dynamic_demo.defect in
      check_bool (label ^ " detected") true r.Dynamic_demo.detected;
      check_bool (label ^ " culprit implicated") true
        r.Dynamic_demo.culprit_implicated;
      check_bool (label ^ " culprit explains") true
        r.Dynamic_demo.culprit_explains;
      match r.Dynamic_demo.fitted with
      | Some v ->
        (* the fit recovers the injected value within 10 % *)
        check_bool (label ^ " fit accurate") true
          (Float.abs (v -. r.Dynamic_demo.injected)
          <= 0.1 *. Float.abs r.Dynamic_demo.injected)
      | None -> Alcotest.fail (label ^ ": no fitted value"))
    rows

(* {1 Explosion control (A3)} *)

let test_explosion_linear () =
  let points = Explosion.run ~sizes:[ 2; 4; 8 ] () in
  List.iter
    (fun (p : Explosion.point) ->
      (* working set stays linear in the circuit size: generously, under
         16 resident values per stage *)
      check_bool "no value explosion" true
        (p.Explosion.resident_values <= 16 * p.Explosion.stages);
      check_bool "diagnoses bounded" true (p.Explosion.diagnoses <= 8);
      Alcotest.(check (option int))
        "culprit on top" (Some 1) p.Explosion.culprit_rank)
    points;
  (* steps grow sub-quadratically *)
  (match points with
  | [ a; _; c ] ->
    check_bool "steps subquadratic" true
      (float_of_int c.Explosion.steps
      <= 4.1 *. float_of_int a.Explosion.steps *. 4.)
  | _ -> Alcotest.fail "expected three points")

(* {1 Qualitative rules} *)

let test_rules_demo () =
  let rows = Rules_demo.run () in
  let find scenario transistor =
    List.find
      (fun (r : Rules_demo.row) ->
        r.Rules_demo.scenario = scenario
        && r.Rules_demo.transistor = transistor)
      rows
  in
  (* healthy transistors conduct at the rule's certainty *)
  check_bool "healthy t1 on" true
    ((find "healthy" "t1").Rules_demo.on_degree > 0.8);
  (* the starved transistor does not *)
  check_bool "starved t1 off" true
    ((find "r3 short (t1 starved)" "t1").Rules_demo.on_degree < 0.1);
  (* the ATMS grades the conclusion identically under ok(T) *)
  List.iter
    (fun (r : Rules_demo.row) ->
      check_bool "atms agrees with the rule engine" true
        (Float.abs (r.Rules_demo.on_degree -. r.Rules_demo.atms_degree)
        < 1e-6))
    rows

let () =
  Alcotest.run "experiments"
    [
      ( "fig2",
        [
          Alcotest.test_case "crisp column" `Quick test_fig2_crisp_column;
          Alcotest.test_case "fuzzy column" `Quick test_fig2_fuzzy_column;
          Alcotest.test_case "masking" `Quick test_fig2_masking;
        ] );
      ("fig4", [ Alcotest.test_case "cases" `Quick test_fig4_cases ]);
      ( "fig5",
        [
          Alcotest.test_case "paper degrees" `Quick test_fig5_paper_degrees;
          Alcotest.test_case "ordering" `Quick test_fig5_ordering;
          Alcotest.test_case "crisp uniform" `Quick test_fig5_crisp_uniform;
        ] );
      ( "fig7",
        [
          Alcotest.test_case "fig6 linear region" `Quick
            test_fig6_linear_region;
          Alcotest.test_case "R2 short" `Quick test_fig7_r2_short;
          Alcotest.test_case "downstream exonerated" `Quick
            test_fig7_r2_short_exonerates_downstream;
          Alcotest.test_case "soft rows graded" `Quick
            test_fig7_soft_rows_graded;
          Alcotest.test_case "Dc ordering" `Quick
            test_fig7_dc_ordering_between_rows;
          Alcotest.test_case "R2 high low side" `Quick
            test_fig7_r2_high_low_side;
          Alcotest.test_case "R3 open ambiguity" `Quick
            test_fig7_r3_open_divider_ambiguity;
          Alcotest.test_case "N1 open" `Quick test_fig7_n1_open_detected;
        ] );
      ( "strategy",
        [ Alcotest.test_case "demo" `Quick test_strategy_demo ] );
      ( "learning",
        [ Alcotest.test_case "demo" `Quick test_learning_demo ] );
      ( "dynamic",
        [ Alcotest.test_case "filter scenarios" `Quick test_dynamic_rows ] );
      ( "explosion",
        [ Alcotest.test_case "A3 linear" `Quick test_explosion_linear ] );
      ( "rules",
        [ Alcotest.test_case "conduction rule" `Quick test_rules_demo ] );
      ( "ablation",
        [
          Alcotest.test_case "monotone grading" `Quick
            test_ablation_monotone_grading;
          Alcotest.test_case "fuzzy before crisp" `Quick
            test_ablation_fuzzy_earlier_than_crisp;
          Alcotest.test_case "no explosion" `Quick test_ablation_no_explosion;
        ] );
    ]
