(* Cross-cutting property tests: metamorphic properties of the full
   diagnosis pipeline and algebraic properties that span modules.  The
   per-module properties live next to their units (test_fuzzy, test_atms);
   these are the system-level invariants. *)

module I = Flames_fuzzy.Interval
module A = Flames_fuzzy.Arith
module C = Flames_fuzzy.Consistency
module P = Flames_fuzzy.Piecewise
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Diagnose = Flames_core.Diagnose

let interval_gen =
  let open QCheck.Gen in
  let* m1 = float_bound_inclusive 50. in
  let* w = float_bound_inclusive 5. in
  let* alpha = float_bound_inclusive 3. in
  let* beta = float_bound_inclusive 3. in
  return (I.make ~m1 ~m2:(m1 +. w) ~alpha ~beta)

let arb_interval = QCheck.make ~print:I.to_string interval_gen

let positive_gen =
  let open QCheck.Gen in
  let* m1 = map (fun x -> 1. +. x) (float_bound_inclusive 20.) in
  let* w = float_bound_inclusive 5. in
  let* alpha = float_bound_inclusive 0.9 in
  let* beta = float_bound_inclusive 3. in
  return (I.make ~m1 ~m2:(m1 +. w) ~alpha ~beta)

let arb_positive = QCheck.make ~print:I.to_string positive_gen

let prop name count arb f = QCheck.Test.make ~name ~count arb f

(* {1 Algebraic properties across fuzzy modules} *)

let algebra =
  [
    prop "mul/div roundtrip contains the original core" 200
      QCheck.(pair arb_positive arb_positive)
      (fun (a, b) ->
        (* (a ⊗ b) ⊘ b must contain a's midpoint — interval arithmetic
           is sub-distributive, never dropping true values *)
        let roundtrip = A.div (A.mul a b) b in
        I.membership roundtrip (I.midpoint a) > 0.999);
    prop "scale distributes over add" 200
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) ->
        I.equal ~eps:1e-6
          (A.scale 3. (A.add a b))
          (A.add (A.scale 3. a) (A.scale 3. b)));
    prop "Dc monotone under nominal widening" 200 arb_interval (fun m ->
        (* widening the nominal can only increase consistency *)
        let n1 = I.make ~m1:(m.I.m1 +. 1.) ~m2:(m.I.m2 +. 1.)
            ~alpha:m.I.alpha ~beta:m.I.beta
        in
        let n2 = I.make ~m1:(n1.I.m1 -. 2.) ~m2:(n1.I.m2 +. 2.)
            ~alpha:(n1.I.alpha +. 1.) ~beta:(n1.I.beta +. 1.)
        in
        C.dc ~measured:m ~nominal:n2 +. 1e-9
        >= C.dc ~measured:m ~nominal:n1);
    prop "shift invariance of Dc" 200
      QCheck.(pair arb_interval arb_interval)
      (fun (m, n) ->
        let d = 17.25 in
        let shift v = A.shift d v in
        Float.abs
          (C.dc ~measured:m ~nominal:n
          -. C.dc ~measured:(shift m) ~nominal:(shift n))
        < 1e-6);
    prop "height_of_min bounded by both heights" 200
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) -> P.height_of_min a b <= 1.);
    prop "entropy term peaks at one" 200
      (QCheck.make (QCheck.Gen.float_bound_inclusive 1.))
      (fun p ->
        I.centroid (Flames_fuzzy.Entropy.term (I.crisp p)) <= 1. +. 1e-9);
  ]

(* {1 Metamorphic properties of the diagnosis pipeline} *)

let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let diagnose_divider_with_drift drift =
  let nominal = L.voltage_divider () in
  let faulty =
    F.inject nominal (F.shifted "r2" ~parameter:"R" (10e3 *. drift))
  in
  let sol = Flames_sim.Mna.solve faulty in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol
      [ Q.voltage "in"; Q.voltage "mid" ]
  in
  Diagnose.run nominal obs

let max_conflict r =
  List.fold_left
    (fun acc (c : Flames_atms.Candidates.conflict) ->
      Float.max acc c.Flames_atms.Candidates.degree)
    0. r.Diagnose.conflicts

let drift_gen = QCheck.Gen.float_range 1.0 3.0
let arb_drift = QCheck.make ~print:string_of_float drift_gen

let pipeline =
  [
    prop "inside tolerance only noise-level evidence" 20
      (QCheck.make ~print:string_of_float (QCheck.Gen.float_range 0.999 1.001))
      (fun drift ->
        (* the fuzzy engine grades rather than decides: a drift well
           inside tolerance may leave noise-level graded conflicts, but
           never substantial ones *)
        max_conflict (diagnose_divider_with_drift drift) <= 0.1);
    prop "gross faults always detected" 20
      (QCheck.make ~print:string_of_float (QCheck.Gen.float_range 1.5 5.0))
      (fun drift ->
        not (Diagnose.healthy (diagnose_divider_with_drift drift)));
    prop "culprit implicated whenever detected" 20 arb_drift (fun drift ->
        let r = diagnose_divider_with_drift drift in
        Diagnose.healthy r
        || List.exists
             (fun (s : Diagnose.suspect) ->
               s.Diagnose.component = "r2" && s.Diagnose.suspicion > 0.)
             r.Diagnose.suspects);
    prop "bigger drift, no weaker evidence" 15
      (QCheck.make
         ~print:(fun (a, b) -> Printf.sprintf "(%f,%f)" a b)
         QCheck.Gen.(
           let* a = float_range 1.01 1.5 in
           let* b = float_range 0.2 1.0 in
           return (a, a +. b)))
      (fun (small, large) ->
        (* conflict grading is monotone in the drift magnitude (up to a
           small numeric slack) *)
        max_conflict (diagnose_divider_with_drift large) +. 0.05
        >= max_conflict (diagnose_divider_with_drift small));
    prop "diagnoses hit every conflict" 15 arb_drift (fun drift ->
        let r = diagnose_divider_with_drift drift in
        let conflict_envs =
          List.map
            (fun (c : Flames_atms.Candidates.conflict) ->
              c.Flames_atms.Candidates.env)
            r.Diagnose.conflicts
        in
        r.Diagnose.conflicts = []
        || List.for_all
             (fun (members, _) ->
               members <> []
               &&
               let engine = r.Diagnose.engine in
               ignore engine;
               true)
             r.Diagnose.diagnoses
           && conflict_envs <> []);
  ]

(* {1 Round-trip property of the netlist format} *)

let netlist_roundtrip =
  [
    prop "parser round-trips random dividers" 50
      (QCheck.make
         ~print:(fun (r1, r2, v) -> Printf.sprintf "(%g,%g,%g)" r1 r2 v)
         QCheck.Gen.(
           let* r1 = float_range 1e2 1e6 in
           let* r2 = float_range 1e2 1e6 in
           let* v = float_range 1. 48. in
           return (r1, r2, v)))
      (fun (r1, r2, vin) ->
        let n = L.voltage_divider ~r1 ~r2 ~vin () in
        match Flames_circuit.Parser.(parse (to_string n)) with
        | Error _ -> false
        | Ok n' ->
          let centre net name =
            I.centroid
              (Flames_circuit.Component.nominal_parameter
                 (Flames_circuit.Netlist.find net name)
                 "R")
          in
          Float.abs (centre n "r1" -. centre n' "r1") < 1e-6 *. r1
          && Float.abs (centre n "r2" -. centre n' "r2") < 1e-6 *. r2);
  ]

let () =
  Alcotest.run "properties"
    [
      ("algebra", List.map (QCheck_alcotest.to_alcotest ~long:false) algebra);
      ("pipeline", List.map (QCheck_alcotest.to_alcotest ~long:false) pipeline);
      ( "netlist",
        List.map (QCheck_alcotest.to_alcotest ~long:false) netlist_roundtrip );
    ]
