(* Tests for the baselines: the DIANA-style crisp-interval engine and the
   GDE-style probabilistic test selection. *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Crisp = Flames_baseline.Crisp
module Prob = Flames_baseline.Probabilistic

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* {1 Crispification} *)

let test_crispify_interval_support () =
  let v = I.make ~m1:1. ~m2:2. ~alpha:0.5 ~beta:0.5 in
  let c = Crisp.crispify_interval v in
  check_bool "crisp" true (I.is_crisp c);
  let lo, hi = I.support c in
  check_float "support lo" 0.5 lo;
  check_float "support hi" 2.5 hi

let test_crispify_interval_core () =
  let v = I.make ~m1:(-1.) ~m2:100. ~alpha:0. ~beta:10. in
  let c = Crisp.crispify_interval ~mode:`Core v in
  let lo, hi = I.support c in
  check_float "core lo" (-1.) lo;
  check_float "core hi (DIANA's 100 µA)" 100. hi

let test_crispify_netlist () =
  let net = Crisp.crispify (L.voltage_divider ()) in
  List.iter
    (fun name ->
      let comp = Flames_circuit.Netlist.find net name in
      List.iter
        (fun param ->
          check_bool
            (name ^ "." ^ param ^ " crisp")
            true
            (I.is_crisp (Flames_circuit.Component.nominal_parameter comp param)))
        (Flames_circuit.Component.parameter_names comp.Flames_circuit.Component.kind))
    [ "vin"; "r1"; "r2" ]

(* {1 Crisp diagnosis} *)

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let observations fault =
  let nominal = L.three_stage_amplifier ~tolerance:0.005 () in
  let faulty = match fault with None -> nominal | Some f -> F.inject nominal f in
  let sol = Flames_sim.Mna.solve faulty in
  ( nominal,
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage [ "vs"; "n2"; "v1" ]) )

let test_crisp_healthy () =
  let nominal, obs = observations None in
  let r = Crisp.run ~config nominal obs in
  check_bool "healthy circuit passes" false (Crisp.detects r)

let test_crisp_detects_hard_fault () =
  let nominal, obs = observations (Some (F.short "r2" ~parameter:"R")) in
  let r = Crisp.run ~config nominal obs in
  check_bool "hard fault detected" true (Crisp.detects r)

let test_crisp_misses_soft_fault () =
  (* the paper's masking claim: a +1.5 % drift stays inside the crisp
     tolerance intervals while FLAMES grades it *)
  let nominal, obs =
    observations (Some (F.shifted "r2" ~parameter:"R" 12.18e3))
  in
  let crisp = Crisp.run ~config nominal obs in
  check_bool "crisp silent" false (Crisp.detects crisp);
  let fuzzy = Flames_core.Diagnose.run ~config nominal obs in
  check_bool "fuzzy grades it" true
    (fuzzy.Flames_core.Diagnose.conflicts <> [])

let test_crisp_conflicts_all_hard () =
  let nominal, obs = observations (Some (F.short "r2" ~parameter:"R")) in
  let r = Crisp.run ~config nominal obs in
  List.iter
    (fun (c : Flames_atms.Candidates.conflict) ->
      check_float "degree 1" 1. c.Flames_atms.Candidates.degree)
    r.Flames_core.Diagnose.conflicts

(* {1 Probabilistic baseline} *)

let test_uniform_state () =
  let s = Prob.uniform [ "a"; "b" ] 0.1 in
  check_int "two components" 2 (List.length s.Prob.probabilities);
  List.iter (fun (_, p) -> check_float "prior" 0.1 p) s.Prob.probabilities

let test_entropy_peak () =
  let half = Prob.uniform [ "a" ] 0.5 in
  let sure = Prob.uniform [ "a" ] 0.999999 in
  check_bool "0.5 maximises entropy" true (Prob.entropy half > Prob.entropy sure)

let test_bayes_update () =
  let s = Prob.uniform [ "a"; "b" ] 0.2 in
  let p_of state name = List.assoc name state.Prob.probabilities in
  let up = Prob.update s ~influencers:[ "a" ] ~deviant:true in
  check_bool "deviant raises influencer" true (p_of up "a" > 0.2);
  check_float "others untouched" (p_of s "b") (p_of up "b");
  let down = Prob.update s ~influencers:[ "a" ] ~deviant:false in
  check_bool "consistent lowers influencer" true (p_of down "a" < 0.2)

let test_expected_entropy_reduces () =
  let s = Prob.uniform [ "a"; "b"; "c" ] 0.3 in
  check_bool "a probe cannot increase expected entropy" true
    (Prob.expected_entropy s ~influencers:[ "a"; "b" ] <= Prob.entropy s +. 1e-9)

let test_rank_prefers_informative () =
  let s =
    {
      Prob.probabilities = [ ("suspect", 0.5); ("cleared", 0.01) ];
    }
  in
  let candidates =
    [
      (Q.voltage "useful", 1., [ "suspect" ]);
      (Q.voltage "useless", 1., [ "cleared" ]);
    ]
  in
  match Prob.best s candidates with
  | Some e ->
    check_bool "probes the suspect path" true
      (Q.equal e.Prob.quantity (Q.voltage "useful"))
  | None -> Alcotest.fail "no recommendation"

let test_of_diagnosis_scaling () =
  let nominal, obs = observations (Some (F.short "r2" ~parameter:"R")) in
  let r = Flames_core.Diagnose.run ~config nominal obs in
  let s = Prob.of_diagnosis r in
  let p name = List.assoc name s.Prob.probabilities in
  check_bool "implicated above clean" true (p "r2" > p "r6");
  List.iter
    (fun (_, v) -> check_bool "probability sane" true (v > 0. && v < 1.))
    s.Prob.probabilities

(* {1 Fig-2 masking, crisp vs fuzzy (paper section 4.2)} *)

let test_fig2_masking () =
  let amp1 = I.number 1. ~spread:0.05 in
  let vb = I.crisp (5.6 /. 1.8) in
  let va_nominal_crisp = I.crisp_interval 2.95 3.05 in
  (* crisp backward estimate overlaps the nominal: fault masked *)
  let va_crisp = Flames_fuzzy.Arith.div vb (Crisp.crispify_interval amp1) in
  check_bool "crisp masks" true (I.overlap va_crisp va_nominal_crisp);
  (* fuzzy Dc is clearly below 1: problem flagged *)
  let va_fuzzy = Flames_fuzzy.Arith.div vb amp1 in
  let dc =
    Flames_fuzzy.Consistency.dc ~measured:va_fuzzy
      ~nominal:(I.number 3. ~spread:0.05)
  in
  check_bool "fuzzy flags" true (dc < 0.7)

let () =
  Alcotest.run "baseline"
    [
      ( "crispify",
        [
          Alcotest.test_case "support mode" `Quick
            test_crispify_interval_support;
          Alcotest.test_case "core mode" `Quick test_crispify_interval_core;
          Alcotest.test_case "netlist" `Quick test_crispify_netlist;
        ] );
      ( "crisp-diagnosis",
        [
          Alcotest.test_case "healthy" `Quick test_crisp_healthy;
          Alcotest.test_case "hard fault" `Quick
            test_crisp_detects_hard_fault;
          Alcotest.test_case "soft fault missed" `Quick
            test_crisp_misses_soft_fault;
          Alcotest.test_case "all conflicts hard" `Quick
            test_crisp_conflicts_all_hard;
        ] );
      ( "probabilistic",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_state;
          Alcotest.test_case "entropy peak" `Quick test_entropy_peak;
          Alcotest.test_case "bayes update" `Quick test_bayes_update;
          Alcotest.test_case "expected entropy" `Quick
            test_expected_entropy_reduces;
          Alcotest.test_case "rank informative" `Quick
            test_rank_prefers_informative;
          Alcotest.test_case "of diagnosis" `Quick test_of_diagnosis_scaling;
        ] );
      ( "masking",
        [ Alcotest.test_case "fig2" `Quick test_fig2_masking ] );
    ]
