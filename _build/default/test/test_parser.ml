(* Tests for the SPICE-flavoured netlist parser. *)

module I = Flames_fuzzy.Interval
module C = Flames_circuit.Component
module N = Flames_circuit.Netlist
module P = Flames_circuit.Parser
module L = Flames_circuit.Library

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_close msg tol expected actual =
  Alcotest.(check (float tol)) msg expected actual

let parse_ok source =
  match P.parse source with
  | Ok n -> n
  | Error e -> Alcotest.failf "parse failed: %a" P.pp_error e

let expect_error ?line source =
  match P.parse source with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> (
    match line with
    | Some l -> check_int "error line" l e.P.line
    | None -> ())

(* {1 Values} *)

let test_engineering_values () =
  let v s = Option.get (P.parse_value s) in
  check_close "plain" 1e-12 42. (v "42");
  check_close "kilo" 1e-9 10e3 (v "10k");
  check_close "mega" 1e-3 4.7e6 (v "4.7meg");
  check_close "milli" 1e-12 1e-3 (v "1m");
  check_close "micro" 1e-15 22e-6 (v "22u");
  check_close "nano" 1e-18 10e-9 (v "10n");
  check_close "pico" 1e-21 1e-12 (v "1p");
  check_close "femto" 1e-24 3e-15 (v "3f");
  check_close "giga" 1. 1e9 (v "1g");
  check_close "case insensitive" 1e-9 10e3 (v "10K");
  check_bool "garbage" true (P.parse_value "zz" = None);
  check_bool "empty" true (P.parse_value "" = None)

(* {1 Full circuits} *)

let divider_src =
  {|
* a toleranced voltage divider
.circuit divider
.ground gnd
V vin in gnd 10 tol=1%
R r1 in mid 10k tol=1%
R r2 mid gnd 10k   # crisp
|}

let test_parse_divider () =
  let n = parse_ok divider_src in
  check_string "name" "divider" n.N.name;
  check_string "ground" "gnd" n.N.ground;
  check_int "three components" 3 (N.size n);
  let r1 = C.nominal_parameter (N.find n "r1") "R" in
  check_close "r1 centre" 1e-6 10e3 (I.centroid r1);
  check_bool "r1 fuzzy" true (not (I.is_crisp r1));
  let r2 = C.nominal_parameter (N.find n "r2") "R" in
  check_bool "r2 crisp" true (I.is_crisp r2)

let test_parse_simulates () =
  let n = parse_ok divider_src in
  let sol = Flames_sim.Mna.solve n in
  check_close "divider works" 1e-6 5. (Flames_sim.Mna.voltage sol "mid")

let test_parse_all_kinds () =
  let n =
    parse_ok
      {|
.circuit everything
.ground 0
V vcc vdd 0 18
R rb vdd base 200k tol=2%
R rc vdd coll 12k tol=2%
R re emit 0 3k tol=2%
Q t1 base coll emit beta=300 vbe=0.7 tol=2%
C cl coll 0 10n tol=5%
L ll vdd coll 10m
D d1 base 0 vf=0.2 imax=100u
A buf coll bufout gain=1
R rload bufout 0 1meg
|}
  in
  check_int "nine components" 10 (N.size n);
  check_close "beta" 1e-6 300.
    (I.centroid (C.nominal_parameter (N.find n "t1") "beta"));
  check_close "imax core" 1e-12 100e-6
    (snd (I.core (C.nominal_parameter (N.find n "d1") "Imax")));
  check_bool "imax has a soft flank" true
    (not (I.is_crisp (C.nominal_parameter (N.find n "d1") "Imax")))

let test_parse_ports () =
  let n =
    parse_ok
      {|
.circuit fig5
.ground gnd
.port in
R r1 in n1 10k
D d1 n1 n2 vf=0.2 imax=100u
R r2 n2 gnd 10k
|}
  in
  check_bool "port declared" true (N.is_port n "in")

(* {1 Errors} *)

let test_error_unknown_card () = expect_error ~line:2 "\nX what is this 10k\n"

let test_error_bad_value () =
  expect_error ~line:2 "\nR r1 a gnd tenk\nR r2 a gnd 1k\n"

let test_error_bad_tolerance () =
  expect_error ~line:2 "\nR r1 a gnd 10k tol=banana\nR r2 a gnd 1k\n"

let test_error_wrong_arity () = expect_error ~line:2 "\nR r1 a gnd\n"

let test_error_missing_attr () =
  expect_error ~line:2 "\nQ t1 b c e beta=100\n"

let test_error_unknown_directive () = expect_error ~line:2 "\n.frobnicate x\n"

let test_error_ill_formed_netlist () =
  (* dangling node: rejected by netlist validation with line 0 *)
  expect_error ~line:0 "R r1 a gnd 1k\nR r2 b gnd 1k\n.ground gnd\n"

let test_error_duplicate_name () =
  expect_error "R r1 a gnd 1k\nR r1 a gnd 2k\n.ground gnd\n"

let test_parse_file_missing () =
  match P.parse_file "/nonexistent/file.ckt" with
  | Error e -> check_int "line 0" 0 e.P.line
  | Ok _ -> Alcotest.fail "expected an error"

(* {1 Round-tripping} *)

let roundtrip netlist =
  match P.parse (P.to_string netlist) with
  | Ok n -> n
  | Error e -> Alcotest.failf "roundtrip failed: %a" P.pp_error e

let same_structure a b =
  check_int "size" (N.size a) (N.size b);
  List.iter2
    (fun (x : C.t) (y : C.t) ->
      check_string "name" x.C.name y.C.name;
      List.iter
        (fun param ->
          check_close
            (x.C.name ^ "." ^ param)
            1e-6
            (I.centroid (C.nominal_parameter x param))
            (I.centroid (C.nominal_parameter y param)))
        (C.parameter_names x.C.kind))
    a.N.components b.N.components

let test_roundtrip_library_circuits () =
  List.iter
    (fun netlist -> same_structure netlist (roundtrip netlist))
    [
      L.voltage_divider ();
      L.diode_resistor ();
      L.three_stage_amplifier ();
      L.rc_lowpass ();
      L.rlc_bandpass ();
      L.sallen_key_lowpass ();
    ]

let test_roundtrip_preserves_tolerance () =
  let n = roundtrip (L.voltage_divider ()) in
  let r1 = C.nominal_parameter (N.find n "r1") "R" in
  let lo, hi = I.support r1 in
  check_close "1% tolerance kept" 1e-6 0.01 ((hi -. lo) /. 2. /. I.centroid r1)

let test_roundtrip_ports () =
  let n = roundtrip (L.diode_resistor ()) in
  check_bool "port preserved" true (N.is_port n "in")

(* {1 Parsed circuit through the full pipeline} *)

let test_parsed_circuit_diagnosis () =
  let nominal = parse_ok divider_src in
  let faulty =
    Flames_circuit.Fault.inject nominal
      (Flames_circuit.Fault.shifted "r2" ~parameter:"R" 14e3)
  in
  let sol = Flames_sim.Mna.solve faulty in
  let obs =
    Flames_sim.Measure.probe_all sol
      [ Flames_circuit.Quantity.voltage "in";
        Flames_circuit.Quantity.voltage "mid" ]
  in
  let r = Flames_core.Diagnose.run nominal obs in
  check_bool "parsed circuit diagnosable" true
    (not (Flames_core.Diagnose.healthy r))

let () =
  Alcotest.run "parser"
    [
      ( "values",
        [ Alcotest.test_case "engineering" `Quick test_engineering_values ] );
      ( "circuits",
        [
          Alcotest.test_case "divider" `Quick test_parse_divider;
          Alcotest.test_case "simulates" `Quick test_parse_simulates;
          Alcotest.test_case "all kinds" `Quick test_parse_all_kinds;
          Alcotest.test_case "ports" `Quick test_parse_ports;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown card" `Quick test_error_unknown_card;
          Alcotest.test_case "bad value" `Quick test_error_bad_value;
          Alcotest.test_case "bad tolerance" `Quick test_error_bad_tolerance;
          Alcotest.test_case "wrong arity" `Quick test_error_wrong_arity;
          Alcotest.test_case "missing attribute" `Quick
            test_error_missing_attr;
          Alcotest.test_case "unknown directive" `Quick
            test_error_unknown_directive;
          Alcotest.test_case "ill-formed netlist" `Quick
            test_error_ill_formed_netlist;
          Alcotest.test_case "duplicate name" `Quick
            test_error_duplicate_name;
          Alcotest.test_case "missing file" `Quick test_parse_file_missing;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "library circuits" `Quick
            test_roundtrip_library_circuits;
          Alcotest.test_case "tolerance" `Quick
            test_roundtrip_preserves_tolerance;
          Alcotest.test_case "ports" `Quick test_roundtrip_ports;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "diagnosis" `Quick test_parsed_circuit_diagnosis;
        ] );
    ]
