(* Tests for the best-test strategy unit: estimations, fuzzy entropy of a
   system and expected-entropy test ranking. *)

module I = Flames_fuzzy.Interval
module Lin = Flames_fuzzy.Linguistic
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Estimation = Flames_strategy.Estimation
module Best_test = Flames_strategy.Best_test

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* {1 Estimation} *)

let test_of_suspicion_terms () =
  let low = Estimation.of_suspicion "c" 0.02 in
  check_bool "low suspicion is correct" true
    ((Estimation.term_of low).Lin.name = "correct");
  let high = Estimation.of_suspicion "c" 1.0 in
  check_bool "full suspicion is faulty" true
    ((Estimation.term_of high).Lin.name = "faulty")

let test_faultiness_of_default () =
  let estimations = [ Estimation.make "a" (I.crisp 0.9) ] in
  check_float "present" 0.9
    (I.centroid (Estimation.faultiness_of estimations "a"));
  check_bool "absent defaults to correct" true
    (I.centroid (Estimation.faultiness_of estimations "zz") < 0.1)

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let diagnose_shorted_r2 probes =
  let nominal = L.three_stage_amplifier ~tolerance:0.005 () in
  let faulty = F.inject nominal (F.short "r2" ~parameter:"R") in
  let sol = Flames_sim.Mna.solve faulty in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol (List.map Q.voltage probes)
  in
  Flames_core.Diagnose.run ~config nominal obs

let test_of_diagnosis () =
  let r = diagnose_shorted_r2 [ "vs" ] in
  let estimations = Estimation.of_diagnosis r in
  check_int "all components estimated" 10 (List.length estimations);
  let centroid name = I.centroid (Estimation.faultiness_of estimations name) in
  check_bool "r2 above r6" true (centroid "r2" > centroid "r6")

(* {1 Entropy of a system} *)

let certain = Estimation.make "a" Lin.correct.Lin.value
let uncertain = Estimation.make "b" Lin.unknown.Lin.value

let test_system_entropy_ordering () =
  let low = Best_test.system_entropy [ certain; certain ] in
  let high = Best_test.system_entropy [ uncertain; uncertain ] in
  check_bool "uncertain system has more entropy" true
    (I.centroid high > I.centroid low)

(* {1 Test points and ranking} *)

let test_test_point_validation () =
  match Best_test.test_point ~cost:0. (Q.voltage "x") ~influencers:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero cost must be rejected"

let test_test_points_of_netlist () =
  let tests = Best_test.test_points_of_netlist (L.voltage_divider ()) in
  check_int "one test per non-ground node" 2 (List.length tests);
  List.iter
    (fun (t : Best_test.test_point) ->
      check_bool "has influencers" true (t.Best_test.influencers <> []))
    tests

let test_unsolvable_netlist_no_tests () =
  check_int "port circuit yields no tests" 0
    (List.length (Best_test.test_points_of_netlist (L.diode_resistor ())))

let test_informative_probe_wins () =
  let estimations =
    [
      Estimation.make "r1" Lin.likely_faulty.Lin.value;
      Estimation.make "r2" Lin.correct.Lin.value;
    ]
  in
  let informative =
    Best_test.test_point (Q.voltage "a") ~influencers:[ "r1" ]
  in
  let useless = Best_test.test_point (Q.voltage "b") ~influencers:[ "r2" ] in
  match Best_test.best estimations [ useless; informative ] with
  | Some e ->
    check_bool "informative probe chosen" true
      (Q.equal e.Best_test.test.Best_test.quantity (Q.voltage "a"))
  | None -> Alcotest.fail "no recommendation"

let test_cost_tips_the_scale () =
  let estimations = [ Estimation.make "r1" Lin.unknown.Lin.value ] in
  let cheap =
    Best_test.test_point ~cost:1. (Q.voltage "a") ~influencers:[ "r1" ]
  in
  let expensive =
    Best_test.test_point ~cost:100. (Q.voltage "b") ~influencers:[ "r1" ]
  in
  match Best_test.best estimations [ expensive; cheap ] with
  | Some e ->
    check_bool "cheap probe chosen" true
      (Q.equal e.Best_test.test.Best_test.quantity (Q.voltage "a"))
  | None -> Alcotest.fail "no recommendation"

let test_rank_sorted () =
  let estimations =
    [
      Estimation.make "r1" Lin.unknown.Lin.value;
      Estimation.make "r2" Lin.unknown.Lin.value;
    ]
  in
  let tests =
    [
      Best_test.test_point (Q.voltage "a") ~influencers:[ "r1" ];
      Best_test.test_point (Q.voltage "b") ~influencers:[ "r1"; "r2" ];
      Best_test.test_point ~cost:3. (Q.voltage "c") ~influencers:[ "r2" ];
    ]
  in
  let ranking = Best_test.rank estimations tests in
  check_int "all evaluated" 3 (List.length ranking);
  let scores = List.map (fun e -> e.Best_test.score) ranking in
  check_bool "sorted ascending" true (List.sort Float.compare scores = scores)

let test_best_empty () =
  check_bool "no tests, no advice" true (Best_test.best [] [] = None)

let test_evaluation_fields_sane () =
  let estimations = [ Estimation.make "r1" Lin.likely_faulty.Lin.value ] in
  let t = Best_test.test_point (Q.voltage "a") ~influencers:[ "r1" ] in
  let e = Best_test.evaluate estimations t in
  let lo, hi = I.support e.Best_test.deviant_likelihood in
  check_bool "likelihood within [0,1]" true (lo >= -1e-9 && hi <= 1. +. 1e-9);
  check_bool "expected entropy non-negative" true
    (I.centroid e.Best_test.expected_entropy >= -0.05)

(* {1 End-to-end on the amplifier} *)

let test_recommends_upstream_probe () =
  let r = diagnose_shorted_r2 [ "vs" ] in
  let estimations = Estimation.of_diagnosis r in
  let tests =
    Best_test.test_points_of_netlist
      (L.three_stage_amplifier ~tolerance:0.005 ())
    |> List.filter (fun (t : Best_test.test_point) ->
           not (Q.equal t.Best_test.quantity (Q.voltage "vs")))
  in
  match Best_test.best estimations tests with
  | Some e -> begin
    match e.Best_test.test.Best_test.quantity with
    | Q.Node_voltage n ->
      check_bool ("recommended " ^ n) true
        (List.mem n [ "v1"; "e1"; "n1"; "n2" ])
    | Q.Branch_current _ | Q.Terminal_current _ | Q.Voltage_drop _
    | Q.Parameter _ ->
      Alcotest.fail "expected a node probe"
  end
  | None -> Alcotest.fail "no recommendation"

let () =
  Alcotest.run "strategy"
    [
      ( "estimation",
        [
          Alcotest.test_case "of suspicion" `Quick test_of_suspicion_terms;
          Alcotest.test_case "faultiness default" `Quick
            test_faultiness_of_default;
          Alcotest.test_case "of diagnosis" `Quick test_of_diagnosis;
        ] );
      ( "entropy",
        [
          Alcotest.test_case "system ordering" `Quick
            test_system_entropy_ordering;
        ] );
      ( "best-test",
        [
          Alcotest.test_case "validation" `Quick test_test_point_validation;
          Alcotest.test_case "points of netlist" `Quick
            test_test_points_of_netlist;
          Alcotest.test_case "unsolvable netlist" `Quick
            test_unsolvable_netlist_no_tests;
          Alcotest.test_case "informative wins" `Quick
            test_informative_probe_wins;
          Alcotest.test_case "cost matters" `Quick test_cost_tips_the_scale;
          Alcotest.test_case "rank sorted" `Quick test_rank_sorted;
          Alcotest.test_case "empty" `Quick test_best_empty;
          Alcotest.test_case "evaluation sane" `Quick
            test_evaluation_fields_sane;
          Alcotest.test_case "recommends upstream" `Quick
            test_recommends_upstream_probe;
        ] );
    ]
