(** Compilation of a netlist into the paper's database unit: models of
    correct behaviour plus the assumptions governing their validity
    (section 6.2).

    Every component receives one assumption ("the component behaves
    according to its model"); optionally every internal node receives one
    too ("the node is electrically sound"), so that broken connections are
    diagnosable.  The compiled constraints are:

    - resistor [r]:  [V(p) − V(n) = drop(r)], [drop(r) = I(r) ⊗ r.R],
      nominal [r.R] under [ok(r)];
    - voltage source [v]:  [V(p) − V(n) = v.V], nominal [v.V] under [ok(v)];
    - diode [d]:  [V(p) − V(n) = d.Vf], nominal [d.Vf] under [ok(d)],
      current bound [I(d) ∈ d.Imax] under [ok(d)];
    - gain block [a]:  [V(out) = a.gain ⊗ V(in)], nominal under [ok(a)];
    - BJT [t] (linear region):  [V(b) − V(e) = t.vbe],
      [I(t.c) = t.beta ⊗ I(t.b)], [I(t.e) = I(t.b) + I(t.c)],
      nominals under [ok(t)];
    - KCL at each non-ground node (under the node assumption when
      enabled);
    - ground reference [V(ground) = 0] as a premise. *)

module Env = Flames_atms.Env
module Quantity = Flames_circuit.Quantity
module Netlist = Flames_circuit.Netlist

type config = {
  node_assumptions : bool;
      (** give internal nodes their own assumptions (default [false]:
          the paper diagnoses node faults through component fault modes) *)
  kcl : bool;  (** generate Kirchhoff current-law constraints *)
  trusted : string list;
      (** components assumed correct a priori (e.g. the power supply):
          their models hold unconditionally and they never appear in
          candidate sets *)
}

val default_config : config
(** [{ node_assumptions = false; kcl = true; trusted = [] }] *)

type t = private {
  netlist : Netlist.t;
  config : config;
  constraints : Constr.t list;
  quantities : Quantity.t list;  (** all quantities mentioned *)
  assumption_names : string array;  (** assumption id → entity name *)
}

val compile : ?config:config -> Netlist.t -> t

val assumption_id : t -> string -> int
(** Assumption id of a component (or node, when enabled) name.
    @raise Not_found otherwise. *)

val assumption_name : t -> int -> string
val env_of : t -> string list -> Env.t
val component_assumptions : t -> (string * int) list
(** Component name → assumption id (nodes excluded). *)

val pp : Format.formatter -> t -> unit
