(** Multidirectional fuzzy constraints.

    A constraint relates a tuple of quantities; it can compute any one of
    its variables from the values of the others using fuzzy arithmetic
    (the paper's section 6.2: "a resistor is governed by Ir = Vr / r and
    Vr = Ir * r").  Three structured forms cover the circuit models:

    - {e linear}: [Σ cᵢ·qᵢ = k] — Kirchhoff laws, fixed voltage drops;
    - {e product}: [q₀ = q₁ ⊗ q₂] — Ohm's law, gain and beta relations;
    - {e bound}: [q ∈ S] — model inequalities such as the paper's diode
      current bound [[-1, 100, 0, 10] µA];
    - {e nominal}: [q = S] — a database nominal value.

    Bound and nominal constraints have no antecedents: they generate a
    value for their quantity under their assumption set. *)

module Interval = Flames_fuzzy.Interval
module Env = Flames_atms.Env
module Quantity = Flames_circuit.Quantity

type form =
  | Linear of (float * Quantity.t) list * float  (** [Σ cᵢ·qᵢ = k] *)
  | Product of Quantity.t * Quantity.t * Quantity.t  (** [q₀ = q₁ ⊗ q₂] *)
  | Bound of Quantity.t * Interval.t
  | Nominal of Quantity.t * Interval.t

type t = private {
  name : string;
  form : form;
  assumptions : Env.t;  (** assumptions under which the relation holds *)
  degree : float;  (** certainty of the clause, in (0, 1] *)
  guards : (Quantity.t * Interval.t) list;
      (** fuzzy applicability conditions: the constraint fires with its
          degree scaled by the possibility that every guard quantity lies
          in its guard set (the paper's qualitative rules, e.g. "if
          Vbe(T) ≥ 0.4 then T is ON", section 6.2; the active-region
          condition Vce > Vce,sat guards the β relations).  Evaluated
          against observational values only; absent evidence leaves the
          degree unchanged. *)
}

val make :
  ?degree:float ->
  ?assumptions:Env.t ->
  ?guards:(Quantity.t * Interval.t) list ->
  string ->
  form ->
  t
(** @raise Invalid_argument on a linear form with a zero coefficient or
    fewer than two terms, or a product with repeated quantities. *)

val vars : t -> Quantity.t list
(** The quantities the constraint mentions (no duplicates). *)

val sources : t -> Quantity.t list
(** The quantities that must be known before the constraint can fire
    towards a target; empty for generative (bound/nominal) forms. *)

val solve_for :
  t -> Quantity.t -> (Quantity.t -> Interval.t option) -> Interval.t option
(** [solve_for c q lookup] computes the value of [q] implied by [c] and
    the other variables' values from [lookup]; [None] when a needed value
    is missing, [q] is not a variable of [c], or the fuzzy operation is
    undefined (division by a zero-spanning interval). *)

val is_generative : t -> bool
val pp : Format.formatter -> t -> unit
