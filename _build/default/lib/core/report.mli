(** Human-readable diagnosis reports (what the FLAMES expert reads). *)

val pp_symptom : Format.formatter -> Diagnose.symptom -> unit
val pp_suspect : Format.formatter -> Diagnose.suspect -> unit
val pp_result : Format.formatter -> Diagnose.result -> unit
(** Full report: symptoms with Dc, conflicts, ranked suspects with fault
    modes, minimal diagnoses. *)

val summary : Diagnose.result -> string
(** One line: healthy, or the best diagnosis with its rank. *)
