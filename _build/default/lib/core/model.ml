module Env = Flames_atms.Env
module Quantity = Flames_circuit.Quantity
module Q = Flames_circuit.Quantity
module C = Flames_circuit.Component
module Netlist = Flames_circuit.Netlist

type config = { node_assumptions : bool; kcl : bool; trusted : string list }

let default_config = { node_assumptions = false; kcl = true; trusted = [] }

type t = {
  netlist : Netlist.t;
  config : config;
  constraints : Constr.t list;
  quantities : Q.t list;
  assumption_names : string array;
}

let assumption_table netlist config =
  let components =
    List.filter
      (fun n -> not (List.mem n config.trusted))
      (Netlist.component_names netlist)
  in
  let nodes =
    if config.node_assumptions then
      List.filter (fun n -> n <> netlist.Netlist.ground) (Netlist.nodes netlist)
    else []
  in
  Array.of_list (components @ nodes)

(* Current flowing into the device at the given terminal of the component,
   as a signed multiple of the component's current quantity; None for a
   terminal that draws no current (gain-block input). *)
let kcl_term (c : C.t) terminal =
  match c.kind with
  | C.Resistor _ | C.Capacitor _ | C.Inductor _ | C.Voltage_source _
  | C.Diode _ ->
    let sign = if terminal = "p" then 1. else -1. in
    Some (sign, Q.current c.name)
  | C.Gain_block _ ->
    if terminal = "in" then None else Some (-1., Q.current c.name)
  | C.Bjt _ -> begin
    match terminal with
    | "b" -> Some (1., Q.terminal_current c.name "b")
    | "c" -> Some (1., Q.terminal_current c.name "c")
    | _ -> Some (-1., Q.terminal_current c.name "e")
  end

let component_constraints ok (c : C.t) =
  let name = c.name in
  let nominal param =
    Constr.make
      (Printf.sprintf "nominal(%s.%s)" name param)
      ~assumptions:(ok name)
      (Constr.Nominal (Q.parameter name param, C.nominal_parameter c param))
  in
  let node t = Q.voltage (C.node_of c t) in
  match c.kind with
  | C.Resistor _ ->
    [
      Constr.make
        (Printf.sprintf "kvl(%s)" name)
        (Constr.Linear ([ (1., node "p"); (-1., node "n"); (-1., Q.drop name) ], 0.));
      Constr.make
        (Printf.sprintf "ohm(%s)" name)
        (Constr.Product (Q.drop name, Q.current name, Q.parameter name "R"));
      nominal "R";
    ]
  | C.Capacitor _ ->
    (* static (DC) model: a healthy capacitor carries no current; its
       dynamic behaviour is handled by the frequency-domain driver *)
    [
      Constr.make
        (Printf.sprintf "kvl(%s)" name)
        (Constr.Linear ([ (1., node "p"); (-1., node "n"); (-1., Q.drop name) ], 0.));
      Constr.make
        (Printf.sprintf "blocks(%s)" name)
        ~assumptions:(ok name)
        (Constr.Bound
           (Q.current name, Flames_fuzzy.Interval.number 0. ~spread:1e-9));
      nominal "C";
    ]
  | C.Inductor _ ->
    (* static (DC) model: a healthy inductor drops no voltage *)
    [
      Constr.make
        (Printf.sprintf "kvl(%s)" name)
        (Constr.Linear ([ (1., node "p"); (-1., node "n"); (-1., Q.drop name) ], 0.));
      Constr.make
        (Printf.sprintf "shorts(%s)" name)
        ~assumptions:(ok name)
        (Constr.Bound
           (Q.drop name, Flames_fuzzy.Interval.number 0. ~spread:1e-6));
      nominal "L";
    ]
  | C.Voltage_source _ ->
    [
      Constr.make
        (Printf.sprintf "emf(%s)" name)
        (Constr.Linear
           ([ (1., node "p"); (-1., node "n"); (-1., Q.parameter name "V") ], 0.));
      nominal "V";
    ]
  | C.Diode _ ->
    [
      Constr.make
        (Printf.sprintf "drop(%s)" name)
        (Constr.Linear
           ([ (1., node "p"); (-1., node "n"); (-1., Q.parameter name "Vf") ], 0.));
      nominal "Vf";
      Constr.make
        (Printf.sprintf "imax(%s)" name)
        ~assumptions:(ok name)
        (Constr.Bound (Q.current name, C.nominal_parameter c "Imax"));
    ]
  | C.Gain_block _ ->
    [
      Constr.make
        (Printf.sprintf "gain(%s)" name)
        (Constr.Product (node "out", Q.parameter name "gain", node "in"));
      nominal "gain";
    ]
  | C.Bjt b ->
    (* qualitative region rules (paper section 6.2): the conduction rule
       "if the base voltage allows Vbe ≥ 0.4 then T is ON" guards the
       whole linear model, and the β relations additionally require the
       active region (Vce above saturation) — a healthy transistor in
       saturation does not obey Ic = β·Ib *)
    let conduction =
      (* support starts at 0.4 V: the paper's "Vbe(T) ≥ 0.4" threshold *)
      Flames_fuzzy.Interval.make ~m1:0.55 ~m2:1e9 ~alpha:0.15 ~beta:0.
    in
    let active =
      (* support starts at Vce,sat = 0.2 V *)
      Flames_fuzzy.Interval.make ~m1:0.3 ~m2:1e9 ~alpha:0.1 ~beta:0.
    in
    let vce = Q.drop (name ^ ":ce") in
    let conducting = [ (node "b", conduction) ] in
    let in_active_region = (vce, active) :: conducting in
    let beta_plus_one = Flames_fuzzy.Arith.shift 1. b.C.beta in
    [
      Constr.make
        (Printf.sprintf "vce(%s)" name)
        (Constr.Linear ([ (1., node "c"); (-1., node "e"); (-1., vce) ], 0.));
      Constr.make
        (Printf.sprintf "vbe(%s)" name)
        ~guards:conducting
        (Constr.Linear
           ([ (1., node "b"); (-1., node "e"); (-1., Q.parameter name "vbe") ], 0.));
      Constr.make
        (Printf.sprintf "beta(%s)" name)
        ~guards:in_active_region
        (Constr.Product
           ( Q.terminal_current name "c",
             Q.parameter name "beta",
             Q.terminal_current name "b" ));
      Constr.make
        (Printf.sprintf "ie-gain(%s)" name)
        ~guards:in_active_region
        (Constr.Product
           ( Q.terminal_current name "e",
             Q.parameter name "beta+1",
             Q.terminal_current name "b" ));
      Constr.make
        (Printf.sprintf "ie(%s)" name)
        ~guards:conducting
        (Constr.Linear
           ([
              (1., Q.terminal_current name "e");
              (-1., Q.terminal_current name "b");
              (-1., Q.terminal_current name "c");
            ], 0.));
      Constr.make
        (Printf.sprintf "nominal(%s.beta+1)" name)
        ~assumptions:(ok name)
        (Constr.Nominal (Q.parameter name "beta+1", beta_plus_one));
      nominal "beta";
      nominal "vbe";
    ]

let kcl_constraints netlist ok config =
  if not config.kcl then []
  else
    Netlist.nodes netlist
    |> List.filter (fun n ->
           n <> netlist.Netlist.ground && not (Netlist.is_port netlist n))
    |> List.filter_map (fun node ->
           let terms =
             List.concat_map
               (fun (c : C.t) ->
                 List.filter_map
                   (fun (terminal, n) ->
                     if n = node then kcl_term c terminal else None)
                   c.nodes)
               (Netlist.components_at netlist node)
           in
           if List.length terms < 2 then None
           else
             let assumptions =
               if config.node_assumptions then ok node else Env.empty
             in
             Some
               (Constr.make
                  (Printf.sprintf "kcl(%s)" node)
                  ~assumptions (Constr.Linear (terms, 0.))))

let compile ?(config = default_config) netlist =
  let assumption_names = assumption_table netlist config in
  let index = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.add index n i) assumption_names;
  let ok name =
    match Hashtbl.find_opt index name with
    | Some id -> Env.singleton id
    | None -> Env.empty
  in
  let ground =
    Constr.make "ground"
      (Constr.Nominal
         (Q.voltage netlist.Netlist.ground, Flames_fuzzy.Interval.crisp 0.))
  in
  let constraints =
    ground
    :: (List.concat_map (component_constraints ok) netlist.Netlist.components
       @ kcl_constraints netlist ok config)
  in
  let quantities =
    List.concat_map Constr.vars constraints |> List.sort_uniq Q.compare
  in
  { netlist; config; constraints; quantities; assumption_names }

let assumption_id t name =
  let n = Array.length t.assumption_names in
  let rec find i =
    if i >= n then raise Not_found
    else if t.assumption_names.(i) = name then i
    else find (i + 1)
  in
  find 0

let assumption_name t id =
  if id >= 0 && id < Array.length t.assumption_names then
    t.assumption_names.(id)
  else Printf.sprintf "A%d" id

let env_of t names = Env.of_list (List.map (assumption_id t) names)

let component_assumptions t =
  List.mapi (fun i n -> (n, i)) (Array.to_list t.assumption_names)
  |> List.filter (fun (n, _) -> Netlist.mem t.netlist n)
  |> List.map (fun (n, i) -> (n, i))

let pp ppf t =
  Format.fprintf ppf "model of %s: %d constraints, %d quantities@."
    t.netlist.Netlist.name
    (List.length t.constraints)
    (List.length t.quantities);
  List.iter (fun c -> Format.fprintf ppf "  %a@." Constr.pp c) t.constraints
