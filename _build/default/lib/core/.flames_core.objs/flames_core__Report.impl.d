lib/core/report.ml: Diagnose Flames_atms Flames_circuit Flames_fuzzy Format List Printf Propagate String
