lib/core/model.mli: Constr Flames_atms Flames_circuit Format
