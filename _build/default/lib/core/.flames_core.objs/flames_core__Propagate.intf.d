lib/core/propagate.mli: Flames_atms Flames_circuit Flames_fuzzy Format Model Value
