lib/core/constr.ml: Flames_atms Flames_circuit Flames_fuzzy Format List Option
