lib/core/value.mli: Flames_atms Flames_fuzzy Format Set
