lib/core/propagate.ml: Constr Flames_atms Flames_circuit Flames_fuzzy Float Format Hashtbl List Logs Model Option Queue Value
