lib/core/diagnose.ml: Constr Flames_atms Flames_circuit Flames_fuzzy Flames_sim Float List Model Option Propagate Value
