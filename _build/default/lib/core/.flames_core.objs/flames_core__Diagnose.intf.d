lib/core/diagnose.mli: Flames_atms Flames_circuit Flames_fuzzy Model Propagate
