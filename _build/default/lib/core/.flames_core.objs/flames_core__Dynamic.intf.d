lib/core/dynamic.mli: Flames_atms Flames_circuit Flames_fuzzy Flames_sim Format
