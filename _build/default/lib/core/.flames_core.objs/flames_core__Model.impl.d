lib/core/model.ml: Array Constr Flames_atms Flames_circuit Flames_fuzzy Format Hashtbl List Printf
