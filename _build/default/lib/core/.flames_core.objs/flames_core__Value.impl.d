lib/core/value.ml: Flames_atms Flames_fuzzy Float Format Int Set String
