lib/core/dynamic.ml: Array Flames_atms Flames_circuit Flames_fuzzy Flames_sim Float Format List Option Printf
