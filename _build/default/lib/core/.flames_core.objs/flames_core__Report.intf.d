lib/core/report.mli: Diagnose Format
