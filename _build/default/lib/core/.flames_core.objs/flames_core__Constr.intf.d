lib/core/constr.mli: Flames_atms Flames_circuit Flames_fuzzy Format
