(** Propagated values.

    A value attached to a quantity carries the fuzzy interval itself, the
    assumption environment under which it was derived, a believability
    degree (min over the certainty degrees of the clauses used), its
    provenance, and an {e observational} flag — whether a measurement
    participates in its derivation.  The flag orients the degree of
    consistency: at a coincidence, [Dc] is taken with the observational
    value as [Vm] and the model-side value as [Vn] (paper section 6.1.2);
    between two values of the same side, the worst of both directions is
    used, following the paper's coincidence-resolution rule. *)

module Interval = Flames_fuzzy.Interval
module Env = Flames_atms.Env

type origin =
  | Measured  (** an observation entered by the user or the test bench *)
  | Given  (** a nominal parameter value from the component database *)
  | Bound  (** a model inequality such as the diode current bound *)
  | Derived of string  (** computed by the named constraint *)

module History : Set.S with type elt = string
(** Names of the constraints used in a value's derivation.  A constraint
    never fires on an antecedent whose history already contains it: this
    blocks "echo" derivations where a value is pushed through a relation
    and back, which would otherwise manufacture spurious self-conflicts. *)

type t = {
  interval : Interval.t;
  env : Env.t;
  degree : float;
  origin : origin;
  observational : bool;
  history : History.t;
}

val measured : Interval.t -> t

val given : ?degree:float -> Interval.t -> Env.t -> t
(** [degree] defaults to 1; simulator-derived predictions pass a lower
    degree because they are linearisations at the nominal operating
    point (see {!Diagnose.run}). *)

val bound : Interval.t -> Env.t -> t

val derived :
  string ->
  Interval.t ->
  Env.t ->
  float ->
  observational:bool ->
  history:History.t ->
  t

val is_measured : t -> bool

val strength : t -> t -> int
(** Preference order used when a cell overflows: measured values first,
    then tighter intervals, then smaller environments.  [strength a b < 0]
    when [a] is preferred. *)

val subsumes : t -> t -> bool
(** [subsumes a b] when [a] makes [b] redundant: same-or-tighter interval
    under a subset environment and a subset history, with at least the
    degree, on the same side (observational or model). *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
