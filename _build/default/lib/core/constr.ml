module Interval = Flames_fuzzy.Interval
module Arith = Flames_fuzzy.Arith
module Env = Flames_atms.Env
module Quantity = Flames_circuit.Quantity

type form =
  | Linear of (float * Quantity.t) list * float
  | Product of Quantity.t * Quantity.t * Quantity.t
  | Bound of Quantity.t * Interval.t
  | Nominal of Quantity.t * Interval.t

type t = {
  name : string;
  form : form;
  assumptions : Env.t;
  degree : float;
  guards : (Quantity.t * Interval.t) list;
}

let make ?(degree = 1.) ?(assumptions = Env.empty) ?(guards = []) name form =
  (match form with
  | Linear (terms, _) ->
    if List.length terms < 2 then
      invalid_arg (name ^ ": linear constraint needs at least two terms");
    if List.exists (fun (c, _) -> c = 0.) terms then
      invalid_arg (name ^ ": zero coefficient in linear constraint");
    let qs = List.map snd terms in
    if List.length (List.sort_uniq Quantity.compare qs) <> List.length qs then
      invalid_arg (name ^ ": repeated quantity in linear constraint")
  | Product (q0, q1, q2) ->
    if Quantity.equal q0 q1 || Quantity.equal q0 q2 || Quantity.equal q1 q2
    then invalid_arg (name ^ ": repeated quantity in product constraint")
  | Bound _ | Nominal _ -> ());
  { name; form; assumptions; degree = Flames_fuzzy.Tnorm.clamp01 degree; guards }

let vars c =
  match c.form with
  | Linear (terms, _) -> List.map snd terms
  | Product (q0, q1, q2) -> [ q0; q1; q2 ]
  | Bound (q, _) | Nominal (q, _) -> [ q ]

let is_generative c =
  match c.form with
  | Bound _ | Nominal _ -> true
  | Linear _ | Product _ -> false

let sources c = if is_generative c then [] else vars c

let guard f = try f () with Arith.Undefined _ -> None

let solve_for c target lookup =
  match c.form with
  | Bound (q, set) | Nominal (q, set) ->
    if Quantity.equal q target then Some set else None
  | Linear (terms, k) ->
    if not (List.exists (fun (_, q) -> Quantity.equal q target) terms) then None
    else begin
      (* target = (k - Σ_{i≠t} cᵢ qᵢ) / c_t *)
      let rec gather acc coeff = function
        | [] -> Option.map (fun acc -> (acc, coeff)) (Some acc)
        | (ci, qi) :: rest ->
          if Quantity.equal qi target then gather acc (Some ci) rest
          else begin
            match lookup qi with
            | None -> None
            | Some v -> begin
              match gather acc coeff rest with
              | None -> None
              | Some (acc, coeff) -> Some (Arith.add acc (Arith.scale ci v), coeff)
            end
          end
      in
      match gather (Interval.crisp 0.) None terms with
      | Some (total, Some ct) ->
        Some (Arith.scale (1. /. ct) (Arith.sub (Interval.crisp k) total))
      | Some (_, None) | None -> None
    end
  | Product (q0, q1, q2) ->
    let v q = lookup q in
    if Quantity.equal target q0 then
      match (v q1, v q2) with
      | Some a, Some b -> Some (Arith.mul a b)
      | None, _ | _, None -> None
    else if Quantity.equal target q1 then
      match (v q0, v q2) with
      | Some a, Some b -> guard (fun () -> Some (Arith.div a b))
      | None, _ | _, None -> None
    else if Quantity.equal target q2 then
      match (v q0, v q1) with
      | Some a, Some b -> guard (fun () -> Some (Arith.div a b))
      | None, _ | _, None -> None
    else None

let pp ppf c =
  let pp_form ppf = function
    | Linear (terms, k) ->
      Format.fprintf ppf "%a = %g"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
           (fun ppf (coeff, q) ->
             if coeff = 1. then Quantity.pp ppf q
             else Format.fprintf ppf "%g·%a" coeff Quantity.pp q))
        terms k
    | Product (q0, q1, q2) ->
      Format.fprintf ppf "%a = %a ⊗ %a" Quantity.pp q0 Quantity.pp q1
        Quantity.pp q2
    | Bound (q, set) ->
      Format.fprintf ppf "%a ∈ %a" Quantity.pp q Interval.pp set
    | Nominal (q, set) ->
      Format.fprintf ppf "%a ≐ %a" Quantity.pp q Interval.pp set
  in
  Format.fprintf ppf "%s: %a" c.name pp_form c.form
