module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency
module Quantity = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault

let pp_symptom ppf (s : Diagnose.symptom) =
  Format.fprintf ppf "%a measured %a" Quantity.pp s.Diagnose.quantity
    Interval.pp s.Diagnose.measured;
  (match s.Diagnose.predicted with
  | Some p -> Format.fprintf ppf ", predicted %a" Interval.pp p
  | None -> Format.fprintf ppf ", no prediction");
  match s.Diagnose.verdict with
  | Some v -> Format.fprintf ppf " — %a" Consistency.pp_verdict v
  | None -> ()

let pp_mode_estimate ppf (e : Diagnose.mode_estimate) =
  match e.Diagnose.estimated with
  | None -> Format.fprintf ppf "%s: no estimate" e.Diagnose.parameter
  | Some actual ->
    Format.fprintf ppf "%s: nominal %.4g, estimated %.4g" e.Diagnose.parameter
      e.Diagnose.nominal actual;
    match e.Diagnose.modes with
    | [] -> ()
    | (mode, d) :: _ -> Format.fprintf ppf " (%a @@ %.2g)" Fault.pp_mode mode d

let pp_suspect ppf (s : Diagnose.suspect) =
  Format.fprintf ppf "%s @@ %.3g" s.Diagnose.component s.Diagnose.suspicion;
  List.iter
    (fun e ->
      if e.Diagnose.estimated <> None then
        Format.fprintf ppf "@.      %a" pp_mode_estimate e)
    s.Diagnose.estimates

let pp_result ppf (r : Diagnose.result) =
  Format.fprintf ppf "=== diagnosis of %s ===@."
    r.Diagnose.netlist.Flames_circuit.Netlist.name;
  Format.fprintf ppf "symptoms:@.";
  List.iter (fun s -> Format.fprintf ppf "  %a@." pp_symptom s) r.Diagnose.symptoms;
  if r.Diagnose.conflicts = [] then
    Format.fprintf ppf "no conflict: circuit consistent with its model@."
  else begin
    Format.fprintf ppf "conflicts:@.";
    List.iter
      (fun (c : Flames_atms.Candidates.conflict) ->
        Format.fprintf ppf "  %a @@ %.3g (%s)@."
          (Flames_atms.Env.pp ~names:(Propagate.names r.Diagnose.engine))
          c.Flames_atms.Candidates.env c.Flames_atms.Candidates.degree
          c.Flames_atms.Candidates.reason)
      r.Diagnose.conflicts;
    Format.fprintf ppf "suspects:@.";
    List.iter
      (fun s -> Format.fprintf ppf "  %a@." pp_suspect s)
      r.Diagnose.suspects;
    Format.fprintf ppf "minimal diagnoses:@.";
    List.iter
      (fun (members, rank) ->
        Format.fprintf ppf "  {%s} @@ %.3g@." (String.concat ", " members) rank)
      r.Diagnose.diagnoses
  end

let summary (r : Diagnose.result) =
  if Diagnose.healthy r then "healthy: no conflict detected"
  else
    match r.Diagnose.diagnoses with
    | (members, rank) :: _ ->
      Printf.sprintf "faulty: best diagnosis {%s} @ %.3g"
        (String.concat ", " members) rank
    | [] -> "faulty: conflicts recorded but no diagnosis computed"
