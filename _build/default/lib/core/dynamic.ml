module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency
module Env = Flames_atms.Env
module Nogood = Flames_atms.Nogood
module Candidates = Flames_atms.Candidates
module Netlist = Flames_circuit.Netlist
module Component = Flames_circuit.Component
module Fault = Flames_circuit.Fault
module Ac = Flames_sim.Ac

type observation = {
  node : string;
  frequency : float;
  magnitude : Interval.t;
}

let observe ?(instrument = Flames_sim.Measure.default_instrument) ?source
    netlist ~node ~frequency =
  let response = Ac.solve ?source netlist frequency in
  let reading = Ac.magnitude response node in
  { node; frequency; magnitude = Flames_sim.Measure.fuzzify instrument reading }

type symptom = {
  observation : observation;
  predicted : Interval.t option;
  verdict : Consistency.verdict option;
}

type mode_estimate = {
  parameter : string;
  nominal : float;
  estimated : float option;
  fit_residual : float option;
  modes : (Fault.mode * float) list;
}

type suspect = {
  component : string;
  suspicion : float;
  explains : bool;
  estimates : mode_estimate list;
}

type result = {
  netlist : Netlist.t;
  symptoms : symptom list;
  conflicts : Candidates.conflict list;
  suspects : suspect list;
  diagnoses : (string list * float) list;
  assumption_names : string array;
}

let fit_threshold = 0.05
let probe_step = 0.01

let magnitude_at ?source netlist ~node ~frequency =
  match Ac.solve ?source netlist frequency with
  | r -> Some (Ac.magnitude r node)
  | exception (Flames_sim.Clinalg.Singular | Ac.Unsupported _) -> None

let with_param netlist (c : Component.t) param value =
  Netlist.replace netlist
    (Component.with_parameter c param (Interval.crisp value))

(* Per-observation prediction: nominal magnitude plus, per component, the
   tolerance-induced spread (1 % move scaled to the tolerance) and the
   fault-world influence (1 % move and parameter-appropriate extremes) —
   the frequency-domain analogue of [Flames_sim.Sensitivity]. *)
let extreme_multipliers = function
  | "R" | "C" | "L" -> [ 1e-6; 1e9 ]
  | "V" -> [ 1e-6; 2. ]
  | "gain" -> [ 1e-6; 10. ]
  | _ -> []

let relative_tolerance interval =
  let lo, hi = Interval.support interval in
  let c = Interval.centroid interval in
  if c = 0. then 0. else (hi -. lo) /. 2. /. Float.abs c

type prediction = {
  nominal_mag : float;
  spread : float;
  influences : (string * float) list;  (** component → worst-case |Δmag| *)
}

let predict ?source netlist ~node ~frequency =
  match magnitude_at ?source netlist ~node ~frequency with
  | None -> None
  | Some base ->
    let per_component =
      List.map
        (fun (c : Component.t) ->
          let influence, spread =
            List.fold_left
              (fun (influence, spread) param ->
                let nominal = Component.nominal_parameter c param in
                let centre = Interval.centroid nominal in
                if centre = 0. then (influence, spread)
                else
                  let mag_with mult =
                    magnitude_at ?source
                      (with_param netlist c param (centre *. mult))
                      ~node ~frequency
                  in
                  match mag_with (1. +. probe_step) with
                  | None -> (influence, spread)
                  | Some moved ->
                    let dv = Float.abs (moved -. base) in
                    let tol = relative_tolerance nominal in
                    let dv_extreme =
                      List.fold_left
                        (fun acc mult ->
                          match mag_with mult with
                          | Some m -> Float.max acc (Float.abs (m -. base))
                          | None -> acc)
                        dv (extreme_multipliers param)
                    in
                    ( Float.max influence dv_extreme,
                      spread +. (dv *. (tol /. probe_step)) ))
              (0., 0.)
              (Component.parameter_names c.Component.kind)
          in
          (c.Component.name, influence, spread))
        netlist.Netlist.components
    in
    let spread =
      List.fold_left (fun acc (_, _, s) -> acc +. s) 0. per_component
    in
    let influences = List.map (fun (n, i, _) -> (n, i)) per_component in
    Some { nominal_mag = base; spread; influences }

let supporters ~threshold prediction =
  let max_influence =
    List.fold_left
      (fun acc (_, i) -> Float.max acc i)
      0. prediction.influences
  in
  if max_influence <= 0. then []
  else
    prediction.influences
    |> List.filter (fun (_, i) -> i >= threshold *. max_influence)
    |> List.map fst

let residual ?source netlist observations =
  let rec total acc = function
    | [] -> Some acc
    | o :: rest -> begin
      match
        magnitude_at ?source netlist ~node:o.node ~frequency:o.frequency
      with
      | None -> None
      | Some m ->
        let measured = Interval.centroid o.magnitude in
        let scale = Float.max 0.01 (Float.abs measured) in
        total (acc +. (((m -. measured) /. scale) ** 2.)) rest
    end
  in
  total 0. observations

let fit_parameter ?source netlist observations (c : Component.t) param =
  let nominal = Interval.centroid (Component.nominal_parameter c param) in
  if nominal = 0. then None
  else
    let try_value v =
      Option.map (fun r -> (v, r))
        (residual ?source (with_param netlist c param v) observations)
    in
    let best_of candidates =
      List.filter_map try_value candidates
      |> List.fold_left
           (fun best (v, r) ->
             match best with
             | Some (_, br) when br <= r -> best
             | Some _ | None -> Some (v, r))
           None
    in
    let coarse =
      List.map
        (fun m -> nominal *. m)
        [ 1e-6; 1e-3; 0.01; 0.1; 0.3; 0.5; 0.7; 0.85; 0.95; 1.; 1.05; 1.15;
          1.3; 1.5; 2.; 3.; 10.; 100.; 1e3; 1e6 ]
    in
    match best_of coarse with
    | None -> None
    | Some (v0, _) ->
      let refine centre fs = List.map (fun f -> centre *. f) fs in
      let pass1 = best_of (refine v0 [ 0.5; 0.7; 0.85; 1.; 1.15; 1.4; 2. ]) in
      let v1 = match pass1 with Some (v, _) -> v | None -> v0 in
      let pass2 = best_of (refine v1 [ 0.94; 0.97; 1.; 1.03; 1.06 ]) in
      (match pass2 with Some _ -> pass2 | None -> pass1)

let run ?(trusted = []) ?source ?(min_conflict_degree = 0.02) netlist
    observations =
  let assumption_names =
    Netlist.component_names netlist
    |> List.filter (fun n -> not (List.mem n trusted))
    |> Array.of_list
  in
  let id_of name =
    let n = Array.length assumption_names in
    let rec find i =
      if i >= n then None
      else if assumption_names.(i) = name then Some i
      else find (i + 1)
    in
    find 0
  in
  let db = Nogood.create () in
  let symptoms =
    List.map
      (fun o ->
        match predict ?source netlist ~node:o.node ~frequency:o.frequency with
        | None -> { observation = o; predicted = None; verdict = None }
        | Some p ->
          let spread = Float.max p.spread (0.002 *. Float.abs p.nominal_mag) in
          let predicted = Interval.number p.nominal_mag ~spread in
          let verdict =
            let v =
              Consistency.verdict ~measured:o.magnitude ~nominal:predicted
            in
            let dc =
              Float.max v.Consistency.dc
                (Flames_fuzzy.Piecewise.height_of_min o.magnitude predicted)
            in
            {
              Consistency.dc;
              direction =
                (if dc >= 0.995 then Consistency.Within
                 else v.Consistency.direction);
            }
          in
          let degree = 1. -. verdict.Consistency.dc in
          if degree >= min_conflict_degree then begin
            let env =
              supporters ~threshold:0.02 p
              |> List.filter_map id_of
              |> Env.of_list
            in
            let reason =
              Printf.sprintf "|V(%s)| @ %g Hz" o.node o.frequency
            in
            ignore (Nogood.record db ~reason env degree)
          end;
          { observation = o; predicted = Some predicted; verdict = Some verdict })
      observations
  in
  let conflicts = Candidates.of_nogoods (Nogood.entries db) in
  let name_of id = assumption_names.(id) in
  let suspects =
    Candidates.suspicions conflicts
    |> List.map (fun (id, suspicion) ->
           let component = name_of id in
           let comp = Netlist.find netlist component in
           let estimates =
             List.map
               (fun parameter ->
                 let nominal =
                   Interval.centroid (Component.nominal_parameter comp parameter)
                 in
                 match fit_parameter ?source netlist observations comp parameter with
                 | Some (actual, r) ->
                   {
                     parameter;
                     nominal;
                     estimated = Some actual;
                     fit_residual = Some r;
                     modes = Fault.classify ~nominal ~actual;
                   }
                 | None ->
                   {
                     parameter;
                     nominal;
                     estimated = None;
                     fit_residual = None;
                     modes = [];
                   })
               (Component.parameter_names comp.Component.kind)
           in
           let explains =
             List.exists
               (fun e ->
                 match e.fit_residual with
                 | Some r -> r <= fit_threshold
                 | None -> false)
               estimates
           in
           { component; suspicion; explains; estimates })
  in
  let diagnoses =
    Candidates.diagnoses conflicts
    |> List.map (fun (d : Candidates.diagnosis) ->
           (List.map name_of (Env.to_list d.Candidates.members), d.Candidates.rank))
  in
  { netlist; symptoms; conflicts; suspects; diagnoses; assumption_names }

let healthy r = r.conflicts = []

let pp_result ppf r =
  Format.fprintf ppf "=== dynamic-mode diagnosis of %s ===@."
    r.netlist.Netlist.name;
  List.iter
    (fun s ->
      Format.fprintf ppf "  |V(%s)| @@ %g Hz: measured %a" s.observation.node
        s.observation.frequency Interval.pp s.observation.magnitude;
      (match s.predicted with
      | Some p -> Format.fprintf ppf ", predicted %a" Interval.pp p
      | None -> ());
      (match s.verdict with
      | Some v -> Format.fprintf ppf " — %a" Consistency.pp_verdict v
      | None -> ());
      Format.fprintf ppf "@.")
    r.symptoms;
  if r.conflicts = [] then Format.fprintf ppf "  consistent with the model@."
  else begin
    List.iter
      (fun (c : Candidates.conflict) ->
        Format.fprintf ppf "  conflict %a @@ %.3g (%s)@."
          (Env.pp ~names:(fun i -> r.assumption_names.(i)))
          c.Candidates.env c.Candidates.degree c.Candidates.reason)
      r.conflicts;
    List.iter
      (fun s ->
        Format.fprintf ppf "  suspect %s @@ %.3g%s@." s.component s.suspicion
          (if s.explains then " (explains the response)" else ""))
      r.suspects
  end
