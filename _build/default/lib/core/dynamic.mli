(** Dynamic-mode diagnosis (the paper's "tried on different kinds and
    sizes of circuits, either in dynamic mode or in static one").

    Measurements are node-voltage {e magnitudes at given frequencies};
    the AC phasor solver provides the model predictions.  The machinery
    mirrors the static driver: per-observation predictions with
    sensitivity-derived assumption environments and tolerance-derived
    fuzzy widths, Dc-graded conflicts feeding the weighted nogood
    database, candidate ranking, and fault-model refinement by fitting
    the suspect parameter against all measured magnitudes. *)

module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency
module Netlist = Flames_circuit.Netlist
module Fault = Flames_circuit.Fault
module Candidates = Flames_atms.Candidates

type observation = {
  node : string;
  frequency : float;  (** hertz *)
  magnitude : Interval.t;  (** measured |V|, fuzzified *)
}

val observe :
  ?instrument:Flames_sim.Measure.instrument ->
  ?source:string ->
  Netlist.t ->
  node:string ->
  frequency:float ->
  observation
(** Probe the (possibly faulty) circuit's response with the simulator —
    the dynamic-mode test bench. *)

type symptom = {
  observation : observation;
  predicted : Interval.t option;
  verdict : Consistency.verdict option;
}

type mode_estimate = {
  parameter : string;
  nominal : float;
  estimated : float option;
  fit_residual : float option;
  modes : (Fault.mode * float) list;
}

type suspect = {
  component : string;
  suspicion : float;
  explains : bool;
  estimates : mode_estimate list;
}

type result = {
  netlist : Netlist.t;
  symptoms : symptom list;
  conflicts : Candidates.conflict list;
  suspects : suspect list;
  diagnoses : (string list * float) list;
  assumption_names : string array;
}

val run :
  ?trusted:string list ->
  ?source:string ->
  ?min_conflict_degree:float ->
  Netlist.t ->
  observation list ->
  result
(** Frequency-domain diagnosis of the netlist against the observations.
    [min_conflict_degree] (default 0.02) is the tolerance-noise floor as
    in the static engine. *)

val healthy : result -> bool
val pp_result : Format.formatter -> result -> unit
