module Interval = Flames_fuzzy.Interval
module Env = Flames_atms.Env
module History = Set.Make (String)

type origin = Measured | Given | Bound | Derived of string

type t = {
  interval : Interval.t;
  env : Env.t;
  degree : float;
  origin : origin;
  observational : bool;
  history : History.t;
}

let measured interval =
  { interval; env = Env.empty; degree = 1.; origin = Measured;
    observational = true; history = History.empty }

let given ?(degree = 1.) interval env =
  { interval; env; degree; origin = Given; observational = false;
    history = History.empty }

let bound interval env =
  { interval; env; degree = 1.; origin = Bound; observational = false;
    history = History.empty }

let derived name interval env degree ~observational ~history =
  { interval; env; degree; origin = Derived name; observational;
    history = History.add name history }

let is_measured v = v.origin = Measured

(* Preference when a cell overflows: keep measurements, then the tightest
   intervals (the informative ones), then small environments.  Width
   before environment size matters: a precise estimate reached through a
   long chain must not be evicted by wide junk with a short pedigree. *)
let strength a b =
  let rank v = if is_measured v then 0 else 1 in
  let c = Int.compare (rank a) (rank b) in
  if c <> 0 then c
  else
    let c =
      Float.compare (Interval.width a.interval) (Interval.width b.interval)
    in
    if c <> 0 then c
    else
      let c = Int.compare (Env.cardinal a.env) (Env.cardinal b.env) in
      if c <> 0 then c
      else Int.compare (History.cardinal a.history) (History.cardinal b.history)

let subsumes a b =
  a.observational = b.observational
  && Env.subset a.env b.env
  && History.subset a.history b.history
  && a.degree >= b.degree
  && Interval.contains b.interval a.interval

let pp_origin ppf = function
  | Measured -> Format.pp_print_string ppf "measured"
  | Given -> Format.pp_print_string ppf "given"
  | Bound -> Format.pp_print_string ppf "bound"
  | Derived c -> Format.fprintf ppf "via %s" c

let pp ~names ppf v =
  Format.fprintf ppf "%a %a@@%.2g (%a)" Interval.pp v.interval
    (Env.pp ~names) v.env v.degree pp_origin v.origin
