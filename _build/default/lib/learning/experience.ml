module Fault = Flames_circuit.Fault

type episode = {
  result : Flames_core.Diagnose.result;
  confirmed : string;
  mode : Fault.mode option;
}

let circuit_of (r : Flames_core.Diagnose.result) =
  r.Flames_core.Diagnose.netlist.Flames_circuit.Netlist.name

let record kb episode =
  let circuit = circuit_of episode.result in
  match
    Rule.of_symptoms ~circuit episode.result.Flames_core.Diagnose.symptoms
      ~suspect:episode.confirmed ?mode:episode.mode ()
  with
  | None -> false
  | Some rule ->
    let existing =
      List.find_opt
        (fun r ->
          r.Rule.circuit = circuit
          && r.Rule.suspect = episode.confirmed
          && r.Rule.mode = episode.mode
          && Rule.match_degree r episode.result.Flames_core.Diagnose.symptoms
             > 0.5)
        (Knowledge_base.rules_for kb ~circuit)
    in
    (match existing with
    | Some r -> Knowledge_base.reinforce kb r ~confirmed:true
    | None -> Knowledge_base.add_rule kb rule);
    true

let suggest kb result =
  Knowledge_base.consult kb ~circuit:(circuit_of result)
    result.Flames_core.Diagnose.symptoms
  |> List.map (fun (a : Knowledge_base.advice) ->
         (a.Knowledge_base.rule.Rule.suspect, a.Knowledge_base.degree))

let rerank kb result =
  let suggestions = suggest kb result in
  let confidence name =
    List.fold_left
      (fun acc (s, d) -> if s = name then Float.max acc d else acc)
      0. suggestions
  in
  result.Flames_core.Diagnose.suspects
  |> List.map (fun (s : Flames_core.Diagnose.suspect) ->
         let name = s.Flames_core.Diagnose.component in
         let model_score =
           s.Flames_core.Diagnose.suspicion
           *. (0.5 +. (0.5 *. Knowledge_base.prior kb name))
         in
         (* experience adds to the model-based evidence: a matching rule
            lifts its suspect above same-suspicion candidates *)
         (name, model_score +. confidence name))
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
