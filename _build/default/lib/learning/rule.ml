module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency
module Quantity = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault

type pattern = {
  quantity : Quantity.t;
  direction : Consistency.direction;
  dc_band : Interval.t;
}

type t = {
  circuit : string;
  patterns : pattern list;
  suspect : string;
  mode : Fault.mode option;
  certainty : float;
  confirmations : int;
}

let pattern quantity direction ~dc =
  let lo = Float.max 0. (dc -. 0.1) and hi = Float.min 1. (dc +. 0.1) in
  {
    quantity;
    direction;
    dc_band = Interval.make ~m1:lo ~m2:hi ~alpha:(Float.min lo 0.1)
        ~beta:(Float.min (1. -. hi) 0.1);
  }

let make ~circuit ~patterns ~suspect ?mode ~certainty () =
  if patterns = [] then invalid_arg "Rule.make: empty pattern list";
  if certainty <= 0. || certainty > 1. then
    invalid_arg "Rule.make: certainty outside (0, 1]";
  { circuit; patterns; suspect; mode; certainty; confirmations = 0 }

let of_symptoms ~circuit symptoms ~suspect ?mode () =
  let patterns =
    List.filter_map
      (fun (s : Flames_core.Diagnose.symptom) ->
        Option.map
          (fun (v : Consistency.verdict) ->
            pattern s.Flames_core.Diagnose.quantity v.Consistency.direction
              ~dc:v.Consistency.dc)
          s.Flames_core.Diagnose.verdict)
      symptoms
  in
  if patterns = [] then None
  else Some (make ~circuit ~patterns ~suspect ?mode ~certainty:0.5 ())

let pattern_degree p (symptoms : Flames_core.Diagnose.symptom list) =
  let matching (s : Flames_core.Diagnose.symptom) =
    if not (Quantity.equal s.Flames_core.Diagnose.quantity p.quantity) then None
    else
      match s.Flames_core.Diagnose.verdict with
      | Some v when v.Consistency.direction = p.direction ->
        Some (Interval.membership p.dc_band v.Consistency.dc)
      | Some _ | None -> None
  in
  match List.find_map matching symptoms with Some d -> d | None -> 0.

let match_degree rule symptoms =
  List.fold_left
    (fun acc p -> Float.min acc (pattern_degree p symptoms))
    1. rule.patterns

let confirm rule =
  {
    rule with
    certainty = rule.certainty +. (0.25 *. (1. -. rule.certainty));
    confirmations = rule.confirmations + 1;
  }

let contradict rule = { rule with certainty = 0.5 *. rule.certainty }

let pp_direction ppf = function
  | Consistency.Within -> Format.pp_print_string ppf "within"
  | Consistency.Low -> Format.pp_print_string ppf "low"
  | Consistency.High -> Format.pp_print_string ppf "high"

let pp ppf rule =
  Format.fprintf ppf "on %s: if %a then suspect %s%s @@ %.2g (x%d)"
    rule.circuit
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
       (fun ppf p ->
         Format.fprintf ppf "%a %a %a" Quantity.pp p.quantity pp_direction
           p.direction Interval.pp p.dc_band))
    rule.patterns rule.suspect
    (match rule.mode with
    | None -> ""
    | Some m -> Format.asprintf " (%a)" Fault.pp_mode m)
    rule.certainty rule.confirmations
