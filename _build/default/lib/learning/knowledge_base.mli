(** The knowledge-base unit: learnt symptom→failure rules plus expert
    a-priori fault estimations (paper sections 5 and 7). *)

type t
(** Mutable knowledge base. *)

type advice = {
  rule : Rule.t;
  degree : float;  (** min of match degree and rule certainty *)
}

val create : unit -> t

val add_rule : t -> Rule.t -> unit
(** Insert a rule; a rule with the same circuit, suspect, mode and
    pattern quantities replaces the existing one. *)

val add_prior : t -> component:string -> float -> unit
(** Expert a-priori faultiness estimation in [0, 1] (e.g. electrolytic
    capacitors die first).  Used to break ties between candidates. *)

val prior : t -> string -> float
(** Recorded prior; 0.1 (uncommitted) when absent. *)

val rules : t -> Rule.t list
val rules_for : t -> circuit:string -> Rule.t list

val consult :
  t -> circuit:string -> Flames_core.Diagnose.symptom list -> advice list
(** Rules of the circuit matching the symptoms with positive degree,
    strongest advice first. *)

val reinforce : t -> Rule.t -> confirmed:bool -> unit
(** Update the stored rule's certainty after the expert's verdict. *)

val size : t -> int
val pp : Format.formatter -> t -> unit
