(** Symptom→failure rules with certainty degrees (paper section 7).

    When FLAMES locates a faulty component, the diagnosis episode is
    summarised as a rule "if these probes deviate like this, suspect that
    component", carrying a certainty degree compatible with fuzzy logic.
    Rules are matched against later symptom sets to advise the expert. *)

module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency
module Quantity = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault

type pattern = {
  quantity : Quantity.t;
  direction : Consistency.direction;
  dc_band : Interval.t;  (** fuzzy set of matching Dc values *)
}

type t = {
  circuit : string;  (** netlist name the rule was learnt on *)
  patterns : pattern list;
  suspect : string;
  mode : Fault.mode option;
  certainty : float;  (** in (0, 1] *)
  confirmations : int;
}

val pattern : Quantity.t -> Consistency.direction -> dc:float -> pattern
(** A pattern matching Dc values near the observed one (fuzzy band of
    half-width 0.1 around [dc], clamped to [0, 1]). *)

val make :
  circuit:string ->
  patterns:pattern list ->
  suspect:string ->
  ?mode:Fault.mode ->
  certainty:float ->
  unit ->
  t
(** @raise Invalid_argument on an empty pattern list or certainty
    outside (0, 1]. *)

val of_symptoms :
  circuit:string ->
  Flames_core.Diagnose.symptom list ->
  suspect:string ->
  ?mode:Fault.mode ->
  unit ->
  t option
(** Summarise a diagnosis episode; [None] when no symptom has a verdict. *)

val match_degree : t -> Flames_core.Diagnose.symptom list -> float
(** Degree (min over patterns) with which the observed symptoms fit the
    rule: each pattern requires a same-quantity symptom with the same
    direction and a Dc inside the band; a missing symptom matches at 0. *)

val confirm : t -> t
(** Strengthen after a confirmed reuse: [c' = c + 0.25 (1 − c)]. *)

val contradict : t -> t
(** Weaken after a refuted advice: [c' = 0.5 c]. *)

val pp : Format.formatter -> t -> unit
