module Interval = Flames_fuzzy.Interval
module Piecewise = Flames_fuzzy.Piecewise
module Linguistic = Flames_fuzzy.Linguistic
module Tnorm = Flames_fuzzy.Tnorm
module Atms = Flames_atms.Atms

type atom = { variable : string; term : Linguistic.term }

let atom variable term = { variable; term }
let is_ = atom

type rule = {
  name : string;
  antecedents : atom list;
  consequent : atom;
  certainty : float;
}

let rule ?(certainty = 1.) name ~antecedents ~consequent =
  if antecedents = [] then invalid_arg "Fuzzy_rules.rule: empty antecedents";
  if certainty <= 0. || certainty > 1. then
    invalid_arg "Fuzzy_rules.rule: certainty outside (0, 1]";
  { name; antecedents; consequent; certainty }

type t = {
  tnorm : Tnorm.t;
  mutable rule_list : rule list;
  values : (string, Interval.t) Hashtbl.t;
  (* concluded degree per (variable, term name) *)
  concluded : (string * string, float * Linguistic.term) Hashtbl.t;
  mutable stale : bool;
}

let create ?(tnorm = Tnorm.Minimum) () =
  {
    tnorm;
    rule_list = [];
    values = Hashtbl.create 16;
    concluded = Hashtbl.create 16;
    stale = true;
  }

let add_rule t r =
  t.rule_list <- r :: t.rule_list;
  t.stale <- true

let rules t = List.rev t.rule_list

let assert_value t variable value =
  Hashtbl.replace t.values variable value;
  t.stale <- true

let key a = (a.variable, a.term.Linguistic.name)

let concluded_degree t a =
  match Hashtbl.find_opt t.concluded (key a) with
  | Some (d, _) -> d
  | None -> 0.

let observation_degree t a =
  match Hashtbl.find_opt t.values a.variable with
  | Some value -> Piecewise.height_of_min value a.term.Linguistic.value
  | None -> 0.

let raw_degree t a =
  Tnorm.tconorm t.tnorm (observation_degree t a) (concluded_degree t a)

let asserted : (string * string, float * Linguistic.term) Hashtbl.t -> atom -> float -> unit =
 fun table a d ->
  let cur =
    match Hashtbl.find_opt table (key a) with Some (x, _) -> x | None -> 0.
  in
  if d > cur then Hashtbl.replace table (key a) (d, a.term)

let assert_degree t a d =
  asserted t.concluded a (Tnorm.clamp01 d);
  t.stale <- false

(* Forward chaining to fixpoint.  Each sweep recomputes every rule's
   firing degree from the previous sweep's conclusions and combines the
   contributions per consequent with the t-conorm — rebuilding from
   scratch (rather than accumulating into the running map) keeps a rule
   from reinforcing itself sweep after sweep under the product
   t-conorm.  Degrees are monotone across sweeps and bounded by 1, so
   the loop terminates. *)
let infer t =
  if t.stale then begin
    Hashtbl.reset t.concluded;
    t.stale <- false
  end;
  (* expert assertions are a floor that every sweep keeps *)
  let floor_assertions = Hashtbl.copy t.concluded in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps < 1000 do
    incr sweeps;
    let next = Hashtbl.copy floor_assertions in
    List.iter
      (fun r ->
        let firing =
          List.fold_left
            (fun acc a -> Tnorm.tnorm t.tnorm acc (raw_degree t a))
            r.certainty r.antecedents
        in
        if firing > 0. then begin
          let cur =
            match Hashtbl.find_opt next (key r.consequent) with
            | Some (x, _) -> x
            | None -> 0.
          in
          let d = Tnorm.tconorm t.tnorm cur firing in
          Hashtbl.replace next (key r.consequent) (d, r.consequent.term)
        end)
      t.rule_list;
    (* compare with the current map *)
    let same =
      Hashtbl.length next = Hashtbl.length t.concluded
      && Hashtbl.fold
           (fun k (d, _) acc ->
             acc
             &&
             match Hashtbl.find_opt t.concluded k with
             | Some (d', _) -> Float.abs (d -. d') <= 1e-9
             | None -> false)
           next true
    in
    if same then changed := false
    else begin
      Hashtbl.reset t.concluded;
      Hashtbl.iter (fun k v -> Hashtbl.replace t.concluded k v) next
    end
  done

let degree t a =
  infer t;
  raw_degree t a

let conclusions t =
  infer t;
  Hashtbl.fold
    (fun (variable, _) (d, term) acc -> ({ variable; term }, d) :: acc)
    t.concluded []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

(* Mamdani aggregation: union (max) of the concluded terms clipped at
   their degrees, defuzzified by a sampled centroid. *)
let defuzzify t variable =
  infer t;
  let clipped =
    Hashtbl.fold
      (fun (v, _) (d, term) acc ->
        if v = variable && d > 0. then (d, term.Linguistic.value) :: acc
        else acc)
      t.concluded []
  in
  if clipped = [] then None
  else begin
    let lo, hi =
      List.fold_left
        (fun (lo, hi) (_, set) ->
          let slo, shi = Interval.support set in
          (Float.min lo slo, Float.max hi shi))
        (Float.max_float, -.Float.max_float)
        clipped
    in
    if hi <= lo then Some lo
    else begin
      let samples = 512 in
      let num = ref 0. and den = ref 0. in
      for i = 0 to samples do
        let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int samples) in
        let mu =
          List.fold_left
            (fun acc (d, set) ->
              Float.max acc (Float.min d (Interval.membership set x)))
            0. clipped
        in
        num := !num +. (x *. mu);
        den := !den +. mu
      done;
      if !den = 0. then None else Some (!num /. !den)
    end
  end

let atms_datum a = Printf.sprintf "%s is %s" a.variable a.term.Linguistic.name

let justify_in_atms t atms ~assumptions =
  List.iter
    (fun r ->
      let consequent = Atms.node atms (atms_datum r.consequent) in
      let antecedent_nodes =
        List.map (fun a -> Atms.node atms (atms_datum a)) r.antecedents
      in
      let variables =
        r.consequent.variable
        :: List.map (fun a -> a.variable) r.antecedents
      in
      let assumption_nodes =
        List.filter_map
          (fun (name, node) ->
            if
              List.exists
                (fun v ->
                  v = name
                  || (String.length v > String.length name
                     && String.index_opt v '(' <> None
                     &&
                     (* "Vbe(t2)" mentions assumption "t2" *)
                     let inside =
                       match
                         (String.index_opt v '(', String.index_opt v ')')
                       with
                       | Some i, Some j when j > i + 1 ->
                         Some (String.sub v (i + 1) (j - i - 1))
                       | _ -> None
                     in
                     inside = Some name))
                variables
            then Some node
            else None)
          assumptions
      in
      Atms.justify atms ~degree:r.certainty
        ~antecedents:(antecedent_nodes @ assumption_nodes)
        consequent)
    (rules t)

let pp_rule ppf r =
  Format.fprintf ppf "%s: if %s then %s @@ %.2g" r.name
    (String.concat " and "
       (List.map
          (fun a -> Printf.sprintf "%s is %s" a.variable a.term.Linguistic.name)
          r.antecedents))
    (Printf.sprintf "%s is %s" r.consequent.variable
       r.consequent.term.Linguistic.name)
    r.certainty
