(** Learning from experience (paper section 7).

    Each completed diagnosis episode — symptoms, the component finally
    confirmed faulty by the expert, and optionally the fault mode — is
    folded into the knowledge base as a symptom→failure rule.  On later
    diagnoses of the same circuit, {!suggest} ranks candidates with the
    learnt rules so the expert sees "last time these symptoms meant R2". *)

module Fault = Flames_circuit.Fault

type episode = {
  result : Flames_core.Diagnose.result;
  confirmed : string;  (** component the expert confirmed faulty *)
  mode : Fault.mode option;
}

val record : Knowledge_base.t -> episode -> bool
(** Fold the episode into the knowledge base.  When a rule with the same
    shape already exists it is confirmed (certainty strengthened);
    otherwise a new rule at certainty 0.5 is added.  Returns [false]
    when the episode has no usable symptom (nothing learnt). *)

val suggest :
  Knowledge_base.t ->
  Flames_core.Diagnose.result ->
  (string * float) list
(** Components suggested by the learnt rules for the given (fresh)
    diagnosis, with confidence — the experience-based complement to the
    model-based candidate ranking. *)

val rerank :
  Knowledge_base.t ->
  Flames_core.Diagnose.result ->
  (string * float) list
(** Combine model-based suspicion with experience: per suspect,
    [suspicion × prior-weight + rule-confidence] — a matching learnt rule
    lifts its suspect above equally-suspect candidates.  Strongest
    first. *)
