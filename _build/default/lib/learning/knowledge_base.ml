type advice = { rule : Rule.t; degree : float }

type t = {
  mutable rule_list : Rule.t list;
  priors : (string, float) Hashtbl.t;
}

let create () = { rule_list = []; priors = Hashtbl.create 16 }

let same_shape (a : Rule.t) (b : Rule.t) =
  a.Rule.circuit = b.Rule.circuit
  && a.Rule.suspect = b.Rule.suspect
  && a.Rule.mode = b.Rule.mode
  && List.map (fun p -> p.Rule.quantity) a.Rule.patterns
     = List.map (fun p -> p.Rule.quantity) b.Rule.patterns

let add_rule kb rule =
  kb.rule_list <- rule :: List.filter (fun r -> not (same_shape r rule)) kb.rule_list

let add_prior kb ~component degree =
  Hashtbl.replace kb.priors component (Flames_fuzzy.Tnorm.clamp01 degree)

let prior kb component =
  Option.value ~default:0.1 (Hashtbl.find_opt kb.priors component)

let rules kb = kb.rule_list
let rules_for kb ~circuit =
  List.filter (fun r -> r.Rule.circuit = circuit) kb.rule_list

let consult kb ~circuit symptoms =
  rules_for kb ~circuit
  |> List.filter_map (fun rule ->
         let m = Rule.match_degree rule symptoms in
         let degree = Float.min m rule.Rule.certainty in
         if degree > 0. then Some { rule; degree } else None)
  |> List.sort (fun a b -> Float.compare b.degree a.degree)

let reinforce kb rule ~confirmed =
  let updated = if confirmed then Rule.confirm rule else Rule.contradict rule in
  kb.rule_list <-
    List.map (fun r -> if same_shape r rule then updated else r) kb.rule_list

let size kb = List.length kb.rule_list

let pp ppf kb =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline Rule.pp ppf kb.rule_list
