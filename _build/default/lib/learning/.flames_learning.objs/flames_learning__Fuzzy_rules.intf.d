lib/learning/fuzzy_rules.mli: Flames_atms Flames_fuzzy Format
