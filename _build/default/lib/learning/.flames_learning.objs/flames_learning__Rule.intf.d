lib/learning/rule.mli: Flames_circuit Flames_core Flames_fuzzy Format
