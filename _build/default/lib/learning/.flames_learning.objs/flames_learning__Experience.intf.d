lib/learning/experience.mli: Flames_circuit Flames_core Knowledge_base
