lib/learning/knowledge_base.mli: Flames_core Format Rule
