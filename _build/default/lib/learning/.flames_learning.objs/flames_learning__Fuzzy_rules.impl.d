lib/learning/fuzzy_rules.ml: Flames_atms Flames_fuzzy Float Format Hashtbl List Printf String
