lib/learning/experience.ml: Flames_circuit Flames_core Float Knowledge_base List Rule
