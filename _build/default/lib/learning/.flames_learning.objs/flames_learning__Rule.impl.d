lib/learning/rule.ml: Flames_circuit Flames_core Flames_fuzzy Float Format List Option
