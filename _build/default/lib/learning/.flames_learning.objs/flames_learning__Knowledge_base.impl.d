lib/learning/knowledge_base.ml: Flames_fuzzy Float Format Hashtbl List Option Rule
