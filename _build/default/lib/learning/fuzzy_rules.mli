(** Fuzzy qualitative rules — the knowledge-base unit of fig. 3.

    Rules relate linguistic statements about named variables
    ("Vbe(t2) is LOW", "stage2 is LIKELY-FAULTY") with a certainty
    degree, in the style the paper sketches in sections 5–6.2:

    {v if Vbe(t) is CONDUCTING and Vce(t) is SATURATED-LOW
       then t is LIKELY-FAULTY  (certainty 0.8) v}

    Inference is Mamdani-style forward chaining: an atom's degree is the
    possibility that the variable's (fuzzy) value matches the term; a
    rule fires at the t-norm of its antecedent degrees scaled by its
    certainty; conclusions accumulate by t-conorm and feed further rules
    until a fixpoint.  Concluded terms can be aggregated and defuzzified
    per variable.

    {!justify_in_atms} compiles a rule base into graded ATMS
    justifications, so rule conclusions participate in assumption-based
    reasoning (the "clauses are not reduced to Horn's clauses" claim of
    section 6.1.2). *)

module Interval = Flames_fuzzy.Interval
module Linguistic = Flames_fuzzy.Linguistic
module Tnorm = Flames_fuzzy.Tnorm
module Atms = Flames_atms.Atms

type atom = { variable : string; term : Linguistic.term }

val atom : string -> Linguistic.term -> atom
val is_ : string -> Linguistic.term -> atom
(** Alias of {!atom} for readable rule definitions. *)

type rule = {
  name : string;
  antecedents : atom list;
  consequent : atom;
  certainty : float;
}

val rule :
  ?certainty:float -> string -> antecedents:atom list -> consequent:atom -> rule
(** @raise Invalid_argument on empty antecedents or certainty
    outside (0, 1]. *)

type t
(** A mutable inference engine. *)

val create : ?tnorm:Tnorm.t -> unit -> t
(** The antecedent combination defaults to {!Tnorm.Minimum}. *)

val add_rule : t -> rule -> unit
val rules : t -> rule list

val assert_value : t -> string -> Interval.t -> unit
(** Give a variable an observed (crisp or fuzzy) value; replaces any
    previous observation of the same variable and resets inference. *)

val assert_degree : t -> atom -> float -> unit
(** Directly assert "variable is term" at a degree (expert input). *)

val infer : t -> unit
(** Forward-chain to fixpoint (idempotent). *)

val degree : t -> atom -> float
(** Degree of the atom after inference: the t-conorm of the match
    against the variable's observed value and every concluded degree. *)

val conclusions : t -> (atom * float) list
(** All positively concluded atoms, strongest first. *)

val defuzzify : t -> string -> float option
(** Centroid of the aggregated (clipped) concluded terms of a variable;
    [None] when nothing was concluded about it. *)

val justify_in_atms :
  t -> Atms.t -> assumptions:(string * Atms.node) list -> unit
(** Compile the rule base into the ATMS: each atom becomes a node
    ["variable is term"], each rule a graded justification from its
    antecedent nodes (plus the listed assumption nodes whose names occur
    in the rule's variables) to its consequent node. *)

val atms_datum : atom -> string
(** The node datum used by {!justify_in_atms}. *)

val pp_rule : Format.formatter -> rule -> unit
