(** Fuzzified measurements.

    The simulator stands in for the paper's physical probing: a probed
    crisp value is turned into a fuzzy measurement whose flanks encode the
    measuring-equipment imprecision (paper section 4.2 distinguishes this
    imprecision from component tolerances). *)

module Interval = Flames_fuzzy.Interval

type instrument = {
  relative : float;  (** flank width as a fraction of the reading *)
  floor : float;  (** minimal absolute flank width *)
}

val default_instrument : instrument
(** 1 % of reading with a 1 mV/µA floor. *)

val exact_instrument : instrument
(** Zero imprecision: measurements are crisp points. *)

val fuzzify : instrument -> float -> Interval.t
(** A symmetric fuzzy number centred on the reading. *)

val probe :
  ?instrument:instrument ->
  Mna.solution ->
  Flames_circuit.Quantity.t ->
  Interval.t option
(** Measure a quantity on a solved circuit: node voltages and component
    currents are supported; parameters are not measurable and yield
    [None], as does an unknown node/component. *)

val probe_all :
  ?instrument:instrument ->
  Mna.solution ->
  Flames_circuit.Quantity.t list ->
  (Flames_circuit.Quantity.t * Interval.t) list
(** Probe the measurable subset of the given quantities. *)
