(** Dense complex linear algebra for the AC (phasor) solver. *)

exception Singular
(** Raised when the system matrix is (numerically) singular. *)

val solve : Complex.t array array -> Complex.t array -> Complex.t array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting on the modulus.  [a] and [b] are not modified.
    @raise Singular when no pivot above [1e-12] can be found.
    @raise Invalid_argument on dimension mismatch. *)

val residual_norm :
  Complex.t array array -> Complex.t array -> Complex.t array -> float
(** Infinity norm of [a x − b] (used by tests). *)
