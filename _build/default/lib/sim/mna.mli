(** DC operating-point simulator by modified nodal analysis.

    Solves the circuit at its nominal (centroid) parameter values.
    Nonlinear devices use piecewise-linear models whose operating regions
    are found by fixed-point iteration:

    - BJT: active ([Vbe] drop, [Ic = β·Ib]), cutoff (no conduction) or
      saturated ([Vbe] and [Vce,sat = 0.2 V] drops);
    - diode: conducting (fixed forward drop) or blocked.

    This substrate plays the role of the paper's physical test bench: it
    produces the "measured" values fed to the diagnosis engine. *)

type bjt_region = Active | Cutoff | Saturated

type solution = {
  voltages : (string * float) list;  (** node → voltage, ground at 0 *)
  currents : (string * float) list;
      (** two-terminal component → current (p→n); for a BJT the base
          current under name ["<name>.b"] and collector current
          ["<name>.c"] *)
  regions : (string * bjt_region) list;  (** operating region per BJT *)
}

exception No_convergence of string
(** The piecewise-linear region iteration cycled (pathological circuit). *)

val solve : Flames_circuit.Netlist.t -> solution
(** @raise No_convergence, or {!Linalg.Singular} on a floating circuit. *)

val voltage : solution -> string -> float
(** @raise Not_found for an unknown node (ground returns 0). *)

val current : solution -> string -> float
(** @raise Not_found for an unknown component/terminal key. *)

val region : solution -> string -> bjt_region
val pp_region : Format.formatter -> bjt_region -> unit
val pp : Format.formatter -> solution -> unit
