(** Finite-difference sensitivity analysis of node voltages.

    For every component parameter, the circuit is re-solved with the
    parameter perturbed, yielding per-node influences.  Two numbers are
    derived per (node, component) pair:

    - {e influence}: the worst-case |ΔV| over a 1 % parameter move and
      the two hard-fault extremes (short, open) — whether the component
      could explain a deviation of the node in {e any} fault world, not
      only near the nominal operating point;
    - {e spread}: the 1 % |ΔV| scaled to the parameter's actual
      tolerance — the node-voltage uncertainty the tolerance induces.

    The diagnosis engine uses influences to decide which component
    assumptions support a simulated nominal prediction, and the summed
    spreads as the prediction's fuzzy width. *)

type entry = {
  component : string;
  influence : float;
      (** worst-case |ΔV| in volts over the probe worlds (max over the
          component's parameters) *)
  spread : float;  (** |ΔV| induced by the parameter tolerances (sum) *)
}

type node_report = {
  node : string;
  nominal : float;  (** solved nominal voltage *)
  total_spread : float;  (** sum of per-component spreads *)
  entries : entry list;  (** one per component, influence order *)
}

val analyze : Flames_circuit.Netlist.t -> node_report list
(** One report per non-ground node.
    @raise Mna.No_convergence or {!Linalg.Singular} like {!Mna.solve}. *)

val supporters : ?threshold:float -> node_report -> string list
(** Components whose influence reaches [threshold] (default 0.02)
    relative to the node's maximal influence. *)
