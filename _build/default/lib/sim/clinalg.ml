exception Singular

open Complex

let solve a b =
  let n = Array.length b in
  if Array.length a <> n || (n > 0 && Array.length a.(0) <> n) then
    invalid_arg "Clinalg.solve: dimension mismatch";
  let m = Array.map Array.copy a in
  let v = Array.copy b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if norm m.(row).(col) > norm m.(!pivot).(col) then pivot := row
    done;
    if norm m.(!pivot).(col) < 1e-12 then raise Singular;
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = v.(col) in
      v.(col) <- v.(!pivot);
      v.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let f = div m.(row).(col) m.(col).(col) in
      if f <> zero then begin
        for k = col to n - 1 do
          m.(row).(k) <- sub m.(row).(k) (mul f m.(col).(k))
        done;
        v.(row) <- sub v.(row) (mul f v.(col))
      end
    done
  done;
  let x = Array.make n zero in
  for row = n - 1 downto 0 do
    let s = ref v.(row) in
    for k = row + 1 to n - 1 do
      s := sub !s (mul m.(row).(k) x.(k))
    done;
    x.(row) <- div !s m.(row).(row)
  done;
  x

let residual_norm a x b =
  let n = Array.length b in
  let worst = ref 0. in
  for row = 0 to n - 1 do
    let s = ref (neg b.(row)) in
    for col = 0 to n - 1 do
      s := add !s (mul a.(row).(col) x.(col))
    done;
    worst := Float.max !worst (norm !s)
  done;
  !worst
