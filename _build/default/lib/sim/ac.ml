module C = Flames_circuit.Component
module N = Flames_circuit.Netlist
module Interval = Flames_fuzzy.Interval
open Complex

type response = { frequency : float; voltages : (string * Complex.t) list }

exception Unsupported of string

let default_source netlist =
  let found =
    List.find_opt
      (fun (c : C.t) ->
        match c.C.kind with
        | C.Voltage_source _ -> true
        | C.Resistor _ | C.Capacitor _ | C.Inductor _ | C.Diode _
        | C.Gain_block _ | C.Bjt _ ->
          false)
      netlist.N.components
  in
  match found with Some c -> c.C.name | None -> raise Not_found

let solve ?source netlist f =
  if f <= 0. then invalid_arg "Ac.solve: frequency must be positive";
  let source = match source with Some s -> s | None -> default_source netlist in
  let omega = 2. *. Float.pi *. f in
  let ground = netlist.N.ground in
  let node_names = List.filter (fun n -> n <> ground) (N.nodes netlist) in
  let node_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.add node_index n i) node_names;
  let n_nodes = List.length node_names in
  let branches = ref [] in
  let n_branch = ref 0 in
  let new_branch key =
    let j = n_nodes + !n_branch in
    incr n_branch;
    branches := (key, j) :: !branches;
    j
  in
  List.iter
    (fun (c : C.t) ->
      match c.C.kind with
      | C.Voltage_source _ | C.Inductor _ | C.Gain_block _ ->
        ignore (new_branch c.C.name)
      | C.Diode _ | C.Bjt _ ->
        raise
          (Unsupported
             (Printf.sprintf "%s has no small-signal AC model" c.C.name))
      | C.Resistor _ | C.Capacitor _ -> ())
    netlist.N.components;
  let dim = n_nodes + !n_branch in
  let a = Array.make_matrix dim dim zero in
  let rhs = Array.make dim zero in
  let idx node =
    if node = ground then None else Some (Hashtbl.find node_index node)
  in
  let addm row col v =
    match (row, col) with
    | Some r, Some c -> a.(r).(c) <- add a.(r).(c) v
    | None, _ | _, None -> ()
  in
  let add_branch_row row col v =
    match col with Some c -> a.(row).(c) <- add a.(row).(c) v | None -> ()
  in
  let add_kcl node branch v =
    match node with
    | Some r -> a.(r).(branch) <- add a.(r).(branch) v
    | None -> ()
  in
  let branch key = List.assoc key !branches in
  let nominal c param = Interval.centroid (C.nominal_parameter c param) in
  let re x = { re = x; im = 0. } in
  let im x = { re = 0.; im = x } in
  List.iter
    (fun (c : C.t) ->
      let node t = idx (C.node_of c t) in
      let stamp_admittance y =
        let p = node "p" and n = node "n" in
        addm p p y;
        addm n n y;
        addm p n (neg y);
        addm n p (neg y)
      in
      match c.C.kind with
      | C.Resistor _ -> stamp_admittance (re (1. /. nominal c "R"))
      | C.Capacitor _ -> stamp_admittance (im (omega *. nominal c "C"))
      | C.Inductor _ ->
        (* branch form V(p) − V(n) − jωL·i = 0 stays regular at any ω *)
        let j = branch c.C.name in
        let p = node "p" and n = node "n" in
        add_kcl p j (re 1.);
        add_kcl n j (re (-1.));
        add_branch_row j p (re 1.);
        add_branch_row j n (re (-1.));
        a.(j).(j) <- sub a.(j).(j) (im (omega *. nominal c "L"))
      | C.Voltage_source _ ->
        let j = branch c.C.name in
        let p = node "p" and n = node "n" in
        add_kcl p j (re 1.);
        add_kcl n j (re (-1.));
        add_branch_row j p (re 1.);
        add_branch_row j n (re (-1.));
        rhs.(j) <- (if c.C.name = source then re 1. else zero)
      | C.Gain_block _ ->
        let j = branch c.C.name in
        let input = node "in" and output = node "out" in
        add_kcl output j (re 1.);
        add_branch_row j output (re 1.);
        add_branch_row j input (re (-.nominal c "gain"))
      | C.Diode _ | C.Bjt _ -> assert false (* rejected above *))
    netlist.N.components;
  let x = Clinalg.solve a rhs in
  let v node = match idx node with Some i -> x.(i) | None -> zero in
  { frequency = f; voltages = List.map (fun n -> (n, v n)) (N.nodes netlist) }

let sweep ?source netlist frequencies =
  List.map (solve ?source netlist) frequencies

let magnitude r node = norm (List.assoc node r.voltages)
let phase r node = arg (List.assoc node r.voltages)
let gain_db r node = 20. *. (Float.log10 (Float.max 1e-30 (magnitude r node)))
