lib/sim/measure.mli: Flames_circuit Flames_fuzzy Mna
