lib/sim/mna.ml: Array Flames_circuit Flames_fuzzy Format Hashtbl Linalg List
