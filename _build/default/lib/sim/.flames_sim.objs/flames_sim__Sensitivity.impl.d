lib/sim/sensitivity.ml: Flames_circuit Flames_fuzzy Float Linalg List Mna
