lib/sim/linalg.mli:
