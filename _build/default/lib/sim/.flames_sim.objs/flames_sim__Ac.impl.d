lib/sim/ac.ml: Array Clinalg Complex Flames_circuit Flames_fuzzy Float Hashtbl List Printf
