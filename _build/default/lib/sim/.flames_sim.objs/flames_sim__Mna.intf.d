lib/sim/mna.mli: Flames_circuit Format
