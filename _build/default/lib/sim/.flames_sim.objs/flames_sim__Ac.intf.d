lib/sim/ac.mli: Complex Flames_circuit
