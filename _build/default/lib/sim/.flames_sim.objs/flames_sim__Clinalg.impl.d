lib/sim/clinalg.ml: Array Complex Float
