lib/sim/sensitivity.mli: Flames_circuit
