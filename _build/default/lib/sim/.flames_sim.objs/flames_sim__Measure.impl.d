lib/sim/measure.ml: Flames_circuit Flames_fuzzy Float List Mna Option
