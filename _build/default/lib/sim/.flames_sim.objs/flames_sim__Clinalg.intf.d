lib/sim/clinalg.mli: Complex
