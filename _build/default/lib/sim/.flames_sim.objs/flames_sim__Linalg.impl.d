lib/sim/linalg.ml: Array Float
