(** Small-signal AC (phasor) analysis — the substrate for the paper's
    "dynamic mode".

    The circuit is solved in the frequency domain by complex MNA: the
    designated source drives a unit phasor, every other source is
    shorted, and reactive components contribute their impedances
    ([1/jωC], [jωL]).  Supported components: resistors, capacitors,
    inductors, voltage sources and ideal gain blocks — the linear
    building blocks of passive and active filters.  Nonlinear devices
    (diodes, BJTs) have no small-signal model here and are rejected. *)

type response = {
  frequency : float;  (** in hertz *)
  voltages : (string * Complex.t) list;  (** phasor node voltage, ground 0 *)
}

exception Unsupported of string
(** Raised when the netlist contains a device without an AC model. *)

val solve : ?source:string -> Flames_circuit.Netlist.t -> float -> response
(** [solve ?source netlist f] computes the response at frequency [f] with
    the named voltage source (default: the first one in the netlist)
    driving 1 V; other sources are shorted.
    @raise Unsupported on diodes and BJTs
    @raise Not_found when the circuit has no voltage source
    @raise Clinalg.Singular on a floating circuit
    @raise Invalid_argument on a non-positive frequency. *)

val sweep :
  ?source:string -> Flames_circuit.Netlist.t -> float list -> response list

val magnitude : response -> string -> float
(** |V| of a node. @raise Not_found on an unknown node. *)

val phase : response -> string -> float
(** Phase in radians. *)

val gain_db : response -> string -> float
(** [20·log10 |V|] relative to the 1 V stimulus. *)
