(** Dense linear algebra for the MNA solver. *)

exception Singular
(** Raised when the system matrix is (numerically) singular. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  [a] and [b] are not modified.
    @raise Singular when no pivot above [1e-12] can be found.
    @raise Invalid_argument on dimension mismatch. *)

val residual_norm : float array array -> float array -> float array -> float
(** Infinity norm of [a x - b] (used by tests). *)
