(** The paper's "dynamic mode" claim (section 9: "tried on different
    kinds and sizes of circuits, either in dynamic mode or in static
    one"): frequency-domain diagnosis on three filter circuits.

    Each scenario injects a fault, measures output magnitudes at three
    frequencies around the corner/resonance, runs the dynamic-mode
    engine, and reports detection, implication of the culprit, and the
    value recovered by fault-model fitting. *)

type row = {
  circuit : string;
  defect : string;
  culprit : string;
  detected : bool;
  culprit_implicated : bool;  (** suspicion > 0.5 *)
  culprit_explains : bool;  (** fit reproduces the whole response *)
  fitted : float option;  (** recovered parameter value *)
  injected : float;  (** true faulty value *)
}

val run : unit -> row list
val print : Format.formatter -> row list -> unit
