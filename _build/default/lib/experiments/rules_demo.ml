module I = Flames_fuzzy.Interval
module Lin = Flames_fuzzy.Linguistic
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module R = Flames_learning.Fuzzy_rules
module Atms = Flames_atms.Atms

type row = {
  scenario : string;
  transistor : string;
  vbe : float;
  on_degree : float;
  atms_degree : float;
}

(* linguistic terms over the scaled Vbe axis: volts mapped into [0, 1]
   by v/1.0 clamped — "conducting" is the paper's ≥ 0.4 V threshold *)
let conducting =
  Lin.term "conducting" (I.make ~m1:0.55 ~m2:1. ~alpha:0.15 ~beta:0.)

let on_state = Lin.term "on" (I.make ~m1:0.9 ~m2:1. ~alpha:0.1 ~beta:0.)

let transistors = [ "t1"; "t2"; "t3" ]

let scenarios =
  [
    ("healthy", fun n -> n);
    ("r3 short (t1 starved)", fun n -> F.inject n (F.short "r3" ~parameter:"R"));
    ("r2 short (t1 collector dead)", fun n -> F.inject n (F.short "r2" ~parameter:"R"));
  ]

let vbe_of sol name =
  let c = Flames_circuit.Netlist.find (L.three_stage_amplifier ()) name in
  Flames_sim.Mna.voltage sol (Flames_circuit.Component.node_of c "b")
  -. Flames_sim.Mna.voltage sol (Flames_circuit.Component.node_of c "e")

let run () =
  List.concat_map
    (fun (label, inject) ->
      let sol = Flames_sim.Mna.solve (inject (L.three_stage_amplifier ())) in
      (* one rule base and one ATMS per scenario *)
      let engine = R.create () in
      let atms = Atms.create () in
      let assumptions =
        List.map (fun t -> (t, Atms.assumption atms t)) transistors
      in
      List.iter
        (fun t ->
          R.add_rule engine
            (R.rule ~certainty:0.9
               (Printf.sprintf "conduction(%s)" t)
               ~antecedents:[ R.is_ (Printf.sprintf "Vbe(%s)" t) conducting ]
               ~consequent:(R.is_ (Printf.sprintf "On(%s)" t) on_state)))
        transistors;
      R.justify_in_atms engine atms ~assumptions;
      List.map
        (fun t ->
          let vbe = vbe_of sol t in
          let scaled = Flames_fuzzy.Tnorm.clamp01 vbe in
          R.assert_value engine (Printf.sprintf "Vbe(%s)" t) (I.crisp scaled);
          let on_atom = R.is_ (Printf.sprintf "On(%s)" t) on_state in
          let on_degree = R.degree engine on_atom in
          (* mirror the observation into the ATMS as a premise whose
             strength is the matching degree, then query under ok(t) *)
          let vbe_atom = R.is_ (Printf.sprintf "Vbe(%s)" t) conducting in
          let vbe_node = Atms.node atms (R.atms_datum vbe_atom) in
          let match_degree = R.degree engine vbe_atom in
          if match_degree > 0. then begin
            let evidence =
              Atms.node atms (Printf.sprintf "measured Vbe(%s)" t)
            in
            Atms.premise atms evidence;
            Atms.justify atms ~degree:match_degree ~antecedents:[ evidence ]
              vbe_node
          end;
          let on_node = Atms.node atms (R.atms_datum on_atom) in
          let env = Atms.env_of_assumptions atms [ List.assoc t assumptions ] in
          {
            scenario = label;
            transistor = t;
            vbe;
            on_degree;
            atms_degree = Atms.holds_in atms on_node env;
          })
        transistors)
    scenarios

let print ppf rows =
  Format.fprintf ppf
    "knowledge base — the qualitative conduction rule on the amplifier:@.";
  Format.fprintf ppf "  %-30s %-5s %-8s %-10s %s@." "scenario" "T" "Vbe"
    "rule On()" "ATMS under ok(T)";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-30s %-5s %-8.3f %-10.2f %.2f@." r.scenario
        r.transistor r.vbe r.on_degree r.atms_degree)
    rows
