(** Reproduction of the paper's section 7: learning from experience.

    Three episodes of the same R2-short defect are diagnosed and
    confirmed; the knowledge base accumulates a symptom→failure rule
    whose certainty strengthens with each confirmation.  A fourth, fresh
    diagnosis is then advised by the learnt rule. *)

type result = {
  episodes : int;
  rule_certainties : float list;  (** certainty after each episode *)
  suggestion : (string * float) option;
      (** advice on the fresh diagnosis: component and confidence *)
  reranked_first : string option;
      (** best candidate after combining model and experience *)
}

val run : unit -> result
val print : Format.formatter -> result -> unit
