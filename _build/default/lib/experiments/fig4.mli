(** Reproduction of the paper's fig. 4: the possible cases of coincidence
    between two values of the same quantity — splits (containment),
    conflict, partial conflict and corroboration — classified by the
    engine's coincidence analysis. *)

module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency

type case = {
  label : string;
  a : Interval.t;
  b : Interval.t;
  coincidence : Consistency.coincidence;
  dc : float;  (** Dc of [a] against [b] *)
}

val run : unit -> case list
val print : Format.formatter -> case list -> unit
