(** Ablation A1: fuzzy vs crisp sensitivity to soft faults.

    R2 of the three-stage amplifier is swept from its nominal 12 kΩ
    upward; for each drift magnitude the FLAMES engine reports its
    strongest conflict degree (graded evidence) while the crisp baseline
    gives a binary detect / no-detect.  The series shows the paper's
    claim: fuzzy intervals grade the no-man's-land between "within
    tolerance" and "hard fault" where crisp intervals stay silent, and
    the candidate sets stay comparable in size (no explosion). *)

type point = {
  drift : float;  (** R2 multiplier, e.g. 1.05 = +5 % *)
  max_dc_deviation : float;  (** strongest fuzzy conflict degree *)
  fuzzy_candidates : int;  (** number of minimal diagnoses *)
  crisp_detects : bool;
  crisp_candidates : int;
}

val run : ?drifts:float list -> unit -> point list
(** Default sweep: 1.0, 1.005, 1.01, 1.02, 1.05, 1.1, 1.2, 1.5, 2.0, 3.0. *)

val detection_threshold : point list -> float option
(** Smallest drift at which the fuzzy conflict degree reaches 0.5. *)

val crisp_threshold : point list -> float option
(** Smallest drift the crisp baseline detects. *)

val print : Format.formatter -> point list -> unit
