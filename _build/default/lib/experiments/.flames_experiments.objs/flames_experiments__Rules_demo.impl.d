lib/experiments/rules_demo.ml: Flames_atms Flames_circuit Flames_fuzzy Flames_learning Flames_sim Format List Printf
