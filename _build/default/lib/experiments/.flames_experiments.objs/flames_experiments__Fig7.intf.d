lib/experiments/fig7.mli: Flames_circuit Flames_fuzzy Format
