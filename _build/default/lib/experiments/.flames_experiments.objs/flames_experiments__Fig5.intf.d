lib/experiments/fig5.mli: Format
