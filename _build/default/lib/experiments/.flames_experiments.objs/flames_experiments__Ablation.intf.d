lib/experiments/ablation.mli: Format
