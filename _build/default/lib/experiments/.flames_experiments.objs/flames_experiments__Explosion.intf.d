lib/experiments/explosion.mli: Format
