lib/experiments/explosion.ml: Flames_circuit Flames_core Flames_sim Format List
