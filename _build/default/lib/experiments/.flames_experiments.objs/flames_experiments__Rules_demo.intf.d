lib/experiments/rules_demo.mli: Format
