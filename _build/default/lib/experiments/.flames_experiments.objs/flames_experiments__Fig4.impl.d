lib/experiments/fig4.ml: Flames_fuzzy Format List
