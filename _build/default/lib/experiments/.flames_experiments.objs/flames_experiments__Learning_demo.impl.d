lib/experiments/learning_demo.ml: Flames_circuit Flames_core Flames_learning Flames_sim Format List Printf String
