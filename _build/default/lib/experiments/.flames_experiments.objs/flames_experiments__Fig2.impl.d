lib/experiments/fig2.ml: Flames_baseline Flames_fuzzy Format List
