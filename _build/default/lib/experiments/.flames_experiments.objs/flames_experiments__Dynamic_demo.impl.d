lib/experiments/dynamic_demo.ml: Flames_circuit Flames_core Float Format List Option
