lib/experiments/fig5.ml: Flames_atms Flames_baseline Flames_circuit Flames_core Flames_fuzzy Float Format List String
