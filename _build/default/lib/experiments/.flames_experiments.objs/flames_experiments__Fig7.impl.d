lib/experiments/fig7.ml: Flames_atms Flames_circuit Flames_core Flames_fuzzy Flames_sim Float Format List Printf String
