lib/experiments/learning_demo.mli: Format
