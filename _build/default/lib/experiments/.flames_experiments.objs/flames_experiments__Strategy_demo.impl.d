lib/experiments/strategy_demo.ml: Flames_baseline Flames_circuit Flames_core Flames_fuzzy Flames_sim Flames_strategy Format List Option Printf String
