lib/experiments/fig4.mli: Flames_fuzzy Format
