lib/experiments/ablation.ml: Flames_atms Flames_baseline Flames_circuit Flames_core Flames_sim Float Format List
