lib/experiments/dynamic_demo.mli: Format
