lib/experiments/strategy_demo.mli: Flames_fuzzy Format
