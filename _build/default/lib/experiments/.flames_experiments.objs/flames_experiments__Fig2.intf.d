lib/experiments/fig2.mli: Flames_fuzzy Format
