module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Dynamic = Flames_core.Dynamic

type row = {
  circuit : string;
  defect : string;
  culprit : string;
  detected : bool;
  culprit_implicated : bool;
  culprit_explains : bool;
  fitted : float option;
  injected : float;
}

type scenario = {
  label : string;
  netlist : Flames_circuit.Netlist.t;
  trusted : string list;
  frequencies : float list;
  fault : F.t;
  value : float;
}

let rc_corner = 1. /. (2. *. Float.pi *. 10e3 *. 10e-9)
let rlc_f0 = 1. /. (2. *. Float.pi *. Float.sqrt (10e-3 *. 100e-9))

let scenarios () =
  [
    {
      label = "C1 drifts +50 %";
      netlist = L.rc_lowpass ();
      trusted = [ "vin" ];
      frequencies = [ rc_corner /. 8.; rc_corner; rc_corner *. 5. ];
      fault = F.shifted "c1" ~parameter:"C" 15e-9;
      value = 15e-9;
    };
    {
      label = "L1 drifts +50 %";
      netlist = L.rlc_bandpass ();
      trusted = [ "vin" ];
      frequencies = [ rlc_f0 /. 3.; rlc_f0; rlc_f0 *. 3. ];
      fault = F.shifted "l1" ~parameter:"L" 15e-3;
      value = 15e-3;
    };
    {
      label = "R1 doubles (bandwidth fault)";
      netlist = L.rlc_bandpass ();
      trusted = [ "vin" ];
      frequencies = [ rlc_f0 /. 1.5; rlc_f0; rlc_f0 *. 1.5 ];
      fault = F.shifted "r1" ~parameter:"R" 200.;
      value = 200.;
    };
    {
      label = "C2 drifts +120 %";
      netlist = L.sallen_key_lowpass ();
      trusted = [ "vin"; "amp" ];
      frequencies = [ rc_corner /. 8.; rc_corner; rc_corner *. 4. ];
      fault = F.shifted "c2" ~parameter:"C" 22e-9;
      value = 22e-9;
    };
  ]

let run_scenario s =
  let faulty = F.inject s.netlist s.fault in
  let observations =
    List.map
      (fun frequency ->
        Dynamic.observe ~source:"vin" faulty ~node:"out" ~frequency)
      s.frequencies
  in
  let r = Dynamic.run ~trusted:s.trusted s.netlist observations in
  let culprit = s.fault.F.component in
  let suspect =
    List.find_opt
      (fun (x : Dynamic.suspect) -> x.Dynamic.component = culprit)
      r.Dynamic.suspects
  in
  let fitted =
    Option.bind suspect (fun x ->
        List.find_map
          (fun (e : Dynamic.mode_estimate) ->
            if e.Dynamic.parameter = s.fault.F.parameter then
              e.Dynamic.estimated
            else None)
          x.Dynamic.estimates)
  in
  {
    circuit = s.netlist.Flames_circuit.Netlist.name;
    defect = s.label;
    culprit;
    detected = not (Dynamic.healthy r);
    culprit_implicated =
      (match suspect with
      | Some x -> x.Dynamic.suspicion > 0.5
      | None -> false);
    culprit_explains =
      (match suspect with Some x -> x.Dynamic.explains | None -> false);
    fitted;
    injected = s.value;
  }

let run () = List.map run_scenario (scenarios ())

let print ppf rows =
  Format.fprintf ppf "dynamic mode — frequency-domain diagnosis of filters:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-20s %-28s detected %-5b culprit %s implicated %-5b explains %-5b"
        r.circuit r.defect r.detected r.culprit r.culprit_implicated
        r.culprit_explains;
      (match r.fitted with
      | Some v ->
        Format.fprintf ppf " fitted %.3g (injected %.3g)" v r.injected
      | None -> Format.fprintf ppf " no fit");
      Format.fprintf ppf "@.")
    rows
