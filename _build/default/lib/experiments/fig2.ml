module Interval = Flames_fuzzy.Interval
module Arith = Flames_fuzzy.Arith
module Consistency = Flames_fuzzy.Consistency

type row = { label : string; crisp : Interval.t; fuzzy : Interval.t }

type masking = {
  vb_estimate : Interval.t;
  va_crisp : Interval.t;
  va_fuzzy : Interval.t;
  crisp_detects : bool;
  fuzzy_dc : float;
}

type result = { rows : row list; masking : masking }

let amp1 = Interval.number 1. ~spread:0.05
let amp2 = Interval.number 2. ~spread:0.05
let amp3_sum = ()  (* the third stage is the adder Vd = Vb + Vc *)

let propagate va =
  let vb = Arith.mul va amp1 in
  let vc = Arith.mul vb amp2 in
  let vd = Arith.add vb vc in
  (vb, vc, vd)

let run () =
  let () = amp3_sum in
  let va_crisp_in = Interval.crisp_interval 2.95 3.05
  and va_fuzzy_in = Interval.number 3. ~spread:0.05 in
  let cb, cc, cd = propagate va_crisp_in in
  let fb, fc, fd = propagate va_fuzzy_in in
  let rows =
    [
      { label = "Va"; crisp = va_crisp_in; fuzzy = va_fuzzy_in };
      { label = "Vb"; crisp = cb; fuzzy = fb };
      { label = "Vc"; crisp = cc; fuzzy = fc };
      { label = "Vd"; crisp = cd; fuzzy = fd };
    ]
  in
  (* masking scenario: amp2 actually 1.8, output Vc measured 5.6, hence
     the physically observed Vb is 5.6 / 1.8 = 3.11; propagate it backward
     through amp1's nominal model and compare with the nominal Va *)
  let vb_estimate = Interval.crisp (5.6 /. 1.8) in
  let va_crisp =
    Arith.div vb_estimate (Flames_baseline.Crisp.crispify_interval amp1)
  in
  let va_fuzzy = Arith.div vb_estimate amp1 in
  let crisp_detects =
    not (Interval.overlap va_crisp va_crisp_in)
  in
  let fuzzy_dc = Consistency.dc ~measured:va_fuzzy ~nominal:va_fuzzy_in in
  {
    rows;
    masking = { vb_estimate; va_crisp; va_fuzzy; crisp_detects; fuzzy_dc };
  }

let print ppf r =
  Format.fprintf ppf "fig 2 — crisp vs fuzzy propagation (Vd = Vb + Vc):@.";
  List.iter
    (fun row ->
      Format.fprintf ppf "  %-3s crisp %-28s fuzzy %s@." row.label
        (Interval.to_string row.crisp)
        (Interval.to_string row.fuzzy))
    r.rows;
  Format.fprintf ppf
    "  masking (amp2 → 1.8, Vc = 5.6): Vb̂ = %s, Va crisp = %s (detects: %b), \
     Va fuzzy = %s (Dc = %.2f < 1 flags the problem)@."
    (Interval.to_string r.masking.vb_estimate)
    (Interval.to_string r.masking.va_crisp)
    r.masking.crisp_detects
    (Interval.to_string r.masking.va_fuzzy)
    r.masking.fuzzy_dc
