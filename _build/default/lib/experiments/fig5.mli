(** Reproduction of the paper's fig. 5: the diode–resistor example.

    Measurements Vd1 = 0.2 V, Vr1 = 1.05 V, Vr2 = 2 V on the series
    circuit r1–d1–r2.  FLAMES derives the weighted nogoods
    [{r1, d1} @ 0.5] (Ir1 = 105 µA against the fuzzy bound
    [[-1, 100, 0, 10]] µA) and [{r2, d1} @ 1] (Ir2 = 200 µA), giving the
    expert an order between the candidates; the crisp engine with the
    DIANA-style bound [Id ≤ 100 µA] flags both at the same weight.

    Our engine additionally discovers the physical conflict
    [{r1, r2} @ 1] (the two measured branch currents disagree through
    Kirchhoff's law), which the paper's figure omits. *)

type conflict = { members : string list; degree : float; reason : string }

type result = {
  fuzzy_conflicts : conflict list;  (** strongest first *)
  fuzzy_diagnoses : (string list * float) list;
  crisp_conflicts : conflict list;  (** all at degree 1 *)
  r1_d1_degree : float;  (** the paper's 0.5 *)
  r2_d1_degree : float;  (** the paper's 1.0 *)
}

val run : unit -> result
val print : Format.formatter -> result -> unit
