module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency

type case = {
  label : string;
  a : Interval.t;
  b : Interval.t;
  coincidence : Consistency.coincidence;
  dc : float;
}

let mk label a b =
  {
    label;
    a;
    b;
    coincidence = Consistency.classify a b;
    dc = Consistency.dc ~measured:a ~nominal:b;
  }

let run () =
  let i = Interval.make in
  [
    mk "case a: A splits B"
      (i ~m1:4. ~m2:6. ~alpha:0.5 ~beta:0.5)
      (i ~m1:3. ~m2:7. ~alpha:1. ~beta:1.);
    mk "case a: B splits A"
      (i ~m1:3. ~m2:7. ~alpha:1. ~beta:1.)
      (i ~m1:4. ~m2:6. ~alpha:0.5 ~beta:0.5);
    mk "case b: conflict"
      (i ~m1:1. ~m2:2. ~alpha:0.2 ~beta:0.2)
      (i ~m1:5. ~m2:6. ~alpha:0.2 ~beta:0.2);
    mk "case b: partial conflict"
      (i ~m1:4. ~m2:5. ~alpha:0.5 ~beta:0.5)
      (i ~m1:5.2 ~m2:6. ~alpha:0.5 ~beta:0.5);
    mk "case c: corroboration"
      (i ~m1:4. ~m2:5. ~alpha:0.5 ~beta:0.5)
      (i ~m1:4. ~m2:5. ~alpha:0.5 ~beta:0.5);
  ]

let print ppf cases =
  Format.fprintf ppf "fig 4 — coincidence cases:@.";
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-26s %a vs %a → %a (Dc = %.2f)@." c.label
        Interval.pp c.a Interval.pp c.b Consistency.pp_coincidence
        c.coincidence c.dc)
    cases
