module Q = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault

type point = {
  drift : float;
  max_dc_deviation : float;
  fuzzy_candidates : int;
  crisp_detects : bool;
  crisp_candidates : int;
}

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }
let default_drifts = [ 1.0; 1.005; 1.01; 1.02; 1.05; 1.1; 1.2; 1.5; 2.0; 3.0 ]

let observations_for netlist drift =
  let faulty =
    Fault.inject netlist (Fault.shifted "r2" ~parameter:"R" (12e3 *. drift))
  in
  let sol = Flames_sim.Mna.solve faulty in
  Flames_sim.Measure.probe_all ~instrument sol
    (List.map Q.voltage [ "vs"; "n2"; "v1" ])

let max_conflict (r : Flames_core.Diagnose.result) =
  List.fold_left
    (fun acc (c : Flames_atms.Candidates.conflict) ->
      Float.max acc c.Flames_atms.Candidates.degree)
    0. r.Flames_core.Diagnose.conflicts

let run ?(drifts = default_drifts) () =
  let nominal =
    Flames_circuit.Library.three_stage_amplifier ~tolerance:0.005 ()
  in
  List.map
    (fun drift ->
      let observations = observations_for nominal drift in
      let fuzzy = Flames_core.Diagnose.run ~config nominal observations in
      let crisp = Flames_baseline.Crisp.run ~config nominal observations in
      {
        drift;
        max_dc_deviation = max_conflict fuzzy;
        fuzzy_candidates = List.length fuzzy.Flames_core.Diagnose.diagnoses;
        crisp_detects = Flames_baseline.Crisp.detects crisp;
        crisp_candidates = List.length crisp.Flames_core.Diagnose.diagnoses;
      })
    drifts

let detection_threshold points =
  List.find_map
    (fun p ->
      if p.drift > 1. && p.max_dc_deviation >= 0.5 then Some p.drift else None)
    points

let crisp_threshold points =
  List.find_map
    (fun p -> if p.drift > 1. && p.crisp_detects then Some p.drift else None)
    points

let print ppf points =
  Format.fprintf ppf
    "ablation A1 — soft-fault sensitivity (R2 drift sweep):@.";
  Format.fprintf ppf
    "  %-8s %-18s %-12s %-14s %s@." "drift" "fuzzy max conflict"
    "fuzzy #cand" "crisp detects" "crisp #cand";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-8.3f %-18.3f %-12d %-14b %d@." p.drift
        p.max_dc_deviation p.fuzzy_candidates p.crisp_detects
        p.crisp_candidates)
    points;
  (match detection_threshold points with
  | Some d -> Format.fprintf ppf "  fuzzy degree ≥ 0.5 from drift %.3f@." d
  | None -> Format.fprintf ppf "  fuzzy degree never reached 0.5@.");
  match crisp_threshold points with
  | Some d -> Format.fprintf ppf "  crisp first detects at drift %.3f@." d
  | None -> Format.fprintf ppf "  crisp never detects in this sweep@."
