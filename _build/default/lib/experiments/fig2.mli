(** Reproduction of the paper's fig. 2: crisp- vs fuzzy-interval
    propagation through the three-amplifier network (Vb = Va ⊗ amp1,
    Vc = Vb ⊗ amp2, Vd = Vb ⊕ Vc), and the fault-masking scenario where
    amp2 drifts to 1.8 and the crisp backward estimate of Va overlaps its
    nominal value while the fuzzy Dc still flags the problem. *)

module Interval = Flames_fuzzy.Interval

type row = { label : string; crisp : Interval.t; fuzzy : Interval.t }

type masking = {
  vb_estimate : Interval.t;  (** backward estimate of Vb from Vc = 5.6 *)
  va_crisp : Interval.t;  (** crisp backward estimate of Va *)
  va_fuzzy : Interval.t;  (** fuzzy backward estimate of Va *)
  crisp_detects : bool;  (** crisp intervals disjoint from nominal Va? *)
  fuzzy_dc : float;  (** Dc of the fuzzy estimate vs nominal Va — < 1 *)
}

type result = { rows : row list; masking : masking }

val run : unit -> result
(** Deterministic; matches the paper's table up to rounding
    (e.g. crisp Vd = [8.85, 9.15, 0.58, 0.62]). *)

val print : Format.formatter -> result -> unit
