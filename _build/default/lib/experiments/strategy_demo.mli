(** Reproduction of the paper's section 8: best-test-point selection by
    fuzzy expected entropy, compared with the GDE-style probabilistic
    baseline.

    Scenario: the amplifier shows a deviant output (R2 shorted, only Vs
    probed so far).  Both strategies are asked which node to probe next;
    the recommended probe is then applied and the entropy reduction is
    measured. *)

module Interval = Flames_fuzzy.Interval

type step = {
  probe : string;  (** node recommended *)
  expected_entropy : Interval.t;
  entropy_before : Interval.t;
  entropy_after : Interval.t;  (** after actually probing it *)
}

type result = {
  fuzzy_ranking : (string * float) list;  (** node → score, best first *)
  probabilistic_ranking : (string * float) list;
  fuzzy_step : step option;
  agreement : bool;  (** both strategies pick the same probe *)
}

val run : unit -> result
val print : Format.formatter -> result -> unit
