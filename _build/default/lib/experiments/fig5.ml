module Interval = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module Candidates = Flames_atms.Candidates

type conflict = { members : string list; degree : float; reason : string }

type result = {
  fuzzy_conflicts : conflict list;
  fuzzy_diagnoses : (string list * float) list;
  crisp_conflicts : conflict list;
  r1_d1_degree : float;
  r2_d1_degree : float;
}

let observations =
  [
    (Q.drop "d1", Interval.crisp 0.2);
    (Q.drop "r1", Interval.crisp 1.05);
    (Q.drop "r2", Interval.crisp 2.0);
  ]

let conflicts_of engine (r : Flames_core.Diagnose.result) =
  List.map
    (fun (c : Candidates.conflict) ->
      {
        members =
          List.map
            (Flames_core.Propagate.names engine)
            (Flames_atms.Env.to_list c.Candidates.env);
        degree = c.Candidates.degree;
        reason = c.Candidates.reason;
      })
    r.Flames_core.Diagnose.conflicts

let degree_of conflicts members =
  let members = List.sort String.compare members in
  List.fold_left
    (fun acc c ->
      if List.sort String.compare c.members = members then
        Float.max acc c.degree
      else acc)
    0. conflicts

let run () =
  let netlist = Flames_circuit.Library.diode_resistor () in
  let fuzzy = Flames_core.Diagnose.run netlist observations in
  let fuzzy_conflicts = conflicts_of fuzzy.engine fuzzy in
  (* DIANA-style crisp run: the diode bound collapses to its core,
     [Id <= 100 µA], tolerances to their supports *)
  let crisp_netlist = Flames_baseline.Crisp.crispify ~mode:`Core netlist in
  let crisp =
    Flames_baseline.Crisp.run crisp_netlist
      (List.map
         (fun (q, v) -> (q, Flames_baseline.Crisp.crispify_interval v))
         observations)
  in
  let crisp_conflicts = conflicts_of crisp.engine crisp in
  {
    fuzzy_conflicts;
    fuzzy_diagnoses = fuzzy.Flames_core.Diagnose.diagnoses;
    crisp_conflicts;
    r1_d1_degree = degree_of fuzzy_conflicts [ "r1"; "d1" ];
    r2_d1_degree = degree_of fuzzy_conflicts [ "r2"; "d1" ];
  }

let pp_conflict ppf c =
  Format.fprintf ppf "{%s} @@ %.3g (%s)" (String.concat ", " c.members)
    c.degree c.reason

let print ppf r =
  Format.fprintf ppf "fig 5 — diode–resistor diagnosis:@.";
  Format.fprintf ppf "  fuzzy nogoods:@.";
  List.iter (fun c -> Format.fprintf ppf "    %a@." pp_conflict c) r.fuzzy_conflicts;
  Format.fprintf ppf "  paper's nogoods: {r1,d1} @@ %.2f (paper: 0.5), {r2,d1} @@ %.2f (paper: 1.0)@."
    r.r1_d1_degree r.r2_d1_degree;
  Format.fprintf ppf "  fuzzy minimal diagnoses:@.";
  List.iter
    (fun (members, rank) ->
      Format.fprintf ppf "    {%s} @@ %.3g@." (String.concat ", " members) rank)
    r.fuzzy_diagnoses;
  Format.fprintf ppf "  crisp (DIANA-style) nogoods — all at the same weight:@.";
  List.iter (fun c -> Format.fprintf ppf "    %a@." pp_conflict c) r.crisp_conflicts
