module Q = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault
module Kb = Flames_learning.Knowledge_base
module Experience = Flames_learning.Experience

type result = {
  episodes : int;
  rule_certainties : float list;
  suggestion : (string * float) option;
  reranked_first : string option;
}

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let diagnose () =
  let nominal =
    Flames_circuit.Library.three_stage_amplifier ~tolerance:0.005 ()
  in
  let faulty = Fault.inject nominal (Fault.short "r2" ~parameter:"R") in
  let sol = Flames_sim.Mna.solve faulty in
  let observations =
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage [ "vs"; "n2"; "v1" ])
  in
  Flames_core.Diagnose.run ~config nominal observations

let run () =
  let kb = Kb.create () in
  Kb.add_prior kb ~component:"r2" 0.3;
  let episodes = 3 in
  let certainties = ref [] in
  for _ = 1 to episodes do
    let r = diagnose () in
    let recorded =
      Experience.record kb
        { Experience.result = r; confirmed = "r2"; mode = Some Fault.Short }
    in
    assert recorded;
    let certainty =
      match Kb.rules_for kb ~circuit:"three-stage-amplifier" with
      | rule :: _ -> rule.Flames_learning.Rule.certainty
      | [] -> 0.
    in
    certainties := certainty :: !certainties
  done;
  let fresh = diagnose () in
  let suggestion =
    match Experience.suggest kb fresh with s :: _ -> Some s | [] -> None
  in
  let reranked_first =
    match Experience.rerank kb fresh with
    | (c, _) :: _ -> Some c
    | [] -> None
  in
  {
    episodes;
    rule_certainties = List.rev !certainties;
    suggestion;
    reranked_first;
  }

let print ppf r =
  Format.fprintf ppf "section 7 — learning from experience:@.";
  Format.fprintf ppf "  rule certainty after each confirmed episode: %s@."
    (String.concat " → "
       (List.map (Printf.sprintf "%.3g") r.rule_certainties));
  (match r.suggestion with
  | Some (c, d) ->
    Format.fprintf ppf "  advice on a fresh occurrence: suspect %s @@ %.2f@." c d
  | None -> Format.fprintf ppf "  no advice (no rule matched)@.");
  match r.reranked_first with
  | Some c ->
    Format.fprintf ppf "  best candidate after experience re-ranking: %s@." c
  | None -> Format.fprintf ppf "  no candidates@."
