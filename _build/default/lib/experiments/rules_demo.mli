(** The knowledge-base unit in action (paper sections 5–6.2): the
    qualitative transistor rule "if T is correct and Vbe(T) ≥ 0.4 then it
    should be in an ON state", run through the fuzzy rule engine and the
    graded ATMS, on operating points taken from the fig-6 amplifier.

    For each scenario the bias point of a (possibly faulty) amplifier is
    measured, the base-emitter voltages are scaled into the rule engine,
    and the concluded conduction states — with their degrees and
    supporting assumption environments — are reported. *)

type row = {
  scenario : string;
  transistor : string;
  vbe : float;  (** measured base-emitter voltage *)
  on_degree : float;  (** concluded degree of "T is ON" *)
  atms_degree : float;
      (** degree with which the ATMS holds the conclusion under the
          transistor's correctness assumption *)
}

val run : unit -> row list
val print : Format.formatter -> row list -> unit
