module Interval = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault
module Best_test = Flames_strategy.Best_test
module Estimation = Flames_strategy.Estimation

type step = {
  probe : string;
  expected_entropy : Interval.t;
  entropy_before : Interval.t;
  entropy_after : Interval.t;
}

type result = {
  fuzzy_ranking : (string * float) list;
  probabilistic_ranking : (string * float) list;
  fuzzy_step : step option;
  agreement : bool;
}

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let node_of = function
  | Q.Node_voltage n -> Some n
  | Q.Branch_current _ | Q.Terminal_current _ | Q.Voltage_drop _
  | Q.Parameter _ ->
    None

let run () =
  let nominal = Flames_circuit.Library.three_stage_amplifier ~tolerance:0.005 () in
  let faulty = Fault.inject nominal (Fault.short "r2" ~parameter:"R") in
  let sol = Flames_sim.Mna.solve faulty in
  let probe node =
    Flames_sim.Measure.probe_all ~instrument sol [ Q.voltage node ]
  in
  (* step 0: only the output has been probed *)
  let first = Flames_core.Diagnose.run ~config nominal (probe "vs") in
  let estimations = Estimation.of_diagnosis first in
  let already_probed q = node_of q = Some "vs" in
  let tests =
    Best_test.test_points_of_netlist nominal
    |> List.filter (fun (t : Best_test.test_point) ->
           not (already_probed t.Best_test.quantity))
  in
  let fuzzy_evaluations = Best_test.rank estimations tests in
  let fuzzy_ranking =
    List.filter_map
      (fun (e : Best_test.evaluation) ->
        Option.map
          (fun n -> (n, e.Best_test.score))
          (node_of e.Best_test.test.Best_test.quantity))
      fuzzy_evaluations
  in
  (* probabilistic baseline on the same scenario *)
  let state = Flames_baseline.Probabilistic.of_diagnosis first in
  let candidates =
    List.map
      (fun (t : Best_test.test_point) ->
        (t.Best_test.quantity, t.Best_test.cost, t.Best_test.influencers))
      tests
  in
  let probabilistic_ranking =
    Flames_baseline.Probabilistic.rank state candidates
    |> List.filter_map (fun (e : Flames_baseline.Probabilistic.evaluation) ->
           Option.map
             (fun n -> (n, e.Flames_baseline.Probabilistic.score))
             (node_of e.Flames_baseline.Probabilistic.quantity))
  in
  (* apply the fuzzy recommendation and measure the entropy drop *)
  let fuzzy_step =
    match fuzzy_evaluations with
    | [] -> None
    | best :: _ ->
      Option.map
        (fun node ->
          let obs2 = probe "vs" @ probe node in
          let second = Flames_core.Diagnose.run ~config nominal obs2 in
          let estimations' = Estimation.of_diagnosis second in
          {
            probe = node;
            expected_entropy = best.Best_test.expected_entropy;
            entropy_before = Best_test.system_entropy estimations;
            entropy_after = Best_test.system_entropy estimations';
          })
        (node_of best.Best_test.test.Best_test.quantity)
  in
  let agreement =
    match (fuzzy_ranking, probabilistic_ranking) with
    | (a, _) :: _, (b, _) :: _ -> a = b
    | ([], _ | _, []) -> false
  in
  { fuzzy_ranking; probabilistic_ranking; fuzzy_step; agreement }

let print ppf r =
  Format.fprintf ppf "section 8 — best next test after a deviant Vs:@.";
  let pp_ranking label ranking =
    Format.fprintf ppf "  %s: %s@." label
      (String.concat " > "
         (List.map (fun (n, s) -> Printf.sprintf "%s (%.3g)" n s) ranking))
  in
  pp_ranking "fuzzy-entropy ranking      " r.fuzzy_ranking;
  pp_ranking "probabilistic (GDE) ranking" r.probabilistic_ranking;
  Format.fprintf ppf "  strategies agree on the first probe: %b@." r.agreement;
  match r.fuzzy_step with
  | Some s ->
    Format.fprintf ppf
      "  probing %s: entropy %s (centroid %.3g) → %s (centroid %.3g)@."
      s.probe
      (Interval.to_string s.entropy_before)
      (Interval.centroid s.entropy_before)
      (Interval.to_string s.entropy_after)
      (Interval.centroid s.entropy_after)
  | None -> Format.fprintf ppf "  no test available@."
