(** An Assumption-based Truth Maintenance System (de Kleer 1986) extended
    with graded (fuzzy) justifications and weighted nogoods, as required
    by the paper's fuzzy-ATMS kernel (section 6).

    Each node carries a label: the set of minimal consistent environments
    in which the node holds, each with a believability degree obtained by
    min-combining the certainty degrees of the justifications used.
    Contradiction nodes feed the weighted nogood database; hard nogoods
    (degree 1) remove environments from labels, soft nogoods only lower
    their degree. *)

type t
(** A mutable ATMS instance. *)

type node
(** A statement tracked by the ATMS. *)

type labelled = { env : Env.t; degree : float }
(** One label entry: the node holds in [env] with certainty [degree]. *)

val create : unit -> t

(** {1 Assumptions and nodes} *)

val assumption : t -> string -> node
(** [assumption atms name] creates a fresh assumption and its node
    (labelled with its own singleton environment at degree 1).
    Assumption names must be unique within an instance.
    @raise Invalid_argument on a duplicate name. *)

val node : t -> string -> node
(** [node atms datum] creates a non-assumption node with an empty label.
    Datum strings are unique; re-calling with the same datum returns the
    existing node. *)

val contradiction : t -> node
(** The distinguished falsity node of the instance. *)

val premise : t -> node -> unit
(** Mark a node as a premise: it holds in the empty environment with
    degree 1. *)

(** {1 Justifications} *)

val justify : t -> ?degree:float -> antecedents:node list -> node -> unit
(** [justify atms ~antecedents n] installs the justification
    [antecedents → n] with certainty [degree] (default 1) and
    incrementally updates labels downstream.  Justifying the
    contradiction node records nogoods instead. *)

val justify_disjunction : t -> ?degree:float -> antecedents:node list -> node list -> unit
(** Non-Horn clause [antecedents → d1 ∨ ... ∨ dk]: the fuzzy ATMS accepts
    it by weakening — each disjunct receives the justification with
    degree [degree / k] — mirroring the possibilistic reading the paper
    refers to.  @raise Invalid_argument on an empty disjunct list. *)

(** {1 Queries} *)

val label : t -> node -> labelled list
(** Minimal consistent environments of the node, strongest first. *)

val holds_in : t -> node -> Env.t -> float
(** Highest degree with which the node holds in (a subset of) [env];
    0 when it does not. *)

val is_in : t -> node -> Env.t -> bool
(** [holds_in > 0]. *)

val consistent : t -> Env.t -> bool
(** No hard nogood is included in the environment. *)

val nogoods : t -> Nogood.entry list
val nogood_db : t -> Nogood.t

val env_of_assumptions : t -> node list -> Env.t
(** Environment made of the given assumption nodes.
    @raise Invalid_argument if a node is not an assumption. *)

val name : t -> int -> string
(** Name of an assumption id (for printing). *)

val datum : node -> string
val assumption_count : t -> int

val pp_node : t -> Format.formatter -> node -> unit
(** Prints the datum and its label. *)
