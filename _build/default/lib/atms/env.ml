module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let singleton = S.singleton
let of_list = S.of_list
let to_list = S.elements
let union = S.union
let inter = S.inter
let diff = S.diff
let mem = S.mem
let add = S.add
let subset = S.subset
let disjoint = S.disjoint
let cardinal = S.cardinal
let is_empty = S.is_empty
let compare = S.compare
let equal = S.equal
let fold = S.fold
let exists = S.exists
let choose = S.min_elt_opt

let pp ~names ppf env =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a -> Format.pp_print_string ppf (names a)))
    (to_list env)
