(** Assumption environments.

    An environment is a finite set of assumption identifiers; a value (or a
    node) holds in an environment when it is derivable from exactly those
    assumptions plus the premises.  Assumption identifiers are small
    integers allocated by {!Atms}; names are kept in the ATMS table. *)

type t

val empty : t
val singleton : int -> t
val of_list : int list -> t
val to_list : t -> int list
(** Sorted increasing. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val mem : int -> t -> bool
val add : int -> t -> t
val subset : t -> t -> bool
(** [subset a b] holds when [a ⊆ b]. *)

val disjoint : t -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool
val choose : t -> int option
(** Smallest element, if any. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** Prints as [{a, b, c}] using the naming function. *)
