let hits_all candidate conflicts =
  List.for_all (fun c -> not (Env.disjoint candidate c)) conflicts

(* Breadth-first expansion: maintain a frontier of partial hitting sets
   ordered by construction; extend each with the elements of the first
   conflict it does not hit.  Minimality: a completed set is kept only if
   no kept set is a subset of it, and partial sets subsumed by a completed
   set are pruned. *)
let minimal_hitting_sets ?(limit = 10_000) conflicts =
  let conflicts = List.sort_uniq Env.compare conflicts in
  if conflicts = [] then [ Env.empty ]
  else if List.exists Env.is_empty conflicts then []
  else begin
    let complete = ref [] in
    let is_subsumed env = List.exists (fun m -> Env.subset m env) !complete in
    let rec first_missed env = function
      | [] -> None
      | c :: rest -> if Env.disjoint env c then Some c else first_missed env rest
    in
    let queue = Queue.create () in
    Queue.add Env.empty queue;
    let seen = Hashtbl.create 256 in
    while (not (Queue.is_empty queue)) && List.length !complete < limit do
      let env = Queue.pop queue in
      if not (is_subsumed env) then
        match first_missed env conflicts with
        | None -> complete := env :: !complete
        | Some c ->
          Env.fold
            (fun a () ->
              let env' = Env.add a env in
              let key = Env.to_list env' in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                Queue.add env' queue
              end)
            c ()
    done;
    let by_size a b =
      let c = Int.compare (Env.cardinal a) (Env.cardinal b) in
      if c <> 0 then c else Env.compare a b
    in
    List.sort by_size !complete
  end
