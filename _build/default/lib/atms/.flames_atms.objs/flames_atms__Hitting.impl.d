lib/atms/hitting.ml: Env Hashtbl Int List Queue
