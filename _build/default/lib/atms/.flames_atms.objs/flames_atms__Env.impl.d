lib/atms/env.ml: Format Int Set
