lib/atms/env.mli: Format
