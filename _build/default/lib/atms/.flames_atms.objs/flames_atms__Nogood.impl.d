lib/atms/nogood.ml: Env Flames_fuzzy Float Format Int List
