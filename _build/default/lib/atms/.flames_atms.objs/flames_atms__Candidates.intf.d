lib/atms/candidates.mli: Env Format Nogood
