lib/atms/nogood.mli: Env Format
