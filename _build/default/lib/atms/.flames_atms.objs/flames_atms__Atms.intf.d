lib/atms/atms.mli: Env Format Nogood
