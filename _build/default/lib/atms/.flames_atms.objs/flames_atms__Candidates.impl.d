lib/atms/candidates.ml: Env Float Format Hashtbl Hitting Int List Nogood Option
