lib/atms/hitting.mli: Env
