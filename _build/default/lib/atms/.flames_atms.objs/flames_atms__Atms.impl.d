lib/atms/atms.ml: Env Flames_fuzzy Float Format Hashtbl List Nogood Printf Queue
