module Interval = Flames_fuzzy.Interval
module Linguistic = Flames_fuzzy.Linguistic

type t = { component : string; faultiness : Interval.t }

let make component faultiness = { component; faultiness }

let of_suspicion ?(scale = Linguistic.default_scale) component degree =
  let term = Linguistic.of_degree scale degree in
  { component; faultiness = term.Linguistic.value }

(* A suspicion of 1 means "member of a hard conflict", not "surely
   faulty": the evidence is shared by every member of the conflict, so
   the per-component faultiness estimation divides the suspicion by the
   size of the smallest conflict implicating the component. *)
let ambiguity result name =
  let engine = result.Flames_core.Diagnose.engine in
  List.fold_left
    (fun acc (c : Flames_atms.Candidates.conflict) ->
      let members =
        List.map
          (Flames_core.Propagate.names engine)
          (Flames_atms.Env.to_list c.Flames_atms.Candidates.env)
      in
      if List.mem name members then min acc (List.length members) else acc)
    max_int result.Flames_core.Diagnose.conflicts

let of_diagnosis ?(scale = Linguistic.default_scale) result =
  let suspects = result.Flames_core.Diagnose.suspects in
  let suspicion name =
    List.find_map
      (fun (s : Flames_core.Diagnose.suspect) ->
        if s.Flames_core.Diagnose.component = name then
          Some s.Flames_core.Diagnose.suspicion
        else None)
      suspects
  in
  let explains name =
    List.exists
      (fun (s : Flames_core.Diagnose.suspect) ->
        s.Flames_core.Diagnose.component = name
        && s.Flames_core.Diagnose.explains)
      suspects
  in
  let explainer_count =
    List.length
      (List.filter
         (fun (s : Flames_core.Diagnose.suspect) ->
           s.Flames_core.Diagnose.explains)
         suspects)
  in
  Flames_circuit.Netlist.component_names result.Flames_core.Diagnose.netlist
  |> List.map (fun name ->
         match suspicion name with
         | Some s ->
           (* under a single-fault reading exactly one candidate is the
              culprit: the explaining suspects share the suspicion among
              themselves, the non-explaining ones are further discounted
              by the size of their smallest conflict *)
           let k = ambiguity result name in
           let k = if k = max_int || k = 0 then 1 else k in
           let degree =
             if explains name then s /. float_of_int (max 1 explainer_count)
             else if explainer_count > 0 then
               0.3 *. s /. float_of_int k
             else s /. float_of_int k
           in
           of_suspicion ~scale name degree
         | None -> { component = name; faultiness = Linguistic.correct.value })

let faultiness_of estimations name =
  match List.find_opt (fun e -> e.component = name) estimations with
  | Some e -> e.faultiness
  | None -> Linguistic.correct.Linguistic.value

let term_of ?(scale = Linguistic.default_scale) e =
  Linguistic.best_match scale e.faultiness

let pp ppf e =
  Format.fprintf ppf "%s: %a" e.component Interval.pp e.faultiness
