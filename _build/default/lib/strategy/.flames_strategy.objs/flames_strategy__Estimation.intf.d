lib/strategy/estimation.mli: Flames_core Flames_fuzzy Format
