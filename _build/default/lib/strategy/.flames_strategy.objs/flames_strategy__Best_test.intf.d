lib/strategy/best_test.mli: Estimation Flames_circuit Flames_fuzzy Format
