lib/strategy/estimation.ml: Flames_atms Flames_circuit Flames_core Flames_fuzzy Format List
