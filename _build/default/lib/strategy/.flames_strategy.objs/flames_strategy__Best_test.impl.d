lib/strategy/best_test.ml: Estimation Flames_circuit Flames_fuzzy Flames_sim Float Format List
