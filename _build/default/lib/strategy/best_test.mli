(** Best-test-point selection by fuzzy expected entropy (paper section 8.2).

    The module under test is a system of components with fuzzy faultiness
    estimations Fi; its fuzzy entropy [Ent(S) = ⊕ Fi ⊗ log2(1 ⊘ Fi)]
    measures how undecided the diagnosis is.  For each available test,
    the expected entropy {e assuming the measurement has been done} is
    computed over the two outcomes (consistent / deviant) weighted by
    their fuzzy likelihood, and the test minimising the expected entropy
    per unit cost is recommended.

    Outcome model (our instantiation of the paper's sketch):
    - the fuzzy likelihood that probing [q] shows a deviation is the
      fuzzy maximum of the estimations of the components influencing [q];
    - a consistent outcome exonerates the influencers (their estimation
      is scaled towards correct);
    - a deviant outcome raises the influencers towards likely-faulty and
      relieves the others. *)

module Interval = Flames_fuzzy.Interval
module Quantity = Flames_circuit.Quantity

type test_point = {
  quantity : Quantity.t;
  cost : float;  (** probing cost, > 0; entropy gain is divided by it *)
  influencers : string list;
      (** components whose health the probe gives evidence about *)
}

type evaluation = {
  test : test_point;
  deviant_likelihood : Interval.t;
  expected_entropy : Interval.t;
  score : float;  (** defuzzified expected entropy × cost — lower wins *)
}

val test_point : ?cost:float -> Quantity.t -> influencers:string list -> test_point

val test_points_of_netlist :
  ?cost:float -> Flames_circuit.Netlist.t -> test_point list
(** One test per measurable node voltage, with influencers from the
    simulator's sensitivity analysis; empty when the circuit cannot be
    solved. *)

val system_entropy : Estimation.t list -> Interval.t
val evaluate : Estimation.t list -> test_point -> evaluation

val rank : Estimation.t list -> test_point list -> evaluation list
(** All evaluations, best (lowest score) first. *)

val best : Estimation.t list -> test_point list -> evaluation option
(** The recommended next test; [None] on an empty test list. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
