(** Fuzzy faultiness estimations of components (paper section 8.1).

    Component states are summarised by fuzzy estimations on the [0, 1]
    faultiness axis, expressed on a linguistic scale.  Estimations are
    derived from the suspicion degrees of a diagnosis and refined by the
    expert's a-priori knowledge. *)

module Interval = Flames_fuzzy.Interval
module Linguistic = Flames_fuzzy.Linguistic

type t = { component : string; faultiness : Interval.t }

val make : string -> Interval.t -> t

val of_suspicion : ?scale:Linguistic.scale -> string -> float -> t
(** Map a suspicion degree to the matching linguistic term's fuzzy set. *)

val of_diagnosis :
  ?scale:Linguistic.scale -> Flames_core.Diagnose.result -> t list
(** One estimation per component of the diagnosed circuit: suspects get
    the term matching their suspicion, unimplicated components are
    [correct]. *)

val faultiness_of : t list -> string -> Interval.t
(** Estimation of the named component; [correct]'s fuzzy set when
    absent. *)

val term_of : ?scale:Linguistic.scale -> t -> Linguistic.term
(** The linguistic rendering of the estimation. *)

val pp : Format.formatter -> t -> unit
