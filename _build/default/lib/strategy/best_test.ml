module Interval = Flames_fuzzy.Interval
module Arith = Flames_fuzzy.Arith
module Entropy = Flames_fuzzy.Entropy
module Linguistic = Flames_fuzzy.Linguistic
module Quantity = Flames_circuit.Quantity

type test_point = {
  quantity : Quantity.t;
  cost : float;
  influencers : string list;
}

type evaluation = {
  test : test_point;
  deviant_likelihood : Interval.t;
  expected_entropy : Interval.t;
  score : float;
}

let test_point ?(cost = 1.) quantity ~influencers =
  if cost <= 0. then invalid_arg "Best_test.test_point: cost must be > 0";
  { quantity; cost; influencers }

let test_points_of_netlist ?cost netlist =
  if netlist.Flames_circuit.Netlist.ports <> [] then []
  else
  match Flames_sim.Sensitivity.analyze netlist with
  | exception
      ( Flames_sim.Mna.No_convergence _ | Flames_sim.Linalg.Singular
      | Flames_circuit.Netlist.Ill_formed _ ) ->
    []
  | reports ->
    List.map
      (fun (r : Flames_sim.Sensitivity.node_report) ->
        test_point ?cost
          (Quantity.voltage r.Flames_sim.Sensitivity.node)
          ~influencers:(Flames_sim.Sensitivity.supporters r))
      reports

let system_entropy estimations =
  Entropy.entropy
    (List.map (fun e -> e.Estimation.faultiness) estimations)

let unit_interval = Arith.clamp ~lo:0. ~hi:1.

(* Fuzzy likelihood that the probe deviates: fuzzy max of the influencers'
   estimations (at least one of them must be off for the probe to show
   something). *)
let deviant_likelihood estimations test =
  List.fold_left
    (fun acc c -> Arith.fmax acc (Estimation.faultiness_of estimations c))
    (Interval.crisp 0.) test.influencers

let exonerate faultiness = unit_interval (Arith.scale 0.1 faultiness)

(* A deviant outcome incriminates the influencers: when the probe has a
   single influencer the diagnosis is resolved (faulty), otherwise the
   evidence is shared and each influencer only rises to likely-faulty. *)
let incriminate ~influencer_count faultiness =
  let target =
    if influencer_count <= 1 then Linguistic.faulty.Linguistic.value
    else Linguistic.likely_faulty.Linguistic.value
  in
  unit_interval (Arith.fmax faultiness target)

let relieve faultiness = unit_interval (Arith.scale 0.5 faultiness)

let posterior estimations test ~outcome_deviant =
  let influencer_count = List.length test.influencers in
  List.map
    (fun (e : Estimation.t) ->
      let touched = List.mem e.Estimation.component test.influencers in
      let faultiness =
        match (outcome_deviant, touched) with
        | false, true -> exonerate e.Estimation.faultiness
        | false, false -> e.Estimation.faultiness
        | true, true -> incriminate ~influencer_count e.Estimation.faultiness
        | true, false -> relieve e.Estimation.faultiness
      in
      { e with Estimation.faultiness })
    estimations

let evaluate estimations test =
  let p_dev = unit_interval (deviant_likelihood estimations test) in
  let p_con = unit_interval (Arith.sub (Interval.crisp 1.) p_dev) in
  let ent_dev = system_entropy (posterior estimations test ~outcome_deviant:true)
  and ent_con =
    system_entropy (posterior estimations test ~outcome_deviant:false)
  in
  let expected =
    Arith.add (Arith.mul p_dev ent_dev) (Arith.mul p_con ent_con)
  in
  {
    test;
    deviant_likelihood = p_dev;
    expected_entropy = expected;
    score = Interval.centroid expected *. test.cost;
  }

let rank estimations tests =
  List.map (evaluate estimations) tests
  |> List.sort (fun a b -> Float.compare a.score b.score)

let best estimations tests =
  match rank estimations tests with [] -> None | e :: _ -> Some e

let pp_evaluation ppf e =
  Format.fprintf ppf "%a: expected entropy %a (score %.3g, P(dev) %a)"
    Quantity.pp e.test.quantity Interval.pp e.expected_entropy e.score
    Interval.pp e.deviant_likelihood
