lib/fuzzy/consistency.mli: Format Interval
