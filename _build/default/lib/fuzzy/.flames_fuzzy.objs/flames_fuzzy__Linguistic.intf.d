lib/fuzzy/linguistic.mli: Format Interval
