lib/fuzzy/consistency.ml: Float Format Interval Piecewise
