lib/fuzzy/interval.mli: Format
