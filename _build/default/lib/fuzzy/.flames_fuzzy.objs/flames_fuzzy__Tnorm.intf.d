lib/fuzzy/tnorm.mli: Format
