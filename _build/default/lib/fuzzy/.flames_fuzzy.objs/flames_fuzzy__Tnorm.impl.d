lib/fuzzy/tnorm.ml: Float Format List
