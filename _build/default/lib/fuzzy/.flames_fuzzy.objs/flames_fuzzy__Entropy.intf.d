lib/fuzzy/entropy.mli: Interval
