lib/fuzzy/piecewise.mli: Interval
