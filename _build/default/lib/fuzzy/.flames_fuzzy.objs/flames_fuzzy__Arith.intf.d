lib/fuzzy/arith.mli: Interval
