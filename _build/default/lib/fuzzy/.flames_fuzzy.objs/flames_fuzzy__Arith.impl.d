lib/fuzzy/arith.ml: Float Format Interval List
