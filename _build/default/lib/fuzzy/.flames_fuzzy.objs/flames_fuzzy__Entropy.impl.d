lib/fuzzy/entropy.ml: Arith Float Interval List Tnorm
