lib/fuzzy/linguistic.ml: Format Interval List Piecewise Printf Tnorm
