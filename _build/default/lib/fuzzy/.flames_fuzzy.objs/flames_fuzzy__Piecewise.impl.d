lib/fuzzy/piecewise.ml: Float Interval List
