lib/fuzzy/interval.ml: Float Format List Printf
