type t = Minimum | Product | Lukasiewicz

let clamp01 x = Float.max 0. (Float.min 1. x)

let tnorm t a b =
  let a = clamp01 a and b = clamp01 b in
  match t with
  | Minimum -> Float.min a b
  | Product -> a *. b
  | Lukasiewicz -> Float.max 0. (a +. b -. 1.)

let tconorm t a b =
  let a = clamp01 a and b = clamp01 b in
  match t with
  | Minimum -> Float.max a b
  | Product -> a +. b -. (a *. b)
  | Lukasiewicz -> Float.min 1. (a +. b)

let neg x = 1. -. clamp01 x
let combine_all t = List.fold_left (tnorm t) 1.

let pp ppf = function
  | Minimum -> Format.pp_print_string ppf "min"
  | Product -> Format.pp_print_string ppf "product"
  | Lukasiewicz -> Format.pp_print_string ppf "lukasiewicz"
