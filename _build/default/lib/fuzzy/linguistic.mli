(** Linguistic fuzzy estimations of faultiness (paper section 8.1).

    The [0, 1] faultiness axis is decomposed into linguistic terms defined
    by fuzzy intervals, e.g. [Correct = [0, .05, 0, .05]] and
    [Likely_correct = [.18, .34, .02, .06]].  The granularity of the
    decomposition is configurable; the paper's five-term scale is provided
    as the default. *)

type term = { name : string; value : Interval.t }

type scale = private term list
(** An ordered list of terms covering [0, 1]. *)

val term : string -> Interval.t -> term

val make_scale : term list -> scale
(** @raise Invalid_argument if empty, if a term leaves [0,1], or if the
    terms are not ordered by centroid. *)

val default_scale : scale
(** The paper's five-term decomposition:
    correct, likely-correct, unknown, likely-faulty, faulty. *)

val correct : term
val likely_correct : term
val unknown : term
val likely_faulty : term
val faulty : term

val terms : scale -> term list

val best_match : scale -> Interval.t -> term
(** The scale term with the highest matching possibility
    (height of the pointwise minimum) against the given estimation;
    ties are broken towards the lower term. *)

val of_degree : scale -> float -> term
(** The term with maximal membership at a crisp faultiness degree. *)

val pp_term : Format.formatter -> term -> unit
