exception Undefined of string

open Interval

let add a b =
  make ~m1:(a.m1 +. b.m1) ~m2:(a.m2 +. b.m2) ~alpha:(a.alpha +. b.alpha)
    ~beta:(a.beta +. b.beta)

let neg a = make ~m1:(-.a.m2) ~m2:(-.a.m1) ~alpha:a.beta ~beta:a.alpha
let sub a b = add a (neg b)

(* Hull combination: given the exact images of the four core endpoints and
   the four support endpoints, rebuild a trapezoid with exact core and
   support and linearised flanks. *)
let of_hull core_points support_points =
  let fold f = function
    | [] -> invalid_arg "of_hull: empty"
    | x :: rest -> List.fold_left f x rest
  in
  let clo = fold Float.min core_points and chi = fold Float.max core_points in
  let slo = fold Float.min support_points
  and shi = fold Float.max support_points in
  let slo = Float.min slo clo and shi = Float.max shi chi in
  make ~m1:clo ~m2:chi ~alpha:(clo -. slo) ~beta:(shi -. chi)

let mul a b =
  let ac = [ a.m1; a.m2 ] and bc = [ b.m1; b.m2 ] in
  let alo, ahi = support a and blo, bhi = support b in
  let products xs ys =
    List.concat_map (fun x -> List.map (fun y -> x *. y) ys) xs
  in
  of_hull (products ac bc) (products [ alo; ahi ] [ blo; bhi ])

let inv a =
  let slo, shi = support a in
  if slo <= 0. && shi >= 0. then
    raise (Undefined (Format.asprintf "inverse of %a: support contains 0" pp a));
  of_hull [ 1. /. a.m2; 1. /. a.m1 ] [ 1. /. shi; 1. /. slo ]

let div a b = mul a (inv b)

let scale k v =
  if k >= 0. then
    make ~m1:(k *. v.m1) ~m2:(k *. v.m2) ~alpha:(k *. v.alpha)
      ~beta:(k *. v.beta)
  else
    make ~m1:(k *. v.m2) ~m2:(k *. v.m1) ~alpha:(-.k *. v.beta)
      ~beta:(-.k *. v.alpha)

let shift c v = make ~m1:(v.m1 +. c) ~m2:(v.m2 +. c) ~alpha:v.alpha ~beta:v.beta

let map_increasing f v =
  let slo, shi = support v in
  of_hull [ f v.m1; f v.m2 ] [ f slo; f shi ]

let map_decreasing f v =
  let slo, shi = support v in
  of_hull [ f v.m2; f v.m1 ] [ f shi; f slo ]

let log2 v =
  let slo, _ = support v in
  if slo <= 0. then
    raise (Undefined (Format.asprintf "log2 of %a: support reaches 0" pp v));
  map_increasing (fun x -> Float.log x /. Float.log 2.) v

let fmin a b =
  let alo, ahi = support a and blo, bhi = support b in
  of_hull
    [ Float.min a.m1 b.m1; Float.min a.m2 b.m2 ]
    [ Float.min alo blo; Float.min ahi bhi ]

let fmax a b =
  let alo, ahi = support a and blo, bhi = support b in
  of_hull
    [ Float.max a.m1 b.m1; Float.max a.m2 b.m2 ]
    [ Float.max alo blo; Float.max ahi bhi ]

let sum = List.fold_left add (crisp 0.)

let clamp ~lo ~hi v =
  let c x = Float.max lo (Float.min hi x) in
  let slo, shi = support v in
  of_hull [ c v.m1; c v.m2 ] [ c slo; c shi ]
