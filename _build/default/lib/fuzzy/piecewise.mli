(** Exact operations on piecewise-linear membership functions.

    The degree of consistency Dc of the paper (section 6.1.2) is the ratio
    of the area of the pointwise-minimum of two trapezoidal membership
    functions to the area of the first.  The minimum of two trapezoids is
    piecewise linear but not trapezoidal, so it is computed here exactly by
    splitting the real line at every breakpoint and crossing point and
    integrating segment by segment. *)

val breakpoints : Interval.t -> float list
(** The abscissae at which the membership function of a trapezoid changes
    slope, in increasing order (duplicates removed). *)

val min_area : Interval.t -> Interval.t -> float
(** [min_area a b] is the exact integral of
    [fun x -> min (membership a x) (membership b x)]
    over the whole real line. *)

val max_area : Interval.t -> Interval.t -> float
(** [max_area a b] is the exact integral of the pointwise maximum. *)

val intersection_hull : Interval.t -> Interval.t -> Interval.t option
(** [intersection_hull a b] is the trapezoidal approximation of the
    pointwise minimum of [a] and [b]: its support is the intersection of
    the supports, its core the intersection of the cores when non-empty
    (otherwise a point core at the abscissa of maximal membership).
    [None] when the supports are disjoint. *)

val height_of_min : Interval.t -> Interval.t -> float
(** Maximal value of the pointwise minimum — the classical possibility
    degree of matching between two fuzzy values. *)
