(** Fuzzy Shannon entropy (paper section 8.2).

    For a set S of n components with fuzzy faultiness estimations Fi, the
    fuzzy entropy extends Shannon's formula to fuzzy probabilities:

    [Ent(S) = ⊕_i H(Fi)]  with  [H(p) = −p·log2 p − (1−p)·log2 (1−p)]

    (the scan of the paper garbles the exact formula; we use the faithful
    binary-entropy term — see DESIGN.md).  Each [H(Fi)] is computed as the
    {e exact image} of the fuzzy estimation under the unimodal function H
    (image hulls of the core and support, accounting for the peak at
    p = 1/2), not as a composition of interval operations — naive interval
    arithmetic would lose the dependency between [p] and [log2 p] and
    grossly overestimate the spread. *)

val binary_entropy : float -> float
(** [H(p)] in bits, with the conventions [H(0) = H(1) = 0]. *)

val term : Interval.t -> Interval.t
(** [term f] is the fuzzy value [H(f)] for one component; [f] is clamped
    into [0, 1] first. *)

val entropy : Interval.t list -> Interval.t
(** Fuzzy entropy of a system of fuzzy faultiness estimations. *)

val entropy_defuzzified : Interval.t list -> float
(** Centroid of {!entropy} — a crisp score used to compare test plans. *)

val crisp_entropy : float list -> float
(** Classical Shannon entropy [Σ H(pᵢ)] over independent per-component
    fault probabilities; the probabilistic baseline uses it. *)
