(** Triangular norms and conorms on membership degrees in [0, 1].

    Used to combine certainty degrees of rules and assumptions: the engine
    defaults to the min/max pair (Zadeh), the knowledge base can opt into
    product or Łukasiewicz combination. *)

type t = Minimum | Product | Lukasiewicz

val tnorm : t -> float -> float -> float
(** Conjunctive combination; all three coincide on {0,1}-valued inputs. *)

val tconorm : t -> float -> float -> float
(** The dual conorm ([tconorm t a b = 1 - tnorm t (1-a) (1-b)]). *)

val neg : float -> float
(** Standard fuzzy negation [1 - x]. *)

val combine_all : t -> float list -> float
(** [tnorm]-fold of a list; the empty list combines to [1.] (neutral). *)

val clamp01 : float -> float
(** Clamp into [0, 1] (guards against float drift). *)

val pp : Format.formatter -> t -> unit
