(** Fuzzy-interval arithmetic (paper section 3.2, after Bonissone–Decker).

    Addition and subtraction are exact on trapezoids:
    - [M (+) N = [m1+n1, m2+n2, a+a', b+b']]
    - [M (-) N = [m1-n2, m2-n1, a+b', b+a']]

    Multiplication, division and nonlinear maps use the LR approximation:
    the core and support of the result are exact (interval hulls of the
    endpoint images) and the flanks are linearised. *)

exception Undefined of string
(** Raised when an operation is not defined on the operands (division by a
    fuzzy value whose support contains zero, logarithm of a support
    reaching zero, ...). *)

val add : Interval.t -> Interval.t -> Interval.t
val sub : Interval.t -> Interval.t -> Interval.t
val neg : Interval.t -> Interval.t

val mul : Interval.t -> Interval.t -> Interval.t
(** Exact support/core hull for arbitrary signs. *)

val div : Interval.t -> Interval.t -> Interval.t
(** @raise Undefined when the divisor's support contains 0. *)

val scale : float -> Interval.t -> Interval.t
(** [scale k v] multiplies by the crisp constant [k] (negative [k]
    mirrors the flanks). *)

val shift : float -> Interval.t -> Interval.t
(** [shift c v] adds the crisp constant [c]. *)

val inv : Interval.t -> Interval.t
(** [inv v] is [1 / v]. @raise Undefined when the support contains 0. *)

val map_increasing : (float -> float) -> Interval.t -> Interval.t
(** [map_increasing f v] applies a monotonically increasing function to
    the four characteristic points (LR approximation). *)

val map_decreasing : (float -> float) -> Interval.t -> Interval.t

val log2 : Interval.t -> Interval.t
(** @raise Undefined when the support reaches 0 or below. *)

val fmin : Interval.t -> Interval.t -> Interval.t
(** Fuzzy minimum (endpoint-wise). *)

val fmax : Interval.t -> Interval.t -> Interval.t

val sum : Interval.t list -> Interval.t
(** Fuzzy sum of a list; the sum of the empty list is [crisp 0]. *)

val clamp : lo:float -> hi:float -> Interval.t -> Interval.t
(** Restrict the four characteristic points into [lo, hi] (used to keep
    fuzzy probabilities inside [0, 1]). *)
