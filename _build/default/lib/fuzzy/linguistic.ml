type term = { name : string; value : Interval.t }
type scale = term list

let term name value = { name; value }

let make_scale terms =
  if terms = [] then invalid_arg "Linguistic.make_scale: empty scale";
  let in_unit { value; name } =
    let lo, hi = Interval.support value in
    if lo < -1e-9 || hi > 1. +. 1e-9 then
      invalid_arg
        (Printf.sprintf "Linguistic.make_scale: term %S leaves [0,1]" name)
  in
  List.iter in_unit terms;
  let rec ordered = function
    | a :: (b :: _ as rest) ->
      if Interval.centroid a.value > Interval.centroid b.value then
        invalid_arg "Linguistic.make_scale: terms not ordered";
      ordered rest
    | [ _ ] | [] -> ()
  in
  ordered terms;
  terms

(* The paper's five-term decomposition (its core positions: correct
   [0,.05], likely-correct [.18,.34], likely-faulty [.66,.82], faulty
   [.95,1]), with flanks widened so that consecutive terms overlap — the
   scale covers every point of [0,1] and matching never falls into a
   gap. *)
let correct = term "correct" (Interval.make ~m1:0. ~m2:0.05 ~alpha:0. ~beta:0.14)

let likely_correct =
  term "likely-correct" (Interval.make ~m1:0.18 ~m2:0.34 ~alpha:0.14 ~beta:0.12)

let unknown = term "unknown" (Interval.make ~m1:0.45 ~m2:0.55 ~alpha:0.12 ~beta:0.12)

let likely_faulty =
  term "likely-faulty" (Interval.make ~m1:0.66 ~m2:0.82 ~alpha:0.12 ~beta:0.14)

let faulty = term "faulty" (Interval.make ~m1:0.95 ~m2:1. ~alpha:0.14 ~beta:0.)

let default_scale =
  make_scale [ correct; likely_correct; unknown; likely_faulty; faulty ]

let terms scale = scale

let best_match scale estimation =
  let score t = Piecewise.height_of_min t.value estimation in
  match scale with
  | [] -> assert false (* make_scale forbids empty scales *)
  | first :: rest ->
    let best, _ =
      List.fold_left
        (fun (bt, bs) t ->
          let s = score t in
          if s > bs then (t, s) else (bt, bs))
        (first, score first) rest
    in
    best

let of_degree scale x =
  best_match scale (Interval.crisp (Tnorm.clamp01 x))

let pp_term ppf t = Format.fprintf ppf "%s%a" t.name Interval.pp t.value
