let plogp p =
  if p <= 0. || p >= 1. then 0. else -.p *. (Float.log p /. Float.log 2.)

let binary_entropy p =
  let p = Tnorm.clamp01 p in
  plogp p +. plogp (1. -. p)

(* Exact image of an interval under the unimodal H: the maximum is H(1/2)
   when the interval straddles 1/2, otherwise at the nearest endpoint; the
   minimum is at an endpoint. *)
let image lo hi =
  let glo = binary_entropy lo and ghi = binary_entropy hi in
  let mx = if lo <= 0.5 && 0.5 <= hi then 1. else Float.max glo ghi in
  (Float.min glo ghi, mx)

let term f =
  let f = Arith.clamp ~lo:0. ~hi:1. f in
  let clo, chi = Interval.core f in
  let slo, shi = Interval.support f in
  let core_lo, core_hi = image clo chi in
  let supp_lo, supp_hi = image slo shi in
  let supp_lo = Float.min supp_lo core_lo
  and supp_hi = Float.max supp_hi core_hi in
  Interval.make ~m1:core_lo ~m2:core_hi ~alpha:(core_lo -. supp_lo)
    ~beta:(supp_hi -. core_hi)

let entropy estimations = Arith.sum (List.map term estimations)
let entropy_defuzzified estimations = Interval.centroid (entropy estimations)

let crisp_entropy probabilities =
  List.fold_left (fun acc p -> acc +. binary_entropy p) 0. probabilities
