lib/baseline/crisp.ml: Flames_atms Flames_circuit Flames_core Flames_fuzzy List
