lib/baseline/probabilistic.mli: Flames_circuit Flames_core
