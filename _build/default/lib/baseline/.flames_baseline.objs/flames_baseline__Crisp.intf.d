lib/baseline/crisp.mli: Flames_circuit Flames_core Flames_fuzzy
