lib/baseline/probabilistic.ml: Flames_circuit Flames_core Flames_fuzzy Float List
