module Interval = Flames_fuzzy.Interval
module C = Flames_circuit.Component
module N = Flames_circuit.Netlist

let crispify_interval ?(mode = `Support) v =
  let lo, hi =
    match mode with `Support -> Interval.support v | `Core -> Interval.core v
  in
  Interval.crisp_interval lo hi

let crispify ?mode netlist =
  List.fold_left
    (fun net (c : C.t) ->
      List.fold_left
        (fun net param ->
          let v = C.nominal_parameter c param in
          N.replace net
            (C.with_parameter (N.find net c.C.name) param
               (crispify_interval ?mode v)))
        net
        (C.parameter_names c.C.kind))
    netlist netlist.N.components

let run ?config ?(limits = Flames_core.Propagate.default_limits)
    ?simulate_predictions netlist observations =
  let crisp_netlist = crispify netlist in
  let crisp_observations =
    List.map (fun (q, v) -> (q, crispify_interval v)) observations
  in
  let limits = { limits with Flames_core.Propagate.min_conflict_degree = 1. } in
  (* crisp semantics knows no grading: predictions are taken at face
     value so that their hard conflicts pass the degree-1 floor *)
  Flames_core.Diagnose.run ?config ~limits ~prediction_degree:1.
    ?simulate_predictions crisp_netlist crisp_observations

let detects (r : Flames_core.Diagnose.result) =
  List.exists
    (fun (c : Flames_atms.Candidates.conflict) ->
      c.Flames_atms.Candidates.degree >= 1.)
    r.Flames_core.Diagnose.conflicts
