(** DIANA-style crisp-interval baseline (paper sections 2.1 and 4.2).

    The same constraint network and propagation engine as FLAMES, but:
    - every fuzzy interval is flattened to its support (a crisp interval
      carries "all sorts of inaccuracy without any distinction");
    - only hard conflicts (empty intersection) are recorded — partial
      overlaps are silently accepted, so slight deviations that FLAMES
      flags with a graded nogood are missed (the fault-masking phenomenon
      of fig. 2).

    This is the comparator used by the ablation benches. *)

val crispify_interval :
  ?mode:[ `Support | `Core ] -> Flames_fuzzy.Interval.t -> Flames_fuzzy.Interval.t
(** [`Support] (default): the support hull [[lo, hi, 0, 0]] — the
    conservative crisp tolerance interval.  [`Core]: the core — the crisp
    reading of a model bound, e.g. DIANA's [Id ≤ 100 µA] where FLAMES
    uses [[-1, 100, 0, 10]]. *)

val crispify :
  ?mode:[ `Support | `Core ] -> Flames_circuit.Netlist.t -> Flames_circuit.Netlist.t
(** Flatten every component parameter. *)

val run :
  ?config:Flames_core.Model.config ->
  ?limits:Flames_core.Propagate.limits ->
  ?simulate_predictions:bool ->
  Flames_circuit.Netlist.t ->
  Flames_core.Diagnose.observation list ->
  Flames_core.Diagnose.result
(** Crisp diagnosis: observations are flattened too, and the conflict
    floor is raised to 1 so only hard conflicts survive. *)

val detects : Flames_core.Diagnose.result -> bool
(** Whether the baseline flagged anything (a hard conflict). *)
