module Quantity = Flames_circuit.Quantity

type state = { probabilities : (string * float) list }

let clamp p = Float.max 1e-6 (Float.min (1. -. 1e-6) p)
let uniform components prior =
  { probabilities = List.map (fun c -> (c, clamp prior)) components }

let of_diagnosis ?(prior = 0.05) (r : Flames_core.Diagnose.result) =
  let suspicion name =
    List.find_map
      (fun (s : Flames_core.Diagnose.suspect) ->
        if s.Flames_core.Diagnose.component = name then
          Some
            (if s.Flames_core.Diagnose.explains then
               s.Flames_core.Diagnose.suspicion
             else 0.3 *. s.Flames_core.Diagnose.suspicion)
        else None)
      r.Flames_core.Diagnose.suspects
  in
  let components =
    Flames_circuit.Netlist.component_names r.Flames_core.Diagnose.netlist
  in
  {
    probabilities =
      List.map
        (fun c ->
          match suspicion c with
          | Some s -> (c, clamp (prior +. (s *. (1. -. prior))))
          | None -> (c, clamp (prior /. 10.)))
        components;
  }

let entropy state =
  Flames_fuzzy.Entropy.crisp_entropy (List.map snd state.probabilities)

let p_deviant_given_fault = 0.9
let p_deviant_given_healthy = 0.05

let outcome_probability state influencers =
  (* P(deviant) = 1 − Π over influencers of P(no visible deviation) *)
  List.fold_left
    (fun acc (c, p) ->
      if List.mem c influencers then
        acc
        *. ((p *. (1. -. p_deviant_given_fault))
           +. ((1. -. p) *. (1. -. p_deviant_given_healthy)))
      else acc)
    1. state.probabilities
  |> fun p_quiet -> 1. -. p_quiet

let update state ~influencers ~deviant =
  let posterior (c, p) =
    if not (List.mem c influencers) then (c, p)
    else
      let likelihood_faulty =
        if deviant then p_deviant_given_fault else 1. -. p_deviant_given_fault
      and likelihood_healthy =
        if deviant then p_deviant_given_healthy
        else 1. -. p_deviant_given_healthy
      in
      let num = likelihood_faulty *. p in
      let den = num +. (likelihood_healthy *. (1. -. p)) in
      (c, clamp (num /. den))
  in
  { probabilities = List.map posterior state.probabilities }

let expected_entropy state ~influencers =
  let p_dev = outcome_probability state influencers in
  (p_dev *. entropy (update state ~influencers ~deviant:true))
  +. ((1. -. p_dev) *. entropy (update state ~influencers ~deviant:false))

type evaluation = {
  quantity : Quantity.t;
  influencers : string list;
  expected : float;
  score : float;
}

let rank state candidates =
  List.map
    (fun (quantity, cost, influencers) ->
      let expected = expected_entropy state ~influencers in
      { quantity; influencers; expected; score = expected *. cost })
    candidates
  |> List.sort (fun a b -> Float.compare a.score b.score)

let best state candidates =
  match rank state candidates with [] -> None | e :: _ -> Some e
