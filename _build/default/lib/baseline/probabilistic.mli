(** GDE-style probabilistic test selection (paper section 8's foil).

    The numerical approach FLAMES argues against: crisp a-priori fault
    probabilities, independence and mutual-exclusiveness assumptions, and
    one-step-lookahead minimisation of the expected Shannon entropy.
    Implemented as the comparison baseline for the best-test benches. *)

module Quantity = Flames_circuit.Quantity

type state = {
  probabilities : (string * float) list;  (** component → P(faulty) *)
}

val uniform : string list -> float -> state
(** Same prior for every component. *)

val of_diagnosis : ?prior:float -> Flames_core.Diagnose.result -> state
(** Priors scaled by the diagnosis suspicions: implicated components get
    [prior + suspicion × (1 − prior)], others [prior/10]. *)

val entropy : state -> float
(** Shannon entropy over the independent per-component fault variables. *)

val update : state -> influencers:string list -> deviant:bool -> state
(** Bayes update for a probe outcome, assuming a fault in an influencer
    shows a deviation with probability 0.9 and a healthy path deviates
    with probability 0.05. *)

val expected_entropy : state -> influencers:string list -> float
(** One-step lookahead over the two outcomes. *)

type evaluation = {
  quantity : Quantity.t;
  influencers : string list;
  expected : float;
  score : float;  (** expected entropy × cost *)
}

val rank :
  state ->
  (Quantity.t * float * string list) list ->
  evaluation list
(** [(probe, cost, influencers)] candidates, best first. *)

val best :
  state -> (Quantity.t * float * string list) list -> evaluation option
