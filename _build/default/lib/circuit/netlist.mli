(** Circuit netlists.

    A netlist is a named set of components connected at named nodes, with a
    distinguished ground node.  The database-unit models of the paper
    (section 6.2) are compiled from netlists by [Flames_core.Model]. *)

type t = private {
  name : string;
  components : Component.t list;
  ground : string;
  ports : string list;
      (** externally driven nodes: exempt from the dangling check and
          from Kirchhoff current-law generation *)
}

exception Ill_formed of string

val make : ?ports:string list -> name:string -> ground:string -> Component.t list -> t
(** Validates the netlist.
    @raise Ill_formed on duplicate component names, a component whose
    terminal map does not match its kind, an unused ground node, or a
    non-port node connected to a single terminal only (dangling). *)

val is_port : t -> string -> bool

val nodes : t -> string list
(** All node names, sorted, ground included. *)

val find : t -> string -> Component.t
(** @raise Not_found if no component has that name. *)

val mem : t -> string -> bool

val replace : t -> Component.t -> t
(** Functional replacement of the same-named component (fault injection).
    @raise Not_found when absent. *)

val components_at : t -> string -> Component.t list
(** Components with a terminal on the given node. *)

val component_names : t -> string list
val size : t -> int

val pp : Format.formatter -> t -> unit
