type t = {
  name : string;
  components : Component.t list;
  ground : string;
  ports : string list;
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let nodes_of_components components =
  List.concat_map (fun c -> List.map snd c.Component.nodes) components
  |> List.sort_uniq String.compare

let make ?(ports = []) ~name ~ground components =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (c : Component.t) ->
      if Hashtbl.mem seen c.name then
        ill_formed "duplicate component name %S" c.name;
      Hashtbl.add seen c.name ();
      let expected = Component.terminals c.kind in
      let given = List.map fst c.nodes in
      if List.sort String.compare given <> List.sort String.compare expected
      then
        ill_formed "component %S: terminals %s expected, %s given" c.name
          (String.concat "," expected)
          (String.concat "," given))
    components;
  let nodes = nodes_of_components components in
  if not (List.mem ground nodes) then
    ill_formed "ground node %S not connected to any component" ground;
  let degree n =
    List.fold_left
      (fun acc (c : Component.t) ->
        acc + List.length (List.filter (fun (_, m) -> m = n) c.nodes))
      0 components
  in
  List.iter
    (fun n ->
      if n <> ground && (not (List.mem n ports)) && degree n < 2 then
        ill_formed "node %S is dangling (single terminal)" n)
    nodes;
  { name; components; ground; ports }

let is_port t n = List.mem n t.ports

let nodes t = nodes_of_components t.components

let find t name =
  List.find (fun (c : Component.t) -> c.name = name) t.components

let mem t name =
  List.exists (fun (c : Component.t) -> c.name = name) t.components

let replace t comp =
  if not (mem t comp.Component.name) then raise Not_found;
  {
    t with
    components =
      List.map
        (fun (c : Component.t) ->
          if c.name = comp.Component.name then comp else c)
        t.components;
  }

let components_at t node =
  List.filter
    (fun (c : Component.t) -> List.exists (fun (_, n) -> n = node) c.nodes)
    t.components

let component_names t = List.map (fun (c : Component.t) -> c.name) t.components
let size t = List.length t.components

let pp ppf t =
  Format.fprintf ppf "circuit %s (ground %s):@." t.name t.ground;
  List.iter (fun c -> Format.fprintf ppf "  %a@." Component.pp c) t.components
