(** Circuit components with fuzzy (toleranced) nominal parameters.

    Parameter values are fuzzy intervals so that manufacturing tolerances
    are represented natively (paper section 4.2): a 10 kΩ ±1 % resistor is
    [around 10e3 ~rel:0.01]. *)

module Interval = Flames_fuzzy.Interval

type bjt = {
  beta : Interval.t;  (** forward current gain *)
  vbe : Interval.t;  (** base-emitter drop in the active region, volts *)
}

type kind =
  | Resistor of Interval.t  (** resistance in ohms; terminals [p], [n] *)
  | Capacitor of Interval.t
      (** capacitance in farads; terminals [p], [n] — open at DC,
          admittance [jωC] in dynamic mode *)
  | Inductor of Interval.t
      (** inductance in henries; terminals [p], [n] — short at DC,
          impedance [jωL] in dynamic mode *)
  | Voltage_source of Interval.t
      (** EMF in volts from [n] to [p]; terminals [p], [n] *)
  | Diode of { forward_drop : Interval.t; max_current : Interval.t }
      (** conducting-diode model: fixed drop and a fuzzy current bound
          (the paper's [[-1, 100, 0, 10]] µA set); terminals [p], [n] *)
  | Gain_block of Interval.t
      (** ideal amplifier [Vout = gain · Vin]; terminals [in], [out]
          (fig. 2 of the paper) *)
  | Bjt of bjt  (** NPN in the linear region; terminals [b], [c], [e] *)

type t = {
  name : string;
  kind : kind;
  nodes : (string * string) list;  (** terminal name → node name *)
}

val terminals : kind -> string list
(** The terminal names required by a kind, in canonical order. *)

val resistor : string -> ohms:Interval.t -> p:string -> n:string -> t
val capacitor : string -> farads:Interval.t -> p:string -> n:string -> t
val inductor : string -> henries:Interval.t -> p:string -> n:string -> t
val vsource : string -> volts:Interval.t -> p:string -> n:string -> t

val diode :
  string ->
  forward_drop:Interval.t ->
  max_current:Interval.t ->
  p:string ->
  n:string ->
  t

val gain_block : string -> gain:Interval.t -> input:string -> output:string -> t
val bjt : string -> beta:Interval.t -> vbe:Interval.t -> b:string -> c:string -> e:string -> t

val node_of : t -> string -> string
(** [node_of comp terminal] is the node the terminal connects to.
    @raise Not_found for an unknown terminal. *)

val parameter_names : kind -> string list
(** The diagnosable parameters of the kind ("R", "V", "gain", "beta"). *)

val nominal_parameter : t -> string -> Interval.t
(** The fuzzy nominal value of a named parameter.
    @raise Not_found for an unknown parameter name. *)

val with_parameter : t -> string -> Interval.t -> t
(** Functional parameter update (used for fault injection).
    @raise Not_found for an unknown parameter name. *)

val pp : Format.formatter -> t -> unit
