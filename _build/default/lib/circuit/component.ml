module Interval = Flames_fuzzy.Interval

type bjt = { beta : Interval.t; vbe : Interval.t }

type kind =
  | Resistor of Interval.t
  | Capacitor of Interval.t
  | Inductor of Interval.t
  | Voltage_source of Interval.t
  | Diode of { forward_drop : Interval.t; max_current : Interval.t }
  | Gain_block of Interval.t
  | Bjt of bjt

type t = { name : string; kind : kind; nodes : (string * string) list }

let terminals = function
  | Resistor _ | Capacitor _ | Inductor _ | Voltage_source _ | Diode _ ->
    [ "p"; "n" ]
  | Gain_block _ -> [ "in"; "out" ]
  | Bjt _ -> [ "b"; "c"; "e" ]

let make name kind nodes = { name; kind; nodes }

let resistor name ~ohms ~p ~n =
  make name (Resistor ohms) [ ("p", p); ("n", n) ]

let capacitor name ~farads ~p ~n =
  make name (Capacitor farads) [ ("p", p); ("n", n) ]

let inductor name ~henries ~p ~n =
  make name (Inductor henries) [ ("p", p); ("n", n) ]

let vsource name ~volts ~p ~n =
  make name (Voltage_source volts) [ ("p", p); ("n", n) ]

let diode name ~forward_drop ~max_current ~p ~n =
  make name (Diode { forward_drop; max_current }) [ ("p", p); ("n", n) ]

let gain_block name ~gain ~input ~output =
  make name (Gain_block gain) [ ("in", input); ("out", output) ]

let bjt name ~beta ~vbe ~b ~c ~e =
  make name (Bjt { beta; vbe }) [ ("b", b); ("c", c); ("e", e) ]

let node_of comp terminal = List.assoc terminal comp.nodes

let parameter_names = function
  | Resistor _ -> [ "R" ]
  | Capacitor _ -> [ "C" ]
  | Inductor _ -> [ "L" ]
  | Voltage_source _ -> [ "V" ]
  | Diode _ -> [ "Vf"; "Imax" ]
  | Gain_block _ -> [ "gain" ]
  | Bjt _ -> [ "beta"; "vbe" ]

let nominal_parameter comp param =
  match (comp.kind, param) with
  | Resistor r, "R" -> r
  | Capacitor c, "C" -> c
  | Inductor l, "L" -> l
  | Voltage_source v, "V" -> v
  | Diode d, "Vf" -> d.forward_drop
  | Diode d, "Imax" -> d.max_current
  | Gain_block g, "gain" -> g
  | Bjt b, "beta" -> b.beta
  | Bjt b, "vbe" -> b.vbe
  | ( ( Resistor _ | Capacitor _ | Inductor _ | Voltage_source _ | Diode _
      | Gain_block _ | Bjt _ ),
      _ ) ->
    raise Not_found

let with_parameter comp param value =
  let kind =
    match (comp.kind, param) with
    | Resistor _, "R" -> Resistor value
    | Capacitor _, "C" -> Capacitor value
    | Inductor _, "L" -> Inductor value
    | Voltage_source _, "V" -> Voltage_source value
    | Diode d, "Vf" -> Diode { d with forward_drop = value }
    | Diode d, "Imax" -> Diode { d with max_current = value }
    | Gain_block _, "gain" -> Gain_block value
    | Bjt b, "beta" -> Bjt { b with beta = value }
    | Bjt b, "vbe" -> Bjt { b with vbe = value }
    | ( ( Resistor _ | Capacitor _ | Inductor _ | Voltage_source _ | Diode _
        | Gain_block _ | Bjt _ ),
        _ ) ->
      raise Not_found
  in
  { comp with kind }

let pp_kind ppf = function
  | Resistor r -> Format.fprintf ppf "R=%a Ω" Interval.pp r
  | Capacitor c -> Format.fprintf ppf "C=%a F" Interval.pp c
  | Inductor l -> Format.fprintf ppf "L=%a H" Interval.pp l
  | Voltage_source v -> Format.fprintf ppf "V=%a V" Interval.pp v
  | Diode d ->
    Format.fprintf ppf "diode Vf=%a Imax=%a" Interval.pp d.forward_drop
      Interval.pp d.max_current
  | Gain_block g -> Format.fprintf ppf "gain=%a" Interval.pp g
  | Bjt b ->
    Format.fprintf ppf "BJT β=%a Vbe=%a" Interval.pp b.beta Interval.pp b.vbe

let pp ppf comp =
  Format.fprintf ppf "%s (%a) [%a]" comp.name pp_kind comp.kind
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (t, n) -> Format.fprintf ppf "%s→%s" t n))
    comp.nodes
