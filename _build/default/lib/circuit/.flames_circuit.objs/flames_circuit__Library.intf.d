lib/circuit/library.mli: Flames_fuzzy Netlist Quantity
