lib/circuit/quantity.ml: Format Hashtbl Map Set Stdlib
