lib/circuit/parser.mli: Format Netlist
