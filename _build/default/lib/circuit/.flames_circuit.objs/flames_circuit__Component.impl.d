lib/circuit/component.ml: Flames_fuzzy Format List
