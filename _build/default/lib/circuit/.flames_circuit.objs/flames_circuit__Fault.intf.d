lib/circuit/fault.mli: Flames_fuzzy Format Netlist
