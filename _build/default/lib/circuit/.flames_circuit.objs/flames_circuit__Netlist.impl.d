lib/circuit/netlist.ml: Component Format Hashtbl List String
