lib/circuit/quantity.mli: Format Map Set
