lib/circuit/parser.ml: Buffer Component Flames_fuzzy Float Format Fun List Netlist Option Printf String
