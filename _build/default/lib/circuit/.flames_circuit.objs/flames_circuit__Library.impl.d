lib/circuit/library.ml: Char Component Flames_fuzzy List Netlist Printf Quantity String
