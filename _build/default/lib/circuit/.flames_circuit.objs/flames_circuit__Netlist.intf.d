lib/circuit/netlist.mli: Component Format
