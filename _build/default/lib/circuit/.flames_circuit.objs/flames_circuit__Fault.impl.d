lib/circuit/fault.ml: Component Flames_fuzzy Float Format List Netlist Printf
