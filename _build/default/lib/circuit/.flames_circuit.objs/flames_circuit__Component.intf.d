lib/circuit/component.mli: Flames_fuzzy Format
