(** A small SPICE-flavoured netlist text format.

    Example:
    {v
    * a toleranced voltage divider
    .circuit divider
    .ground gnd
    V vin in gnd 10 tol=1%
    R r1 in mid 10k tol=1%
    R r2 mid gnd 10k tol=1%
    v}

    One component per line; [#] and [*] start comments.  Directives:

    - [.circuit NAME] — circuit name (default: ["netlist"]);
    - [.ground NODE] — ground node (default: ["gnd"]);
    - [.port NODE] — declare an externally driven node.

    Component cards ([NAME] must be unique; nodes are free-form tokens):

    - [R name p n VALUE [tol=..]] — resistor, ohms
    - [C name p n VALUE [tol=..]] — capacitor, farads
    - [L name p n VALUE [tol=..]] — inductor, henries
    - [V name p n VALUE [tol=..]] — voltage source, volts
    - [A name in out gain=VALUE [tol=..]] — ideal gain block
    - [D name p n vf=VALUE imax=VALUE] — conducting diode with fuzzy
      current bound (the [imax] bound gets a 10 % upper flank)
    - [Q name b c e beta=VALUE vbe=VALUE [tol=..]] — linear-region BJT

    Values accept engineering suffixes
    ([f p n u m k meg g t], case-insensitive).  [tol=] takes either a
    percentage ([tol=1%]) or a fraction ([tol=0.01]) and sets symmetric
    fuzzy flanks relative to the value; without it the parameter is
    crisp. *)

type error = { line : int; message : string }

val parse : string -> (Netlist.t, error) result
(** Parse the netlist source text. *)

val parse_file : string -> (Netlist.t, error) result
(** Read and parse a file; I/O failures are reported on line 0. *)

val parse_value : string -> float option
(** Parse one engineering-notation number ("10k" → 10000.). *)

val to_string : Netlist.t -> string
(** Render a netlist back to the text format (tolerances preserved as
    fractions); [parse (to_string n)] reproduces [n]. *)

val pp_error : Format.formatter -> error -> unit
