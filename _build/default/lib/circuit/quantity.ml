type t =
  | Node_voltage of string
  | Branch_current of string
  | Terminal_current of string * string
  | Voltage_drop of string
  | Parameter of string * string

let compare = Stdlib.compare
let equal a b = compare a b = 0
let hash = Hashtbl.hash
let voltage n = Node_voltage n
let current c = Branch_current c
let terminal_current c t = Terminal_current (c, t)
let drop c = Voltage_drop c
let parameter c p = Parameter (c, p)

let pp ppf = function
  | Node_voltage n -> Format.fprintf ppf "V(%s)" n
  | Branch_current c -> Format.fprintf ppf "I(%s)" c
  | Terminal_current (c, t) -> Format.fprintf ppf "I(%s.%s)" c t
  | Voltage_drop c -> Format.fprintf ppf "U(%s)" c
  | Parameter (c, p) -> Format.fprintf ppf "%s.%s" c p

let to_string q = Format.asprintf "%a" pp q

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
