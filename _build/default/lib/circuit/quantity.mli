(** Physical quantities of a circuit under diagnosis.

    A quantity identifies either a node voltage (referenced to ground), the
    current through a two-terminal component (flowing from its [p] to its
    [n] terminal), a transistor terminal current, or a component parameter
    (resistance, gain, beta, ...). *)

type t =
  | Node_voltage of string  (** [V(node)] in volts *)
  | Branch_current of string  (** [I(component)] in amperes, p → n *)
  | Terminal_current of string * string
      (** [I(component.terminal)] for multi-terminal devices *)
  | Voltage_drop of string  (** [U(component)] across a two-terminal device *)
  | Parameter of string * string  (** [component.param] in SI units *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val voltage : string -> t
val current : string -> t
val terminal_current : string -> string -> t
val drop : string -> t
val parameter : string -> string -> t

val pp : Format.formatter -> t -> unit
(** [V(n1)], [I(r1)], [I(t1.b)], [r1.R]. *)

val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
