(* Compiled-schedule before/after series (DESIGN.md section 13): the
   same diagnosis jobs through the propagation interpreter
   ([Diagnose.run ~use_compiled:false], the seed path) and through the
   compiled flat schedule, cold (schedule compiled inside the timed
   region — the {!Flames_engine.Cache} miss path) and warm (one
   resident schedule reused across runs — the hit path every consumer
   after the first ride, including the schedule's published
   consistency-memo snapshots).

   Two workloads, matching the paper's evaluation: the fig-7 five-defect
   sweep over the three-stage amplifier, and the A2 amplifier-chain
   scaling series.  Every cell asserts bit-identical results — the
   compiled path is an optimisation, never a semantic fork — before it
   is timed; wall-clock medians of [reps], absolute numbers host-bound,
   the speedup columns are the point.  Written to BENCH_compile.json. *)

module Model = Flames_core.Model
module Schedule = Flames_core.Schedule
module Diagnose = Flames_core.Diagnose
module Oracle = Flames_check.Oracle
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library

type case = {
  series : string;  (** "fig7" | "amplifier-chain" *)
  label : string;
  config : Model.config option;
  netlist : Flames_circuit.Netlist.t;
  observations : Diagnose.observation list;
}

let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let fig7_cases () =
  List.map
    (fun (j : Flames_engine.Batch.job) ->
      {
        series = "fig7";
        label = j.Flames_engine.Batch.label;
        config = j.Flames_engine.Batch.config;
        netlist = j.Flames_engine.Batch.netlist;
        observations = j.Flames_engine.Batch.observations;
      })
    (Flames_experiments.Fig7.jobs ())

let chain_case k =
  let gains = List.init k (fun i -> 1. +. float_of_int (i mod 3)) in
  let nominal = L.amplifier_chain ~gains () in
  let faulty = F.inject nominal (F.shifted "amp2" ~parameter:"gain" 10.) in
  let sol = Flames_sim.Mna.solve faulty in
  let observations =
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage (L.chain_nodes k))
  in
  {
    series = "amplifier-chain";
    label = Printf.sprintf "chain-%02d" k;
    config = None;
    netlist = nominal;
    observations;
  }

(* {1 Timing} *)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let time_ns ~reps f =
  let samples =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        (Unix.gettimeofday () -. t0) *. 1e9)
  in
  median samples

type row = {
  series : string;
  label : string;
  interp_ns : float;
  cold_ns : float;
  warm_ns : float;
}

let speedup_warm r = r.interp_ns /. Float.max r.warm_ns 1.
let speedup_cold r = r.interp_ns /. Float.max r.cold_ns 1.

let run_case ~reps c =
  let run = Diagnose.run ?config:c.config in
  let model = Model.compile ?config:c.config c.netlist in
  (* the resident schedule: what every Cache hit after the first hands
     out.  Two untimed passes first — the warm cell measures the steady
     state, after the schedule's consistency-memo snapshots have been
     published back into the master table. *)
  let schedule = Schedule.of_model model in
  let warm () = run ~schedule c.netlist c.observations in
  let interp () = run ~model ~use_compiled:false c.netlist c.observations in
  let cold () =
    run
      ~schedule:(Schedule.compile ?config:c.config c.netlist)
      c.netlist c.observations
  in
  let reference = Oracle.result_fingerprint (interp ()) in
  let check mode r =
    if not (String.equal reference (Oracle.result_fingerprint r)) then
      failwith
        (Printf.sprintf
           "BENCH_compile: %s/%s: %s result diverges from the interpreter"
           c.series c.label mode)
  in
  check "compiled-cold" (cold ());
  check "compiled-warm" (warm ());
  check "compiled-warm (steady)" (warm ());
  {
    series = c.series;
    label = c.label;
    interp_ns = time_ns ~reps interp;
    cold_ns = time_ns ~reps cold;
    warm_ns = time_ns ~reps warm;
  }

(* {1 JSON emission} *)

let json_path = "BENCH_compile.json"
let full_chain_sizes = [ 2; 4; 8; 16 ]
let smoke_chain_sizes = [ 2; 4 ]

let emit ?(smoke = false) ppf =
  let chain_sizes = if smoke then smoke_chain_sizes else full_chain_sizes in
  let reps = if smoke then 1 else 5 in
  let cases = fig7_cases () @ List.map chain_case chain_sizes in
  let rows = List.map (run_case ~reps) cases in
  let fig7_median =
    median
      (List.filter_map
         (fun r -> if r.series = "fig7" then Some (speedup_warm r) else None)
         rows)
  in
  let cell r =
    Printf.sprintf
      "    { \"series\": %S, \"case\": %S, \"interp_ns\": %.0f, \"cold_ns\": \
       %.0f, \"warm_ns\": %.0f, \"speedup_cold\": %.2f, \"speedup_warm\": \
       %.2f }"
      r.series r.label r.interp_ns r.cold_ns r.warm_ns (speedup_cold r)
      (speedup_warm r)
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"series\": \"compiled-schedule-vs-interpreter\",\n\
    \  \"smoke\": %b,\n\
    \  \"reps\": %d,\n\
    \  \"chain_sizes\": [%s],\n\
    \  \"fig7_median_speedup_warm\": %.2f,\n\
    \  \"rows\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    smoke reps
    (String.concat ", " (List.map string_of_int chain_sizes))
    fig7_median
    (String.concat ",\n" (List.map cell rows));
  close_out oc;
  Format.fprintf ppf "wrote %s@." json_path;
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-15s %-14s interp %11.0f ns  cold %11.0f ns (%5.2fx)  warm \
         %11.0f ns (%5.2fx)@."
        r.series r.label r.interp_ns r.cold_ns (speedup_cold r) r.warm_ns
        (speedup_warm r))
    rows;
  Format.fprintf ppf "  fig-7 median warm speedup: %.2fx@." fig7_median
