(* BENCH_store.json — what durability costs, and what recovery costs.

   Two claims back the journal design:

   - journaling a troubleshooting step ahead of its reply is nearly free
     against the diagnosis work the step already does: at the default
     [fsync=interval] discipline the per-step overhead over a plain
     in-memory session must stay within a few percent (the acceptance
     gate is 5%); [fsync=always] shows what the full
     survive-kill-9-per-step guarantee costs instead;
   - recovery replays the journal through the session layer at a rate
     that makes restart time a function of the *live* state (snapshots
     keep segments compact), measured here against raw journal length.

   Wall clocks are host-dependent; the overhead percentages and the
   per-record recovery rate are the claims. *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module L = Flames_circuit.Library
module Session = Flames_session.Session
module Journal = Flames_store.Journal
module Record = Flames_store.Record

let steps = 48
let recovery_lengths = [ 16; 64; 256; 1024 ]

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> rm_rf (Filename.concat path name))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "flames-store-bench-%d-%d" (Unix.getpid ()) !counter)
    in
    rm_rf dir;
    dir

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ms dt = dt *. 1e3

(* The step sequence both loops replay: measurements cycling over the
   Sallen–Key filter's probe points, values spread around the passband
   level so the diagnosis does real propagation work each round.  The
   Sallen–Key rather than the divider: a journal append competes with
   the per-step diagnosis, and the divider's is so small that loop
   timing noise on a busy host dwarfs the ratio being measured. *)
let model_name = "sallen-key"
let model () = L.sallen_key_lowpass ()

let step_plan =
  let probes = Array.of_list (L.probe_points (model ())) in
  List.init steps (fun k ->
      (* The same interval every time a node repeats: distinct
         overlapping intervals per node multiply ATMS environments and
         turn the loop superlinear, which is a different benchmark. *)
      (probes.(k mod Array.length probes), I.number 1.0 ~spread:0.3))

(* One troubleshooting loop: measure, journal (when journaled), then
   diagnose — the same order the server acknowledges a step in.  Returns
   total wall across the [steps] rounds; session setup (compile, sweeps)
   is identical on both sides and excluded. *)
let run_loop journal =
  let session = Session.create (model ()) in
  Option.iter
    (fun j ->
      Journal.append j
        (Record.Create
           { sid = "bench"; source = Record.Builtin model_name; trusted = [] }))
    journal;
  let (), dt =
    time (fun () ->
        List.iter
          (fun (q, v) ->
            let m = Session.add_measurement session q v in
            Option.iter
              (fun j ->
                Journal.append j
                  (Record.Measure
                     { sid = "bench"; mid = m.Session.id; quantity = q; interval = v }))
              journal;
            ignore (Session.diagnoses session))
          step_plan)
  in
  dt

let plain_loop () = run_loop None

let journaled_loop fsync =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let j = Journal.open_ ~fsync dir in
  Fun.protect ~finally:(fun () -> Journal.close j) @@ fun () -> run_loop (Some j)

type append_row = {
  mode : string;
  plain_ms : float;
  journaled_ms : float;
  overhead_pct : float;
}

(* Paired and interleaved: each rep times the plain loop right next to
   the journaled one and contributes one journaled/plain ratio; the
   median ratio is the overhead.  Slow drift in the diagnosis cost
   (cache warmth, allocator state, cpu frequency) moves both elements of
   a pair together, so it cancels out of the ratio — unlike comparing a
   best-of-N from each side, which lets drift land on one side. *)
let append_reps = 9

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let append_row (mode, fsync) =
  ignore (plain_loop ());
  ignore (journaled_loop fsync);
  let pairs =
    List.init append_reps (fun _ ->
        let p = plain_loop () in
        let j = journaled_loop fsync in
        (p, j))
  in
  let ratio = median (List.map (fun (p, j) -> j /. Float.max 1e-9 p) pairs) in
  let plain = median (List.map fst pairs) in
  {
    mode;
    plain_ms = ms plain;
    journaled_ms = ms (plain *. ratio);
    overhead_pct = (ratio -. 1.) *. 100.;
  }

let append_modes =
  [
    ("never", Journal.Never);
    ("interval", Journal.Interval 0.05);
    ("always", Journal.Always);
  ]

type recovery_row = { ops : int; bytes : int; recover_ms : float; sessions : int }

let journal_bytes dir =
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      match Unix.stat path with
      | { Unix.st_kind = Unix.S_REG; st_size; _ } -> acc + st_size
      | _ | (exception Unix.Unix_error _) -> acc)
    0 (Sys.readdir dir)

let recovery_row ops =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let j = Journal.open_ ~fsync:Journal.Never dir in
  Journal.append j
    (Record.Create
       { sid = "bench"; source = Record.Builtin model_name; trusted = [] });
  for k = 1 to ops - 1 do
    let q, v = List.nth step_plan (k mod List.length step_plan) in
    Journal.append j
      (Record.Measure { sid = "bench"; mid = k; quantity = q; interval = v })
  done;
  Journal.close j;
  let bytes = journal_bytes dir in
  let recovered, dt = time (fun () -> Journal.recover dir) in
  if recovered.Journal.records <> ops then
    failwith
      (Printf.sprintf "store bench: recovered %d of %d records"
         recovered.Journal.records ops);
  {
    ops;
    bytes;
    recover_ms = ms dt;
    sessions = List.length recovered.Journal.entries;
  }

let path = "BENCH_store.json"

let append_row_json r =
  Printf.sprintf
    "    { \"mode\": %S, \"steps\": %d, \"plain_ms\": %.3f, \"journaled_ms\": \
     %.3f, \"overhead_pct\": %.2f }"
    r.mode steps r.plain_ms r.journaled_ms r.overhead_pct

let recovery_row_json r =
  Printf.sprintf
    "    { \"ops\": %d, \"bytes\": %d, \"sessions\": %d, \"recover_ms\": %.3f }"
    r.ops r.bytes r.sessions r.recover_ms

let emit ppf =
  let append_rows = List.map append_row append_modes in
  let recovery_rows = List.map recovery_row recovery_lengths in
  let interval_overhead =
    match List.find_opt (fun r -> r.mode = "interval") append_rows with
    | Some r -> r.overhead_pct
    | None -> nan
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"series\": \"store-durability\",\n\
    \  \"cores\": %d,\n\
    \  \"append\": [\n\
     %s\n\
    \  ],\n\
    \  \"recovery\": [\n\
     %s\n\
    \  ],\n\
    \  \"interval_overhead_pct\": %.2f\n\
     }\n"
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.map append_row_json append_rows))
    (String.concat ",\n" (List.map recovery_row_json recovery_rows))
    interval_overhead;
  close_out oc;
  Format.fprintf ppf
    "wrote %s (journal overhead per step: interval %.2f%%, always %.2f%%)@."
    path interval_overhead
    (match List.find_opt (fun r -> r.mode = "always") append_rows with
    | Some r -> r.overhead_pct
    | None -> nan)
