(* BENCH_session.json — incremental sessions vs cold rebuilds.

   The paper's section-8 troubleshooting loop alternates measurement and
   diagnosis on one circuit.  A stateless implementation pays the whole
   pipeline every round: model compilation, the sensitivity-analysis
   simulator sweeps, the prediction pass, then propagation and analysis
   over all measurements so far.  A {!Flames_session.Session} keeps the
   first three alive and only redoes the per-measurement-set work — with
   bit-identical results (the session-equivalence oracle).

   This series replays the corpus troubleshooting scenarios step by
   step, timing each measure→diagnose round both ways, and reports the
   per-scenario and overall cold/session wall ratios.  Wall clocks are
   host-dependent; the ratio is the claim. *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Session = Flames_session.Session
module Diagnose = Flames_core.Diagnose

type scenario = {
  name : string;
  circuit : unit -> Flames_circuit.Netlist.t;
  fault : string;  (** comp.param=mode, ground truth *)
  probes : string list;  (** measured in order, one diagnose per step *)
}

(* The corpus/sessions transcripts, as data: the fig-6/7 amplifier hunt
   and the fig-5/7 diode example, plus the divider smoke case. *)
let scenarios =
  [
    {
      name = "fig6-amplifier-r2-short";
      circuit = (fun () -> L.three_stage_amplifier ());
      fault = "r2.R=short";
      probes = [ "vs"; "n2"; "v1"; "n1"; "e1" ];
    };
    {
      name = "fig7-diode-vf-high";
      circuit = (fun () -> L.diode_resistor ~powered:true ());
      fault = "d1.Vf=high";
      probes = [ "n1"; "n2" ];
    };
    {
      name = "divider-r2-short";
      circuit = (fun () -> L.voltage_divider ());
      fault = "r2.R=short";
      probes = [ "mid"; "in" ];
    };
  ]

let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let observations_of s =
  let nominal = s.circuit () in
  let fault =
    match F.of_spec s.fault with
    | Ok f -> f
    | Error m -> failwith (s.name ^ ": " ^ m)
  in
  let sol = Flames_sim.Mna.solve (F.inject nominal fault) in
  ( nominal,
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage s.probes) )

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Per-step wall of the stateless loop: every round re-runs the whole
   [Diagnose.run] over the measurements so far (compile + sweeps +
   prediction + propagation + analysis). *)
let cold_steps nominal observations =
  List.mapi
    (fun k _ ->
      let upto = List.filteri (fun i _ -> i <= k) observations in
      let _, dt = time (fun () -> ignore (Diagnose.run nominal upto)) in
      dt)
    observations

(* Per-step wall of the session loop: one [add_measurement] plus the
   (lazily rebuilt) [diagnoses]; setup (create = compile + sweeps +
   prediction + empty rebuild) is reported separately. *)
let session_steps nominal observations =
  let session, setup = time (fun () -> Session.create nominal) in
  let steps =
    List.map
      (fun (q, v) ->
        let _, dt =
          time (fun () ->
              ignore (Session.add_measurement session q v);
              ignore (Session.diagnoses session))
        in
        dt)
      observations
  in
  (setup, steps)

(* Best of [reps]: these are millisecond-scale loops, scheduler noise
   would otherwise dominate the ratio. *)
let best_of reps f =
  let rec go best n =
    if n = 0 then best
    else
      let r = f () in
      let smaller a b = if List.fold_left ( +. ) 0. a <= List.fold_left ( +. ) 0. b then a else b in
      go (smaller best r) (n - 1)
  in
  let first = f () in
  go first (reps - 1)

let ms dt = dt *. 1e3

let json_floats l =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%.3f") l) ^ "]"

type row = {
  scenario : string;
  steps : int;
  cold_ms : float list;
  session_setup_ms : float;
  session_ms : float list;
}

let total = List.fold_left ( +. ) 0.

let row_json r =
  let cold_total = total r.cold_ms in
  let session_total = total r.session_ms in
  Printf.sprintf
    "    { \"scenario\": %S, \"steps\": %d, \"cold_ms\": %s, \
     \"session_setup_ms\": %.3f, \"session_ms\": %s, \"cold_total_ms\": \
     %.3f, \"session_total_ms\": %.3f, \"speedup\": %.2f }"
    r.scenario r.steps
    (json_floats (List.map ms r.cold_ms))
    (ms r.session_setup_ms)
    (json_floats (List.map ms r.session_ms))
    (ms cold_total) (ms session_total)
    (cold_total /. Float.max 1e-9 session_total)

let measure_scenario s =
  let nominal, observations = observations_of s in
  let cold_ms = best_of 3 (fun () -> cold_steps nominal observations) in
  let setup = ref 0. in
  let session_ms =
    best_of 3 (fun () ->
        let su, steps = session_steps nominal observations in
        setup := su;
        steps)
  in
  {
    scenario = s.name;
    steps = List.length observations;
    cold_ms;
    session_setup_ms = !setup;
    session_ms;
  }

let path = "BENCH_session.json"

let emit ppf =
  let rows = List.map measure_scenario scenarios in
  let cold_total = total (List.concat_map (fun r -> r.cold_ms) rows) in
  let session_total = total (List.concat_map (fun r -> r.session_ms) rows) in
  let speedup = cold_total /. Float.max 1e-9 session_total in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"series\": \"session-incremental-vs-cold\",\n\
    \  \"cores\": %d,\n\
    \  \"scenarios\": [\n\
     %s\n\
    \  ],\n\
    \  \"cold_total_ms\": %.3f,\n\
    \  \"session_total_ms\": %.3f,\n\
    \  \"speedup\": %.2f\n\
     }\n"
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.map row_json rows))
    (ms cold_total) (ms session_total) speedup;
  close_out oc;
  Format.fprintf ppf "wrote %s (per-step session vs cold rebuild: %.1fx)@."
    path speedup
