(* The full benchmark harness (DESIGN.md experiment index):

   1. regenerates every table and figure of the paper's evaluation —
      fig 2 (crisp vs fuzzy propagation), fig 4 (coincidence cases),
      fig 5 (diode example nogoods), fig 6 (bias point), fig 7 (the five
      defect scenarios), the section-8 best-test comparison, the
      section-7 learning curve and the A1 soft-fault ablation;
   2. times the building blocks and end-to-end pipelines with Bechamel
      (one Test.make per table/figure plus the A2 scaling series).

   Absolute timings depend on the host; the paper ran on a Sun SPARC 20,
   so only the relative shape is meaningful. *)

open Bechamel
open Toolkit

let ppf = Format.std_formatter

(* {1 Paper tables} *)

let regenerate_tables () =
  Format.fprintf ppf "================ paper tables ================@.";
  Format.fprintf ppf "@.";
  Flames_experiments.Fig2.(print ppf (run ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Fig4.(print ppf (run ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Fig5.(print ppf (run ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Fig7.(print_bias ppf (bias_point ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Fig7.(print ppf (run ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Strategy_demo.(print ppf (run ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Learning_demo.(print ppf (run ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Ablation.(print ppf (run ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Dynamic_demo.(print ppf (run ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Explosion.(print ppf (run ()));
  Format.fprintf ppf "@.";
  Flames_experiments.Rules_demo.(print ppf (run ()));
  Format.fprintf ppf "@."

(* {1 Timing benches} *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let fig7_observations =
  lazy
    (let nominal = L.three_stage_amplifier ~tolerance:0.005 () in
     let faulty = F.inject nominal (F.short "r2" ~parameter:"R") in
     let sol = Flames_sim.Mna.solve faulty in
     ( nominal,
       Flames_sim.Measure.probe_all ~instrument sol
         (List.map Q.voltage [ "vs"; "n2"; "v1" ]) ))

let fig5_observations =
  [
    (Q.drop "d1", I.crisp 0.2);
    (Q.drop "r1", I.crisp 1.05);
    (Q.drop "r2", I.crisp 2.0);
  ]

(* fuzzy-arithmetic kernels (fig 2's substrate) *)
let bench_fuzzy_ops =
  let a = I.number 3. ~spread:0.05 and b = I.number 2. ~spread:0.05 in
  [
    Test.make ~name:"arith:mul" (Staged.stage (fun () -> Flames_fuzzy.Arith.mul a b));
    Test.make ~name:"arith:div" (Staged.stage (fun () -> Flames_fuzzy.Arith.div a b));
    Test.make ~name:"consistency:dc"
      (Staged.stage (fun () ->
           Flames_fuzzy.Consistency.dc ~measured:a ~nominal:b));
    Test.make ~name:"entropy:5-terms"
      (Staged.stage
         (let fs = List.init 5 (fun i -> I.crisp (0.1 +. (0.15 *. float_of_int i))) in
          fun () -> Flames_fuzzy.Entropy.entropy fs));
  ]

let bench_fig2 =
  [
    Test.make ~name:"fig2:propagation"
      (Staged.stage (fun () -> Flames_experiments.Fig2.run ()));
  ]

let bench_fig5 =
  [
    Test.make ~name:"fig5:fuzzy-diagnosis"
      (Staged.stage (fun () ->
           Flames_core.Diagnose.run
             (L.diode_resistor ())
             fig5_observations));
    Test.make ~name:"fig5:crisp-baseline"
      (Staged.stage (fun () ->
           Flames_baseline.Crisp.run (L.diode_resistor ()) fig5_observations));
  ]

let bench_fig7 =
  [
    Test.make ~name:"fig6:mna-solve"
      (Staged.stage
         (let net = L.three_stage_amplifier () in
          fun () -> Flames_sim.Mna.solve net));
    Test.make ~name:"fig7:diagnosis(R2-short)"
      (Staged.stage (fun () ->
           let nominal, obs = Lazy.force fig7_observations in
           Flames_core.Diagnose.run ~config nominal obs));
  ]

let bench_strategy =
  [
    Test.make ~name:"best-test:fuzzy-ranking"
      (Staged.stage
         (let nominal, obs = Lazy.force fig7_observations in
          let r = Flames_core.Diagnose.run ~config nominal obs in
          let estimations = Flames_strategy.Estimation.of_diagnosis r in
          let tests = Flames_strategy.Best_test.test_points_of_netlist nominal in
          fun () -> Flames_strategy.Best_test.rank estimations tests));
    Test.make ~name:"best-test:probabilistic"
      (Staged.stage
         (let nominal, obs = Lazy.force fig7_observations in
          let r = Flames_core.Diagnose.run ~config nominal obs in
          let state = Flames_baseline.Probabilistic.of_diagnosis r in
          let tests =
            Flames_strategy.Best_test.test_points_of_netlist nominal
            |> List.map (fun (t : Flames_strategy.Best_test.test_point) ->
                   ( t.Flames_strategy.Best_test.quantity,
                     t.Flames_strategy.Best_test.cost,
                     t.Flames_strategy.Best_test.influencers ))
          in
          fun () -> Flames_baseline.Probabilistic.rank state tests));
  ]

(* A2 scaling: diagnosis cost vs circuit size (amplifier chains) *)
let bench_scaling =
  List.map
    (fun k ->
      Test.make
        ~name:(Printf.sprintf "scaling:chain-%02d" k)
        (Staged.stage
           (let gains = List.init k (fun i -> 1. +. float_of_int (i mod 3)) in
            let nominal = L.amplifier_chain ~gains () in
            let faulty = F.inject nominal (F.shifted "amp2" ~parameter:"gain" 10.) in
            let sol = Flames_sim.Mna.solve faulty in
            let obs =
              Flames_sim.Measure.probe_all ~instrument sol
                (List.map Q.voltage (L.chain_nodes k))
            in
            fun () -> Flames_core.Diagnose.run nominal obs)))
    [ 2; 4; 8; 16 ]

(* ATMS kernels: hitting sets over growing conflict families *)
let bench_atms =
  List.map
    (fun n ->
      Test.make
        ~name:(Printf.sprintf "atms:hitting-sets-%02d" n)
        (Staged.stage
           (let conflicts =
              List.init n (fun i ->
                  Flames_atms.Env.of_list [ i; i + 1; i + 2 ])
            in
            fun () -> Flames_atms.Hitting.minimal_hitting_sets conflicts)))
    [ 4; 8; 12 ]

(* dynamic mode: AC solve and frequency-domain diagnosis *)
let bench_dynamic =
  let corner = 1. /. (2. *. Float.pi *. 10e3 *. 10e-9) in
  [
    Test.make ~name:"dynamic:ac-solve"
      (Staged.stage
         (let rc = L.rc_lowpass () in
          fun () -> Flames_sim.Ac.solve rc corner));
    Test.make ~name:"dynamic:diagnosis(RC drift)"
      (Staged.stage
         (let rc = L.rc_lowpass () in
          let faulty = F.inject rc (F.shifted "c1" ~parameter:"C" 15e-9) in
          let obs =
            List.map
              (fun frequency ->
                Flames_core.Dynamic.observe ~source:"vin" faulty ~node:"out"
                  ~frequency)
              [ corner /. 8.; corner; corner *. 5. ]
          in
          fun () -> Flames_core.Dynamic.run ~trusted:[ "vin" ] rc obs));
  ]

(* batch engine: pool throughput at 1/2/4 workers and the model cache.
   Pools are created once and reused across bechamel iterations; the
   divider jobs are deliberately cheap so the measurement is dominated by
   the engine's dispatch/cache machinery, not by one long diagnosis. *)
module Engine = Flames_engine

let engine_jobs =
  lazy
    (List.init 12 (fun i ->
         let nominal = L.voltage_divider () in
         let faulty = F.inject nominal (F.shifted "r2" ~parameter:"R" 6.8e3) in
         let sol = Flames_sim.Mna.solve faulty in
         let obs =
           Flames_sim.Measure.probe_all ~instrument sol [ Q.voltage "out" ]
         in
         Engine.Batch.job ~label:(Printf.sprintf "divider-%02d" i) nominal obs))

let bench_engine =
  let pool_of = Hashtbl.create 4 in
  let pool workers =
    match Hashtbl.find_opt pool_of workers with
    | Some p -> p
    | None ->
      let p = Engine.Pool.create ~workers () in
      Hashtbl.add pool_of workers p;
      p
  in
  List.map
    (fun workers ->
      Test.make
        ~name:(Printf.sprintf "engine:batch-divider-w%d" workers)
        (Staged.stage (fun () ->
             Engine.Batch.run_in ~pool:(pool workers)
               (Lazy.force engine_jobs))))
    [ 1; 2; 4 ]
  @ [
      Test.make ~name:"engine:cache-cold"
        (Staged.stage
           (let net = L.three_stage_amplifier () in
            fun () ->
              (* fresh cache: every call pays the full compilation *)
              Engine.Cache.compile (Engine.Cache.create ()) net));
      Test.make ~name:"engine:cache-warm"
        (Staged.stage
           (let net = L.three_stage_amplifier () in
            let cache = Engine.Cache.create () in
            ignore (Engine.Cache.compile cache net);
            fun () -> Engine.Cache.compile cache net));
    ]

let benchmarks =
  bench_fuzzy_ops @ bench_fig2 @ bench_fig5 @ bench_fig7 @ bench_strategy
  @ bench_dynamic @ bench_scaling @ bench_atms @ bench_engine

let run_benchmarks () =
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let instances = Instance.[ monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"flames" benchmarks)
  in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) instances results in
  results

let report results =
  let open Notty_unix in
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let () =
    List.iter
      (fun instance ->
        Bechamel_notty.Unit.add instance (Measure.unit instance))
      Instance.[ monotonic_clock ]
  in
  let img = Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results in
  eol img |> output_image

(* {1 BENCH_engine.json}

   Wall-clock throughput of the A2 scaling series (amplifier chains)
   through the batch engine, at 1/2/4 workers, cold and warm model
   cache.  Hand-rolled JSON: one object per (workers, cache) cell.
   Speedup from extra workers requires actual cores — the [cores] field
   records what the host offered. *)

let engine_json_path = "BENCH_engine.json"

let engine_series_sizes = [ 2; 4; 8; 16 ]

let emit_engine_json () =
  let jobs = Flames_experiments.Explosion.jobs ~sizes:engine_series_sizes () in
  let cell ~workers ~label ~cache =
    (* best of three: the series is tens of milliseconds, scheduler noise
       would otherwise dominate the w1/w4 comparison *)
    let best (a : Engine.Stats.t) (b : Engine.Stats.t) =
      if a.Engine.Stats.wall_time <= b.Engine.Stats.wall_time then a else b
    in
    let run () =
      let outcomes, stats = Engine.Batch.run ~workers ~cache jobs in
      assert (List.for_all Result.is_ok outcomes);
      stats
    in
    let first = run () in
    let stats = best (best first (run ())) (run ()) in
    (* hits/misses of the first repetition: the later ones always hit *)
    let stats =
      { stats with
        Engine.Stats.cache_hits = first.Engine.Stats.cache_hits;
        cache_misses = first.Engine.Stats.cache_misses }
    in
    (* one schema for engine stats everywhere: these rows and the CLI's
       --stats-json both come from [Stats.to_json_fields] *)
    Format.asprintf "    { \"cache\": %S, %a }" label
      Engine.Stats.to_json_fields stats
  in
  let cells =
    List.concat_map
      (fun workers ->
        let cache = Engine.Cache.create () in
        let cold = cell ~workers ~label:"cold" ~cache in
        let warm = cell ~workers ~label:"warm" ~cache in
        [ cold; warm ])
      [ 1; 2; 4 ]
  in
  let oc = open_out engine_json_path in
  Printf.fprintf oc
    "{\n\
    \  \"series\": \"A2-scaling-amplifier-chains\",\n\
    \  \"sizes\": [%s],\n\
    \  \"jobs\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"runs\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (String.concat ", " (List.map string_of_int engine_series_sizes))
    (List.length jobs)
    (Domain.recommended_domain_count ())
    (String.concat ",\n" cells);
  close_out oc;
  Format.fprintf ppf "wrote %s@." engine_json_path

let () =
  let flag f = Array.exists (fun a -> a = f) Sys.argv in
  let engine_json_only = flag "--engine-json-only" in
  let atms_json_only = flag "--atms-json-only" in
  let session_json_only = flag "--session-json-only" in
  let obs_json_only = flag "--obs-json-only" in
  let compile_json_only = flag "--compile-json-only" in
  let store_json_only = flag "--store-json-only" in
  let smoke = flag "--atms-smoke" in
  let compile_smoke = flag "--compile-smoke" in
  if engine_json_only then emit_engine_json ()
  else if atms_json_only then Atms_series.emit ~smoke ppf
  else if session_json_only then Session_series.emit ppf
  else if obs_json_only then Obs_series.emit ppf
  else if compile_json_only then Compile_series.emit ~smoke:compile_smoke ppf
  else if store_json_only then Store_series.emit ppf
  else begin
    regenerate_tables ();
    Format.fprintf ppf "================ timing benches ================@.";
    Format.pp_print_flush ppf ();
    let results = run_benchmarks () in
    report results;
    emit_engine_json ();
    Atms_series.emit ~smoke ppf;
    Session_series.emit ppf;
    Obs_series.emit ppf;
    Compile_series.emit ~smoke:compile_smoke ppf;
    Store_series.emit ppf
  end
