(* Before/after series for the interned-bitset environment work
   (DESIGN.md section 8): the naive reference below reproduces the
   pre-interning representation and algorithms — environments as
   [Set.Make(Int)] values, dominance stores as linear-scan association
   lists, hitting-set subsumption as a walk over the completed list —
   and is raced against the production [Env]/[Envindex]-backed paths on
   identical deterministic workloads.  Every cell asserts that both
   sides produce the same answers before it is timed.

   Wall-clock, best of [reps]; written to BENCH_atms.json.  Absolute
   numbers depend on the host, the speedup column is the point. *)

module Env = Flames_atms.Env
module Envindex = Flames_atms.Envindex
module Nogood = Flames_atms.Nogood
module Hitting = Flames_atms.Hitting
module IS = Set.Make (Int)

(* {1 Deterministic workloads}

   A fixed-seed LCG (Knuth MMIX multiplier) so the series is identical
   across runs and hosts; native-int wraparound is the modulus. *)

type rng = { mutable s : int }

let rng seed = { s = seed }

let below r n =
  (* 48-bit LCG (Knuth/POSIX drand48 constants): fits native ints *)
  r.s <- ((r.s * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  (r.s lsr 17) mod n

(* weighted environments over [n] assumptions: the insert/query mix the
   ATMS label and nogood paths see — mostly small sets, lattice degrees *)
let weighted_envs ~n ~count ~max_size r =
  List.init count (fun _ ->
      let size = 2 + below r (max_size - 1) in
      let ids = List.init size (fun _ -> below r n) in
      let degree = float_of_int (1 + below r 16) /. 16. in
      (ids, degree))

(* {1 Naive reference (pre-interning seed behaviour)} *)

(* dominance store: minimal (env, degree) list, linear subsumption scan *)
type naive_store = { mutable items : (IS.t * float) list }

let naive_record st env degree =
  if List.exists (fun (e, d) -> IS.subset e env && d >= degree) st.items then
    false
  else begin
    st.items <-
      (env, degree)
      :: List.filter
           (fun (e, d) -> not (IS.subset env e && degree >= d))
           st.items;
    true
  end

let naive_max_subset st env =
  List.fold_left
    (fun acc (e, d) -> if d > acc && IS.subset e env then d else acc)
    0. st.items

(* minimal hitting sets exactly as the seed computed them: breadth-first
   over Set.Make(Int) environments, completed-set minimality by scanning
   the completed list, O(n) frontier bookkeeping *)
let naive_hitting ?(limit = 10_000) conflicts =
  let conflicts = List.sort_uniq IS.compare conflicts in
  if conflicts = [] then [ IS.empty ]
  else if List.exists IS.is_empty conflicts then []
  else begin
    let complete = ref [] in
    let is_subsumed env = List.exists (fun c -> IS.subset c env) !complete in
    let rec first_missed env = function
      | [] -> None
      | c :: rest ->
        if IS.disjoint env c then Some c else first_missed env rest
    in
    let queue = Queue.create () in
    Queue.add IS.empty queue;
    let seen = Hashtbl.create 256 in
    while (not (Queue.is_empty queue)) && List.length !complete < limit do
      let env = Queue.pop queue in
      if not (is_subsumed env) then
        match first_missed env conflicts with
        | None -> complete := env :: !complete
        | Some c ->
          IS.iter
            (fun a ->
              let env' = IS.add a env in
              let key = IS.elements env' in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                Queue.add env' queue
              end)
            c
    done;
    let by_size a b =
      let c = Int.compare (IS.cardinal a) (IS.cardinal b) in
      if c <> 0 then c else IS.compare a b
    in
    List.sort by_size !complete
  end

(* {1 Series} *)

(* A row is either a timed cell or an explicit skip: a series that
   cannot run at some size (the exponential hitting enumeration past
   ~20 assumptions) must say so in the artifact rather than silently
   omit the cell — a missing row is indistinguishable from a forgotten
   one, a [skipped] row is a documented decision. *)
type timing = { naive_ns : float; indexed_ns : float }
type cell = Timed of timing | Skipped of string  (* reason *)
type row = { series : string; n : int; cell : cell }

let speedup t = t.naive_ns /. Float.max t.indexed_ns 1.

let time_ns ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9

(* canonical form both representations can reach: sorted id lists *)
let canon_weighted kvs =
  List.sort compare (List.map (fun (ids, d) -> (List.sort compare ids, d)) kvs)

let assert_same series n a b =
  if a <> b then
    failwith
      (Printf.sprintf "BENCH_atms: naive/indexed divergence in %s at n=%d"
         series n)

(* label-update: the Atms.insert_label pattern — reject dominated
   insertions, evict dominated incumbents — over a churny env stream *)
let label_series ~reps n =
  let script = weighted_envs ~n ~count:(60 * n) ~max_size:6 (rng (0x1abe1 + n)) in
  let naive () =
    let st = { items = [] } in
    List.iter
      (fun (ids, d) -> ignore (naive_record st (IS.of_list ids) d))
      script;
    canon_weighted (List.map (fun (e, d) -> (IS.elements e, d)) st.items)
  in
  let indexed () =
    let idx : unit Envindex.t = Envindex.create () in
    List.iter
      (fun (ids, d) ->
        let env = Env.of_list ids in
        if not (Envindex.is_dominated idx env d) then begin
          ignore (Envindex.remove_dominated idx env d);
          Envindex.add idx env d ()
        end)
      script;
    canon_weighted
      (List.map
         (fun it -> (Env.to_list it.Envindex.env, it.Envindex.degree))
         (Envindex.to_list idx))
  in
  assert_same "label-update" n (naive ()) (indexed ());
  {
    series = "label-update";
    n;
    cell =
      Timed { naive_ns = time_ns ~reps naive; indexed_ns = time_ns ~reps indexed };
  }

(* nogood-churn: record a nogood stream, then answer inconsistency
   queries over wider environments (the propagation-side read pattern) *)
let nogood_series ~reps n =
  let r = rng (0x906d + n) in
  let records = weighted_envs ~n ~count:(40 * n) ~max_size:5 r in
  let queries =
    List.map fst (weighted_envs ~n ~count:(40 * n) ~max_size:9 r)
  in
  let naive () =
    let st = { items = [] } in
    List.iter (fun (ids, d) -> ignore (naive_record st (IS.of_list ids) d)) records;
    let total =
      List.fold_left
        (fun acc ids -> acc +. naive_max_subset st (IS.of_list ids))
        0. queries
    in
    (total, canon_weighted (List.map (fun (e, d) -> (IS.elements e, d)) st.items))
  in
  let indexed () =
    let db = Nogood.create () in
    List.iter (fun (ids, d) -> ignore (Nogood.record db (Env.of_list ids) d)) records;
    let total =
      List.fold_left
        (fun acc ids -> acc +. Nogood.inconsistency db (Env.of_list ids))
        0. queries
    in
    ( total,
      canon_weighted
        (List.map
           (fun e -> (Env.to_list e.Nogood.env, e.Nogood.degree))
           (Nogood.entries db)) )
  in
  assert_same "nogood-churn" n (naive ()) (indexed ());
  {
    series = "nogood-churn";
    n;
    cell =
      Timed { naive_ns = time_ns ~reps naive; indexed_ns = time_ns ~reps indexed };
  }

(* hitting-chain: overlapping triple conflicts over n assumptions — the
   candidate-explosion shape (DESIGN.md experiment A2/explosion).  The
   minimal-family enumeration is exponential in n on both sides; past
   [hitting_max_n] assumptions BFS breadth dominates even the indexed
   run, so larger sizes emit an explicit [Skipped] row. *)
let hitting_max_n = 20

let hitting_skip_reason n =
  Printf.sprintf
    "minimal hitting-set enumeration is exponential in n; n=%d exceeds the \
     n<=%d bound where both sides complete under the candidate limit"
    n hitting_max_n

let hitting_series ~reps n =
  let chains = List.init (n - 2) (fun i -> [ i; i + 1; i + 2 ]) in
  let naive () =
    List.map IS.elements (naive_hitting (List.map IS.of_list chains))
  in
  let indexed () =
    List.map Env.to_list
      (Hitting.minimal_hitting_sets (List.map Env.of_list chains))
  in
  let sets = indexed () in
  assert_same "hitting-chain" n (naive ()) sets;
  (* the comparison is only meaningful when the enumeration completed:
     under the candidate limit both sides return the full minimal family *)
  if List.length sets >= 10_000 then
    failwith "BENCH_atms: hitting-chain hit the candidate limit";
  {
    series = "hitting-chain";
    n;
    cell =
      Timed { naive_ns = time_ns ~reps naive; indexed_ns = time_ns ~reps indexed };
  }

(* {1 JSON emission} *)

let json_path = "BENCH_atms.json"
let full_sizes = [ 8; 12; 16; 20; 24 ]

(* smoke includes one size past [hitting_max_n] so the skipped-row
   emission path is exercised by CI, not only by the full run *)
let smoke_sizes = [ 8; 12; 24 ]

let emit ?(smoke = false) ppf =
  let sizes = if smoke then smoke_sizes else full_sizes in
  let reps = if smoke then 1 else 3 in
  let rows =
    List.concat_map
      (fun n ->
        [ label_series ~reps n; nogood_series ~reps n ]
        @ [
            (if n <= hitting_max_n then hitting_series ~reps n
             else
               {
                 series = "hitting-chain";
                 n;
                 cell = Skipped (hitting_skip_reason n);
               });
          ])
      sizes
  in
  let cell r =
    match r.cell with
    | Timed t ->
      Printf.sprintf
        "    { \"series\": %S, \"n\": %d, \"naive_ns\": %.0f, \"indexed_ns\": \
         %.0f, \"speedup\": %.2f }"
        r.series r.n t.naive_ns t.indexed_ns (speedup t)
    | Skipped reason ->
      Printf.sprintf
        "    { \"series\": %S, \"n\": %d, \"skipped\": true, \"reason\": %S }"
        r.series r.n reason
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\n\
    \  \"series\": \"atms-env-interning\",\n\
    \  \"smoke\": %b,\n\
    \  \"sizes\": [%s],\n\
    \  \"reps\": %d,\n\
    \  \"rows\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    smoke
    (String.concat ", " (List.map string_of_int sizes))
    reps
    (String.concat ",\n" (List.map cell rows));
  close_out oc;
  Format.fprintf ppf "wrote %s@." json_path;
  List.iter
    (fun r ->
      match r.cell with
      | Timed t ->
        Format.fprintf ppf
          "  %-14s n=%-3d naive %10.0f ns  indexed %10.0f ns  %6.2fx@."
          r.series r.n t.naive_ns t.indexed_ns (speedup t)
      | Skipped _ ->
        Format.fprintf ppf "  %-14s n=%-3d skipped@." r.series r.n)
    rows
