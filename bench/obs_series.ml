(* BENCH_obs.json — the cost of always-on observability.

   The request-scoped layer (context install, wide-event emission into
   the ring, per-route digest observation) rides along every diagnosis
   the service runs.  This series times the fig-7 diagnosis both bare
   ([Events.set_enabled false], no context — the hot path degenerates
   to one atomic load per call site) and fully instrumented (a fresh
   context per run, one wide event, one digest observation — exactly
   what the serve layer adds per request).  Runs come in adjacent
   pairs — alternating which side goes first to cancel positional
   drift — each side is the min of two back-to-back runs (timing noise
   on a shared host is one-sided spikes; the min inside a pair chops
   them without losing pair locality, unlike a whole-sweep min whose
   two minima come from different drift epochs), and the reported
   overhead is the median of the per-pair wall ratios, so an outlier
   spoils one ratio instead of the whole estimate (single-run minima
   proved ±3.5% noisy here, drowning the real sub-0.1% cost).  The
   claim in CI: instrumentation adds less than 3% to the diagnosis
   wall time. *)

module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Context = Flames_obs.Context
module Events = Flames_obs.Events
module Ids = Flames_obs.Ids
module Qdigest = Flames_obs.Digest

let config = { Flames_core.Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let fig7 () =
  let nominal = L.three_stage_amplifier ~tolerance:0.005 () in
  let faulty = F.inject nominal (F.short "r2" ~parameter:"R") in
  let sol = Flames_sim.Mna.solve faulty in
  ( nominal,
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage [ "vs"; "n2"; "v1" ]) )

let pairs = 25

let family =
  Qdigest.family ~slo:0.25 ~help:"obs-overhead bench digest"
    "flames_bench_obs_seconds"

let time_one ~instrumented i nominal obs =
  (* a clean heap per sample: a major collection crossing one side's
     run but not the other's would read as phantom overhead *)
  Gc.major ();
  let t0 = Unix.gettimeofday () in
  (if instrumented then
     let ctx = Context.make ~trace_id:(Ids.trace_id ()) ~route:"bench" () in
     Context.with_context ctx (fun () ->
         let s0 = Unix.gettimeofday () in
         ignore (Flames_core.Diagnose.run ~config nominal obs);
         let dt = Unix.gettimeofday () -. s0 in
         Qdigest.observe_in family "bench" dt;
         Events.emit ~ctx ~name:"bench.job"
           [ ("i", Events.Int i); ("elapsed_ms", Events.Num (dt *. 1e3)) ])
   else ignore (Flames_core.Diagnose.run ~config nominal obs));
  Unix.gettimeofday () -. t0

let path = "BENCH_obs.json"

let emit ppf =
  let nominal, obs = fig7 () in
  ignore (Flames_core.Diagnose.run ~config nominal obs) (* warm-up *);
  let base = ref infinity and instr = ref infinity in
  let side instrumented i =
    Events.set_enabled instrumented;
    let dt =
      Float.min
        (time_one ~instrumented i nominal obs)
        (time_one ~instrumented i nominal obs)
    in
    let best = if instrumented then instr else base in
    best := Float.min !best dt;
    dt
  in
  let ratios =
    Fun.protect ~finally:(fun () -> Events.set_enabled true) @@ fun () ->
    List.init pairs (fun i ->
        (* ABBA: even pairs run bare first, odd pairs instrumented
           first *)
        if i mod 2 = 0 then
          let b = side false i in
          side true i /. b
        else
          let t = side true i in
          t /. side false i)
  in
  let sorted = List.sort Float.compare ratios in
  let median = List.nth sorted (pairs / 2) in
  let overhead_pct = (median -. 1.) *. 100. in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"series\": \"obs-overhead-fig7\",\n\
    \  \"pairs\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"baseline_ms\": %.3f,\n\
    \  \"instrumented_ms\": %.3f,\n\
    \  \"overhead_pct\": %.3f,\n\
    \  \"threshold_pct\": 3.0\n\
     }\n"
    pairs
    (Domain.recommended_domain_count ())
    (!base *. 1e3) (!instr *. 1e3) overhead_pct;
  close_out oc;
  Format.fprintf ppf "wrote %s (events+digests overhead: %+.2f%%)@." path
    overhead_pct
