let header = "FLMWAL01"
let max_payload = 1 lsl 24

(* CRC-32, IEEE 802.3 polynomial (reflected 0xEDB88320), byte-at-a-time
   table.  OCaml's 63-bit ints hold the 32-bit state without masking
   gymnastics: every intermediate stays below 2^32. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let add_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let add_frame buf payload =
  add_u32 buf (String.length payload);
  add_u32 buf (crc32 payload);
  Buffer.add_string buf payload

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  add_frame buf payload;
  Buffer.contents buf

type read =
  | Frame of { payload : string; next : int }
  | End
  | Torn
  | Corrupt

let read s ~pos =
  let total = String.length s in
  if pos = total then End
  else if pos + 8 > total then Torn
  else
    let len = get_u32 s pos in
    if len > max_payload then Corrupt
    else if pos + 8 + len > total then Torn
    else
      let payload = String.sub s (pos + 8) len in
      if crc32 payload <> get_u32 s (pos + 4) then Corrupt
      else Frame { payload; next = pos + 8 + len }
