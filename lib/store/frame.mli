(** Record framing for the session journal.

    A segment file is the 8-byte {!header} followed by frames.  Each
    frame is [len:4][crc:4][payload:len] with both integers little
    endian; [crc] is the CRC-32 (IEEE 802.3 polynomial) of the payload
    bytes.  The framing is what makes recovery after [kill -9] safe: a
    write torn anywhere inside a frame fails the length or the checksum,
    never yields a half-record, and everything before it is untouched. *)

val header : string
(** Magic the first 8 bytes of every segment must equal. *)

val max_payload : int
(** Upper bound on a frame payload; a decoded length beyond it is
    treated as corruption (it can only come from a damaged length
    field). *)

val crc32 : string -> int
(** CRC-32 of the whole string, in [0, 2^32). *)

val frame : string -> string
(** [frame payload] is the encoded frame (length, checksum, payload). *)

val add_frame : Buffer.t -> string -> unit
(** Append [frame payload] to a buffer without intermediate copies. *)

type read =
  | Frame of { payload : string; next : int }
      (** a whole, checksummed frame; the next frame starts at [next] *)
  | End  (** clean end of the segment, exactly at a frame boundary *)
  | Torn
      (** the segment ends inside a frame — the classic torn tail of a
          crash mid-write *)
  | Corrupt
      (** the length field is implausible or the checksum fails — bit
          rot or an overwritten suffix *)

val read : string -> pos:int -> read
(** Decode the frame starting at [pos] of a whole segment's contents
    (the caller has already checked {!header} at offset 0). *)
