module Interval = Flames_fuzzy.Interval
module Quantity = Flames_circuit.Quantity

type source = Builtin of string | Inline of string

type t =
  | Create of { sid : string; source : source; trusted : string list }
  | Measure of {
      sid : string;
      mid : int;
      quantity : Quantity.t;
      interval : Interval.t;
    }
  | Retract of { sid : string; mid : int }
  | Refine of { sid : string; mid : int; interval : Interval.t }
  | Close of { sid : string }
  | Snapshot of {
      sid : string;
      source : source;
      trusted : string list;
      next_id : int;
      steps : int;
      measurements : (int * Quantity.t * Interval.t) list;
    }

let sid = function
  | Create { sid; _ }
  | Measure { sid; _ }
  | Retract { sid; _ }
  | Refine { sid; _ }
  | Close { sid }
  | Snapshot { sid; _ } ->
      sid

(* {2 Token escaping}

   Tokens are separated by single spaces; anything that could be
   mistaken for structure (whitespace, '%', ':') is percent-escaped.
   Netlist text — multi-line, space-heavy — rides through as one
   token. *)

let must_escape c =
  match c with
  | ' ' | '\t' | '\n' | '\r' | '%' | ':' -> true
  | c -> Char.code c < 0x20 || Char.code c = 0x7F

let esc s =
  if String.for_all (fun c -> not (must_escape c)) s && s <> "" then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    if s = "" then Buffer.add_string buf "%e"
    else
      String.iter
        (fun c ->
          if must_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
          else Buffer.add_char buf c)
        s;
    Buffer.contents buf
  end

let unesc s =
  if s = "%e" then Ok ""
  else if not (String.contains s '%') then Ok s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else if s.[i] = '%' then
        if i + 2 >= n then Error "truncated escape"
        else
          match int_of_string_opt (Printf.sprintf "0x%c%c" s.[i + 1] s.[i + 2]) with
          | Some code ->
              Buffer.add_char buf (Char.chr code);
              go (i + 3)
          | None -> Error "malformed escape"
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0
  end

let ( let* ) = Result.bind

(* {2 Scalar codecs} *)

let efloat = Printf.sprintf "%h"

let dfloat what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Ok f
  | Some _ | None -> Error (Printf.sprintf "bad float for %s: %s" what s)

let dint what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad int for %s: %s" what s)

let einterval (v : Interval.t) =
  [ efloat v.m1; efloat v.m2; efloat v.alpha; efloat v.beta ]

let dinterval m1 m2 alpha beta =
  let* m1 = dfloat "m1" m1 in
  let* m2 = dfloat "m2" m2 in
  let* alpha = dfloat "alpha" alpha in
  let* beta = dfloat "beta" beta in
  match Interval.make ~m1 ~m2 ~alpha ~beta with
  | v -> Ok v
  | exception Interval.Invalid msg -> Error ("bad interval: " ^ msg)

let equantity q =
  match (q : Quantity.t) with
  | Node_voltage n -> "v:" ^ esc n
  | Branch_current c -> "i:" ^ esc c
  | Terminal_current (c, t) -> "t:" ^ esc c ^ ":" ^ esc t
  | Voltage_drop c -> "u:" ^ esc c
  | Parameter (c, p) -> "p:" ^ esc c ^ ":" ^ esc p

let dquantity s =
  match String.split_on_char ':' s with
  | [ "v"; n ] ->
      let* n = unesc n in
      Ok (Quantity.voltage n)
  | [ "i"; c ] ->
      let* c = unesc c in
      Ok (Quantity.current c)
  | [ "t"; c; t ] ->
      let* c = unesc c in
      let* t = unesc t in
      Ok (Quantity.terminal_current c t)
  | [ "u"; c ] ->
      let* c = unesc c in
      Ok (Quantity.drop c)
  | [ "p"; c; p ] ->
      let* c = unesc c in
      let* p = unesc p in
      Ok (Quantity.parameter c p)
  | _ -> Error ("bad quantity: " ^ s)

let esource = function
  | Builtin name -> "b:" ^ esc name
  | Inline text -> "n:" ^ esc text

let dsource s =
  match String.split_on_char ':' s with
  | [ "b"; name ] ->
      let* name = unesc name in
      Ok (Builtin name)
  | [ "n"; text ] ->
      let* text = unesc text in
      Ok (Inline text)
  | _ -> Error ("bad source: " ^ s)

(* {2 Records} *)

let encode t =
  let tokens =
    match t with
    | Create { sid; source; trusted } ->
        "create" :: esc sid :: esource source
        :: string_of_int (List.length trusted)
        :: List.map esc trusted
    | Measure { sid; mid; quantity; interval } ->
        "measure" :: esc sid :: string_of_int mid :: equantity quantity
        :: einterval interval
    | Retract { sid; mid } -> [ "retract"; esc sid; string_of_int mid ]
    | Refine { sid; mid; interval } ->
        "refine" :: esc sid :: string_of_int mid :: einterval interval
    | Close { sid } -> [ "close"; esc sid ]
    | Snapshot { sid; source; trusted; next_id; steps; measurements } ->
        "snapshot" :: esc sid :: esource source
        :: string_of_int (List.length trusted)
        :: List.map esc trusted
        @ string_of_int next_id :: string_of_int steps
          :: string_of_int (List.length measurements)
          :: List.concat_map
               (fun (mid, q, v) ->
                 string_of_int mid :: equantity q :: einterval v)
               measurements
  in
  String.concat " " tokens

(* a tiny token-stream reader over the split line *)
let take what = function
  | [] -> Error ("missing token: " ^ what)
  | tok :: rest -> Ok (tok, rest)

let take_n what n toks =
  let rec go acc n toks =
    if n = 0 then Ok (List.rev acc, toks)
    else
      match toks with
      | [] -> Error ("missing token: " ^ what)
      | tok :: rest -> go (tok :: acc) (n - 1) rest
  in
  go [] n toks

let take_interval toks =
  let* quad, toks = take_n "interval" 4 toks in
  match quad with
  | [ m1; m2; a; b ] ->
      let* v = dinterval m1 m2 a b in
      Ok (v, toks)
  | _ -> assert false

let take_trusted toks =
  let* n, toks = take "trusted count" toks in
  let* n = dint "trusted count" n in
  if n < 0 || n > 4096 then Error "bad trusted count"
  else
    let* raw, toks = take_n "trusted" n toks in
    let* trusted =
      List.fold_right
        (fun tok acc ->
          let* acc = acc in
          let* t = unesc tok in
          Ok (t :: acc))
        raw (Ok [])
    in
    Ok (trusted, toks)

let finish v = function
  | [] -> Ok v
  | tok :: _ -> Error ("trailing token: " ^ tok)

let decode line =
  let* tag, toks = take "tag" (String.split_on_char ' ' line) in
  match tag with
  | "create" ->
      let* sid, toks = take "sid" toks in
      let* sid = unesc sid in
      let* source, toks = take "source" toks in
      let* source = dsource source in
      let* trusted, toks = take_trusted toks in
      finish (Create { sid; source; trusted }) toks
  | "measure" ->
      let* sid, toks = take "sid" toks in
      let* sid = unesc sid in
      let* mid, toks = take "mid" toks in
      let* mid = dint "mid" mid in
      let* q, toks = take "quantity" toks in
      let* quantity = dquantity q in
      let* interval, toks = take_interval toks in
      finish (Measure { sid; mid; quantity; interval }) toks
  | "retract" ->
      let* sid, toks = take "sid" toks in
      let* sid = unesc sid in
      let* mid, toks = take "mid" toks in
      let* mid = dint "mid" mid in
      finish (Retract { sid; mid }) toks
  | "refine" ->
      let* sid, toks = take "sid" toks in
      let* sid = unesc sid in
      let* mid, toks = take "mid" toks in
      let* mid = dint "mid" mid in
      let* interval, toks = take_interval toks in
      finish (Refine { sid; mid; interval }) toks
  | "close" ->
      let* sid, toks = take "sid" toks in
      let* sid = unesc sid in
      finish (Close { sid }) toks
  | "snapshot" ->
      let* sid, toks = take "sid" toks in
      let* sid = unesc sid in
      let* source, toks = take "source" toks in
      let* source = dsource source in
      let* trusted, toks = take_trusted toks in
      let* next_id, toks = take "next_id" toks in
      let* next_id = dint "next_id" next_id in
      let* steps, toks = take "steps" toks in
      let* steps = dint "steps" steps in
      let* k, toks = take "measurement count" toks in
      let* k = dint "measurement count" k in
      if k < 0 || k > 1_000_000 then Error "bad measurement count"
      else
        let rec go acc k toks =
          if k = 0 then Ok (List.rev acc, toks)
          else
            let* mid, toks = take "mid" toks in
            let* mid = dint "mid" mid in
            let* q, toks = take "quantity" toks in
            let* q = dquantity q in
            let* v, toks = take_interval toks in
            go ((mid, q, v) :: acc) (k - 1) toks
        in
        let* measurements, toks = go [] k toks in
        finish (Snapshot { sid; source; trusted; next_id; steps; measurements }) toks
  | tag -> Error ("unknown record tag: " ^ tag)
