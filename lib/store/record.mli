(** Journal records for diagnosis sessions.

    One record per mutating session operation, in the order the server
    acknowledged them.  The codec is a line of space-separated tokens
    with percent-escaping, so journals are greppable with standard
    tools; floats are rendered as OCaml hex-float literals ([%h]) and
    parsed back bit-exactly, which is what lets a recovered session be
    compared fingerprint-for-fingerprint against one that never
    restarted. *)

type source =
  | Builtin of string  (** a named circuit from {!Flames_circuit.Library} *)
  | Inline of string  (** full netlist text, as posted to the service *)

type t =
  | Create of { sid : string; source : source; trusted : string list }
  | Measure of {
      sid : string;
      mid : int;
      quantity : Flames_circuit.Quantity.t;
      interval : Flames_fuzzy.Interval.t;
    }
  | Retract of { sid : string; mid : int }
  | Refine of {
      sid : string;
      mid : int;
      interval : Flames_fuzzy.Interval.t;
    }
  | Close of { sid : string }
  | Snapshot of {
      sid : string;
      source : source;
      trusted : string list;
      next_id : int;
      steps : int;
      measurements :
        (int * Flames_circuit.Quantity.t * Flames_fuzzy.Interval.t) list;
    }
      (** the full surviving state of one session, written on rotation
          and drain so older segments can be deleted; measurement ids
          are preserved verbatim (they are client-visible handles and
          survivors are not contiguous after retractions) *)

val sid : t -> string
(** The session the record belongs to. *)

val encode : t -> string
val decode : string -> (t, string) result
