module Session = Flames_session.Session
module Script = Flames_session.Script
module Trace = Flames_obs.Trace
module Metrics = Flames_obs.Metrics

type fsync = Always | Interval of float | Never

type t = {
  dir : string;
  fsync : fsync;
  segment_bytes : int;
  mutex : Mutex.t;
  mutable fd : Unix.file_descr;
  mutable seg_index : int;
  mutable seg_size : int;
  mutable last_sync : float;
  mutable dirty : bool;  (* bytes written since the last fsync *)
  mutable broken : bool;  (* a failed write could not be quarantined *)
  mutable closed : bool;
}

let dir t = t.dir
let fsync_mode t = t.fsync
let segment_name dir i = Filename.concat dir (Printf.sprintf "segment-%08d.wal" i)

let segment_index name =
  if
    String.length name = String.length "segment-00000000.wal"
    && String.starts_with ~prefix:"segment-" name
    && String.ends_with ~suffix:".wal" name
  then int_of_string_opt (String.sub name 8 8)
  else None

(* oldest first *)
let list_segments dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map segment_index
    |> List.sort Int.compare

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Durability of file creation/deletion needs the directory synced too;
   a filesystem that cannot fsync a directory fd just skips it. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
        try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let new_segment dir index =
  let fd =
    Unix.openfile (segment_name dir index)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ]
      0o644
  in
  (try write_all fd Frame.header
   with e ->
     Unix.close fd;
     raise e);
  fd

let open_ ?(fsync = Interval 0.05) ?(segment_bytes = 1 lsl 20) dir =
  mkdir_p dir;
  let next = match List.rev (list_segments dir) with [] -> 1 | i :: _ -> i + 1 in
  let fd = new_segment dir next in
  Unix.fsync fd;
  fsync_dir dir;
  Metrics.gauge_set Telemetry.segments (float_of_int (List.length (list_segments dir)));
  Metrics.gauge_set Telemetry.journal_bytes (float_of_int (String.length Frame.header));
  {
    dir;
    fsync;
    segment_bytes;
    mutex = Mutex.create ();
    fd;
    seg_index = next;
    seg_size = String.length Frame.header;
    last_sync = Unix.gettimeofday ();
    dirty = false;
    broken = false;
    closed = false;
  }

let do_sync t =
  Unix.fsync t.fd;
  t.last_sync <- Unix.gettimeofday ();
  t.dirty <- false;
  Metrics.incr Telemetry.fsyncs_total

let sync_per_policy t =
  match t.fsync with
  | Always -> do_sync t
  | Interval s -> if Unix.gettimeofday () -. t.last_sync >= s then do_sync t
  | Never -> ()

(* Callers hold [t.mutex].  Start segment [next] and point appends at
   it; the outgoing segment is synced first so nothing already acked
   can be lost by the swap. *)
let swap_segment_locked t next =
  let fd = new_segment t.dir next in
  (try
     Unix.fsync fd;
     fsync_dir t.dir
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove (segment_name t.dir next) with Sys_error _ -> ());
     raise e);
  (try do_sync t with Unix.Unix_error _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.fd <- fd;
  t.seg_index <- next;
  t.seg_size <- String.length Frame.header;
  t.last_sync <- Unix.gettimeofday ();
  t.dirty <- false

(* A failed write may leave a torn frame mid-segment, and recovery
   stops scanning a segment at the first tear — so nothing may ever be
   appended after one.  Quarantine the damage by swapping to a fresh
   segment (the torn one keeps its recoverable prefix); if even that
   fails the journal poisons itself and every later append raises. *)
let quarantine_locked t =
  match swap_segment_locked t (t.seg_index + 1) with
  | () -> ()
  | exception _ -> t.broken <- true

let check_usable_locked t op =
  if t.closed then invalid_arg (Printf.sprintf "Journal.%s: closed journal" op);
  if t.broken then
    failwith
      (Printf.sprintf
         "Journal.%s: journal poisoned by an unrecoverable write failure" op)

let append t record =
  Trace.with_span ~record:Telemetry.append_seconds "store.append" @@ fun () ->
  locked t @@ fun () ->
  check_usable_locked t "append";
  let framed = Frame.frame (Record.encode record) in
  let size_before = t.seg_size in
  (match write_all t.fd framed with
  | () -> ()
  | exception e ->
    quarantine_locked t;
    raise e);
  t.seg_size <- t.seg_size + String.length framed;
  t.dirty <- true;
  (match sync_per_policy t with
  | () -> ()
  | exception e ->
    (* the frame is fully written but its durability was refused: cut
       it back off so recovery agrees with the 500 the caller answers *)
    (try Unix.ftruncate t.fd size_before with Unix.Unix_error _ -> ());
    quarantine_locked t;
    raise e);
  Metrics.incr Telemetry.appends_total;
  Metrics.incr ~by:(String.length framed) Telemetry.append_bytes_total;
  Metrics.gauge_set Telemetry.journal_bytes (float_of_int t.seg_size)

let sync t =
  locked t @@ fun () -> if not (t.closed || t.broken) then do_sync t

(* The periodic half of the [Interval] discipline: append only syncs
   when a *later* append finds the interval elapsed, so a burst
   followed by idleness would otherwise leave its tail unsynced
   forever.  The maintenance thread calls this every tick. *)
let sync_if_due t =
  locked t @@ fun () ->
  if (not t.closed) && (not t.broken) && t.dirty then
    match t.fsync with
    | Interval s -> if Unix.gettimeofday () -. t.last_sync >= s then do_sync t
    | Always | Never -> ()

let due_for_rotation t =
  locked t @@ fun () ->
  (not t.closed) && (not t.broken) && t.seg_size >= t.segment_bytes

type rotation = { upto : int  (** delete segments through this index *) }

(* Swap-first rotation: appends are redirected to the fresh segment
   *before* any snapshot is captured, so a record acked concurrently
   with the rotation can never land in a segment the commit deletes.
   Old segments stay on disk until {!commit_rotation}. *)
let begin_rotation t =
  locked t @@ fun () ->
  check_usable_locked t "begin_rotation";
  let upto = t.seg_index in
  swap_segment_locked t (t.seg_index + 1);
  { upto }

(* The snapshot records (and any appends interleaved with them) are
   made fully durable — bytes, fsync, directory entry — before any old
   segment is unlinked, so every crash point recovers to the same
   state: either the old segments still exist (snapshot records then
   overwrite per-session state on replay) or only the new ones do. *)
let commit_rotation t rot =
  locked t @@ fun () ->
  check_usable_locked t "commit_rotation";
  do_sync t;
  fsync_dir t.dir;
  List.iter
    (fun i ->
      if i <= rot.upto then
        try Sys.remove (segment_name t.dir i) with Sys_error _ -> ())
    (list_segments t.dir);
  fsync_dir t.dir;
  Metrics.incr Telemetry.rotations_total;
  Metrics.gauge_set Telemetry.segments
    (float_of_int (List.length (list_segments t.dir)));
  Metrics.gauge_set Telemetry.journal_bytes (float_of_int t.seg_size)

(* Quiescent-caller convenience (startup compaction, drain, tests):
   with no concurrent appenders the swap/append/commit sequence is
   exactly the atomic rotation it replaced.  Live rotation with
   concurrent request threads must instead capture each snapshot under
   its session's own lock between {!begin_rotation} and
   {!commit_rotation} — see the server's maintenance loop. *)
let rotate t ~snapshot =
  let rot = begin_rotation t in
  List.iter (fun r -> append t r) snapshot;
  Metrics.incr ~by:(List.length snapshot) Telemetry.snapshot_records_total;
  commit_rotation t rot

let close t =
  locked t @@ fun () ->
  if not t.closed then begin
    (try if not t.broken then do_sync t with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.closed <- true
  end

(* {1 Recovery} *)

type entry = {
  sid : string;
  session : Session.t;
  source : Record.source;
  trusted : string list;
}

type recovered = {
  entries : entry list;
  segments : int;
  records : int;
  torn_tail : bool;
  corrupt_frames : int;
  skipped_bytes : int;
  dropped_records : int;
  dropped_sessions : int;
}

let default_resolve = function
  | Record.Builtin name -> (
    match List.assoc_opt name Flames_circuit.Library.builtins with
    | Some build -> Ok (build ())
    | None -> Error (Printf.sprintf "unknown builtin circuit %S" name))
  | Record.Inline text -> (
    match Flames_circuit.Parser.parse text with
    | Ok netlist -> Ok netlist
    | Error e -> Error (Format.asprintf "%a" Flames_circuit.Parser.pp_error e))

let config_of_trusted trusted =
  { Flames_core.Model.default_config with trusted }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type session_state = {
  s_session : Session.t;
  s_source : Record.source;
  s_trusted : string list;
}

let recover ?(resolve = default_resolve) ?schedule_of dir =
  Trace.with_span ~record:Telemetry.recover_seconds "store.recover"
  @@ fun () ->
  let table : (string, session_state) Hashtbl.t = Hashtbl.create 16 in
  let records = ref 0 in
  let torn_tail = ref false in
  let corrupt_frames = ref 0 in
  let skipped_bytes = ref 0 in
  let dropped_records = ref 0 in
  let dropped_sessions = ref 0 in
  let resolve_parts source trusted =
    match resolve source with
    | Error msg -> Error msg
    | Ok netlist ->
      let config = config_of_trusted trusted in
      let schedule =
        match schedule_of with None -> None | Some f -> f config netlist
      in
      Ok (netlist, config, schedule)
  in
  let drop_session sid =
    if Hashtbl.mem table sid then begin
      Hashtbl.remove table sid;
      incr dropped_sessions;
      Metrics.incr Telemetry.dropped_sessions_total
    end
  in
  (* [Ok] = the record took effect; [Error] = dropped (counted by the
     caller).  A replay that diverges from what the journal promised —
     a measurement id the rebuilt session does not reproduce — abandons
     the whole session rather than keep silently different state. *)
  let apply record =
    match (record : Record.t) with
    | Create { sid; source; trusted } -> (
      match resolve_parts source trusted with
      | Error msg ->
        drop_session sid;
        Error msg
      | Ok (netlist, config, schedule) -> (
        match Session.create ~config ?schedule netlist with
        | session ->
          Hashtbl.replace table sid
            { s_session = session; s_source = source; s_trusted = trusted };
          Ok ()
        | exception exn ->
          drop_session sid;
          Error
            (Printf.sprintf "session rebuild failed: %s"
               (Printexc.to_string exn))))
    | Snapshot { sid; source; trusted; next_id; steps; measurements } -> (
      match resolve_parts source trusted with
      | Error msg ->
        drop_session sid;
        Error msg
      | Ok (netlist, config, schedule) -> (
        match
          Session.restore ~config ?schedule ~measurements ~next_id ~steps
            netlist
        with
        | session ->
          Hashtbl.replace table sid
            { s_session = session; s_source = source; s_trusted = trusted };
          Ok ()
        | exception exn ->
          drop_session sid;
          Error
            (Printf.sprintf "snapshot restore failed: %s"
               (Printexc.to_string exn))))
    | Close { sid } ->
      if Hashtbl.mem table sid then begin
        Hashtbl.remove table sid;
        Ok ()
      end
      else Error (Printf.sprintf "close of unknown session %s" sid)
    | Measure { sid; mid; quantity; interval } -> (
      match Hashtbl.find_opt table sid with
      | None -> Error (Printf.sprintf "measure for unknown session %s" sid)
      | Some st -> (
        match
          Script.replay ~session:st.s_session [ Observe (quantity, interval) ]
        with
        | Error e ->
          drop_session sid;
          Error e
        | Ok () -> (
          match Session.find_measurement st.s_session ~id:mid with
          | Some m when Flames_circuit.Quantity.equal m.Session.quantity quantity
            -> Ok ()
          | Some _ | None ->
            drop_session sid;
            Error
              (Printf.sprintf
                 "session %s diverged: journaled measurement id %d not \
                  reproduced"
                 sid mid))))
    | Retract { sid; mid } -> (
      match Hashtbl.find_opt table sid with
      | None -> Error (Printf.sprintf "retract for unknown session %s" sid)
      | Some st -> (
        match Script.replay ~session:st.s_session [ Retract mid ] with
        | Ok () -> Ok ()
        | Error e ->
          drop_session sid;
          Error e))
    | Refine { sid; mid; interval } -> (
      match Hashtbl.find_opt table sid with
      | None -> Error (Printf.sprintf "refine for unknown session %s" sid)
      | Some st -> (
        match
          Script.replay ~session:st.s_session
            [ Refine_interval (mid, interval) ]
        with
        | Ok () -> Ok ()
        | Error e ->
          drop_session sid;
          Error e))
  in
  (* A bad suffix of the newest segment is the expected shape of a crash
     (torn tail); the same damage anywhere else is corruption.  Either
     way the scan of that segment stops and everything before the damage
     — and every other segment — is still recovered. *)
  let bad_suffix ~is_last nbytes =
    skipped_bytes := !skipped_bytes + nbytes;
    if is_last then begin
      torn_tail := true;
      Metrics.incr Telemetry.torn_tails_total
    end
    else begin
      incr corrupt_frames;
      Metrics.incr Telemetry.corrupt_frames_total
    end
  in
  let segments = list_segments dir in
  let last = match List.rev segments with [] -> -1 | i :: _ -> i in
  List.iter
    (fun index ->
      let is_last = index = last in
      match read_file (segment_name dir index) with
      | exception Sys_error _ ->
        incr corrupt_frames;
        Metrics.incr Telemetry.corrupt_frames_total
      | content ->
        let total = String.length content in
        let hlen = String.length Frame.header in
        if total < hlen then bad_suffix ~is_last total
        else if String.sub content 0 hlen <> Frame.header then begin
          incr corrupt_frames;
          Metrics.incr Telemetry.corrupt_frames_total;
          skipped_bytes := !skipped_bytes + total
        end
        else begin
          let rec scan pos =
            match Frame.read content ~pos with
            | End -> ()
            | Torn -> bad_suffix ~is_last (total - pos)
            | Corrupt ->
              incr corrupt_frames;
              Metrics.incr Telemetry.corrupt_frames_total;
              skipped_bytes := !skipped_bytes + (total - pos)
            | Frame { payload; next } ->
              (match Record.decode payload with
              | Error _ ->
                incr dropped_records;
                Metrics.incr Telemetry.dropped_records_total
              | Ok record -> (
                match apply record with
                | Ok () ->
                  incr records;
                  Metrics.incr Telemetry.recovered_records_total
                | Error _ ->
                  incr dropped_records;
                  Metrics.incr Telemetry.dropped_records_total));
              scan next
          in
          scan hlen
        end)
    segments;
  Metrics.incr ~by:!skipped_bytes Telemetry.skipped_bytes_total;
  let entries =
    Hashtbl.fold
      (fun sid st acc ->
        { sid; session = st.s_session; source = st.s_source; trusted = st.s_trusted }
        :: acc)
      table []
    |> List.sort (fun a b -> String.compare a.sid b.sid)
  in
  Metrics.incr ~by:(List.length entries) Telemetry.recovered_sessions_total;
  {
    entries;
    segments = List.length segments;
    records = !records;
    torn_tail = !torn_tail;
    corrupt_frames = !corrupt_frames;
    skipped_bytes = !skipped_bytes;
    dropped_records = !dropped_records;
    dropped_sessions = !dropped_sessions;
  }
