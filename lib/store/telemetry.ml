(* Metric handles for the journal, created once at module init.  Names
   follow the flames_store_* prefix so the Prometheus export groups the
   durability subsystem together. *)

module Metrics = Flames_obs.Metrics

let appends_total =
  Metrics.counter "flames_store_appends_total"
    ~help:"Records appended to the session journal"

let append_bytes_total =
  Metrics.counter "flames_store_append_bytes_total"
    ~help:"Framed bytes appended to the session journal"

let append_errors_total =
  Metrics.counter "flames_store_append_errors_total"
    ~help:"Journal appends that failed (the request is answered 500)"

let fsyncs_total =
  Metrics.counter "flames_store_fsyncs_total"
    ~help:"fsync calls issued by the journal"

let rotations_total =
  Metrics.counter "flames_store_rotations_total"
    ~help:"Segment rotations (snapshot compactions)"

let snapshot_records_total =
  Metrics.counter "flames_store_snapshot_records_total"
    ~help:"Session snapshot records written during rotations and drains"

let recovered_records_total =
  Metrics.counter "flames_store_recovered_records_total"
    ~help:"Journal records applied successfully during recovery"

let recovered_sessions_total =
  Metrics.counter "flames_store_recovered_sessions_total"
    ~help:"Sessions alive at the end of a recovery replay"

let torn_tails_total =
  Metrics.counter "flames_store_torn_tails_total"
    ~help:"Torn tails (truncated trailing frames) found during recovery"

let corrupt_frames_total =
  Metrics.counter "flames_store_corrupt_frames_total"
    ~help:"Frames with failed checksums or implausible lengths found during recovery"

let skipped_bytes_total =
  Metrics.counter "flames_store_skipped_bytes_total"
    ~help:"Journal bytes skipped by recovery after torn or corrupt frames"

let dropped_records_total =
  Metrics.counter "flames_store_dropped_records_total"
    ~help:"Well-framed records recovery could not decode or apply"

let dropped_sessions_total =
  Metrics.counter "flames_store_dropped_sessions_total"
    ~help:"Sessions abandoned during recovery after a divergent replay"

let segments =
  Metrics.gauge "flames_store_segments"
    ~help:"Segment files the open journal currently spans"

let journal_bytes =
  Metrics.gauge "flames_store_journal_bytes"
    ~help:"Bytes in the open journal's current segment"

let append_seconds =
  Metrics.histogram "flames_store_append_seconds"
    ~help:"Journal append latency (encode, write, fsync) in seconds"

let recover_seconds =
  Metrics.histogram "flames_store_recover_seconds"
    ~help:"Startup recovery replay wall time in seconds"
