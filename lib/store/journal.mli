(** The write-ahead session journal: append, rotate, recover.

    A journal is a directory of segment files
    [segment-00000001.wal, …], each the {!Frame.header} magic followed
    by CRC-framed {!Record} lines.  Appends go to the newest segment
    only; {!rotate} starts a fresh segment seeded with {!Record.Snapshot}
    records for every live session and deletes the older segments once
    the snapshot is durable, so the journal's size tracks the live state
    rather than the full history.

    Thread-safety: every operation takes the journal's internal mutex.
    Callers that hold per-session locks (the server's request threads)
    may append freely — the journal never takes session locks, so the
    lock order [session entry -> journal] is global.  Rotation is
    two-phase precisely so a live server can capture each snapshot
    under its session's own lock {e after} {!begin_rotation} has
    redirected appends: at most one rotation may be in flight at a time
    (the server's single maintenance thread). *)

type fsync =
  | Always  (** fsync after every append — an acked write survives kill -9 *)
  | Interval of float
      (** fsync when the last one is older than [s] seconds, checked at
          append time — bounds loss to the interval without paying a
          sync per step *)
  | Never  (** leave durability to the OS page cache *)

type t

val open_ : ?fsync:fsync -> ?segment_bytes:int -> string -> t
(** [open_ dir] creates [dir] if needed and starts a fresh segment after
    any already present (existing segments are never appended to — they
    may end in a torn tail).  [?fsync] defaults to [Interval 0.05];
    [?segment_bytes] (default 1 MiB) is the rotation threshold reported
    by {!due_for_rotation}.
    @raise Unix.Unix_error when the directory or segment cannot be
    created. *)

val dir : t -> string
val fsync_mode : t -> fsync

val append : t -> Record.t -> unit
(** Frame, write and (per the fsync discipline) sync one record.
    Runs inside a [store.append] span feeding
    [flames_store_append_seconds].
    @raise Unix.Unix_error on write or sync failure.  The record is
    {e not} acked: a torn frame is quarantined by swapping appends to a
    fresh segment (the damaged one keeps its recoverable prefix; the
    tear ends its scan), and a written-but-unsynced frame is truncated
    back off, so a raised append never becomes visible to recovery
    ahead of later acked records.  Only if even the quarantine swap
    fails does the journal poison itself, after which every append
    raises [Failure] immediately. *)

val sync : t -> unit
(** Force an fsync now, whatever the discipline. *)

val sync_if_due : t -> unit
(** Fsync if the discipline is [Interval s], unsynced bytes exist and
    the last sync is older than [s].  Called periodically by the
    server's maintenance thread: append alone only syncs when a later
    append observes the elapsed interval, so without this a burst
    followed by idleness would stay unsynced indefinitely. *)

val due_for_rotation : t -> bool
(** The current segment has outgrown [segment_bytes]. *)

type rotation
(** An in-flight rotation: the pre-swap segments awaiting deletion. *)

val begin_rotation : t -> rotation
(** Swap appends to a fresh segment (syncing the outgoing one first).
    Old segments stay on disk until {!commit_rotation}; appends made
    after this call land at or after the swap point and therefore
    survive the commit.  Callers then append one {!Record.Snapshot} per
    live session, each captured {e and appended} under that session's
    own lock: per session, the entry lock orders every journaled
    mutation against its snapshot record, so a mutation is either
    inside the snapshot (journaled before the capture, possibly into a
    doomed old segment) or replays after it. *)

val commit_rotation : t -> rotation -> unit
(** Make everything appended since the swap fully durable (bytes,
    fsync, directory entry), then delete the pre-swap segments.  A
    crash at any point recovers to the same state: either the old
    segments still exist and the snapshot records overwrite per-session
    state on replay, or only the post-swap segments do.  Skipping the
    commit (an append raised mid-snapshot) is safe — old segments are
    simply kept and the next rotation compacts them. *)

val rotate : t -> snapshot:Record.t list -> unit
(** [begin_rotation]; append each of [snapshot]; [commit_rotation] —
    the whole compaction for {e quiescent} callers (startup, drain,
    tests) with no concurrent appenders.  A live server must capture
    snapshots between the two phases itself, as described above. *)

val close : t -> unit
(** Final sync and close.  Idempotent; appends after close raise. *)

(** {1 Recovery} *)

type entry = {
  sid : string;
  session : Flames_session.Session.t;
  source : Record.source;
  trusted : string list;
}

type recovered = {
  entries : entry list;  (** sessions alive at the journal's end, in sid order *)
  segments : int;  (** segment files scanned *)
  records : int;  (** records applied successfully *)
  torn_tail : bool;  (** the newest segment ended mid-frame *)
  corrupt_frames : int;
  skipped_bytes : int;
  dropped_records : int;  (** well-framed but undecodable/inapplicable *)
  dropped_sessions : int;  (** abandoned after a divergent replay *)
}

val recover :
  ?resolve:(Record.source -> (Flames_circuit.Netlist.t, string) result) ->
  ?schedule_of:
    (Flames_core.Model.config ->
    Flames_circuit.Netlist.t ->
    Flames_core.Schedule.t option) ->
  string ->
  recovered
(** Replay every segment of [dir] (oldest first) through the
    {!Flames_session.Script} interpreter, rebuilding each live session.
    Corruption degrades instead of failing: a torn or corrupt frame ends
    the scan of that segment (counted, remaining bytes skipped), a
    record that decodes but does not apply cleanly is dropped, and a
    session whose replay diverges (a journaled measurement id the
    rebuilt session does not reproduce) is abandoned — everything intact
    before the damage is recovered.  A missing directory recovers empty.

    [?resolve] maps record sources to netlists (default:
    {!Flames_circuit.Library.builtins} by name, {!Flames_circuit.Parser}
    for inline text).  [?schedule_of] lets the server reuse its compiled
    schedule cache across the recovered sessions.  Runs inside a
    [store.recover] span feeding [flames_store_recover_seconds]. *)
