(** The write-ahead session journal: append, rotate, recover.

    A journal is a directory of segment files
    [segment-00000001.wal, …], each the {!Frame.header} magic followed
    by CRC-framed {!Record} lines.  Appends go to the newest segment
    only; {!rotate} starts a fresh segment seeded with {!Record.Snapshot}
    records for every live session and deletes the older segments once
    the snapshot is durable, so the journal's size tracks the live state
    rather than the full history.

    Thread-safety: every operation takes the journal's internal mutex.
    Callers that hold per-session locks (the server's request threads)
    may append freely — the journal never takes session locks.  The
    reverse order (collect a snapshot under session locks, then call
    {!rotate}) is reserved for the server's maintenance thread, keeping
    the lock order [session entry -> journal] global. *)

type fsync =
  | Always  (** fsync after every append — an acked write survives kill -9 *)
  | Interval of float
      (** fsync when the last one is older than [s] seconds, checked at
          append time — bounds loss to the interval without paying a
          sync per step *)
  | Never  (** leave durability to the OS page cache *)

type t

val open_ : ?fsync:fsync -> ?segment_bytes:int -> string -> t
(** [open_ dir] creates [dir] if needed and starts a fresh segment after
    any already present (existing segments are never appended to — they
    may end in a torn tail).  [?fsync] defaults to [Interval 0.05];
    [?segment_bytes] (default 1 MiB) is the rotation threshold reported
    by {!due_for_rotation}.
    @raise Unix.Unix_error when the directory or segment cannot be
    created. *)

val dir : t -> string
val fsync_mode : t -> fsync

val append : t -> Record.t -> unit
(** Frame, write and (per the fsync discipline) sync one record.
    Runs inside a [store.append] span feeding
    [flames_store_append_seconds].
    @raise Unix.Unix_error on write failure; the journal is unusable
    for further appends after a raised write (the segment may hold a
    torn frame — recovery handles it). *)

val sync : t -> unit
(** Force an fsync now, whatever the discipline. *)

val due_for_rotation : t -> bool
(** The current segment has outgrown [segment_bytes]. *)

val rotate : t -> snapshot:Record.t list -> unit
(** Start a new segment containing exactly [snapshot] (typically one
    {!Record.Snapshot} per live session), fsync it, then delete every
    older segment.  A crash between the new segment becoming durable and
    the old ones being unlinked is safe: recovery replays old segments
    first and the snapshot records then overwrite per-session state. *)

val close : t -> unit
(** Final sync and close.  Idempotent; appends after close raise. *)

(** {1 Recovery} *)

type entry = {
  sid : string;
  session : Flames_session.Session.t;
  source : Record.source;
  trusted : string list;
}

type recovered = {
  entries : entry list;  (** sessions alive at the journal's end, in sid order *)
  segments : int;  (** segment files scanned *)
  records : int;  (** records applied successfully *)
  torn_tail : bool;  (** the newest segment ended mid-frame *)
  corrupt_frames : int;
  skipped_bytes : int;
  dropped_records : int;  (** well-framed but undecodable/inapplicable *)
  dropped_sessions : int;  (** abandoned after a divergent replay *)
}

val recover :
  ?resolve:(Record.source -> (Flames_circuit.Netlist.t, string) result) ->
  ?schedule_of:
    (Flames_core.Model.config ->
    Flames_circuit.Netlist.t ->
    Flames_core.Schedule.t option) ->
  string ->
  recovered
(** Replay every segment of [dir] (oldest first) through the
    {!Flames_session.Script} interpreter, rebuilding each live session.
    Corruption degrades instead of failing: a torn or corrupt frame ends
    the scan of that segment (counted, remaining bytes skipped), a
    record that decodes but does not apply cleanly is dropped, and a
    session whose replay diverges (a journaled measurement id the
    rebuilt session does not reproduce) is abandoned — everything intact
    before the damage is recovered.  A missing directory recovers empty.

    [?resolve] maps record sources to netlists (default:
    {!Flames_circuit.Library.builtins} by name, {!Flames_circuit.Parser}
    for inline text).  [?schedule_of] lets the server reuse its compiled
    schedule cache across the recovered sessions.  Runs inside a
    [store.recover] span feeding [flames_store_recover_seconds]. *)
