(** Cooperative work budgets for graceful degradation.

    A budget is a wall-clock deadline plus quotas on the quantities that
    actually blow up in fuzzy diagnosis — propagation steps, label/nogood
    environments, hitting-set candidates — together with an external
    cancellation flag.  The pipeline stages poll it at cheap check-points;
    when a quota trips they stop {e early but cleanly}, so the diagnosis
    still returns ranked candidates, flagged degraded, instead of an
    error (see {!Diagnose}).

    A [t] is started from an immutable {!spec} immediately before the
    run it meters: deadlines are absolute, counters start at zero.  The
    counters are single-domain (one budget per job); only {!cancel} may
    be called from another domain — {!Flames_engine.Pool} uses it to
    stop a running job whose promise deadline passed. *)

type trip = Wall | Cancel | Steps | Envs | Candidates

type spec = {
  wall : float option;  (** seconds of wall clock from {!start} *)
  max_steps : int option;  (** propagation work-queue pops *)
  max_envs : int option;  (** cell/label environment insertions *)
  max_candidates : int option;  (** hitting sets enumerated *)
}

val unlimited : spec

val spec :
  ?wall:float ->
  ?max_steps:int ->
  ?max_envs:int ->
  ?max_candidates:int ->
  unit ->
  spec
(** Missing fields are unlimited.
    @raise Invalid_argument on negative or non-finite bounds. *)

type t

val start : spec -> t
(** Arm the budget now: the wall deadline is [now + wall]. *)

val fresh : unit -> t
(** [start unlimited] — an always-green budget for unbudgeted paths. *)

val cancel : t -> unit
(** External cooperative cancellation (domain-safe): every later
    check-point answers "stop".  Used by the pool when a job's deadline
    passes while it is running. *)

val charge_steps : t -> int -> bool
(** [charge_steps t n] accounts [n] more steps; [false] means a quota
    (step count, wall deadline or cancellation) tripped and the caller
    should wind down.  The deadline is only polled on every 32nd charge,
    so a charge is normally one comparison. *)

val charge_envs : t -> int -> bool
val charge_candidates : t -> int -> bool

val ok : t -> bool
(** Pure check-point: no charge, just "has anything tripped?" (also
    polls cancellation and — rate-limited — the deadline). *)

val quota_candidates : t -> int option
(** The candidate quota of the originating spec, for callers that can
    bound an enumeration up-front (e.g. as a hitting-set [limit]) rather
    than only stop it at a check-point. *)

val interrupt_of : t -> unit -> bool
(** The stop/go closure handed to budget-blind layers
    ({!Flames_atms.Hitting}, {!Flames_atms.Atms}): [true] = stop. *)

val trips : t -> trip list
(** Quotas that tripped, in order of first occurrence; [[]] = clean. *)

val tripped : t -> bool
val cancelled : t -> bool
val elapsed : t -> float

val is_unlimited : t -> bool
(** No wall deadline, no quota of any kind, and not (yet) cancelled —
    charges can never fail, so work skipped through a cache cannot
    change what the budget would have accounted.  Gates the reuse of
    budget-blind cached state (e.g. {!Diagnose}'s shared
    nominal-prediction engine); cancellation arriving after the check
    is best-effort, exactly as at any other check-point. *)

val pp_trip : Format.formatter -> trip -> unit
val pp_trips : Format.formatter -> trip list -> unit
val trip_label : trip -> string
