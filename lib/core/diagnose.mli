(** Top-level model-based diagnosis driver (paper sections 5–6.3).

    Given a circuit and a set of measurements, the driver

    + compiles the netlist into fuzzy constraints ({!Model}),
    + runs a prediction pass from nominals alone,
    + runs the full propagation with the observations,
    + collects the weighted conflicts and derives ranked candidates,
    + refines each suspect with fault-mode estimation: parameter values
      reconstructed from the measurements are matched against the fuzzy
      fault-mode regions (open / short / high / low) of section 7. *)

module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency
module Quantity = Flames_circuit.Quantity
module Netlist = Flames_circuit.Netlist
module Fault = Flames_circuit.Fault
module Candidates = Flames_atms.Candidates

type observation = Quantity.t * Interval.t

type symptom = {
  quantity : Quantity.t;
  measured : Interval.t;
  predicted : Interval.t option;  (** tightest nominal-pass prediction *)
  verdict : Consistency.verdict option;
  signed_dc : float option;  (** the paper's fig-7 display convention *)
}

type mode_estimate = {
  parameter : string;
  nominal : float;
  estimated : float option;
      (** fitted faulty value (simulator sweep), or the measurement-side
          propagation estimate on externally driven circuits *)
  fit_residual : float option;
      (** residual of the best fit: the summed squared normalised probe
          error when the circuit is re-simulated with [estimated];
          [None] when no fit was possible *)
  modes : (Fault.mode * float) list;  (** matching fault modes, best first *)
}

type suspect = {
  component : string;
  suspicion : float;  (** max degree of a conflict implicating it *)
  explains : bool;
      (** some value of one of its parameters reproduces every
          measurement (fit residual below {!fit_threshold}) — the
          single-fault explanations among the suspects *)
  estimates : mode_estimate list;
}

val fit_threshold : float
(** Residual below which a fit counts as explaining the symptoms
    (0.05 summed squared normalised error). *)

type result = {
  netlist : Netlist.t;
  symptoms : symptom list;
  conflicts : Candidates.conflict list;
  suspects : suspect list;  (** most suspect first *)
  diagnoses : (string list * float) list;
      (** minimal diagnoses as component-name sets with their rank *)
  single_faults : (string * float) list;
      (** components alone explaining every conflict *)
  engine : Propagate.t;  (** the underlying engine, for inspection *)
  degraded : bool;
      (** a budget check-point stopped some stage early: everything in
          the result is sound, but propagation may have missed conflicts,
          fit sweeps may have been skipped and the candidate list may be
          a prefix of the full one *)
  trips : Budget.trip list;  (** which quotas tripped, if any *)
}

val run :
  ?config:Model.config ->
  ?limits:Propagate.limits ->
  ?model:Model.t ->
  ?schedule:Schedule.t ->
  ?use_compiled:bool ->
  ?budget:Budget.t ->
  ?prediction_floor:float ->
  ?sensitivity_threshold:float ->
  ?prediction_degree:float ->
  ?simulate_predictions:bool ->
  Netlist.t ->
  observation list ->
  result
(** [run netlist observations] performs a full diagnosis.

    By default the model is lowered to a compiled {!Schedule} and the
    propagation engines run the compiled fast path; results are
    byte-identical to the interpreter.  [?schedule] supplies a
    pre-compiled schedule (e.g. from [Flames_engine.Cache]), skipping
    both compilation and — thanks to the schedule's memo — the
    per-request sensitivity sweep.  [~use_compiled:false] forces the
    interpreter and ignores [?schedule] (the [--no-compiled]
    differential baseline).

    [?budget] (default unlimited) is polled at cheap check-points in
    propagation, fit sweeps and candidate enumeration.  A tripped budget
    never turns the run into an error: the result comes back with
    [degraded = true], the stages that were cut short simply contribute
    less (see the {!result} field docs).  With a candidate-only quota
    (no wall/step/env bound) the conflicts are those of the full run, so
    the returned [diagnoses] are a non-empty sound subset of the
    unbudgeted ranking — the property {!Flames_check.Oracle} checks.

    [?model] supplies a pre-compiled constraint model (it must be the
    compilation of exactly this [netlist] under exactly this [config] —
    e.g. obtained from [Flames_engine.Cache]); without it the netlist is
    compiled afresh.  Passing the cached compilation of the same input
    leaves the result bit-for-bit unchanged.

    When [simulate_predictions] is [true] (the default) and the circuit is
    solvable, nominal node voltages computed by the DC simulator are added
    as model-side predictions — the stand-in for the global predictions
    the paper's engine obtains from its models, which pure local
    propagation cannot derive on circuits with simultaneous constraints
    (bias networks).  Each prediction holds under the assumptions of the
    components whose sensitivity on the node reaches
    [sensitivity_threshold] (relative to the strongest, default 0.02);
    its fuzzy width is the tolerance-induced voltage uncertainty, at
    least [prediction_floor] volts (default 1 mV).

    Simulator predictions carry certainty [prediction_degree] (default
    0.95, not 1): they are linearisations at the nominal operating point,
    so their assumption sets can be incomplete when a fault moves the
    operating region — capping their degree guarantees that the sound
    degree-1 conflicts found by local constraint propagation are never
    subsumed by an approximate prediction conflict. *)

val run_r :
  ?config:Model.config ->
  ?limits:Propagate.limits ->
  ?model:Model.t ->
  ?schedule:Schedule.t ->
  ?use_compiled:bool ->
  ?budget:Budget.t ->
  ?prediction_floor:float ->
  ?sensitivity_threshold:float ->
  ?prediction_degree:float ->
  ?simulate_predictions:bool ->
  Netlist.t ->
  observation list ->
  (result, Err.t) Stdlib.result
(** {!run} with every library exception mapped to a structured
    {!Err.t} — the boundary the engine and the CLI use, so exceptions
    never escape a library call. *)

val healthy : result -> bool
(** No conflict was recorded at all. *)

val suspects_above : result -> float -> string list
(** Components whose suspicion reaches the threshold, ranked. *)

(** {1 Staged access}

    {!run} in separable pieces, for callers that keep propagation state
    alive between measurements ({!Flames_session.Session}).  Composing
    [simulator_predictions] → [full_pass] → [analyze] with the same
    inputs is bit-for-bit {!run}. *)

val simulator_predictions :
  Netlist.t ->
  Model.t ->
  floor:float ->
  threshold:float ->
  (Quantity.t * Interval.t * Flames_atms.Env.t) list
(** Global nominal node-voltage predictions from the DC simulator with
    their supporting assumption environments (finite-difference
    sensitivity); [[]] for externally driven or unsolvable circuits. *)

val guard_quantities : Model.t -> Quantity.t list
(** The quantities appearing in constraint guards, sorted; evidence for
    any of them triggers {!analyze}'s deterministic second pass. *)

val full_pass :
  ?limits:Propagate.limits ->
  ?schedule:Schedule.t ->
  budget:Budget.t ->
  degree:float ->
  model:Model.t ->
  predictions:(Quantity.t * Interval.t * Flames_atms.Env.t) list ->
  observations:observation list ->
  guard_evidence:(Quantity.t * Interval.t) list ->
  unit ->
  Propagate.t
(** One full propagation pass: fresh engine over [model] with the guard
    evidence pinned, [predictions] and then [observations] entered, run
    to quiescence. *)

val analyze :
  ?limits:Propagate.limits ->
  ?schedule:Schedule.t ->
  ?budget:Budget.t ->
  degree:float ->
  model:Model.t ->
  predictions:(Quantity.t * Interval.t * Flames_atms.Env.t) list ->
  prediction:Propagate.t ->
  first:Propagate.t ->
  Netlist.t ->
  observation list ->
  result
(** The post-propagation pipeline shared by {!run} and the session:
    guard evidence is read off [first] (triggering a second {!full_pass}
    when present), symptoms are judged against the [prediction] engine,
    conflicts collected, suspects fitted and candidates ranked under
    [budget] (default unlimited). *)
