(** Models compiled to flat propagation schedules.

    A schedule is the preplanned form of a compiled {!Model}: quantities
    interned to dense ids, constraints lowered to an instruction array
    over flat float buffers (trapezoid parameters as 4 contiguous
    floats, linear coefficients and their reciprocals precomputed), and
    the constraint firing order planned once instead of discovered per
    propagation.  {!Propagate.create} accepts a schedule and then runs
    the compiled fast path; the results are byte-identical to the
    interpreter (enforced by the [compiled-vs-interp] differential
    oracle).

    Schedules are immutable after construction and safe to share across
    engines, sessions and worker domains; they are what
    [Engine.Cache] stores.  The memoized simulator sensitivity report
    (the per-request dominant cost of the warm serve path before this
    existed) is the only mutable state and is lock-protected. *)

module Interval = Flames_fuzzy.Interval
module Env = Flames_atms.Env
module Quantity = Flames_circuit.Quantity

module FTbl : Hashtbl.S with type key = float array
(** Hash table over flat float keys (plain float [=] per slot, generic
    hash) — the consistency-memo representation used by each engine's
    local first level and the schedule's master copy. *)

type flat
(** An immutable published snapshot of the shared consistency memo:
    linear-probing open addressing over one flat float array, so a
    probe costs one hash plus one or two adjacent cache lines.  Never
    mutated after construction — probing needs no synchronisation. *)

val flat_find : flat -> float array -> float
(** Probe a snapshot with a 9-float key; raises [Not_found]. *)

type kernel =
  | Linear of { coeffs : float array; inv : float array; crisp_k : Interval.t }
      (** [inv.(i) = 1. /. coeffs.(i)] precomputed; [crisp_k] the
          constant side as a crisp interval *)
  | Product  (** q0 = q1 ⊗ q2; the target position selects mul or div *)
  | Seed of { nominal : bool; off : int }
      (** generative constraint; its trapezoid lives at
          [seedbuf.(off .. off+3)] as (m1, m2, alpha, beta) *)

type instr = {
  name : string;
  kernel : kernel;
  vars : int array;  (** quantity ids, in [Constr.vars] order *)
  assumptions : Env.t;
  degree : float;
  guards : (int * Interval.t) array;
}

type firing = {
  instr : int;
  target : int;  (** quantity id derived by this firing *)
  tpos : int;  (** index of [target] in the instruction's [vars] *)
  srcs : int array;  (** [vars] minus [tpos], order preserved *)
  fid : int;
      (** dense id of the [(instr, tpos)] pair, shared by every plan
          entry that fires it — the engine's no-op-skip stamps key on it *)
}

type t = private {
  uid : int;  (** unique per schedule; a physical-identity hash key *)
  model : Model.t;
  qty : Quantity.t array;
  qname : string array;  (** pre-rendered conflict reasons, one per id *)
  qindex : (Quantity.t, int) Hashtbl.t;
  instrs : instr array;  (** one per model constraint, model order *)
  plan : firing array array;  (** [plan.(qid)]: firings when qid updates *)
  nfirings : int;  (** bound on [firing.fid] *)
  seeds : int array;  (** generative instruction indices, model order *)
  seedbuf : float array;
  mutable reports : Flames_sim.Sensitivity.node_report list option;
  rlock : Mutex.t;
  fmemo : flat Atomic.t;
      (** shared consistency memo: an immutable-once-published snapshot,
          probed lock-free *)
  mutable mmaster : float FTbl.t;
      (** canonical mutable form behind [fmemo], guarded by [mlock] *)
  mlock : Mutex.t;  (** serialises {!memo_publish} *)
}

val memo_snapshot : t -> flat
(** The current shared consistency-memo snapshot.  Entries are pure
    functions of their key, valid across engines, threads and
    domains. *)

val memo_publish : t -> float FTbl.t -> unit
(** Merge an engine's locally computed entries into a fresh copy of the
    current snapshot and publish it (serialised, release/acquire via the
    atomic reference).  Bounded: once the snapshot reaches its cap,
    publishes become no-ops and novelties stay engine-local — memory is
    traded for recomputation, never correctness. *)

val of_model : Model.t -> t
(** Lower a compiled model into a schedule.  Cheap relative to a
    propagation run; recorded under the [schedule_compile] span
    ([t_schedule_compile] in wide events). *)

val compile : ?config:Model.config -> Flames_circuit.Netlist.t -> t
(** [Model.compile] followed by {!of_model}. *)

val model : t -> Model.t

val seed_interval : t -> int -> Interval.t
(** Rebuild the trapezoid stored at the given [seedbuf] offset. *)

val raw_reports :
  Flames_circuit.Netlist.t -> Flames_sim.Sensitivity.node_report list
(** The sensitivity sweep behind simulator predictions; [[]] for
    externally driven circuits and on simulator failure (same cases
    [Diagnose.simulator_predictions] treats as "no predictions"). *)

val predictions_of_reports :
  Model.t ->
  Flames_sim.Sensitivity.node_report list ->
  floor:float ->
  threshold:float ->
  (Quantity.t * Interval.t * Env.t) list
(** Filter a raw report into prediction triples — shared shape of
    [Diagnose.simulator_predictions]. *)

val predictions :
  t -> floor:float -> threshold:float -> (Quantity.t * Interval.t * Env.t) list
(** Memoized {!raw_reports} for the schedule's own netlist, filtered
    per call.  Thread-safe. *)
