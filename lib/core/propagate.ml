module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency
module Kernel = Flames_fuzzy.Kernel
module Arith = Flames_fuzzy.Arith
module Env = Flames_atms.Env
module Nogood = Flames_atms.Nogood
module Candidates = Flames_atms.Candidates
module Quantity = Flames_circuit.Quantity
module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace

let steps_total =
  Metrics.counter "flames_propagate_steps_total"
    ~help:"Quantities dequeued by the local constraint propagator"

let conflicts_total =
  Metrics.counter "flames_propagate_conflicts_total"
    ~help:"Coincidence conflicts recorded during propagation"

let run_seconds =
  Metrics.histogram "flames_propagate_run_seconds"
    ~help:"Latency of one interpreted propagation run to quiescence"

let schedule_run_seconds =
  Metrics.histogram "flames_schedule_run_seconds"
    ~help:"Latency of one compiled-schedule propagation run to quiescence"

type limits = {
  max_values_per_cell : int;
  max_combinations : int;
  max_steps : int;
  min_conflict_degree : float;
}

let default_limits =
  {
    max_values_per_cell = 12;
    max_combinations = 256;
    max_steps = 100_000;
    min_conflict_degree = 0.02;
  }

(* Consistency memo: the compiled engine's dominant win.  The degree
   between two values depends only on their intervals and their
   observational flags, and the fault sweep recomputes the same pairs
   run after run.  Keys are 9 flat floats (an operation tag plus both
   trapezoids); a scratch probe key is reused across lookups.  Two
   levels: a published snapshot probed lock-free
   ({!Schedule.memo_snapshot}), then a per-engine table of novel
   entries, merged back on {!Schedule.memo_publish} so later engines
   start from everything earlier ones computed. *)
module FTbl = Schedule.FTbl

(* Per-engine state of the compiled fast path.  Cells are the same
   [Value.t list ref]s registered in the public hashtable, indexed by
   the schedule's dense quantity ids, so every read API (values,
   best_value, pp_cell) works unchanged on a compiled engine.
   Quantities outside the model (ad-hoc observations) are interned
   dynamically per engine; the shared schedule is never mutated. *)
type cstate = {
  sched : Schedule.t;
  mutable carr : Value.t list ref array;  (** qid -> cell *)
  mutable versions : int array;  (** qid -> cell mutation count *)
  mutable dyn_names : string array;  (** reasons for dynamic qids *)
  mutable nq : int;
  dynq : (Quantity.t, int) Hashtbl.t;
  gdeg : float array;  (** instr -> cached guard degree *)
  gstamp : int array array;  (** instr -> guard versions; [||] = stale *)
  pinned : Interval.t option array array;  (** instr -> pinned evidence *)
  cqueue : int Queue.t;
  mutable cqueued : bool array;
  memo : float FTbl.t;  (** L1: entries this engine computed itself *)
  l2 : Schedule.flat;
      (** immutable shared snapshot taken at engine creation; probed
          lock-free (see {!Schedule.memo_snapshot}) *)
  probe : float array;
  kscratch : float array;  (** {!Kernel} breakpoint scratch, 8 floats *)
  fstamp : int array array;
      (** fid -> versions of (srcs, target, nogood era) right after the
          firing last ran clean; [[||]] = must run (see [exec_firing]) *)
  fgdeg : float array;  (** fid -> guard degree the stamped firing used *)
  mutable era : int;  (** nogood-db mutation count *)
  mutable dirty : bool;
      (** some insertion since the last reset evicted or filtered a
          resident value — the running firing is not stampable *)
}

type t = {
  model : Model.t;
  limits : limits;
  budget : Budget.t;
  cells : (Quantity.t, Value.t list ref) Hashtbl.t;
  by_var : (Quantity.t, Constr.t list) Hashtbl.t;
  db : Nogood.t;
  queue : Quantity.t Queue.t;
  queued : (Quantity.t, unit) Hashtbl.t;
  cstate : cstate option;
  mutable steps : int;
  mutable seeded : bool;
  mutable truncated : bool;  (** a run stopped at a budget check-point *)
  mutable guard_evidence : (Quantity.t * Interval.t) list;
}

let names t id = Model.assumption_name t.model id

let cell t q =
  match Hashtbl.find_opt t.cells q with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.cells q r;
    r

let create ?(limits = default_limits) ?budget ?schedule model =
  let by_var = Hashtbl.create 64 in
  let cells = Hashtbl.create 64 in
  let cstate =
    match schedule with
    | None ->
      (* interpreter: discover the firing order per run *)
      List.iter
        (fun c ->
          List.iter
            (fun q ->
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt by_var q)
              in
              Hashtbl.replace by_var q (c :: cur))
            (Constr.vars c))
        model.Model.constraints;
      None
    | Some (sched : Schedule.t) ->
      let nq = Array.length sched.Schedule.qty in
      let ni = Array.length sched.Schedule.instrs in
      let carr =
        Array.init nq (fun i ->
            let r = ref [] in
            Hashtbl.add cells sched.Schedule.qty.(i) r;
            r)
      in
      Some
        {
          sched;
          carr;
          versions = Array.make nq 0;
          dyn_names = [||];
          nq;
          dynq = Hashtbl.create 8;
          gdeg = Array.make ni 1.;
          gstamp = Array.make ni [||];
          pinned =
            Array.map
              (fun (ins : Schedule.instr) ->
                Array.make (Array.length ins.Schedule.guards) None)
              sched.Schedule.instrs;
          cqueue = Queue.create ();
          cqueued = Array.make nq false;
          memo = FTbl.create 1024;
          l2 = Schedule.memo_snapshot sched;
          probe = Array.make 9 0.;
          kscratch = Array.make 8 0.;
          fstamp = Array.make sched.Schedule.nfirings [||];
          fgdeg = Array.make sched.Schedule.nfirings 1.;
          era = 0;
          dirty = false;
        }
  in
  {
    model;
    limits;
    budget = (match budget with Some b -> b | None -> Budget.fresh ());
    cells;
    by_var;
    db = Nogood.create ();
    queue = Queue.create ();
    queued = Hashtbl.create 64;
    cstate;
    steps = 0;
    seeded = false;
    truncated = false;
    guard_evidence = [];
  }

let compiled t = Option.is_some t.cstate

let enqueue t q =
  if not (Hashtbl.mem t.queued q) then begin
    Hashtbl.add t.queued q ();
    Queue.add q t.queue
  end

(* Coincidence analysis (fig. 4) between a new and a resident value of the
   same quantity: between a measurement-derived and a model-side value the
   paper's area-based Dc is used, oriented from the observational side;
   between two values of the same side the symmetric possibility of
   matching (height of the pointwise minimum) replaces it, since the
   area ratio is not meaningful when neither value is a reference.
   A conflict of degree 1 − Dc is recorded against the union of the
   environments. *)
let consistency_between a b =
  let open Value in
  let height = Flames_fuzzy.Piecewise.height_of_min a.interval b.interval in
  match (a.observational, b.observational) with
  | true, false ->
    Float.max (Consistency.dc ~measured:a.interval ~nominal:b.interval) height
  | false, true ->
    Float.max (Consistency.dc ~measured:b.interval ~nominal:a.interval) height
  | true, true | false, false -> height

let record_conflict t q (a : Value.t) (b : Value.t) dc =
  let degree =
    Float.min (1. -. dc) (Float.min a.Value.degree b.Value.degree)
  in
  if degree >= t.limits.min_conflict_degree then begin
    let env = Env.union a.Value.env b.Value.env in
    let reason = Format.asprintf "%a" Quantity.pp q in
    if Nogood.record t.db ~reason env degree then
      Metrics.incr conflicts_total
  end

(* A resident value makes a newcomer redundant either by proper
   subsumption or by being an exact duplicate up to derivation history:
   the same interval under the same environment with at least the degree
   carries no new information, whatever path produced it. *)
let redundant (w : Value.t) (v : Value.t) =
  Value.subsumes w v
  || (w.Value.observational = v.Value.observational
     && Env.equal w.Value.env v.Value.env
     && w.Value.degree >= v.Value.degree
     && Interval.equal_rel w.Value.interval v.Value.interval)

(* Insert a value into the quantity's cell.  Returns true when the cell
   gained information (and propagation should continue from q). *)
let add_value t q (v : Value.t) =
  let r = cell t q in
  if List.exists (fun w -> redundant w v) !r then false
  else if Nogood.is_nogood t.db v.Value.env then false
  else begin
    List.iter
      (fun w ->
        let dc = consistency_between v w in
        if dc < 1. then record_conflict t q v w dc)
      !r;
    let kept = v :: List.filter (fun w -> not (redundant v w)) !r in
    let kept = List.sort Value.strength kept in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    let kept = take t.limits.max_values_per_cell kept in
    r := kept;
    (* the value may have been trimmed straight away; only requeue when it
       survived *)
    let survived = List.exists (fun w -> w == v) kept in
    if survived then ignore (Budget.charge_envs t.budget 1);
    survived
  end

let guard_degree t (c : Constr.t) =
  List.fold_left
    (fun acc (q, set) ->
      let pinned =
        List.find_map
          (fun (q', v) -> if Quantity.equal q q' then Some v else None)
          t.guard_evidence
      in
      let best_interval =
        match pinned with
        | Some v -> Some v
        | None -> begin
          (* judge on the strongest observational value (a measurement
             when available), not on every derived echo in the cell *)
          let evidence =
            List.filter (fun v -> v.Value.observational) !(cell t q)
            |> List.sort Value.strength
          in
          match evidence with
          | [] -> None
          | best :: _ -> Some best.Value.interval
        end
      in
      match best_interval with
      | None -> acc
      | Some interval ->
        Float.min acc (Flames_fuzzy.Piecewise.height_of_min interval set))
    1. c.Constr.guards

(* Enumerate antecedent combinations for firing [c] towards [target]. *)
let fire t (c : Constr.t) target =
  let srcs =
    List.filter (fun q -> not (Quantity.equal q target)) (Constr.sources c)
  in
  let usable (v : Value.t) =
    not (Value.History.mem c.Constr.name v.Value.history)
  in
  let candidate_lists =
    List.map
      (fun q -> List.filter_map
          (fun v -> if usable v then Some (q, v) else None)
          !(cell t q))
      srcs
  in
  let gdeg = guard_degree t c in
  if gdeg <= 0. || List.exists (fun l -> l = []) candidate_lists then []
  else begin
    let budget = ref t.limits.max_combinations in
    let results = ref [] in
    let rec combos acc = function
      | [] ->
        if !budget > 0 then begin
          decr budget;
          let lookup q =
            List.find_map
              (fun (q', (v : Value.t)) ->
                if Quantity.equal q q' then Some v.Value.interval else None)
              acc
          in
          match Constr.solve_for c target lookup with
          | None -> ()
          | Some interval ->
            let env, degree, observational, history =
              List.fold_left
                (fun (env, degree, obs, hist) (_, (v : Value.t)) ->
                  ( Env.union env v.Value.env,
                    Float.min degree v.Value.degree,
                    obs || v.Value.observational,
                    Value.History.union hist v.Value.history ))
                (c.Constr.assumptions, Float.min c.Constr.degree gdeg, false,
                 Value.History.empty)
                acc
            in
            if not (Nogood.is_nogood t.db env) then
              results :=
                Value.derived c.Constr.name interval env degree ~observational
                  ~history
                :: !results
        end
      | values :: rest ->
        List.iter (fun choice -> combos (choice :: acc) rest) values
    in
    combos [] candidate_lists;
    !results
  end

(* ------------------------------------------------------------------ *)
(* Compiled fast path.  Every function below is a bit-compatible
   replica of its interpreter counterpart above, specialised to the
   schedule's dense ids: same enumeration orders, same float-operation
   orders, same budget charge points.  The speed comes from the memo
   table, the allocation-light {!Kernel} integration, the precomputed
   firing plan and reason strings, and array-indexed bookkeeping. *)

let qname_of cs qid =
  let stat = Array.length cs.sched.Schedule.qname in
  if qid < stat then cs.sched.Schedule.qname.(qid)
  else cs.dyn_names.(qid - stat)

(* Intern a quantity outside the static schedule (ad-hoc observation
   targets).  The cell ref is shared with the public hashtable so the
   read APIs see it. *)
let qid_of t cs q =
  match Hashtbl.find_opt cs.sched.Schedule.qindex q with
  | Some i -> i
  | None -> begin
    match Hashtbl.find_opt cs.dynq q with
    | Some i -> i
    | None ->
      let i = cs.nq in
      let cap = Array.length cs.carr in
      if i >= cap then begin
        let cap' = (2 * cap) + 8 in
        let carr' = Array.make cap' (ref []) in
        Array.blit cs.carr 0 carr' 0 cap;
        for k = cap to cap' - 1 do
          carr'.(k) <- ref []
        done;
        cs.carr <- carr';
        let versions' = Array.make cap' 0 in
        Array.blit cs.versions 0 versions' 0 cap;
        cs.versions <- versions';
        let queued' = Array.make cap' false in
        Array.blit cs.cqueued 0 queued' 0 cap;
        cs.cqueued <- queued'
      end;
      cs.carr.(i) <- cell t q;
      let stat = Array.length cs.sched.Schedule.qname in
      let dyn = Array.make (i - stat + 1) "" in
      Array.blit cs.dyn_names 0 dyn 0 (Array.length cs.dyn_names);
      dyn.(i - stat) <- Format.asprintf "%a" Quantity.pp q;
      cs.dyn_names <- dyn;
      Hashtbl.add cs.dynq q i;
      cs.nq <- i + 1;
      i
  end

let enqueue_c cs qid =
  if not cs.cqueued.(qid) then begin
    cs.cqueued.(qid) <- true;
    Queue.add qid cs.cqueue
  end

(* O(1) classification of a trapezoid pair, shortcutting the piecewise
   integration in the two overwhelmingly common cases.

   - Cores overlap: [max (a.m1, b.m1)] is a merged breakpoint lying in
     both closed cores, where [Interval.membership] is exactly [1.], so
     [Piecewise.height_of_min] returns exactly [1.]; and [Consistency.dc]
     is clamped to [0, 1], so [max dc height] is exactly [1.] without
     computing dc.  No conflict can be recorded.
   - Supports strictly disjoint: one membership is [0.] at every point,
     so the height is exactly [0.]; and [Interval.overlap] is false, so
     [Consistency.dc] is exactly [0.].

   Everything in between (flank-only overlap) goes through the memoized
   exact kernel. *)
let pair_class (a : Interval.t) (b : Interval.t) =
  if Float.max a.Interval.m1 b.Interval.m1
     <= Float.min a.Interval.m2 b.Interval.m2
  then 1
  else if
    Float.max
      (a.Interval.m1 -. a.Interval.alpha)
      (b.Interval.m1 -. b.Interval.alpha)
    > Float.min
        (a.Interval.m2 +. a.Interval.beta)
        (b.Interval.m2 +. b.Interval.beta)
  then -1
  else 0

let fill_probe cs tag (ai : Interval.t) (bi : Interval.t) =
  let p = cs.probe in
  p.(0) <- tag;
  p.(1) <- ai.Interval.m1;
  p.(2) <- ai.Interval.m2;
  p.(3) <- ai.Interval.alpha;
  p.(4) <- ai.Interval.beta;
  p.(5) <- bi.Interval.m1;
  p.(6) <- bi.Interval.m2;
  p.(7) <- bi.Interval.alpha;
  p.(8) <- bi.Interval.beta

(* Memo keys are canonical so mirrored pairs share one entry: an
   (observational, derived) pair is keyed tag 0 with the measured side
   first regardless of argument order, and the symmetric height-only
   computations (same-flag pairs and guard matching) are keyed tag 2
   with the operands in lexicographic [Float.compare] order —
   [Piecewise.height_of_min] is bit-symmetric, since swapping the
   operands negates both sides of the crossing ratio and IEEE division
   cancels the two sign flips exactly. *)
let compute_obs_c cs (mi : Interval.t) (ni : Interval.t) =
  fill_probe cs 0. mi ni;
  match Schedule.flat_find cs.l2 cs.probe with
  | dc -> dc
  | exception Not_found -> (
    match FTbl.find cs.memo cs.probe with
    | dc -> dc
    | exception Not_found ->
      let dc = Kernel.consist ~scratch:cs.kscratch ~measured:mi ~nominal:ni in
      FTbl.add cs.memo (Array.copy cs.probe) dc;
      dc)

let iv_leq (a : Interval.t) (b : Interval.t) =
  let c = Float.compare a.Interval.m1 b.Interval.m1 in
  if c <> 0 then c < 0
  else
    let c = Float.compare a.Interval.m2 b.Interval.m2 in
    if c <> 0 then c < 0
    else
      let c = Float.compare a.Interval.alpha b.Interval.alpha in
      if c <> 0 then c < 0
      else Float.compare a.Interval.beta b.Interval.beta <= 0

let compute_height_c cs (ai : Interval.t) (bi : Interval.t) =
  let a, b = if iv_leq ai bi then (ai, bi) else (bi, ai) in
  fill_probe cs 2. a b;
  match Schedule.flat_find cs.l2 cs.probe with
  | h -> h
  | exception Not_found -> (
    match FTbl.find cs.memo cs.probe with
    | h -> h
    | exception Not_found ->
      let h = Kernel.height_of_min ~scratch:cs.kscratch a b in
      FTbl.add cs.memo (Array.copy cs.probe) h;
      h)

(* Memoized consistency degree; replicates [consistency_between]. *)
let consistency_c cs (a : Value.t) (b : Value.t) =
  let ai = a.Value.interval and bi = b.Value.interval in
  match pair_class ai bi with
  | 1 -> 1.
  | -1 -> 0.
  | _ -> (
    match (a.Value.observational, b.Value.observational) with
    | true, false -> compute_obs_c cs ai bi
    | false, true -> compute_obs_c cs bi ai
    | true, true | false, false -> compute_height_c cs ai bi)

(* Memoized possibility of matching against a (constant) guard set. *)
let height_c cs (evidence : Interval.t) (set : Interval.t) =
  match pair_class evidence set with
  | 1 -> 1.
  | -1 -> 0.
  | _ -> compute_height_c cs evidence set

let record_conflict_c t cs qid (a : Value.t) (b : Value.t) dc =
  let degree =
    Float.min (1. -. dc) (Float.min a.Value.degree b.Value.degree)
  in
  if degree >= t.limits.min_conflict_degree then begin
    let env = Env.union a.Value.env b.Value.env in
    let reason = qname_of cs qid in
    if Nogood.record t.db ~reason env degree then begin
      cs.era <- cs.era + 1;
      Metrics.incr conflicts_total
    end
  end

(* [redundant] with the conjuncts reordered cheapest-first (same truth
   table): the observational flag and degree compare are two loads, the
   interval containment four float compares, and the [History.subset]
   string-set walk — the interpreter's hidden cost — runs only on pairs
   that pass everything else. *)
let redundant_c (w : Value.t) (v : Value.t) =
  w.Value.observational = v.Value.observational
  && w.Value.degree >= v.Value.degree
  && ((Interval.contains v.Value.interval w.Value.interval
      && Env.subset w.Value.env v.Value.env
      && Value.History.subset w.Value.history v.Value.history)
     || (Env.equal w.Value.env v.Value.env
        && Interval.equal_rel w.Value.interval v.Value.interval))

let add_value_c t cs qid (v : Value.t) =
  let r = cs.carr.(qid) in
  if List.exists (fun w -> redundant_c w v) !r then false
  else if Nogood.is_nogood t.db v.Value.env then false
  else begin
    List.iter
      (fun w ->
        let dc = consistency_c cs v w in
        if dc < 1. then record_conflict_c t cs qid v w dc)
      !r;
    (* One fused pass replacing the interpreter's filter + stable sort:
       residents are kept sorted by [Value.strength] as an invariant, so
       inserting [v] before the first resident it does not lose to is
       exactly what the stable sort of [v :: filtered] produces.
       Filtered-out residents flag the cell dirty: the running firing
       lost an absorption witness and must not be stamped as a no-op. *)
    let rec ins placed = function
      | [] -> if placed then [] else [ v ]
      | w :: rest ->
        if redundant_c v w then begin
          cs.dirty <- true;
          ins placed rest
        end
        else if placed then w :: ins placed rest
        else if Value.strength v w <= 0 then v :: w :: ins true rest
        else w :: ins placed rest
    in
    let kept = ins false !r in
    let rec take n = function
      | [] -> []
      | x :: rest ->
        if n = 0 then begin
          cs.dirty <- true;
          []
        end
        else x :: take (n - 1) rest
    in
    let kept = take t.limits.max_values_per_cell kept in
    r := kept;
    cs.versions.(qid) <- cs.versions.(qid) + 1;
    let survived = List.exists (fun w -> w == v) kept in
    if survived then ignore (Budget.charge_envs t.budget 1);
    survived
  end

(* Guard degree with a version-stamped cache: recomputed only when some
   guard quantity's cell changed since the last evaluation (the
   interpreter recomputes on every firing).  Over-invalidation is safe;
   the stamp tracks exactly the cells the computation reads. *)
let guard_degree_c cs i =
  let ins = cs.sched.Schedule.instrs.(i) in
  let guards = ins.Schedule.guards in
  let ng = Array.length guards in
  if ng = 0 then 1.
  else begin
    let stamp = cs.gstamp.(i) in
    let fresh =
      Array.length stamp = ng
      &&
      let ok = ref true in
      Array.iteri
        (fun gi (qid, _) -> if stamp.(gi) <> cs.versions.(qid) then ok := false)
        guards;
      !ok
    in
    if fresh then cs.gdeg.(i)
    else begin
      let acc = ref 1. in
      let stamp = Array.make ng 0 in
      Array.iteri
        (fun gi (qid, set) ->
          stamp.(gi) <- cs.versions.(qid);
          let best_interval =
            match cs.pinned.(i).(gi) with
            | Some v -> Some v
            | None -> begin
              let evidence =
                List.filter (fun v -> v.Value.observational) !(cs.carr.(qid))
                |> List.sort Value.strength
              in
              match evidence with
              | [] -> None
              | best :: _ -> Some best.Value.interval
            end
          in
          match best_interval with
          | None -> ()
          | Some interval -> acc := Float.min !acc (height_c cs interval set))
        guards;
      cs.gstamp.(i) <- stamp;
      cs.gdeg.(i) <- !acc;
      !acc
    end
  end

(* Solve one instruction for the target at [tpos] given the chosen
   source values; replicates [Constr.solve_for] including its float
   gather order (terms added last-to-first onto crisp 0). *)
let crisp0 = Interval.crisp 0.

let solve_c (ins : Schedule.instr) tpos (chosen : Value.t array) =
  match ins.Schedule.kernel with
  | Schedule.Linear { coeffs; inv; crisp_k } ->
    let n = Array.length coeffs in
    let total = ref crisp0 in
    for i = n - 1 downto 0 do
      if i <> tpos then begin
        let j = if i < tpos then i else i - 1 in
        total :=
          Arith.add !total (Arith.scale coeffs.(i) chosen.(j).Value.interval)
      end
    done;
    Some (Arith.scale inv.(tpos) (Arith.sub crisp_k !total))
  | Schedule.Product -> begin
    let a = chosen.(0).Value.interval and b = chosen.(1).Value.interval in
    if tpos = 0 then Some (Arith.mul a b)
    else (try Some (Arith.div a b) with Arith.Undefined _ -> None)
  end
  | Schedule.Seed _ -> None

let fire_c t cs (f : Schedule.firing) ~gdeg =
  let ins = cs.sched.Schedule.instrs.(f.Schedule.instr) in
  let name = ins.Schedule.name in
  let nsrc = Array.length f.Schedule.srcs in
  let cands =
    Array.map
      (fun qid ->
        Array.of_list
          (List.filter
             (fun (v : Value.t) -> not (Value.History.mem name v.Value.history))
             !(cs.carr.(qid))))
      f.Schedule.srcs
  in
  let some_empty = ref false in
  Array.iter (fun c -> if Array.length c = 0 then some_empty := true) cands;
  if gdeg <= 0. || !some_empty then []
  else begin
    let budget = ref t.limits.max_combinations in
    let results = ref [] in
    let chosen = Array.make nsrc cands.(0).(0) in
    (* descend first source outermost; leaves are processed while the
       combination budget lasts, and results are prepended, exactly as
       the interpreter's [combos] does *)
    let rec combos si =
      if si = nsrc then begin
        if !budget > 0 then begin
          decr budget;
          match solve_c ins f.Schedule.tpos chosen with
          | None -> ()
          | Some interval ->
            let env = ref ins.Schedule.assumptions
            and degree = ref (Float.min ins.Schedule.degree gdeg)
            and obs = ref false
            and hist = ref Value.History.empty in
            (* the interpreter folds its accumulator list, which holds
               the choices in reverse source order *)
            for j = nsrc - 1 downto 0 do
              let v = chosen.(j) in
              env := Env.union !env v.Value.env;
              degree := Float.min !degree v.Value.degree;
              obs := !obs || v.Value.observational;
              hist := Value.History.union !hist v.Value.history
            done;
            if not (Nogood.is_nogood t.db !env) then
              results :=
                Value.derived name interval !env !degree ~observational:!obs
                  ~history:!hist
                :: !results
        end
      end
      else
        Array.iter
          (fun v ->
            if !budget > 0 then begin
              chosen.(si) <- v;
              combos (si + 1)
            end)
          cands.(si)
    in
    combos 0;
    !results
  end

let seed_c t cs =
  if not t.seeded then begin
    t.seeded <- true;
    Array.iter
      (fun i ->
        let ins = cs.sched.Schedule.instrs.(i) in
        match ins.Schedule.kernel with
        | Schedule.Seed { nominal; off } ->
          let set = Schedule.seed_interval cs.sched off in
          let qid = ins.Schedule.vars.(0) in
          let v =
            if nominal then Value.given set ins.Schedule.assumptions
            else Value.bound set ins.Schedule.assumptions
          in
          if add_value_c t cs qid v then enqueue_c cs qid
        | Schedule.Linear _ | Schedule.Product -> ())
      cs.sched.Schedule.seeds
  end

(* ------------------------------------------------------------------ *)

let seed t =
  match t.cstate with
  | Some cs -> seed_c t cs
  | None ->
    if not t.seeded then begin
      t.seeded <- true;
      List.iter
        (fun (c : Constr.t) ->
          match c.Constr.form with
          | Constr.Nominal (q, set) ->
            let v = Value.given set c.Constr.assumptions in
            if add_value t q v then enqueue t q
          | Constr.Bound (q, set) ->
            let v = Value.bound set c.Constr.assumptions in
            if add_value t q v then enqueue t q
          | Constr.Linear _ | Constr.Product _ -> ())
        t.model.Model.constraints
    end

let observe t q interval =
  seed t;
  match t.cstate with
  | Some cs ->
    let qid = qid_of t cs q in
    if add_value_c t cs qid (Value.measured interval) then enqueue_c cs qid
  | None -> if add_value t q (Value.measured interval) then enqueue t q

let predict t ?degree q interval env =
  seed t;
  match t.cstate with
  | Some cs ->
    let qid = qid_of t cs q in
    if add_value_c t cs qid (Value.given ?degree interval env) then
      enqueue_c cs qid
  | None ->
    if add_value t q (Value.given ?degree interval env) then enqueue t q

(* Possibility that the guards of [c] are satisfied, judged on the
   observational evidence available for each guard quantity; a guard
   without evidence passes (the engine assumes the nominal operating
   region a priori, as the paper does).  Pinning evidence invalidates
   the compiled guard cache. *)
let set_guard_evidence t evidence =
  t.guard_evidence <- evidence;
  match t.cstate with
  | None -> ()
  | Some cs ->
    Array.iteri
      (fun i (ins : Schedule.instr) ->
        let guards = ins.Schedule.guards in
        if Array.length guards > 0 then begin
          cs.pinned.(i) <-
            Array.map
              (fun (qid, _) ->
                let q = cs.sched.Schedule.qty.(qid) in
                List.find_map
                  (fun (q', v) -> if Quantity.equal q q' then Some v else None)
                  evidence)
              guards;
          cs.gstamp.(i) <- [||]
        end)
      cs.sched.Schedule.instrs

exception Step_budget
exception Budget_tripped

(* Execute one planned firing, or skip it when it is provably a no-op.

   A firing is a pure function of its source cells, the target's
   residents, the instruction's guard degree and the nogood database.
   If none of those changed since the firing last ran — versions of the
   sources and target, the nogood era and the guard degree all match
   the stamp recorded then — re-running it reproduces values that are
   each absorbed without any state change: every result is either
   resident (rejected by the redundancy scan before any conflict is
   examined) or blocked by the monotonically grown nogood database.

   The stamp is only recorded when that absorption argument is airtight:
   no insertion during the firing truncated or filtered a resident away
   (either can remove an absorption witness, [cs.dirty]), and the target
   is not one of its own sources (the candidate snapshot would differ on
   re-run).  The interpreter re-fires unconditionally and re-derives
   the same values just to throw them away — this is where the compiled
   engine stops paying for that. *)
let exec_firing t cs (f : Schedule.firing) =
  let gdeg = guard_degree_c cs f.Schedule.instr in
  let fid = f.Schedule.fid in
  let st = cs.fstamp.(fid) in
  let nsrc = Array.length f.Schedule.srcs in
  let unchanged =
    Array.length st = nsrc + 2
    && Int64.bits_of_float cs.fgdeg.(fid) = Int64.bits_of_float gdeg
    &&
    let ok = ref (st.(nsrc) = cs.versions.(f.Schedule.target)
                  && st.(nsrc + 1) = cs.era) in
    Array.iteri
      (fun i s -> if st.(i) <> cs.versions.(s) then ok := false)
      f.Schedule.srcs;
    !ok
  in
  if not unchanged then begin
    cs.dirty <- false;
    List.iter
      (fun v ->
        if add_value_c t cs f.Schedule.target v then
          enqueue_c cs f.Schedule.target)
      (fire_c t cs f ~gdeg);
    if
      cs.dirty
      || Array.exists (fun s -> s = f.Schedule.target) f.Schedule.srcs
    then cs.fstamp.(fid) <- [||]
    else begin
      let st =
        match cs.fstamp.(fid) with
        | st when Array.length st = nsrc + 2 -> st
        | _ ->
          let st = Array.make (nsrc + 2) 0 in
          cs.fstamp.(fid) <- st;
          st
      in
      Array.iteri (fun i s -> st.(i) <- cs.versions.(s)) f.Schedule.srcs;
      st.(nsrc) <- cs.versions.(f.Schedule.target);
      st.(nsrc + 1) <- cs.era;
      cs.fgdeg.(fid) <- gdeg
    end
  end

let run_interpreted t =
  seed t;
  let steps0 = t.steps in
  let finish () = Metrics.incr ~by:(t.steps - steps0) steps_total in
  try
    while not (Queue.is_empty t.queue) do
      let q = Queue.pop t.queue in
      Hashtbl.remove t.queued q;
      t.steps <- t.steps + 1;
      if t.steps > t.limits.max_steps then raise Step_budget;
      if
        (not (Budget.charge_steps t.budget 1))
        || Budget.tripped t.budget
      then raise Budget_tripped;
      let constraints = Option.value ~default:[] (Hashtbl.find_opt t.by_var q) in
      List.iter
        (fun c ->
          if not (Constr.is_generative c) then
            List.iter
              (fun target ->
                if not (Quantity.equal target q) then
                  List.iter
                    (fun v -> if add_value t target v then enqueue t target)
                    (fire t c target))
              (Constr.vars c))
        constraints
    done;
    finish ()
  with
  | Step_budget ->
    finish ();
    t.truncated <- true;
    Flames_obs.Log.warn "propagation stopped after %d steps (budget exhausted)"
      t.steps
  | Budget_tripped ->
    (* A cooperative budget stop is an expected degradation, not an
       anomaly: stop quietly, the caller reads the trips off the budget. *)
    finish ();
    t.truncated <- true

let run_compiled t cs =
  seed_c t cs;
  let steps0 = t.steps in
  let finish () =
    Metrics.incr ~by:(t.steps - steps0) steps_total;
    (* Seed the next engine's shared snapshot with what this run had to
       compute itself; a handful of novelties is not worth a copy. *)
    if FTbl.length cs.memo >= 512 then Schedule.memo_publish cs.sched cs.memo
  in
  let plan = cs.sched.Schedule.plan in
  let nplan = Array.length plan in
  try
    while not (Queue.is_empty cs.cqueue) do
      let qid = Queue.pop cs.cqueue in
      cs.cqueued.(qid) <- false;
      t.steps <- t.steps + 1;
      if t.steps > t.limits.max_steps then raise Step_budget;
      if
        (not (Budget.charge_steps t.budget 1))
        || Budget.tripped t.budget
      then raise Budget_tripped;
      if qid < nplan then Array.iter (exec_firing t cs) plan.(qid)
    done;
    finish ()
  with
  | Step_budget ->
    finish ();
    t.truncated <- true;
    Flames_obs.Log.warn "propagation stopped after %d steps (budget exhausted)"
      t.steps
  | Budget_tripped ->
    finish ();
    t.truncated <- true

let run t =
  match t.cstate with
  | Some cs ->
    Trace.with_span ~record:schedule_run_seconds "schedule_run" @@ fun () ->
    run_compiled t cs
  | None ->
    Trace.with_span ~record:run_seconds "propagate.run" @@ fun () ->
    run_interpreted t

(* A pure read: unlike [cell], a query for an unknown quantity must not
   register an empty cell, so quiescent engines (e.g. the cached
   nominal-prediction engine, shared across requests) can be read
   concurrently. *)
let values t q =
  match Hashtbl.find_opt t.cells q with
  | Some r -> List.sort Value.strength !r
  | None -> []

let best_value t ?observational q =
  let vs = values t q in
  let vs =
    match observational with
    | None -> vs
    | Some side -> List.filter (fun v -> v.Value.observational = side) vs
  in
  let tightest best v =
    match best with
    | None -> Some v
    | Some b ->
      if Interval.width v.Value.interval < Interval.width b.Value.interval then
        Some v
      else best
  in
  List.fold_left tightest None vs

let conflicts t = Candidates.of_nogoods (Nogood.entries t.db)
let nogood_db t = t.db
let model t = t.model
let steps_used t = t.steps
let truncated t = t.truncated
let budget t = t.budget

let pp_cell t ppf q =
  Format.fprintf ppf "%a:@." Quantity.pp q;
  List.iter
    (fun v -> Format.fprintf ppf "  %a@." (Value.pp ~names:(names t)) v)
    (values t q)
