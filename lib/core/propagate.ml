module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency
module Env = Flames_atms.Env
module Nogood = Flames_atms.Nogood
module Candidates = Flames_atms.Candidates
module Quantity = Flames_circuit.Quantity
module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace

let steps_total =
  Metrics.counter "flames_propagate_steps_total"
    ~help:"Quantities dequeued by the local constraint propagator"

let conflicts_total =
  Metrics.counter "flames_propagate_conflicts_total"
    ~help:"Coincidence conflicts recorded during propagation"

let run_seconds =
  Metrics.histogram "flames_propagate_run_seconds"
    ~help:"Latency of one propagation run to quiescence"

type limits = {
  max_values_per_cell : int;
  max_combinations : int;
  max_steps : int;
  min_conflict_degree : float;
}

let default_limits =
  {
    max_values_per_cell = 12;
    max_combinations = 256;
    max_steps = 100_000;
    min_conflict_degree = 0.02;
  }

type t = {
  model : Model.t;
  limits : limits;
  budget : Budget.t;
  cells : (Quantity.t, Value.t list ref) Hashtbl.t;
  by_var : (Quantity.t, Constr.t list) Hashtbl.t;
  db : Nogood.t;
  queue : Quantity.t Queue.t;
  queued : (Quantity.t, unit) Hashtbl.t;
  mutable steps : int;
  mutable seeded : bool;
  mutable truncated : bool;  (** a run stopped at a budget check-point *)
  mutable guard_evidence : (Quantity.t * Interval.t) list;
}

let names t id = Model.assumption_name t.model id

let cell t q =
  match Hashtbl.find_opt t.cells q with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.cells q r;
    r

let create ?(limits = default_limits) ?budget model =
  let by_var = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun q ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_var q) in
          Hashtbl.replace by_var q (c :: cur))
        (Constr.vars c))
    model.Model.constraints;
  {
    model;
    limits;
    budget = (match budget with Some b -> b | None -> Budget.fresh ());
    cells = Hashtbl.create 64;
    by_var;
    db = Nogood.create ();
    queue = Queue.create ();
    queued = Hashtbl.create 64;
    steps = 0;
    seeded = false;
    truncated = false;
    guard_evidence = [];
  }

let enqueue t q =
  if not (Hashtbl.mem t.queued q) then begin
    Hashtbl.add t.queued q ();
    Queue.add q t.queue
  end

(* Coincidence analysis (fig. 4) between a new and a resident value of the
   same quantity: between a measurement-derived and a model-side value the
   paper's area-based Dc is used, oriented from the observational side;
   between two values of the same side the symmetric possibility of
   matching (height of the pointwise minimum) replaces it, since the
   area ratio is not meaningful when neither value is a reference.
   A conflict of degree 1 − Dc is recorded against the union of the
   environments. *)
let consistency_between a b =
  let open Value in
  let height = Flames_fuzzy.Piecewise.height_of_min a.interval b.interval in
  match (a.observational, b.observational) with
  | true, false ->
    Float.max (Consistency.dc ~measured:a.interval ~nominal:b.interval) height
  | false, true ->
    Float.max (Consistency.dc ~measured:b.interval ~nominal:a.interval) height
  | true, true | false, false -> height

let record_conflict t q (a : Value.t) (b : Value.t) dc =
  let degree =
    Float.min (1. -. dc) (Float.min a.Value.degree b.Value.degree)
  in
  if degree >= t.limits.min_conflict_degree then begin
    let env = Env.union a.Value.env b.Value.env in
    let reason = Format.asprintf "%a" Quantity.pp q in
    if Nogood.record t.db ~reason env degree then
      Metrics.incr conflicts_total
  end

(* A resident value makes a newcomer redundant either by proper
   subsumption or by being an exact duplicate up to derivation history:
   the same interval under the same environment with at least the degree
   carries no new information, whatever path produced it. *)
let redundant (w : Value.t) (v : Value.t) =
  Value.subsumes w v
  || (w.Value.observational = v.Value.observational
     && Env.equal w.Value.env v.Value.env
     && w.Value.degree >= v.Value.degree
     && Interval.equal_rel w.Value.interval v.Value.interval)

(* Insert a value into the quantity's cell.  Returns true when the cell
   gained information (and propagation should continue from q). *)
let add_value t q (v : Value.t) =
  let r = cell t q in
  if List.exists (fun w -> redundant w v) !r then false
  else if Nogood.is_nogood t.db v.Value.env then false
  else begin
    List.iter
      (fun w ->
        let dc = consistency_between v w in
        if dc < 1. then record_conflict t q v w dc)
      !r;
    let kept = v :: List.filter (fun w -> not (redundant v w)) !r in
    let kept = List.sort Value.strength kept in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    let kept = take t.limits.max_values_per_cell kept in
    r := kept;
    (* the value may have been trimmed straight away; only requeue when it
       survived *)
    let survived = List.exists (fun w -> w == v) kept in
    if survived then ignore (Budget.charge_envs t.budget 1);
    survived
  end

(* Possibility that the guards of [c] are satisfied, judged on the
   observational evidence available for each guard quantity; a guard
   without evidence passes (the engine assumes the nominal operating
   region a priori, as the paper does). *)
let set_guard_evidence t evidence = t.guard_evidence <- evidence

let guard_degree t (c : Constr.t) =
  List.fold_left
    (fun acc (q, set) ->
      let pinned =
        List.find_map
          (fun (q', v) -> if Quantity.equal q q' then Some v else None)
          t.guard_evidence
      in
      let best_interval =
        match pinned with
        | Some v -> Some v
        | None -> begin
          (* judge on the strongest observational value (a measurement
             when available), not on every derived echo in the cell *)
          let evidence =
            List.filter (fun v -> v.Value.observational) !(cell t q)
            |> List.sort Value.strength
          in
          match evidence with
          | [] -> None
          | best :: _ -> Some best.Value.interval
        end
      in
      match best_interval with
      | None -> acc
      | Some interval ->
        Float.min acc (Flames_fuzzy.Piecewise.height_of_min interval set))
    1. c.Constr.guards

(* Enumerate antecedent combinations for firing [c] towards [target]. *)
let fire t (c : Constr.t) target =
  let srcs =
    List.filter (fun q -> not (Quantity.equal q target)) (Constr.sources c)
  in
  let usable (v : Value.t) =
    not (Value.History.mem c.Constr.name v.Value.history)
  in
  let candidate_lists =
    List.map
      (fun q -> List.filter_map
          (fun v -> if usable v then Some (q, v) else None)
          !(cell t q))
      srcs
  in
  let gdeg = guard_degree t c in
  if gdeg <= 0. || List.exists (fun l -> l = []) candidate_lists then []
  else begin
    let budget = ref t.limits.max_combinations in
    let results = ref [] in
    let rec combos acc = function
      | [] ->
        if !budget > 0 then begin
          decr budget;
          let lookup q =
            List.find_map
              (fun (q', (v : Value.t)) ->
                if Quantity.equal q q' then Some v.Value.interval else None)
              acc
          in
          match Constr.solve_for c target lookup with
          | None -> ()
          | Some interval ->
            let env, degree, observational, history =
              List.fold_left
                (fun (env, degree, obs, hist) (_, (v : Value.t)) ->
                  ( Env.union env v.Value.env,
                    Float.min degree v.Value.degree,
                    obs || v.Value.observational,
                    Value.History.union hist v.Value.history ))
                (c.Constr.assumptions, Float.min c.Constr.degree gdeg, false,
                 Value.History.empty)
                acc
            in
            if not (Nogood.is_nogood t.db env) then
              results :=
                Value.derived c.Constr.name interval env degree ~observational
                  ~history
                :: !results
        end
      | values :: rest ->
        List.iter (fun choice -> combos (choice :: acc) rest) values
    in
    combos [] candidate_lists;
    !results
  end

let seed t =
  if not t.seeded then begin
    t.seeded <- true;
    List.iter
      (fun (c : Constr.t) ->
        match c.Constr.form with
        | Constr.Nominal (q, set) ->
          let v = Value.given set c.Constr.assumptions in
          if add_value t q v then enqueue t q
        | Constr.Bound (q, set) ->
          let v = Value.bound set c.Constr.assumptions in
          if add_value t q v then enqueue t q
        | Constr.Linear _ | Constr.Product _ -> ())
      t.model.Model.constraints
  end

let observe t q interval =
  seed t;
  if add_value t q (Value.measured interval) then enqueue t q

let predict t ?degree q interval env =
  seed t;
  if add_value t q (Value.given ?degree interval env) then enqueue t q

let run t =
  Trace.with_span ~record:run_seconds "propagate.run" @@ fun () ->
  seed t;
  let steps0 = t.steps in
  let exception Budget in
  let exception Tripped in
  let finish () = Metrics.incr ~by:(t.steps - steps0) steps_total in
  try
    while not (Queue.is_empty t.queue) do
      let q = Queue.pop t.queue in
      Hashtbl.remove t.queued q;
      t.steps <- t.steps + 1;
      if t.steps > t.limits.max_steps then raise Budget;
      if
        (not (Budget.charge_steps t.budget 1))
        || Budget.tripped t.budget
      then raise Tripped;
      let constraints = Option.value ~default:[] (Hashtbl.find_opt t.by_var q) in
      List.iter
        (fun c ->
          if not (Constr.is_generative c) then
            List.iter
              (fun target ->
                if not (Quantity.equal target q) then
                  List.iter
                    (fun v -> if add_value t target v then enqueue t target)
                    (fire t c target))
              (Constr.vars c))
        constraints
    done;
    finish ()
  with
  | Budget ->
    finish ();
    t.truncated <- true;
    Flames_obs.Log.warn "propagation stopped after %d steps (budget exhausted)"
      t.steps
  | Tripped ->
    (* A cooperative budget stop is an expected degradation, not an
       anomaly: stop quietly, the caller reads the trips off the budget. *)
    finish ();
    t.truncated <- true

let values t q = List.sort Value.strength !(cell t q)

let best_value t ?observational q =
  let vs = values t q in
  let vs =
    match observational with
    | None -> vs
    | Some side -> List.filter (fun v -> v.Value.observational = side) vs
  in
  let tightest best v =
    match best with
    | None -> Some v
    | Some b ->
      if Interval.width v.Value.interval < Interval.width b.Value.interval then
        Some v
      else best
  in
  List.fold_left tightest None vs

let conflicts t = Candidates.of_nogoods (Nogood.entries t.db)
let nogood_db t = t.db
let model t = t.model
let steps_used t = t.steps
let truncated t = t.truncated
let budget t = t.budget

let pp_cell t ppf q =
  Format.fprintf ppf "%a:@." Quantity.pp q;
  List.iter
    (fun v -> Format.fprintf ppf "  %a@." (Value.pp ~names:(names t)) v)
    (values t q)
