type t =
  | Singular_system
  | No_convergence of string
  | Ill_formed of string
  | Parse_error of { file : string option; line : int; message : string }
  | Invalid_interval of string
  | Budget_exceeded of Budget.trip list
  | Worker_crashed of { attempts : int }
  | Breaker_open of string
  | Cancelled
  | Timed_out
  | Unexpected of string

exception Error of t

let of_exn = function
  | Flames_sim.Linalg.Singular -> Singular_system
  | Flames_sim.Mna.No_convergence m -> No_convergence m
  | Flames_circuit.Netlist.Ill_formed m -> Ill_formed m
  | Flames_fuzzy.Interval.Invalid m -> Invalid_interval m
  | Error e -> e
  | Failure m -> Unexpected m
  | e -> Unexpected (Printexc.to_string e)

let retryable = function
  | Worker_crashed _ | Unexpected _ -> true
  | Singular_system | No_convergence _ | Ill_formed _ | Parse_error _
  | Invalid_interval _ | Budget_exceeded _ | Breaker_open _ | Cancelled
  | Timed_out ->
    false

let to_string = function
  | Singular_system -> "singular system matrix"
  | No_convergence m -> Printf.sprintf "no convergence: %s" m
  | Ill_formed m -> Printf.sprintf "ill-formed netlist: %s" m
  | Parse_error { file; line; message } ->
    let where =
      match file with
      | Some f -> Printf.sprintf "%s, line %d" f line
      | None -> Printf.sprintf "line %d" line
    in
    Printf.sprintf "parse error (%s): %s" where message
  | Invalid_interval m -> Printf.sprintf "invalid interval: %s" m
  | Budget_exceeded trips ->
    Printf.sprintf "budget exceeded (%s)"
      (String.concat "," (List.map Budget.trip_label trips))
  | Worker_crashed { attempts } ->
    Printf.sprintf "worker crashed (%d attempt%s)" attempts
      (if attempts = 1 then "" else "s")
  | Breaker_open fp -> Printf.sprintf "circuit breaker open for %s" fp
  | Cancelled -> "cancelled"
  | Timed_out -> "timed out"
  | Unexpected m -> Printf.sprintf "unexpected failure: %s" m

(* A stable machine-readable tag, for metrics labels and test matching. *)
let label = function
  | Singular_system -> "singular"
  | No_convergence _ -> "no-convergence"
  | Ill_formed _ -> "ill-formed"
  | Parse_error _ -> "parse"
  | Invalid_interval _ -> "invalid-interval"
  | Budget_exceeded _ -> "budget"
  | Worker_crashed _ -> "crashed"
  | Breaker_open _ -> "breaker-open"
  | Cancelled -> "cancelled"
  | Timed_out -> "timed-out"
  | Unexpected _ -> "unexpected"

let pp ppf e = Format.pp_print_string ppf (to_string e)

let guard f = match f () with v -> Ok v | exception e -> Result.error (of_exn e)
