module Interval = Flames_fuzzy.Interval
module Env = Flames_atms.Env
module Quantity = Flames_circuit.Quantity
module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace

(* A model compiled to a flat propagation schedule.

   [Model.compile] produces the constraint list the interpreter in
   {!Propagate} walks on every run: association lists keyed by
   [Quantity.t] (polymorphic hash), per-firing list filtering to find
   the sources, [Format] calls to render conflict reasons, and a fresh
   [1. /. ct] division per linear gather.  A schedule performs all of
   that discovery once:

   - quantities are interned to dense integer ids ([qty] / [qindex]),
     with conflict-reason strings pre-rendered per id ([qname]);
   - every constraint becomes one {!instr} whose variables are id
     arrays and whose linear coefficients (plus their precomputed
     reciprocals) sit in flat float arrays;
   - generative constraints are seed instructions over [seedbuf], a
     flat buffer of 4 contiguous floats per trapezoid (m1, m2, alpha,
     beta);
   - the firing order the interpreter discovers per dequeued quantity
     (reverse model order of the constraints mentioning it, then each
     non-dequeued variable as target) is planned once into
     [plan.(qid)].

   The numeric semantics are untouched: a compiled engine must produce
   byte-identical values, conflicts and rankings to the interpreter
   (enforced by [Oracle.check_compiled]).  A schedule is immutable
   after construction and safe to share across engines and domains;
   the only mutable state is the memoized sensitivity report, guarded
   by [rlock]. *)

(* Consistency-memo key: an operation tag plus the two trapezoids, as 9
   flat floats.  See {!Propagate}'s fast path for the canonicalisation;
   the table lives here so every engine compiled from one schedule
   shares the entries — the fault sweep re-derives mostly identical
   values run after run.  Plain float [=] per slot is sound: no NaN
   reaches a key, and the [-0.]/[0.] aliasing it introduces is
   value-safe (the kernels compute equal degrees for both). *)
module FKey = struct
  type t = float array

  let equal (a : float array) (b : float array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i = n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash (a : float array) = Hashtbl.hash a
end

module FTbl = Hashtbl.Make (FKey)

(* The published form of the shared memo: linear-probing open
   addressing over one flat float array, 10 slots per entry (9 key
   floats then the value), [nan] in the first key slot marking empty.
   A probe costs one hash and one or two adjacent cache lines, against
   the four dependent loads of a bucket-chained table — the probe IS
   the steady-state cost of the fast path, so this representation is
   what makes the shared memo pay.  Built at ≤50% load; never mutated
   after construction, hence probed without synchronisation.  [nan]
   can mark empty because keys never contain NaN ([Interval.make]
   rejects them, tags are constants) and values are degrees in
   [0, 1]. *)
type flat = { mask : int; slots : float array }

let flat_empty = { mask = 0; slots = Array.make 10 nan }

let flat_find f (p : float array) =
  let mask = f.mask and slots = f.slots in
  let rec go idx =
    let base = idx * 10 in
    let k = slots.(base) in
    if k <> k then raise Not_found
    else if
      k = p.(0)
      && slots.(base + 1) = p.(1)
      && slots.(base + 2) = p.(2)
      && slots.(base + 3) = p.(3)
      && slots.(base + 4) = p.(4)
      && slots.(base + 5) = p.(5)
      && slots.(base + 6) = p.(6)
      && slots.(base + 7) = p.(7)
      && slots.(base + 8) = p.(8)
    then slots.(base + 9)
    else go ((idx + 1) land mask)
  in
  go (Hashtbl.hash p land mask)

let flat_of_tbl tbl =
  let n = FTbl.length tbl in
  let size = ref 16 in
  while !size < 2 * (n + 1) do
    size := !size * 2
  done;
  let mask = !size - 1 in
  let slots = Array.make (!size * 10) nan in
  FTbl.iter
    (fun k v ->
      let rec place idx =
        let base = idx * 10 in
        if slots.(base) <> slots.(base) then begin
          Array.blit k 0 slots base 9;
          slots.(base + 9) <- v
        end
        else place ((idx + 1) land mask)
      in
      place (Hashtbl.hash k land mask))
    tbl;
  { mask; slots }

type kernel =
  | Linear of { coeffs : float array; inv : float array; crisp_k : Interval.t }
      (** [inv.(i) = 1. /. coeffs.(i)]; [crisp_k] is the constant side *)
  | Product  (** q0 = q1 ⊗ q2; the target position selects mul or div *)
  | Seed of { nominal : bool; off : int }
      (** generative: trapezoid at [seedbuf.(off .. off+3)] *)

type instr = {
  name : string;
  kernel : kernel;
  vars : int array;  (** quantity ids, in [Constr.vars] order *)
  assumptions : Env.t;
  degree : float;
  guards : (int * Interval.t) array;
}

type firing = {
  instr : int;
  target : int;  (** quantity id derived by this firing *)
  tpos : int;  (** index of [target] in the instruction's [vars] *)
  srcs : int array;  (** [vars] minus [tpos], order preserved *)
  fid : int;
      (** dense id of the [(instr, tpos)] pair, shared by every plan
          entry that fires it — the engine's no-op-skip stamps key on it *)
}

type t = {
  uid : int;  (** unique per schedule; a physical-identity hash key *)
  model : Model.t;
  qty : Quantity.t array;
  qname : string array;  (** pre-rendered conflict reasons, one per id *)
  qindex : (Quantity.t, int) Hashtbl.t;
  instrs : instr array;  (** one per model constraint, model order *)
  plan : firing array array;  (** [plan.(qid)]: firings when qid updates *)
  nfirings : int;  (** bound on [firing.fid] *)
  seeds : int array;  (** generative instruction indices, model order *)
  seedbuf : float array;
  mutable reports : Flames_sim.Sensitivity.node_report list option;
  rlock : Mutex.t;
  fmemo : flat Atomic.t;
      (** shared consistency memo: an immutable-once-published snapshot,
          probed lock-free; see {!memo_snapshot} / {!memo_publish} *)
  mutable mmaster : float FTbl.t;
      (** canonical mutable form behind [fmemo], guarded by [mlock] *)
  mlock : Mutex.t;  (** serialises {!memo_publish} *)
}

(* Memo entries are pure functions of their key, so sharing them across
   engines, threads and domains is sound.  A published snapshot is never
   mutated again — readers probe it without synchronisation; a publish
   merges the novelties into the master table under [mlock], rebuilds
   the flat form and swaps the atomic reference ([Atomic.set]'s release
   pairs with [Atomic.get]'s acquire, making the fresh array's contents
   visible).  The cap only bounds memory: once reached, later novelties
   simply stay engine-local and get recomputed. *)
let memo_cap = 1 lsl 18

let memo_snapshot t = Atomic.get t.fmemo

let memo_publish t novel =
  Mutex.lock t.mlock;
  let master = t.mmaster in
  let grew = ref false in
  FTbl.iter
    (fun k v ->
      if FTbl.length master < memo_cap && not (FTbl.mem master k) then begin
        FTbl.add master k v;
        grew := true
      end)
    novel;
  if !grew then Atomic.set t.fmemo (flat_of_tbl master);
  Mutex.unlock t.mlock

let compile_seconds =
  Metrics.histogram "flames_schedule_compile_seconds"
    ~help:"Latency of compiling a model into a flat propagation schedule"

let next_uid = Atomic.make 0

let of_model (model : Model.t) =
  Trace.with_span ~record:compile_seconds "schedule_compile" @@ fun () ->
  let qindex = Hashtbl.create 64 in
  let rev_qty = ref [] in
  let nq = ref 0 in
  let intern q =
    match Hashtbl.find_opt qindex q with
    | Some i -> i
    | None ->
      let i = !nq in
      incr nq;
      Hashtbl.add qindex q i;
      rev_qty := q :: !rev_qty;
      i
  in
  let seedbuf_rev = ref [] in
  let seedlen = ref 0 in
  let push_interval (set : Interval.t) =
    let off = !seedlen in
    seedbuf_rev :=
      set.Interval.beta :: set.Interval.alpha :: set.Interval.m2
      :: set.Interval.m1 :: !seedbuf_rev;
    seedlen := off + 4;
    off
  in
  let instrs =
    List.map
      (fun (c : Constr.t) ->
        let vars = Array.of_list (List.map intern (Constr.vars c)) in
        let kernel =
          match c.Constr.form with
          | Constr.Linear (terms, k) ->
            let coeffs = Array.of_list (List.map fst terms) in
            Linear
              {
                coeffs;
                inv = Array.map (fun ci -> 1. /. ci) coeffs;
                crisp_k = Interval.crisp k;
              }
          | Constr.Product _ -> Product
          | Constr.Nominal (_, set) -> Seed { nominal = true; off = push_interval set }
          | Constr.Bound (_, set) -> Seed { nominal = false; off = push_interval set }
        in
        let guards =
          Array.of_list
            (List.map (fun (q, set) -> (intern q, set)) c.Constr.guards)
        in
        {
          name = c.Constr.name;
          kernel;
          vars;
          assumptions = c.Constr.assumptions;
          degree = c.Constr.degree;
          guards;
        })
      model.Model.constraints
    |> Array.of_list
  in
  let nq = !nq in
  let qty = Array.of_list (List.rev !rev_qty) in
  let qname = Array.map (fun q -> Format.asprintf "%a" Quantity.pp q) qty in
  let seedbuf = Array.of_list (List.rev !seedbuf_rev) in
  let seeds =
    Array.to_list instrs
    |> List.mapi (fun i ins -> (i, ins))
    |> List.filter_map (fun (i, ins) ->
           match ins.kernel with Seed _ -> Some i | Linear _ | Product -> None)
    |> Array.of_list
  in
  (* Firing plan.  The interpreter's per-quantity constraint index is
     built by consing in model order, so the list it walks is in
     *reverse* model order; within one constraint each variable other
     than the dequeued one is fired at in [vars] order.  The plan must
     replay exactly that sequence. *)
  let by_var = Array.make nq [] in
  Array.iteri
    (fun ci (ins : instr) ->
      Array.iter (fun qid -> by_var.(qid) <- ci :: by_var.(qid)) ins.vars)
    instrs;
  (* fid = dense id of an (instruction, target-position) pair *)
  let foffset = Array.make (Array.length instrs + 1) 0 in
  Array.iteri
    (fun ci (ins : instr) ->
      foffset.(ci + 1) <- foffset.(ci) + Array.length ins.vars)
    instrs;
  let plan =
    Array.init nq (fun qid ->
        by_var.(qid)
        |> List.concat_map (fun ci ->
               let ins = instrs.(ci) in
               match ins.kernel with
               | Seed _ -> []
               | Linear _ | Product ->
                 let n = Array.length ins.vars in
                 let rec targets i acc =
                   if i < 0 then acc
                   else if ins.vars.(i) = qid then targets (i - 1) acc
                   else begin
                     let srcs = Array.make (n - 1) 0 in
                     for k = 0 to n - 1 do
                       if k < i then srcs.(k) <- ins.vars.(k)
                       else if k > i then srcs.(k - 1) <- ins.vars.(k)
                     done;
                     targets (i - 1)
                       ({
                          instr = ci;
                          target = ins.vars.(i);
                          tpos = i;
                          srcs;
                          fid = foffset.(ci) + i;
                        }
                       :: acc)
                   end
                 in
                 targets (n - 1) [])
        |> Array.of_list)
  in
  {
    uid = Atomic.fetch_and_add next_uid 1;
    model;
    qty;
    qname;
    qindex;
    instrs;
    plan;
    nfirings = foffset.(Array.length instrs);
    seeds;
    seedbuf;
    reports = None;
    rlock = Mutex.create ();
    fmemo = Atomic.make flat_empty;
    mmaster = FTbl.create 1024;
    mlock = Mutex.create ();
  }

let compile ?config netlist = of_model (Model.compile ?config netlist)
let model t = t.model
let seed_interval t off =
  Interval.make ~m1:t.seedbuf.(off) ~m2:t.seedbuf.(off + 1)
    ~alpha:t.seedbuf.(off + 2) ~beta:t.seedbuf.(off + 3)

(* Simulator-side predictions.  The raw sensitivity sweep depends only
   on the netlist, so a schedule memoizes it; the floor/threshold
   filtering stays per-call (callers tune both).  The shapes below
   replicate [Diagnose.simulator_predictions] exactly — that function
   now delegates here so both paths share one definition. *)

let raw_reports netlist =
  if netlist.Flames_circuit.Netlist.ports <> [] then
    (* an externally driven circuit cannot be simulated on its own *)
    []
  else
    match Flames_sim.Sensitivity.analyze netlist with
    | exception
        ( Flames_sim.Mna.No_convergence _ | Flames_sim.Linalg.Singular
        | Flames_circuit.Netlist.Ill_formed _ ) ->
      []
    | reports -> reports

let predictions_of_reports model reports ~floor ~threshold =
  List.filter_map
    (fun (r : Flames_sim.Sensitivity.node_report) ->
      let supporters = Flames_sim.Sensitivity.supporters ~threshold r in
      if supporters = [] then
        (* nothing influences the node: it is pinned by trusted sources
           and the constraint model derives it exactly *)
        None
      else
        let spread = Float.max r.Flames_sim.Sensitivity.total_spread floor in
        let env =
          supporters
          |> List.filter_map (fun c ->
                 match Model.assumption_id model c with
                 | id -> Some id
                 | exception Not_found -> None (* trusted component *))
          |> Env.of_list
        in
        Some
          ( Quantity.voltage r.Flames_sim.Sensitivity.node,
            Interval.number r.Flames_sim.Sensitivity.nominal ~spread,
            env ))
    reports

let reports t =
  Mutex.lock t.rlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.rlock)
    (fun () ->
      match t.reports with
      | Some r -> r
      | None ->
        let r = raw_reports t.model.Model.netlist in
        t.reports <- Some r;
        r)

let predictions t ~floor ~threshold =
  predictions_of_reports t.model (reports t) ~floor ~threshold
