module Metrics = Flames_obs.Metrics

(* Trips are first-class observables: the degraded-result story only
   works operationally if every budget stop is visible in the registry. *)
let trips_total =
  Metrics.counter "flames_budget_trips_total"
    ~help:"Budget checkpoints that stopped a stage (all trip kinds)"

let trip_seconds =
  Metrics.histogram "flames_budget_trip_seconds"
    ~help:"Wall time elapsed into a budgeted run when a quota tripped"

type trip = Wall | Cancel | Steps | Envs | Candidates

let trip_label = function
  | Wall -> "wall"
  | Cancel -> "cancel"
  | Steps -> "steps"
  | Envs -> "envs"
  | Candidates -> "candidates"

type spec = {
  wall : float option;
  max_steps : int option;
  max_envs : int option;
  max_candidates : int option;
}

let unlimited =
  { wall = None; max_steps = None; max_envs = None; max_candidates = None }

let spec ?wall ?max_steps ?max_envs ?max_candidates () =
  Option.iter
    (fun w -> if not (Float.is_finite w) || w < 0. then
        invalid_arg "Budget.spec: wall must be finite and >= 0")
    wall;
  List.iter
    (Option.iter (fun n ->
         if n < 0 then invalid_arg "Budget.spec: quotas must be >= 0"))
    [ max_steps; max_envs; max_candidates ];
  { wall; max_steps; max_envs; max_candidates }

type t = {
  deadline : float option;  (* absolute, seconds since the epoch *)
  started : float;
  max_steps : int option;
  max_envs : int option;
  max_candidates : int option;
  cancelled : bool Atomic.t;  (* the only cross-domain field *)
  mutable steps : int;
  mutable envs : int;
  mutable candidates : int;
  mutable wall_checks : int;  (* deadline polled 1-in-32 charges *)
  mutable trips : trip list;  (* reverse order of occurrence *)
}

let now () = Unix.gettimeofday ()

let start s =
  let started = now () in
  {
    deadline = Option.map (fun w -> started +. w) s.wall;
    started;
    max_steps = s.max_steps;
    max_envs = s.max_envs;
    max_candidates = s.max_candidates;
    cancelled = Atomic.make false;
    steps = 0;
    envs = 0;
    candidates = 0;
    wall_checks = 0;
    trips = [];
  }

let fresh () = start unlimited

let trip t kind =
  if not (List.mem kind t.trips) then begin
    t.trips <- kind :: t.trips;
    Metrics.incr trips_total;
    Metrics.observe trip_seconds (now () -. t.started)
  end

let cancel t = Atomic.set t.cancelled true

(* The wall clock is only read on every 32nd charge: checkpoints sit on
   propagation and enumeration hot loops, and a gettimeofday per step
   would cost more than the work being metered. *)
let wall_ok t =
  if Atomic.get t.cancelled then begin
    trip t Cancel;
    false
  end
  else
    match t.deadline with
    | None -> true
    | Some d ->
      t.wall_checks <- t.wall_checks + 1;
      if t.wall_checks land 31 <> 1 then not (List.mem Wall t.trips)
      else if now () >= d then begin
        trip t Wall;
        false
      end
      else true

let over limit used = match limit with None -> false | Some n -> used >= n

let charge_steps t n =
  t.steps <- t.steps + n;
  if over t.max_steps t.steps then begin
    trip t Steps;
    false
  end
  else wall_ok t

let charge_envs t n =
  t.envs <- t.envs + n;
  if over t.max_envs t.envs then begin
    trip t Envs;
    false
  end
  else wall_ok t

let charge_candidates t n =
  t.candidates <- t.candidates + n;
  if over t.max_candidates t.candidates then begin
    trip t Candidates;
    false
  end
  else wall_ok t

let ok t = wall_ok t && t.trips = []
let quota_candidates t = t.max_candidates
let trips t = List.rev t.trips
let tripped t = t.trips <> []

let is_unlimited t =
  t.deadline = None && t.max_steps = None && t.max_envs = None
  && t.max_candidates = None
  && not (Atomic.get t.cancelled)
let cancelled t = Atomic.get t.cancelled
let elapsed t = now () -. t.started

let pp_trip ppf k = Format.pp_print_string ppf (trip_label k)

let pp_trips ppf = function
  | [] -> Format.pp_print_string ppf "none"
  | ts ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      pp_trip ppf ts

(* The closure handed down to the budget-blind layers (Hitting, Atms):
   they only need a stop/go answer, not the taxonomy. *)
let interrupt_of t () = not (wall_ok t) || tripped t
