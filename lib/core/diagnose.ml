module Interval = Flames_fuzzy.Interval
module Consistency = Flames_fuzzy.Consistency
module Env = Flames_atms.Env
module Candidates = Flames_atms.Candidates
module Quantity = Flames_circuit.Quantity
module Netlist = Flames_circuit.Netlist
module Component = Flames_circuit.Component
module Fault = Flames_circuit.Fault
module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace
module Context = Flames_obs.Context

(* Stage telemetry for the interactive loop (§6–§8): each stage gets a
   trace span and an always-on latency histogram, so a trace shows where
   one diagnosis spent its time and the registry shows where a whole
   workload did. *)
let runs_total =
  Metrics.counter "flames_diagnose_runs_total" ~help:"Completed diagnosis runs"

let degraded_total =
  Metrics.counter "flames_diagnose_degraded_total"
    ~help:"Diagnosis runs that returned degraded (budget-truncated) results"

let model_seconds =
  Metrics.histogram "flames_diagnose_model_seconds"
    ~help:"Model acquisition (constraint compilation) latency"

let simulate_seconds =
  Metrics.histogram "flames_diagnose_simulate_seconds"
    ~help:"Nominal-prediction simulation (sensitivity sweep) latency"

let fit_seconds =
  Metrics.histogram "flames_diagnose_fit_seconds"
    ~help:"Fault-model fit sweep latency (all suspects of one run)"

let rank_seconds =
  Metrics.histogram "flames_diagnose_rank_seconds"
    ~help:"Candidate ranking (hitting sets, diagnoses, single faults)"

type observation = Quantity.t * Interval.t

type symptom = {
  quantity : Quantity.t;
  measured : Interval.t;
  predicted : Interval.t option;
  verdict : Consistency.verdict option;
  signed_dc : float option;
}

type mode_estimate = {
  parameter : string;
  nominal : float;
  estimated : float option;
  fit_residual : float option;
  modes : (Fault.mode * float) list;
}

type suspect = {
  component : string;
  suspicion : float;
  explains : bool;
  estimates : mode_estimate list;
}

let fit_threshold = 0.05

type result = {
  netlist : Netlist.t;
  symptoms : symptom list;
  conflicts : Candidates.conflict list;
  suspects : suspect list;
  diagnoses : (string list * float) list;
  single_faults : (string * float) list;
  engine : Propagate.t;
  degraded : bool;
  trips : Budget.trip list;
}

(* The verdict uses the same consistency measure as the engine: the
   area-based Dc complemented by the possibility of matching, so a
   measurement that is merely wider than its prediction (but centred on
   it) reads as consistent. *)
let adjusted_verdict ~measured ~nominal =
  let v = Consistency.verdict ~measured ~nominal in
  let dc =
    Float.max v.Consistency.dc
      (Flames_fuzzy.Piecewise.height_of_min measured nominal)
  in
  let direction =
    if dc >= 0.995 then Consistency.Within else v.Consistency.direction
  in
  { Consistency.dc; direction }

let symptom_of prediction_engine (q, measured) =
  let predicted =
    Option.map
      (fun v -> v.Value.interval)
      (Propagate.best_value prediction_engine ~observational:false q)
  in
  let verdict =
    Option.map (fun nominal -> adjusted_verdict ~measured ~nominal) predicted
  in
  let signed_dc =
    Option.map
      (fun (v : Consistency.verdict) ->
        match v.Consistency.direction with
        | Consistency.Within -> v.Consistency.dc
        | Consistency.High ->
          if v.Consistency.dc = 0. then 1. else v.Consistency.dc
        | Consistency.Low ->
          if v.Consistency.dc = 0. then -1. else -.v.Consistency.dc)
      verdict
  in
  { quantity = q; measured; predicted; verdict; signed_dc }

(* Fault-mode refinement by model fitting: the faulty value of a suspect
   parameter is estimated by re-simulating the circuit over a logarithmic
   sweep of candidate values (plus two local refinement passes) and
   keeping the value that best reproduces the measurements.  This is the
   paper's "component fault models can help the diagnosis process" —
   a candidate explains the symptoms only if some value of its parameter
   reproduces them. *)
let observation_residual ?sweep netlist observations =
  match Flames_sim.Mna.solve ?sweep netlist with
  | exception (Flames_sim.Mna.No_convergence _ | Flames_sim.Linalg.Singular) ->
    None
  | sol ->
    let err =
      List.fold_left
        (fun acc (q, measured) ->
          match q with
          | Quantity.Node_voltage n -> begin
            match List.assoc_opt n sol.Flames_sim.Mna.voltages with
            | None -> acc
            | Some v ->
              let m = Interval.centroid measured in
              let scale = Float.max 0.05 (Float.abs m) in
              acc +. (((v -. m) /. scale) ** 2.)
          end
          | Quantity.Branch_current _ | Quantity.Terminal_current _
          | Quantity.Voltage_drop _ | Quantity.Parameter _ ->
            acc)
        0. observations
    in
    Some err

(* Simulation audit: within one [run] the nominal circuit is solved once
   by [simulator_predictions] (inside [Sensitivity.analyze]) and never
   per symptom — [observation_residual] folds every observation over a
   single solve.  The remaining redundancy is inside the fit sweep: the
   coarse grid and both refinement passes revisit candidate values (the
   1.0 factors re-solve the previous pass's best value, and refinement
   grids overlap), each costing a full MNA solve.  A per-sweep memo on
   the exact candidate value removes those repeats, and the shared
   [?sweep] LU context answers the remaining distinct candidates from
   the factors of the first system solved per device-region state. *)
let fit_parameter ?sweep netlist observations comp parameter =
  let nominal = Interval.centroid (Component.nominal_parameter comp parameter) in
  if nominal = 0. then None
  else
    let solved = Hashtbl.create 64 in
    let try_value v =
      let key = Int64.bits_of_float v in
      let residual =
        match Hashtbl.find_opt solved key with
        | Some r -> r
        | None ->
          let net' =
            Netlist.replace netlist
              (Component.with_parameter comp parameter (Interval.crisp v))
          in
          let r = observation_residual ?sweep net' observations in
          Hashtbl.add solved key r;
          r
      in
      Option.map (fun r -> (v, r)) residual
    in
    let best_of candidates =
      List.filter_map try_value candidates
      |> List.fold_left
           (fun best (v, r) ->
             match best with
             | Some (_, br) when br <= r -> best
             | Some _ | None -> Some (v, r))
           None
    in
    let coarse =
      List.map
        (fun m -> nominal *. m)
        [ 1e-6; 1e-3; 0.01; 0.05; 0.1; 0.2; 0.3; 0.5; 0.7; 0.85; 0.95; 1.;
          1.05; 1.15; 1.3; 1.5; 2.; 3.; 5.; 10.; 100.; 1e3; 1e6; 1e9 ]
    in
    match best_of coarse with
    | None -> None
    | Some (v0, _) ->
      let refine centre factors = List.map (fun f -> centre *. f) factors in
      let pass1 =
        best_of (refine v0 [ 0.5; 0.67; 0.8; 0.9; 1.; 1.1; 1.25; 1.5; 2. ])
      in
      let v1 = match pass1 with Some (v, _) -> v | None -> v0 in
      let pass2 =
        best_of (refine v1 [ 0.94; 0.96; 0.98; 1.; 1.02; 1.04; 1.06 ])
      in
      (match pass2 with Some (v, r) -> Some (v, r) | None -> pass1)

let mode_estimates ?sweep netlist observations engine comp =
  let name = comp.Component.name in
  let simulatable = netlist.Netlist.ports = [] in
  List.filter_map
    (fun parameter ->
      let nominal =
        Interval.centroid (Component.nominal_parameter comp parameter)
      in
      let fitted =
        if simulatable then
          fit_parameter ?sweep netlist observations comp parameter
        else None
      in
      match fitted with
      | Some (actual, residual) ->
        Some
          {
            parameter;
            nominal;
            estimated = Some actual;
            fit_residual = Some residual;
            modes = Fault.classify ~nominal ~actual;
          }
      | None -> begin
        (* fallback: the engine's measurement-side estimate, when local
           propagation produced one (externally driven circuits) *)
        let q = Quantity.parameter name parameter in
        match Propagate.best_value engine ~observational:true q with
        | None ->
          Some
            { parameter; nominal; estimated = None; fit_residual = None;
              modes = [] }
        | Some v ->
          let actual = Interval.centroid v.Value.interval in
          Some
            {
              parameter;
              nominal;
              estimated = Some actual;
              fit_residual = None;
              modes = Fault.classify ~nominal ~actual;
            }
      end)
    (Component.parameter_names comp.Component.kind)

(* Global nominal predictions from the DC simulator, the stand-in for the
   physical test bench's model predictions.  Each node prediction holds
   under the assumptions of the components that actually influence the
   node (finite-difference sensitivity), so a conflict on a probed node
   suspects exactly its signal path — the paper's "measuring Vs to be
   faulty suspects all the modules", while a conflict on an intermediate
   probe suspects only the upstream stage.  The prediction's fuzzy width
   is the voltage uncertainty the component tolerances induce. *)
let simulator_predictions netlist model ~floor ~threshold =
  Schedule.predictions_of_reports model
    (Schedule.raw_reports netlist)
    ~floor ~threshold

(* The quantities whose observational evidence decides constraint guards
   (e.g. a transistor's Vce): when any of them acquires evidence in the
   first pass, a deterministic second pass is required (see {!analyze}). *)
let guard_quantities model =
  List.concat_map
    (fun (c : Constr.t) -> List.map fst c.Constr.guards)
    model.Model.constraints
  |> List.sort_uniq Quantity.compare

(* One full propagation pass: fresh engine, pinned guard evidence,
   simulator predictions, then the observations, run to quiescence.
   Shared by {!run} and the incremental {!Flames_session.Session}, whose
   retraction path rebuilds exactly this engine. *)
let full_pass ?limits ?schedule ~budget ~degree ~model ~predictions
    ~observations ~guard_evidence () =
  let engine = Propagate.create ?limits ~budget ?schedule model in
  Propagate.set_guard_evidence engine guard_evidence;
  List.iter
    (fun (q, v, env) -> Propagate.predict engine ~degree q v env)
    predictions;
  List.iter (fun (q, v) -> Propagate.observe engine q v) observations;
  Propagate.run engine;
  engine

let analyze ?limits ?schedule ?budget ~degree ~model ~predictions ~prediction
    ~first netlist observations =
  let budget = match budget with Some b -> b | None -> Budget.fresh () in
  (* Guards are evaluated when a constraint fires, but the observational
     evidence for a guard quantity (e.g. a transistor's Vce reconstructed
     from two probes) may only appear later in the same run — values
     derived before the evidence arrived would survive with a stale guard
     degree.  A second pass with the first pass's guard evidence injected
     up-front makes guard evaluation deterministic. *)
  let guard_evidence =
    List.filter_map
      (fun q ->
        match Propagate.best_value first ~observational:true q with
        | Some v -> Some (q, v.Value.interval)
        | None -> None)
      (guard_quantities model)
  in
  let engine =
    if guard_evidence = [] then first
    else
      full_pass ?limits ?schedule ~budget ~degree ~model ~predictions
        ~observations ~guard_evidence ()
  in
  let symptoms = List.map (symptom_of prediction) observations in
  let conflicts = Propagate.conflicts engine in
  let name_of id = Model.assumption_name model id in
  let suspects =
    Trace.with_span ~record:fit_seconds "diagnose.fit" @@ fun () ->
    (* one LU context across every suspect's fit sweep: all candidate
       systems of a run differ from its nominal circuit by one
       parameter, so the first factorisation per device-region state
       serves them all *)
    let fsweep = Flames_sim.Mna.sweep ~rank1:true () in
    Candidates.suspicions conflicts
    |> List.filter_map (fun (id, suspicion) ->
           let component = name_of id in
           if Netlist.mem netlist component then
             let comp = Netlist.find netlist component in
             let estimates =
               (* fit sweeps are the most expensive stage (one MNA solve
                  per candidate value): once the budget has tripped, skip
                  further sweeps and degrade to bare suspicions *)
               if Budget.tripped budget || not (Budget.ok budget) then []
               else mode_estimates ~sweep:fsweep netlist observations engine comp
             in
             let explains =
               List.exists
                 (fun e ->
                   match e.fit_residual with
                   | Some r -> r <= fit_threshold
                   | None -> false)
                 estimates
             in
             Some { component; suspicion; explains; estimates }
           else
             Some { component; suspicion; explains = false; estimates = [] })
  in
  let diagnoses, single_faults =
    Trace.with_span ~record:rank_seconds "diagnose.rank" @@ fun () ->
    let ranked =
      Candidates.diagnoses
        ?limit:(Budget.quota_candidates budget)
        ~interrupt:(Budget.interrupt_of budget) conflicts
    in
    (* account every enumerated candidate, so a candidate quota both
       trips (for later stages) and shows up in the result's trip list *)
    ignore (Budget.charge_candidates budget (List.length ranked));
    let diagnoses =
      List.map
        (fun (d : Candidates.diagnosis) ->
          ( List.map name_of (Env.to_list d.Candidates.members),
            d.Candidates.rank ))
        ranked
    in
    let single_faults =
      Candidates.single_faults conflicts
      |> List.map (fun (id, degree) -> (name_of id, degree))
    in
    (diagnoses, single_faults)
  in
  let degraded =
    Budget.tripped budget
    || Propagate.truncated prediction
    || Propagate.truncated engine
  in
  Metrics.incr runs_total;
  if degraded then Metrics.incr degraded_total;
  let trips = Budget.trips budget in
  (* outcome annotations for the request's wide event (no-ops without
     an active context): the per-stage timings arrive separately via
     the recorded spans above *)
  Context.annotate "degraded" (Context.Bool degraded);
  Context.annotate "conflicts" (Context.Int (List.length conflicts));
  Context.annotate "nogoods"
    (Context.Int (Flames_atms.Nogood.count (Propagate.nogood_db engine)));
  Context.annotate "propagate_steps" (Context.Int (Propagate.steps_used engine));
  Context.annotate "budget_elapsed_s" (Context.Num (Budget.elapsed budget));
  if trips <> [] then
    Context.annotate "budget_trips"
      (Context.Str (String.concat "," (List.map Budget.trip_label trips)));
  { netlist; symptoms; conflicts; suspects; diagnoses; single_faults; engine;
    degraded; trips }

(* Nominal-prediction engines cached per schedule.  The prediction pass
   is a pure function of (schedule, limits, degree, floor, threshold,
   simulate flag): it sees no observations, so every request against the
   same compiled model rebuilds the identical engine.  Reuse is gated to
   unlimited budgets — the pass charges steps/envs as it runs, and
   skipping it must not change what a bounded budget would have
   accounted.  A cached engine is quiescent and only ever read
   afterwards ([best_value] / [truncated], both mutation-free), so
   sharing it across threads and domains is safe; the ephemeron key
   lets a schedule evicted from [Engine.Cache] take its engines with
   it. *)
module PTbl = Ephemeron.K1.Make (struct
  type t = Schedule.t

  let equal = ( == )
  let hash (s : Schedule.t) = s.Schedule.uid
end)

type pkey = {
  plimits : Propagate.limits;
  pdegree : float;
  pfloor : float;
  pthreshold : float;
  psim : bool;
}

let pcache : (pkey * Propagate.t) list PTbl.t = PTbl.create 8
let pcache_lock = Mutex.create ()

let prediction_engine ?limits ~budget ~schedule ~model ~degree ~floor
    ~threshold ~simulate predictions =
  let fresh () =
    let prediction = Propagate.create ?limits ~budget ?schedule model in
    List.iter
      (fun (q, v, env) -> Propagate.predict prediction ~degree q v env)
      predictions;
    Propagate.run prediction;
    prediction
  in
  match schedule with
  | Some s when Budget.is_unlimited budget ->
    let key =
      {
        plimits = Option.value limits ~default:Propagate.default_limits;
        pdegree = degree;
        pfloor = floor;
        pthreshold = threshold;
        psim = simulate;
      }
    in
    Mutex.lock pcache_lock;
    let hit =
      match PTbl.find_opt pcache s with
      | Some entries -> List.assoc_opt key entries
      | None -> None
    in
    Mutex.unlock pcache_lock;
    (match hit with
    | Some engine -> engine
    | None ->
      let engine = fresh () in
      Mutex.lock pcache_lock;
      let entries = Option.value (PTbl.find_opt pcache s) ~default:[] in
      if not (List.mem_assoc key entries) then
        (* a handful of (limits, degree, floor, threshold) tunings per
           schedule in practice; keep the newest four *)
        PTbl.replace pcache s
          ((key, engine) :: List.filteri (fun i _ -> i < 3) entries);
      Mutex.unlock pcache_lock;
      engine)
  | _ -> fresh ()

let run ?config ?limits ?model ?schedule ?(use_compiled = true) ?budget
    ?(prediction_floor = 1e-3) ?(sensitivity_threshold = 0.02)
    ?(prediction_degree = 0.95) ?(simulate_predictions = true) netlist
    observations =
  Trace.with_span
    ~args:[ ("circuit", netlist.Netlist.name) ]
    "diagnose.run"
  @@ fun () ->
  let budget = match budget with Some b -> b | None -> Budget.fresh () in
  (* Model acquisition.  The compiled schedule is the default execution
     vehicle; [~use_compiled:false] forces the interpreter (the
     differential-oracle baseline and the CLI's [--no-compiled]). *)
  let model, schedule =
    match schedule with
    | Some s when use_compiled -> (Schedule.model s, Some s)
    | _ ->
      let m =
        match model with
        | Some m -> m
        | None ->
          Trace.with_span ~record:model_seconds "diagnose.model" (fun () ->
              Model.compile ?config netlist)
      in
      if use_compiled then (m, Some (Schedule.of_model m)) else (m, None)
  in
  let predictions =
    if simulate_predictions then
      Trace.with_span ~record:simulate_seconds "diagnose.simulate" (fun () ->
          match schedule with
          | Some s ->
            (* memoized on the schedule: the sensitivity sweep runs once
               per compiled model, not once per request *)
            Schedule.predictions s ~floor:prediction_floor
              ~threshold:sensitivity_threshold
          | None ->
            simulator_predictions netlist model ~floor:prediction_floor
              ~threshold:sensitivity_threshold)
    else []
  in
  let degree = prediction_degree in
  (* prediction pass: nominals only — shared across requests when the
     budget is unlimited (see [prediction_engine]) *)
  let prediction =
    prediction_engine ?limits ~budget ~schedule ~model ~degree
      ~floor:prediction_floor ~threshold:sensitivity_threshold
      ~simulate:simulate_predictions predictions
  in
  (* full pass with observations, then the shared post-propagation
     pipeline (guard second pass, symptoms, conflicts, fits, ranking) *)
  let first =
    full_pass ?limits ?schedule ~budget ~degree ~model ~predictions
      ~observations ~guard_evidence:[] ()
  in
  analyze ?limits ?schedule ~budget ~degree ~model ~predictions ~prediction
    ~first netlist observations

let run_r ?config ?limits ?model ?schedule ?use_compiled ?budget
    ?prediction_floor ?sensitivity_threshold ?prediction_degree
    ?simulate_predictions netlist observations =
  Err.guard (fun () ->
      run ?config ?limits ?model ?schedule ?use_compiled ?budget
        ?prediction_floor ?sensitivity_threshold ?prediction_degree
        ?simulate_predictions netlist observations)

let healthy result = result.conflicts = []

let suspects_above result threshold =
  result.suspects
  |> List.filter (fun s -> s.suspicion >= threshold)
  |> List.map (fun s -> s.component)
