(** Structured error taxonomy of the diagnosis pipeline.

    Library boundaries ({!Diagnose.run_r}, [Flames_engine.Batch], the
    CLI) carry failures as [('a, Err.t) result] instead of letting bare
    exceptions escape: a caller can tell a singular circuit from a
    malformed file from a crashed worker without string-matching
    [Printexc] output, and the batch retry policy can decide what is
    worth retrying. *)

type t =
  | Singular_system  (** MNA matrix numerically singular *)
  | No_convergence of string  (** device-region iteration diverged *)
  | Ill_formed of string  (** netlist fails structural validation *)
  | Parse_error of { file : string option; line : int; message : string }
  | Invalid_interval of string  (** non-finite / inverted fuzzy bounds *)
  | Budget_exceeded of Budget.trip list
      (** work budget exhausted before any salvageable partial result *)
  | Worker_crashed of { attempts : int }
      (** worker domain died running the job, [attempts] times *)
  | Breaker_open of string
      (** load shed: repeated failures on this fingerprint *)
  | Cancelled  (** withdrawn before a worker picked it up *)
  | Timed_out  (** hard deadline passed while running *)
  | Unexpected of string  (** anything else, classified from the exn *)

exception Error of t
(** For call sites that must raise; {!of_exn} maps it back to [t]. *)

val of_exn : exn -> t
(** Classify an exception: the known pipeline exceptions
    ([Linalg.Singular], [Mna.No_convergence], [Netlist.Ill_formed],
    [Interval.Invalid], {!Error}) map to their constructor, anything
    else to {!Unexpected}. *)

val retryable : t -> bool
(** Worth retrying: transient by nature ([Worker_crashed], [Unexpected]).
    Deterministic input errors, budget trips and cancellations are not. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run the thunk, classifying any exception via {!of_exn}. *)

val to_string : t -> string
(** One line, no backtrace. *)

val label : t -> string
(** Stable short tag ("singular", "crashed", ...) for metrics and
    tests. *)

val pp : Format.formatter -> t -> unit
