(** The fuzzy-interval propagation and conflict-recognition engine
    (paper section 6.1).

    Quantities hold cells of propagated {!Value.t}s.  Firing a constraint
    unions the antecedent environments and min-combines degrees; every
    insertion into a cell is checked against the resident values
    (fig. 4 coincidence analysis) and each partial or hard conflict is
    recorded as a weighted nogood ([degree = 1 − Dc]) in the engine's
    database. *)

module Interval = Flames_fuzzy.Interval
module Env = Flames_atms.Env
module Nogood = Flames_atms.Nogood
module Quantity = Flames_circuit.Quantity

type t
(** A propagation state over a compiled model. *)

type limits = {
  max_values_per_cell : int;  (** resident values kept per quantity *)
  max_combinations : int;  (** antecedent combinations tried per firing *)
  max_steps : int;  (** work-queue pops before aborting *)
  min_conflict_degree : float;
      (** conflicts weaker than this are treated as tolerance noise and
          not recorded (i.e. [Dc >= 1 - min_conflict_degree] counts as
          consistent) *)
}

val default_limits : limits
(** 12 values per cell, 256 combinations, 100_000 steps, 0.02 conflict
    floor. *)

val create :
  ?limits:limits -> ?budget:Budget.t -> ?schedule:Schedule.t -> Model.t -> t
(** Fresh engine over the model; generative constraints (nominals,
    bounds, ground) are seeded but nothing is propagated yet.  [budget]
    (default unlimited) is charged one step per work-queue pop and one
    env per surviving cell insertion; when it trips, {!run} stops at the
    next check-point and {!truncated} latches.

    With [schedule] (which must be compiled from the same model) the
    engine runs the compiled fast path: preplanned firing order over
    dense quantity ids, memoized consistency kernels, flat seed
    buffers.  Results — values, conflicts, budgets charged — are
    byte-identical to the interpreter; only the speed differs. *)

val compiled : t -> bool
(** Whether this engine runs the compiled fast path. *)

val observe : t -> Quantity.t -> Interval.t -> unit
(** Enter a measurement (environment-free, degree 1). *)

val predict : t -> ?degree:float -> Quantity.t -> Interval.t -> Env.t -> unit
(** Enter a model-side prediction holding under the given assumption set
    with the given certainty (default 1) — used for simulator-derived
    global predictions. *)

val set_guard_evidence : t -> (Quantity.t * Interval.t) list -> unit
(** Pin the operating-point evidence used to evaluate constraint guards
    (e.g. a transistor's Vce reconstructed in an earlier pass).  Pinned
    evidence takes precedence over cell contents; it never enters the
    cells, so it carries no assumption environment. *)

val run : t -> unit
(** Propagate to quiescence.  Idempotent; can be interleaved with
    {!observe} to add measurements incrementally (the engine is
    incremental like an ATMS).  When the engine's budget trips the run
    stops early but cleanly: every value and conflict recorded so far
    stays valid, later derivations are simply missing ({!truncated}). *)

val values : t -> Quantity.t -> Value.t list
(** Resident values of the quantity, strongest first. *)

val best_value : t -> ?observational:bool -> Quantity.t -> Value.t option
(** The tightest resident value; with [~observational] restricted to that
    side ([true] = measurement-derived, [false] = model predictions). *)

val conflicts : t -> Flames_atms.Candidates.conflict list
(** All recorded minimal weighted conflicts. *)

val nogood_db : t -> Nogood.t
val model : t -> Model.t
val steps_used : t -> int

val truncated : t -> bool
(** Some {!run} stopped at a budget check-point (or the hard step
    limit): results are sound but possibly incomplete. *)

val budget : t -> Budget.t
(** The engine's budget (a fresh unlimited one when none was given). *)

val names : t -> int -> string
(** Assumption pretty-naming. *)

val pp_cell : t -> Format.formatter -> Quantity.t -> unit
