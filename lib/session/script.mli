(** Troubleshooting scripts: the text protocol driving a {!Session}.

    One command per line; [#] starts a comment.  Directives set up the
    bench circuit, commands drive the session:

    {v
    circuit three_stage_amplifier   # builtin circuit (must come first)
    fault r5.R=short                # ground truth for later `probe`s
    imprecision 0.002               # relative measurement imprecision
    probe v1                        # simulate measuring node v1
    measure n2 11.25 0.05           # explicit measurement (center spread)
    next                            # recommend the next test point
    retract 2                       # drop measurement id 2
    refine 1 11.3 0.02              # narrow measurement id 1 in place
    diagnoses                       # print the ranked diagnosis
    status                          # session state summary
    quit
    v}

    The same interpreter backs [flames_cli troubleshoot] (stdin or
    script file), the [corpus/sessions] golden transcripts, and the
    session benchmark. *)

type command =
  | Circuit of string
  | Fault of string  (** raw [comp.param=mode] spec, parsed at run time *)
  | Imprecision of float
  | Probe of string  (** node name *)
  | Measure of string * float * float option  (** node, center, spread *)
  | Observe of Flames_circuit.Quantity.t * Flames_fuzzy.Interval.t
      (** a measurement with an explicit trapezoid, no fuzzification —
          text form [observe <node> <m1> <m2> <alpha> <beta>] (floats may
          be hex literals); the journal replays through this so recovered
          intervals are bit-exact *)
  | Retract of int
  | Refine of int * float * float option
  | Refine_interval of int * Flames_fuzzy.Interval.t
      (** [refine-interval <id> <m1> <m2> <alpha> <beta>] — the
          explicit-trapezoid sibling of [Refine], used by replay *)
  | Diagnoses
  | Next
  | Status
  | Quit

val parse_line : string -> (command option, string) result
(** [Ok None] on blank/comment lines. *)

val parse : string -> ((int * command) list, string) result
(** Whole script to line-numbered commands; the error carries the
    offending line number. *)

val run :
  ?echo:bool ->
  ?print:(string -> unit) ->
  ?session_of:(Flames_circuit.Netlist.t -> Session.t) ->
  (int * command) list ->
  (Session.t option, string) result
(** Interpret the commands in order.  [?print] (default stdout) receives
    every line of output; [?echo] (default [false]) prefixes each
    command as [> cmd] before its output, for transcripts.
    [?session_of] (default [Session.create]) builds the session when the
    [circuit] directive executes, letting callers thread budgets or
    fault points.  Returns the final session (for inspection or
    benchmarking), or an error naming the line that failed. *)

val replay :
  session:Session.t -> command list -> (unit, string) result
(** Interpret commands against an already-open session — the journal
    recovery entry point.  Identical semantics to {!run} (same [exec]
    path), but no [circuit] directive is needed or expected and output
    is discarded.  Stops at the first failing command. *)
