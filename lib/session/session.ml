module Interval = Flames_fuzzy.Interval
module Quantity = Flames_circuit.Quantity
module Netlist = Flames_circuit.Netlist
module Model = Flames_core.Model
module Schedule = Flames_core.Schedule
module Propagate = Flames_core.Propagate
module Budget = Flames_core.Budget
module Diagnose = Flames_core.Diagnose
module Best_test = Flames_strategy.Best_test
module Estimation = Flames_strategy.Estimation

type measurement = { id : int; quantity : Quantity.t; interval : Interval.t }

type t = {
  netlist : Netlist.t;
  model : Model.t;
  schedule : Schedule.t option;  (** [None] = interpreter session *)
  limits : Propagate.limits option;
  budget_spec : Budget.spec;
  degree : float;
  predictions : (Quantity.t * Interval.t * Flames_atms.Env.t) list;
  prediction : Propagate.t;  (** nominal-only pass, judged against once *)
  fault_point : string -> unit;
  mutable measurements : measurement list;  (** insertion order *)
  mutable next_id : int;
  mutable live : Propagate.t option;  (** [None] = dirty, rebuilt lazily *)
  mutable cached : Diagnose.result option;
  mutable steps : int;
}

let sessions_active =
  Flames_obs.Metrics.gauge "flames_session_active"
    ~help:"Diagnosis sessions currently alive in the process"

let session_steps_total =
  Flames_obs.Metrics.counter "flames_session_steps_total"
    ~help:"Session mutations (measurement adds, retractions, refinements)"

let session_rebuilds_total =
  Flames_obs.Metrics.counter "flames_session_rebuilds_total"
    ~help:"Full propagation rebuilds performed by sessions"

let observations t =
  List.map (fun m -> (m.quantity, m.interval)) t.measurements

(* One full pass over the current measurement list — the same stage
   [Diagnose.run] performs, so a rebuilt engine is the batch engine. *)
let rebuild t =
  Flames_obs.Metrics.incr session_rebuilds_total;
  let engine =
    Diagnose.full_pass ?limits:t.limits ?schedule:t.schedule
      ~budget:(Budget.fresh ()) ~degree:t.degree ~model:t.model
      ~predictions:t.predictions ~observations:(observations t)
      ~guard_evidence:[] ()
  in
  t.live <- Some engine;
  engine

let ensure_live t =
  match t.live with Some engine -> engine | None -> rebuild t

let create ?config ?limits ?model ?schedule ?(use_compiled = true)
    ?(budget_spec = Budget.unlimited) ?(prediction_floor = 1e-3)
    ?(sensitivity_threshold = 0.02) ?(prediction_degree = 0.95)
    ?(simulate_predictions = true) ?(fault_point = fun _ -> ()) netlist =
  Flames_obs.Trace.with_span
    ~args:[ ("circuit", netlist.Netlist.name) ]
    "session.create"
  @@ fun () ->
  (* Same resolution as [Diagnose.run]: the compiled schedule is the
     default execution vehicle, [~use_compiled:false] forces the
     interpreter — and produces bit-identical results (the equivalence
     contract holds either way, against the matching [Diagnose.run]
     mode). *)
  let model, schedule =
    match schedule with
    | Some s when use_compiled -> (Schedule.model s, Some s)
    | _ ->
      let m =
        match model with Some m -> m | None -> Model.compile ?config netlist
      in
      if use_compiled then (m, Some (Schedule.of_model m)) else (m, None)
  in
  let predictions =
    if simulate_predictions then
      match schedule with
      | Some s ->
        Schedule.predictions s ~floor:prediction_floor
          ~threshold:sensitivity_threshold
      | None ->
        Diagnose.simulator_predictions netlist model ~floor:prediction_floor
          ~threshold:sensitivity_threshold
    else []
  in
  let degree = prediction_degree in
  let prediction =
    Propagate.create ?limits ?schedule ~budget:(Budget.fresh ()) model
  in
  List.iter
    (fun (q, v, env) -> Propagate.predict prediction ~degree q v env)
    predictions;
  Propagate.run prediction;
  let t =
    {
      netlist;
      model;
      schedule;
      limits;
      budget_spec;
      degree;
      predictions;
      prediction;
      fault_point;
      measurements = [];
      next_id = 1;
      live = None;
      cached = None;
      steps = 0;
    }
  in
  ignore (rebuild t);
  Flames_obs.Metrics.gauge_add sessions_active 1.;
  Gc.finalise
    (fun _ -> Flames_obs.Metrics.gauge_add sessions_active (-1.))
    t;
  t

let bump t =
  t.steps <- t.steps + 1;
  t.cached <- None;
  Flames_obs.Metrics.incr session_steps_total

(* Mutations are transactional: the fault point fires before any state
   changes, so an injected mid-session fault aborts the step cleanly and
   the session stays reusable.  The measurement list is the sole source
   of truth; dependent state is invalidated and rebuilt lazily. *)
let add_measurement t quantity interval =
  t.fault_point "add";
  let m = { id = t.next_id; quantity; interval } in
  t.next_id <- t.next_id + 1;
  t.measurements <- t.measurements @ [ m ];
  bump t;
  t.live <- None;
  m

let find_measurement t ~id =
  List.find_opt (fun m -> m.id = id) t.measurements

let retract t ~id =
  match find_measurement t ~id with
  | None -> false
  | Some _ ->
    t.fault_point "retract";
    t.measurements <- List.filter (fun m -> m.id <> id) t.measurements;
    bump t;
    t.live <- None;
    true

let refine t ~id interval =
  match find_measurement t ~id with
  | None -> None
  | Some _ ->
    t.fault_point "refine";
    let refined = ref None in
    t.measurements <-
      List.map
        (fun m ->
          if m.id = id then begin
            let m = { m with interval } in
            refined := Some m;
            m
          end
          else m)
        t.measurements;
    bump t;
    t.live <- None;
    !refined

let diagnoses t =
  match t.cached with
  | Some r -> r
  | None ->
    Flames_obs.Trace.with_span
      ~args:[ ("circuit", t.netlist.Netlist.name) ]
      "session.diagnoses"
    @@ fun () ->
    let first = ensure_live t in
    t.fault_point "diagnose";
    let budget = Budget.start t.budget_spec in
    let r =
      Diagnose.analyze ?limits:t.limits ~budget ~degree:t.degree
        ~model:t.model ~predictions:t.predictions ~prediction:t.prediction
        ~first t.netlist (observations t)
    in
    (* A budget-tripped analysis is sound but partial: keep it out of
       the cache so a later identical query retries in full. *)
    if not r.Diagnose.degraded then t.cached <- Some r;
    r

let estimations t = Estimation.of_diagnosis (diagnoses t)

let next_test ?points t =
  let ests = estimations t in
  let points =
    match points with
    | Some points -> points
    | None -> Best_test.test_points_of_netlist t.netlist
  in
  let measured q =
    List.exists (fun m -> Quantity.compare m.quantity q = 0) t.measurements
  in
  let candidates =
    List.filter
      (fun (p : Best_test.test_point) -> not (measured p.Best_test.quantity))
      points
  in
  Best_test.best ests candidates

let restore ?config ?limits ?model ?schedule ?use_compiled ?budget_spec
    ?prediction_floor ?sensitivity_threshold ?prediction_degree
    ?simulate_predictions ?fault_point ~measurements ~next_id ~steps netlist =
  let t =
    create ?config ?limits ?model ?schedule ?use_compiled ?budget_spec
      ?prediction_floor ?sensitivity_threshold ?prediction_degree
      ?simulate_predictions ?fault_point netlist
  in
  let ms =
    List.map (fun (id, quantity, interval) -> { id; quantity; interval })
      measurements
  in
  let max_id =
    List.fold_left
      (fun hi (m : measurement) ->
        if m.id <= 0 then invalid_arg "Session.restore: measurement id <= 0";
        if List.exists (fun (o : measurement) -> o != m && o.id = m.id) ms then
          invalid_arg "Session.restore: duplicate measurement id";
        Int.max hi m.id)
      0 ms
  in
  if next_id <= max_id then
    invalid_arg "Session.restore: next_id must exceed every measurement id";
  if steps < List.length ms then
    invalid_arg "Session.restore: fewer steps than surviving measurements";
  t.measurements <- ms;
  t.next_id <- next_id;
  t.steps <- steps;
  t.live <- None;
  t.cached <- None;
  t

let measurements t = t.measurements
let next_id t = t.next_id
let netlist t = t.netlist
let model t = t.model
let schedule t = t.schedule
let steps t = t.steps
