(** Persistent incremental diagnosis sessions (paper section 8 loop).

    The paper's troubleshooting cycle — measure, diagnose, pick the next
    best test, measure again — revisits the same circuit many times.  A
    session keeps the expensive state alive between steps: the compiled
    constraint model, the simulator predictions with their sensitivity
    environments, the prediction-pass engine, and the live propagation
    engine whose ATMS labels and weighted-nogood database grow
    monotonically as measurements arrive.

    {b Equivalence contract.}  After any sequence of
    {!add_measurement} / {!retract} / {!refine} calls, {!diagnoses}
    returns a result bit-for-bit identical to a from-scratch
    {!Flames_core.Diagnose.run} over the surviving measurement list (in
    insertion order) — the property {!Flames_check.Oracle.check_session}
    exercises with random scripts.  The session therefore never feeds a
    measurement into an already-run engine in place: propagation closure
    is order-sensitive under cell trimming and value subsumption (an
    in-place add can discover {e strictly more} conflicts than the batch
    reference, sound but not identical), so every mutation invalidates
    the propagation state, which is rebuilt lazily through the very
    {!Diagnose.full_pass} stage {!Diagnose.run} uses — identical by
    construction.  What the session amortises is everything around that
    pass: model compilation, the sensitivity-analysis simulator sweeps,
    the nominal prediction pass, and the per-domain interned-environment
    table staying warm across steps. *)

module Interval = Flames_fuzzy.Interval
module Quantity = Flames_circuit.Quantity
module Netlist = Flames_circuit.Netlist
module Model = Flames_core.Model
module Schedule = Flames_core.Schedule
module Propagate = Flames_core.Propagate
module Budget = Flames_core.Budget
module Diagnose = Flames_core.Diagnose
module Best_test = Flames_strategy.Best_test
module Estimation = Flames_strategy.Estimation

type measurement = {
  id : int;  (** session-unique, assigned at entry; retraction handle *)
  quantity : Quantity.t;
  interval : Interval.t;
}

type t

val create :
  ?config:Model.config ->
  ?limits:Propagate.limits ->
  ?model:Model.t ->
  ?schedule:Schedule.t ->
  ?use_compiled:bool ->
  ?budget_spec:Budget.spec ->
  ?prediction_floor:float ->
  ?sensitivity_threshold:float ->
  ?prediction_degree:float ->
  ?simulate_predictions:bool ->
  ?fault_point:(string -> unit) ->
  Netlist.t ->
  t
(** [create netlist] compiles the model (unless [?model] or
    [?schedule] supplies the compilation of exactly this
    netlist/config), derives the simulator predictions once, and runs
    the prediction pass once; all three are reused by every later step.

    Sessions run the compiled schedule by default, exactly like
    [Diagnose.run]; [~use_compiled:false] forces the interpreter and
    ignores [?schedule].  Results are bit-identical either way.

    [?budget_spec] (default unlimited) is armed afresh for each
    {!diagnoses} call and meters only the analysis stages (guard second
    pass, fit sweeps, candidate enumeration) — the live engine itself is
    never budget-truncated, so a tripped analysis degrades that one
    result without corrupting the session.

    [?fault_point] (default no-op) is called with a stage label
    (["add"], ["retract"], ["refine"], ["diagnose"]) {e before} the
    corresponding mutation or analysis, so a fault injected there aborts
    the step without half-applying it — the chaos harness raises from it
    to prove a mid-session fault never corrupts the reusable state. *)

val restore :
  ?config:Model.config ->
  ?limits:Propagate.limits ->
  ?model:Model.t ->
  ?schedule:Schedule.t ->
  ?use_compiled:bool ->
  ?budget_spec:Budget.spec ->
  ?prediction_floor:float ->
  ?sensitivity_threshold:float ->
  ?prediction_degree:float ->
  ?simulate_predictions:bool ->
  ?fault_point:(string -> unit) ->
  measurements:(int * Quantity.t * Interval.t) list ->
  next_id:int ->
  steps:int ->
  Netlist.t ->
  t
(** [restore ~measurements ~next_id ~steps netlist] rebuilds a session
    from externally persisted state (the journal's snapshot records):
    {!create}, then the surviving measurements installed verbatim — ids
    included, because they are client-visible retraction handles and are
    not contiguous after retractions — with the id counter and step
    count picked up where the original left off.  The equivalence
    contract holds unchanged: the next {!diagnoses} rebuilds through the
    same full pass a never-restarted session would use.
    @raise Invalid_argument on duplicate or non-positive measurement
    ids, [next_id] not past every id, or [steps] below the survivor
    count. *)

val add_measurement : t -> Quantity.t -> Interval.t -> measurement
(** Enter a measurement.  The compiled model, simulator predictions and
    prediction pass are never recomputed; the propagation pass over the
    grown measurement list is redone lazily at the next query (see the
    equivalence contract above for why in-place propagation is not
    used). *)

val retract : t -> id:int -> bool
(** Remove the measurement by id; [false] when unknown.  Dependent
    state (engine, cached result) is invalidated and rebuilt on the
    next query. *)

val refine : t -> id:int -> Interval.t -> measurement option
(** Replace the measurement's interval in place (same id, same position
    in the insertion order); [None] when unknown.  Invalidates like
    {!retract}. *)

val diagnoses : t -> Diagnose.result
(** Ranked diagnosis of the current measurement set — bit-for-bit the
    from-scratch {!Diagnose.run} over {!measurements}.  Cached until the
    next mutation; degraded (budget-tripped) results are not cached, so
    a later call retries the analysis. *)

val next_test :
  ?points:Best_test.test_point list -> t -> Best_test.evaluation option
(** The paper's section-8 recommendation: fuzzy-entropy best next test
    over the live estimations, excluding quantities already measured.
    [?points] defaults to every measurable node voltage of the netlist;
    [None] when nothing useful remains. *)

val estimations : t -> Estimation.t list
(** Fuzzy faultiness estimations from the current diagnosis. *)

val measurements : t -> measurement list
(** Surviving measurements, insertion order. *)

val find_measurement : t -> id:int -> measurement option

val next_id : t -> int
(** The id the next {!add_measurement} will assign (strictly above every
    id ever assigned, retracted ones included) — persisted by the
    journal's snapshots so ids never repeat across a restart. *)

val netlist : t -> Netlist.t

val model : t -> Model.t
(** The compiled model, for passing to a from-scratch run
    ([Diagnose.run ~model]) when checking equivalence. *)

val schedule : t -> Schedule.t option
(** The compiled schedule the session executes, [None] for an
    interpreter session ([~use_compiled:false]). *)

val steps : t -> int
(** Mutations performed so far (adds + retracts + refines). *)
