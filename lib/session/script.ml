module Interval = Flames_fuzzy.Interval
module Quantity = Flames_circuit.Quantity
module Netlist = Flames_circuit.Netlist
module Fault = Flames_circuit.Fault
module Library = Flames_circuit.Library
module Measure = Flames_sim.Measure
module Report = Flames_core.Report
module Diagnose = Flames_core.Diagnose
module Best_test = Flames_strategy.Best_test
module Context = Flames_obs.Context
module Events = Flames_obs.Events
module Ids = Flames_obs.Ids

type command =
  | Circuit of string
  | Fault of string
  | Imprecision of float
  | Probe of string
  | Measure of string * float * float option
  | Observe of Quantity.t * Interval.t
  | Retract of int
  | Refine of int * float * float option
  | Refine_interval of int * Interval.t
  | Diagnoses
  | Next
  | Status
  | Quit

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let float_arg what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Printf.sprintf "%s: not a number (%S)" what s)

let int_arg what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: not a measurement id (%S)" what s)

let ( let* ) = Result.bind

let parse_line line =
  match tokens line with
  | [] -> Ok None
  | cmd :: args -> (
    let some c = Ok (Some c) in
    match (String.lowercase_ascii cmd, args) with
    | "circuit", [ name ] -> some (Circuit name)
    | "fault", [ spec ] -> some (Fault spec)
    | "imprecision", [ r ] ->
      let* r = float_arg "imprecision" r in
      if r < 0. then Error "imprecision: negative"
      else some (Imprecision r)
    | "probe", [ node ] -> some (Probe node)
    | "measure", node :: center :: rest ->
      let* center = float_arg "measure center" center in
      let* spread =
        match rest with
        | [] -> Ok None
        | [ s ] -> Result.map Option.some (float_arg "measure spread" s)
        | _ -> Error "measure: too many arguments"
      in
      some (Measure (node, center, spread))
    | "observe", [ node; m1; m2; alpha; beta ] ->
      let* m1 = float_arg "observe m1" m1 in
      let* m2 = float_arg "observe m2" m2 in
      let* alpha = float_arg "observe alpha" alpha in
      let* beta = float_arg "observe beta" beta in
      let* interval =
        match Interval.make ~m1 ~m2 ~alpha ~beta with
        | v -> Ok v
        | exception Interval.Invalid msg -> Error ("observe: " ^ msg)
      in
      some (Observe (Quantity.voltage node, interval))
    | "retract", [ id ] ->
      let* id = int_arg "retract" id in
      some (Retract id)
    | "refine-interval", [ id; m1; m2; alpha; beta ] ->
      let* id = int_arg "refine-interval" id in
      let* m1 = float_arg "refine-interval m1" m1 in
      let* m2 = float_arg "refine-interval m2" m2 in
      let* alpha = float_arg "refine-interval alpha" alpha in
      let* beta = float_arg "refine-interval beta" beta in
      let* interval =
        match Interval.make ~m1 ~m2 ~alpha ~beta with
        | v -> Ok v
        | exception Interval.Invalid msg -> Error ("refine-interval: " ^ msg)
      in
      some (Refine_interval (id, interval))
    | "refine", id :: center :: rest ->
      let* id = int_arg "refine" id in
      let* center = float_arg "refine center" center in
      let* spread =
        match rest with
        | [] -> Ok None
        | [ s ] -> Result.map Option.some (float_arg "refine spread" s)
        | _ -> Error "refine: too many arguments"
      in
      some (Refine (id, center, spread))
    | "diagnoses", [] | "diagnose", [] -> some Diagnoses
    | "next", [] | "next-test", [] -> some Next
    | "status", [] -> some Status
    | "quit", [] | "exit", [] -> some Quit
    | cmd, _ ->
      Error
        (Printf.sprintf
           "unknown or malformed command %S (try: circuit, fault, \
            imprecision, probe, measure, retract, refine, diagnoses, next, \
            status, quit)"
           cmd))

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok None -> go (n + 1) acc rest
      | Ok (Some c) -> go (n + 1) ((n, c) :: acc) rest
      | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 [] lines

(* Interpreter state: the circuit directives accumulate until the first
   probe forces a ground-truth solve; the solution is cached and
   invalidated when a directive changes it. *)
type state = {
  mutable session : Session.t option;
  mutable nominal : Netlist.t option;
  mutable faults : Fault.t list;  (** applied in order for ground truth *)
  mutable imprecision : float;
  mutable truth : Flames_sim.Mna.solution option;  (** cache *)
}

let instrument st = { Measure.relative = st.imprecision; floor = 5e-4 }

let require_session st =
  match st.session with
  | Some s -> Ok s
  | None -> Error "no circuit loaded (use: circuit <name>)"

let ground_truth st =
  match st.truth with
  | Some sol -> Ok sol
  | None -> (
    match st.nominal with
    | None -> Error "no circuit loaded (use: circuit <name>)"
    | Some nominal -> (
      match
        List.fold_left (fun net f -> Fault.inject net f) nominal st.faults
      with
      | faulty ->
        let sol = Flames_sim.Mna.solve faulty in
        st.truth <- Some sol;
        Ok sol
      | exception Not_found -> Error "fault names an unknown component"
      | exception exn ->
        Error
          (Printf.sprintf "cannot solve the faulted circuit: %s"
             (Printexc.to_string exn))))

let pp_measurement ppf (m : Session.measurement) =
  Format.fprintf ppf "[%d] %a = %a" m.Session.id Quantity.pp
    m.Session.quantity Interval.pp m.Session.interval

let print_diagnoses print (r : Diagnose.result) =
  let fmt = Format.asprintf in
  List.iter
    (fun (s : Diagnose.symptom) ->
      match s.verdict with
      | Some v ->
        print
          (fmt "  symptom %a: measured %a, %s" Quantity.pp s.quantity
             Interval.pp s.measured
             (Format.asprintf "%a" Flames_fuzzy.Consistency.pp_verdict v))
      | None -> ())
    r.symptoms;
  List.iter
    (fun (s : Diagnose.suspect) ->
      print
        (Printf.sprintf "  suspect %s @ %.3f%s" s.component s.suspicion
           (if s.explains then " (explains all symptoms)" else "")))
    r.suspects;
  List.iter
    (fun (components, rank) ->
      print
        (Printf.sprintf "  diagnosis {%s} @ %.3f"
           (String.concat ", " components)
           rank))
    r.diagnoses;
  print ("  " ^ Report.summary r)

let exec ~print ~session_of st cmd =
  let ok = Ok () in
  match cmd with
  | Circuit name -> (
    match List.assoc_opt name Library.builtins with
    | None ->
      Error
        (Printf.sprintf "unknown circuit %S (builtins: %s)" name
           (String.concat ", " (List.map fst Library.builtins)))
    | Some build ->
      let netlist = build () in
      st.nominal <- Some netlist;
      st.truth <- None;
      st.session <- Some (session_of netlist);
      print
        (Printf.sprintf "session on %s (%d components)" netlist.Netlist.name
           (List.length netlist.Netlist.components));
      ok)
  | Fault spec -> (
    match Fault.of_spec spec with
    | Error e -> Error e
    | Ok fault ->
      st.faults <- st.faults @ [ fault ];
      st.truth <- None;
      print (Format.asprintf "ground truth: %a" Fault.pp fault);
      ok)
  | Imprecision r ->
    st.imprecision <- r;
    st.truth <- None;
    ok
  | Probe node ->
    let* session = require_session st in
    let* sol = ground_truth st in
    let q = Quantity.voltage node in
    let* interval =
      match Measure.probe ~instrument:(instrument st) sol q with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "node %S is not measurable" node)
    in
    let m = Session.add_measurement session q interval in
    print (Format.asprintf "%a" pp_measurement m);
    ok
  | Measure (node, center, spread) ->
    let* session = require_session st in
    let interval =
      match spread with
      | Some s -> Interval.number center ~spread:s
      | None -> Measure.fuzzify (instrument st) center
    in
    let m = Session.add_measurement session (Quantity.voltage node) interval in
    print (Format.asprintf "%a" pp_measurement m);
    ok
  | Observe (quantity, interval) ->
    let* session = require_session st in
    let m = Session.add_measurement session quantity interval in
    print (Format.asprintf "%a" pp_measurement m);
    ok
  | Retract id ->
    let* session = require_session st in
    if Session.retract session ~id then begin
      print (Printf.sprintf "retracted [%d]" id);
      ok
    end
    else Error (Printf.sprintf "no measurement [%d]" id)
  | Refine (id, center, spread) -> (
    let* session = require_session st in
    let interval =
      match spread with
      | Some s -> Interval.number center ~spread:s
      | None -> Measure.fuzzify (instrument st) center
    in
    match Session.refine session ~id interval with
    | Some m ->
      print (Format.asprintf "refined %a" pp_measurement m);
      ok
    | None -> Error (Printf.sprintf "no measurement [%d]" id))
  | Refine_interval (id, interval) -> (
    let* session = require_session st in
    match Session.refine session ~id interval with
    | Some m ->
      print (Format.asprintf "refined %a" pp_measurement m);
      ok
    | None -> Error (Printf.sprintf "no measurement [%d]" id))
  | Diagnoses ->
    let* session = require_session st in
    print_diagnoses print (Session.diagnoses session);
    ok
  | Next -> (
    let* session = require_session st in
    match Session.next_test session with
    | Some e ->
      print (Format.asprintf "%a" Best_test.pp_evaluation e);
      ok
    | None ->
      print "no test point left to recommend";
      ok)
  | Status ->
    let* session = require_session st in
    print
      (Printf.sprintf "circuit %s, %d measurement(s), %d step(s)"
         (Session.netlist session).Netlist.name
         (List.length (Session.measurements session))
         (Session.steps session));
    List.iter
      (fun m -> print (Format.asprintf "  %a" pp_measurement m))
      (Session.measurements session);
    ok
  | Quit -> ok

let run ?(echo = false) ?(print = print_endline)
    ?(session_of = fun netlist -> Session.create netlist) commands =
  let st =
    {
      session = None;
      nominal = None;
      faults = [];
      imprecision = 0.002;
      truth = None;
    }
  in
  let render cmd =
    match cmd with
    | Circuit n -> "circuit " ^ n
    | Fault s -> "fault " ^ s
    | Imprecision r -> Printf.sprintf "imprecision %g" r
    | Probe n -> "probe " ^ n
    | Measure (n, c, s) ->
      Printf.sprintf "measure %s %g%s" n c
        (match s with Some s -> Printf.sprintf " %g" s | None -> "")
    | Observe (q, v) ->
      Printf.sprintf "observe %s %h %h %h %h"
        (match q with Quantity.Node_voltage n -> n | q -> Quantity.to_string q)
        v.Interval.m1 v.Interval.m2 v.Interval.alpha v.Interval.beta
    | Retract id -> Printf.sprintf "retract %d" id
    | Refine (id, c, s) ->
      Printf.sprintf "refine %d %g%s" id c
        (match s with Some s -> Printf.sprintf " %g" s | None -> "")
    | Refine_interval (id, v) ->
      Printf.sprintf "refine-interval %d %h %h %h %h" id v.Interval.m1
        v.Interval.m2 v.Interval.alpha v.Interval.beta
    | Diagnoses -> "diagnoses"
    | Next -> "next"
    | Status -> "status"
    | Quit -> "quit"
  in
  (* One trace id covers the whole script; each step runs under a fresh
     child context (same trace, same session id once a circuit opened
     one), so its wide event carries per-step — not cumulative — stage
     timings. *)
  let trace_id = if Events.enabled () then Some (Ids.trace_id ()) else None in
  let session_id = ref None in
  let session_count = ref 0 in
  let step_count = ref 0 in
  let exec_step cmd =
    match trace_id with
    | None -> exec ~print ~session_of st cmd
    | Some trace_id ->
      let ctx =
        Context.make ?session_id:!session_id ~route:"troubleshoot" ~trace_id ()
      in
      Context.with_context ctx (fun () ->
          incr step_count;
          let t0 = Unix.gettimeofday () in
          let result = exec ~print ~session_of st cmd in
          (match (cmd, result) with
          | Circuit _, Ok () ->
            incr session_count;
            session_id := Some (Printf.sprintf "cli-s%d" !session_count);
            Context.set_session (Option.get !session_id)
          | _ -> ());
          Events.emit ~ctx ~name:"session.step"
            [
              ("step", Events.Int !step_count);
              ("cmd", Events.Str (render cmd));
              ( "status",
                Events.Str
                  (match result with Ok () -> "ok" | Error _ -> "error") );
              ( "elapsed_ms",
                Events.Num ((Unix.gettimeofday () -. t0) *. 1e3) );
            ];
          result)
  in
  let rec go = function
    | [] -> Ok st.session
    | (line, cmd) :: rest -> (
      if echo then print ("> " ^ render cmd);
      match exec_step cmd with
      | Ok () -> if cmd = Quit then Ok st.session else go rest
      | Error e -> Error (Printf.sprintf "line %d: %s" line e))
  in
  go commands

(* Journal recovery enters here: the session is already open (rebuilt
   from a create or snapshot record), so the interpreter starts with it
   bound instead of waiting for a [circuit] directive.  The replayed
   commands go through the very same [exec] the live interpreter uses —
   which is what makes a recovered session bit-identical to one that
   never restarted. *)
let replay ~session commands =
  let st =
    {
      session = Some session;
      nominal = Some (Session.netlist session);
      faults = [];
      imprecision = 0.002;
      truth = None;
    }
  in
  let rec go = function
    | [] -> Ok ()
    | cmd :: rest -> (
      match exec ~print:ignore ~session_of:(fun _ -> session) st cmd with
      | Ok () -> go rest
      | Error _ as e -> e)
  in
  go commands
