type t = {
  jobs : int;
  succeeded : int;
  failed : int;
  workers : int;
  conflicts : int;
  cache_hits : int;
  cache_misses : int;
  retried : int;
  shed : int;
  degraded : int;
  wall_time : float;
  cpu_time : float;
  compile_wall : float;
  diagnose_wall : float;
}

let zero =
  {
    jobs = 0;
    succeeded = 0;
    failed = 0;
    workers = 0;
    conflicts = 0;
    cache_hits = 0;
    cache_misses = 0;
    retried = 0;
    shed = 0;
    degraded = 0;
    wall_time = 0.;
    cpu_time = 0.;
    compile_wall = 0.;
    diagnose_wall = 0.;
  }

let throughput t =
  if t.wall_time > 0. then float_of_int (t.succeeded + t.failed) /. t.wall_time
  else 0.

(* Shared JSON schema: the bench harness (BENCH_*.json) and the CLI's
   --stats-json both emit these fields, so downstream tooling parses one
   shape.  [to_json_fields] is braceless so callers can prepend their own
   context fields (e.g. the bench's "cache" tag) inside one object. *)
let to_json_fields ppf t =
  Format.fprintf ppf
    "\"jobs\": %d, \"succeeded\": %d, \"failed\": %d, \"workers\": %d, \
     \"conflicts\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \
     \"retried\": %d, \"shed\": %d, \"degraded\": %d, \
     \"wall_s\": %.6f, \"cpu_s\": %.6f, \"jobs_per_s\": %.2f, \
     \"compile_s\": %.6f, \"diagnose_s\": %.6f"
    t.jobs t.succeeded t.failed t.workers t.conflicts t.cache_hits
    t.cache_misses t.retried t.shed t.degraded t.wall_time t.cpu_time
    (throughput t) t.compile_wall t.diagnose_wall

let to_json t = Format.asprintf "{ %a }" to_json_fields t

let pp ppf t =
  Format.fprintf ppf
    "@[<v>engine stats:@,\
    \  jobs      %d (%d ok, %d failed) on %d worker%s@,\
    \  resil     %d retried, %d shed, %d degraded@,\
    \  conflicts %d@,\
    \  cache     %d hit%s, %d miss%s@,\
    \  wall      %.3f s (%.1f jobs/s), cpu %.3f s@,\
    \  stages    compile %.3f s, diagnose %.3f s (summed across workers)@]"
    t.jobs t.succeeded t.failed t.workers
    (if t.workers = 1 then "" else "s")
    t.retried t.shed t.degraded t.conflicts t.cache_hits
    (if t.cache_hits = 1 then "" else "s")
    t.cache_misses
    (if t.cache_misses = 1 then "" else "es")
    t.wall_time (throughput t) t.cpu_time t.compile_wall t.diagnose_wall
