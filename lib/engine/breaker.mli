(** Per-fingerprint circuit breaker for load shedding.

    A batch that keeps resubmitting a job class that always fails (a
    pathological circuit crashing its worker, say) wastes worker time
    that healthy jobs could use.  The breaker tracks failures per key —
    {!Batch} keys by model fingerprint, so all jobs over the same
    circuit share a circuit state — and after [threshold] consecutive
    failures {e opens}: further jobs with that key are shed up-front
    ([Error (Breaker_open _)]) instead of submitted.  After [cooldown]
    seconds one probe job is let through (half-open); its success closes
    the breaker again, its failure re-opens it for another cooldown.

    Thread-safe; time is injectable for tests. *)

type t

val create : ?threshold:int -> ?cooldown:float -> ?now:(unit -> float) ->
  unit -> t
(** [threshold] consecutive failures open a key (default 3); an open key
    sheds for [cooldown] seconds (default 5) before allowing a probe.
    [now] defaults to the wall clock.
    @raise Invalid_argument on a non-positive threshold or negative
    cooldown. *)

val decide : t -> string -> [ `Allow | `Shed ]
(** Gate one job.  [`Allow] on a closed key, or on an open key whose
    cooldown elapsed (the key moves to half-open and this caller is the
    probe — it must report back via {!success} or {!failure}). *)

val success : t -> string -> unit
(** The job succeeded: close the key and reset its failure count. *)

val failure : t -> string -> unit
(** The job failed: count it (closed), or re-open the key (half-open
    probe failure). *)

val state : t -> string -> [ `Closed | `Open | `Half_open ]
