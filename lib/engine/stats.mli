(** Observability record of one {!Batch} run. *)

type t = {
  jobs : int;  (** jobs submitted *)
  succeeded : int;
  failed : int;  (** cancelled, timed out or raised *)
  workers : int;
  conflicts : int;  (** total weighted conflicts across successful jobs *)
  cache_hits : int;  (** model-cache hits attributable to this batch *)
  cache_misses : int;
  retried : int;  (** re-submissions after retryable failures *)
  shed : int;  (** jobs refused by an open circuit breaker *)
  degraded : int;  (** diagnosis runs that returned budget-degraded *)
  wall_time : float;  (** batch wall-clock seconds, submit to last await *)
  cpu_time : float;
      (** process CPU seconds consumed by the batch (all domains) *)
  compile_wall : float;
      (** summed per-job model-acquisition seconds (can exceed
          [wall_time]: jobs overlap) *)
  diagnose_wall : float;  (** summed per-job diagnosis seconds *)
}

val zero : t

val throughput : t -> float
(** Jobs completed per wall-clock second ([0.] on an empty batch). *)

val pp : Format.formatter -> t -> unit

val to_json_fields : Format.formatter -> t -> unit
(** The stats as a braceless JSON field list ([ "jobs": 5, ... ]) so a
    caller can splice extra context fields into the same object — the
    bench harness's BENCH_*.json rows use exactly this schema. *)

val to_json : t -> string
(** [to_json t] is the fields wrapped in an object: [{ "jobs": 5, ... }]. *)
