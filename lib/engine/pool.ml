module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace

type error =
  | Cancelled
  | Timed_out
  | Failed of exn

(* Each promise carries its own mutex/condition so resolution only wakes
   its awaiters, and so a promise can be awaited after the pool is gone. *)
type 'a promise = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  deadline : float option;  (* absolute, seconds since the epoch *)
  submitted : float;  (* enqueue instant, for the queue-wait histogram *)
  label : string option;  (* span label in traces *)
  mutable running : bool;
  mutable result : ('a, error) result option;
}

type packed = Job : 'a promise * (unit -> 'a) -> packed

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* signalled on enqueue and on shutdown *)
  queue : packed Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  nworkers : int;
}

let now () = Unix.gettimeofday ()

let expired promise =
  match promise.deadline with
  | None -> false
  | Some d -> now () >= d

(* Caller holds [p_mutex].  First resolution wins; later ones (a worker
   finishing a job that already timed out) are discarded. *)
let resolve promise result =
  if promise.result = None then begin
    promise.result <- Some result;
    promise.running <- false;
    Condition.broadcast promise.p_cond
  end

let run_job (Job (promise, f)) =
  Mutex.lock promise.p_mutex;
  if promise.result <> None then
    (* cancelled or expired while queued *)
    Mutex.unlock promise.p_mutex
  else if expired promise then begin
    resolve promise (Error Cancelled);
    Mutex.unlock promise.p_mutex
  end
  else begin
    promise.running <- true;
    Mutex.unlock promise.p_mutex;
    Metrics.observe Telemetry.queue_wait_seconds (now () -. promise.submitted);
    (* the span runs on the worker domain, so each worker is its own
       track in the exported trace *)
    let args =
      match promise.label with None -> [] | Some l -> [ ("label", l) ]
    in
    let outcome =
      match Trace.with_span ~args "pool.job" f with
      | v -> Ok v
      | exception e -> Error (Failed e)
    in
    Mutex.lock promise.p_mutex;
    resolve promise (if expired promise then Error Timed_out else outcome);
    Mutex.unlock promise.p_mutex
  end

let worker ~minor_heap_words pool () =
  (* Diagnosis jobs allocate heavily; OCaml 5 minor collections are
     stop-the-world across every domain, so a small minor heap makes the
     workers spend their time synchronising instead of diagnosing
     (catastrophically so when the pool oversubscribes the cores).
     Growing each worker's own minor heap cuts the sync rate; the
     setting dies with the domain. *)
  if minor_heap_words > 0 then
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = minor_heap_words };
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    match Queue.take_opt pool.queue with
    | Some job ->
      Mutex.unlock pool.mutex;
      run_job job;
      loop ()
    | None ->
      (* stop requested and the queue is drained *)
      Mutex.unlock pool.mutex
  in
  loop ()

let create ?workers ?(minor_heap_words = 4_194_304) () =
  let nworkers =
    match workers with
    | Some n ->
      if n < 1 then invalid_arg "Pool.create: workers must be >= 1";
      n
    | None -> Int.max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
      nworkers;
    }
  in
  pool.domains <-
    List.init nworkers (fun _ ->
        Domain.spawn (worker ~minor_heap_words pool));
  pool

let workers pool = pool.nworkers

let submit pool ?label ?timeout f =
  let submitted = now () in
  let deadline = Option.map (fun t -> submitted +. t) timeout in
  Metrics.incr Telemetry.jobs_total;
  let promise =
    {
      p_mutex = Mutex.create ();
      p_cond = Condition.create ();
      deadline;
      submitted;
      label;
      running = false;
      result = None;
    }
  in
  Mutex.lock pool.mutex;
  if pool.stop then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add (Job (promise, f)) pool.queue;
  Condition.signal pool.cond;
  Mutex.unlock pool.mutex;
  promise

let cancel promise =
  Mutex.lock promise.p_mutex;
  let ok = promise.result = None && not promise.running in
  if ok then resolve promise (Error Cancelled);
  Mutex.unlock promise.p_mutex;
  ok

(* The stdlib has no timed condition wait, so promises with a deadline
   are awaited by short poll-sleeps; undeadlined promises block on the
   condition variable proper. *)
let await promise =
  let rec loop () =
    match promise.result with
    | Some r -> r
    | None -> begin
      match promise.deadline with
      | None ->
        Condition.wait promise.p_cond promise.p_mutex;
        loop ()
      | Some d ->
        let t = now () in
        if t >= d then begin
          let r = if promise.running then Error Timed_out else Error Cancelled in
          resolve promise r;
          r
        end
        else begin
          Mutex.unlock promise.p_mutex;
          Unix.sleepf (Float.min 0.002 (d -. t));
          Mutex.lock promise.p_mutex;
          loop ()
        end
    end
  in
  Mutex.lock promise.p_mutex;
  let r = loop () in
  Mutex.unlock promise.p_mutex;
  r

let peek promise =
  Mutex.lock promise.p_mutex;
  let r = promise.result in
  Mutex.unlock promise.p_mutex;
  r

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.cond;
  let domains = pool.domains in
  pool.domains <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join domains

let with_pool ?workers ?minor_heap_words f =
  let pool = create ?workers ?minor_heap_words () in
  match f pool with
  | v ->
    shutdown pool;
    v
  | exception e ->
    shutdown pool;
    raise e
