module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace
module Context = Flames_obs.Context
module Budget = Flames_core.Budget

type error =
  | Cancelled
  | Timed_out
  | Failed of exn
  | Crashed of { attempts : int }

exception Kill_worker

(* Each promise carries its own mutex/condition so resolution only wakes
   its awaiters, and so a promise can be awaited after the pool is gone. *)
type 'a promise = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  deadline : float option;  (* absolute, seconds since the epoch *)
  grace : float;  (* extra wait after the deadline for a budgeted job *)
  budget : Budget.t option;  (* cancelled at the deadline: cooperative stop *)
  submitted : float;  (* enqueue instant, for the queue-wait histogram *)
  label : string option;  (* span label in traces *)
  ctx : Context.t option;  (* submitter's request context, restored in
                              the worker so cross-domain work stays
                              attributed to the request *)
  mutable running : bool;
  mutable result : ('a, error) result option;
}

(* The int counts runs already started: a job requeued after a worker
   crash carries its attempt history with it. *)
type packed = Job : 'a promise * (unit -> 'a) * int -> packed

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* signalled on enqueue and on shutdown *)
  queue : packed Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  nworkers : int;
  crash_retries : int;
  minor_heap_words : int;
  inflight : int Atomic.t;  (* jobs taken off the queue, not yet settled *)
}

let now () = Unix.gettimeofday ()

let expired promise =
  match promise.deadline with
  | None -> false
  | Some d -> now () >= d

(* Caller holds [p_mutex].  First resolution wins; later ones (a worker
   finishing a job that already timed out) are discarded. *)
let resolve promise result =
  if promise.result = None then begin
    promise.result <- Some result;
    promise.running <- false;
    Condition.broadcast promise.p_cond
  end

let resolve_locked promise result =
  Mutex.lock promise.p_mutex;
  resolve promise result;
  Mutex.unlock promise.p_mutex

let run_job (Job (promise, f, _)) =
  Mutex.lock promise.p_mutex;
  if promise.result <> None then
    (* cancelled or expired while queued *)
    Mutex.unlock promise.p_mutex
  else if expired promise then begin
    resolve promise (Error Cancelled);
    Mutex.unlock promise.p_mutex
  end
  else begin
    promise.running <- true;
    Mutex.unlock promise.p_mutex;
    let wait = now () -. promise.submitted in
    Metrics.observe Telemetry.queue_wait_seconds wait;
    (* queue wait is also attributed to the submitting request's wide
       event, not just the global histogram *)
    (match promise.ctx with
    | Some c -> Context.annotate_ctx c "queue_wait_s" (Context.Num wait)
    | None -> ());
    (* the span runs on the worker domain, so each worker is its own
       track in the exported trace *)
    let args =
      match promise.label with None -> [] | Some l -> [ ("label", l) ]
    in
    let outcome =
      match
        Context.with_context_opt promise.ctx (fun () ->
            Trace.with_span ~args "pool.job" f)
      with
      | v -> Ok v
      | exception Kill_worker ->
        (* chaos switch: the job wants the whole worker domain dead.
           Leave the promise unresolved — the supervision wrapper will
           requeue or settle it. *)
        raise Kill_worker
      | exception e -> Error (Failed e)
    in
    Mutex.lock promise.p_mutex;
    (* A budgeted job that overran its deadline was asked to stop
       cooperatively; whatever it returned within the grace window is a
       degraded-but-valid result and is kept.  Without a budget the old
       hard-deadline contract holds: late results are discarded. *)
    let keep_late = promise.budget <> None in
    resolve promise
      (if expired promise && not keep_late then Error Timed_out else outcome);
    Mutex.unlock promise.p_mutex
  end

let worker ~minor_heap_words pool slot () =
  (* Diagnosis jobs allocate heavily; OCaml 5 minor collections are
     stop-the-world across every domain, so a small minor heap makes the
     workers spend their time synchronising instead of diagnosing
     (catastrophically so when the pool oversubscribes the cores).
     Growing each worker's own minor heap cuts the sync rate; the
     setting dies with the domain. *)
  if minor_heap_words > 0 then
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = minor_heap_words };
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    match Queue.take_opt pool.queue with
    | Some job ->
      Mutex.unlock pool.mutex;
      (* the in-flight window matches the slot window exactly, so the
         crash path (which sees a non-empty slot) can undo the count *)
      slot := Some job;
      Atomic.incr pool.inflight;
      run_job job;
      Atomic.decr pool.inflight;
      slot := None;
      loop ()
    | None ->
      (* stop requested and the queue is drained *)
      Mutex.unlock pool.mutex
  in
  loop ()

(* Supervision by self-replacement: each worker runs under a wrapper
   that catches a death mid-job (anything escaping [run_job], in
   practice [Kill_worker] or a runtime fatal like [Stack_overflow]),
   settles or requeues the in-flight job, and spawns a replacement
   domain unless the pool is stopping.  The dead domain stays in
   [pool.domains] so [shutdown] joins it (its wrapper returns normally,
   so the join is clean). *)
let rec spawn_worker pool =
  let slot = ref None in
  Domain.spawn (fun () ->
      try worker ~minor_heap_words:pool.minor_heap_words pool slot ()
      with _ ->
        Metrics.incr Telemetry.respawns_total;
        (match !slot with
        | None -> ()
        | Some (Job (p, f, started)) ->
          Atomic.decr pool.inflight;
          let attempts = started + 1 in
          if attempts > pool.crash_retries then
            resolve_locked p (Error (Crashed { attempts }))
          else begin
            Metrics.incr Telemetry.requeues_total;
            Mutex.lock pool.mutex;
            Queue.add (Job (p, f, attempts)) pool.queue;
            Condition.signal pool.cond;
            Mutex.unlock pool.mutex
          end);
        Mutex.lock pool.mutex;
        if not pool.stop then pool.domains <- spawn_worker pool :: pool.domains;
        Mutex.unlock pool.mutex)

let create ?workers ?(minor_heap_words = 4_194_304) ?(crash_retries = 1) () =
  let nworkers =
    match workers with
    | Some n ->
      if n < 1 then invalid_arg "Pool.create: workers must be >= 1";
      n
    | None -> Int.max 1 (Domain.recommended_domain_count () - 1)
  in
  if crash_retries < 0 then
    invalid_arg "Pool.create: crash_retries must be >= 0";
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
      nworkers;
      crash_retries;
      minor_heap_words;
      inflight = Atomic.make 0;
    }
  in
  pool.domains <- List.init nworkers (fun _ -> spawn_worker pool);
  pool

let workers pool = pool.nworkers

let queue_depth pool =
  Mutex.lock pool.mutex;
  let n = Queue.length pool.queue in
  Mutex.unlock pool.mutex;
  n

let in_flight pool = Atomic.get pool.inflight

let submit pool ?label ?timeout ?budget f =
  let submitted = now () in
  let deadline = Option.map (fun t -> submitted +. t) timeout in
  Metrics.incr Telemetry.jobs_total;
  let grace =
    match (budget, timeout) with
    | Some _, Some t -> Float.max 0.05 (0.5 *. t)
    | _ -> 0.
  in
  let promise =
    {
      p_mutex = Mutex.create ();
      p_cond = Condition.create ();
      deadline;
      grace;
      budget;
      submitted;
      label;
      ctx = Context.current ();
      running = false;
      result = None;
    }
  in
  Mutex.lock pool.mutex;
  if pool.stop then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add (Job (promise, f, 0)) pool.queue;
  Condition.signal pool.cond;
  Mutex.unlock pool.mutex;
  promise

let cancel promise =
  Mutex.lock promise.p_mutex;
  let ok = promise.result = None && not promise.running in
  if ok then resolve promise (Error Cancelled);
  Mutex.unlock promise.p_mutex;
  ok

(* The stdlib has no timed condition wait, so promises with a deadline
   are awaited by short poll-sleeps; undeadlined promises block on the
   condition variable proper. *)
let await promise =
  let rec loop () =
    match promise.result with
    | Some r -> r
    | None -> begin
      match promise.deadline with
      | None ->
        Condition.wait promise.p_cond promise.p_mutex;
        loop ()
      | Some d ->
        let t = now () in
        if t >= d then begin
          (* tell a budgeted job to stop at its next check-point *)
          (match promise.budget with
          | Some b -> Budget.cancel b
          | None -> ());
          if promise.running && t < d +. promise.grace then begin
            (* cancellation is cooperative: give the running job its
               grace window to wind down and return a partial result *)
            Mutex.unlock promise.p_mutex;
            Unix.sleepf (Float.min 0.002 (d +. promise.grace -. t));
            Mutex.lock promise.p_mutex;
            loop ()
          end
          else begin
            let r =
              if promise.running then Error Timed_out else Error Cancelled
            in
            resolve promise r;
            r
          end
        end
        else begin
          Mutex.unlock promise.p_mutex;
          Unix.sleepf (Float.min 0.002 (d -. t));
          Mutex.lock promise.p_mutex;
          loop ()
        end
    end
  in
  Mutex.lock promise.p_mutex;
  let r = loop () in
  Mutex.unlock promise.p_mutex;
  r

let peek promise =
  Mutex.lock promise.p_mutex;
  let r = promise.result in
  Mutex.unlock promise.p_mutex;
  r

(* Joining must loop: a worker that died mid-shutdown may have added a
   replacement to [pool.domains] after the first batch was taken, and
   each join guarantees the joined domain's wrapper (including any such
   add) has completed, so a final empty check is authoritative. *)
let join_all pool =
  let rec take () =
    match pool.domains with
    | [] -> ()
    | ds ->
      pool.domains <- [];
      Mutex.unlock pool.mutex;
      List.iter Domain.join ds;
      Mutex.lock pool.mutex;
      take ()
  in
  take ()

(* After every domain is gone, anything still queued can never run
   (e.g. every worker crashed past its retry allowance): resolving the
   leftovers keeps the no-hung-await guarantee. *)
let sweep_queue pool =
  let leftovers = Queue.fold (fun acc j -> j :: acc) [] pool.queue in
  Queue.clear pool.queue;
  leftovers

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.cond;
  join_all pool;
  let leftovers = sweep_queue pool in
  Mutex.unlock pool.mutex;
  List.iter (fun (Job (p, _, _)) -> resolve_locked p (Error Cancelled)) leftovers

let shutdown_now pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  (* withdraw queued work first so idle workers exit without draining *)
  let leftovers = sweep_queue pool in
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter
    (fun (Job (p, _, _)) -> resolve_locked p (Error Cancelled))
    leftovers;
  Mutex.lock pool.mutex;
  join_all pool;
  let stragglers = sweep_queue pool in
  Mutex.unlock pool.mutex;
  List.iter
    (fun (Job (p, _, _)) -> resolve_locked p (Error Cancelled))
    stragglers

let with_pool ?workers ?minor_heap_words ?crash_retries f =
  let pool = create ?workers ?minor_heap_words ?crash_retries () in
  match f pool with
  | v ->
    shutdown pool;
    v
  | exception e ->
    shutdown pool;
    raise e
