module Model = Flames_core.Model
module Schedule = Flames_core.Schedule
module Netlist = Flames_circuit.Netlist
module Component = Flames_circuit.Component
module Interval = Flames_fuzzy.Interval

type entry = { schedule : Schedule.t; mutable last_used : int }

(* The per-instance counters are atomics, not plain fields: [stats]
   reads them without taking the cache mutex, and future lock-narrowing
   must not be able to lose increments under domain contention.  Each
   bump also feeds the process-global registry counterparts
   ([Telemetry.cache_*]), which is what traces and exporters read. *)
type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    capacity;
    tick = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

(* Floats are rendered in hex so the fingerprint is bit-exact: a 1e-9
   parameter shift (a fault, a tolerance tweak) must change the key. *)
let add_interval b (v : Interval.t) =
  Printf.bprintf b "[%h;%h;%h;%h]" v.Interval.m1 v.Interval.m2 v.Interval.alpha
    v.Interval.beta

let add_kind b (kind : Component.kind) =
  match kind with
  | Component.Resistor r ->
    Buffer.add_string b "R";
    add_interval b r
  | Component.Capacitor c ->
    Buffer.add_string b "C";
    add_interval b c
  | Component.Inductor l ->
    Buffer.add_string b "L";
    add_interval b l
  | Component.Voltage_source v ->
    Buffer.add_string b "V";
    add_interval b v
  | Component.Diode { forward_drop; max_current } ->
    Buffer.add_string b "D";
    add_interval b forward_drop;
    add_interval b max_current
  | Component.Gain_block g ->
    Buffer.add_string b "A";
    add_interval b g
  | Component.Bjt { beta; vbe } ->
    Buffer.add_string b "Q";
    add_interval b beta;
    add_interval b vbe

let add_component b (c : Component.t) =
  Printf.bprintf b "%s:" c.Component.name;
  add_kind b c.Component.kind;
  List.iter (fun (t, n) -> Printf.bprintf b ";%s=%s" t n) c.Component.nodes;
  Buffer.add_char b '|'

(* Version tag of the cached value representation.  v1 entries held
   compiled [Model.t]s; v2 holds [Schedule.t]s.  The tag leads the
   fingerprint input, so a process that ever shares serialized keys
   (or a future persistent cache) can never hand a schedule consumer a
   stale model entry: the representations live under disjoint keys and
   old-format entries simply age out through LRU eviction. *)
let schema_version = 2

let fingerprint ?schema ?(config = Model.default_config) netlist =
  let schema = match schema with Some s -> s | None -> schema_version in
  let b = Buffer.create 512 in
  Printf.bprintf b "schema:%d|" schema;
  Printf.bprintf b "net:%s;gnd:%s;ports:%s|" netlist.Netlist.name
    netlist.Netlist.ground
    (String.concat "," netlist.Netlist.ports);
  List.iter (add_component b) netlist.Netlist.components;
  Printf.bprintf b "cfg:%b;%b;%s" config.Model.node_assumptions config.Model.kcl
    (String.concat "," config.Model.trusted);
  Digest.to_hex (Digest.string (Buffer.contents b))

let evict_lru cache =
  while Hashtbl.length cache.table > cache.capacity do
    let victim =
      Hashtbl.fold
        (fun key entry acc ->
          match acc with
          | Some (_, best) when best.last_used <= entry.last_used -> acc
          | Some _ | None -> Some (key, entry))
        cache.table None
    in
    match victim with
    | Some (key, _) ->
      Hashtbl.remove cache.table key;
      Atomic.incr cache.evictions;
      Flames_obs.Metrics.incr Telemetry.cache_evictions_total
    | None -> ()
  done

let compile cache ?config netlist =
  let key = fingerprint ?config netlist in
  Mutex.lock cache.mutex;
  cache.tick <- cache.tick + 1;
  let tick = cache.tick in
  match Hashtbl.find_opt cache.table key with
  | Some entry ->
    entry.last_used <- tick;
    Atomic.incr cache.hits;
    Flames_obs.Metrics.incr Telemetry.cache_hits_total;
    Flames_obs.Context.annotate "cache" (Flames_obs.Context.Str "hit");
    let schedule = entry.schedule in
    Mutex.unlock cache.mutex;
    schedule
  | None ->
    Atomic.incr cache.misses;
    Flames_obs.Metrics.incr Telemetry.cache_misses_total;
    Flames_obs.Context.annotate "cache" (Flames_obs.Context.Str "miss");
    (* compile outside the lock so distinct keys compile in parallel;
       a racing domain may compile the same key twice — both results
       are identical and the first insertion wins *)
    Mutex.unlock cache.mutex;
    let schedule = Schedule.compile ?config netlist in
    Mutex.lock cache.mutex;
    let schedule =
      match Hashtbl.find_opt cache.table key with
      | Some entry ->
        entry.last_used <- tick;
        entry.schedule
      | None ->
        Hashtbl.replace cache.table key { schedule; last_used = tick };
        evict_lru cache;
        schedule
    in
    Flames_obs.Metrics.gauge_set Telemetry.cache_resident
      (float_of_int (Hashtbl.length cache.table));
    Mutex.unlock cache.mutex;
    schedule

let stats cache =
  Mutex.lock cache.mutex;
  let size = Hashtbl.length cache.table in
  Mutex.unlock cache.mutex;
  {
    hits = Atomic.get cache.hits;
    misses = Atomic.get cache.misses;
    evictions = Atomic.get cache.evictions;
    size;
    capacity = cache.capacity;
  }

let clear cache =
  Mutex.lock cache.mutex;
  Hashtbl.reset cache.table;
  Mutex.unlock cache.mutex

let pp_stats ppf s =
  Format.fprintf ppf "hits %d, misses %d, evictions %d, resident %d/%d" s.hits
    s.misses s.evictions s.size s.capacity
