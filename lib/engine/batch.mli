(** Deterministic batch diagnosis over a {!Pool} of workers.

    A batch is a list of independent [(netlist, observations)] jobs.
    Each job obtains its compiled schedule through the shared {!Cache}
    and runs the standard sequential {!Flames_core.Diagnose.run} in a
    worker domain —
    the parallel path executes exactly the same computation as the
    sequential one, so results are identical and are returned in
    submission order regardless of completion order.

    Failures never escape as exceptions: every outcome is a
    [(result, Err.t) result], and the resilience knobs — per-job
    {!type-retry} with jittered exponential backoff, a per-fingerprint
    {!Breaker}, per-attempt {!Flames_core.Budget} arming — compose on
    top without changing the success path. *)

module Model = Flames_core.Model
module Diagnose = Flames_core.Diagnose
module Propagate = Flames_core.Propagate
module Budget = Flames_core.Budget
module Err = Flames_core.Err
module Netlist = Flames_circuit.Netlist

type job = private {
  label : string;
  netlist : Netlist.t;
  observations : Diagnose.observation list;
  config : Model.config option;
  limits : Propagate.limits option;
  prelude : (int -> unit) option;
}

val job :
  ?label:string ->
  ?config:Model.config ->
  ?limits:Propagate.limits ->
  ?prelude:(int -> unit) ->
  Netlist.t ->
  Diagnose.observation list ->
  job
(** A diagnosis job; [label] defaults to the netlist name.  [prelude],
    when given, runs on the worker at the start of every attempt with
    the attempt number (1-based) — the fault-injection hook
    {!Flames_check.Chaos} uses (it may raise, or raise
    {!Pool.Kill_worker}). *)

type outcome = (Diagnose.result, Err.t) result

type retry = private {
  attempts : int;  (** max attempts per job, including the first *)
  base_delay : float;  (** backoff before the 2nd attempt (seconds) *)
  max_delay : float;  (** backoff cap *)
  seed : int;  (** jitter seed (replayable) *)
}

val retry :
  ?attempts:int -> ?base_delay:float -> ?max_delay:float -> ?seed:int ->
  unit -> retry
(** Retry policy: up to [attempts] (default 3) attempts per job, only
    for {!Err.retryable} errors (worker crashes and unclassified
    failures — deterministic input errors are not retried).  The delay
    before attempt [n+1] is [min max_delay (base_delay * 2^(n-1))]
    scaled by a jitter in [0.5, 1] drawn deterministically from
    [(seed, job index, n)].
    @raise Invalid_argument on non-positive attempts or negative
    delays. *)

val run_in :
  pool:Pool.t ->
  ?cache:Cache.t ->
  ?timeout:float ->
  ?budget:Budget.spec ->
  ?retry:retry ->
  ?breaker:Breaker.t ->
  ?use_compiled:bool ->
  job list ->
  outcome list * Stats.t
(** [run_in ~pool jobs] submits every job to the pool, awaits them in
    submission order and returns the outcomes in that same order.

    [?cache] shares compiled models across jobs (and across calls, when
    the caller reuses the cache); without it a private cache is used, so
    same-topology jobs within the batch still share one compilation.

    [?timeout] bounds each job individually (seconds).  Without
    [?budget] it is a hard deadline: an overrunning job's result is
    discarded ([Error Timed_out]).  With [?budget] each attempt arms a
    fresh {!Budget.t} from the spec, threads it into the diagnosis, and
    the deadline becomes cooperative: the pool cancels the budget and
    grants a grace window, so an overrunning job usually comes back
    [Ok] with [degraded = true] instead of timing out.

    [?retry] re-submits jobs that failed with a retryable error (see
    {!val-retry}); retries are sequentialised in the awaiting thread
    with backoff, and each re-submission is re-gated by the breaker.

    [?breaker] sheds jobs whose model fingerprint has been failing
    repeatedly: shed jobs resolve to [Error (Breaker_open _)] without
    touching the pool.  Since submission happens up-front, the breaker's
    effect within a single batch is limited to retries; its main use is
    across successive batches sharing one breaker.

    [?use_compiled] (default [true]) selects the compiled-schedule fast
    path, exactly as in [Diagnose.run]; [false] forces the interpreter
    (the CLI's [--no-compiled]).  Results are bit-identical. *)

val run :
  ?workers:int ->
  ?cache:Cache.t ->
  ?timeout:float ->
  ?budget:Budget.spec ->
  ?retry:retry ->
  ?breaker:Breaker.t ->
  ?use_compiled:bool ->
  job list ->
  outcome list * Stats.t
(** One-shot convenience: run over a fresh pool of [?workers] domains
    (default {!Pool.create}'s default) and shut it down afterwards. *)

val sequential :
  ?cache:Cache.t -> job list -> Diagnose.result list * Stats.t
(** Reference implementation: the same jobs through plain
    [Diagnose.run], in order, on the calling domain.  The determinism
    tests compare {!run} against this. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line summary of an outcome (the {!Flames_core.Report} summary,
    or the failure reason). *)
