(** Deterministic batch diagnosis over a {!Pool} of workers.

    A batch is a list of independent [(netlist, observations)] jobs.
    Each job compiles its model through the shared {!Cache} and runs the
    standard sequential {!Flames_core.Diagnose.run} in a worker domain —
    the parallel path executes exactly the same computation as the
    sequential one, so results are identical and are returned in
    submission order regardless of completion order. *)

module Model = Flames_core.Model
module Diagnose = Flames_core.Diagnose
module Propagate = Flames_core.Propagate
module Netlist = Flames_circuit.Netlist

type job = private {
  label : string;
  netlist : Netlist.t;
  observations : Diagnose.observation list;
  config : Model.config option;
  limits : Propagate.limits option;
}

val job :
  ?label:string ->
  ?config:Model.config ->
  ?limits:Propagate.limits ->
  Netlist.t ->
  Diagnose.observation list ->
  job
(** A diagnosis job; [label] defaults to the netlist name. *)

type outcome = (Diagnose.result, Pool.error) result

val run_in :
  pool:Pool.t ->
  ?cache:Cache.t ->
  ?timeout:float ->
  job list ->
  outcome list * Stats.t
(** [run_in ~pool jobs] submits every job to the pool, awaits them in
    submission order and returns the outcomes in that same order.
    [?cache] shares compiled models across jobs (and across calls, when
    the caller reuses the cache); without it a private cache is used, so
    same-topology jobs within the batch still share one compilation.
    [?timeout] bounds each job individually (seconds). *)

val run :
  ?workers:int ->
  ?cache:Cache.t ->
  ?timeout:float ->
  job list ->
  outcome list * Stats.t
(** One-shot convenience: run over a fresh pool of [?workers] domains
    (default {!Pool.create}'s default) and shut it down afterwards. *)

val sequential :
  ?cache:Cache.t -> job list -> Diagnose.result list * Stats.t
(** Reference implementation: the same jobs through plain
    [Diagnose.run], in order, on the calling domain.  The determinism
    tests compare {!run} against this. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line summary of an outcome (the {!Flames_core.Report} summary,
    or the failure reason). *)
