(** Fixed-size worker pool on OCaml 5 domains, with supervision.

    Jobs are closures submitted to a shared FIFO queue; a fixed set of
    worker domains drains it.  Submission returns a typed promise that
    can be awaited, cancelled while still queued, and given a deadline.
    The pool is the concurrency substrate of {!Batch}: diagnosis jobs
    are pure (each builds its own propagation engine over an immutable
    compiled model), so workers never share mutable state beyond the
    queue itself.

    Workers are supervised: a worker domain that dies mid-job (see
    {!Kill_worker}) is replaced, and its in-flight job is requeued with
    an attempt counter or — past the pool's retry allowance — resolved
    to [Error (Crashed _)].  Every submitted promise therefore resolves
    eventually, whatever happens to the workers. *)

type t
(** A running pool.  Workers block on a condition variable when idle. *)

type error =
  | Cancelled  (** cancelled (or timed out) before a worker picked it up *)
  | Timed_out  (** still running at its deadline: the result is discarded *)
  | Failed of exn  (** the job raised *)
  | Crashed of { attempts : int }
      (** the worker domain died while running the job, [attempts] times
          in total (the job was requeued in between, up to the pool's
          [crash_retries]) *)

exception Kill_worker
(** A job body raising this kills its whole worker domain instead of
    failing the job — the supervision test hook (used by
    {!Flames_check.Chaos}).  The pool requeues or settles the job and
    spawns a replacement worker. *)

type 'a promise
(** The future result of a submitted job. *)

val create :
  ?workers:int -> ?minor_heap_words:int -> ?crash_retries:int -> unit -> t
(** [create ~workers ()] spawns [workers] domains (default: the
    recommended domain count minus one, at least 1).  Workers live until
    {!shutdown}.

    [crash_retries] (default 1) is how many times a job whose worker
    died is requeued before resolving to [Error (Crashed _)].

    Each worker grows its own minor heap to [minor_heap_words] (default
    4 M words, ≈32 MB; [0] leaves the runtime default).  Minor
    collections are stop-the-world across all OCaml 5 domains, so the
    default 256 k-word heap makes allocation-heavy diagnosis jobs
    synchronise thousands of times per second — measured on the fig-7
    sweep this tuning is worth >3× in batch wall time. *)

val workers : t -> int

val queue_depth : t -> int
(** Jobs enqueued but not yet picked up by a worker.  A point-in-time
    reading (the queue keeps moving); the admission control and
    [/readyz] probes of [Flames_serve] are its consumers. *)

val in_flight : t -> int
(** Jobs currently executing on (or being settled by) a worker: taken
    off the queue and not yet resolved.  Bounded by {!workers}; a worker
    crash un-counts its job before it is requeued or settled, so
    [queue_depth + in_flight] is a consistent "work outstanding"
    estimate across submit, completion and crash-respawn. *)

val submit :
  t ->
  ?label:string ->
  ?timeout:float ->
  ?budget:Flames_core.Budget.t ->
  (unit -> 'a) ->
  'a promise
(** [submit pool job] enqueues [job] and returns immediately.  With
    [?timeout] (seconds, from submission) the promise resolves to
    [Error Cancelled] if the deadline passes while the job is still
    queued, and to [Error Timed_out] if it passes while the job is
    running — a running job cannot be preempted safely in OCaml, so it
    runs to completion but its result is discarded.

    [?budget] makes the deadline {e cooperative}: when it passes while
    the job runs, the pool calls {!Flames_core.Budget.cancel} on the
    budget (the job is expected to poll it at check-points) and waits a
    grace window ([max 0.05 (timeout/2)] seconds) for the job to wind
    down; a result produced within the window — typically a degraded
    diagnosis — is kept instead of being discarded.

    Observability: submission bumps [flames_engine_jobs_total]; when a
    worker picks the job up, its queue wait lands in the
    [flames_engine_queue_wait_seconds] histogram and the job body runs
    inside a ["pool.job"] trace span (tagged with [?label]) on the
    worker's own trace track.  Worker deaths bump
    [flames_engine_respawns_total] and requeues
    [flames_engine_requeues_total].
    @raise Invalid_argument after {!shutdown}. *)

val cancel : _ promise -> bool
(** [cancel p] withdraws the job if it has not started yet; [true] on
    success.  A running or finished job is not affected ([false]). *)

val await : 'a promise -> ('a, error) result
(** Block until the promise resolves (job finished, cancelled, or its
    deadline passed).  Idempotent: repeated awaits return the same
    result. *)

val peek : 'a promise -> ('a, error) result option
(** Non-blocking check: [None] while the job is queued or running. *)

val shutdown : t -> unit
(** Graceful shutdown: stop accepting new jobs, let queued and running
    jobs finish, then join every worker domain (including replacements
    spawned by supervision).  Any job still queued once all workers are
    gone — possible only when every worker crashed — is resolved to
    [Error Cancelled], so no awaiter hangs.  Idempotent. *)

val shutdown_now : t -> unit
(** Hard shutdown: queued jobs are withdrawn and resolved to
    [Error Cancelled] instead of being drained; jobs already running
    still finish (OCaml cannot preempt them).  Idempotent, and safe to
    combine with {!shutdown} in either order. *)

val with_pool :
  ?workers:int -> ?minor_heap_words:int -> ?crash_retries:int ->
  (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and guarantees shutdown,
    also on exceptions. *)
