(** Well-known engine metrics in the {!Flames_obs.Metrics} registry.

    {!Pool} observes queue waits, {!Cache} counts hits/misses/evictions,
    {!Batch} observes per-job stage latencies — and then summarises a
    run by subtracting two registry {!reading}s, so {!Stats} is a
    read-out of the registry rather than a separate tally. *)

val jobs_total : Flames_obs.Metrics.counter
val jobs_completed_total : Flames_obs.Metrics.counter
val conflicts_total : Flames_obs.Metrics.counter
val cache_hits_total : Flames_obs.Metrics.counter
val cache_misses_total : Flames_obs.Metrics.counter
val cache_evictions_total : Flames_obs.Metrics.counter
val cache_resident : Flames_obs.Metrics.gauge
val retries_total : Flames_obs.Metrics.counter
val respawns_total : Flames_obs.Metrics.counter
val requeues_total : Flames_obs.Metrics.counter
val shed_total : Flames_obs.Metrics.counter

val degraded_total : Flames_obs.Metrics.counter
(** The core registry's [flames_diagnose_degraded_total], shared by
    name so batch summaries can report degraded runs. *)

val queue_wait_seconds : Flames_obs.Metrics.histogram
val compile_seconds : Flames_obs.Metrics.histogram
val diagnose_seconds : Flames_obs.Metrics.histogram

type reading = {
  completed : int;
  conflicts : int;
  cache_hits : int;
  cache_misses : int;
  retried : int;
  respawned : int;
  requeued : int;
  shed : int;
  degraded : int;
  compile_wall : float;
  diagnose_wall : float;
}

val read : unit -> reading
(** Current registry values of the batch-relevant metrics.  Process
    global: deltas attribute activity to a run only while runs do not
    overlap (concurrent batches share one registry). *)

val delta : reading -> reading -> reading
(** [delta before after], fieldwise. *)
