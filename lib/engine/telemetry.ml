(* Well-known engine metrics, shared by Pool, Cache, Batch and Stats.

   These live in the process-global Flames_obs.Metrics registry; the
   batch runner reads them by delta (before/after a run), which is what
   makes Stats a read-out of the registry instead of a parallel
   hand-rolled tally. *)

module Metrics = Flames_obs.Metrics

let jobs_total =
  Metrics.counter "flames_engine_jobs_total" ~help:"Jobs submitted to a pool"

let jobs_completed_total =
  Metrics.counter "flames_engine_jobs_completed_total"
    ~help:"Jobs whose body ran to completion on a worker"

let conflicts_total =
  Metrics.counter "flames_engine_conflicts_total"
    ~help:"Weighted conflicts produced by completed diagnosis jobs"

let cache_hits_total =
  Metrics.counter "flames_engine_cache_hits_total"
    ~help:"Model-cache hits (all caches in the process)"

let cache_misses_total =
  Metrics.counter "flames_engine_cache_misses_total"
    ~help:"Model-cache misses (compilations paid)"

let cache_evictions_total =
  Metrics.counter "flames_engine_cache_evictions_total"
    ~help:"Models evicted by the LRU bound"

let cache_resident =
  Metrics.gauge "flames_engine_cache_resident"
    ~help:"Models resident in the most recently used cache"

let retries_total =
  Metrics.counter "flames_engine_retries_total"
    ~help:"Batch-level re-submissions after a retryable job error"

let respawns_total =
  Metrics.counter "flames_engine_respawns_total"
    ~help:"Worker domains replaced after dying mid-job"

let requeues_total =
  Metrics.counter "flames_engine_requeues_total"
    ~help:"In-flight jobs requeued because their worker died"

let shed_total =
  Metrics.counter "flames_engine_shed_total"
    ~help:"Jobs shed by an open circuit breaker"

(* Registered by name: creation is idempotent, so this is the same
   counter Flames_core.Diagnose bumps, whichever module loads first. *)
let degraded_total =
  Metrics.counter "flames_diagnose_degraded_total"
    ~help:"Diagnosis runs that returned degraded (budget-truncated) results"

let queue_wait_seconds =
  Metrics.histogram "flames_engine_queue_wait_seconds"
    ~help:"Time a job spent queued before a worker picked it up"

let compile_seconds =
  Metrics.histogram "flames_engine_compile_seconds"
    ~help:"Per-job model acquisition (cache lookup or compile) latency"

let diagnose_seconds =
  Metrics.histogram "flames_engine_diagnose_seconds"
    ~help:"Per-job diagnosis latency"

(* A consistent registry reading of everything Batch folds into Stats;
   subtracting two readings gives one run's contribution. *)
type reading = {
  completed : int;
  conflicts : int;
  cache_hits : int;
  cache_misses : int;
  retried : int;
  respawned : int;
  requeued : int;
  shed : int;
  degraded : int;
  compile_wall : float;
  diagnose_wall : float;
}

let read () =
  {
    completed = Metrics.counter_value jobs_completed_total;
    conflicts = Metrics.counter_value conflicts_total;
    cache_hits = Metrics.counter_value cache_hits_total;
    cache_misses = Metrics.counter_value cache_misses_total;
    retried = Metrics.counter_value retries_total;
    respawned = Metrics.counter_value respawns_total;
    requeued = Metrics.counter_value requeues_total;
    shed = Metrics.counter_value shed_total;
    degraded = Metrics.counter_value degraded_total;
    compile_wall = Metrics.histogram_sum compile_seconds;
    diagnose_wall = Metrics.histogram_sum diagnose_seconds;
  }

let delta a b =
  {
    completed = b.completed - a.completed;
    conflicts = b.conflicts - a.conflicts;
    cache_hits = b.cache_hits - a.cache_hits;
    cache_misses = b.cache_misses - a.cache_misses;
    retried = b.retried - a.retried;
    respawned = b.respawned - a.respawned;
    requeued = b.requeued - a.requeued;
    shed = b.shed - a.shed;
    degraded = b.degraded - a.degraded;
    compile_wall = b.compile_wall -. a.compile_wall;
    diagnose_wall = b.diagnose_wall -. a.diagnose_wall;
  }
