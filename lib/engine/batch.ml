module Model = Flames_core.Model
module Diagnose = Flames_core.Diagnose
module Propagate = Flames_core.Propagate
module Report = Flames_core.Report
module Netlist = Flames_circuit.Netlist

type job = {
  label : string;
  netlist : Netlist.t;
  observations : Diagnose.observation list;
  config : Model.config option;
  limits : Propagate.limits option;
}

let job ?label ?config ?limits netlist observations =
  let label =
    match label with Some l -> l | None -> netlist.Netlist.name
  in
  { label; netlist; observations; config; limits }

type outcome = (Diagnose.result, Pool.error) result

type timed = {
  result : Diagnose.result;
  compile_s : float;
  diagnose_s : float;
}

let now () = Unix.gettimeofday ()

let run_one cache j =
  let t0 = now () in
  let model = Cache.compile cache ?config:j.config j.netlist in
  let t1 = now () in
  let result =
    Diagnose.run ?config:j.config ?limits:j.limits ~model j.netlist
      j.observations
  in
  let t2 = now () in
  { result; compile_s = t1 -. t0; diagnose_s = t2 -. t1 }

let summarize ~workers ~cache_before ~cache_after ~wall ~cpu outcomes timings =
  let succeeded, failed, conflicts =
    List.fold_left
      (fun (ok, ko, cf) outcome ->
        match outcome with
        | Ok (r : Diagnose.result) ->
          (ok + 1, ko, cf + List.length r.Diagnose.conflicts)
        | Error _ -> (ok, ko + 1, cf))
      (0, 0, 0) outcomes
  in
  let compile_wall, diagnose_wall =
    List.fold_left
      (fun (c, d) t -> (c +. t.compile_s, d +. t.diagnose_s))
      (0., 0.) timings
  in
  {
    Stats.jobs = List.length outcomes;
    succeeded;
    failed;
    workers;
    conflicts;
    cache_hits = cache_after.Cache.hits - cache_before.Cache.hits;
    cache_misses = cache_after.Cache.misses - cache_before.Cache.misses;
    wall_time = wall;
    cpu_time = cpu;
    compile_wall;
    diagnose_wall;
  }

let run_in ~pool ?cache ?timeout jobs =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let cache_before = Cache.stats cache in
  let wall0 = now () and cpu0 = Sys.time () in
  let promises =
    List.map (fun j -> Pool.submit pool ?timeout (fun () -> run_one cache j)) jobs
  in
  (* awaiting in submission order is what makes the batch deterministic:
     completion order depends on scheduling, the returned list does not *)
  let resolved = List.map Pool.await promises in
  let wall = now () -. wall0 and cpu = Sys.time () -. cpu0 in
  let outcomes =
    List.map
      (function Ok t -> Ok t.result | Error e -> (Error e : outcome))
      resolved
  in
  let timings =
    List.filter_map (function Ok t -> Some t | Error _ -> None) resolved
  in
  let stats =
    summarize ~workers:(Pool.workers pool) ~cache_before
      ~cache_after:(Cache.stats cache) ~wall ~cpu outcomes timings
  in
  (outcomes, stats)

let run ?workers ?cache ?timeout jobs =
  Pool.with_pool ?workers (fun pool -> run_in ~pool ?cache ?timeout jobs)

let sequential ?cache jobs =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let cache_before = Cache.stats cache in
  let wall0 = now () and cpu0 = Sys.time () in
  let timings = List.map (run_one cache) jobs in
  let wall = now () -. wall0 and cpu = Sys.time () -. cpu0 in
  let results = List.map (fun t -> t.result) timings in
  let stats =
    summarize ~workers:1 ~cache_before ~cache_after:(Cache.stats cache) ~wall
      ~cpu
      (List.map (fun t -> Ok t.result) timings)
      timings
  in
  (results, stats)

let pp_outcome ppf = function
  | Ok result -> Format.pp_print_string ppf (Report.summary result)
  | Error Pool.Cancelled -> Format.pp_print_string ppf "cancelled"
  | Error Pool.Timed_out -> Format.pp_print_string ppf "timed out"
  | Error (Pool.Failed e) ->
    Format.fprintf ppf "failed: %s" (Printexc.to_string e)
