module Model = Flames_core.Model
module Diagnose = Flames_core.Diagnose
module Propagate = Flames_core.Propagate
module Report = Flames_core.Report
module Netlist = Flames_circuit.Netlist

type job = {
  label : string;
  netlist : Netlist.t;
  observations : Diagnose.observation list;
  config : Model.config option;
  limits : Propagate.limits option;
}

let job ?label ?config ?limits netlist observations =
  let label =
    match label with Some l -> l | None -> netlist.Netlist.name
  in
  { label; netlist; observations; config; limits }

type outcome = (Diagnose.result, Pool.error) result

module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace

let now () = Unix.gettimeofday ()

(* The job body records everything Stats later reports — stage latency
   histograms, completion and conflict counters — into the registry;
   nothing is tallied on the side. *)
let run_one cache j =
  let model =
    Trace.with_span ~record:Telemetry.compile_seconds "batch.compile"
      (fun () -> Cache.compile cache ?config:j.config j.netlist)
  in
  let result =
    Trace.with_span ~record:Telemetry.diagnose_seconds "batch.diagnose"
      (fun () ->
        Diagnose.run ?config:j.config ?limits:j.limits ~model j.netlist
          j.observations)
  in
  Metrics.incr Telemetry.jobs_completed_total;
  Metrics.incr ~by:(List.length result.Diagnose.conflicts)
    Telemetry.conflicts_total;
  result

(* Stats is a read-out of the metrics registry: the run's share of every
   counter/histogram is the delta between the reading taken at submit
   time and the one at the last await.  Only the job outcome split
   (ok/failed) comes from the outcome list itself — a job that outlives
   its deadline still executes and is charged to the registry, but this
   batch reports it as failed. *)
let summarize ~workers ~wall ~cpu ~before ~after outcomes =
  let d = Telemetry.delta before after in
  let succeeded, failed =
    List.fold_left
      (fun (ok, ko) outcome ->
        match outcome with Ok _ -> (ok + 1, ko) | Error _ -> (ok, ko + 1))
      (0, 0) outcomes
  in
  {
    Stats.jobs = List.length outcomes;
    succeeded;
    failed;
    workers;
    conflicts = d.Telemetry.conflicts;
    cache_hits = d.Telemetry.cache_hits;
    cache_misses = d.Telemetry.cache_misses;
    wall_time = wall;
    cpu_time = cpu;
    compile_wall = d.Telemetry.compile_wall;
    diagnose_wall = d.Telemetry.diagnose_wall;
  }

let run_in ~pool ?cache ?timeout jobs =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let before = Telemetry.read () in
  let wall0 = now () and cpu0 = Sys.time () in
  let promises =
    List.map
      (fun j ->
        Pool.submit pool ~label:j.label ?timeout (fun () -> run_one cache j))
      jobs
  in
  (* awaiting in submission order is what makes the batch deterministic:
     completion order depends on scheduling, the returned list does not *)
  let outcomes = (List.map Pool.await promises : outcome list) in
  let wall = now () -. wall0 and cpu = Sys.time () -. cpu0 in
  let stats =
    summarize ~workers:(Pool.workers pool) ~wall ~cpu ~before
      ~after:(Telemetry.read ()) outcomes
  in
  (outcomes, stats)

let run ?workers ?cache ?timeout jobs =
  Pool.with_pool ?workers (fun pool -> run_in ~pool ?cache ?timeout jobs)

let sequential ?cache jobs =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let before = Telemetry.read () in
  let wall0 = now () and cpu0 = Sys.time () in
  let results = List.map (run_one cache) jobs in
  let wall = now () -. wall0 and cpu = Sys.time () -. cpu0 in
  let stats =
    summarize ~workers:1 ~wall ~cpu ~before ~after:(Telemetry.read ())
      (List.map (fun r -> Ok r) results)
  in
  (results, stats)

let pp_outcome ppf = function
  | Ok result -> Format.pp_print_string ppf (Report.summary result)
  | Error Pool.Cancelled -> Format.pp_print_string ppf "cancelled"
  | Error Pool.Timed_out -> Format.pp_print_string ppf "timed out"
  | Error (Pool.Failed e) ->
    Format.fprintf ppf "failed: %s" (Printexc.to_string e)
