module Model = Flames_core.Model
module Diagnose = Flames_core.Diagnose
module Propagate = Flames_core.Propagate
module Report = Flames_core.Report
module Budget = Flames_core.Budget
module Err = Flames_core.Err
module Netlist = Flames_circuit.Netlist

type job = {
  label : string;
  netlist : Netlist.t;
  observations : Diagnose.observation list;
  config : Model.config option;
  limits : Propagate.limits option;
  prelude : (int -> unit) option;
}

let job ?label ?config ?limits ?prelude netlist observations =
  let label =
    match label with Some l -> l | None -> netlist.Netlist.name
  in
  { label; netlist; observations; config; limits; prelude }

type outcome = (Diagnose.result, Err.t) result

type retry = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  seed : int;
}

let retry ?(attempts = 3) ?(base_delay = 0.05) ?(max_delay = 1.) ?(seed = 0)
    () =
  if attempts < 1 then invalid_arg "Batch.retry: attempts must be >= 1";
  if base_delay < 0. || max_delay < 0. then
    invalid_arg "Batch.retry: delays must be >= 0";
  { attempts; base_delay; max_delay; seed }

module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace
module Context = Flames_obs.Context
module Events = Flames_obs.Events
module Ids = Flames_obs.Ids

let now () = Unix.gettimeofday ()

(* One request context per job: the job's spans, stage timings and
   cache hit/miss attach to a per-job trace id, and settling emits one
   wide event per job.  Skipped entirely when events are disabled (the
   obs-overhead benchmark's baseline). *)
let job_context _j =
  if Events.enabled () then
    Some (Context.make ~trace_id:(Ids.trace_id ()) ~route:"batch" ())
  else None

let emit_job_event ctx j ~attempts outcome =
  match ctx with
  | None -> ()
  | Some ctx ->
    let status, extra =
      match (outcome : outcome) with
      | Ok r ->
        ( "ok",
          [
            ("degraded", Events.Bool r.Diagnose.degraded);
            ("conflicts", Events.Int (List.length r.Diagnose.conflicts));
          ] )
      | Error (Err.Breaker_open _) -> ("shed", [])
      | Error e -> ("error", [ ("error", Events.Str (Err.to_string e)) ])
    in
    Events.emit ~ctx ~name:"batch.job"
      (("label", Events.Str j.label)
      :: ("status", Events.Str status)
      :: ("attempts", Events.Int attempts)
      :: extra)

let err_of_pool = function
  | Pool.Cancelled -> Err.Cancelled
  | Pool.Timed_out -> Err.Timed_out
  | Pool.Failed e -> Err.of_exn e
  | Pool.Crashed { attempts } -> Err.Worker_crashed { attempts }

(* Jittered exponential backoff, deterministic per (seed, job, attempt)
   via a splitmix64 hash: replayable in tests, yet batches with
   different seeds de-synchronise their retries. *)
let backoff r ~index ~attempt =
  let mix x =
    let open Int64 in
    let x = logxor x (shift_right_logical x 30) in
    let x = mul x 0xBF58476D1CE4E5B9L in
    let x = logxor x (shift_right_logical x 27) in
    let x = mul x 0x94D049BB133111EBL in
    logxor x (shift_right_logical x 31)
  in
  let h =
    mix
      Int64.(
        add
          (mul (of_int r.seed) 0x9E3779B97F4A7C15L)
          (add (mul (of_int index) 0x2545F4914F6CDD1DL) (of_int attempt)))
  in
  let u = Int64.to_float (Int64.shift_right_logical h 11) /. 9.007199254740992e15 in
  let cap =
    Float.min r.max_delay (r.base_delay *. (2. ** float_of_int (attempt - 1)))
  in
  cap *. (0.5 +. (0.5 *. u))

(* The job body records everything Stats later reports — stage latency
   histograms, completion and conflict counters — into the registry;
   nothing is tallied on the side. *)
let run_one cache ?budget ?(attempt = 1) ?(use_compiled = true) j =
  (match j.prelude with Some f -> f attempt | None -> ());
  let schedule =
    Trace.with_span ~record:Telemetry.compile_seconds "batch.compile"
      (fun () -> Cache.compile cache ?config:j.config j.netlist)
  in
  let result =
    Trace.with_span ~record:Telemetry.diagnose_seconds "batch.diagnose"
      (fun () ->
        Diagnose.run ?config:j.config ?limits:j.limits ?budget ~schedule
          ~use_compiled j.netlist j.observations)
  in
  Metrics.incr Telemetry.jobs_completed_total;
  Metrics.incr ~by:(List.length result.Diagnose.conflicts)
    Telemetry.conflicts_total;
  result

(* Stats is a read-out of the metrics registry: the run's share of every
   counter/histogram is the delta between the reading taken at submit
   time and the one at the last await.  Only the job outcome split
   (ok/failed) comes from the outcome list itself — a job that outlives
   its deadline still executes and is charged to the registry, but this
   batch reports it as failed. *)
let summarize ~workers ~wall ~cpu ~before ~after outcomes =
  let d = Telemetry.delta before after in
  let succeeded, failed =
    List.fold_left
      (fun (ok, ko) outcome ->
        match outcome with Ok _ -> (ok + 1, ko) | Error _ -> (ok, ko + 1))
      (0, 0) outcomes
  in
  {
    Stats.jobs = List.length outcomes;
    succeeded;
    failed;
    workers;
    conflicts = d.Telemetry.conflicts;
    cache_hits = d.Telemetry.cache_hits;
    cache_misses = d.Telemetry.cache_misses;
    retried = d.Telemetry.retried;
    shed = d.Telemetry.shed;
    degraded = d.Telemetry.degraded;
    wall_time = wall;
    cpu_time = cpu;
    compile_wall = d.Telemetry.compile_wall;
    diagnose_wall = d.Telemetry.diagnose_wall;
  }

(* A pending job is either in flight or was shed up-front. *)
type pending = Flight of Diagnose.result Pool.promise | Shed of string

let run_in ~pool ?cache ?timeout ?budget ?retry:policy ?breaker
    ?use_compiled jobs =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let before = Telemetry.read () in
  let wall0 = now () and cpu0 = Sys.time () in
  let key j =
    (* jobs over the same circuit/config share one breaker circuit *)
    Cache.fingerprint ?config:j.config j.netlist
  in
  let submit j ~ctx ~attempt =
    (* every attempt gets a freshly armed budget: a retry should not
       inherit the exhausted quotas of the attempt it replaces.  The
       job context is installed around the submission so the pool
       captures it and restores it inside the worker domain. *)
    let budget = Option.map Budget.start budget in
    Context.with_context_opt ctx (fun () ->
        Pool.submit pool ~label:j.label ?timeout ?budget (fun () ->
            run_one cache ?budget ~attempt ?use_compiled j))
  in
  let gate j =
    match breaker with
    | None -> `Allow
    | Some b -> Breaker.decide b (key j)
  in
  let pendings =
    List.map
      (fun j ->
        let ctx = job_context j in
        match gate j with
        | `Allow -> (ctx, Flight (submit j ~ctx ~attempt:1))
        | `Shed ->
          Metrics.incr Telemetry.shed_total;
          (ctx, Shed (key j)))
      jobs
  in
  (* awaiting in submission order is what makes the batch deterministic:
     completion order depends on scheduling, the returned list does not *)
  let settle index j (ctx, pending) =
    let k = key j in
    let report ok =
      match breaker with
      | None -> ()
      | Some b -> if ok then Breaker.success b k else Breaker.failure b k
    in
    let rec await_attempt promise attempt =
      match Pool.await promise with
      | Ok r ->
        report true;
        (Ok r, attempt)
      | Error perr ->
        let e = err_of_pool perr in
        report false;
        let want_retry =
          match policy with
          | None -> false
          | Some p -> attempt < p.attempts && Err.retryable e
        in
        if not want_retry then (Error e, attempt)
        else begin
          match gate j with
          | `Shed ->
            Metrics.incr Telemetry.shed_total;
            (Error (Err.Breaker_open k), attempt)
          | `Allow ->
            let p = Option.get policy in
            Unix.sleepf (backoff p ~index ~attempt);
            Metrics.incr Telemetry.retries_total;
            await_attempt (submit j ~ctx ~attempt:(attempt + 1)) (attempt + 1)
        end
    in
    let outcome, attempts =
      match pending with
      | Shed k -> ((Error (Err.Breaker_open k) : outcome), 0)
      | Flight promise -> await_attempt promise 1
    in
    emit_job_event ctx j ~attempts outcome;
    outcome
  in
  let outcomes = List.mapi (fun i (j, p) -> settle i j p)
      (List.combine jobs pendings)
  in
  let wall = now () -. wall0 and cpu = Sys.time () -. cpu0 in
  let stats =
    summarize ~workers:(Pool.workers pool) ~wall ~cpu ~before
      ~after:(Telemetry.read ()) outcomes
  in
  (outcomes, stats)

let run ?workers ?cache ?timeout ?budget ?retry ?breaker ?use_compiled jobs =
  Pool.with_pool ?workers (fun pool ->
      run_in ~pool ?cache ?timeout ?budget ?retry ?breaker ?use_compiled jobs)

let sequential ?cache jobs =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let before = Telemetry.read () in
  let wall0 = now () and cpu0 = Sys.time () in
  let results =
    List.map
      (fun j ->
        let ctx = job_context j in
        let r = Context.with_context_opt ctx (fun () -> run_one cache j) in
        emit_job_event ctx j ~attempts:1 (Ok r);
        r)
      jobs
  in
  let wall = now () -. wall0 and cpu = Sys.time () -. cpu0 in
  let stats =
    summarize ~workers:1 ~wall ~cpu ~before ~after:(Telemetry.read ())
      (List.map (fun r -> Ok r) results)
  in
  (results, stats)

let pp_outcome ppf = function
  | Ok result -> Format.pp_print_string ppf (Report.summary result)
  | Error e -> Format.fprintf ppf "error: %s" (Err.to_string e)
