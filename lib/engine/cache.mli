(** Memoization of {!Flames_core.Schedule.compile} keyed by a
    structural fingerprint of [(netlist, config)].

    Repeated diagnoses of the same topology — fault dictionaries,
    parameter sweeps, fig-7 reruns — recompile an identical constraint
    model every time; this cache makes the second and later compilations
    free.  The cached value is the {e compiled schedule} (the flat
    preplanned form the fast propagation path executes), so every
    consumer — [Diagnose.run], sessions, batches, the service — rides
    the compiled path and shares the schedule's memoized sensitivity
    report and consistency memo.  Schedules are safely shared by
    concurrent {!Pool} workers.  The cache itself is thread-safe and
    evicts least-recently-used entries beyond its capacity. *)

module Model = Flames_core.Model
module Schedule = Flames_core.Schedule
module Netlist = Flames_circuit.Netlist

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** entries currently resident *)
  capacity : int;
}

val create : ?capacity:int -> unit -> t
(** Fresh cache holding at most [capacity] compiled models
    (default 64).
    @raise Invalid_argument if [capacity < 1]. *)

val schema_version : int
(** Version tag of the cached value representation, mixed into every
    fingerprint.  Bumped when the representation changes (v1: compiled
    models, v2: compiled schedules), so entries written under an older
    representation live under disjoint keys — they can never be
    returned to a consumer expecting the new one, and age out via LRU
    eviction. *)

val fingerprint : ?schema:int -> ?config:Model.config -> Netlist.t -> string
(** Structural fingerprint of the compilation input: an MD5 digest over
    the {!schema_version} tag, the netlist name, ground, ports, every
    component (name, kind, hex-exact parameter fuzzy intervals,
    terminal wiring) in netlist order, and every {!Model.config} field.
    Two inputs with equal fingerprints compile to structurally
    identical schedules; any fault injection, tolerance change, config
    change or representation change yields a different fingerprint.
    [?schema] (default {!schema_version}) exists for tests probing the
    mismatch path. *)

val compile : t -> ?config:Model.config -> Netlist.t -> Schedule.t
(** [compile cache netlist] returns the cached compiled schedule for
    the input's fingerprint, compiling (and caching) it on a miss.
    Drop-in replacement for [Schedule.compile]. *)

val stats : t -> stats

val clear : t -> unit
(** Evict everything; counters are kept. *)

val pp_stats : Format.formatter -> stats -> unit
