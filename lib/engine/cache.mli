(** Memoization of {!Flames_core.Model.compile} keyed by a structural
    fingerprint of [(netlist, config)].

    Repeated diagnoses of the same topology — fault dictionaries,
    parameter sweeps, fig-7 reruns — recompile an identical constraint
    model every time; this cache makes the second and later compilations
    free.  Compiled models are immutable, so a cached model is safely
    shared by concurrent {!Pool} workers.  The cache itself is
    thread-safe and evicts least-recently-used entries beyond its
    capacity. *)

module Model = Flames_core.Model
module Netlist = Flames_circuit.Netlist

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** entries currently resident *)
  capacity : int;
}

val create : ?capacity:int -> unit -> t
(** Fresh cache holding at most [capacity] compiled models
    (default 64).
    @raise Invalid_argument if [capacity < 1]. *)

val fingerprint : ?config:Model.config -> Netlist.t -> string
(** Structural fingerprint of the compilation input: an MD5 digest over
    the netlist name, ground, ports, every component (name, kind,
    hex-exact parameter fuzzy intervals, terminal wiring) in netlist
    order, and every {!Model.config} field.  Two inputs with equal
    fingerprints compile to structurally identical models; any fault
    injection, tolerance change or config change yields a different
    fingerprint. *)

val compile : t -> ?config:Model.config -> Netlist.t -> Model.t
(** [compile cache netlist] returns the cached model for the input's
    fingerprint, compiling (and caching) it on a miss.  Drop-in
    replacement for [Model.compile]. *)

val stats : t -> stats

val clear : t -> unit
(** Evict everything; counters are kept. *)

val pp_stats : Format.formatter -> stats -> unit
