module Metrics = Flames_obs.Metrics

type state = Closed | Open of float | Half_open
(* [Open t]: tripped at instant [t]; re-probed after the cooldown. *)

type entry = { mutable state : state; mutable failures : int }

type t = {
  mutex : Mutex.t;
  threshold : int;
  cooldown : float;
  now : unit -> float;
  entries : (string, entry) Hashtbl.t;
}

let create ?(threshold = 3) ?(cooldown = 5.) ?now () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown < 0. then invalid_arg "Breaker.create: cooldown must be >= 0";
  let now = match now with Some f -> f | None -> Unix.gettimeofday in
  { mutex = Mutex.create (); threshold; cooldown; now;
    entries = Hashtbl.create 16 }

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
    let e = { state = Closed; failures = 0 } in
    Hashtbl.add t.entries key e;
    e

let locked t f =
  Mutex.lock t.mutex;
  let r = f () in
  Mutex.unlock t.mutex;
  r

let decide t key =
  locked t @@ fun () ->
  let e = entry t key in
  match e.state with
  | Closed -> `Allow
  | Half_open ->
    (* one probe is already in flight; shed until it reports back *)
    `Shed
  | Open since ->
    if t.now () -. since >= t.cooldown then begin
      e.state <- Half_open;
      `Allow
    end
    else `Shed

let success t key =
  locked t @@ fun () ->
  let e = entry t key in
  e.state <- Closed;
  e.failures <- 0

let failure t key =
  locked t @@ fun () ->
  let e = entry t key in
  match e.state with
  | Half_open ->
    (* the probe failed: straight back to open, restart the cooldown *)
    e.state <- Open (t.now ())
  | Open _ -> ()
  | Closed ->
    e.failures <- e.failures + 1;
    if e.failures >= t.threshold then e.state <- Open (t.now ())

let state t key =
  locked t @@ fun () ->
  match (entry t key).state with
  | Closed -> `Closed
  | Open _ -> `Open
  | Half_open -> `Half_open
