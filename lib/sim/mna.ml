module C = Flames_circuit.Component
module N = Flames_circuit.Netlist
module Interval = Flames_fuzzy.Interval

type bjt_region = Active | Cutoff | Saturated
type diode_mode = Conducting | Blocked

type solution = {
  voltages : (string * float) list;
  currents : (string * float) list;
  regions : (string * bjt_region) list;
}

exception No_convergence of string

let vce_sat = 0.2

(* Small series resistances in the saturated model: ideal stacked
   voltage-drop models can form contradictory source loops (two saturated
   followers fighting over one node); a one-ohm series term keeps the
   system regular without visibly moving the operating point. *)
let r_sat = 1.0
let tolerance = 1e-9

type state = {
  bjt : (string * bjt_region) list;
  diode : (string * diode_mode) list;
}

(* Factor reuse across a parameter sweep.  One entry per device-region
   assignment: the first matrix solved under that assignment becomes the
   base whose LU factors answer later systems — bit-identically when the
   matrix is unchanged (only the right-hand side moved: source, diode or
   junction-drop sweeps), approximately via a residual-checked
   Sherman–Morrison refresh when the difference is rank-1 (single
   conductance/gain/β perturbations), and by an ordinary full solve
   otherwise.  The sweep is an optimisation context only: it never
   changes which systems are solved, and a [solve] without one is the
   unchanged original path. *)
type sweep = {
  factors : (string, float array array * Lu.t) Hashtbl.t;
  rank1 : bool;
      (* allow the approximate Sherman–Morrison path.  Callers whose
         downstream consumers threshold or compare the solved voltages
         (e.g. sensitivity-based predictions, where a 1e-7 drift can
         flip a supporter set and change the diagnosis) must leave it
         off and only get the bit-identical reuse. *)
}

let sweep ?(rank1 = false) () = { factors = Hashtbl.create 8; rank1 }

let lu_resolves_total =
  Flames_obs.Metrics.counter "flames_mna_lu_resolves_total"
    ~help:"DC solves answered by re-solving cached LU factors (bit-identical)"

let lu_rank1_total =
  Flames_obs.Metrics.counter "flames_mna_lu_rank1_total"
    ~help:"DC solves answered by rank-1 Sherman-Morrison refresh of cached factors"

let state_key state =
  let b = Buffer.create 64 in
  List.iter
    (fun (n, r) ->
      Buffer.add_string b n;
      Buffer.add_char b
        (match r with Active -> 'a' | Cutoff -> 'u' | Saturated -> 's'))
    state.bjt;
  Buffer.add_char b '|';
  List.iter
    (fun (n, m) ->
      Buffer.add_string b n;
      Buffer.add_char b (match m with Conducting -> 'c' | Blocked -> 'b'))
    state.diode;
  Buffer.contents b

let matrices_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2 (fun x y -> Float.equal x y) ra rb)
       a b

(* Is [a' - a0] a rank-1 matrix u·vᵀ?  Perturbing one component
   parameter touches at most a handful of entries (a conductance
   touches four in a ± pattern, a gain or β one or two), so the
   difference is tiny and the proportionality check is cheap.  More
   than [max_touched] changed entries means this is not a
   single-parameter refresh — give up rather than scan. *)
let max_touched = 16

let rank1_of_diff a0 a' =
  let n = Array.length a0 in
  let rows = ref [] and touched = ref 0 in
  try
    for i = n - 1 downto 0 do
      let any = ref false in
      for j = 0 to n - 1 do
        if not (Float.equal a'.(i).(j) a0.(i).(j)) then begin
          incr touched;
          if !touched > max_touched then raise Exit;
          any := true
        end
      done;
      if !any then rows := i :: !rows
    done;
    match !rows with
    | [] -> None
    | r0 :: rest ->
      let v = Array.init n (fun j -> a'.(r0).(j) -. a0.(r0).(j)) in
      let j0 = ref 0 in
      Array.iteri (fun j x -> if v.(!j0) = 0. && x <> 0. then j0 := j) v;
      let j0 = !j0 in
      let u = Array.make n 0. in
      u.(r0) <- 1.;
      let proportional i =
        let ratio = (a'.(i).(j0) -. a0.(i).(j0)) /. v.(j0) in
        u.(i) <- ratio;
        Float.is_finite ratio
        &&
        let ok = ref true in
        for j = 0 to n - 1 do
          let d = a'.(i).(j) -. a0.(i).(j) in
          let e = ratio *. v.(j) in
          if
            Float.abs (d -. e)
            > 1e-9 *. Float.max (Float.abs d) (Float.abs e)
          then ok := false
        done;
        !ok
      in
      if List.for_all proportional rest then Some (u, v) else None
  with Exit -> None

let initial_state netlist =
  let bjt, diode =
    List.fold_left
      (fun (bjt, diode) (c : C.t) ->
        match c.kind with
        | C.Bjt _ -> ((c.name, Active) :: bjt, diode)
        | C.Diode _ -> (bjt, (c.name, Conducting) :: diode)
        | C.Resistor _ | C.Capacitor _ | C.Inductor _ | C.Voltage_source _
        | C.Gain_block _ ->
          (bjt, diode))
      ([], []) netlist.N.components
  in
  { bjt; diode }

(* Solve [a x = rhs], answering from sweep factors when possible.  The
   no-sweep path is exactly [Linalg.solve]; the cached paths either
   reproduce it bit for bit ([Lu.resolve]) or pass a residual check
   before being accepted ([Lu.rank1_refresh]). *)
let solve_system ?sweep state a rhs =
  match sweep with
  | None -> Linalg.solve a rhs
  | Some sw -> begin
    let key = state_key state in
    match Hashtbl.find_opt sw.factors key with
    | None -> begin
      match Lu.factor a with
      | Error `Singular -> raise Linalg.Singular
      | Ok f ->
        Hashtbl.add sw.factors key (Array.map Array.copy a, f);
        Lu.resolve f rhs
    end
    | Some (a0, f) ->
      if matrices_equal a0 a then begin
        Flames_obs.Metrics.incr lu_resolves_total;
        Lu.resolve f rhs
      end
      else if (not sw.rank1) || Array.length a0 <> Array.length a then
        Linalg.solve a rhs
      else begin
        match rank1_of_diff a0 a with
        | Some (u, v) -> begin
          match Lu.rank1_refresh f ~u ~v ~a':a rhs with
          | Some x ->
            Flames_obs.Metrics.incr lu_rank1_total;
            x
          | None -> Linalg.solve a rhs
        end
        | None -> Linalg.solve a rhs
      end
  end

(* One linear solve for a fixed assignment of device regions. *)
let solve_linear ?sweep netlist state =
  let ground = netlist.N.ground in
  let node_names = List.filter (fun n -> n <> ground) (N.nodes netlist) in
  let node_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.add node_index n i) node_names;
  let n_nodes = List.length node_names in
  (* allocate branch-current unknowns *)
  let branches = ref [] in
  let n_branch = ref 0 in
  let new_branch key =
    let j = n_nodes + !n_branch in
    incr n_branch;
    branches := (key, j) :: !branches;
    j
  in
  List.iter
    (fun (c : C.t) ->
      match c.kind with
      | C.Voltage_source _ -> ignore (new_branch c.name)
      | C.Inductor _ ->
        (* short at DC: a 0 V source with its current as unknown *)
        ignore (new_branch c.name)
      | C.Gain_block _ -> ignore (new_branch c.name)
      | C.Diode _ ->
        if List.assoc c.name state.diode = Conducting then
          ignore (new_branch c.name)
      | C.Bjt _ -> begin
        match List.assoc c.name state.bjt with
        | Active -> ignore (new_branch (c.name ^ ".b"))
        | Cutoff -> ()
        | Saturated ->
          ignore (new_branch (c.name ^ ".b"));
          ignore (new_branch (c.name ^ ".c"))
      end
      | C.Resistor _ | C.Capacitor _ -> ())
    netlist.N.components;
  let dim = n_nodes + !n_branch in
  let a = Array.make_matrix dim dim 0. in
  let rhs = Array.make dim 0. in
  let idx node = if node = ground then None else Some (Hashtbl.find node_index node) in
  let addm row col v =
    match (row, col) with
    | Some r, Some c -> a.(r).(c) <- a.(r).(c) +. v
    | None, _ | _, None -> ()
  in
  let add_branch_row row col v =
    match col with Some c -> a.(row).(c) <- a.(row).(c) +. v | None -> ()
  in
  let add_kcl node branch v =
    match node with Some r -> a.(r).(branch) <- a.(r).(branch) +. v | None -> ()
  in
  let branch key = List.assoc key !branches in
  let nominal c param = Interval.centroid (C.nominal_parameter c param) in
  List.iter
    (fun (c : C.t) ->
      let node t = idx (C.node_of c t) in
      match c.kind with
      | C.Resistor _ ->
        let g = 1. /. nominal c "R" in
        let p = node "p" and n = node "n" in
        addm p p g;
        addm n n g;
        addm p n (-.g);
        addm n p (-.g)
      | C.Capacitor _ ->
        (* open at DC; a negligible leak keeps the matrix regular when a
           node connects through capacitors only *)
        let g = 1e-12 in
        let p = node "p" and n = node "n" in
        addm p p g;
        addm n n g;
        addm p n (-.g);
        addm n p (-.g)
      | C.Inductor _ ->
        let j = branch c.name in
        let p = node "p" and n = node "n" in
        add_kcl p j 1.;
        add_kcl n j (-1.);
        add_branch_row j p 1.;
        add_branch_row j n (-1.)
      | C.Voltage_source _ ->
        let j = branch c.name in
        let p = node "p" and n = node "n" in
        add_kcl p j 1.;
        add_kcl n j (-1.);
        add_branch_row j p 1.;
        add_branch_row j n (-1.);
        rhs.(j) <- nominal c "V"
      | C.Diode _ ->
        if List.assoc c.name state.diode = Conducting then begin
          let j = branch c.name in
          let p = node "p" and n = node "n" in
          add_kcl p j 1.;
          add_kcl n j (-1.);
          add_branch_row j p 1.;
          add_branch_row j n (-1.);
          rhs.(j) <- nominal c "Vf"
        end
      | C.Gain_block _ ->
        let j = branch c.name in
        let input = node "in" and output = node "out" in
        add_kcl output j 1.;
        add_branch_row j output 1.;
        add_branch_row j input (-.nominal c "gain")
      | C.Bjt _ -> begin
        let b = node "b" and col = node "c" and e = node "e" in
        let beta = nominal c "beta" and vbe = nominal c "vbe" in
        match List.assoc c.name state.bjt with
        | Cutoff -> ()
        | Active ->
          let jb = branch (c.name ^ ".b") in
          add_kcl b jb 1.;
          add_kcl e jb (-1.);
          add_branch_row jb b 1.;
          add_branch_row jb e (-1.);
          rhs.(jb) <- vbe;
          (* collector source β·ib flowing c → e *)
          add_kcl col jb beta;
          add_kcl e jb (-.beta)
        | Saturated ->
          let jb = branch (c.name ^ ".b") in
          add_kcl b jb 1.;
          add_kcl e jb (-1.);
          add_branch_row jb b 1.;
          add_branch_row jb e (-1.);
          a.(jb).(jb) <- a.(jb).(jb) -. r_sat;
          rhs.(jb) <- vbe;
          let jc = branch (c.name ^ ".c") in
          add_kcl col jc 1.;
          add_kcl e jc (-1.);
          add_branch_row jc col 1.;
          add_branch_row jc e (-1.);
          a.(jc).(jc) <- a.(jc).(jc) -. r_sat;
          rhs.(jc) <- vce_sat
      end)
    netlist.N.components;
  let x = solve_system ?sweep state a rhs in
  let v node = match idx node with Some i -> x.(i) | None -> 0. in
  (x, v, branch)

let check_and_update netlist state x v branch =
  let ok = ref true in
  let nominal c param = Interval.centroid (C.nominal_parameter c param) in
  let bjt =
    List.map
      (fun (name, region) ->
        let c = N.find netlist name in
        let vb = v (C.node_of c "b")
        and vc = v (C.node_of c "c")
        and ve = v (C.node_of c "e") in
        let vbe = nominal c "vbe" and beta = nominal c "beta" in
        let region' =
          match region with
          | Active ->
            let ib = x.(branch (name ^ ".b")) in
            if ib < -.tolerance then Cutoff
            else if vc -. ve < vce_sat -. 1e-6 then Saturated
            else Active
          | Cutoff -> if vb -. ve > vbe +. 1e-6 then Active else Cutoff
          | Saturated ->
            let ib = x.(branch (name ^ ".b")) in
            let ic = x.(branch (name ^ ".c")) in
            if ib < -.tolerance then Cutoff
            else if ic > (beta *. ib) +. tolerance then Active
            else Saturated
        in
        if region' <> region then ok := false;
        (name, region'))
      state.bjt
  in
  let diode =
    List.map
      (fun (name, mode) ->
        let c = N.find netlist name in
        let mode' =
          match mode with
          | Conducting ->
            if x.(branch name) < -.tolerance then Blocked else Conducting
          | Blocked ->
            let dv = v (C.node_of c "p") -. v (C.node_of c "n") in
            if dv > nominal c "Vf" +. 1e-6 then Conducting else Blocked
        in
        if mode' <> mode then ok := false;
        (name, mode'))
      state.diode
  in
  (!ok, { bjt; diode })

(* The solver is the inner loop of the fault-model fit sweep, so it
   carries an always-on solve counter and latency histogram plus a trace
   span; with tracing disabled the overhead is two clock reads against a
   full matrix factorisation. *)
let solves_total =
  Flames_obs.Metrics.counter "flames_mna_solves_total"
    ~help:"DC operating-point solves (piecewise-linear MNA)"

let solve_seconds =
  Flames_obs.Metrics.histogram "flames_mna_solve_seconds"
    ~help:"Latency of one DC operating-point solve"

let solve ?sweep netlist =
  Flames_obs.Metrics.incr solves_total;
  Flames_obs.Trace.with_span ~record:solve_seconds "mna.solve" @@ fun () ->
  let rec iterate state seen count =
    if count > 64 then
      raise (No_convergence "device-region iteration did not settle");
    let x, v, branch = solve_linear ?sweep netlist state in
    let ok, state' = check_and_update netlist state x v branch in
    if ok then (state, x, v, branch)
    else if List.mem state' seen then
      raise (No_convergence "device-region iteration cycled")
    else iterate state' (state :: seen) (count + 1)
  in
  let state, x, v, branch = iterate (initial_state netlist) [] 0 in
  let voltages =
    List.map (fun n -> (n, v n)) (N.nodes netlist)
  in
  let nominal c param = Interval.centroid (C.nominal_parameter c param) in
  let currents =
    List.concat_map
      (fun (c : C.t) ->
        match c.kind with
        | C.Resistor _ ->
          let i =
            (v (C.node_of c "p") -. v (C.node_of c "n")) /. nominal c "R"
          in
          [ (c.name, i) ]
        | C.Capacitor _ -> [ (c.name, 0.) ]
        | C.Inductor _ -> [ (c.name, x.(branch c.name)) ]
        | C.Voltage_source _ -> [ (c.name, x.(branch c.name)) ]
        | C.Gain_block _ -> [ (c.name, x.(branch c.name)) ]
        | C.Diode _ ->
          let i =
            match List.assoc c.name state.diode with
            | Conducting -> x.(branch c.name)
            | Blocked -> 0.
          in
          [ (c.name, i) ]
        | C.Bjt _ -> begin
          match List.assoc c.name state.bjt with
          | Cutoff -> [ (c.name ^ ".b", 0.); (c.name ^ ".c", 0.) ]
          | Active ->
            let ib = x.(branch (c.name ^ ".b")) in
            [ (c.name ^ ".b", ib); (c.name ^ ".c", nominal c "beta" *. ib) ]
          | Saturated ->
            [
              (c.name ^ ".b", x.(branch (c.name ^ ".b")));
              (c.name ^ ".c", x.(branch (c.name ^ ".c")));
            ]
        end)
      netlist.N.components
  in
  { voltages; currents; regions = state.bjt }

let voltage sol node = List.assoc node sol.voltages
let current sol key = List.assoc key sol.currents
let region sol name = List.assoc name sol.regions

let pp_region ppf = function
  | Active -> Format.pp_print_string ppf "active"
  | Cutoff -> Format.pp_print_string ppf "cutoff"
  | Saturated -> Format.pp_print_string ppf "saturated"

let pp ppf sol =
  List.iter
    (fun (n, v) -> Format.fprintf ppf "V(%s) = %.4g@." n v)
    sol.voltages;
  List.iter
    (fun (c, i) -> Format.fprintf ppf "I(%s) = %.4g@." c i)
    sol.currents;
  List.iter
    (fun (t, r) -> Format.fprintf ppf "%s: %a@." t pp_region r)
    sol.regions
