(* LU factors that replay [Linalg.solve_opt] exactly.

   The factorisation records the full elimination trace — pivot-row
   swaps in order, then the in-place L/U matrix whose strict lower part
   holds the multipliers — so that [resolve] applies to a fresh
   right-hand side the very same float operations, in the very same
   order, that [Linalg.solve_opt] would have applied had it been given
   the matrix and that vector together.  The [f <> 0.] skip is kept:
   a zero multiplier performs no subtraction on either side there, so
   it performs none here.  Hence [resolve (factor a) b] is bit-identical
   to [Linalg.solve_opt a b], and reusing factors across a sweep of
   right-hand sides cannot move a single diagnosis bit. *)

type t = {
  lu : float array array;
      (* upper triangle + diagonal: U; strict lower: multipliers *)
  swaps : (int * int) array;  (* (col, pivot) row exchanges, in order *)
  n : int;
}

let factor a =
  let n = Array.length a in
  if n > 0 && Array.length a.(0) <> n then
    invalid_arg "Lu.factor: dimension mismatch";
  let inf_norm =
    Array.fold_left
      (fun acc row ->
        Float.max acc (Array.fold_left (fun s x -> s +. Float.abs x) 0. row))
      0. a
  in
  let tiny = 1e-12 *. Float.max 1.0 inf_norm in
  let exception Stop in
  let m = Array.map Array.copy a in
  let swaps = ref [] in
  try
    for col = 0 to n - 1 do
      let pivot = ref col in
      for row = col + 1 to n - 1 do
        if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then
          pivot := row
      done;
      if Float.abs m.(!pivot).(col) < tiny then raise Stop;
      if !pivot <> col then begin
        let tmp = m.(col) in
        m.(col) <- m.(!pivot);
        m.(!pivot) <- tmp;
        swaps := (col, !pivot) :: !swaps
      end;
      for row = col + 1 to n - 1 do
        let f = m.(row).(col) /. m.(col).(col) in
        if f <> 0. then
          for k = col + 1 to n - 1 do
            m.(row).(k) <- m.(row).(k) -. (f *. m.(col).(k))
          done;
        (* the column entry below the pivot is dead for U; store the
           multiplier there (0. encodes the skip) *)
        m.(row).(col) <- f
      done
    done;
    Ok { lu = m; swaps = Array.of_list (List.rev !swaps); n }
  with Stop -> Error `Singular

let resolve t b =
  if Array.length b <> t.n then invalid_arg "Lu.resolve: dimension mismatch";
  let v = Array.copy b in
  (* All row interchanges first, then the multipliers in final
     positions.  This is bit-for-bit the elimination's interleaved
     trace: a swap of two not-yet-eliminated rows commutes exactly with
     earlier column updates because the factorisation swapped the
     stored multipliers along with the rows. *)
  Array.iter
    (fun (col, p) ->
      let tb = v.(col) in
      v.(col) <- v.(p);
      v.(p) <- tb)
    t.swaps;
  for col = 0 to t.n - 1 do
    for row = col + 1 to t.n - 1 do
      let f = t.lu.(row).(col) in
      if f <> 0. then v.(row) <- v.(row) -. (f *. v.(col))
    done
  done;
  let x = Array.make t.n 0. in
  for row = t.n - 1 downto 0 do
    let s = ref v.(row) in
    for k = row + 1 to t.n - 1 do
      s := !s -. (t.lu.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. t.lu.(row).(row)
  done;
  x

(* Sherman–Morrison refresh for A' = A + u·vᵀ given factors of A:
   x = z − w·(v·z)/(1 + v·w) with A z = b and A w = u.  Unlike
   [resolve] this is *not* bit-identical to factorising A' from
   scratch, so callers must only use it where approximate solutions
   are acceptable, and the result is rejected (None) when the
   denominator is degenerate or the residual against A' betrays a
   badly conditioned update. *)
let rank1_refresh t ~u ~v ~a' b =
  let z = resolve t b in
  let w = resolve t u in
  let dot x y =
    let s = ref 0. in
    Array.iteri (fun i xi -> s := !s +. (xi *. y.(i))) x;
    !s
  in
  let denom = 1. +. dot v w in
  if Float.abs denom < 1e-10 then None
  else begin
    let k = dot v z /. denom in
    let x = Array.mapi (fun i zi -> zi -. (k *. w.(i))) z in
    let scale =
      Array.fold_left (fun acc bi -> Float.max acc (Float.abs bi)) 1. b
    in
    if Linalg.residual_norm a' x b <= 1e-8 *. scale then Some x else None
  end
