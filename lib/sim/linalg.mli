(** Dense linear algebra for the MNA solver. *)

exception Singular
(** Raised when the system matrix is (numerically) singular. *)

val solve_opt :
  float array array -> float array -> (float array, [ `Singular ]) result
(** [solve_opt a b] solves [a x = b] by Gaussian elimination with
    partial pivoting; [Error `Singular] when no acceptable pivot can be
    found.  The pivot threshold is {e scale-relative}:
    [1e-12 * max 1 ‖a‖∞], so well-conditioned systems are accepted (and
    degenerate ones rejected) regardless of the conductance scale of the
    circuit.  [a] and [b] are not modified.
    @raise Invalid_argument on dimension mismatch. *)

val solve : float array array -> float array -> float array
(** {!solve_opt}, raising instead of returning [Error].  The exception
    is for use inside [lib/sim]; library boundaries convert it (see
    [Flames_core.Err.of_exn]).
    @raise Singular when no acceptable pivot can be found.
    @raise Invalid_argument on dimension mismatch. *)

val residual_norm : float array array -> float array -> float array -> float
(** Infinity norm of [a x - b] (used by tests). *)
