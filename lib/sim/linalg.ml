exception Singular

let solve_opt a b =
  let n = Array.length b in
  if Array.length a <> n || (n > 0 && Array.length a.(0) <> n) then
    invalid_arg "Linalg.solve: dimension mismatch";
  (* The pivot threshold is relative to the matrix magnitude: MNA
     matrices mix conductances that span many decades (1/R for R from
     milliohms to gigaohms), so an absolute 1e-12 would call a perfectly
     regular all-gigaohm system singular and accept a garbage pivot in
     an all-milliohm one.  [max 1.0 norm] keeps the old absolute
     behaviour for matrices of order unity (and for the zero matrix). *)
  let inf_norm =
    Array.fold_left
      (fun acc row ->
        Float.max acc
          (Array.fold_left (fun s x -> s +. Float.abs x) 0. row))
      0. a
  in
  let tiny = 1e-12 *. Float.max 1.0 inf_norm in
  let exception Stop in
  let m = Array.map Array.copy a in
  let v = Array.copy b in
  try
    for col = 0 to n - 1 do
      (* partial pivoting *)
      let pivot = ref col in
      for row = col + 1 to n - 1 do
        if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then
          pivot := row
      done;
      if Float.abs m.(!pivot).(col) < tiny then raise Stop;
      if !pivot <> col then begin
        let tmp = m.(col) in
        m.(col) <- m.(!pivot);
        m.(!pivot) <- tmp;
        let tb = v.(col) in
        v.(col) <- v.(!pivot);
        v.(!pivot) <- tb
      end;
      for row = col + 1 to n - 1 do
        let f = m.(row).(col) /. m.(col).(col) in
        if f <> 0. then begin
          for k = col to n - 1 do
            m.(row).(k) <- m.(row).(k) -. (f *. m.(col).(k))
          done;
          v.(row) <- v.(row) -. (f *. v.(col))
        end
      done
    done;
    let x = Array.make n 0. in
    for row = n - 1 downto 0 do
      let s = ref v.(row) in
      for k = row + 1 to n - 1 do
        s := !s -. (m.(row).(k) *. x.(k))
      done;
      x.(row) <- !s /. m.(row).(row)
    done;
    Ok x
  with Stop -> Error `Singular

let solve a b =
  match solve_opt a b with Ok x -> x | Error `Singular -> raise Singular

let residual_norm a x b =
  let n = Array.length b in
  let worst = ref 0. in
  for row = 0 to n - 1 do
    let s = ref (-.b.(row)) in
    for col = 0 to n - 1 do
      s := !s +. (a.(row).(col) *. x.(col))
    done;
    worst := Float.max !worst (Float.abs !s)
  done;
  !worst
