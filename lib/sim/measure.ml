module Interval = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity

type instrument = { relative : float; floor : float }

let default_instrument = { relative = 0.01; floor = 1e-3 }
let exact_instrument = { relative = 0.; floor = 0. }

let fuzzify inst reading =
  (* a malformed instrument (negative imprecision) degrades to an exact
     one rather than constructing a negative-flank interval *)
  let spread =
    Float.max 0. (Float.max (inst.relative *. Float.abs reading) inst.floor)
  in
  if spread = 0. then Interval.crisp reading
  else Interval.number reading ~spread

let probe ?(instrument = default_instrument) sol quantity =
  let reading =
    match quantity with
    | Q.Node_voltage n -> List.assoc_opt n sol.Mna.voltages
    | Q.Branch_current c -> List.assoc_opt c sol.Mna.currents
    | Q.Terminal_current (c, t) -> List.assoc_opt (c ^ "." ^ t) sol.Mna.currents
    | Q.Voltage_drop _ | Q.Parameter _ -> None
  in
  Option.map (fuzzify instrument) reading

let probe_all ?instrument sol quantities =
  List.filter_map
    (fun q -> Option.map (fun v -> (q, v)) (probe ?instrument sol q))
    quantities
