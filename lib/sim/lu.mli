(** Reusable LU factors for right-hand-side sweeps.

    {!factor} records the exact elimination trace of
    {!Linalg.solve_opt} — same relative pivot threshold, same row-swap
    sequence, same multiplier skip — so {!resolve} on a new right-hand
    side reproduces [Linalg.solve_opt a b] {e bit for bit}.  That makes
    factor reuse invisible to every downstream comparison: a sweep that
    re-solves many vectors against one matrix returns the same floats
    it would have returned solving each system from scratch.

    {!rank1_refresh} additionally answers small single-parameter matrix
    perturbations (A + u·vᵀ) from the same factors via
    Sherman–Morrison.  It is {e approximate} (not bit-identical to a
    fresh factorisation) and self-checks its residual; callers fall
    back to a full solve when it declines. *)

type t

val factor : float array array -> (t, [ `Singular ]) result
(** Factorise once.  Mirrors [Linalg.solve_opt]'s singularity
    behaviour: [Error `Singular] exactly when the full solve would have
    failed. *)

val resolve : t -> float array -> float array
(** Solve for one right-hand side against stored factors.
    [resolve (factor a) b] is bit-identical to [Linalg.solve_opt a b]. *)

val rank1_refresh :
  t ->
  u:float array ->
  v:float array ->
  a':float array array ->
  float array ->
  float array option
(** [rank1_refresh t ~u ~v ~a' b] solves [(A + u·vᵀ) x = b] from the
    factors of [A] by Sherman–Morrison, where [a'] is the perturbed
    matrix (used only to verify the residual).  [None] when the update
    denominator is degenerate or the verified residual is too large —
    the caller must then factorise [a'] itself. *)
