module C = Flames_circuit.Component
module N = Flames_circuit.Netlist
module Interval = Flames_fuzzy.Interval

type entry = { component : string; influence : float; spread : float }

type node_report = {
  node : string;
  nominal : float;
  total_spread : float;
  entries : entry list;
}

let probe_step = 0.01

(* Half-width of the parameter's support relative to its centroid — the
   tolerance the manufacturer states. *)
let relative_tolerance interval =
  let lo, hi = Interval.support interval in
  let c = Interval.centroid interval in
  if c = 0. then 0. else (hi -. lo) /. 2. /. Float.abs c

let solution_with ?sweep netlist (c : C.t) param multiplier =
  let nominal = C.nominal_parameter c param in
  let center = Interval.centroid nominal in
  if center = 0. then None
  else
    let moved = Interval.crisp (center *. multiplier) in
    let netlist' = N.replace netlist (C.with_parameter c param moved) in
    match Mna.solve ?sweep netlist' with
    | sol -> Some sol
    | exception (Mna.No_convergence _ | Linalg.Singular) -> None

let perturbed_solution ?sweep netlist c param =
  solution_with ?sweep netlist c param (1. +. probe_step)

(* Hard-fault worlds: whether a component can explain a deviation on a
   node at all is judged at the extremes, not only by the linearised 1 %
   move — an open collector load moves nodes the small-signal analysis
   says it cannot touch.  The extremes are parameter-appropriate: a
   resistance can short or open, a source or junction drop can collapse
   or double, a gain can die or run away. *)
let extreme_multipliers = function
  | "R" -> [ 1e-6; 1e9 ]
  | "V" | "Vf" | "vbe" -> [ 1e-6; 2. ]
  | "beta" | "beta+1" | "gain" -> [ 1e-6; 10. ]
  | _ -> []

let extreme_solutions ?sweep netlist c param =
  List.filter_map (solution_with ?sweep netlist c param) (extreme_multipliers param)

let analyze netlist =
  (* One sweep for the whole analysis: the nominal system solved first
     becomes the factor base every 1 % probe re-solves against (the
     matrix perturbations are rank-1 per parameter); a fresh context
     per call keeps the result a pure function of the netlist. *)
  let sweep = Mna.sweep () in
  let base = Mna.solve ~sweep netlist in
  let nodes =
    List.filter (fun n -> n <> netlist.N.ground) (N.nodes netlist)
  in
  let base_v n = List.assoc n base.Mna.voltages in
  (* per component: (influence per node, spread per node) *)
  let per_component =
    List.map
      (fun (c : C.t) ->
        let params = C.parameter_names c.kind in
        let deltas =
          List.filter_map
            (fun param ->
              match perturbed_solution ~sweep netlist c param with
              | None -> None
              | Some sol ->
                let tol = relative_tolerance (C.nominal_parameter c param) in
                let extremes = extreme_solutions ~sweep netlist c param in
                Some
                  (List.map
                     (fun n ->
                       let dv =
                         Float.abs (List.assoc n sol.Mna.voltages -. base_v n)
                       in
                       let dv_extreme =
                         List.fold_left
                           (fun acc s ->
                             Float.max acc
                               (Float.abs
                                  (List.assoc n s.Mna.voltages -. base_v n)))
                           dv extremes
                       in
                       (n, dv_extreme, dv *. (tol /. probe_step)))
                     nodes))
            params
        in
        let influence n =
          List.fold_left
            (fun acc per_node ->
              List.fold_left
                (fun acc (n', dv, _) -> if n' = n then Float.max acc dv else acc)
                acc per_node)
            0. deltas
        and spread n =
          List.fold_left
            (fun acc per_node ->
              List.fold_left
                (fun acc (n', _, s) -> if n' = n then acc +. s else acc)
                acc per_node)
            0. deltas
        in
        (c.name, influence, spread))
      netlist.N.components
  in
  List.map
    (fun node ->
      let entries =
        List.map
          (fun (component, influence, spread) ->
            { component; influence = influence node; spread = spread node })
          per_component
        |> List.sort (fun a b -> Float.compare b.influence a.influence)
      in
      let total_spread =
        List.fold_left (fun acc e -> acc +. e.spread) 0. entries
      in
      { node; nominal = base_v node; total_spread; entries })
    nodes

let supporters ?(threshold = 0.02) report =
  let max_influence =
    List.fold_left (fun acc e -> Float.max acc e.influence) 0. report.entries
  in
  if max_influence <= 0. then []
  else
    report.entries
    |> List.filter (fun e -> e.influence >= threshold *. max_influence)
    |> List.map (fun e -> e.component)
