(** DC operating-point simulator by modified nodal analysis.

    Solves the circuit at its nominal (centroid) parameter values.
    Nonlinear devices use piecewise-linear models whose operating regions
    are found by fixed-point iteration:

    - BJT: active ([Vbe] drop, [Ic = β·Ib]), cutoff (no conduction) or
      saturated ([Vbe] and [Vce,sat = 0.2 V] drops);
    - diode: conducting (fixed forward drop) or blocked.

    This substrate plays the role of the paper's physical test bench: it
    produces the "measured" values fed to the diagnosis engine. *)

type bjt_region = Active | Cutoff | Saturated

type solution = {
  voltages : (string * float) list;  (** node → voltage, ground at 0 *)
  currents : (string * float) list;
      (** two-terminal component → current (p→n); for a BJT the base
          current under name ["<name>.b"] and collector current
          ["<name>.c"] *)
  regions : (string * bjt_region) list;  (** operating region per BJT *)
}

exception No_convergence of string
(** The piecewise-linear region iteration cycled (pathological circuit). *)

type sweep
(** Factor-reuse context for solving many structurally identical
    circuits (a parameter sweep).  Caches LU factors of the first
    matrix seen per device-region assignment; later solves under the
    same assignment re-solve against those factors — bit-identically
    when only the right-hand side changed, via a residual-checked
    rank-1 Sherman–Morrison refresh when a single parameter moved the
    matrix, and by an ordinary full solve otherwise.  Single-domain,
    like the budget it typically accompanies. *)

val sweep : ?rank1:bool -> unit -> sweep
(** A fresh, empty sweep context.  [rank1] (default [false]) enables
    the approximate Sherman–Morrison path; leave it off when downstream
    consumers threshold or compare the solved voltages, so that every
    answered system is bit-identical to an unshared solve. *)

val solve : ?sweep:sweep -> Flames_circuit.Netlist.t -> solution
(** [solve netlist] finds the DC operating point.  With [?sweep], LU
    factors are reused across calls sharing the context (see {!sweep});
    without it, every call factorises from scratch, as before.
    @raise No_convergence, or {!Linalg.Singular} on a floating circuit. *)

val voltage : solution -> string -> float
(** @raise Not_found for an unknown node (ground returns 0). *)

val current : solution -> string -> float
(** @raise Not_found for an unknown component/terminal key. *)

val region : solution -> string -> bjt_region
val pp_region : Format.formatter -> bjt_region -> unit
val pp : Format.formatter -> solution -> unit
