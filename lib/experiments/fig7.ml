module Interval = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault
module Candidates = Flames_atms.Candidates

type scenario = {
  id : string;
  description : string;
  inject : Flames_circuit.Netlist.t -> Flames_circuit.Netlist.t;
  expectation : string;
}

type row = {
  scenario : scenario;
  dcs : (string * float) list;
  conflicts : (string list * float) list;
  suspects : (string * float) list;
  mode_matches : (string * string * float) list;
}

let tolerance = 0.005
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }
let probes = [ "vs"; "n2"; "v1" ]

let scenarios =
  [
    {
      id = "R2 short";
      description = "short circuit on the stage-1 collector load";
      inject = (fun n -> Fault.inject n (Fault.short "r2" ~parameter:"R"));
      expectation =
        "stage-1 candidate set, fault models single out R2 (short)";
    };
    {
      id = "R2 slightly high";
      description = "R2 = 12.18 kΩ (+1.5 %)";
      inject =
        (fun n -> Fault.inject n (Fault.shifted "r2" ~parameter:"R" 12.18e3));
      expectation = "partial conflicts only: Dc ≈ 0.89 drives the ranking";
    };
    {
      id = "Beta2 slightly low";
      description = "β2 = 194 (−3 %)";
      inject =
        (fun n -> Fault.inject n (Fault.shifted "t2" ~parameter:"beta" 194.));
      expectation = "weaker partial conflicts than the R2 drift (paper: 0.96)";
    };
    {
      id = "R3 open";
      description = "open circuit on the divider's lower resistor";
      inject = (fun n -> Fault.inject n (Fault.opened "r3" ~parameter:"R"));
      expectation =
        "hard conflict; sign of Dc says divider low resistor high / upper low";
    };
    {
      id = "N1 open";
      description = "broken connection at the divider/base node";
      inject = (fun n -> Fault.open_node n "n1");
      expectation = "diagnosed through stage-1 component fault modes";
    };
  ]

let config =
  { Flames_core.Model.default_config with trusted = [ "vcc" ] }

let netlist () = Flames_circuit.Library.three_stage_amplifier ~tolerance ()

let bias_point () =
  let sol = Flames_sim.Mna.solve (netlist ()) in
  sol.Flames_sim.Mna.voltages

(* Simulate the defective board and probe it: the measurement side of a
   scenario, shared by the sequential and the batch-engine paths. *)
let observations scenario =
  let nominal = netlist () in
  let faulty = scenario.inject nominal in
  let sol = Flames_sim.Mna.solve faulty in
  let observations =
    Flames_sim.Measure.probe_all ~instrument sol (List.map Q.voltage probes)
  in
  (nominal, observations)

let row_of_result scenario (r : Flames_core.Diagnose.result) =
  let dcs =
    List.filter_map
      (fun (s : Flames_core.Diagnose.symptom) ->
        match (s.Flames_core.Diagnose.quantity, s.Flames_core.Diagnose.signed_dc) with
        | Q.Node_voltage n, Some d -> Some (n, d)
        | (Q.Node_voltage _ | Q.Branch_current _ | Q.Terminal_current _
          | Q.Voltage_drop _ | Q.Parameter _), _ ->
          None)
      r.Flames_core.Diagnose.symptoms
  in
  let names = Flames_core.Propagate.names r.Flames_core.Diagnose.engine in
  let conflicts =
    List.map
      (fun (c : Candidates.conflict) ->
        ( List.map names (Flames_atms.Env.to_list c.Candidates.env),
          c.Candidates.degree ))
      r.Flames_core.Diagnose.conflicts
  in
  let suspects =
    List.map
      (fun (s : Flames_core.Diagnose.suspect) ->
        (s.Flames_core.Diagnose.component, s.Flames_core.Diagnose.suspicion))
      r.Flames_core.Diagnose.suspects
  in
  let mode_matches =
    List.concat_map
      (fun (s : Flames_core.Diagnose.suspect) ->
        List.concat_map
          (fun (e : Flames_core.Diagnose.mode_estimate) ->
            match e.Flames_core.Diagnose.modes with
            | (mode, degree) :: _
              when degree >= 0.5
                   && (match e.Flames_core.Diagnose.fit_residual with
                      | Some r -> r <= Flames_core.Diagnose.fit_threshold
                      | None -> false) ->
              [
                ( s.Flames_core.Diagnose.component,
                  Format.asprintf "%a" Fault.pp_mode mode,
                  degree );
              ]
            | (_, _) :: _ | [] -> [])
          s.Flames_core.Diagnose.estimates)
      r.Flames_core.Diagnose.suspects
    |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
  in
  { scenario; dcs; conflicts; suspects; mode_matches }

let run_scenario scenario =
  let nominal, obs = observations scenario in
  row_of_result scenario (Flames_core.Diagnose.run ~config nominal obs)

let run () = List.map run_scenario scenarios

(* The same sweep as batch-engine jobs: all five defects share one
   amplifier topology, so with a model cache the constraint model is
   compiled once and the four remaining jobs hit the cache. *)
let jobs () =
  List.map
    (fun scenario ->
      let nominal, obs = observations scenario in
      Flames_engine.Batch.job ~label:scenario.id ~config nominal obs)
    scenarios

let run_parallel ?workers ?cache () =
  let outcomes, stats = Flames_engine.Batch.run ?workers ?cache (jobs ()) in
  let rows =
    List.map2
      (fun scenario outcome ->
        match outcome with
        | Ok r -> row_of_result scenario r
        | Error e ->
          failwith
            (Format.asprintf "fig7 scenario %s: %a" scenario.id
               Flames_engine.Batch.pp_outcome (Error e : Flames_engine.Batch.outcome)))
      scenarios outcomes
  in
  (rows, stats)

let print_bias ppf voltages =
  Format.fprintf ppf "fig 6 — nominal bias point:@.";
  List.iter
    (fun (n, v) -> Format.fprintf ppf "  V(%s) = %.3f V@." n v)
    voltages

let print ppf rows =
  Format.fprintf ppf "fig 7 — three-stage amplifier defect scenarios:@.";
  List.iter
    (fun row ->
      Format.fprintf ppf "DEFECT: %s (%s)@." row.scenario.id
        row.scenario.description;
      Format.fprintf ppf "  Dc: %s@."
        (String.concat ", "
           (List.map (fun (n, d) -> Printf.sprintf "%s=%.2f" n d) row.dcs));
      Format.fprintf ppf "  conflicts:@.";
      List.iter
        (fun (members, d) ->
          Format.fprintf ppf "    {%s} @@ %.3g@." (String.concat "," members) d)
        row.conflicts;
      Format.fprintf ppf "  suspects: %s@."
        (String.concat ", "
           (List.map
              (fun (c, d) -> Printf.sprintf "%s@%.2g" c d)
              row.suspects));
      (match row.mode_matches with
      | [] -> Format.fprintf ppf "  fault-mode refinement: none@."
      | matches ->
        Format.fprintf ppf "  fault-mode refinement: %s@."
          (String.concat ", "
             (List.map
                (fun (c, m, d) -> Printf.sprintf "%s %s@%.2f" c m d)
                matches)));
      Format.fprintf ppf "  paper: %s@." row.scenario.expectation)
    rows
