(** Reproduction of the paper's figs. 6 and 7: the three-stage amplifier
    and its five defect scenarios.

    Each scenario injects the fault into the simulated circuit, probes
    Vs, V2 and V1 (plus the paper's implicit prior Vs-only step), and runs
    the FLAMES diagnosis.  Reported per scenario: the signed Dc of each
    probe (the paper's fig-7 columns), the weighted conflicts, the ranked
    suspects, and the fault-mode refinement. *)

module Interval = Flames_fuzzy.Interval

type scenario = {
  id : string;  (** paper's defect label *)
  description : string;
  inject : Flames_circuit.Netlist.t -> Flames_circuit.Netlist.t;
  expectation : string;  (** the paper's comment for the row *)
}

type row = {
  scenario : scenario;
  dcs : (string * float) list;  (** probe node → signed Dc *)
  conflicts : (string list * float) list;
  suspects : (string * float) list;
  mode_matches : (string * string * float) list;
      (** (component, mode, degree) — fault modes whose fitted parameter
          value matches a generic mode region with degree ≥ 0.5, i.e. the
          single-fault explanations of the observed symptoms *)
}

val scenarios : scenario list
(** The paper's five defects: R2 short, R2 slightly high (12.18 kΩ),
    β2 slightly low (194), R3 open, N1 open. *)

val bias_point : unit -> (string * float) list
(** Fig. 6: the nominal operating point of the amplifier (all transistors
    in the linear region). *)

val run_scenario : scenario -> row
val run : unit -> row list

val jobs : unit -> Flames_engine.Batch.job list
(** The five defect scenarios as batch-engine jobs (simulated and probed
    measurements attached), labelled by scenario id — shared by the CLI
    [batch] demo, the determinism tests and the benchmarks. *)

val run_parallel :
  ?workers:int ->
  ?cache:Flames_engine.Cache.t ->
  unit ->
  row list * Flames_engine.Stats.t
(** The five-defect sweep through the batch engine.  Rows are identical
    to {!run}'s (the determinism guarantee of {!Flames_engine.Batch})
    and come with the engine's run statistics.
    @raise Failure if a job is cancelled or times out. *)

val print_bias : Format.formatter -> (string * float) list -> unit
val print : Format.formatter -> row list -> unit
