(** Ablation A3: explosion control (paper section 10: "propagation of
    fuzzy intervals avoids possible explosions either in treating
    tolerances or in sets of candidates resulting from the ATMS").

    Amplifier chains of growing length are diagnosed with a mid-chain
    gain fault and full probing; per size we record the engine's working
    set (resident values), the number of minimal weighted conflicts, the
    number of minimal diagnoses, and the localisation quality.  The
    claim holds when all of these grow at most linearly with the chain
    length while the candidates stay ranked (the culprit on top). *)

type point = {
  stages : int;
  resident_values : int;  (** total values held across all cells *)
  conflicts : int;  (** minimal weighted nogoods *)
  diagnoses : int;  (** minimal diagnoses *)
  culprit_rank : int option;  (** 1-based rank of amp2 by suspicion *)
  steps : int;  (** propagation work-queue pops *)
}

val run : ?sizes:int list -> unit -> point list
(** Default sizes: 2, 4, 8, 16, 24. *)

val jobs : ?sizes:int list -> unit -> Flames_engine.Batch.job list
(** The scaling series as batch-engine jobs (one chain per size, mid-chain
    gain fault injected and probed), labelled [chain-NN]. *)

val run_parallel :
  ?workers:int ->
  ?cache:Flames_engine.Cache.t ->
  ?sizes:int list ->
  unit ->
  point list * Flames_engine.Stats.t
(** The scaling series through the batch engine; points identical to
    {!run}'s, plus the engine's run statistics.
    @raise Failure if a job is cancelled or times out. *)

val print : Format.formatter -> point list -> unit
