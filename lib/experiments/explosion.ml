module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library

type point = {
  stages : int;
  resident_values : int;
  conflicts : int;
  diagnoses : int;
  culprit_rank : int option;
  steps : int;
}

let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }
let default_sizes = [ 2; 4; 8; 16; 24 ]

let observations stages =
  let gains = List.init stages (fun i -> 1. +. float_of_int (i mod 3)) in
  let nominal = L.amplifier_chain ~gains () in
  let faulty = F.inject nominal (F.shifted "amp2" ~parameter:"gain" 10.) in
  let sol = Flames_sim.Mna.solve faulty in
  let observations =
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage (L.chain_nodes stages))
  in
  (nominal, observations)

let point_of_result stages (r : Flames_core.Diagnose.result) =
  let engine = r.Flames_core.Diagnose.engine in
  let model = Flames_core.Propagate.model engine in
  let resident_values =
    List.fold_left
      (fun acc q -> acc + List.length (Flames_core.Propagate.values engine q))
      0 model.Flames_core.Model.quantities
  in
  let culprit_rank =
    let rec find i = function
      | [] -> None
      | (s : Flames_core.Diagnose.suspect) :: rest ->
        if s.Flames_core.Diagnose.component = "amp2" then Some i
        else find (i + 1) rest
    in
    find 1 r.Flames_core.Diagnose.suspects
  in
  {
    stages;
    resident_values;
    conflicts = List.length r.Flames_core.Diagnose.conflicts;
    diagnoses = List.length r.Flames_core.Diagnose.diagnoses;
    culprit_rank;
    steps = Flames_core.Propagate.steps_used engine;
  }

let run_point stages =
  let nominal, obs = observations stages in
  point_of_result stages (Flames_core.Diagnose.run nominal obs)

let run ?(sizes = default_sizes) () = List.map run_point sizes

(* The scaling series as batch-engine jobs: every chain length is a
   distinct topology, so these exercise the cache's miss path (and its
   LRU eviction when the capacity is below the number of sizes). *)
let jobs ?(sizes = default_sizes) () =
  List.map
    (fun stages ->
      let nominal, obs = observations stages in
      Flames_engine.Batch.job
        ~label:(Printf.sprintf "chain-%02d" stages)
        nominal obs)
    sizes

let run_parallel ?workers ?cache ?(sizes = default_sizes) () =
  let outcomes, stats =
    Flames_engine.Batch.run ?workers ?cache (jobs ~sizes ())
  in
  let points =
    List.map2
      (fun stages outcome ->
        match outcome with
        | Ok r -> point_of_result stages r
        | Error e ->
          failwith
            (Format.asprintf "explosion chain-%d: %a" stages
               Flames_engine.Batch.pp_outcome
               (Error e : Flames_engine.Batch.outcome)))
      sizes outcomes
  in
  (points, stats)

let print ppf points =
  Format.fprintf ppf
    "ablation A3 — explosion control (amplifier chains, amp2 faulty):@.";
  Format.fprintf ppf "  %-8s %-16s %-10s %-10s %-13s %s@." "stages"
    "resident values" "conflicts" "diagnoses" "culprit rank" "steps";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-8d %-16d %-10d %-10d %-13s %d@." p.stages
        p.resident_values p.conflicts p.diagnoses
        (match p.culprit_rank with Some r -> string_of_int r | None -> "—")
        p.steps)
    points
