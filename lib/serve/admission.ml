module Metrics = Flames_obs.Metrics

type reason = Saturated | Throttled
type decision = Admitted | Shed of { reason : reason; retry_after : float }

type bucket = { mutable tokens : float; mutable refilled : float }

type t = {
  mutex : Mutex.t;
  now : unit -> float;
  max_inflight : int;
  quota_rate : float;
  quota_burst : float;
  mutable inflight : int;
  buckets : (string, bucket) Hashtbl.t;
}

let create ?now ?(max_inflight = 64) ?(quota_rate = 0.) ?(quota_burst = 10.)
    () =
  if max_inflight < 1 then
    invalid_arg "Admission.create: max_inflight must be >= 1";
  if quota_rate < 0. || quota_burst < 0. then
    invalid_arg "Admission.create: quota rate/burst must be >= 0";
  let now = match now with Some f -> f | None -> Unix.gettimeofday in
  {
    mutex = Mutex.create ();
    now;
    max_inflight;
    quota_rate;
    quota_burst;
    inflight = 0;
    buckets = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Lazy refill: tokens accrue since the bucket was last touched, capped
   at the burst size. *)
let take_token t client =
  if t.quota_rate <= 0. then `Token
  else begin
    let now = t.now () in
    let b =
      match Hashtbl.find_opt t.buckets client with
      | Some b ->
        b.tokens <-
          Float.min t.quota_burst
            (b.tokens +. ((now -. b.refilled) *. t.quota_rate));
        b.refilled <- now;
        b
      | None ->
        let b = { tokens = t.quota_burst; refilled = now } in
        Hashtbl.add t.buckets client b;
        b
    in
    if b.tokens >= 1. then begin
      b.tokens <- b.tokens -. 1.;
      `Token
    end
    else `Dry ((1. -. b.tokens) /. t.quota_rate)
  end

let admit t ~client =
  locked t @@ fun () ->
  match take_token t client with
  | `Dry wait ->
    Metrics.incr Telemetry.throttled_total;
    Shed { reason = Throttled; retry_after = wait }
  | `Token ->
    if t.inflight >= t.max_inflight then begin
      Metrics.incr Telemetry.shed_total;
      (* the queue drains at the service rate; one second is an honest
         "come back after roughly a queue's worth of work" default *)
      Shed { reason = Saturated; retry_after = 1. }
    end
    else begin
      t.inflight <- t.inflight + 1;
      Metrics.gauge_set Telemetry.inflight_jobs (float_of_int t.inflight);
      Admitted
    end

let release t =
  locked t @@ fun () ->
  t.inflight <- Int.max 0 (t.inflight - 1);
  Metrics.gauge_set Telemetry.inflight_jobs (float_of_int t.inflight)

let in_flight t = locked t @@ fun () -> t.inflight
let max_inflight t = t.max_inflight

let retry_after_header seconds =
  ("Retry-After", string_of_int (Int.max 1 (int_of_float (Float.ceil seconds))))
