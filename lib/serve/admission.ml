module Metrics = Flames_obs.Metrics
module Events = Flames_obs.Events

type reason = Saturated | Throttled
type decision = Admitted | Shed of { reason : reason; retry_after : float }

type bucket = { mutable tokens : float; mutable refilled : float }

type t = {
  mutex : Mutex.t;
  now : unit -> float;
  max_inflight : int;
  quota_rate : float;
  quota_burst : float;
  mutable inflight : int;
  buckets : (string, bucket) Hashtbl.t;
}

let create ?now ?(max_inflight = 64) ?(quota_rate = 0.) ?(quota_burst = 10.)
    () =
  if max_inflight < 1 then
    invalid_arg "Admission.create: max_inflight must be >= 1";
  if quota_rate < 0. || quota_burst < 0. then
    invalid_arg "Admission.create: quota rate/burst must be >= 0";
  let now = match now with Some f -> f | None -> Unix.gettimeofday in
  {
    mutex = Mutex.create ();
    now;
    max_inflight;
    quota_rate;
    quota_burst;
    inflight = 0;
    buckets = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Lazy refill: tokens accrue since the bucket was last touched, capped
   at the burst size. *)
let take_token t client =
  if t.quota_rate <= 0. then `Token
  else begin
    let now = t.now () in
    let b =
      match Hashtbl.find_opt t.buckets client with
      | Some b ->
        b.tokens <-
          Float.min t.quota_burst
            (b.tokens +. ((now -. b.refilled) *. t.quota_rate));
        b.refilled <- now;
        b
      | None ->
        let b = { tokens = t.quota_burst; refilled = now } in
        Hashtbl.add t.buckets client b;
        b
    in
    if b.tokens >= 1. then begin
      b.tokens <- b.tokens -. 1.;
      `Token
    end
    else `Dry ((1. -. b.tokens) /. t.quota_rate)
  end

let admit t ~client =
  locked t @@ fun () ->
  match take_token t client with
  | `Dry wait ->
    Metrics.incr Telemetry.throttled_total;
    Shed { reason = Throttled; retry_after = wait }
  | `Token ->
    if t.inflight >= t.max_inflight then begin
      Metrics.incr Telemetry.shed_total;
      (* the queue drains at the service rate; one second is an honest
         "come back after roughly a queue's worth of work" default *)
      Shed { reason = Saturated; retry_after = 1. }
    end
    else begin
      t.inflight <- t.inflight + 1;
      Metrics.gauge_set Telemetry.inflight_jobs (float_of_int t.inflight);
      Admitted
    end

let release t =
  locked t @@ fun () ->
  t.inflight <- Int.max 0 (t.inflight - 1);
  Metrics.gauge_set Telemetry.inflight_jobs (float_of_int t.inflight)

let in_flight t = locked t @@ fun () -> t.inflight
let max_inflight t = t.max_inflight

let retry_after_header seconds =
  ("Retry-After", string_of_int (Int.max 1 (int_of_float (Float.ceil seconds))))

(* {1 Session registry} *)

module Sessions = struct
  type 'a entry = {
    value : 'a;
    lock : Mutex.t;  (** serialises steps on one session *)
    mutable deadline : float;  (** absolute expiry on the injected clock *)
  }

  type 'a t = {
    mutex : Mutex.t;
    now : unit -> float;
    cap : int;
    ttl : float;
    sweep_every : float;  (** min spacing of full sweeps from lookups *)
    mutable last_sweep : float;
    mutable next_id : int;
    table : (string, 'a entry) Hashtbl.t;
  }

  let create ?now ?(cap = 64) ?(ttl = 600.) () =
    if cap < 1 then invalid_arg "Admission.Sessions.create: cap must be >= 1";
    if ttl <= 0. then invalid_arg "Admission.Sessions.create: ttl must be > 0";
    let now = match now with Some f -> f | None -> Unix.gettimeofday in
    Metrics.gauge_set Telemetry.session_capacity (float_of_int cap);
    {
      mutex = Mutex.create ();
      now;
      cap;
      ttl;
      sweep_every = Float.min 1.0 (ttl /. 8.);
      last_sweep = now ();
      next_id = 1;
      table = Hashtbl.create 16;
    }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* Callers hold [t.mutex]. *)
  let expired_event id =
    Metrics.incr Telemetry.sessions_expired_total;
    Events.emit ~name:"session.expired"
      [ ("session", Events.Str id); ("reason", Events.Str "ttl") ]

  let sweep_locked t =
    let now = t.now () in
    t.last_sweep <- now;
    let dead =
      Hashtbl.fold
        (fun id e acc -> if e.deadline <= now then id :: acc else acc)
        t.table []
    in
    List.iter
      (fun id ->
        Hashtbl.remove t.table id;
        expired_event id)
      dead;
    Metrics.gauge_set Telemetry.open_sessions
      (float_of_int (Hashtbl.length t.table));
    List.length dead

  let sweep t = locked t @@ fun () -> sweep_locked t

  let put t value =
    locked t @@ fun () ->
    ignore (sweep_locked t);
    if Hashtbl.length t.table >= t.cap then begin
      Metrics.incr Telemetry.sessions_shed_total;
      Events.emit ~name:"session.shed"
        [ ("reason", Events.Str "capacity"); ("cap", Events.Int t.cap) ];
      Error `Capacity
    end
    else begin
      let id = Printf.sprintf "s%d" t.next_id in
      t.next_id <- t.next_id + 1;
      Hashtbl.add t.table id
        { value; lock = Mutex.create (); deadline = t.now () +. t.ttl };
      Metrics.incr Telemetry.sessions_created_total;
      Metrics.gauge_set Telemetry.open_sessions
        (float_of_int (Hashtbl.length t.table));
      Ok id
    end

  (* Expiry is checked lazily on access, so a TTL test with an injected
     clock needs no background thread; a hit refreshes the deadline
     (idle sessions expire, active ones live on).  The *touched* entry's
     deadline is checked on every lookup — an expired-but-unswept
     session can never resurrect on touch — while the full-table sweep
     (which keeps the expired counter honest about idle siblings) runs
     at most once per [sweep_every], so a lookup is O(1) amortised
     rather than O(live sessions) under the registry lock on every
     request. *)
  let find_entry t id =
    locked t @@ fun () ->
    let now = t.now () in
    if now -. t.last_sweep >= t.sweep_every then ignore (sweep_locked t);
    match Hashtbl.find_opt t.table id with
    | None -> None
    | Some e when e.deadline <= now ->
      Hashtbl.remove t.table id;
      expired_event id;
      Metrics.gauge_set Telemetry.open_sessions
        (float_of_int (Hashtbl.length t.table));
      None
    | Some e ->
      e.deadline <- now +. t.ttl;
      Some e

  let with_session t id f =
    match find_entry t id with
    | None -> None
    | Some e ->
      Mutex.lock e.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock e.lock)
        (fun () -> Some (f e.value))

  let remove t id =
    locked t @@ fun () ->
    let existed = Hashtbl.mem t.table id in
    Hashtbl.remove t.table id;
    if existed then
      Metrics.gauge_set Telemetry.open_sessions
        (float_of_int (Hashtbl.length t.table));
    existed

  (* Journal recovery re-registers sessions under their original ids —
     the id is the client's resume handle, so it must survive the
     restart.  [next_id] jumps past any numeric suffix to keep future
     [put] ids disjoint. *)
  let restore t ~id value =
    locked t @@ fun () ->
    ignore (sweep_locked t);
    if Hashtbl.mem t.table id then Error `Duplicate
    else if Hashtbl.length t.table >= t.cap then begin
      Metrics.incr Telemetry.sessions_shed_total;
      Error `Capacity
    end
    else begin
      (match
         if String.length id > 1 && id.[0] = 's' then
           int_of_string_opt (String.sub id 1 (String.length id - 1))
         else None
       with
      | Some n when n >= t.next_id -> t.next_id <- n + 1
      | Some _ | None -> ());
      Hashtbl.add t.table id
        { value; lock = Mutex.create (); deadline = t.now () +. t.ttl };
      Metrics.gauge_set Telemetry.open_sessions
        (float_of_int (Hashtbl.length t.table));
      Ok ()
    end

  (* Snapshot support: run [f] over every live entry under that entry's
     own mutex, taken one at a time (the registry mutex is NOT held
     while [f] runs, so request threads blocked on an entry lock cannot
     deadlock against us — the global lock order stays
     [entry -> journal]). *)
  let map_sessions t f =
    let ids =
      locked t @@ fun () ->
      ignore (sweep_locked t);
      Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.filter_map
      (fun (id, e) ->
        Mutex.lock e.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock e.lock)
          (fun () ->
            (* the entry may have expired or been closed since listing *)
            let live = locked t @@ fun () -> Hashtbl.mem t.table id in
            if live then Some (id, f id e.value) else None))
      ids

  let count t = locked t @@ fun () -> Hashtbl.length t.table
  let cap t = t.cap
  let ttl t = t.ttl
end
