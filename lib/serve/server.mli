(** The network-facing diagnosis service.

    A {!start}ed server owns a listening TCP socket, a thread accepting
    connections, one handler thread per connection (keep-alive), and the
    {!Flames_engine.Pool} the diagnoses run on.  Request semantics live
    in {!Router}; admission control in {!Admission}; this module is only
    sockets, threads and lifecycle.

    Shutdown is a {e graceful drain}: {!stop} closes the listening
    socket (new connections are refused), lets in-flight requests and
    open keep-alive connections finish — [/readyz] turns 503 and
    [POST /diagnose] answers 503 immediately so load balancers and
    clients move on — then shuts the pool down.  [SIGPIPE] is ignored
    process-wide on {!start}: a client hanging up mid-response must not
    kill the server. *)

type config = {
  host : string;  (** bind address, default loopback *)
  port : int;  (** [0] = ephemeral, read back with {!port} *)
  workers : int;  (** pool worker domains *)
  max_inflight : int;  (** admission bound, see {!Admission} *)
  quota_rate : float;  (** per-client tokens/second, [<= 0] = off *)
  quota_burst : float;
  max_body : int;  (** request body cap, bytes (413 beyond) *)
  default_wall : float;  (** seconds of diagnosis budget per request *)
  max_wall : float;  (** cap on client-requested [budget_ms] *)
  backlog : int;  (** listen(2) backlog *)
  session_cap : int;  (** live troubleshooting sessions, 429 beyond *)
  session_ttl : float;  (** idle session expiry, seconds *)
  journal_dir : string option;
      (** session write-ahead journal directory; [None] (the default)
          turns persistence off.  With a journal, {!start} replays any
          existing segments before reporting ready — recovered sessions
          keep their ids and answer bit-identical diagnoses — and
          {!stop} snapshots the live sessions so a graceful deploy
          restarts from one compact segment. *)
  journal_fsync : Flames_store.Journal.fsync;
      (** durability of acknowledged steps, see
          {!Flames_store.Journal.fsync} *)
  journal_segment_bytes : int;  (** rotation threshold *)
}

val default_config : config
(** [127.0.0.1:8089], 2 workers, [max_inflight = 16], quotas off,
    1 MiB bodies, 2 s default / 10 s max wall, backlog 64, 64 sessions
    with a 600 s idle TTL; no journal (fsync interval 0.05 s and 1 MiB
    segments once one is configured). *)

type t

val start : ?config:config -> unit -> t
(** Bind, listen and serve in background threads; returns once the
    socket is accepting.  @raise Unix.Unix_error when the bind fails
    (address in use, privileged port). *)

val port : t -> int
(** The bound port — the actual one when [config.port = 0]. *)

val draining : t -> bool

val stop : t -> unit
(** Graceful drain as described above; blocks until every connection is
    closed and the pool has shut down.  Idempotent. *)

val run : ?config:config -> unit -> unit
(** {!start}, then block until [SIGTERM]/[SIGINT], then {!stop} — the
    [flames serve] subcommand.  Installs signal handlers; meant for a
    main thread that owns the process. *)
