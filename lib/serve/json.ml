type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        advance ();
        Buffer.contents b
      | '\\' ->
        advance ();
        if !pos >= n then fail "bad escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "bad unicode escape";
          let code =
            match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some c -> c
            | None -> fail "bad unicode escape"
          in
          pos := !pos + 4;
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else Buffer.add_string b (Printf.sprintf "<u+%04x>" code)
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        advance ();
        loop ()
      | c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ()
  in
  let number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else
        let rec fields acc =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        fields []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        items []
    | Some '"' ->
      advance ();
      Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_result s =
  match parse s with v -> Ok v | exception Parse_error m -> Error m

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_num b f =
  if Float.is_nan f || Float.abs f = infinity then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> add_num b f
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          go v)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let pp ppf v = Format.pp_print_string ppf (to_string v)

let mem k = function Obj fields -> List.assoc_opt k fields | _ -> None

let str = function Str s -> s | _ -> invalid_arg "Json.str"
let num = function Num f -> f | _ -> invalid_arg "Json.num"
let str_opt = function Str s -> Some s | _ -> None
let num_opt = function Num f -> Some f | _ -> None
let list_opt = function Arr l -> Some l | _ -> None
