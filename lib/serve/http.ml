type request = {
  meth : string;
  path : string;
  query : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

type error = Eof | Malformed of string | Too_large of int

let max_line = 8192
let max_headers = 100
let default_max_body = 1 lsl 20

type conn = {
  c_fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let conn fd = { c_fd = fd; buf = Bytes.create 8192; pos = 0; len = 0 }
let fd c = c.c_fd

(* [false] = end of stream.  A read interrupted by a signal retries. *)
let refill c =
  if c.pos < c.len then true
  else begin
    let rec read () =
      match Unix.read c.c_fd c.buf 0 (Bytes.length c.buf) with
      | n -> n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read ()
    in
    let n = read () in
    c.pos <- 0;
    c.len <- n;
    n > 0
  end

(* One CRLF-terminated line, CRLF stripped (a lone LF is tolerated).
   [at_start] distinguishes a clean close between messages (Eof) from a
   truncated message (Malformed). *)
let read_line ~at_start c =
  let b = Buffer.create 64 in
  let rec loop () =
    if Buffer.length b > max_line then Error (Too_large (Buffer.length b))
    else if not (refill c) then
      if at_start && Buffer.length b = 0 then Error Eof
      else Error (Malformed "connection closed mid-line")
    else begin
      let ch = Bytes.get c.buf c.pos in
      c.pos <- c.pos + 1;
      if ch = '\n' then begin
        let s = Buffer.contents b in
        let l = String.length s in
        Ok (if l > 0 && s.[l - 1] = '\r' then String.sub s 0 (l - 1) else s)
      end
      else begin
        Buffer.add_char b ch;
        loop ()
      end
    end
  in
  loop ()

let read_exact c n =
  let out = Bytes.create n in
  let rec loop filled =
    if filled = n then Ok (Bytes.unsafe_to_string out)
    else if not (refill c) then Error (Malformed "connection closed mid-body")
    else begin
      let take = Int.min (n - filled) (c.len - c.pos) in
      Bytes.blit c.buf c.pos out filled take;
      c.pos <- c.pos + take;
      loop (filled + take)
    end
  in
  loop 0

let header headers name =
  List.assoc_opt (String.lowercase_ascii name) headers

let trim = String.trim

let read_headers c =
  let rec loop n acc =
    if n > max_headers then Error (Malformed "too many headers")
    else
      match read_line ~at_start:false c with
      | Error e -> Error e
      | Ok "" -> Ok (List.rev acc)
      | Ok line -> begin
        match String.index_opt line ':' with
        | None | Some 0 -> Error (Malformed "malformed header line")
        | Some i ->
          let name = String.lowercase_ascii (String.sub line 0 i) in
          let value =
            trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          loop (n + 1) ((name, value) :: acc)
      end
  in
  loop 0 []

let read_body ?(max_body = default_max_body) c headers =
  match header headers "content-length" with
  | None -> Ok ""
  | Some v -> begin
    match int_of_string_opt (trim v) with
    | None -> Error (Malformed "unparsable Content-Length")
    | Some n when n < 0 -> Error (Malformed "negative Content-Length")
    | Some n when n > max_body -> Error (Too_large n)
    | Some n -> read_exact c n
  end

let ( let* ) = Result.bind

let read_request ?max_body c =
  let* line = read_line ~at_start:true c in
  let* meth, target, version =
    match String.split_on_char ' ' line with
    | [ meth; target; version ]
      when meth <> "" && target <> ""
           && (version = "HTTP/1.1" || version = "HTTP/1.0") ->
      Ok (meth, target, version)
    | _ -> Error (Malformed (Printf.sprintf "malformed request line %S" line))
  in
  let path, query =
    match String.index_opt target '?' with
    | None -> (target, "")
    | Some i ->
      ( String.sub target 0 i,
        String.sub target (i + 1) (String.length target - i - 1) )
  in
  let* headers = read_headers c in
  let* body = read_body ?max_body c headers in
  Ok { meth; path; query; version; headers; body }

let read_response ?max_body c =
  let* line = read_line ~at_start:true c in
  let* status, reason =
    match String.split_on_char ' ' line with
    | version :: code :: rest
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> begin
      match int_of_string_opt code with
      | Some status -> Ok (status, String.concat " " rest)
      | None -> Error (Malformed (Printf.sprintf "malformed status line %S" line))
    end
    | _ -> Error (Malformed (Printf.sprintf "malformed status line %S" line))
  in
  let* resp_headers = read_headers c in
  let* resp_body = read_body ?max_body c resp_headers in
  Ok { status; reason; resp_headers; resp_body }

let keep_alive r =
  match (r.version, Option.map String.lowercase_ascii (header r.headers "connection")) with
  | _, Some "close" -> false
  | "HTTP/1.0", other -> other = Some "keep-alive"
  | _, _ -> true

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec loop off =
    if off < Bytes.length b then
      let n = Unix.write fd b off (Bytes.length b - off) in
      loop (off + n)
  in
  loop 0

let assemble ~first_line ~headers ~content_type body =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b first_line;
  Buffer.add_string b "\r\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_string b ": ";
      Buffer.add_string b v;
      Buffer.add_string b "\r\n")
    (("Content-Type", content_type)
    :: ("Content-Length", string_of_int (String.length body))
    :: headers);
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b

let write_response fd ?(headers = []) ?(content_type = "application/json")
    ~status body =
  let first_line =
    Printf.sprintf "HTTP/1.1 %d %s" status (reason_phrase status)
  in
  (* a peer that hung up mustn't kill the handler thread *)
  try write_all fd (assemble ~first_line ~headers ~content_type body)
  with Unix.Unix_error _ -> ()

let write_request fd ?(headers = []) ?(content_type = "application/json")
    ~meth ~path body =
  let first_line = Printf.sprintf "%s %s HTTP/1.1" meth path in
  write_all fd (assemble ~first_line ~headers ~content_type body)
