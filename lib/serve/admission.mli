(** Admission control for the diagnosis service.

    Two independent gates in front of {!Flames_engine.Pool}:

    - a {e bounded admission queue}: at most [max_inflight] diagnosis
      requests admitted but not yet answered (queued in the pool or
      running on a worker).  Past the bound the request is shed with a
      429 instead of growing an unbounded queue;
    - {e per-client token buckets} keyed by the client id header:
      [quota_burst] tokens, refilled at [quota_rate] tokens/second.
      A rate [<= 0] disables the quota gate entirely.

    Decisions bump the [flames_serve_shed_total] /
    [flames_serve_throttled_total] counters and the in-flight gauge; the
    clock is injectable so the refill arithmetic is unit-testable. *)

type reason =
  | Saturated  (** admission queue full — global overload *)
  | Throttled  (** this client exhausted its token bucket *)

type decision =
  | Admitted  (** caller must pair with {!release} *)
  | Shed of { reason : reason; retry_after : float  (** seconds, >= 0 *) }

type t

val create :
  ?now:(unit -> float) ->
  ?max_inflight:int ->
  ?quota_rate:float ->
  ?quota_burst:float ->
  unit ->
  t
(** Defaults: [max_inflight = 64], quotas disabled ([quota_rate = 0.]),
    [quota_burst = 10.].
    @raise Invalid_argument on [max_inflight < 1] or negative rates. *)

val admit : t -> client:string -> decision
(** Quota is checked first (a throttled client never consumes queue
    capacity), then the queue bound.  An [Admitted] decision has already
    taken the slot and the token. *)

val release : t -> unit
(** Return an admitted request's slot (call exactly once per
    [Admitted], whatever the outcome of the job). *)

val in_flight : t -> int
val max_inflight : t -> int

val retry_after_header : float -> string * string
(** The [Retry-After] header for a shed decision, rounded up to a whole
    second (the header's granularity), at least 1. *)

(** Registry of live troubleshooting sessions behind [POST /session/*].

    Bounded ([cap], creations past it answered with 429 by the router)
    and idle-expiring ([ttl] seconds, refreshed on every access, checked
    lazily — no background thread, so an injected clock drives expiry in
    tests).  Each entry carries its own mutex: steps on one session are
    serialised, steps on different sessions run concurrently. *)
module Sessions : sig
  type 'a t

  val create : ?now:(unit -> float) -> ?cap:int -> ?ttl:float -> unit -> 'a t
  (** Defaults: [cap = 64] sessions, [ttl = 600.] seconds.
      @raise Invalid_argument on [cap < 1] or [ttl <= 0]. *)

  val put : 'a t -> 'a -> (string, [ `Capacity ]) result
  (** Register a session (sweeping expired entries first) and return its
      fresh id, or [Error `Capacity] when the registry is full. *)

  val with_session : 'a t -> string -> ('a -> 'b) -> 'b option
  (** Run [f] on the named session under its per-session mutex,
      refreshing the TTL; [None] when the id is unknown or expired.
      The touched entry's deadline is checked on {e every} lookup (an
      expired session can never resurrect on access), and a full sweep
      of idle siblings — counted in
      [flames_serve_sessions_expired_total] — runs on lookups at most
      once per short interval, so lookups stay O(1) amortised under the
      registry lock while expiry is still observable no later than the
      next sweep-due access (or {!put}/{!sweep}, which always sweep). *)

  val remove : 'a t -> string -> bool

  val restore : 'a t -> id:string -> 'a -> (unit, [ `Capacity | `Duplicate ]) result
  (** Re-register a recovered session under its original id (the
      client's resume handle), with a fresh TTL.  Future {!put} ids are
      kept disjoint by advancing the id counter past [id]'s numeric
      suffix. *)

  val map_sessions : 'a t -> (string -> 'a -> 'b) -> (string * 'b) list
  (** Apply [f] to every live session, each under its own per-session
      mutex (taken one at a time; the registry lock is not held while
      [f] runs).  Drives the journal's rotation and drain snapshots. *)

  val sweep : 'a t -> int
  (** Drop every expired entry now; the count removed. *)

  val count : 'a t -> int
  val cap : 'a t -> int
  val ttl : 'a t -> float
end
