(** Admission control for the diagnosis service.

    Two independent gates in front of {!Flames_engine.Pool}:

    - a {e bounded admission queue}: at most [max_inflight] diagnosis
      requests admitted but not yet answered (queued in the pool or
      running on a worker).  Past the bound the request is shed with a
      429 instead of growing an unbounded queue;
    - {e per-client token buckets} keyed by the client id header:
      [quota_burst] tokens, refilled at [quota_rate] tokens/second.
      A rate [<= 0] disables the quota gate entirely.

    Decisions bump the [flames_serve_shed_total] /
    [flames_serve_throttled_total] counters and the in-flight gauge; the
    clock is injectable so the refill arithmetic is unit-testable. *)

type reason =
  | Saturated  (** admission queue full — global overload *)
  | Throttled  (** this client exhausted its token bucket *)

type decision =
  | Admitted  (** caller must pair with {!release} *)
  | Shed of { reason : reason; retry_after : float  (** seconds, >= 0 *) }

type t

val create :
  ?now:(unit -> float) ->
  ?max_inflight:int ->
  ?quota_rate:float ->
  ?quota_burst:float ->
  unit ->
  t
(** Defaults: [max_inflight = 64], quotas disabled ([quota_rate = 0.]),
    [quota_burst = 10.].
    @raise Invalid_argument on [max_inflight < 1] or negative rates. *)

val admit : t -> client:string -> decision
(** Quota is checked first (a throttled client never consumes queue
    capacity), then the queue bound.  An [Admitted] decision has already
    taken the slot and the token. *)

val release : t -> unit
(** Return an admitted request's slot (call exactly once per
    [Admitted], whatever the outcome of the job). *)

val in_flight : t -> int
val max_inflight : t -> int

val retry_after_header : float -> string * string
(** The [Retry-After] header for a shed decision, rounded up to a whole
    second (the header's granularity), at least 1. *)
