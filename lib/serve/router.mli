(** Request routing and the diagnosis request/response protocol.

    Pure request → reply mapping given the service dependencies; the
    socket handling lives in {!Server}, so every route (including
    admission shedding and the error discipline) is unit-testable
    without a listening socket.

    Routes:
    - [POST /diagnose] — body is either a JSON object (see below) or a
      plain-text batch scenario line
      ([circuit \[comp.param=mode\] \[probe,probe\]]).  Admission-gated:
      429 with [Retry-After] when the bounded queue is full or the
      client's token bucket is dry (client id = [X-Flames-Client]
      header, default ["anonymous"]).
    - [POST /session/create] — open a persistent troubleshooting
      session on a builtin circuit or inline netlist (body:
      [{"circuit" | "netlist", "trusted"?}]); answers
      [{"session": id, "circuit", "ttl_s"}], or 429 when the bounded
      session registry ({!Admission.Sessions}) is at capacity.
    - [POST /session/<id>/measure] — add a measurement
      ([{"node", "value", "spread"}] or trapezoid fields); the model and
      ATMS state persist between steps, so repeated measure/diagnose
      round-trips never recompile or re-run the simulator sweeps.
    - [POST /session/<id>/retract], [/refine] — drop or narrow a
      measurement by its id.
    - [POST /session/<id>/diagnoses] — the ranked diagnosis of the
      surviving measurements (bit-identical to a from-scratch run).
    - [POST /session/<id>/next] — the fuzzy-entropy best next test
      point, or [{"test": null}].
    - [POST /session/<id>/close] — drop the session early (idle
      sessions expire after the registry TTL anyway).
      Unknown or expired session ids answer 404.
    - [GET /metrics] — Prometheus text exposition of the registry,
      including the per-route latency digests
      ([flames_serve_route_seconds{route,quantile}]).
    - [GET /debug/flight] — the flight recorder: the last N wide
      events plus recent trace spans as one JSON object
      ({!Flames_obs.Recorder}).
    - [GET /healthz] — liveness, always 200 while the process serves.
    - [GET /readyz] — readiness: 503 while draining or saturated, with
      pool [queue_depth]/[in_flight] introspection in the body.
    - [GET /version] — the {!Version.current} constant.

    JSON diagnose request fields: [circuit] (built-in name) {e or}
    [netlist] (netlist source text); optional [fault]
    ("comp.param=mode"), [probes] (node names), [observations]
    ([{"node", "value", "spread"}] or trapezoid
    [{"node", "m1", "m2", "alpha", "beta"}] — bypasses simulation),
    [trusted] (component names), [imprecision] (relative), [budget_ms]
    (capped by the server's [max_wall]).

    Error discipline mirrors the CLI's exit codes: malformed input is
    400 with a one-line [{"error": ...}] (the CLI's exit-2 class),
    computational failure is 500 (exit-1 class), overload is 429/503,
    and a budget-degraded diagnosis is still 200 with
    [degraded: true]. *)

(** A registered session plus the provenance every journal record about
    it must carry (how to rebuild its netlist, which components are
    trusted) — recovery reconstructs sessions from the journal alone. *)
type live = {
  session : Flames_session.Session.t;
  source : Flames_store.Record.source;
  trusted : string list;
}

type deps = {
  pool : Flames_engine.Pool.t;
  cache : Flames_engine.Cache.t;
  admission : Admission.t;
  sessions : live Admission.Sessions.t;
      (** live troubleshooting sessions behind [POST /session/*] *)
  store : Flames_store.Journal.t option ref;
      (** the session write-ahead journal; every mutating [/session/*]
          route appends (and per the fsync mode syncs) {e before}
          applying the in-memory mutation and replying, so an
          acknowledged step survives [kill -9] and a failed append
          answers 500 with the session state untouched (create, whose
          id is allocated by the registry, instead rolls the session
          back out) — acknowledged state never diverges from the
          journal in either direction.  [None] = persistence off. *)
  ready : unit -> bool;
      (** [false] while startup recovery replays the journal: [/readyz]
          answers 503 + [Retry-After] and mutating routes refuse with
          the same, so no request can race the replay *)
  draining : unit -> bool;
  default_wall : float;  (** per-request budget when none is asked for *)
  max_wall : float;  (** server-side cap on the requested budget *)
}

type reply = {
  status : int;
  headers : (string * string) list;
  content_type : string;
  body : string;
}

val handle : deps -> Http.request -> reply
(** Total: every exception inside a handler becomes a structured 500;
    nothing escapes to the connection loop.

    Request-scoped observability: a valid [X-Flames-Trace-Id] request
    header is adopted (otherwise a fresh id is generated), echoed on
    every reply including 429 sheds, and joined — together with the
    [X-Flames-Client] id, the normalised route and the session id —
    to the one wide event emitted per request
    ({!Flames_obs.Events}). *)

val route_name : string -> string
(** Low-cardinality route label for digests and events
    ([/session/<id>/measure] → [/session/*/measure]; unknown paths →
    [other]). *)

val json_error : ?headers:(string * string) list -> int -> string -> reply
(** The one-line error reply shape, shared with {!Server}'s protocol
    errors (400/413). *)
