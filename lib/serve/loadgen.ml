module Gen = Flames_check.Gen
module Rng = Flames_check.Rng
module Parser = Flames_circuit.Parser
module Q = Flames_circuit.Quantity
module Interval = Flames_fuzzy.Interval

type level_stats = {
  clients : int;
  requests : int;
  ok : int;
  shed : int;
  errors : int;
  protocol_errors : int;
  degraded : int;
  duration : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
}

type report = {
  host : string;
  port : int;
  seed : int;
  level_duration : float;
  levels : level_stats list;
}

(* {1 Request synthesis} *)

(* Built-in circuits with catalog faults: cheap, cache-friendly
   requests that exercise the service's common path. *)
let catalog =
  [
    ("divider", Some "r2.R=short");
    ("divider", Some "r1.R=high");
    ("divider", Some "r2.R=3300");
    ("divider", None);
    ("diode", Some "r1.R=open");
    ("diode", None);
  ]

let node_of_quantity = function
  | Q.Node_voltage n -> Some n
  | Q.Branch_current _ | Q.Terminal_current _ | Q.Voltage_drop _
  | Q.Parameter _ ->
    None

(* A Gen ladder scenario shipped as netlist text plus the client-side
   simulated observations — the heavier, never-cached path. *)
let ladder_body rng =
  let spec = Gen.scenario.Gen.gen rng in
  let nominal, _faulty = Gen.scenario_netlists spec in
  let observations =
    Gen.scenario_observations spec
    |> List.filter_map (fun (q, (v : Interval.t)) ->
           node_of_quantity q
           |> Option.map (fun node ->
                  Json.Obj
                    [
                      ("node", Json.Str node);
                      ("m1", Json.Num v.Interval.m1);
                      ("m2", Json.Num v.Interval.m2);
                      ("alpha", Json.Num v.Interval.alpha);
                      ("beta", Json.Num v.Interval.beta);
                    ]))
  in
  Json.Obj
    [
      ("netlist", Json.Str (Parser.to_string nominal));
      ("observations", Json.Arr observations);
    ]

let catalog_body rng =
  let circuit, fault = Rng.choose rng catalog in
  Json.Obj
    (("circuit", Json.Str circuit)
    :: (match fault with Some f -> [ ("fault", Json.Str f) ] | None -> []))

let request_body rng =
  Json.to_string (if Rng.chance rng 0.25 then ladder_body rng else catalog_body rng)

(* {1 One client} *)

type tally = {
  mutable t_requests : int;
  mutable t_ok : int;
  mutable t_shed : int;
  mutable t_errors : int;
  mutable t_protocol : int;
  mutable t_degraded : int;
  mutable latencies : float list;  (** seconds, 200s only *)
}

let fresh_tally () =
  {
    t_requests = 0;
    t_ok = 0;
    t_shed = 0;
    t_errors = 0;
    t_protocol = 0;
    t_degraded = 0;
    latencies = [];
  }

let connect ~host ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Some (Http.conn fd)
  with Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

let close_conn conn =
  try Unix.close (Http.fd conn) with Unix.Unix_error _ -> ()

(* One keep-alive client until the deadline.  Every failure to complete
   a round-trip is a protocol error — the server is expected to shed
   with 429, never by breaking the connection. *)
let client_loop ~host ~port ~client_id ~rng ~deadline tally =
  let conn = ref None in
  let rec step () =
    if Unix.gettimeofday () >= deadline then ()
    else begin
      (match !conn with
      | Some _ -> ()
      | None -> begin
        match connect ~host ~port with
        | Some c -> conn := Some c
        | None ->
          tally.t_protocol <- tally.t_protocol + 1;
          Thread.delay 0.05
      end);
      (match !conn with
      | None -> ()
      | Some c -> begin
        let body = request_body rng in
        let t0 = Unix.gettimeofday () in
        match
          Http.write_request (Http.fd c)
            ~headers:[ ("X-Flames-Client", client_id) ]
            ~meth:"POST" ~path:"/diagnose" body;
          Http.read_response c
        with
        | exception Unix.Unix_error _ ->
          tally.t_protocol <- tally.t_protocol + 1;
          close_conn c;
          conn := None
        | Error _ ->
          tally.t_protocol <- tally.t_protocol + 1;
          close_conn c;
          conn := None
        | Ok response ->
          let dt = Unix.gettimeofday () -. t0 in
          tally.t_requests <- tally.t_requests + 1;
          (match response.Http.status with
          | 200 ->
            tally.t_ok <- tally.t_ok + 1;
            tally.latencies <- dt :: tally.latencies;
            (match Json.parse_result response.Http.resp_body with
            | Ok j when Json.mem "degraded" j = Some (Json.Bool true) ->
              tally.t_degraded <- tally.t_degraded + 1
            | Ok _ -> ()
            | Error _ -> tally.t_protocol <- tally.t_protocol + 1)
          | 429 -> tally.t_shed <- tally.t_shed + 1
          | _ -> tally.t_errors <- tally.t_errors + 1);
          if Http.header response.Http.resp_headers "connection" = Some "close"
          then begin
            close_conn c;
            conn := None
          end;
          (* A shed client backs off for the advertised interval's
             floor — hammering a saturated server just burns CPU the
             workers need. *)
          if response.Http.status = 429 then Thread.delay 0.02
      end);
      step ()
    end
  in
  step ();
  Option.iter close_conn !conn

(* {1 Levels and the sweep} *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let run_level ~host ~port ~seed ~level_index ~clients ~duration =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration in
  let tallies = Array.init clients (fun _ -> fresh_tally ()) in
  let threads =
    List.init clients (fun c ->
        let rng =
          Rng.make (Rng.case_seed ~seed ~case:((level_index * 4096) + c))
        in
        let client_id = Printf.sprintf "load-%d-%d" level_index c in
        Thread.create
          (fun () ->
            client_loop ~host ~port ~client_id ~rng ~deadline tallies.(c))
          ())
  in
  List.iter Thread.join threads;
  let measured = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let latencies =
    Array.to_list tallies |> List.concat_map (fun t -> t.latencies)
    |> Array.of_list
  in
  Array.sort compare latencies;
  let n_lat = Array.length latencies in
  let ms s = s *. 1e3 in
  let requests = sum (fun t -> t.t_requests) in
  {
    clients;
    requests;
    ok = sum (fun t -> t.t_ok);
    shed = sum (fun t -> t.t_shed);
    errors = sum (fun t -> t.t_errors);
    protocol_errors = sum (fun t -> t.t_protocol);
    degraded = sum (fun t -> t.t_degraded);
    duration = measured;
    throughput_rps =
      (if measured > 0. then float_of_int requests /. measured else 0.);
    p50_ms = ms (percentile latencies 0.50);
    p95_ms = ms (percentile latencies 0.95);
    p99_ms = ms (percentile latencies 0.99);
    mean_ms =
      (if n_lat = 0 then 0.
       else ms (Array.fold_left ( +. ) 0. latencies /. float_of_int n_lat));
    max_ms = (if n_lat = 0 then 0. else ms latencies.(n_lat - 1));
  }

let sweep ?progress ~host ~port ~seed ~duration levels =
  let stats =
    List.mapi
      (fun i clients ->
        let s = run_level ~host ~port ~seed ~level_index:i ~clients ~duration in
        Option.iter (fun f -> f s) progress;
        (* let queued work drain so levels don't bleed into each other *)
        Thread.delay 0.2;
        s)
      levels
  in
  { host; port; seed; level_duration = duration; levels = stats }

let to_json r =
  let num_i n = Json.Num (float_of_int n) in
  Json.Obj
    [
      ("series", Json.Str "serve-saturation");
      ("host", Json.Str r.host);
      ("port", num_i r.port);
      ("seed", num_i r.seed);
      ("duration_s", Json.Num r.level_duration);
      ("cores", num_i (Domain.recommended_domain_count ()));
      ( "rows",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("clients", num_i s.clients);
                   ("requests", num_i s.requests);
                   ("ok", num_i s.ok);
                   ("shed", num_i s.shed);
                   ("errors", num_i s.errors);
                   ("protocol_errors", num_i s.protocol_errors);
                   ("degraded", num_i s.degraded);
                   ("duration_s", Json.Num s.duration);
                   ("throughput_rps", Json.Num s.throughput_rps);
                   ("p50_ms", Json.Num s.p50_ms);
                   ("p95_ms", Json.Num s.p95_ms);
                   ("p99_ms", Json.Num s.p99_ms);
                   ("mean_ms", Json.Num s.mean_ms);
                   ("max_ms", Json.Num s.max_ms);
                 ])
             r.levels) );
    ]

let write_json path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json r));
      output_char oc '\n')
