(** Minimal HTTP/1.1 over raw [Unix] file descriptors.

    Just enough protocol for the diagnosis service and its load
    generator: request/response parsing with hard size limits,
    [Content-Length] bodies (no chunked encoding, no TLS), keep-alive.
    Both directions are implemented here so {!Server} and {!Loadgen}
    exercise the same parser. *)

type request = {
  meth : string;  (** verb, as sent (["GET"], ["POST"], ...) *)
  path : string;  (** request target without the query string *)
  query : string;  (** raw query string, [""] when absent *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;  (** names lowercased, in order *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;  (** names lowercased *)
  resp_body : string;
}

type error =
  | Eof  (** clean close before the first byte of a message *)
  | Malformed of string  (** protocol violation: answer 400 and close *)
  | Too_large of int
      (** declared or actual size beyond a limit: answer 413 and close *)

type conn
(** A buffered reader over one socket (or pipe) file descriptor. *)

val conn : Unix.file_descr -> conn
val fd : conn -> Unix.file_descr

val read_request : ?max_body:int -> conn -> (request, error) result
(** Parse the next request off the connection.  Limits: request line and
    each header line 8 KiB, at most 100 headers, body at most [max_body]
    (default 1 MiB) — beyond it the request is rejected with
    [Too_large] {e before} the body is read.  A missing or unparsable
    [Content-Length] on a body-less method means an empty body. *)

val read_response : ?max_body:int -> conn -> (response, error) result
(** Client side of the same parser. *)

val header : (string * string) list -> string -> string option
(** Case-insensitive header lookup (names are stored lowercased). *)

val keep_alive : request -> bool
(** Persistent-connection semantics: HTTP/1.1 unless
    [Connection: close]; HTTP/1.0 only with [Connection: keep-alive]. *)

val reason_phrase : int -> string

val write_response :
  Unix.file_descr ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  status:int ->
  string ->
  unit
(** [write_response fd ~status body] sends a complete response with
    [Content-Length] (default content type [application/json]).  Write
    errors (peer went away) are swallowed: the connection is about to be
    closed anyway and a dead client must not kill its handler. *)

val write_request :
  Unix.file_descr ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  meth:string ->
  path:string ->
  string ->
  unit
(** Client side: send [meth path HTTP/1.1] with a [Content-Length] body.
    @raise Unix.Unix_error on write failure (the load generator counts
    these as protocol errors). *)
