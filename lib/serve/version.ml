(* The single version constant: flames_cli --version, the Cmdliner
   man-page header and the server's GET /version all read this. *)

let current = "1.1.0"
