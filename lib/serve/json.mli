(** A tiny self-contained JSON parser and printer.

    One implementation shared by the HTTP request/response bodies of
    {!Server}, the [BENCH_serve.json] emitter in {!Loadgen} and the
    exporter tests (which previously carried their own in-test parser).
    The repo deliberately has no JSON dependency; this module is the
    whole story: UTF-8 pass-through strings, floats for every number,
    objects as association lists in source order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Parse a complete JSON document.
    @raise Parse_error with a position-tagged message on malformed
    input, including trailing garbage. *)

val parse_result : string -> (t, string) result
(** {!parse} with the error as a value — the boundary the HTTP layer
    uses, so a bad body never raises across the connection handler. *)

(** {1 Printing} *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace).  Integral numbers
    print without a decimal point; everything else as shortest-roundtrip
    [%.12g].  Non-finite numbers render as [null] (JSON has no NaN). *)

val pp : Format.formatter -> t -> unit

val escape : string -> string
(** The string-literal body escaping used by {!to_string} (also handy
    for hand-assembled JSON elsewhere). *)

(** {1 Accessors} *)

val mem : string -> t -> t option
(** [mem k (Obj fields)] is the value under key [k]; [None] on missing
    keys and non-objects. *)

val str : t -> string
(** @raise Invalid_argument when not a [Str]. *)

val num : t -> float
(** @raise Invalid_argument when not a [Num]. *)

val str_opt : t -> string option
val num_opt : t -> float option
val list_opt : t -> t list option
