module Pool = Flames_engine.Pool
module Cache = Flames_engine.Cache
module Budget = Flames_core.Budget
module Model = Flames_core.Model
module Diagnose = Flames_core.Diagnose
module Err = Flames_core.Err
module Interval = Flames_fuzzy.Interval
module Netlist = Flames_circuit.Netlist
module Library = Flames_circuit.Library
module Parser = Flames_circuit.Parser
module Fault = Flames_circuit.Fault
module Q = Flames_circuit.Quantity
module Metrics = Flames_obs.Metrics
module Context = Flames_obs.Context
module Events = Flames_obs.Events
module Ids = Flames_obs.Ids
module Digest = Flames_obs.Digest
module Recorder = Flames_obs.Recorder

module Session = Flames_session.Session
module Journal = Flames_store.Journal
module Record = Flames_store.Record

(* What the registry holds per session: the session itself plus the
   provenance (source netlist, trusted components) every journal record
   about it needs — recovery must be able to rebuild the session from
   the journal alone. *)
type live = {
  session : Session.t;
  source : Record.source;
  trusted : string list;
}

type deps = {
  pool : Pool.t;
  cache : Cache.t;
  admission : Admission.t;
  sessions : live Admission.Sessions.t;
  store : Journal.t option ref;
      (** the session journal, once the server opened it (after
          recovery); [None] = persistence off *)
  ready : unit -> bool;
      (** startup recovery finished; until then /readyz answers 503 and
          mutating routes refuse *)
  draining : unit -> bool;
  default_wall : float;
  max_wall : float;
}

type reply = {
  status : int;
  headers : (string * string) list;
  content_type : string;
  body : string;
}

let json_reply ?(headers = []) status j =
  {
    status;
    headers;
    content_type = "application/json";
    body = Json.to_string j ^ "\n";
  }

(* One line, echoing the CLI's one-line stderr discipline. *)
let json_error ?headers status message =
  json_reply ?headers status (Json.Obj [ ("error", Json.Str message) ])

let text_reply status body =
  { status; headers = []; content_type = "text/plain; charset=utf-8"; body }

(* {1 Diagnose request parsing} *)

type spec = {
  label : string;
  nominal : Netlist.t;
  faulty : Netlist.t;
  probes : string list;
  observations : (Q.t * Interval.t) list option;
  trusted : string list;
  imprecision : float;
  wall_ms : float option;
}

let bad fmt = Printf.ksprintf (fun m -> Error m) fmt
let ( let* ) = Result.bind

let resolve_circuit ~circuit ~netlist =
  match (circuit, netlist) with
  | Some name, _ -> begin
    match List.assoc_opt name Library.builtins with
    | Some f -> Ok (name, f ())
    | None ->
      bad "unknown circuit %S (available: %s)" name
        (String.concat ", " (List.map fst Library.builtins))
  end
  | None, Some text -> begin
    match Parser.parse text with
    | Ok n -> Ok (n.Netlist.name, n)
    | Error e -> bad "netlist: %s" (Format.asprintf "%a" Parser.pp_error e)
  end
  | None, None -> bad "request needs a \"circuit\" name or \"netlist\" text"

let inject_fault nominal = function
  | None -> Ok nominal
  | Some spec ->
    let* fault = Fault.of_spec spec in
    (match Fault.inject nominal fault with
    | faulty -> Ok faulty
    | exception Not_found -> bad "no such component/parameter in %S" spec)

let check_probes netlist probes =
  let nodes = Netlist.nodes netlist in
  match List.find_opt (fun p -> not (List.mem p nodes)) probes with
  | Some p -> bad "unknown probe node %S" p
  | None -> Ok probes

let interval_of_json j =
  let field k = Option.bind (Json.mem k j) Json.num_opt in
  match (field "value", field "m1", field "m2") with
  | Some v, _, _ -> begin
    match field "spread" with
    | Some s when s > 0. -> Ok (Interval.number v ~spread:s)
    | _ -> Ok (Interval.crisp v)
  end
  | None, Some m1, Some m2 ->
    let alpha = Option.value ~default:0. (field "alpha") in
    let beta = Option.value ~default:0. (field "beta") in
    (match Interval.make ~m1 ~m2 ~alpha ~beta with
    | v -> Ok v
    | exception Interval.Invalid m -> bad "bad observation interval: %s" m)
  | None, _, _ -> bad "observation needs \"value\" or \"m1\"/\"m2\""

let observations_of_json netlist = function
  | None -> Ok None
  | Some (Json.Arr items) ->
    let nodes = Netlist.nodes netlist in
    let rec loop acc = function
      | [] -> Ok (Some (List.rev acc))
      | item :: rest -> begin
        match Option.bind (Json.mem "node" item) Json.str_opt with
        | None -> bad "observation needs a \"node\""
        | Some node when not (List.mem node nodes) ->
          bad "unknown observation node %S" node
        | Some node ->
          let* v = interval_of_json item in
          loop ((Q.voltage node, v) :: acc) rest
      end
    in
    loop [] items
  | Some _ -> bad "\"observations\" must be an array"

let str_list_field j key =
  match Json.mem key j with
  | None -> Ok []
  | Some (Json.Arr items) ->
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | Json.Str s :: rest -> loop (s :: acc) rest
      | _ -> bad "%S must be an array of strings" key
    in
    loop [] items
  | Some _ -> bad "%S must be an array of strings" key

let spec_of_json j =
  let str_field k = Option.bind (Json.mem k j) Json.str_opt in
  let num_field k = Option.bind (Json.mem k j) Json.num_opt in
  let* label, nominal =
    resolve_circuit ~circuit:(str_field "circuit") ~netlist:(str_field "netlist")
  in
  let* faulty = inject_fault nominal (str_field "fault") in
  let* probes = str_list_field j "probes" in
  let* probes = check_probes nominal probes in
  let* trusted = str_list_field j "trusted" in
  let* observations = observations_of_json nominal (Json.mem "observations" j) in
  Ok
    {
      label;
      nominal;
      faulty;
      probes;
      observations;
      trusted;
      imprecision = Option.value ~default:0.002 (num_field "imprecision");
      wall_ms = num_field "budget_ms";
    }

(* Plain-text body: one batch scenario line,
   <builtin-circuit> [comp.param=mode] [probe,probe,...] *)
let spec_of_text line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun f -> f <> "")
  with
  | [] -> bad "empty scenario line"
  | circuit :: fields ->
    let* label, nominal = resolve_circuit ~circuit:(Some circuit) ~netlist:None in
    let faults, probes = List.partition (fun f -> String.contains f '=') fields in
    let* faulty =
      inject_fault nominal (match faults with [] -> None | s :: _ -> Some s)
    in
    let probes =
      List.concat_map (String.split_on_char ',') probes
      |> List.filter (fun p -> p <> "")
    in
    let* probes = check_probes nominal probes in
    Ok
      {
        label;
        nominal;
        faulty;
        probes;
        observations = None;
        trusted = [];
        imprecision = 0.002;
        wall_ms = None;
      }

let spec_of_request (r : Http.request) =
  (* A JSON spec always opens with '{' and a scenario line never does, so
     sniff the body first; the content-type only decides the ambiguous
     (empty-body) cases and lets curl's default form encoding through. *)
  let is_json =
    let b = String.trim r.Http.body in
    (String.length b > 0 && b.[0] = '{')
    ||
    match Http.header r.Http.headers "content-type" with
    | Some ct ->
      let ct = String.lowercase_ascii ct in
      let rec contains i =
        i + 4 <= String.length ct && (String.sub ct i 4 = "json" || contains (i + 1))
      in
      contains 0
    | None -> false
  in
  if is_json then
    let* j = Json.parse_result r.Http.body in
    spec_of_json j
  else spec_of_text r.Http.body

(* {1 Diagnose response rendering} *)

let interval_json (v : Interval.t) =
  Json.Obj
    [
      ("m1", Json.Num v.Interval.m1);
      ("m2", Json.Num v.Interval.m2);
      ("alpha", Json.Num v.Interval.alpha);
      ("beta", Json.Num v.Interval.beta);
    ]

let result_json ~label ~elapsed (r : Diagnose.result) =
  let opt_num = function Some f -> Json.Num f | None -> Json.Null in
  Json.Obj
    [
      ("circuit", Json.Str label);
      ("healthy", Json.Bool (Diagnose.healthy r));
      ("degraded", Json.Bool r.Diagnose.degraded);
      ( "trips",
        Json.Arr
          (List.map (fun t -> Json.Str (Budget.trip_label t)) r.Diagnose.trips) );
      ("elapsed_ms", Json.Num (elapsed *. 1e3));
      ( "symptoms",
        Json.Arr
          (List.map
             (fun (s : Diagnose.symptom) ->
               Json.Obj
                 [
                   ("quantity", Json.Str (Q.to_string s.Diagnose.quantity));
                   ("dc", opt_num s.Diagnose.signed_dc);
                   ("measured", interval_json s.Diagnose.measured);
                 ])
             r.Diagnose.symptoms) );
      ( "suspects",
        Json.Arr
          (List.map
             (fun (s : Diagnose.suspect) ->
               Json.Obj
                 [
                   ("component", Json.Str s.Diagnose.component);
                   ("suspicion", Json.Num s.Diagnose.suspicion);
                   ("explains", Json.Bool s.Diagnose.explains);
                 ])
             r.Diagnose.suspects) );
      ( "diagnoses",
        Json.Arr
          (List.map
             (fun (components, rank) ->
               Json.Obj
                 [
                   ( "components",
                     Json.Arr (List.map (fun c -> Json.Str c) components) );
                   ("rank", Json.Num rank);
                 ])
             r.Diagnose.diagnoses) );
      ( "single_faults",
        Json.Arr
          (List.map
             (fun (c, rank) ->
               Json.Obj [ ("component", Json.Str c); ("rank", Json.Num rank) ])
             r.Diagnose.single_faults) );
      ("summary", Json.Str (Flames_core.Report.summary r));
    ]

(* {1 Handlers} *)

let shed_reply reason retry_after =
  let label =
    match reason with
    | Admission.Saturated -> "admission queue full"
    | Admission.Throttled -> "client quota exhausted"
  in
  Context.annotate "shed"
    (Context.Str
       (match reason with
       | Admission.Saturated -> "saturated"
       | Admission.Throttled -> "throttled"));
  Context.annotate "retry_after_s" (Context.Num retry_after);
  json_error
    ~headers:[ Admission.retry_after_header retry_after ]
    429
    (Printf.sprintf "shed: %s, retry later" label)

let diagnose deps (r : Http.request) =
  match spec_of_request r with
  | Error m -> json_error 400 m
  | Ok spec -> begin
    let client =
      Option.value ~default:"anonymous"
        (Http.header r.Http.headers "x-flames-client")
    in
    match Admission.admit deps.admission ~client with
    | Shed { reason; retry_after } -> shed_reply reason retry_after
    | Admitted ->
      Fun.protect
        ~finally:(fun () -> Admission.release deps.admission)
        (fun () ->
          Metrics.time Telemetry.request_seconds @@ fun () ->
          let t0 = Unix.gettimeofday () in
          let wall =
            Float.min deps.max_wall
              (match spec.wall_ms with
              | Some ms when ms > 0. -> ms /. 1e3
              | _ -> deps.default_wall)
          in
          let budget = Budget.start (Budget.spec ~wall ()) in
          let config =
            { Model.default_config with trusted = spec.trusted }
          in
          let promise =
            Pool.submit deps.pool ~label:spec.label ~timeout:wall ~budget
              (fun () ->
                let schedule = Cache.compile deps.cache ~config spec.nominal in
                let observations =
                  match spec.observations with
                  | Some obs -> obs
                  | None ->
                    let sol = Flames_sim.Mna.solve spec.faulty in
                    let instrument =
                      {
                        Flames_sim.Measure.relative = spec.imprecision;
                        floor = 5e-4;
                      }
                    in
                    let quantities =
                      match spec.probes with
                      | [] ->
                        List.filter
                          (function Q.Node_voltage _ -> true | _ -> false)
                          (Library.probe_points spec.nominal)
                      | ps -> List.map Q.voltage ps
                    in
                    Flames_sim.Measure.probe_all ~instrument sol quantities
                in
                Diagnose.run ~config ~schedule ~budget spec.nominal
                  observations)
          in
          match Pool.await promise with
          | Ok result ->
            json_reply 200
              (result_json ~label:spec.label
                 ~elapsed:(Unix.gettimeofday () -. t0)
                 result)
          | Error (Pool.Failed e) ->
            json_error 500 (Err.to_string (Err.of_exn e))
          | Error (Pool.Crashed { attempts }) ->
            json_error 500
              (Err.to_string (Err.Worker_crashed { attempts }))
          | Error Pool.Timed_out ->
            json_error 504
              (Printf.sprintf "diagnosis exceeded its %.0f ms budget"
                 (wall *. 1e3))
          | Error Pool.Cancelled ->
            json_error 503 "overloaded: job expired before a worker was free")
  end

(* {1 Interactive sessions: POST /session/*}

   The session registry ([deps.sessions]) is the admission story here:
   a bounded number of live sessions (429 past the cap) with an idle
   TTL; the per-request inflight gate stays on /diagnose, since session
   steps are serialised by the per-session mutex anyway. *)

let measurement_json (m : Session.measurement) =
  Json.Obj
    [
      ("id", Json.Num (float_of_int m.Session.id));
      ("quantity", Json.Str (Q.to_string m.Session.quantity));
      ("interval", interval_json m.Session.interval);
    ]

let evaluation_json (e : Flames_strategy.Best_test.evaluation) =
  let module B = Flames_strategy.Best_test in
  Json.Obj
    [
      ( "test",
        Json.Obj
          [
            ("quantity", Json.Str (Q.to_string e.B.test.B.quantity));
            ("cost", Json.Num e.B.test.B.cost);
            ( "influencers",
              Json.Arr (List.map (fun c -> Json.Str c) e.B.test.B.influencers)
            );
          ] );
      ("score", Json.Num e.B.score);
      ("deviant_likelihood", interval_json e.B.deviant_likelihood);
      ("expected_entropy", interval_json e.B.expected_entropy);
    ]

let session_create deps (r : Http.request) =
  let* j = Json.parse_result r.Http.body in
  let str_field k = Option.bind (Json.mem k j) Json.str_opt in
  let* label, nominal =
    resolve_circuit ~circuit:(str_field "circuit") ~netlist:(str_field "netlist")
  in
  let source =
    match (str_field "circuit", str_field "netlist") with
    | Some name, _ -> Record.Builtin name
    | None, Some text -> Record.Inline text
    | None, None -> Record.Builtin label (* unreachable: resolve succeeded *)
  in
  let* trusted = str_list_field j "trusted" in
  let config = { Model.default_config with trusted } in
  (* the schedule comes from the shared compilation cache, so
     re-creating a session on a builtin costs no recompilation and
     shares the warm consistency memo *)
  let schedule = Cache.compile deps.cache ~config nominal in
  let session = Session.create ~config ~schedule nominal in
  Ok (label, { session; source; trusted })

(* Write-ahead discipline: the record is framed, written and (per the
   fsync mode) synced before the in-memory mutation is applied and the
   200 goes out, so an acknowledged step survives kill -9 — and a
   failed append answers 500 with the session state *untouched*, so
   memory never runs ahead of what a restart would replay.  The journal
   quarantines its own torn segment on failure; here the error is just
   counted and surfaced. *)
let journal deps record =
  match !(deps.store) with
  | None -> Ok ()
  | Some store -> (
    match Journal.append store record with
    | () -> Ok ()
    | exception e ->
      Metrics.incr Flames_store.Telemetry.append_errors_total;
      Error
        (Printf.sprintf "journal append failed: %s" (Printexc.to_string e)))

let session_step deps id f =
  (* the session id joins the step's wide event whether or not the
     session still exists — an expired-session 404 is exactly the kind
     of exchange worth correlating *)
  Context.set_session id;
  match Admission.Sessions.with_session deps.sessions id f with
  | None -> json_error 404 (Printf.sprintf "no such session %S" id)
  | Some reply -> reply

let measurement_of_json netlist j =
  match Option.bind (Json.mem "node" j) Json.str_opt with
  | None -> bad "measurement needs a \"node\""
  | Some node when not (List.mem node (Netlist.nodes netlist)) ->
    bad "unknown measurement node %S" node
  | Some node ->
    let* v = interval_of_json j in
    Ok (Q.voltage node, v)

let int_field j key =
  match Option.bind (Json.mem key j) Json.num_opt with
  | Some f when Float.is_integer f -> Ok (int_of_float f)
  | Some _ | None -> bad "request needs an integral %S" key

let session_routes deps (r : Http.request) segments =
  let with_json f =
    match Json.parse_result r.Http.body with
    | Error m -> json_error 400 m
    | Ok j -> (
      match f j with Ok reply -> reply | Error m -> json_error 400 m)
  in
  match segments with
  | [ "create" ] ->
    if deps.draining () then json_error 503 "draining: not accepting sessions"
    else begin
      match session_create deps r with
      | Error m -> json_error 400 m
      | Ok (label, live) -> (
        match Admission.Sessions.put deps.sessions live with
        | Error `Capacity ->
          json_error
            ~headers:[ Admission.retry_after_header (Admission.Sessions.ttl deps.sessions) ]
            429
            (Printf.sprintf "session registry full (%d live), retry later"
               (Admission.Sessions.cap deps.sessions))
        | Ok id -> (
          Context.set_session id;
          match
            journal deps
              (Record.Create { sid = id; source = live.source; trusted = live.trusted })
          with
          | Error m ->
            (* never hand out a session id the journal does not know:
               a restart would lose it silently *)
            ignore (Admission.Sessions.remove deps.sessions id);
            json_error 500 m
          | Ok () ->
            json_reply 200
              (Json.Obj
                 [
                   ("session", Json.Str id);
                   ("circuit", Json.Str label);
                   ("ttl_s", Json.Num (Admission.Sessions.ttl deps.sessions));
                 ])))
    end
  | [ id; "measure" ] ->
    session_step deps id (fun live ->
        with_json (fun j ->
            let* q, v = measurement_of_json (Session.netlist live.session) j in
            (* the id the add will assign is known up front, so the
               record can be durable before the session mutates *)
            let mid = Session.next_id live.session in
            Ok
              (match
                 journal deps
                   (Record.Measure { sid = id; mid; quantity = q; interval = v })
               with
              | Error m -> json_error 500 m
              | Ok () ->
                let m = Session.add_measurement live.session q v in
                json_reply 200 (measurement_json m))))
  | [ id; "retract" ] ->
    session_step deps id (fun live ->
        with_json (fun j ->
            let* mid = int_field j "id" in
            match Session.find_measurement live.session ~id:mid with
            | None -> Ok (json_error 404 (Printf.sprintf "no measurement %d" mid))
            | Some _ ->
              Ok
                (match journal deps (Record.Retract { sid = id; mid }) with
                | Error m -> json_error 500 m
                | Ok () ->
                  ignore (Session.retract live.session ~id:mid);
                  json_reply 200
                    (Json.Obj [ ("retracted", Json.Num (float_of_int mid)) ]))))
  | [ id; "refine" ] ->
    session_step deps id (fun live ->
        with_json (fun j ->
            let* mid = int_field j "id" in
            let* v = interval_of_json j in
            match Session.find_measurement live.session ~id:mid with
            | None -> Ok (json_error 404 (Printf.sprintf "no measurement %d" mid))
            | Some _ ->
              Ok
                (match
                   journal deps (Record.Refine { sid = id; mid; interval = v })
                 with
                | Error m -> json_error 500 m
                | Ok () -> (
                  match Session.refine live.session ~id:mid v with
                  | Some m -> json_reply 200 (measurement_json m)
                  | None ->
                    (* unreachable: the entry lock is held and the id
                       was just found *)
                    json_error 500
                      (Printf.sprintf "measurement %d vanished mid-step" mid)))))
  | [ id; "diagnoses" ] ->
    session_step deps id (fun live ->
        let t0 = Unix.gettimeofday () in
        let result = Session.diagnoses live.session in
        json_reply 200
          (result_json
             ~label:(Session.netlist live.session).Netlist.name
             ~elapsed:(Unix.gettimeofday () -. t0)
             result))
  | [ id; "next" ] ->
    session_step deps id (fun live ->
        match Session.next_test live.session with
        | Some e -> json_reply 200 (evaluation_json e)
        | None -> json_reply 200 (Json.Obj [ ("test", Json.Null) ]))
  | [ id; "close" ] ->
    (* under the entry lock so the Close record is ordered against the
       session's other journaled steps; journal-first, so a failed
       append leaves the session registered — it must not be gone in
       memory yet alive in the journal, resurrecting on restart *)
    session_step deps id (fun _live ->
        match journal deps (Record.Close { sid = id }) with
        | Error m -> json_error 500 m
        | Ok () ->
          ignore (Admission.Sessions.remove deps.sessions id);
          json_reply 200 (Json.Obj [ ("closed", Json.Str id) ]))
  | _ ->
    json_error 404
      "session routes: POST /session/create or \
       /session/<id>/{measure,retract,refine,diagnoses,next,close}"

(* Startup recovery in progress: the listener is up (so orchestrators
   see the port) but state is still being replayed — answer 503 with a
   Retry-After instead of serving requests against missing sessions. *)
let recovering_reply () =
  json_reply
    ~headers:[ Admission.retry_after_header 1. ]
    503
    (Json.Obj
       [
         ("ready", Json.Bool false);
         ("error", Json.Str "recovering: replaying the session journal");
       ])

let readyz deps =
  if not (deps.ready ()) then recovering_reply ()
  else
  let admitted = Admission.in_flight deps.admission in
  let draining = deps.draining () in
  let ready = (not draining) && admitted < Admission.max_inflight deps.admission in
  json_reply
    ~headers:(if ready then [] else [ Admission.retry_after_header 1. ])
    (if ready then 200 else 503)
    (Json.Obj
       [
         ("ready", Json.Bool ready);
         ("draining", Json.Bool draining);
         ("admitted", Json.Num (float_of_int admitted));
         ( "max_inflight",
           Json.Num (float_of_int (Admission.max_inflight deps.admission)) );
         ("queue_depth", Json.Num (float_of_int (Pool.queue_depth deps.pool)));
         ("in_flight", Json.Num (float_of_int (Pool.in_flight deps.pool)));
         ("workers", Json.Num (float_of_int (Pool.workers deps.pool)));
       ])

let version_reply () =
  json_reply 200
    (Json.Obj
       [
         ("service", Json.Str "flames_serve");
         ("version", Json.Str Version.current);
       ])

let session_segments path =
  String.sub path 9 (String.length path - 9)
  |> String.split_on_char '/'
  |> List.filter (fun s -> s <> "")

let is_session_path path =
  String.length path >= 9 && String.sub path 0 9 = "/session/"

(* Low-cardinality route name for digests and events: session ids are
   collapsed so /session/s1/measure and /session/s2/measure land in the
   same latency series. *)
let route_name path =
  if is_session_path path then
    match session_segments path with
    | [ "create" ] -> "/session/create"
    | [ _; op ] -> "/session/*/" ^ op
    | _ -> "/session/*"
  else
    match path with
    | "/diagnose" | "/metrics" | "/healthz" | "/readyz" | "/version"
    | "/debug/flight" ->
      path
    | _ -> "other"

let dispatch deps (r : Http.request) =
  let guarded f =
    match f () with
    | reply -> reply
    | exception e -> json_error 500 (Err.to_string (Err.of_exn e))
  in
  let require meth f =
    if r.Http.meth = meth then guarded f
    else
      json_error
        ~headers:[ ("Allow", meth) ]
        405
        (Printf.sprintf "%s does not allow %s" r.Http.path r.Http.meth)
  in
  match r.Http.path with
  | "/diagnose" ->
    require "POST" (fun () ->
        if not (deps.ready ()) then recovering_reply ()
        else if deps.draining () then
          json_error 503 "draining: not accepting new diagnoses"
        else diagnose deps r)
  | "/metrics" ->
    require "GET" (fun () ->
        {
          status = 200;
          headers = [];
          content_type = "text/plain; version=0.0.4";
          body = Flames_obs.Export.prometheus_string ();
        })
  | "/debug/flight" ->
    require "GET" (fun () ->
        {
          status = 200;
          headers = [];
          content_type = "application/json";
          body = Recorder.dump ();
        })
  | path when is_session_path path ->
    require "POST" (fun () ->
        if not (deps.ready ()) then recovering_reply ()
        else session_routes deps r (session_segments path))
  | "/healthz" -> require "GET" (fun () -> text_reply 200 "ok\n")
  | "/readyz" -> require "GET" (fun () -> readyz deps)
  | "/version" -> require "GET" (fun () -> version_reply ())
  | path -> json_error 404 (Printf.sprintf "no such route %s" path)

let trace_header = "X-Flames-Trace-Id"

(* Every reply — including 429 sheds and handler 500s — carries the
   request's trace id; a valid client-supplied X-Flames-Trace-Id is
   kept, anything else gets a fresh one. *)
let handle deps (r : Http.request) =
  let trace_id =
    match Http.header r.Http.headers "x-flames-trace-id" with
    | Some id when Ids.valid id -> id
    | _ -> Ids.trace_id ()
  in
  let client = Http.header r.Http.headers "x-flames-client" in
  let route = route_name r.Http.path in
  let ctx = Context.make ~trace_id ?client ~route () in
  Context.with_context ctx (fun () ->
      let t0 = Unix.gettimeofday () in
      let reply = dispatch deps r in
      let dt = Unix.gettimeofday () -. t0 in
      Digest.observe_in Telemetry.route_seconds route dt;
      if Events.enabled () then begin
        Metrics.incr Telemetry.events_total;
        Events.emit ~ctx ~name:"http.request"
          [
            ("method", Events.Str r.Http.meth);
            ("path", Events.Str r.Http.path);
            ("status", Events.Int reply.status);
            ("elapsed_ms", Events.Num (dt *. 1e3));
            ("bytes_out", Events.Int (String.length reply.body));
          ]
      end;
      { reply with headers = (trace_header, trace_id) :: reply.headers })
