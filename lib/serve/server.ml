module Pool = Flames_engine.Pool
module Cache = Flames_engine.Cache
module Metrics = Flames_obs.Metrics
module Journal = Flames_store.Journal
module Record = Flames_store.Record

type config = {
  host : string;
  port : int;
  workers : int;
  max_inflight : int;
  quota_rate : float;
  quota_burst : float;
  max_body : int;
  default_wall : float;
  max_wall : float;
  backlog : int;
  session_cap : int;
  session_ttl : float;
  journal_dir : string option;
  journal_fsync : Journal.fsync;
  journal_segment_bytes : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8089;
    workers = 2;
    max_inflight = 16;
    quota_rate = 0.;
    quota_burst = 10.;
    max_body = 1024 * 1024;
    default_wall = 2.;
    max_wall = 10.;
    backlog = 64;
    session_cap = 64;
    session_ttl = 600.;
    journal_dir = None;
    journal_fsync = Journal.Interval 0.05;
    journal_segment_bytes = 1 lsl 20;
  }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  pool : Pool.t;
  deps : Router.deps;
  ready_flag : bool Atomic.t;  (* startup recovery finished *)
  stop_flag : bool Atomic.t;
  active : int Atomic.t;  (* open connections *)
  mutable accept_thread : Thread.t option;
  mutable maintenance_thread : Thread.t option;  (* segment rotation *)
  lifecycle : Mutex.t;  (* serialises stop against itself *)
  mutable stopped : bool;
}

let port t = t.bound_port
let draining t = Atomic.get t.stop_flag

(* One connection: parse requests until the peer closes, the protocol
   breaks, or the server drains.  Handler exceptions cannot reach here
   (Router.handle is total); protocol errors answer 400/413 and close,
   mirroring the CLI's one-line exit-2 discipline. *)
let handle_connection server fd =
  let conn = Http.conn fd in
  let respond (r : Http.request) (reply : Router.reply) ~keep =
    let conn_header = if keep then "keep-alive" else "close" in
    Http.write_response fd
      ~headers:(("Connection", conn_header) :: reply.Router.headers)
      ~content_type:reply.Router.content_type ~status:reply.Router.status
      reply.Router.body;
    Metrics.incr
      (if reply.Router.status < 300 then Telemetry.responses_2xx_total
       else if reply.Router.status < 500 then Telemetry.responses_4xx_total
       else Telemetry.responses_5xx_total);
    ignore r
  in
  let rec loop () =
    if Atomic.get server.stop_flag then ()
    else
      match Http.read_request ~max_body:server.config.max_body conn with
      | Error Http.Eof -> ()
      | Error (Http.Malformed m) ->
        let reply = Router.json_error 400 ("malformed request: " ^ m) in
        Http.write_response fd
          ~headers:[ ("Connection", "close") ]
          ~content_type:reply.Router.content_type ~status:reply.Router.status
          reply.Router.body;
        Metrics.incr Telemetry.responses_4xx_total
      | Error (Http.Too_large n) ->
        let reply =
          Router.json_error 413
            (Printf.sprintf "body of %d bytes exceeds the %d byte limit" n
               server.config.max_body)
        in
        Http.write_response fd
          ~headers:[ ("Connection", "close") ]
          ~content_type:reply.Router.content_type ~status:reply.Router.status
          reply.Router.body;
        Metrics.incr Telemetry.responses_4xx_total
      | Ok request ->
        Metrics.incr Telemetry.requests_total;
        let keep =
          Http.keep_alive request && not (Atomic.get server.stop_flag)
        in
        respond request (Router.handle server.deps request) ~keep;
        if keep then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr server.active;
      Metrics.gauge_add Telemetry.active_connections (-1.))
    (fun () -> try loop () with Unix.Unix_error _ -> ())

(* Accept loop on its own systhread.  select with a short timeout polls
   the stop flag so a drain is noticed without a connection arriving;
   accept failures while draining are the closed socket, anything else
   is transient (EMFILE under load) and worth surviving. *)
let accept_loop server =
  let fd = server.listen_fd in
  let rec loop () =
    if Atomic.get server.stop_flag then ()
    else begin
      (match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> begin
        match Unix.accept ~cloexec:true fd with
        | client, _addr ->
          Metrics.incr Telemetry.connections_total;
          Atomic.incr server.active;
          Metrics.gauge_add Telemetry.active_connections 1.;
          ignore (Thread.create (handle_connection server) client)
        | exception Unix.Unix_error _ -> ()
      end
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let snapshot_record sid (live : Router.live) =
  let module S = Flames_session.Session in
  let s = live.Router.session in
  Record.Snapshot
    {
      sid;
      source = live.Router.source;
      trusted = live.Router.trusted;
      next_id = S.next_id s;
      steps = S.steps s;
      measurements =
        List.map
          (fun (m : S.measurement) -> (m.S.id, m.S.quantity, m.S.interval))
          (S.measurements s);
    }

(* Compaction without a lost-update window: appends are first swapped
   to a fresh segment, and only then is each session's snapshot record
   captured *and appended* under that session's own entry lock.  Per
   session the entry lock totally orders journaled mutations against
   the snapshot record: a step journaled before the capture is inside
   the snapshot (even if its record sits in a segment the commit
   deletes), one journaled after it lands behind the snapshot record in
   a surviving segment and replays on top.  Closed-mid-rotation
   sessions are skipped by [map_sessions]; their stray [Close] record
   either dies with the old segments or replays as a no-op drop. *)
let rotate_sessions sessions journal =
  let rot = Journal.begin_rotation journal in
  let written =
    Admission.Sessions.map_sessions sessions (fun sid live ->
        Journal.append journal (snapshot_record sid live))
  in
  Metrics.incr
    ~by:(List.length written)
    Flames_store.Telemetry.snapshot_records_total;
  Journal.commit_rotation journal rot

(* Rotation runs on a dedicated maintenance thread, never inside a
   request's append: building the snapshot takes every session entry
   lock in turn, and a request thread already holds its own entry lock
   while appending — rotating there would invert the
   [entry -> journal] lock order and deadlock.  The same tick flushes
   the interval-fsync discipline's idle tail: append only syncs when a
   later append sees the interval elapsed, so after a burst the last
   unsynced bytes would otherwise wait for the next request. *)
let maintenance_loop server journal =
  let rec loop () =
    if Atomic.get server.stop_flag then ()
    else begin
      (try
         if Journal.due_for_rotation journal then
           rotate_sessions server.deps.Router.sessions journal
       with _ -> ());
      (try Journal.sync_if_due journal with _ -> ());
      Thread.delay 0.25;
      loop ()
    end
  in
  loop ()

(* Startup recovery: replay existing segments into sessions, re-register
   them under their original ids, then compact everything into a fresh
   segment — appends never follow a torn tail, and the old (possibly
   damaged) segments are gone once the snapshot is durable. *)
let recover_into server dir =
  let deps = server.deps in
  let recovered =
    Journal.recover
      ~schedule_of:(fun config netlist ->
        Some (Cache.compile deps.Router.cache ~config netlist))
      dir
  in
  List.iter
    (fun (e : Journal.entry) ->
      let live =
        {
          Router.session = e.Journal.session;
          source = e.Journal.source;
          trusted = e.Journal.trusted;
        }
      in
      match
        Admission.Sessions.restore deps.Router.sessions ~id:e.Journal.sid live
      with
      | Ok () -> Metrics.incr Telemetry.sessions_restored_total
      | Error (`Capacity | `Duplicate) ->
        (* cap shrank across the restart, or a damaged journal produced
           a duplicate id: drop the extra session rather than refuse to
           start *)
        Metrics.incr Telemetry.sessions_shed_total)
    recovered.Journal.entries;
  let journal =
    Journal.open_ ~fsync:server.config.journal_fsync
      ~segment_bytes:server.config.journal_segment_bytes dir
  in
  if recovered.Journal.segments > 0 then
    rotate_sessions deps.Router.sessions journal;
  journal

let start ?(config = default_config) () =
  (* A peer closing mid-write must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let pool = Pool.create ~workers:(max 1 config.workers) () in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     let addr =
       Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
     in
     Unix.bind listen_fd addr;
     Unix.listen listen_fd config.backlog
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Pool.shutdown pool;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let stop_flag = Atomic.make false in
  let ready_flag = Atomic.make (config.journal_dir = None) in
  Metrics.gauge_set Telemetry.ready (if Atomic.get ready_flag then 1. else 0.);
  let admission =
    Admission.create ~max_inflight:config.max_inflight
      ~quota_rate:config.quota_rate ~quota_burst:config.quota_burst ()
  in
  let sessions =
    Admission.Sessions.create ~cap:config.session_cap ~ttl:config.session_ttl
      ()
  in
  let deps =
    {
      Router.pool;
      cache = Cache.create ();
      admission;
      sessions;
      store = ref None;
      ready = (fun () -> Atomic.get ready_flag);
      draining = (fun () -> Atomic.get stop_flag);
      default_wall = config.default_wall;
      max_wall = config.max_wall;
    }
  in
  let server =
    {
      config;
      listen_fd;
      bound_port;
      pool;
      deps;
      ready_flag;
      stop_flag;
      active = Atomic.make 0;
      accept_thread = None;
      maintenance_thread = None;
      lifecycle = Mutex.create ();
      stopped = false;
    }
  in
  (* The listener goes up first so orchestrators can see the port, then
     recovery replays under the not-ready gate: any request racing the
     replay is answered 503 + Retry-After by the router. *)
  server.accept_thread <- Some (Thread.create accept_loop server);
  (match config.journal_dir with
  | None -> ()
  | Some dir ->
    (match recover_into server dir with
    | journal ->
      deps.Router.store := Some journal;
      server.maintenance_thread <-
        Some (Thread.create (fun () -> maintenance_loop server journal) ())
    | exception e ->
      Atomic.set stop_flag true;
      Option.iter Thread.join server.accept_thread;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Pool.shutdown pool;
      raise e);
    Atomic.set ready_flag true;
    Metrics.gauge_set Telemetry.ready 1.);
  server

let stop t =
  Mutex.lock t.lifecycle;
  let first = not t.stopped in
  t.stopped <- true;
  Mutex.unlock t.lifecycle;
  if first then begin
    Atomic.set t.stop_flag true;
    Metrics.gauge_set Telemetry.ready 0.;
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Keep-alive loops notice the flag after at most one request; block
       until the last connection thread has closed its socket. *)
    while Atomic.get t.active > 0 do
      Thread.delay 0.01
    done;
    Option.iter Thread.join t.maintenance_thread;
    (* Drain snapshot: with every request finished, compact the live
       sessions into a fresh durable segment and close the journal — a
       SIGTERM deploy restarts from one clean snapshot, no replay of the
       step-by-step history needed. *)
    (match !(t.deps.Router.store) with
    | None -> ()
    | Some journal ->
      (try rotate_sessions t.deps.Router.sessions journal with _ -> ());
      (try Journal.close journal with _ -> ());
      t.deps.Router.store := None);
    Pool.shutdown t.pool
  end

let run ?(config = default_config) () =
  let t = start ~config () in
  let interrupted = Atomic.make false in
  let on_signal _ = Atomic.set interrupted true in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s (Sys.Signal_handle on_signal)))
      [ Sys.sigterm; Sys.sigint ]
  in
  Printf.printf "flames_serve %s listening on %s:%d (%d workers)\n%!"
    Version.current config.host (port t) (max 1 config.workers);
  while not (Atomic.get interrupted) do
    Thread.delay 0.1
  done;
  prerr_endline "flames_serve: draining";
  stop t;
  List.iter (fun (s, behaviour) -> Sys.set_signal s behaviour) previous
