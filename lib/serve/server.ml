module Pool = Flames_engine.Pool
module Cache = Flames_engine.Cache
module Metrics = Flames_obs.Metrics

type config = {
  host : string;
  port : int;
  workers : int;
  max_inflight : int;
  quota_rate : float;
  quota_burst : float;
  max_body : int;
  default_wall : float;
  max_wall : float;
  backlog : int;
  session_cap : int;
  session_ttl : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8089;
    workers = 2;
    max_inflight = 16;
    quota_rate = 0.;
    quota_burst = 10.;
    max_body = 1024 * 1024;
    default_wall = 2.;
    max_wall = 10.;
    backlog = 64;
    session_cap = 64;
    session_ttl = 600.;
  }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  pool : Pool.t;
  deps : Router.deps;
  stop_flag : bool Atomic.t;
  active : int Atomic.t;  (* open connections *)
  mutable accept_thread : Thread.t option;
  lifecycle : Mutex.t;  (* serialises stop against itself *)
  mutable stopped : bool;
}

let port t = t.bound_port
let draining t = Atomic.get t.stop_flag

(* One connection: parse requests until the peer closes, the protocol
   breaks, or the server drains.  Handler exceptions cannot reach here
   (Router.handle is total); protocol errors answer 400/413 and close,
   mirroring the CLI's one-line exit-2 discipline. *)
let handle_connection server fd =
  let conn = Http.conn fd in
  let respond (r : Http.request) (reply : Router.reply) ~keep =
    let conn_header = if keep then "keep-alive" else "close" in
    Http.write_response fd
      ~headers:(("Connection", conn_header) :: reply.Router.headers)
      ~content_type:reply.Router.content_type ~status:reply.Router.status
      reply.Router.body;
    Metrics.incr
      (if reply.Router.status < 300 then Telemetry.responses_2xx_total
       else if reply.Router.status < 500 then Telemetry.responses_4xx_total
       else Telemetry.responses_5xx_total);
    ignore r
  in
  let rec loop () =
    if Atomic.get server.stop_flag then ()
    else
      match Http.read_request ~max_body:server.config.max_body conn with
      | Error Http.Eof -> ()
      | Error (Http.Malformed m) ->
        let reply = Router.json_error 400 ("malformed request: " ^ m) in
        Http.write_response fd
          ~headers:[ ("Connection", "close") ]
          ~content_type:reply.Router.content_type ~status:reply.Router.status
          reply.Router.body;
        Metrics.incr Telemetry.responses_4xx_total
      | Error (Http.Too_large n) ->
        let reply =
          Router.json_error 413
            (Printf.sprintf "body of %d bytes exceeds the %d byte limit" n
               server.config.max_body)
        in
        Http.write_response fd
          ~headers:[ ("Connection", "close") ]
          ~content_type:reply.Router.content_type ~status:reply.Router.status
          reply.Router.body;
        Metrics.incr Telemetry.responses_4xx_total
      | Ok request ->
        Metrics.incr Telemetry.requests_total;
        let keep =
          Http.keep_alive request && not (Atomic.get server.stop_flag)
        in
        respond request (Router.handle server.deps request) ~keep;
        if keep then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr server.active;
      Metrics.gauge_add Telemetry.active_connections (-1.))
    (fun () -> try loop () with Unix.Unix_error _ -> ())

(* Accept loop on its own systhread.  select with a short timeout polls
   the stop flag so a drain is noticed without a connection arriving;
   accept failures while draining are the closed socket, anything else
   is transient (EMFILE under load) and worth surviving. *)
let accept_loop server =
  let fd = server.listen_fd in
  let rec loop () =
    if Atomic.get server.stop_flag then ()
    else begin
      (match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> begin
        match Unix.accept ~cloexec:true fd with
        | client, _addr ->
          Metrics.incr Telemetry.connections_total;
          Atomic.incr server.active;
          Metrics.gauge_add Telemetry.active_connections 1.;
          ignore (Thread.create (handle_connection server) client)
        | exception Unix.Unix_error _ -> ()
      end
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start ?(config = default_config) () =
  (* A peer closing mid-write must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let pool = Pool.create ~workers:(max 1 config.workers) () in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     let addr =
       Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
     in
     Unix.bind listen_fd addr;
     Unix.listen listen_fd config.backlog
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Pool.shutdown pool;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let stop_flag = Atomic.make false in
  let admission =
    Admission.create ~max_inflight:config.max_inflight
      ~quota_rate:config.quota_rate ~quota_burst:config.quota_burst ()
  in
  let sessions =
    Admission.Sessions.create ~cap:config.session_cap ~ttl:config.session_ttl
      ()
  in
  let deps =
    {
      Router.pool;
      cache = Cache.create ();
      admission;
      sessions;
      draining = (fun () -> Atomic.get stop_flag);
      default_wall = config.default_wall;
      max_wall = config.max_wall;
    }
  in
  let server =
    {
      config;
      listen_fd;
      bound_port;
      pool;
      deps;
      stop_flag;
      active = Atomic.make 0;
      accept_thread = None;
      lifecycle = Mutex.create ();
      stopped = false;
    }
  in
  server.accept_thread <- Some (Thread.create accept_loop server);
  server

let stop t =
  Mutex.lock t.lifecycle;
  let first = not t.stopped in
  t.stopped <- true;
  Mutex.unlock t.lifecycle;
  if first then begin
    Atomic.set t.stop_flag true;
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Keep-alive loops notice the flag after at most one request; block
       until the last connection thread has closed its socket. *)
    while Atomic.get t.active > 0 do
      Thread.delay 0.01
    done;
    Pool.shutdown t.pool
  end

let run ?(config = default_config) () =
  let t = start ~config () in
  let interrupted = Atomic.make false in
  let on_signal _ = Atomic.set interrupted true in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s (Sys.Signal_handle on_signal)))
      [ Sys.sigterm; Sys.sigint ]
  in
  Printf.printf "flames_serve %s listening on %s:%d (%d workers)\n%!"
    Version.current config.host (port t) (max 1 config.workers);
  while not (Atomic.get interrupted) do
    Thread.delay 0.1
  done;
  prerr_endline "flames_serve: draining";
  stop t;
  List.iter (fun (s, behaviour) -> Sys.set_signal s behaviour) previous
