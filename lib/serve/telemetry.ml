(* Well-known service metrics, registered in the process-global
   Flames_obs.Metrics registry so GET /metrics exports them next to the
   engine counters (same idempotent-by-name discipline as
   Flames_engine.Telemetry). *)

module Metrics = Flames_obs.Metrics

let requests_total =
  Metrics.counter "flames_serve_requests_total"
    ~help:"HTTP requests parsed off a connection"

let responses_2xx_total =
  Metrics.counter "flames_serve_responses_2xx_total"
    ~help:"Responses sent with a 2xx status"

let responses_4xx_total =
  Metrics.counter "flames_serve_responses_4xx_total"
    ~help:"Responses sent with a 4xx status (bad input, 404, shed)"

let responses_5xx_total =
  Metrics.counter "flames_serve_responses_5xx_total"
    ~help:"Responses sent with a 5xx status (run failures, drain)"

let shed_total =
  Metrics.counter "flames_serve_shed_total"
    ~help:"Diagnosis requests shed with 429: admission queue full"

let throttled_total =
  Metrics.counter "flames_serve_throttled_total"
    ~help:"Diagnosis requests shed with 429: per-client quota exhausted"

let connections_total =
  Metrics.counter "flames_serve_connections_total"
    ~help:"TCP connections accepted"

let active_connections =
  Metrics.gauge "flames_serve_active_connections"
    ~help:"Connections currently open"

let inflight_jobs =
  Metrics.gauge "flames_serve_inflight_jobs"
    ~help:"Admitted diagnosis requests not yet answered"

let sessions_created_total =
  Metrics.counter "flames_serve_sessions_created_total"
    ~help:"Troubleshooting sessions opened via POST /session/create"

let sessions_shed_total =
  Metrics.counter "flames_serve_sessions_shed_total"
    ~help:"Session creations refused with 429: registry at capacity"

let open_sessions =
  Metrics.gauge "flames_serve_open_sessions"
    ~help:"Troubleshooting sessions currently held (TTL not expired)"

let sessions_expired_total =
  Metrics.counter "flames_serve_sessions_expired_total"
    ~help:"Troubleshooting sessions dropped after their idle TTL expired"

let session_capacity =
  Metrics.gauge "flames_serve_session_capacity"
    ~help:
      "Configured cap of the session registry; occupancy = \
       flames_serve_open_sessions / flames_serve_session_capacity"

let events_total =
  Metrics.counter "flames_serve_events_total"
    ~help:"Wide events emitted for HTTP requests"

let ready =
  Metrics.gauge "flames_serve_ready"
    ~help:
      "1 once startup recovery finished and /readyz can answer 200; 0 \
       while the listener is up but the journal is still replaying"

let sessions_restored_total =
  Metrics.counter "flames_serve_sessions_restored_total"
    ~help:"Sessions re-registered from the journal at startup"

(* Per-route latency digests: p50/p95/p99 are computed server-side from
   fixed log-spaced buckets and exported as a summary; observations
   above the SLO threshold burn the per-route
   flames_serve_route_seconds_slo_breaches_total counter. *)
let route_slo_seconds = 0.25

let route_seconds =
  Flames_obs.Digest.family ~slo:route_slo_seconds
    ~help:"Request latency per route (server-side quantile digest)"
    "flames_serve_route_seconds"

(* Sub-millisecond to 10 s: a divider diagnosis is ~1 ms, a saturated
   queue pushes the tail into seconds. *)
let request_seconds =
  Metrics.histogram "flames_serve_request_seconds"
    ~buckets:[ 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.; 3.; 10. ]
    ~help:"Wall-clock latency of POST /diagnose, admission to response"
