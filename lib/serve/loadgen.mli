(** Synthetic load generation against a running diagnosis service.

    [N] concurrent clients per level, each on its own keep-alive
    connection, sending a seeded mix of diagnosis requests (built-in
    circuits with catalog faults, plus {!Flames_check.Gen} ladder
    scenarios shipped as netlist text with client-computed
    observations) for a fixed duration; the sweep repeats over
    increasing client counts to find the saturation knee.  Every latency
    sample is kept, so the reported percentiles are exact, unlike the
    server's bucketed histogram.

    Determinism: the request stream of client [c] at level [l] is a pure
    function of [(seed, l, c)] via {!Flames_check.Rng.case_seed} — a
    rerun with the same seed issues the same requests in the same
    per-client order (scheduling decides only how many complete). *)

type level_stats = {
  clients : int;
  requests : int;  (** responses received, any status *)
  ok : int;  (** 200 *)
  shed : int;  (** 429 — admission or quota, expected past saturation *)
  errors : int;  (** other non-200 statuses *)
  protocol_errors : int;  (** connect/read/write failures, bad HTTP *)
  degraded : int;  (** 200 with [degraded: true] *)
  duration : float;  (** measured wall clock of the level, seconds *)
  throughput_rps : float;  (** [requests / duration] *)
  p50_ms : float;  (** percentiles over 200-response latencies *)
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
}

type report = {
  host : string;
  port : int;
  seed : int;
  level_duration : float;  (** requested seconds per level *)
  levels : level_stats list;
}

val run_level :
  host:string ->
  port:int ->
  seed:int ->
  level_index:int ->
  clients:int ->
  duration:float ->
  level_stats
(** Drive one client count for [duration] seconds and gather stats. *)

val sweep :
  ?progress:(level_stats -> unit) ->
  host:string ->
  port:int ->
  seed:int ->
  duration:float ->
  int list ->
  report
(** Run {!run_level} over each client count in order (a short pause
    between levels lets the server's queues empty). *)

val to_json : report -> Json.t
(** The [BENCH_serve.json] document: same series/parameters/rows shape
    as the engine benchmark emitter. *)

val write_json : string -> report -> unit
