(** Request-scoped context: the identity (trace id, session id, client,
    route) and accumulated annotations of the request the current
    domain+thread is working for.

    Installed with {!with_context} at the service edge, captured at
    {!Flames_engine.Pool.submit} and re-installed inside the worker
    domain, so engine-side spans, timings and log lines attach to the
    right request even across domains.  Keyed by (domain id, thread id)
    — not [Domain.DLS] — because the server runs concurrent connection
    handlers as systhreads of one domain.

    When no context is installed anywhere, {!current}, {!annotate} and
    {!add_timing} cost one atomic load — cheap enough for hot paths. *)

type value = Str of string | Num of float | Int of int | Bool of bool
(** Field values of a wide event (see {!Events}). *)

type t

val make :
  ?session_id:string ->
  ?client:string ->
  ?route:string ->
  trace_id:string ->
  unit ->
  t

val trace_id : t -> string
val session_id : t -> string option
val client : t -> string option
val route : t -> string option

val with_context : t -> (unit -> 'a) -> 'a
(** Install [t] as the current context for the calling domain+thread,
    run the function, restore the previous binding (contexts nest). *)

val with_context_opt : t option -> (unit -> 'a) -> 'a
(** [with_context] when [Some], plain call when [None] — the shape the
    pool worker uses to restore a captured context. *)

val current : unit -> t option
(** The context of the calling domain+thread, if one is installed. *)

val set_session : string -> unit
(** Join a session id to the current context (no-op without one). *)

val annotate : string -> value -> unit
(** Attach a field to the current context's wide event (no-op without
    a context).  The latest annotation of a key wins. *)

val annotate_ctx : t -> string -> value -> unit
(** [annotate] on an explicit context. *)

val add_timing : string -> float -> unit
(** Accumulate [dt] seconds under a stage name on the current context;
    repeated stages sum.  Fed automatically by
    {!Trace.with_span}[ ~record]. *)

val fields : t -> (string * value) list
(** Accumulated annotations, latest-wins deduplicated. *)

val timings : t -> (string * float) list
(** Accumulated per-stage seconds, sorted by stage name. *)
