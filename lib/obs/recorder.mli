(** Flight recorder: dump the recent past — the {!Events} ring plus the
    tail of the {!Trace} buffers — as one JSON object
    ([{"events": [...], "spans": [...]}]).

    Always on (it reads storage the other modules already keep), served
    at [GET /debug/flight] by the diagnosis service, and written on an
    uncaught exception once {!arm_crash_dump} is armed. *)

val dump : unit -> string
(** The JSON dump: wide events oldest-first, then the most recent
    trace spans (bounded) merged across domains. *)

val write : string -> unit
(** {!dump} into a file. *)

val arm_crash_dump : string -> unit
(** Install an uncaught-exception handler that writes {!dump} to the
    path best-effort, then reports the exception and backtrace to
    stderr like the default handler. *)
