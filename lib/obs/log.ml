(* Level-filtered, timestamped logging to stderr (or any formatter).

   The level lives in an atomic so workers can log without a lock on
   the filter check; emission itself takes a mutex so lines from
   concurrent domains never interleave mid-line. *)

type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
let tag = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let threshold = Atomic.make (severity Warn)

let set_level l = Atomic.set threshold (severity l)

let level () =
  match Atomic.get threshold with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

let out = ref Format.err_formatter
let set_formatter ppf = out := ppf
let mutex = Mutex.create ()

let log lvl fmt =
  if severity lvl <= Atomic.get threshold then begin
    Mutex.lock mutex;
    let ppf = !out in
    let t = Unix.gettimeofday () in
    let tm = Unix.localtime t in
    let ms = int_of_float (Float.rem t 1. *. 1000.) in
    Format.fprintf ppf "%02d:%02d:%02d.%03d %-5s " tm.Unix.tm_hour
      tm.Unix.tm_min tm.Unix.tm_sec ms (tag lvl);
    (* correlate stderr lines with wide events: prefix the trace id of
       the request this domain+thread is working for, when there is one *)
    (match Context.current () with
    | Some c -> Format.fprintf ppf "[trace=%s] " (Context.trace_id c)
    | None -> ());
    Format.kfprintf
      (fun ppf ->
        Format.fprintf ppf "@.";
        Mutex.unlock mutex)
      ppf fmt
  end
  else Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let err fmt = log Error fmt
let warn fmt = log Warn fmt
let info fmt = log Info fmt
let debug fmt = log Debug fmt
