(* Streaming quantile digests on fixed log-spaced buckets.

   A digest is 64 atomic bucket counters spanning 10 µs .. 100 s with
   nine buckets per decade (≈ 29 % resolution — plenty for p50/p95/p99
   gauges), plus an exact count/sum and an optional SLO threshold whose
   breaches are counted.  Observation is lock-free: one index
   computation and three atomic bumps, so per-route digests sit on the
   service's request path.  Quantiles are read by a cumulative scan at
   export time and report the bucket's upper bound (conservative).

   The registry metrics have no label dimension, so per-route series
   live here: a [family] maps a low-cardinality label (the route) to a
   digest and is rendered by {!Export.prometheus} as a Prometheus
   summary with [route]/[quantile] labels. *)

let lo = 1e-5 (* seconds: lower edge of bucket 1 *)
let per_decade = 9.
let nbuckets = 64 (* bucket 0 = underflow, bucket 63 = overflow *)

let bucket_index v =
  if v <= lo then 0
  else
    let i = 1 + int_of_float (Float.log10 (v /. lo) *. per_decade) in
    if i >= nbuckets then nbuckets - 1 else i

let bucket_bound i =
  if i >= nbuckets - 1 then infinity
  else lo *. Float.pow 10. (float_of_int i /. per_decade)

type t = {
  counts : int Atomic.t array;
  count : int Atomic.t;
  sum : float Atomic.t;
  slo : float option;  (* seconds; observations above it are breaches *)
  breaches : int Atomic.t;
}

let create ?slo () =
  {
    counts = Array.init nbuckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0.;
    slo;
    breaches = Atomic.make 0;
  }

let atomic_add_float a dt =
  let rec go () =
    let old = Atomic.get a in
    if not (Atomic.compare_and_set a old (old +. dt)) then go ()
  in
  go ()

let observe t v =
  Atomic.incr t.counts.(bucket_index v);
  Atomic.incr t.count;
  atomic_add_float t.sum v;
  match t.slo with
  | Some threshold when v > threshold -> Atomic.incr t.breaches
  | _ -> ()

let count t = Atomic.get t.count
let sum t = Atomic.get t.sum
let slo t = t.slo
let breaches t = Atomic.get t.breaches

let quantile t q =
  let total = count t in
  if total = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target =
      Int.max 1 (int_of_float (Float.ceil (q *. float_of_int total)))
    in
    let rec scan i acc =
      if i >= nbuckets then bucket_bound (nbuckets - 1)
      else
        let acc = acc + Atomic.get t.counts.(i) in
        if acc >= target then bucket_bound i else scan (i + 1) acc
    in
    scan 0 0
  end

(* --- labelled families --- *)

type family = {
  f_name : string;
  f_help : string;
  f_slo : float option;
  f_mutex : Mutex.t;
  by_label : (string, t) Hashtbl.t;
}

let families : family list ref = ref []
let families_mutex = Mutex.create ()

let family ?slo ~help name =
  Mutex.lock families_mutex;
  let f =
    match List.find_opt (fun f -> f.f_name = name) !families with
    | Some f -> f
    | None ->
      let f =
        {
          f_name = name;
          f_help = help;
          f_slo = slo;
          f_mutex = Mutex.create ();
          by_label = Hashtbl.create 8;
        }
      in
      families := f :: !families;
      f
  in
  Mutex.unlock families_mutex;
  f

let digest f label =
  Mutex.lock f.f_mutex;
  let d =
    match Hashtbl.find_opt f.by_label label with
    | Some d -> d
    | None ->
      let d = create ?slo:f.f_slo () in
      Hashtbl.add f.by_label label d;
      d
  in
  Mutex.unlock f.f_mutex;
  d

let observe_in f label v = observe (digest f label) v

type sample = {
  name : string;
  help : string;
  has_slo : bool;
  labelled : (string * t) list;  (* label-sorted *)
}

let snapshot () =
  Mutex.lock families_mutex;
  let fams = !families in
  Mutex.unlock families_mutex;
  fams
  |> List.map (fun f ->
         Mutex.lock f.f_mutex;
         let labelled =
           Hashtbl.fold (fun l d acc -> (l, d) :: acc) f.by_label []
         in
         Mutex.unlock f.f_mutex;
         {
           name = f.f_name;
           help = f.f_help;
           has_slo = f.f_slo <> None;
           labelled =
             List.sort (fun (a, _) (b, _) -> String.compare a b) labelled;
         })
  |> List.sort (fun a b -> String.compare a.name b.name)

let reset () =
  Mutex.lock families_mutex;
  let fams = !families in
  Mutex.unlock families_mutex;
  List.iter
    (fun f ->
      Mutex.lock f.f_mutex;
      Hashtbl.reset f.by_label;
      Mutex.unlock f.f_mutex)
    fams
