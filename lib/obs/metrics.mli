(** Process-global metrics registry: named counters, gauges and
    fixed-bucket histograms.

    Writes are lock-free and domain-safe: counters and histograms keep a
    small array of atomic shards indexed by the writing domain's id and
    merge them on read, so concurrent {!Flames_engine.Pool} workers do
    not contend.  Creation is idempotent — asking twice for the same
    name returns the same metric — and takes the only lock in the
    module, so metrics are typically created once at module
    initialisation and used forever.

    Metrics are always on: an increment costs one atomic fetch-and-add
    on a private shard.  Span-level tracing, which costs more, lives in
    {!Trace} behind an enable flag. *)

(** {1 Counters} *)

type counter

val counter : ?help:string -> string -> counter
(** Find-or-create the monotonically increasing counter [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

(** {1 Gauges} *)

type gauge

val gauge : ?help:string -> string -> gauge
val gauge_set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** {1 Histograms} *)

type histogram

val default_buckets : float list
(** Log-spaced latency bounds in seconds: [1e-6 … 10.]. *)

val histogram : ?help:string -> ?buckets:float list -> string -> histogram
(** Find-or-create a histogram with the given inclusive upper-bound
    buckets (Prometheus [le] semantics); an overflow (+infinity) bucket
    is implicit.  [buckets] of a pre-existing histogram are ignored.
    @raise Invalid_argument on non-increasing [buckets] or a kind
    mismatch. *)

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration in seconds (also
    on exception). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) list
(** Per-bucket (non-cumulative) counts as [(upper_bound, count)]; the
    overflow bucket's bound is [infinity]. *)

val histogram_name : histogram -> string

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile ([q] clamped to
    [0..1]) by linear interpolation inside the bucket that holds the
    q-th observation, Prometheus [histogram_quantile]-style.  The first
    bucket interpolates from 0; observations in the overflow bucket
    answer the last finite bound.  [0.] on an empty histogram.  An
    estimate — exact quantiles need the raw samples (the load generator
    keeps those; the server-side latency read-out uses this). *)

(** {1 Registry snapshot} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (float * int) list; count : int; sum : float }

type sample = { name : string; help : string; value : value }

val snapshot : unit -> sample list
(** Every registered metric, merged across shards, sorted by name.
    Concurrent writers may be mid-update; each individual cell read is
    atomic but the snapshot as a whole is not (a histogram's [sum] can
    be momentarily ahead of its [count]). *)

val reset : unit -> unit
(** Zero every registered metric (the metrics stay registered).  Meant
    for tests; resetting while another domain writes loses no structure
    but the lost increments are unspecified. *)
