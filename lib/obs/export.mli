(** Exporters for {!Trace} recordings and the {!Metrics} registry. *)

val chrome_trace : Format.formatter -> unit
(** Emit every recorded trace event as Chrome [trace_event] JSON
    ([{"traceEvents": [...]}]) — one track per domain, named via
    [thread_name] metadata events, timestamps in microseconds relative
    to the earliest event.  Load the output in Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or
    [chrome://tracing]. *)

val write_chrome_trace : string -> unit
(** {!chrome_trace} into a file. *)

val prometheus : Format.formatter -> unit
(** Prometheus text exposition (format 0.0.4) of the whole registry:
    [# HELP]/[# TYPE] comments, cumulative [_bucket{le="..."}] series
    plus [_sum]/[_count] for histograms (the [+Inf] bucket and
    [_count] are the same cumulative value by construction), followed
    by the registered {!Digest} families as summaries with
    [route]/[quantile] labels and [_slo_breaches_total] counters.
    HELP text and label values are escaped per the format. *)

val help_escape : string -> string
(** Escape a HELP string: backslashes and line feeds. *)

val label_escape : string -> string
(** Escape a label value: backslashes, double quotes and line feeds. *)

val prometheus_string : unit -> string
(** {!prometheus} as a string — the body of the diagnosis service's
    [GET /metrics]. *)

val summary : Format.formatter -> unit
(** Human-readable one-line-per-metric dump plus a trace-buffer
    status line. *)

val json_escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)
