(** Structured span tracer with per-domain lock-free buffers.

    Call {!with_span} around each pipeline stage; when tracing is
    enabled ({!start}) the span records a begin/end event pair carrying
    wall-clock timestamps into the calling domain's private buffer, so
    parallel {!Flames_engine.Pool} workers trace without synchronising.
    When disabled (the default) a span is one atomic load and a tail
    call — cheap enough to leave in hot paths such as
    {!Flames_sim.Mna.solve}.

    Export the recording with {!Export.chrome_trace} (Chrome
    [trace_event] JSON, one track per domain — open in Perfetto or
    [about:tracing]). *)

type phase = Begin | End | Instant

type event = {
  name : string;
  phase : phase;
  ts : float;  (** seconds, [Unix.gettimeofday] *)
  tid : int;  (** id of the emitting domain *)
  args : (string * string) list;
}

val enabled : unit -> bool
val start : unit -> unit
val stop : unit -> unit

val reset : unit -> unit
(** Drop every recorded event (buffers of finished domains included).
    Call at quiescence. *)

val with_span :
  ?args:(string * string) list ->
  ?record:Metrics.histogram ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f] inside a span.  The enabled flag is
    sampled once on entry, so the end event is emitted even if tracing
    stops mid-span, and a span raising an exception is still closed.
    [?record] additionally feeds the span's duration (seconds) to a
    histogram, whether or not tracing is enabled — use it to give a
    stage both a trace span and an always-on latency metric in one
    call. *)

val instant : ?args:(string * string) list -> string -> unit
(** Point event (Chrome phase [i]); dropped when tracing is disabled. *)

val tracks : unit -> (int * event list) list
(** Non-empty per-domain buffers, sorted by domain id; each track's
    events are in emission order (hence timestamp-monotone).  Read this
    at quiescence: concurrent emitters are not synchronised against. *)

val events : unit -> event list
(** All events merged across tracks, stably sorted by timestamp. *)

val event_count : unit -> int
