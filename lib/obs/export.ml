(* Exporters over the trace buffers and the metrics registry:
   Chrome trace_event JSON (Perfetto / about:tracing), Prometheus text
   exposition, and a human-readable summary.  JSON is emitted by hand —
   the observability layer stays dependency-free. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_args ppf args =
  Format.pp_print_string ppf "{";
  List.iteri
    (fun i (k, v) ->
      Format.fprintf ppf "%s\"%s\": \"%s\""
        (if i = 0 then "" else ", ")
        (json_escape k) (json_escape v))
    args;
  Format.pp_print_string ppf "}"

(* Timestamps are emitted in microseconds relative to the earliest
   event, which keeps them readable and well inside double precision. *)
let chrome_trace ppf =
  let tracks = Trace.tracks () in
  let t0 =
    List.fold_left
      (fun acc (_, events) ->
        List.fold_left (fun acc (e : Trace.event) -> Float.min acc e.ts) acc events)
      infinity tracks
  in
  let t0 = if t0 = infinity then 0. else t0 in
  Format.fprintf ppf "{@\n  \"displayTimeUnit\": \"ms\",@\n  \"traceEvents\": [";
  let first = ref true in
  let emit_sep () =
    if !first then first := false else Format.pp_print_string ppf ",";
    Format.fprintf ppf "@\n    "
  in
  List.iter
    (fun (tid, events) ->
      emit_sep ();
      Format.fprintf ppf
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \
         \"args\": {\"name\": \"domain %d\"}}"
        tid tid;
      List.iter
        (fun (e : Trace.event) ->
          emit_sep ();
          let ph, extra =
            match e.phase with
            | Trace.Begin -> ("B", "")
            | Trace.End -> ("E", "")
            | Trace.Instant -> ("i", ", \"s\": \"t\"")
          in
          Format.fprintf ppf
            "{\"name\": \"%s\", \"ph\": \"%s\", \"pid\": 1, \"tid\": %d, \
             \"ts\": %.3f%s"
            (json_escape e.name) ph e.tid
            ((e.ts -. t0) *. 1e6)
            extra;
          if e.args <> [] then Format.fprintf ppf ", \"args\": %a" pp_args e.args;
          Format.pp_print_string ppf "}")
        events)
    tracks;
  Format.fprintf ppf "@\n  ]@\n}@\n"

let write_chrome_trace path =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  chrome_trace ppf;
  Format.pp_print_flush ppf ();
  close_out oc

(* Prometheus text exposition, format version 0.0.4. *)
let pp_float ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%g" v

(* Format 0.0.4 escaping rules: HELP text escapes backslash and
   line-feed; label values additionally escape the double quote. *)
let escape_with quote s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quote -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let help_escape s = escape_with false s
let label_escape s = escape_with true s

let prometheus ppf =
  List.iter
    (fun (s : Metrics.sample) ->
      if s.Metrics.help <> "" then
        Format.fprintf ppf "# HELP %s %s@\n" s.Metrics.name
          (help_escape s.Metrics.help);
      match s.Metrics.value with
      | Metrics.Counter v ->
        Format.fprintf ppf "# TYPE %s counter@\n%s %d@\n" s.Metrics.name
          s.Metrics.name v
      | Metrics.Gauge v ->
        Format.fprintf ppf "# TYPE %s gauge@\n%s %a@\n" s.Metrics.name
          s.Metrics.name pp_float v
      | Metrics.Histogram { buckets; count = _; sum } ->
        Format.fprintf ppf "# TYPE %s histogram@\n" s.Metrics.name;
        let cumulative = ref 0 in
        List.iter
          (fun (bound, n) ->
            cumulative := !cumulative + n;
            if bound = infinity then
              Format.fprintf ppf "%s_bucket{le=\"+Inf\"} %d@\n" s.Metrics.name
                !cumulative
            else
              Format.fprintf ppf "%s_bucket{le=\"%g\"} %d@\n" s.Metrics.name
                bound !cumulative)
          buckets;
        (* _count is the +Inf cumulative by construction, so the 0.0.4
           invariant +Inf == _count holds even if a shard is bumped
           between reading the buckets and the standalone counter *)
        Format.fprintf ppf "%s_sum %g@\n%s_count %d@\n" s.Metrics.name sum
          s.Metrics.name !cumulative)
    (Metrics.snapshot ());
  (* per-route latency digests render as summaries (quantiles are
     computed server-side), plus an SLO burn counter series *)
  List.iter
    (fun (d : Digest.sample) ->
      if d.Digest.labelled <> [] then begin
        if d.Digest.help <> "" then
          Format.fprintf ppf "# HELP %s %s@\n" d.Digest.name
            (help_escape d.Digest.help);
        Format.fprintf ppf "# TYPE %s summary@\n" d.Digest.name;
        List.iter
          (fun (label, t) ->
            List.iter
              (fun q ->
                Format.fprintf ppf "%s{route=\"%s\",quantile=\"%g\"} %g@\n"
                  d.Digest.name (label_escape label) q (Digest.quantile t q))
              [ 0.5; 0.95; 0.99 ];
            Format.fprintf ppf "%s_sum{route=\"%s\"} %g@\n" d.Digest.name
              (label_escape label) (Digest.sum t);
            Format.fprintf ppf "%s_count{route=\"%s\"} %d@\n" d.Digest.name
              (label_escape label) (Digest.count t))
          d.Digest.labelled;
        if d.Digest.has_slo then begin
          Format.fprintf ppf "# HELP %s_slo_breaches_total %s@\n" d.Digest.name
            "Observations above the route's latency SLO.";
          Format.fprintf ppf "# TYPE %s_slo_breaches_total counter@\n"
            d.Digest.name;
          List.iter
            (fun (label, t) ->
              Format.fprintf ppf "%s_slo_breaches_total{route=\"%s\"} %d@\n"
                d.Digest.name (label_escape label) (Digest.breaches t))
            d.Digest.labelled
        end
      end)
    (Digest.snapshot ())

let summary ppf =
  let samples = Metrics.snapshot () in
  Format.fprintf ppf "@[<v>metrics (%d registered):@," (List.length samples);
  List.iter
    (fun (s : Metrics.sample) ->
      match s.Metrics.value with
      | Metrics.Counter v -> Format.fprintf ppf "  %-44s %d@," s.Metrics.name v
      | Metrics.Gauge v ->
        Format.fprintf ppf "  %-44s %a@," s.Metrics.name pp_float v
      | Metrics.Histogram { count; sum; _ } ->
        Format.fprintf ppf "  %-44s count %d, sum %.6f s%s@," s.Metrics.name
          count sum
          (if count = 0 then ""
           else Printf.sprintf ", mean %.2e s" (sum /. float_of_int count)))
    samples;
  let tracks = Trace.tracks () in
  Format.fprintf ppf "trace: %d event%s across %d track%s (%s)@]@."
    (Trace.event_count ())
    (if Trace.event_count () = 1 then "" else "s")
    (List.length tracks)
    (if List.length tracks = 1 then "" else "s")
    (if Trace.enabled () then "enabled" else "disabled")

let prometheus_string () = Format.asprintf "%t" prometheus
