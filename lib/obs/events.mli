(** Wide events: one structured record per request / session step /
    batch job, merging the active {!Context}'s identity, annotations
    and stage timings with the fields given at the emission site.

    Always recorded into a bounded in-memory ring (the flight
    recorder's event source; see {!Recorder}); optionally mirrored as
    JSON lines to a sink ([--wide-events FILE] on the CLI).  Emission
    takes the ring mutex — a per-request cost.  [set_enabled false]
    turns the whole path off (one atomic load per call site), which is
    what the obs-overhead benchmark's baseline uses. *)

type value = Context.value =
  | Str of string
  | Num of float
  | Int of int
  | Bool of bool

type t = {
  seq : int;  (** global emission order (atomic counter) *)
  ts : float;  (** [Unix.gettimeofday] at emission *)
  name : string;  (** e.g. ["http.request"], ["session.step"] *)
  trace_id : string option;
  session_id : string option;
  client : string option;
  route : string option;
  fields : (string * value) list;
}

val enabled : unit -> bool
val set_enabled : bool -> unit

val emit : ?ctx:Context.t -> name:string -> (string * value) list -> unit
(** Build and record an event.  Identity and accumulated
    fields/timings come from [?ctx] (default: {!Context.current});
    stage timings appear as [t_<stage>] fields in seconds.  No-op when
    disabled. *)

val recent : unit -> t list
(** Ring contents, oldest first. *)

val set_capacity : int -> unit
(** Resize the ring (drops its contents).  Default 256. *)

val capacity : unit -> int
val clear : unit -> unit

val to_json : t -> string
(** One-line JSON object: [{"seq", "ts", "event", "trace"?,
    "session"?, "client"?, "route"?, <fields>...}]. *)

val set_sink : (string -> unit) option -> unit
(** Install a line sink called once per event (under a mutex). *)

val file_sink : string -> unit -> unit
(** Open [path], install a line-per-event sink writing to it, and
    return the closer (restores a [None] sink). *)
