(** Minimal leveled logger: timestamped, level-tagged lines on stderr.

    The default level is {!Warn}; the CLI's [--quiet] maps to {!Error}
    and [-v]/[-vv] to {!Info}/{!Debug}.  Filtering is one atomic load;
    emission is serialised across domains so lines never interleave. *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level

val set_formatter : Format.formatter -> unit
(** Redirect output (default [Format.err_formatter]); used by tests. *)

val err : ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
val info : ('a, Format.formatter, unit, unit) format4 -> 'a
val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
