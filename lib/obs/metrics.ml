(* Process-global metrics registry.

   Counters and histograms are sharded: each metric holds a small fixed
   array of atomic cells and a writer picks the cell indexed by its
   domain id, so concurrent workers almost never contend on a cache
   line.  Reads merge the shards.  Everything is lock-free on the write
   path; only metric creation takes a mutex (and is idempotent, so
   module-initialisation order never matters). *)

let shard_count = 8

let shard_index () = (Domain.self () :> int) land (shard_count - 1)

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; cell : float Atomic.t }

(* [bounds] are inclusive upper bounds (Prometheus [le]); an implicit
   +infinity bucket follows.  [bucket_cells.(shard).(i)] counts the
   observations that landed in bucket [i] from that shard. *)
type histogram = {
  h_name : string;
  bounds : float array;
  bucket_cells : int Atomic.t array array;
  count_cells : int Atomic.t array;
  sum_cells : float Atomic.t array;
}

type metric = Counter_m of counter | Gauge_m of gauge | Histogram_m of histogram

let registry : (string, metric * string) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"

(* Idempotent registration: a second creation under the same name
   returns the first metric, so independent modules can share a metric
   by name.  Re-registering under a different kind is a programming
   error. *)
let register name help make match_kind =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (m, _) -> begin
        match match_kind m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name m))
      end
      | None ->
        let v, m = make () in
        Hashtbl.replace registry name (m, help);
        v)

let counter ?(help = "") name =
  register name help
    (fun () ->
      let c =
        { c_name = name; cells = Array.init shard_count (fun _ -> Atomic.make 0) }
      in
      (c, Counter_m c))
    (function Counter_m c -> Some c | Gauge_m _ | Histogram_m _ -> None)

let incr ?(by = 1) c =
  ignore (Atomic.fetch_and_add c.cells.(shard_index ()) by)

let counter_value c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let counter_name c = c.c_name

let gauge ?(help = "") name =
  register name help
    (fun () ->
      let g = { g_name = name; cell = Atomic.make 0. } in
      (g, Gauge_m g))
    (function Gauge_m g -> Some g | Counter_m _ | Histogram_m _ -> None)

let gauge_set g v = Atomic.set g.cell v

let rec atomic_add_float cell v =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. v)) then atomic_add_float cell v

let gauge_add g v = atomic_add_float g.cell v
let gauge_value g = Atomic.get g.cell
let gauge_name g = g.g_name

(* Log-spaced decades from 1 µs to 10 s: wide enough for both a single
   MNA solve and a whole batch, cheap to scan linearly. *)
let default_buckets = [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. ]

let histogram ?(help = "") ?(buckets = default_buckets) name =
  let bounds = Array.of_list buckets in
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg
          (Printf.sprintf "Metrics.histogram %S: buckets must be increasing"
             name))
    bounds;
  register name help
    (fun () ->
      let h =
        {
          h_name = name;
          bounds;
          bucket_cells =
            Array.init shard_count (fun _ ->
                Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0));
          count_cells = Array.init shard_count (fun _ -> Atomic.make 0);
          sum_cells = Array.init shard_count (fun _ -> Atomic.make 0.);
        }
      in
      (h, Histogram_m h))
    (function Histogram_m h -> Some h | Counter_m _ | Gauge_m _ -> None)

let bucket_of h v =
  let n = Array.length h.bounds in
  let rec find i = if i >= n then n else if v <= h.bounds.(i) then i else find (i + 1) in
  find 0

let observe h v =
  let s = shard_index () in
  ignore (Atomic.fetch_and_add h.bucket_cells.(s).(bucket_of h v) 1);
  ignore (Atomic.fetch_and_add h.count_cells.(s) 1);
  atomic_add_float h.sum_cells.(s) v

let time h f =
  let t0 = Unix.gettimeofday () in
  let finally () = observe h (Unix.gettimeofday () -. t0) in
  Fun.protect ~finally f

let histogram_count h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.count_cells

let histogram_sum h =
  Array.fold_left (fun acc c -> acc +. Atomic.get c) 0. h.sum_cells

(* Per-bucket (non-cumulative) counts; the +inf overflow bucket is the
   pair whose bound is [infinity]. *)
let histogram_buckets h =
  let n = Array.length h.bounds in
  List.init (n + 1) (fun i ->
      let bound = if i = n then infinity else h.bounds.(i) in
      let count =
        Array.fold_left
          (fun acc shard -> acc + Atomic.get shard.(i))
          0 h.bucket_cells
      in
      (bound, count))

let histogram_name h = h.h_name

(* Prometheus-style bucket interpolation: find the bucket holding the
   q-th observation and interpolate linearly inside it (lower edge of
   the first bucket is 0; the +inf bucket answers its lower bound, the
   last finite bound — there is nothing better to say about outliers). *)
let histogram_quantile h q =
  let q = Float.max 0. (Float.min 1. q) in
  let total = histogram_count h in
  if total = 0 then 0.
  else begin
    let target = q *. float_of_int total in
    let buckets = histogram_buckets h in
    let rec scan seen lower = function
      | [] -> lower
      | (bound, count) :: rest ->
        let seen' = seen +. float_of_int count in
        if seen' >= target && count > 0 then
          if bound = infinity then lower
          else
            lower
            +. ((bound -. lower) *. ((target -. seen) /. float_of_int count))
        else scan seen' (if bound = infinity then lower else bound) rest
    in
    scan 0. 0. buckets
  end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (float * int) list; count : int; sum : float }

type sample = { name : string; help : string; value : value }

let sample_of (m, help) =
  match m with
  | Counter_m c -> { name = c.c_name; help; value = Counter (counter_value c) }
  | Gauge_m g -> { name = g.g_name; help; value = Gauge (gauge_value g) }
  | Histogram_m h ->
    {
      name = h.h_name;
      help;
      value =
        Histogram
          {
            buckets = histogram_buckets h;
            count = histogram_count h;
            sum = histogram_sum h;
          };
    }

let snapshot () =
  let items =
    with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  List.map sample_of items
  |> List.sort (fun a b -> String.compare a.name b.name)

let reset () =
  let items =
    with_registry (fun () -> Hashtbl.fold (fun _ (m, _) acc -> m :: acc) registry [])
  in
  List.iter
    (function
      | Counter_m c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
      | Gauge_m g -> Atomic.set g.cell 0.
      | Histogram_m h ->
        Array.iter (Array.iter (fun cell -> Atomic.set cell 0)) h.bucket_cells;
        Array.iter (fun cell -> Atomic.set cell 0) h.count_cells;
        Array.iter (fun cell -> Atomic.set cell 0.) h.sum_cells)
    items
