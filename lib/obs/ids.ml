(* Correlation-id generation on a splitmix64 stream.

   Trace and span ids come from one global splitmix64 state advanced by
   compare-and-set, so ids are unique within a process without any lock
   and without consulting the wall clock (the same generator discipline
   as lib/check's rng and Batch's backoff jitter).  The stream is seeded
   from the pid so two processes on one host diverge; tests pin it with
   [seed] for reproducible ids. *)

let gamma = 0x9E3779B97F4A7C15L

let state =
  Atomic.make (Int64.mul (Int64.of_int (Unix.getpid () + 1)) gamma)

let seed n = Atomic.set state (Int64.of_int n)

(* splitmix64: fetch-and-add the odd gamma, then finalise with the
   standard xor-shift/multiply mix — every 64-bit output is distinct
   until the stream wraps. *)
let next64 () =
  let rec bump () =
    let old = Atomic.get state in
    let next = Int64.add old gamma in
    if Atomic.compare_and_set state old next then next else bump ()
  in
  let z = bump () in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let trace_id () = Printf.sprintf "%016Lx" (next64 ())

let span_id () =
  Printf.sprintf "%08Lx" (Int64.logand (next64 ()) 0xFFFFFFFFL)

(* Client-supplied ids (the X-Flames-Trace-Id request header) are kept
   verbatim when they are short and unambiguous: 1-64 characters of
   [A-Za-z0-9._-].  Anything else is replaced by a fresh id, so log
   lines and label values never carry arbitrary bytes. *)
let valid s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       s
