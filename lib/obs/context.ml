(* Request-scoped context, reachable from any code on the current
   domain+thread without threading a parameter through every call.

   Domain.DLS alone is the wrong key here: the service runs every
   connection handler as a systhread on domain 0, so a DLS slot would be
   shared (and torn) by concurrent requests.  The store is instead a
   small mutex-protected table keyed by (domain id, thread id), which
   distinguishes both serve threads (same domain, distinct threads) and
   pool workers (distinct domains).

   The fast path matters: [current ()] is called from recorded trace
   spans (e.g. every Mna.solve).  When no context is installed anywhere
   in the process — plain CLI runs, benchmarks with events disabled —
   it is a single atomic load. *)

type value = Str of string | Num of float | Int of int | Bool of bool

type t = {
  trace_id : string;
  mutable session_id : string option;
  client : string option;
  route : string option;
  lock : Mutex.t;  (* guards fields/timings: handler thread vs worker *)
  mutable fields : (string * value) list;  (* newest first *)
  timings : (string, float ref) Hashtbl.t;  (* per-stage seconds, summed *)
}

let make ?session_id ?client ?route ~trace_id () =
  {
    trace_id;
    session_id;
    client;
    route;
    lock = Mutex.create ();
    fields = [];
    timings = Hashtbl.create 8;
  }

let trace_id t = t.trace_id
let session_id t = t.session_id
let client t = t.client
let route t = t.route

(* --- the store --- *)

let active = Atomic.make 0
let store : (int * int, t) Hashtbl.t = Hashtbl.create 32
let store_mutex = Mutex.create ()

let key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let current () =
  if Atomic.get active = 0 then None
  else begin
    let k = key () in
    Mutex.lock store_mutex;
    let c = Hashtbl.find_opt store k in
    Mutex.unlock store_mutex;
    c
  end

let with_context ctx f =
  let k = key () in
  Mutex.lock store_mutex;
  let previous = Hashtbl.find_opt store k in
  Hashtbl.replace store k ctx;
  Mutex.unlock store_mutex;
  Atomic.incr active;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active;
      Mutex.lock store_mutex;
      (match previous with
      | Some p -> Hashtbl.replace store k p
      | None -> Hashtbl.remove store k);
      Mutex.unlock store_mutex)
    f

let with_context_opt ctx f =
  match ctx with None -> f () | Some ctx -> with_context ctx f

(* --- accumulation --- *)

let set_session id =
  match current () with None -> () | Some c -> c.session_id <- Some id

let annotate_ctx c k v =
  Mutex.lock c.lock;
  c.fields <- (k, v) :: c.fields;
  Mutex.unlock c.lock

let annotate k v =
  match current () with None -> () | Some c -> annotate_ctx c k v

let add_timing name dt =
  match current () with
  | None -> ()
  | Some c ->
    Mutex.lock c.lock;
    (match Hashtbl.find_opt c.timings name with
    | Some r -> r := !r +. dt
    | None -> Hashtbl.add c.timings name (ref dt));
    Mutex.unlock c.lock

(* Latest annotation of a key wins; earlier ones are dropped. *)
let fields t =
  Mutex.lock t.lock;
  let raw = t.fields in
  Mutex.unlock t.lock;
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    raw

let timings t =
  Mutex.lock t.lock;
  let l = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.timings [] in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l
