(** Correlation-id generation (trace and span ids).

    A process-global splitmix64 stream advanced by compare-and-set:
    lock-free, wall-clock-free, unique per process until the 64-bit
    stream wraps.  Seeded from the pid; {!seed} pins the stream for
    deterministic tests. *)

val trace_id : unit -> string
(** Fresh 16-hex-digit trace id. *)

val span_id : unit -> string
(** Fresh 8-hex-digit span id. *)

val seed : int -> unit
(** Restart the id stream from a fixed state (tests). *)

val valid : string -> bool
(** Accept a client-supplied id: 1-64 chars of [A-Za-z0-9._-].
    Invalid ids are replaced with a fresh {!trace_id} at the edge. *)

val next64 : unit -> int64
(** The raw generator (exposed for tests). *)
