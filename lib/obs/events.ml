(* Wide events: one structured record per unit of work (HTTP request,
   session step, batch job), carrying the request identity from the
   active {!Context} plus every annotation and stage timing it
   accumulated.

   Emission appends to a bounded ring (the flight recorder's source of
   truth — always on, oldest-first eviction) and, when a sink is
   installed (--wide-events FILE), writes one JSON line per event.  The
   ring is mutex-protected: events are a per-request cost, not a
   per-sample one, so a lock is fine and guarantees the recorder never
   tears an event under concurrent emitters.  A global atomic sequence
   number gives events a total order that survives the export. *)

type value = Context.value =
  | Str of string
  | Num of float
  | Int of int
  | Bool of bool

type t = {
  seq : int;
  ts : float;  (* Unix.gettimeofday at emission *)
  name : string;
  trace_id : string option;
  session_id : string option;
  client : string option;
  route : string option;
  fields : (string * value) list;
}

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let seq_counter = Atomic.make 0

(* --- ring --- *)

let default_capacity = 256

type ring = {
  mutable slots : t option array;
  mutable next : int;  (* slot of the next write *)
  mutable stored : int;  (* <= capacity *)
}

let ring =
  { slots = Array.make default_capacity None; next = 0; stored = 0 }

let ring_mutex = Mutex.create ()

let set_capacity n =
  let n = Int.max 1 n in
  Mutex.lock ring_mutex;
  ring.slots <- Array.make n None;
  ring.next <- 0;
  ring.stored <- 0;
  Mutex.unlock ring_mutex

let capacity () =
  Mutex.lock ring_mutex;
  let n = Array.length ring.slots in
  Mutex.unlock ring_mutex;
  n

let clear () =
  Mutex.lock ring_mutex;
  Array.fill ring.slots 0 (Array.length ring.slots) None;
  ring.next <- 0;
  ring.stored <- 0;
  Mutex.unlock ring_mutex

let recent () =
  Mutex.lock ring_mutex;
  let cap = Array.length ring.slots in
  let events = ref [] in
  (* walk backwards from the newest slot, collecting oldest-first *)
  for i = 0 to ring.stored - 1 do
    let slot = (ring.next - 1 - i + (2 * cap)) mod cap in
    match ring.slots.(slot) with
    | Some e -> events := e :: !events
    | None -> ()
  done;
  Mutex.unlock ring_mutex;
  !events

(* --- JSON --- *)

let json_value b = function
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (Export.json_escape s);
    Buffer.add_char b '"'
  | Int i -> Buffer.add_string b (string_of_int i)
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v ->
    if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.6g" v)
    else
      Buffer.add_string b
        (if Float.is_nan v then "\"nan\""
         else if v > 0. then "\"inf\""
         else "\"-inf\"")

let to_json e =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "{\"seq\": %d, \"ts\": %.6f" e.seq e.ts);
  Buffer.add_string b
    (Printf.sprintf ", \"event\": \"%s\"" (Export.json_escape e.name));
  let opt key = function
    | None -> ()
    | Some v ->
      Buffer.add_string b
        (Printf.sprintf ", \"%s\": \"%s\"" key (Export.json_escape v))
  in
  opt "trace" e.trace_id;
  opt "session" e.session_id;
  opt "client" e.client;
  opt "route" e.route;
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf ", \"%s\": " (Export.json_escape k));
      json_value b v)
    e.fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* --- sink --- *)

let sink : (string -> unit) option ref = ref None
let sink_mutex = Mutex.create ()

let set_sink s =
  Mutex.lock sink_mutex;
  sink := s;
  Mutex.unlock sink_mutex

let file_sink path =
  let oc = open_out path in
  let write line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  set_sink (Some write);
  fun () ->
    set_sink None;
    close_out_noerr oc

(* --- emission --- *)

let emit ?ctx ~name fields =
  if enabled () then begin
    let ctx = match ctx with Some _ as c -> c | None -> Context.current () in
    let identity, accumulated =
      match ctx with
      | None -> ((None, None, None, None), [])
      | Some c ->
        let timing_fields =
          Context.timings c
          |> List.map (fun (stage, dt) -> ("t_" ^ stage, Num dt))
        in
        ( ( Some (Context.trace_id c),
            Context.session_id c,
            Context.client c,
            Context.route c ),
          Context.fields c @ timing_fields )
    in
    let trace_id, session_id, client, route = identity in
    let e =
      {
        seq = Atomic.fetch_and_add seq_counter 1;
        ts = Unix.gettimeofday ();
        name;
        trace_id;
        session_id;
        client;
        route;
        fields = fields @ accumulated;
      }
    in
    Mutex.lock ring_mutex;
    let cap = Array.length ring.slots in
    ring.slots.(ring.next) <- Some e;
    ring.next <- (ring.next + 1) mod cap;
    ring.stored <- Int.min cap (ring.stored + 1);
    Mutex.unlock ring_mutex;
    Mutex.lock sink_mutex;
    let s = !sink in
    (match s with Some write -> write (to_json e) | None -> ());
    Mutex.unlock sink_mutex
  end
