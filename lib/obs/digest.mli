(** Streaming fixed-bucket quantile digests and per-route latency
    families.

    A digest holds 64 log-spaced atomic bucket counters (10 µs..100 s,
    nine per decade) plus exact count/sum and an optional SLO threshold
    whose breaches are counted; {!observe} is lock-free.  A {!family}
    keys digests by a low-cardinality label (the route) and is rendered
    by {!Export.prometheus} as a summary with [route]/[quantile] labels
    plus a [_slo_breaches_total] counter series. *)

type t

val create : ?slo:float -> unit -> t
(** [?slo] in seconds: observations above it count as breaches. *)

val observe : t -> float -> unit
val count : t -> int
val sum : t -> float

val quantile : t -> float -> float
(** [quantile t 0.99]: upper bound of the bucket holding the q-th
    observation (conservative; 0 when empty). *)

val slo : t -> float option
val breaches : t -> int

val bucket_index : float -> int
(** Bucket of a value (exposed for tests). *)

val bucket_bound : int -> float
(** Upper bound of a bucket, [infinity] for the overflow bucket. *)

type family

val family : ?slo:float -> help:string -> string -> family
(** Register (or fetch — idempotent by name) a labelled digest
    family. *)

val observe_in : family -> string -> float -> unit
(** [observe_in fam label seconds] *)

val digest : family -> string -> t
(** The digest behind one label, creating it when new. *)

type sample = {
  name : string;
  help : string;
  has_slo : bool;
  labelled : (string * t) list;
}

val snapshot : unit -> sample list
(** Every registered family, name-sorted, labels sorted. *)

val reset : unit -> unit
(** Drop all labelled digests (tests); families stay registered. *)
