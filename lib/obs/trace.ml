(* Span tracer on per-domain buffers.

   Each domain appends events to its own growable array (reached through
   domain-local storage), so recording takes no lock and never contends;
   the only synchronised structure is the registry of buffers, touched
   once per domain.  Tracing is off by default: a disabled [with_span]
   is one atomic load plus a tail call.  Collection ([events]/[tracks])
   is meant for quiescence — after the traced work has completed — since
   it reads other domains' buffers unsynchronised. *)

type phase = Begin | End | Instant

type event = {
  name : string;
  phase : phase;
  ts : float;  (* Unix.gettimeofday seconds *)
  tid : int;  (* emitting domain's id *)
  args : (string * string) list;
}

type buf = { b_tid : int; mutable items : event array; mutable len : int }

let placeholder = { name = ""; phase = Instant; ts = 0.; tid = 0; args = [] }

let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b = { b_tid = (Domain.self () :> int); items = [||]; len = 0 } in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let start () = Atomic.set enabled_flag true
let stop () = Atomic.set enabled_flag false

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun b ->
      b.items <- [||];
      b.len <- 0)
    !registry;
  Mutex.unlock registry_mutex

let now () = Unix.gettimeofday ()

let push b e =
  if b.len = Array.length b.items then begin
    let grown = Array.make (Int.max 256 (2 * b.len)) placeholder in
    Array.blit b.items 0 grown 0 b.len;
    b.items <- grown
  end;
  b.items.(b.len) <- e;
  b.len <- b.len + 1

(* Spans recorded while a request {!Context} is active carry its trace
   id, so a Perfetto track can be filtered down to one request even
   when pool workers interleave jobs. *)
let with_trace_arg args =
  match Context.current () with
  | Some c -> ("trace", Context.trace_id c) :: args
  | None -> args

let emit phase ~args name =
  let b = Domain.DLS.get buf_key in
  push b { name; phase; ts = now (); tid = b.b_tid; args = with_trace_arg args }

let instant ?(args = []) name = if enabled () then emit Instant ~args name

let with_span ?(args = []) ?record name f =
  let tracing = enabled () in
  match record with
  | None when not tracing -> f ()
  | _ ->
    let t0 = now () in
    if tracing then begin
      let b = Domain.DLS.get buf_key in
      push b
        {
          name;
          phase = Begin;
          ts = t0;
          tid = b.b_tid;
          args = with_trace_arg args;
        }
    end;
    let finish () =
      let t1 = now () in
      (match record with
      | Some h ->
        Metrics.observe h (t1 -. t0);
        (* the same duration joins the active request's wide event as a
           per-stage timing (no-op without a context) *)
        Context.add_timing name (t1 -. t0)
      | None -> ());
      (* close the span even if tracing was switched off mid-flight, so
         every Begin has its End *)
      if tracing then begin
        let b = Domain.DLS.get buf_key in
        push b { name; phase = End; ts = t1; tid = b.b_tid; args = [] }
      end
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

let tracks () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  bufs
  |> List.filter_map (fun b ->
         if b.len = 0 then None
         else Some (b.b_tid, Array.to_list (Array.sub b.items 0 b.len)))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let events () =
  tracks ()
  |> List.concat_map snd
  |> List.stable_sort (fun a b -> Float.compare a.ts b.ts)

let event_count () =
  Mutex.lock registry_mutex;
  let n = List.fold_left (fun acc b -> acc + b.len) 0 !registry in
  Mutex.unlock registry_mutex;
  n
