(* Flight recorder: a JSON dump of the recent past — the wide-event
   ring plus the tail of the trace-span buffers — produced on demand
   (GET /debug/flight) or on a crash.

   The recorder owns no storage of its own: events live in {!Events}'s
   ring and spans in {!Trace}'s per-domain buffers, so arming it costs
   nothing on the request path.  The crash hook wraps
   [Printexc.set_uncaught_exception_handler]: it writes the dump
   best-effort, then reproduces the default handler's report so the
   exception and backtrace still reach stderr. *)

let span_limit = 256

let phase_string = function
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Instant -> "i"

let span_json (e : Trace.event) =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %.6f, \"tid\": %d"
       (Export.json_escape e.name) (phase_string e.phase) e.ts e.tid);
  if e.args <> [] then begin
    Buffer.add_string b ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b
          (Printf.sprintf "\"%s\": \"%s\"" (Export.json_escape k)
             (Export.json_escape v)))
      e.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let dump () =
  let events = Events.recent () in
  let spans = last span_limit (Trace.events ()) in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"events\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "    ";
      Buffer.add_string b (Events.to_json e))
    events;
  Buffer.add_string b "\n  ],\n  \"spans\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "    ";
      Buffer.add_string b (span_json e))
    spans;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let write path =
  let oc = open_out path in
  output_string oc (dump ());
  close_out oc

let arm_crash_dump path =
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      (try write path with _ -> ());
      Printf.eprintf "Fatal error: exception %s\n%s%!"
        (Printexc.to_string exn)
        (Printexc.raw_backtrace_to_string bt);
      Printf.eprintf "flight recorder dumped to %s\n%!" path)
