(** The deep verification sweep behind [flames_cli check] and
    [make check-deep].

    Each section draws seeded random cases from {!Gen} and checks one
    production path against its {!Oracle} or {!Invariant}; the first
    failure is shrunk and reported with its reproduction seed. *)

type section = {
  name : string;
  cases : int;  (** cases passed before stopping *)
  failure : string option;  (** shrunk counterexample report *)
}

val run_all :
  ?seed:int -> ?log:(string -> unit) -> iters:int -> unit -> section list
(** [run_all ~iters ()] runs every section.  [iters] scales every
    budget: the cheap oracle diffs (hitting sets, arithmetic,
    consistency, MNA, ATMS audits) run [iters] cases each, the full
    diagnosis invariants run [iters/10], the batch-determinism section
    [max 1 (iters/200)] rounds.  [log] receives one progress line per
    section (default: none). *)

val ok : section list -> bool
val pp : Format.formatter -> section list -> unit
