(** Structural invariants of live ATMS instances and finished diagnoses.

    Unlike the {!Oracle} diffs, these checks need no reference
    implementation: they assert properties that must hold of any correct
    output — label laws, value ranges, ranking monotonicity, the
    hitting-set property of diagnoses. *)

val audit_atms : Flames_atms.Atms.t -> (unit, string) result
(** All of {!Flames_atms.Atms.audit}'s label laws (soundness,
    minimality, consistency, completeness at quiescence), folded into a
    single result. *)

val audit_result : Flames_core.Diagnose.result -> (unit, string) result
(** Every invariant a published diagnosis must satisfy:

    - symptom verdicts have [Dc ∈ \[0, 1\]] and
      [signed_dc ∈ \[-1, 1\]], never NaN, with the sign agreeing with
      the deviation direction;
    - conflict degrees lie in [(0, 1]];
    - suspects are sorted by decreasing suspicion and each suspicion is
      the max degree over the conflicts implicating the component;
    - each diagnosis hits every conflict, is minimal among the reported
      diagnoses, carries [rank = min (suspicion of members)], and the
      list is sorted by decreasing rank then increasing cardinality;
    - single faults are members of {e every} conflict. *)
