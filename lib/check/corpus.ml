module Fig7 = Flames_experiments.Fig7
module Strategy_demo = Flames_experiments.Strategy_demo

type status = Match | Drift of string | Missing
type report = { file : string; status : status }

let renderers =
  [
    ( "fig6-bias.txt",
      fun ppf -> Fig7.print_bias ppf (Fig7.bias_point ()) );
    ("fig7-table.txt", fun ppf -> Fig7.print ppf (Fig7.run ()));
    ( "best-tests.txt",
      fun ppf -> Strategy_demo.print ppf (Strategy_demo.run ()) );
  ]

let entries = List.map fst renderers

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write ~dir =
  ensure_dir dir;
  List.map
    (fun (file, f) ->
      let path = Filename.concat dir file in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (render f));
      path)
    renderers

let first_diff rendered golden =
  let lr = String.split_on_char '\n' rendered
  and lg = String.split_on_char '\n' golden in
  let rec walk i = function
    | [], [] -> Printf.sprintf "line %d: (no difference found?)" i
    | x :: _, [] -> Printf.sprintf "line %d: rendered has extra %S" i x
    | [], y :: _ -> Printf.sprintf "line %d: golden has extra %S" i y
    | x :: xs, y :: ys ->
      if String.equal x y then walk (i + 1) (xs, ys)
      else Printf.sprintf "line %d: rendered %S, golden %S" i x y
  in
  walk 1 (lr, lg)

let check ~dir =
  List.map
    (fun (file, f) ->
      let path = Filename.concat dir file in
      if not (Sys.file_exists path) then { file; status = Missing }
      else begin
        let golden = In_channel.with_open_bin path In_channel.input_all in
        let rendered = render f in
        if String.equal rendered golden then { file; status = Match }
        else { file; status = Drift (first_diff rendered golden) }
      end)
    renderers

let ok reports =
  List.for_all (fun r -> match r.status with Match -> true | _ -> false) reports

let pp_report ppf r =
  match r.status with
  | Match -> Format.fprintf ppf "%s: match" r.file
  | Missing ->
    Format.fprintf ppf "%s: missing golden file (run with --write-corpus)"
      r.file
  | Drift diff -> Format.fprintf ppf "%s: DRIFT at %s" r.file diff
