module Interval = Flames_fuzzy.Interval
module Budget = Flames_core.Budget
module Err = Flames_core.Err
module Diagnose = Flames_core.Diagnose
module Pool = Flames_engine.Pool
module Batch = Flames_engine.Batch
module Breaker = Flames_engine.Breaker
module Telemetry = Flames_engine.Telemetry
module Stats = Flames_engine.Stats
module Metrics = Flames_obs.Metrics

type config = {
  seed : int;
  jobs : int;
  workers : int;
  p_raise : float;
  p_kill : float;
  p_singular : float;
  p_nan : float;
  p_delay : float;
  budget_candidates : int option;
  budget_wall : float option;
  retries : int;
}

let default =
  {
    seed = 0;
    jobs = 16;
    workers = 3;
    p_raise = 0.15;
    p_kill = 0.1;
    p_singular = 0.1;
    p_nan = 0.1;
    p_delay = 0.2;
    budget_candidates = Some 1;
    budget_wall = None;
    retries = 3;
  }

type report = {
  cases : int;
  succeeded : int;
  degraded : int;
  failures : (string * int) list;
  retried : int;
  respawned : int;
  requeued : int;
  shed : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>chaos: %d jobs, %d ok (%d degraded), %d retried, %d respawned, \
     %d requeued, %d shed@,errors:"
    r.cases r.succeeded r.degraded r.retried r.respawned r.requeued r.shed;
  if r.failures = [] then Format.fprintf ppf " none"
  else
    List.iter
      (fun (label, n) -> Format.fprintf ppf "@,  %-12s %d" label n)
      r.failures;
  Format.fprintf ppf "@]"

(* One fault decision per (run seed, job, attempt): pool-level requeues
   of the same attempt replay the same faults (a killed worker's job
   kills its replacement too, exercising the Crashed path), while a
   batch-level retry draws fresh ones — exactly the distinction the
   supervision model makes. *)
let inject cfg ~job ~attempt =
  let r =
    Rng.make
      (Rng.case_seed
         ~seed:(Rng.case_seed ~seed:cfg.seed ~case:(1 + job))
         ~case:attempt)
  in
  if Rng.chance r cfg.p_delay then Unix.sleepf (Rng.float r 0.004);
  if Rng.chance r cfg.p_kill then raise Pool.Kill_worker;
  if Rng.chance r cfg.p_raise then failwith "chaos: injected failure";
  if Rng.chance r cfg.p_singular then
    (* a genuinely singular system, through the production solver *)
    ignore (Flames_sim.Linalg.solve [| [| 0. |] |] [| 1. |]);
  if Rng.chance r cfg.p_nan then
    (* a NaN measurement: rejected at the fuzzy-interval boundary *)
    ignore (Interval.number Float.nan ~spread:0.1)

let scenario_job cfg i =
  let r = Rng.make (Rng.case_seed ~seed:cfg.seed ~case:(1000 + i)) in
  let scenario = Gen.scenario.Gen.gen r in
  let _, faulty = Gen.scenario_netlists scenario in
  let observations = Gen.scenario_observations scenario in
  ( scenario,
    Batch.job
      ~label:(Printf.sprintf "chaos-%d" i)
      ~prelude:(fun attempt -> inject cfg ~job:i ~attempt)
      faulty observations )

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let check_invariants cfg ~submitted ~(d : Telemetry.reading) scenarios
    outcomes (stats : Stats.t) =
  let cases = List.length outcomes in
  (* 1. every promise resolved: one outcome per job, accounted once *)
  let* () =
    if cases <> cfg.jobs then fail "outcome count %d <> %d jobs" cases cfg.jobs
    else Ok ()
  in
  let* () =
    if stats.Stats.succeeded + stats.Stats.failed <> cfg.jobs then
      fail "succeeded (%d) + failed (%d) <> jobs (%d)" stats.Stats.succeeded
        stats.Stats.failed cfg.jobs
    else Ok ()
  in
  (* 2. the metrics account for every retry: each of the [jobs] jobs is
     submitted once up-front (the breaker starts closed, so nothing is
     shed before its first attempt) and once more per retry; pool-level
     requeues re-enter the queue without a new submission; retry-time
     sheds resolve without submission. *)
  let* () =
    let expected = cfg.jobs + d.Telemetry.retried in
    if submitted <> expected then
      fail "%d submissions, expected %d (%d jobs + %d retries)" submitted
        expected cfg.jobs d.Telemetry.retried
    else Ok ()
  in
  (* 3. failures are only of injectable kinds *)
  let* () =
    List.fold_left
      (fun acc outcome ->
        let* () = acc in
        match (outcome : Batch.outcome) with
        | Ok _ -> Ok ()
        | Error (Err.Worker_crashed _) when cfg.p_kill > 0. -> Ok ()
        | Error (Err.Unexpected _) when cfg.p_raise > 0. -> Ok ()
        | Error Err.Singular_system when cfg.p_singular > 0. -> Ok ()
        | Error (Err.Invalid_interval _) when cfg.p_nan > 0. -> Ok ()
        | Error (Err.Timed_out | Err.Cancelled) when cfg.budget_wall <> None
          ->
          Ok ()
        | Error (Err.Breaker_open _) -> Ok ()
        | Error e -> fail "unexpected error kind: %s" (Err.to_string e))
      (Ok ()) outcomes
  in
  (* 4. degraded results are sound subsets of the full diagnosis.  Only
     asserted under a candidate-only quota: a wall trip truncates
     propagation, so the conflict set itself may differ and only
     soundness-of-what-was-recorded holds (see DESIGN §9). *)
  let* () =
    if cfg.budget_wall <> None then Ok ()
    else
      List.fold_left
        (fun acc (scenario, outcome) ->
          let* () = acc in
          match (outcome : Batch.outcome) with
          | Ok r when r.Diagnose.degraded ->
            let _, faulty = Gen.scenario_netlists scenario in
            let observations = Gen.scenario_observations scenario in
            let full = Diagnose.run faulty observations in
            let mem diag = List.mem diag full.Diagnose.diagnoses in
            if full.Diagnose.diagnoses <> [] && r.Diagnose.diagnoses = []
            then fail "degraded run lost every candidate"
            else if List.exists (fun x -> not (mem x)) r.Diagnose.diagnoses
            then fail "degraded run invented a candidate"
            else Ok ()
          | Ok _ | Error _ -> Ok ())
        (Ok ())
        (List.combine scenarios outcomes)
  in
  (* 5. supervision bookkeeping: respawns happen only when kills are
     injected, and every requeue implies a respawn *)
  let* () =
    if cfg.p_kill = 0. && d.Telemetry.respawned > 0 then
      fail "workers respawned without injected kills"
    else if d.Telemetry.requeued > d.Telemetry.respawned then
      fail "%d requeues > %d respawns" d.Telemetry.requeued
        d.Telemetry.respawned
    else Ok ()
  in
  (* 6. retry accounting: the registry agrees with the stats read-out *)
  let* () =
    if stats.Stats.retried <> d.Telemetry.retried then
      fail "stats.retried %d <> registry delta %d" stats.Stats.retried
        d.Telemetry.retried
    else if cfg.retries <= 1 && d.Telemetry.retried > 0 then
      fail "retries happened with retries disabled"
    else Ok ()
  in
  Ok ()

let report_of cfg outcomes (d : Telemetry.reading) (stats : Stats.t) =
  let failures = Hashtbl.create 8 in
  let succeeded, degraded =
    List.fold_left
      (fun (ok, dg) (outcome : Batch.outcome) ->
        match outcome with
        | Ok r -> (ok + 1, if r.Diagnose.degraded then dg + 1 else dg)
        | Error e ->
          let l = Err.label e in
          Hashtbl.replace failures l
            (1 + Option.value ~default:0 (Hashtbl.find_opt failures l));
          (ok, dg))
      (0, 0) outcomes
  in
  {
    cases = cfg.jobs;
    succeeded;
    degraded;
    failures =
      Hashtbl.fold (fun l n acc -> (l, n) :: acc) failures []
      |> List.sort compare;
    retried = d.Telemetry.retried;
    respawned = d.Telemetry.respawned;
    requeued = d.Telemetry.requeued;
    shed = stats.Stats.shed;
  }

let run ?(config = default) () =
  let cfg = config in
  let scenarios, jobs = List.split (List.init cfg.jobs (scenario_job cfg)) in
  let before = Telemetry.read () in
  let submitted0 = Metrics.counter_value Telemetry.jobs_total in
  let budget =
    match (cfg.budget_candidates, cfg.budget_wall) with
    | None, None -> None
    | c, w -> Some (Budget.spec ?max_candidates:c ?wall:w ())
  in
  let retry =
    if cfg.retries > 1 then
      Some
        (Batch.retry ~attempts:cfg.retries ~base_delay:0.002 ~max_delay:0.02
           ~seed:cfg.seed ())
    else None
  in
  let breaker = Breaker.create ~threshold:4 ~cooldown:0.05 () in
  let outcomes, stats =
    Batch.run ~workers:cfg.workers ?budget ?retry ~breaker jobs
  in
  let d = Telemetry.delta before (Telemetry.read ()) in
  let submitted = Metrics.counter_value Telemetry.jobs_total - submitted0 in
  let* () = check_invariants cfg ~submitted ~d scenarios outcomes stats in
  Ok (report_of cfg outcomes d stats)

let check ?(config = default) seed =
  match run ~config:{ config with seed } () with
  | Ok _ -> Ok ()
  | Error m -> Error m

(* {1 Mid-session fault injection} *)

module Session = Flames_session.Session
module Journal = Flames_store.Journal
module Record = Flames_store.Record
module Frame = Flames_store.Frame

let check_session ?(config = default) seed =
  let cfg = { config with seed } in
  let rng = Rng.make (Rng.case_seed ~seed:cfg.seed ~case:7001) in
  let script = Gen.session_script.Gen.gen rng in
  let pool = Gen.session_pool script.Gen.base in
  if pool = [] then Ok ()
  else begin
    let nominal, _ = Gen.scenario_netlists script.Gen.base in
    let model = Flames_core.Model.compile nominal in
    (* the fault point draws from its own deterministic stream; [armed]
       lets the final equivalence pass run fault-free *)
    let frng = Rng.make (Rng.case_seed ~seed:cfg.seed ~case:7002) in
    let armed = ref true in
    let injected = ref 0 in
    let fault_point _stage =
      if !armed && Rng.chance frng 0.35 then begin
        incr injected;
        failwith "chaos: injected mid-session fault"
      end
    in
    let session = Session.create ~model ~fault_point nominal in
    let survivors () =
      List.map
        (fun (m : Session.measurement) ->
          (m.Session.quantity, m.Session.interval))
        (Session.measurements session)
    in
    (* replay the script; every op either succeeds (mirrored) or faults
       without half-applying — the measurement list must be untouched *)
    let apply op =
      let before = Session.measurements session in
      match
        (match op with
        | Gen.S_add i ->
          let q, v = List.nth pool (i mod List.length pool) in
          ignore (Session.add_measurement session q v)
        | Gen.S_retract n -> begin
          match Session.measurements session with
          | [] -> ()
          | ms ->
            let m = List.nth ms (n mod List.length ms) in
            ignore (Session.retract session ~id:m.Session.id)
        end
        | Gen.S_refine n -> begin
          match Session.measurements session with
          | [] -> ()
          | ms ->
            let m = List.nth ms (n mod List.length ms) in
            ignore (Session.refine session ~id:m.Session.id m.Session.interval)
        end)
      with
      | () -> Ok ()
      | exception Failure _ ->
        if Session.measurements session = before then Ok ()
        else fail "faulted op half-applied: measurement list changed"
    in
    let* () =
      List.fold_left
        (fun acc op -> let* () = acc in apply op)
        (Ok ()) script.Gen.ops
    in
    (* a faulted diagnose must leave the session reusable too *)
    let* () =
      match Session.diagnoses session with
      | _ -> Ok ()
      | exception Failure _ -> Ok ()
    in
    armed := false;
    (* 1. after any number of mid-session faults, the session still
       answers, and identically to a from-scratch run over its
       surviving measurements *)
    let full = Session.diagnoses session in
    let reference = Diagnose.run ~model nominal (survivors ()) in
    let* () =
      if
        String.equal
          (Oracle.result_fingerprint full)
          (Oracle.result_fingerprint reference)
      then Ok ()
      else
        fail "post-fault session diverges from scratch run (%d faults)"
          !injected
    in
    (* 2. a budget trip mid-session degrades one answer soundly and is
       not cached: the session keeps answering afterwards *)
    match cfg.budget_candidates with
    | None -> Ok ()
    | Some quota ->
      let budgeted =
        Session.create ~model
          ~budget_spec:(Budget.spec ~max_candidates:quota ())
          nominal
      in
      List.iter
        (fun (q, v) -> ignore (Session.add_measurement budgeted q v))
        (survivors ());
      let part = Session.diagnoses budgeted in
      let mem d = List.mem d full.Diagnose.diagnoses in
      let* () =
        if full.Diagnose.diagnoses <> [] && part.Diagnose.diagnoses = [] then
          fail "budget-tripped session lost every candidate"
        else if List.exists (fun d -> not (mem d)) part.Diagnose.diagnoses
        then fail "budget-tripped session invented a candidate"
        else Ok ()
      in
      (* deterministic on re-query, and still accepting measurements *)
      let again = Session.diagnoses budgeted in
      let* () =
        if
          String.equal (Oracle.result_fingerprint part) (Oracle.result_fingerprint again)
        then Ok ()
        else fail "budget-tripped session not deterministic on re-query"
      in
      let q0, v0 = List.hd pool in
      ignore (Session.add_measurement budgeted q0 v0);
      match Session.diagnoses budgeted with
      | _ -> Ok ()
      | exception e ->
        fail "budget-tripped session unusable after another add: %s"
          (Printexc.to_string e)
  end

(* {1 Crash injection: damage the journal mid-write, restart, compare} *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> rm_rf (Filename.concat path name))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let fresh_dir =
  let counter = Atomic.make 0 in
  fun tag ->
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "flames-%s-%d-%d" tag (Unix.getpid ())
           (Atomic.fetch_and_add counter 1))
    in
    rm_rf dir;
    dir

type crash_state = {
  ms : (int * Flames_circuit.Quantity.t * Interval.t) list;
  next : int;
}

let crash_state session =
  {
    ms =
      List.map
        (fun (m : Session.measurement) ->
          (m.Session.id, m.Session.quantity, m.Session.interval))
        (Session.measurements session);
    next = Session.next_id session;
  }

(* Where the crash lands, relative to the framed journal bytes.  The
   three shapes cover the whole failure surface of [Frame.read]: a cut
   exactly between frames (clean prefix), a cut inside a frame (torn
   tail) and a flipped bit with the length intact (checksum failure). *)
type injection =
  | Cut_boundary of int  (** truncate after this many frames *)
  | Cut_inside of int  (** truncate inside frame [i] (0-based) *)
  | Flip of int  (** flip one payload/crc byte of frame [i] *)

let check_crash ?(config = default) seed =
  let cfg = { config with seed } in
  let rng = Rng.make (Rng.case_seed ~seed:cfg.seed ~case:9001) in
  let script = Gen.session_script.Gen.gen rng in
  let pool = Gen.session_pool script.Gen.base in
  if pool = [] then Ok ()
  else begin
    let nominal, _ = Gen.scenario_netlists script.Gen.base in
    let model = Flames_core.Model.compile nominal in
    let sid = "s1" in
    let dir = fresh_dir "crash" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    (* 1. the "before the crash" run: a journaled session, with the
       mirror state (surviving measurements + id counter) captured after
       every acknowledged record — exactly what recovery from a prefix
       of r records must reproduce. *)
    let journal = Journal.open_ ~fsync:Journal.Never dir in
    let session = Session.create ~model nominal in
    (* slot 0 = "no records survived": no session to compare *)
    let mirrors = ref [ { ms = []; next = 0 } ] in
    let record r =
      Journal.append journal r;
      mirrors := crash_state session :: !mirrors
    in
    record (Record.Create { sid; source = Record.Inline "chaos"; trusted = [] });
    List.iter
      (fun op ->
        match op with
        | Gen.S_add i ->
          let q, v = List.nth pool (i mod List.length pool) in
          let m = Session.add_measurement session q v in
          record
            (Record.Measure { sid; mid = m.Session.id; quantity = q; interval = v })
        | Gen.S_retract n -> begin
          match Session.measurements session with
          | [] -> ()
          | ms ->
            let m = List.nth ms (n mod List.length ms) in
            ignore (Session.retract session ~id:m.Session.id);
            record (Record.Retract { sid; mid = m.Session.id })
        end
        | Gen.S_refine n -> begin
          match Session.measurements session with
          | [] -> ()
          | ms ->
            let m = List.nth ms (n mod List.length ms) in
            ignore (Session.refine session ~id:m.Session.id m.Session.interval);
            record
              (Record.Refine
                 { sid; mid = m.Session.id; interval = m.Session.interval })
        end)
      script.Gen.ops;
    Journal.close journal;
    (* mirror.(k) = state after k records; mirror.(0) = no session *)
    let mirror = Array.of_list (List.rev !mirrors) in
    let n = Array.length mirror - 1 in
    let path = Filename.concat dir "segment-00000001.wal" in
    let content =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (* 2. frame boundaries: boundary.(k) = byte offset after k frames *)
    let boundaries = ref [ String.length Frame.header ] in
    let rec walk pos =
      match Frame.read content ~pos with
      | Frame.Frame { next; _ } ->
        boundaries := next :: !boundaries;
        walk next
      | Frame.End -> ()
      | Frame.Torn | Frame.Corrupt ->
        invalid_arg "check_crash: undamaged journal failed to scan"
    in
    walk (String.length Frame.header);
    let boundary = Array.of_list (List.rev !boundaries) in
    let* () =
      if Array.length boundary <> n + 1 then
        fail "journal holds %d frames, %d records appended"
          (Array.length boundary - 1)
          n
      else Ok ()
    in
    (* 3. seeded damage *)
    let irng = Rng.make (Rng.case_seed ~seed:cfg.seed ~case:9002) in
    let injection =
      match Rng.int irng 3 with
      | 0 -> Cut_boundary (Rng.int irng (n + 1))
      | 1 -> Cut_inside (Rng.int irng n)
      | _ -> Flip (Rng.int irng n)
    in
    let total = String.length content in
    let damaged, expect_r, expect_torn, expect_corrupt, expect_skipped =
      match injection with
      | Cut_boundary k -> (String.sub content 0 boundary.(k), k, false, 0, 0)
      | Cut_inside i ->
        let flen = boundary.(i + 1) - boundary.(i) in
        let cut = boundary.(i) + 1 + Rng.int irng (flen - 1) in
        (String.sub content 0 cut, i, true, 0, cut - boundary.(i))
      | Flip i ->
        (* anywhere past the length field: a payload or checksum byte,
           so the frame still parses as a frame and fails its CRC *)
        let lo = boundary.(i) + 4 in
        let off = lo + Rng.int irng (boundary.(i + 1) - lo) in
        let b = Bytes.of_string content in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
        (Bytes.to_string b, i, false, 1, total - boundary.(i))
    in
    let oc = open_out_bin path in
    output_string oc damaged;
    close_out oc;
    (* 4. restart: recover the damaged directory *)
    let r = Journal.recover ~resolve:(fun _ -> Ok nominal) dir in
    let* () =
      if r.Journal.records <> expect_r then
        fail "recovered %d records, expected %d (%d journaled)"
          r.Journal.records expect_r n
      else Ok ()
    in
    let* () =
      if r.Journal.torn_tail <> expect_torn then
        fail "torn_tail %b, expected %b" r.Journal.torn_tail expect_torn
      else Ok ()
    in
    let* () =
      if r.Journal.corrupt_frames <> expect_corrupt then
        fail "%d corrupt frames, expected %d" r.Journal.corrupt_frames
          expect_corrupt
      else Ok ()
    in
    let* () =
      if r.Journal.skipped_bytes <> expect_skipped then
        fail "%d bytes skipped, expected %d" r.Journal.skipped_bytes
          expect_skipped
      else Ok ()
    in
    let* () =
      if r.Journal.dropped_records <> 0 || r.Journal.dropped_sessions <> 0 then
        fail "clean prefix dropped %d records, %d sessions"
          r.Journal.dropped_records r.Journal.dropped_sessions
      else Ok ()
    in
    (* 5. the equivalence oracle: the recovered session is bit-identical
       to the pre-crash state at the surviving prefix *)
    match (r.Journal.entries, expect_r) with
    | [], 0 -> Ok ()
    | [], _ -> fail "no session recovered from %d surviving records" expect_r
    | _ :: _, 0 -> fail "session recovered from an empty prefix"
    | [ e ], _ ->
      let want = mirror.(expect_r) in
      let got = crash_state e.Journal.session in
      let* () =
        if e.Journal.sid <> sid then fail "recovered sid %S" e.Journal.sid
        else Ok ()
      in
      let* () =
        if got.ms <> want.ms then
          fail "recovered measurements diverge at prefix %d (%d vs %d)"
            expect_r (List.length got.ms) (List.length want.ms)
        else Ok ()
      in
      let* () =
        if got.next <> want.next then
          fail "recovered next_id %d, expected %d" got.next want.next
        else Ok ()
      in
      let reference =
        Diagnose.run ~model nominal
          (List.map (fun (_, q, v) -> (q, v)) want.ms)
      in
      if
        String.equal
          (Oracle.result_fingerprint (Session.diagnoses e.Journal.session))
          (Oracle.result_fingerprint reference)
      then Ok ()
      else
        fail "recovered session diverges from scratch run at prefix %d"
          expect_r
    | _ :: _ :: _, _ -> fail "one session journaled, several recovered"
  end
