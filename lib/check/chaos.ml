module Interval = Flames_fuzzy.Interval
module Budget = Flames_core.Budget
module Err = Flames_core.Err
module Diagnose = Flames_core.Diagnose
module Pool = Flames_engine.Pool
module Batch = Flames_engine.Batch
module Breaker = Flames_engine.Breaker
module Telemetry = Flames_engine.Telemetry
module Stats = Flames_engine.Stats
module Metrics = Flames_obs.Metrics

type config = {
  seed : int;
  jobs : int;
  workers : int;
  p_raise : float;
  p_kill : float;
  p_singular : float;
  p_nan : float;
  p_delay : float;
  budget_candidates : int option;
  budget_wall : float option;
  retries : int;
}

let default =
  {
    seed = 0;
    jobs = 16;
    workers = 3;
    p_raise = 0.15;
    p_kill = 0.1;
    p_singular = 0.1;
    p_nan = 0.1;
    p_delay = 0.2;
    budget_candidates = Some 1;
    budget_wall = None;
    retries = 3;
  }

type report = {
  cases : int;
  succeeded : int;
  degraded : int;
  failures : (string * int) list;
  retried : int;
  respawned : int;
  requeued : int;
  shed : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>chaos: %d jobs, %d ok (%d degraded), %d retried, %d respawned, \
     %d requeued, %d shed@,errors:"
    r.cases r.succeeded r.degraded r.retried r.respawned r.requeued r.shed;
  if r.failures = [] then Format.fprintf ppf " none"
  else
    List.iter
      (fun (label, n) -> Format.fprintf ppf "@,  %-12s %d" label n)
      r.failures;
  Format.fprintf ppf "@]"

(* One fault decision per (run seed, job, attempt): pool-level requeues
   of the same attempt replay the same faults (a killed worker's job
   kills its replacement too, exercising the Crashed path), while a
   batch-level retry draws fresh ones — exactly the distinction the
   supervision model makes. *)
let inject cfg ~job ~attempt =
  let r =
    Rng.make
      (Rng.case_seed
         ~seed:(Rng.case_seed ~seed:cfg.seed ~case:(1 + job))
         ~case:attempt)
  in
  if Rng.chance r cfg.p_delay then Unix.sleepf (Rng.float r 0.004);
  if Rng.chance r cfg.p_kill then raise Pool.Kill_worker;
  if Rng.chance r cfg.p_raise then failwith "chaos: injected failure";
  if Rng.chance r cfg.p_singular then
    (* a genuinely singular system, through the production solver *)
    ignore (Flames_sim.Linalg.solve [| [| 0. |] |] [| 1. |]);
  if Rng.chance r cfg.p_nan then
    (* a NaN measurement: rejected at the fuzzy-interval boundary *)
    ignore (Interval.number Float.nan ~spread:0.1)

let scenario_job cfg i =
  let r = Rng.make (Rng.case_seed ~seed:cfg.seed ~case:(1000 + i)) in
  let scenario = Gen.scenario.Gen.gen r in
  let _, faulty = Gen.scenario_netlists scenario in
  let observations = Gen.scenario_observations scenario in
  ( scenario,
    Batch.job
      ~label:(Printf.sprintf "chaos-%d" i)
      ~prelude:(fun attempt -> inject cfg ~job:i ~attempt)
      faulty observations )

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let check_invariants cfg ~submitted ~(d : Telemetry.reading) scenarios
    outcomes (stats : Stats.t) =
  let cases = List.length outcomes in
  (* 1. every promise resolved: one outcome per job, accounted once *)
  let* () =
    if cases <> cfg.jobs then fail "outcome count %d <> %d jobs" cases cfg.jobs
    else Ok ()
  in
  let* () =
    if stats.Stats.succeeded + stats.Stats.failed <> cfg.jobs then
      fail "succeeded (%d) + failed (%d) <> jobs (%d)" stats.Stats.succeeded
        stats.Stats.failed cfg.jobs
    else Ok ()
  in
  (* 2. the metrics account for every retry: each of the [jobs] jobs is
     submitted once up-front (the breaker starts closed, so nothing is
     shed before its first attempt) and once more per retry; pool-level
     requeues re-enter the queue without a new submission; retry-time
     sheds resolve without submission. *)
  let* () =
    let expected = cfg.jobs + d.Telemetry.retried in
    if submitted <> expected then
      fail "%d submissions, expected %d (%d jobs + %d retries)" submitted
        expected cfg.jobs d.Telemetry.retried
    else Ok ()
  in
  (* 3. failures are only of injectable kinds *)
  let* () =
    List.fold_left
      (fun acc outcome ->
        let* () = acc in
        match (outcome : Batch.outcome) with
        | Ok _ -> Ok ()
        | Error (Err.Worker_crashed _) when cfg.p_kill > 0. -> Ok ()
        | Error (Err.Unexpected _) when cfg.p_raise > 0. -> Ok ()
        | Error Err.Singular_system when cfg.p_singular > 0. -> Ok ()
        | Error (Err.Invalid_interval _) when cfg.p_nan > 0. -> Ok ()
        | Error (Err.Timed_out | Err.Cancelled) when cfg.budget_wall <> None
          ->
          Ok ()
        | Error (Err.Breaker_open _) -> Ok ()
        | Error e -> fail "unexpected error kind: %s" (Err.to_string e))
      (Ok ()) outcomes
  in
  (* 4. degraded results are sound subsets of the full diagnosis.  Only
     asserted under a candidate-only quota: a wall trip truncates
     propagation, so the conflict set itself may differ and only
     soundness-of-what-was-recorded holds (see DESIGN §9). *)
  let* () =
    if cfg.budget_wall <> None then Ok ()
    else
      List.fold_left
        (fun acc (scenario, outcome) ->
          let* () = acc in
          match (outcome : Batch.outcome) with
          | Ok r when r.Diagnose.degraded ->
            let _, faulty = Gen.scenario_netlists scenario in
            let observations = Gen.scenario_observations scenario in
            let full = Diagnose.run faulty observations in
            let mem diag = List.mem diag full.Diagnose.diagnoses in
            if full.Diagnose.diagnoses <> [] && r.Diagnose.diagnoses = []
            then fail "degraded run lost every candidate"
            else if List.exists (fun x -> not (mem x)) r.Diagnose.diagnoses
            then fail "degraded run invented a candidate"
            else Ok ()
          | Ok _ | Error _ -> Ok ())
        (Ok ())
        (List.combine scenarios outcomes)
  in
  (* 5. supervision bookkeeping: respawns happen only when kills are
     injected, and every requeue implies a respawn *)
  let* () =
    if cfg.p_kill = 0. && d.Telemetry.respawned > 0 then
      fail "workers respawned without injected kills"
    else if d.Telemetry.requeued > d.Telemetry.respawned then
      fail "%d requeues > %d respawns" d.Telemetry.requeued
        d.Telemetry.respawned
    else Ok ()
  in
  (* 6. retry accounting: the registry agrees with the stats read-out *)
  let* () =
    if stats.Stats.retried <> d.Telemetry.retried then
      fail "stats.retried %d <> registry delta %d" stats.Stats.retried
        d.Telemetry.retried
    else if cfg.retries <= 1 && d.Telemetry.retried > 0 then
      fail "retries happened with retries disabled"
    else Ok ()
  in
  Ok ()

let report_of cfg outcomes (d : Telemetry.reading) (stats : Stats.t) =
  let failures = Hashtbl.create 8 in
  let succeeded, degraded =
    List.fold_left
      (fun (ok, dg) (outcome : Batch.outcome) ->
        match outcome with
        | Ok r -> (ok + 1, if r.Diagnose.degraded then dg + 1 else dg)
        | Error e ->
          let l = Err.label e in
          Hashtbl.replace failures l
            (1 + Option.value ~default:0 (Hashtbl.find_opt failures l));
          (ok, dg))
      (0, 0) outcomes
  in
  {
    cases = cfg.jobs;
    succeeded;
    degraded;
    failures =
      Hashtbl.fold (fun l n acc -> (l, n) :: acc) failures []
      |> List.sort compare;
    retried = d.Telemetry.retried;
    respawned = d.Telemetry.respawned;
    requeued = d.Telemetry.requeued;
    shed = stats.Stats.shed;
  }

let run ?(config = default) () =
  let cfg = config in
  let scenarios, jobs = List.split (List.init cfg.jobs (scenario_job cfg)) in
  let before = Telemetry.read () in
  let submitted0 = Metrics.counter_value Telemetry.jobs_total in
  let budget =
    match (cfg.budget_candidates, cfg.budget_wall) with
    | None, None -> None
    | c, w -> Some (Budget.spec ?max_candidates:c ?wall:w ())
  in
  let retry =
    if cfg.retries > 1 then
      Some
        (Batch.retry ~attempts:cfg.retries ~base_delay:0.002 ~max_delay:0.02
           ~seed:cfg.seed ())
    else None
  in
  let breaker = Breaker.create ~threshold:4 ~cooldown:0.05 () in
  let outcomes, stats =
    Batch.run ~workers:cfg.workers ?budget ?retry ~breaker jobs
  in
  let d = Telemetry.delta before (Telemetry.read ()) in
  let submitted = Metrics.counter_value Telemetry.jobs_total - submitted0 in
  let* () = check_invariants cfg ~submitted ~d scenarios outcomes stats in
  Ok (report_of cfg outcomes d stats)

let check ?(config = default) seed =
  match run ~config:{ config with seed } () with
  | Ok _ -> Ok ()
  | Error m -> Error m

(* {1 Mid-session fault injection} *)

module Session = Flames_session.Session

let check_session ?(config = default) seed =
  let cfg = { config with seed } in
  let rng = Rng.make (Rng.case_seed ~seed:cfg.seed ~case:7001) in
  let script = Gen.session_script.Gen.gen rng in
  let pool = Gen.session_pool script.Gen.base in
  if pool = [] then Ok ()
  else begin
    let nominal, _ = Gen.scenario_netlists script.Gen.base in
    let model = Flames_core.Model.compile nominal in
    (* the fault point draws from its own deterministic stream; [armed]
       lets the final equivalence pass run fault-free *)
    let frng = Rng.make (Rng.case_seed ~seed:cfg.seed ~case:7002) in
    let armed = ref true in
    let injected = ref 0 in
    let fault_point _stage =
      if !armed && Rng.chance frng 0.35 then begin
        incr injected;
        failwith "chaos: injected mid-session fault"
      end
    in
    let session = Session.create ~model ~fault_point nominal in
    let survivors () =
      List.map
        (fun (m : Session.measurement) ->
          (m.Session.quantity, m.Session.interval))
        (Session.measurements session)
    in
    (* replay the script; every op either succeeds (mirrored) or faults
       without half-applying — the measurement list must be untouched *)
    let apply op =
      let before = Session.measurements session in
      match
        (match op with
        | Gen.S_add i ->
          let q, v = List.nth pool (i mod List.length pool) in
          ignore (Session.add_measurement session q v)
        | Gen.S_retract n -> begin
          match Session.measurements session with
          | [] -> ()
          | ms ->
            let m = List.nth ms (n mod List.length ms) in
            ignore (Session.retract session ~id:m.Session.id)
        end
        | Gen.S_refine n -> begin
          match Session.measurements session with
          | [] -> ()
          | ms ->
            let m = List.nth ms (n mod List.length ms) in
            ignore (Session.refine session ~id:m.Session.id m.Session.interval)
        end)
      with
      | () -> Ok ()
      | exception Failure _ ->
        if Session.measurements session = before then Ok ()
        else fail "faulted op half-applied: measurement list changed"
    in
    let* () =
      List.fold_left
        (fun acc op -> let* () = acc in apply op)
        (Ok ()) script.Gen.ops
    in
    (* a faulted diagnose must leave the session reusable too *)
    let* () =
      match Session.diagnoses session with
      | _ -> Ok ()
      | exception Failure _ -> Ok ()
    in
    armed := false;
    (* 1. after any number of mid-session faults, the session still
       answers, and identically to a from-scratch run over its
       surviving measurements *)
    let full = Session.diagnoses session in
    let reference = Diagnose.run ~model nominal (survivors ()) in
    let* () =
      if
        String.equal
          (Oracle.result_fingerprint full)
          (Oracle.result_fingerprint reference)
      then Ok ()
      else
        fail "post-fault session diverges from scratch run (%d faults)"
          !injected
    in
    (* 2. a budget trip mid-session degrades one answer soundly and is
       not cached: the session keeps answering afterwards *)
    match cfg.budget_candidates with
    | None -> Ok ()
    | Some quota ->
      let budgeted =
        Session.create ~model
          ~budget_spec:(Budget.spec ~max_candidates:quota ())
          nominal
      in
      List.iter
        (fun (q, v) -> ignore (Session.add_measurement budgeted q v))
        (survivors ());
      let part = Session.diagnoses budgeted in
      let mem d = List.mem d full.Diagnose.diagnoses in
      let* () =
        if full.Diagnose.diagnoses <> [] && part.Diagnose.diagnoses = [] then
          fail "budget-tripped session lost every candidate"
        else if List.exists (fun d -> not (mem d)) part.Diagnose.diagnoses
        then fail "budget-tripped session invented a candidate"
        else Ok ()
      in
      (* deterministic on re-query, and still accepting measurements *)
      let again = Session.diagnoses budgeted in
      let* () =
        if
          String.equal (Oracle.result_fingerprint part) (Oracle.result_fingerprint again)
        then Ok ()
        else fail "budget-tripped session not deterministic on re-query"
      in
      let q0, v0 = List.hd pool in
      ignore (Session.add_measurement budgeted q0 v0);
      match Session.diagnoses budgeted with
      | _ -> Ok ()
      | exception e ->
        fail "budget-tripped session unusable after another add: %s"
          (Printexc.to_string e)
  end
