module Interval = Flames_fuzzy.Interval
module Budget = Flames_core.Budget
module Err = Flames_core.Err
module Diagnose = Flames_core.Diagnose
module Pool = Flames_engine.Pool
module Batch = Flames_engine.Batch
module Breaker = Flames_engine.Breaker
module Telemetry = Flames_engine.Telemetry
module Stats = Flames_engine.Stats
module Metrics = Flames_obs.Metrics

type config = {
  seed : int;
  jobs : int;
  workers : int;
  p_raise : float;
  p_kill : float;
  p_singular : float;
  p_nan : float;
  p_delay : float;
  budget_candidates : int option;
  budget_wall : float option;
  retries : int;
}

let default =
  {
    seed = 0;
    jobs = 16;
    workers = 3;
    p_raise = 0.15;
    p_kill = 0.1;
    p_singular = 0.1;
    p_nan = 0.1;
    p_delay = 0.2;
    budget_candidates = Some 1;
    budget_wall = None;
    retries = 3;
  }

type report = {
  cases : int;
  succeeded : int;
  degraded : int;
  failures : (string * int) list;
  retried : int;
  respawned : int;
  requeued : int;
  shed : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>chaos: %d jobs, %d ok (%d degraded), %d retried, %d respawned, \
     %d requeued, %d shed@,errors:"
    r.cases r.succeeded r.degraded r.retried r.respawned r.requeued r.shed;
  if r.failures = [] then Format.fprintf ppf " none"
  else
    List.iter
      (fun (label, n) -> Format.fprintf ppf "@,  %-12s %d" label n)
      r.failures;
  Format.fprintf ppf "@]"

(* One fault decision per (run seed, job, attempt): pool-level requeues
   of the same attempt replay the same faults (a killed worker's job
   kills its replacement too, exercising the Crashed path), while a
   batch-level retry draws fresh ones — exactly the distinction the
   supervision model makes. *)
let inject cfg ~job ~attempt =
  let r =
    Rng.make
      (Rng.case_seed
         ~seed:(Rng.case_seed ~seed:cfg.seed ~case:(1 + job))
         ~case:attempt)
  in
  if Rng.chance r cfg.p_delay then Unix.sleepf (Rng.float r 0.004);
  if Rng.chance r cfg.p_kill then raise Pool.Kill_worker;
  if Rng.chance r cfg.p_raise then failwith "chaos: injected failure";
  if Rng.chance r cfg.p_singular then
    (* a genuinely singular system, through the production solver *)
    ignore (Flames_sim.Linalg.solve [| [| 0. |] |] [| 1. |]);
  if Rng.chance r cfg.p_nan then
    (* a NaN measurement: rejected at the fuzzy-interval boundary *)
    ignore (Interval.number Float.nan ~spread:0.1)

let scenario_job cfg i =
  let r = Rng.make (Rng.case_seed ~seed:cfg.seed ~case:(1000 + i)) in
  let scenario = Gen.scenario.Gen.gen r in
  let _, faulty = Gen.scenario_netlists scenario in
  let observations = Gen.scenario_observations scenario in
  ( scenario,
    Batch.job
      ~label:(Printf.sprintf "chaos-%d" i)
      ~prelude:(fun attempt -> inject cfg ~job:i ~attempt)
      faulty observations )

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let check_invariants cfg ~submitted ~(d : Telemetry.reading) scenarios
    outcomes (stats : Stats.t) =
  let cases = List.length outcomes in
  (* 1. every promise resolved: one outcome per job, accounted once *)
  let* () =
    if cases <> cfg.jobs then fail "outcome count %d <> %d jobs" cases cfg.jobs
    else Ok ()
  in
  let* () =
    if stats.Stats.succeeded + stats.Stats.failed <> cfg.jobs then
      fail "succeeded (%d) + failed (%d) <> jobs (%d)" stats.Stats.succeeded
        stats.Stats.failed cfg.jobs
    else Ok ()
  in
  (* 2. the metrics account for every retry: each of the [jobs] jobs is
     submitted once up-front (the breaker starts closed, so nothing is
     shed before its first attempt) and once more per retry; pool-level
     requeues re-enter the queue without a new submission; retry-time
     sheds resolve without submission. *)
  let* () =
    let expected = cfg.jobs + d.Telemetry.retried in
    if submitted <> expected then
      fail "%d submissions, expected %d (%d jobs + %d retries)" submitted
        expected cfg.jobs d.Telemetry.retried
    else Ok ()
  in
  (* 3. failures are only of injectable kinds *)
  let* () =
    List.fold_left
      (fun acc outcome ->
        let* () = acc in
        match (outcome : Batch.outcome) with
        | Ok _ -> Ok ()
        | Error (Err.Worker_crashed _) when cfg.p_kill > 0. -> Ok ()
        | Error (Err.Unexpected _) when cfg.p_raise > 0. -> Ok ()
        | Error Err.Singular_system when cfg.p_singular > 0. -> Ok ()
        | Error (Err.Invalid_interval _) when cfg.p_nan > 0. -> Ok ()
        | Error (Err.Timed_out | Err.Cancelled) when cfg.budget_wall <> None
          ->
          Ok ()
        | Error (Err.Breaker_open _) -> Ok ()
        | Error e -> fail "unexpected error kind: %s" (Err.to_string e))
      (Ok ()) outcomes
  in
  (* 4. degraded results are sound subsets of the full diagnosis.  Only
     asserted under a candidate-only quota: a wall trip truncates
     propagation, so the conflict set itself may differ and only
     soundness-of-what-was-recorded holds (see DESIGN §9). *)
  let* () =
    if cfg.budget_wall <> None then Ok ()
    else
      List.fold_left
        (fun acc (scenario, outcome) ->
          let* () = acc in
          match (outcome : Batch.outcome) with
          | Ok r when r.Diagnose.degraded ->
            let _, faulty = Gen.scenario_netlists scenario in
            let observations = Gen.scenario_observations scenario in
            let full = Diagnose.run faulty observations in
            let mem diag = List.mem diag full.Diagnose.diagnoses in
            if full.Diagnose.diagnoses <> [] && r.Diagnose.diagnoses = []
            then fail "degraded run lost every candidate"
            else if List.exists (fun x -> not (mem x)) r.Diagnose.diagnoses
            then fail "degraded run invented a candidate"
            else Ok ()
          | Ok _ | Error _ -> Ok ())
        (Ok ())
        (List.combine scenarios outcomes)
  in
  (* 5. supervision bookkeeping: respawns happen only when kills are
     injected, and every requeue implies a respawn *)
  let* () =
    if cfg.p_kill = 0. && d.Telemetry.respawned > 0 then
      fail "workers respawned without injected kills"
    else if d.Telemetry.requeued > d.Telemetry.respawned then
      fail "%d requeues > %d respawns" d.Telemetry.requeued
        d.Telemetry.respawned
    else Ok ()
  in
  (* 6. retry accounting: the registry agrees with the stats read-out *)
  let* () =
    if stats.Stats.retried <> d.Telemetry.retried then
      fail "stats.retried %d <> registry delta %d" stats.Stats.retried
        d.Telemetry.retried
    else if cfg.retries <= 1 && d.Telemetry.retried > 0 then
      fail "retries happened with retries disabled"
    else Ok ()
  in
  Ok ()

let report_of cfg outcomes (d : Telemetry.reading) (stats : Stats.t) =
  let failures = Hashtbl.create 8 in
  let succeeded, degraded =
    List.fold_left
      (fun (ok, dg) (outcome : Batch.outcome) ->
        match outcome with
        | Ok r -> (ok + 1, if r.Diagnose.degraded then dg + 1 else dg)
        | Error e ->
          let l = Err.label e in
          Hashtbl.replace failures l
            (1 + Option.value ~default:0 (Hashtbl.find_opt failures l));
          (ok, dg))
      (0, 0) outcomes
  in
  {
    cases = cfg.jobs;
    succeeded;
    degraded;
    failures =
      Hashtbl.fold (fun l n acc -> (l, n) :: acc) failures []
      |> List.sort compare;
    retried = d.Telemetry.retried;
    respawned = d.Telemetry.respawned;
    requeued = d.Telemetry.requeued;
    shed = stats.Stats.shed;
  }

let run ?(config = default) () =
  let cfg = config in
  let scenarios, jobs = List.split (List.init cfg.jobs (scenario_job cfg)) in
  let before = Telemetry.read () in
  let submitted0 = Metrics.counter_value Telemetry.jobs_total in
  let budget =
    match (cfg.budget_candidates, cfg.budget_wall) with
    | None, None -> None
    | c, w -> Some (Budget.spec ?max_candidates:c ?wall:w ())
  in
  let retry =
    if cfg.retries > 1 then
      Some
        (Batch.retry ~attempts:cfg.retries ~base_delay:0.002 ~max_delay:0.02
           ~seed:cfg.seed ())
    else None
  in
  let breaker = Breaker.create ~threshold:4 ~cooldown:0.05 () in
  let outcomes, stats =
    Batch.run ~workers:cfg.workers ?budget ?retry ~breaker jobs
  in
  let d = Telemetry.delta before (Telemetry.read ()) in
  let submitted = Metrics.counter_value Telemetry.jobs_total - submitted0 in
  let* () = check_invariants cfg ~submitted ~d scenarios outcomes stats in
  Ok (report_of cfg outcomes d stats)

let check ?(config = default) seed =
  match run ~config:{ config with seed } () with
  | Ok _ -> Ok ()
  | Error m -> Error m
