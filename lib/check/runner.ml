module Batch = Flames_engine.Batch
module Diagnose = Flames_core.Diagnose

type section = { name : string; cases : int; failure : string option }

let pair (a : 'a Gen.t) (b : 'b Gen.t) : ('a * 'b) Gen.t =
  {
    Gen.gen =
      (fun rng ->
        let x = a.Gen.gen rng in
        let y = b.Gen.gen rng in
        (x, y));
    shrink =
      (fun (x, y) ->
        List.map (fun x' -> (x', y)) (a.Gen.shrink x)
        @ List.map (fun y' -> (x, y')) (b.Gen.shrink y));
    print = (fun (x, y) -> a.Gen.print x ^ "  |  " ^ b.Gen.print y);
  }

let triple (g : 'a Gen.t) : 'a list Gen.t =
  {
    Gen.gen = (fun rng -> List.init 3 (fun _ -> g.Gen.gen rng));
    shrink =
      (fun xs ->
        (* drop one element, then shrink one element in place *)
        (if List.length xs > 1 then
           List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs
         else [])
        @ List.concat
            (List.mapi
               (fun i x ->
                 List.map
                   (fun x' -> List.mapi (fun j y -> if i = j then x' else y) xs)
                   (g.Gen.shrink x))
               xs));
    print =
      (fun xs -> String.concat "\n--\n" (List.map g.Gen.print xs));
  }

let diagnose_scenario sc =
  let nominal, _faulty = Gen.scenario_netlists sc in
  Diagnose.run nominal (Gen.scenario_observations sc)

let jobs_of_scenarios scs =
  List.mapi
    (fun i sc ->
      let nominal, _ = Gen.scenario_netlists sc in
      Batch.job
        ~label:(Printf.sprintf "job%d" i)
        nominal
        (Gen.scenario_observations sc))
    scs

let run_all ?(seed = 0x464c4d45) ?(log = fun _ -> ()) ~iters () =
  let sections = ref [] in
  let section idx name count g prop =
    let outcome = Gen.run ~seed:(seed + (1000 * idx)) ~count g prop in
    let s =
      match outcome with
      | Gen.Pass n ->
        log (Printf.sprintf "%-22s %d cases ok" name n);
        { name; cases = n; failure = None }
      | Gen.Fail f ->
        let report = Format.asprintf "%a" (Gen.pp_failure g) f in
        log (Printf.sprintf "%-22s FAILED at case %d" name f.Gen.case);
        { name; cases = f.Gen.case; failure = Some report }
    in
    sections := s :: !sections
  in
  let intervals = pair Gen.interval Gen.interval in
  section 0 "hitting-sets" iters Gen.conflict_sets Oracle.check_hitting;
  section 1 "fuzzy-arith" iters intervals Oracle.check_arith;
  section 2 "consistency" iters intervals Oracle.check_consistency;
  section 3 "mna" iters Gen.ladder (fun l ->
      Oracle.check_mna (Gen.netlist_of_ladder l));
  section 4 "atms-audit" iters Gen.atms_spec (fun spec ->
      Invariant.audit_atms (Gen.build_atms spec));
  section 5 "diagnosis-invariants"
    (Int.max 1 (iters / 10))
    Gen.scenario
    (fun sc -> Invariant.audit_result (diagnose_scenario sc));
  section 6 "batch-determinism"
    (Int.max 1 (iters / 200))
    (triple Gen.scenario)
    (fun scs -> Oracle.check_batch (jobs_of_scenarios scs));
  section 7 "env-bitset" iters Gen.id_lists Oracle.check_env;
  section 8 "env-index" iters Gen.weighted_envs Oracle.check_envindex;
  section 9 "session-equivalence"
    (Int.max 1 (iters / 4))
    Gen.session_script Oracle.check_session;
  section 10 "compiled-vs-interp"
    (Int.max 1 (iters / 4))
    Gen.scenario Oracle.check_compiled;
  List.rev !sections

let ok sections = List.for_all (fun s -> s.failure = None) sections

let pp ppf sections =
  List.iter
    (fun s ->
      match s.failure with
      | None -> Format.fprintf ppf "%-22s %5d cases  ok@." s.name s.cases
      | Some report ->
        Format.fprintf ppf "%-22s FAILED after %d cases@.%s@." s.name s.cases
          report)
    sections
