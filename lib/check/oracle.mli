(** Independent reference implementations diffed against the production
    paths.

    Every oracle here is deliberately naive — brute-force enumeration,
    grid integration, textbook elimination — so that it shares no code,
    no algorithm and ideally no failure mode with the implementation it
    checks.  A divergence is reported as [Error message]; the
    verification runner shrinks the triggering input. *)

module Interval = Flames_fuzzy.Interval
module Env = Flames_atms.Env
module Netlist = Flames_circuit.Netlist

(** {1 Minimal hitting sets vs [Atms.Hitting]} *)

val brute_hitting : Env.t list -> Env.t list
(** Enumerate every subset of the mentioned assumptions, keep those that
    hit all conflicts, filter non-minimal ones, and order as
    [Hitting.minimal_hitting_sets] does. *)

val check_hitting : Env.t list -> (unit, string) result

(** {1 Bitset environments vs [Set.Make(Int)]} *)

val check_env : int list list -> (unit, string) result
(** Builds each id list both as a naive int set and as a bitset {!Env}
    and diffs every operation pairwise — to_list, cardinal, mem, choose,
    add, union, inter, diff, subset, disjoint, compare sign, equal — plus
    the interning contract (structural round-trips are physically equal,
    equal envs hash equally) and the signature Bloom property
    ([subset] implies [subset_word] of the signatures). *)

val check_envindex : (int list * float) list -> (unit, string) result
(** Replays the insertion script through {!Flames_atms.Envindex} (with
    the dominance-insert pattern the ATMS call sites use) and through a
    naive linear-scan reference; after every insert the acceptance
    verdict, store size, [max_subset_degree] and [is_dominated] answers
    on all script environments must agree, and the final contents must be
    identical. *)

(** {1 Fuzzy arithmetic vs [Arith]} *)

val naive_add : Interval.t -> Interval.t -> Interval.t
val naive_sub : Interval.t -> Interval.t -> Interval.t
val naive_mul : Interval.t -> Interval.t -> Interval.t
val naive_div : Interval.t -> Interval.t -> Interval.t
(** Alpha-cut interval arithmetic: the result's core and support are
    computed cut-by-cut from the operand endpoints, independently of the
    LR-hull formulas in [Arith].
    @raise Flames_fuzzy.Arith.Undefined like its counterpart. *)

val check_arith : Interval.t * Interval.t -> (unit, string) result
(** Diffs add, sub, mul (always) and div (when the divisor's support
    excludes 0), plus the algebraic guards [a - a ∋ 0] and
    [a + b = b + a]. *)

(** {1 Membership integrals and Dc vs [Piecewise]/[Consistency]} *)

val grid_min_area : ?samples:int -> Interval.t -> Interval.t -> float
(** Midpoint-rule integration of [min (mu a) (mu b)] — O(samples), no
    breakpoint analysis, immune to the jump-at-breakpoint subtleties the
    exact implementation must handle. *)

val grid_dc : measured:Interval.t -> nominal:Interval.t -> float

val check_consistency : Interval.t * Interval.t -> (unit, string) result
(** Diffs [Piecewise.min_area]/[max_area] and [Consistency.dc] against
    the grid versions (within grid tolerance), and checks the Dc range
    and NaN-freeness on both operand orders. *)

(** {1 DC solve vs [Sim.Mna]} *)

val dense_solve : Netlist.t -> (string * float) list
(** Textbook dense nodal analysis of a resistor/voltage-source netlist
    (the shape {!Gen.ladder} produces) with its own Gauss–Jordan
    elimination: node voltages, ground at 0.
    @raise Invalid_argument on unsupported component kinds. *)

val check_mna : Netlist.t -> (unit, string) result

(** {1 Batch engine vs sequential diagnosis} *)

val result_fingerprint : Flames_core.Diagnose.result -> string
(** Canonical rendering of every reported field of a diagnosis with
    hex-exact floats: two results compare equal iff their diagnostic
    content is bit-identical.  Conflict [reason] strings are excluded:
    they record the {e discovery site} of a nogood, which legitimately
    depends on propagation order (incremental vs batch), while the
    nogood itself — environment and degree — does not. *)

val check_batch :
  ?workers:int list -> Flames_engine.Batch.job list -> (unit, string) result
(** Runs the jobs sequentially, then through the pool at each worker
    count (default [[1; 2; 4]]) with a cold cache, and once more warm
    (reusing a pre-filled cache); every outcome must succeed with a
    fingerprint bit-identical to the sequential reference. *)

(** {1 Degraded diagnosis vs full diagnosis} *)

val check_degraded : Gen.scenario -> (unit, string) result
(** The graceful-degradation contract of {!Flames_core.Diagnose.run}:
    re-diagnose the scenario under a candidate quota of half the full
    candidate count and require the result to be flagged [degraded]
    with the [Candidates] trip recorded, and its diagnoses to be a
    non-empty subset (same member sets, same ranks) of the unbudgeted
    run's — sound truncation, never invention.  Scenarios whose full
    diagnosis is healthy (no candidates) pass trivially. *)

(** {1 Compiled schedule vs interpreter} *)

val check_compiled : Gen.scenario -> (unit, string) result
(** The compiled-schedule transparency contract of
    {!Flames_core.Diagnose.run}: diagnosing the scenario with the
    compiled flat schedule ([~use_compiled:true], the default) must be
    {!result_fingerprint}-identical — every symptom verdict, conflict
    degree, fit estimate and ranking, hex-exact — to the interpreter
    run ([~use_compiled:false]).  Checked three ways: the plain run, a
    second run reusing one pre-compiled {!Flames_core.Schedule} (no
    state may leak between runs), and a budget-tripped run under a
    half-quota candidate budget whose degraded flag, recorded trips and
    truncated ranking must also match the interpreter's bit for bit. *)

(** {1 Incremental sessions vs from-scratch diagnosis} *)

val check_session : Gen.session_script -> (unit, string) result
(** The session equivalence contract: replay the script's measurement
    adds, retractions and refinements through a live
    {!Flames_session.Session} and, in parallel, through a plain
    measurement list; after {e every} step the session's
    {!Flames_session.Session.diagnoses} must be
    {!result_fingerprint}-identical to a from-scratch
    [Diagnose.run ~model] over the list.  Exercises the incremental
    observe/run path on adds and the rebuild path on retract/refine. *)
