module Interval = Flames_fuzzy.Interval
module Env = Flames_atms.Env
module Atms = Flames_atms.Atms
module Component = Flames_circuit.Component
module Netlist = Flames_circuit.Netlist
module Fault = Flames_circuit.Fault
module Q = Flames_circuit.Quantity

(* {1 Combinator and runner} *)

type 'a t = {
  gen : Rng.t -> 'a;
  shrink : 'a -> 'a list;
  print : 'a -> string;
}

type 'a failure = {
  seed : int;
  case : int;
  original : 'a;
  shrunk : 'a;
  shrink_steps : int;
  message : string;
}

type 'a outcome = Pass of int | Fail of 'a failure

let max_shrink_steps = 1_000

let run ?(seed = 0) ~count g prop =
  let eval x =
    match prop x with
    | Ok () -> None
    | Error m -> Some m
    | exception e -> Some (Printexc.to_string e)
  in
  let rec cases i =
    if i >= count then Pass count
    else
      let rng = Rng.make (Rng.case_seed ~seed ~case:i) in
      let x = g.gen rng in
      match eval x with
      | None -> cases (i + 1)
      | Some message ->
        let rec shrink_loop cur message steps =
          if steps >= max_shrink_steps then (cur, message, steps)
          else
            match
              List.find_map
                (fun c -> Option.map (fun m -> (c, m)) (eval c))
                (g.shrink cur)
            with
            | Some (c, m) -> shrink_loop c m (steps + 1)
            | None -> (cur, message, steps)
        in
        let shrunk, message, shrink_steps = shrink_loop x message 0 in
        Fail { seed; case = i; original = x; shrunk; shrink_steps; message }
  in
  cases 0

let pp_failure g ppf f =
  Format.fprintf ppf
    "@[<v>counterexample (seed %d, case %d, %d shrink steps):@,\
     %s@,%s@,replay: same seed reruns the identical case@]"
    f.seed f.case f.shrink_steps (g.print f.shrunk) f.message

(* {1 Fuzzy intervals} *)

(* keep generated floats on a coarse lattice so printed counterexamples
   are short and shrinking has natural "rounder" neighbours *)
let quantize x = Float.round (x *. 16.) /. 16.

let interval_of ~m1 ~w ~alpha ~beta =
  Interval.make ~m1 ~m2:(m1 +. w) ~alpha ~beta

let gen_interval rng =
  let m1 = quantize (Rng.range rng (-50.) 50.) in
  let w = if Rng.chance rng 0.25 then 0. else quantize (Rng.float rng 8.) in
  let flank () =
    if Rng.chance rng 0.3 then 0. else quantize (Rng.float rng 4.)
  in
  interval_of ~m1 ~w ~alpha:(flank ()) ~beta:(flank ())

let shrink_interval (v : Interval.t) =
  let m1 = v.Interval.m1
  and w = v.Interval.m2 -. v.Interval.m1
  and alpha = v.Interval.alpha
  and beta = v.Interval.beta in
  let candidates =
    [
      interval_of ~m1:0. ~w ~alpha ~beta;
      interval_of ~m1 ~w:0. ~alpha ~beta;
      interval_of ~m1 ~w ~alpha:0. ~beta;
      interval_of ~m1 ~w ~alpha ~beta:0.;
      interval_of ~m1:(Float.of_int (Float.to_int m1)) ~w ~alpha ~beta;
      interval_of ~m1:(m1 /. 2.) ~w ~alpha ~beta;
      interval_of ~m1 ~w:(quantize (w /. 2.)) ~alpha ~beta;
      interval_of ~m1 ~w ~alpha:(quantize (alpha /. 2.)) ~beta;
      interval_of ~m1 ~w ~alpha ~beta:(quantize (beta /. 2.));
    ]
  in
  List.filter (fun c -> not (Interval.equal ~eps:0. c v)) candidates

let interval =
  { gen = gen_interval; shrink = shrink_interval; print = Interval.to_string }

let gen_positive rng =
  let m1 = 0.5 +. quantize (Rng.float rng 19.) in
  let w = if Rng.chance rng 0.25 then 0. else quantize (Rng.float rng 5.) in
  let alpha =
    if Rng.chance rng 0.3 then 0.
    else quantize (Rng.float rng (Float.max 0.0625 (m1 -. 0.25)))
  in
  let beta = if Rng.chance rng 0.3 then 0. else quantize (Rng.float rng 5.) in
  interval_of ~m1 ~w ~alpha:(Float.min alpha (m1 -. 0.25)) ~beta

let positive_interval =
  {
    gen = gen_positive;
    shrink =
      (fun v ->
        List.filter
          (fun (c : Interval.t) -> c.Interval.m1 -. c.Interval.alpha > 0.)
          (shrink_interval v));
    print = Interval.to_string;
  }

(* {1 Conflict sets} *)

let gen_conflict_sets rng =
  let n = 2 + Rng.int rng 11 in
  let k = Rng.int rng 7 in
  let conflict () =
    if Rng.chance rng 0.03 then Env.empty
    else
      let size = 1 + Rng.int rng (Int.min n 4) in
      let rec draw acc left =
        if left = 0 then acc else draw (Env.add (Rng.int rng n) acc) (left - 1)
      in
      draw Env.empty size
  in
  let rec build acc i =
    if i >= k then List.rev acc
    else if acc <> [] && Rng.chance rng 0.2 then
      (* deliberate duplicate of an earlier conflict *)
      build (Rng.choose rng acc :: acc) (i + 1)
    else build (conflict () :: acc) (i + 1)
  in
  build [] 0

let shrink_conflict_sets conflicts =
  let drop_nth n = List.filteri (fun i _ -> i <> n) conflicts in
  let dropped = List.mapi (fun i _ -> drop_nth i) conflicts in
  let thinned =
    List.concat
      (List.mapi
         (fun i c ->
           Env.fold
             (fun a acc ->
               List.mapi
                 (fun j c' -> if i = j then Env.diff c' (Env.singleton a) else c')
                 conflicts
               :: acc)
             c [])
         conflicts)
  in
  dropped @ thinned

let print_env env =
  "{" ^ String.concat "," (List.map string_of_int (Env.to_list env)) ^ "}"

let conflict_sets =
  {
    gen = gen_conflict_sets;
    shrink = shrink_conflict_sets;
    print =
      (fun cs ->
        if cs = [] then "(no conflicts)"
        else String.concat " " (List.map print_env cs));
  }

(* {1 Raw id lists (bitset Env oracle)} *)

(* Ids deliberately straddle the 63-bit word boundaries (0, 62, 63, 64,
   126, 127, ...) so the oracle exercises multi-word environments and the
   word-edge masks. *)
let env_id_bound = 140

let gen_id_lists rng =
  let k = Rng.int rng 8 in
  let one () =
    let size = Rng.int rng 7 in
    List.init size (fun _ ->
        if Rng.chance rng 0.3 then
          (* cluster on word boundaries *)
          Rng.choose rng [ 0; 1; 61; 62; 63; 64; 65; 125; 126; 127; 128 ]
        else Rng.int rng env_id_bound)
  in
  List.init k (fun _ -> one ())

let shrink_id_lists lists =
  let dropped = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) lists) lists in
  let thinned =
    List.concat
      (List.mapi
         (fun i l ->
           List.mapi
             (fun j _ ->
               List.mapi
                 (fun i' l' ->
                   if i = i' then List.filteri (fun j' _ -> j' <> j) l' else l')
                 lists)
             l)
         lists)
  in
  dropped @ thinned

let print_id_lists lists =
  String.concat " "
    (List.map
       (fun l -> "[" ^ String.concat "," (List.map string_of_int l) ^ "]")
       lists)

let id_lists =
  { gen = gen_id_lists; shrink = shrink_id_lists; print = print_id_lists }

(* (ids, degree) scripts for the Envindex dominance oracle; degrees on a
   1/16 lattice so both implementations compare them exactly. *)
let gen_weighted_envs rng =
  let k = Rng.int rng 14 in
  List.init k (fun _ ->
      let size = Rng.int rng 5 in
      let ids =
        List.init size (fun _ ->
            if Rng.chance rng 0.25 then
              Rng.choose rng [ 0; 62; 63; 64; 126; 127 ]
            else Rng.int rng 24)
      in
      let degree = Float.of_int (1 + Rng.int rng 16) /. 16. in
      (ids, degree))

let shrink_weighted_envs script =
  let dropped =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) script) script
  in
  let weakened =
    List.mapi
      (fun i _ ->
        List.mapi
          (fun j (ids, d) -> if i = j then (ids, 1.) else (ids, d))
          script)
      script
  in
  dropped @ weakened

let print_weighted_envs script =
  String.concat " "
    (List.map
       (fun (ids, d) ->
         Printf.sprintf "{%s}@%g"
           (String.concat "," (List.map string_of_int ids))
           d)
       script)

let weighted_envs =
  {
    gen = gen_weighted_envs;
    shrink = shrink_weighted_envs;
    print = print_weighted_envs;
  }

(* {1 ATMS justification networks} *)

type clause = { antecedents : int list; target : int option; degree : float }

type atms_spec = {
  n_assumptions : int;
  n_nodes : int;
  clauses : clause list;
  premises : int list;
}

let gen_atms_spec rng =
  let n_assumptions = 1 + Rng.int rng 5 in
  let n_nodes = 1 + Rng.int rng 6 in
  let n_clauses = 1 + Rng.int rng 9 in
  let clause () =
    let target = if Rng.chance rng 0.25 then None else Some (Rng.int rng n_nodes) in
    let horizon =
      (* antecedents must reference assumptions or strictly earlier nodes *)
      match target with
      | Some j -> n_assumptions + j
      | None -> n_assumptions + n_nodes
    in
    let n_ante = 1 + Rng.int rng 3 in
    let antecedents =
      List.init n_ante (fun _ -> Rng.int rng (Int.max 1 horizon))
      |> List.sort_uniq Int.compare
    in
    let degree = 0.25 +. (Float.of_int (Rng.int rng 76) /. 100.) in
    { antecedents; target; degree }
  in
  let clauses = List.init n_clauses (fun _ -> clause ()) in
  let premises = if Rng.chance rng 0.2 then [ Rng.int rng n_nodes ] else [] in
  { n_assumptions; n_nodes; clauses; premises }

let shrink_atms_spec spec =
  let drop_clause =
    List.mapi
      (fun i _ ->
        { spec with clauses = List.filteri (fun j _ -> j <> i) spec.clauses })
      spec.clauses
  in
  let full_degree =
    if List.exists (fun c -> c.degree < 1.) spec.clauses then
      [
        {
          spec with
          clauses = List.map (fun c -> { c with degree = 1. }) spec.clauses;
        };
      ]
    else []
  in
  let no_premises =
    if spec.premises <> [] then [ { spec with premises = [] } ] else []
  in
  drop_clause @ full_degree @ no_premises

let print_atms_spec spec =
  let clause c =
    Printf.sprintf "[%s] ->%s @%.2f"
      (String.concat ","
         (List.map
            (fun a ->
              if a < spec.n_assumptions then Printf.sprintf "a%d" a
              else Printf.sprintf "n%d" (a - spec.n_assumptions))
            c.antecedents))
      (match c.target with Some j -> Printf.sprintf " n%d" j | None -> " \xe2\x8a\xa5")
      c.degree
  in
  Printf.sprintf "atms(%d assumptions, %d nodes): %s%s" spec.n_assumptions
    spec.n_nodes
    (String.concat "; " (List.map clause spec.clauses))
    (match spec.premises with
    | [] -> ""
    | ps ->
      "; premises: "
      ^ String.concat "," (List.map (Printf.sprintf "n%d") ps))

let build_atms spec =
  let atms = Atms.create () in
  let assumptions =
    Array.init spec.n_assumptions (fun i ->
        Atms.assumption atms (Printf.sprintf "a%d" i))
  in
  let nodes =
    Array.init spec.n_nodes (fun i -> Atms.node atms (Printf.sprintf "n%d" i))
  in
  let resolve a =
    if a < spec.n_assumptions then assumptions.(a)
    else nodes.((a - spec.n_assumptions) mod spec.n_nodes)
  in
  List.iter
    (fun c ->
      let antecedents = List.map resolve c.antecedents in
      let target =
        match c.target with
        | Some j -> nodes.(j mod spec.n_nodes)
        | None -> Atms.contradiction atms
      in
      Atms.justify atms ~degree:c.degree ~antecedents target)
    spec.clauses;
  List.iter (fun j -> Atms.premise atms nodes.(j mod spec.n_nodes)) spec.premises;
  atms

let atms_spec =
  { gen = gen_atms_spec; shrink = shrink_atms_spec; print = print_atms_spec }

(* {1 Circuit scenarios} *)

type rung = { series : float; shunt : float option }

type ladder = {
  source : float;
  tolerance : float;
  imprecision : float;
  rungs : rung list;
}

type fault_spec = { rung : int; on_shunt : bool; mode : Fault.mode }
type scenario = { ladder : ladder; fault : fault_spec option; probes : int list }

let resistor_values =
  [ 100.; 220.; 470.; 1000.; 2200.; 4700.; 10_000.; 22_000. ]

let source_values = [ 1.5; 3.3; 5.; 9.; 12.; 15. ]
let tolerance_values = [ 0.001; 0.005; 0.01; 0.02; 0.05 ]
let imprecision_values = [ 0.; 0.002; 0.005; 0.01 ]
let default_rung = { series = 1000.; shunt = Some 1000. }

(* The last rung must end in a shunt, otherwise its node dangles; repair
   rather than reject so every shrink candidate stays well-formed. *)
let fix_ladder l =
  let rungs = if l.rungs = [] then [ default_rung ] else l.rungs in
  let rec fix_last = function
    | [] -> []
    | [ last ] ->
      [ (match last.shunt with
        | Some _ -> last
        | None -> { last with shunt = Some last.series }) ]
    | r :: rest -> r :: fix_last rest
  in
  { l with rungs = fix_last rungs }

let gen_ladder rng =
  let k = 1 + Rng.int rng 4 in
  let rung () =
    {
      series = Rng.choose rng resistor_values;
      shunt =
        (if Rng.chance rng 0.7 then Some (Rng.choose rng resistor_values)
         else None);
    }
  in
  fix_ladder
    {
      source = Rng.choose rng source_values;
      tolerance = Rng.choose rng tolerance_values;
      imprecision = Rng.choose rng imprecision_values;
      rungs = List.init k (fun _ -> rung ());
    }

let shrink_ladder l =
  let simpler_rung i =
    List.mapi
      (fun j r ->
        if i <> j then r
        else if r.series <> 1000. then { r with series = 1000. }
        else
          match r.shunt with
          | Some s when s <> 1000. -> { r with shunt = Some 1000. }
          | Some _ | None -> r)
      l.rungs
  in
  let drop_last =
    match l.rungs with
    | [] | [ _ ] -> []
    | rungs -> [ { l with rungs = List.filteri (fun i _ -> i < List.length rungs - 1) rungs } ]
  in
  let drop_shunts =
    if List.exists (fun r -> r.shunt <> None) l.rungs then
      [ { l with rungs = List.map (fun r -> { r with shunt = None }) l.rungs } ]
    else []
  in
  let simpler =
    List.filteri (fun i _ -> i < List.length l.rungs) l.rungs
    |> List.mapi (fun i _ -> { l with rungs = simpler_rung i })
    |> List.filter (fun l' -> l'.rungs <> l.rungs)
  in
  let plain =
    List.filter_map
      (fun l' -> if l' = l then None else Some l')
      [
        { l with source = 5. };
        { l with tolerance = 0.01 };
        { l with imprecision = 0. };
      ]
  in
  List.map fix_ladder (drop_last @ drop_shunts @ simpler @ plain)

let print_rung r =
  match r.shunt with
  | Some s -> Printf.sprintf "%g|%g" r.series s
  | None -> Printf.sprintf "%g|-" r.series

let print_ladder l =
  Printf.sprintf "ladder V=%g tol=%g imp=%g rungs=[%s]" l.source l.tolerance
    l.imprecision
    (String.concat "; " (List.map print_rung l.rungs))

let ladder = { gen = gen_ladder; shrink = shrink_ladder; print = print_ladder }

let nodes_of_ladder l = List.init (List.length l.rungs + 1) (Printf.sprintf "n%d")

let netlist_of_ladder l =
  let l = fix_ladder l in
  let tol v = Interval.around v ~rel:l.tolerance in
  let components =
    Component.vsource "vs" ~volts:(tol l.source) ~p:"n0" ~n:"gnd"
    :: List.concat
         (List.mapi
            (fun i r ->
              let i = i + 1 in
              let series =
                Component.resistor
                  (Printf.sprintf "r%d" i)
                  ~ohms:(tol r.series)
                  ~p:(Printf.sprintf "n%d" (i - 1))
                  ~n:(Printf.sprintf "n%d" i)
              in
              match r.shunt with
              | Some s ->
                [
                  series;
                  Component.resistor
                    (Printf.sprintf "s%d" i)
                    ~ohms:(tol s)
                    ~p:(Printf.sprintf "n%d" i)
                    ~n:"gnd";
                ]
              | None -> [ series ])
            l.rungs)
  in
  Netlist.make ~name:"gen-ladder" ~ground:"gnd" components

(* clamp the spec's references into the (possibly shrunk) ladder *)
let normalize s =
  let l = fix_ladder s.ladder in
  let k = List.length l.rungs in
  let fault =
    Option.map
      (fun f ->
        let rung = Int.min f.rung (k - 1) in
        let has_shunt = (List.nth l.rungs rung).shunt <> None in
        { f with rung; on_shunt = f.on_shunt && has_shunt })
      s.fault
  in
  let probes =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun p -> if p >= 0 && p <= k then Some p else None)
         s.probes)
  in
  let probes = if probes = [] then [ k ] else probes in
  { ladder = l; fault; probes }

let gen_scenario rng =
  let l = gen_ladder rng in
  let k = List.length l.rungs in
  let fault =
    if Rng.chance rng 0.65 then
      let rung = Rng.int rng k in
      let target = List.nth l.rungs rung in
      let on_shunt = target.shunt <> None && Rng.bool rng in
      let nominal =
        if on_shunt then Option.get target.shunt else target.series
      in
      let mode =
        match Rng.int rng 5 with
        | 0 -> Fault.Short
        | 1 -> Fault.Open
        | 2 -> Fault.Low
        | 3 -> Fault.High
        | _ ->
          Fault.Shifted
            (Float.round (nominal *. (0.3 +. Rng.float rng 2.7)))
      in
      Some { rung; on_shunt; mode }
    else None
  in
  let probes =
    let all = List.init (k + 1) Fun.id in
    List.filter (fun _ -> Rng.chance rng 0.5) all
  in
  normalize { ladder = l; fault; probes }

let shrink_scenario s =
  let without_fault =
    match s.fault with Some _ -> [ { s with fault = None } ] | None -> []
  in
  let milder_fault =
    match s.fault with
    | Some ({ mode = Fault.Short | Fault.Open | Fault.Shifted _; _ } as f) ->
      [ { s with fault = Some { f with mode = Fault.Low } } ]
    | Some _ | None -> []
  in
  let fewer_probes =
    if List.length s.probes > 1 then
      List.mapi (fun i _ -> { s with probes = List.filteri (fun j _ -> j <> i) s.probes }) s.probes
    else []
  in
  let smaller_ladder =
    List.map (fun l -> { s with ladder = l }) (shrink_ladder s.ladder)
  in
  List.map normalize
    (without_fault @ smaller_ladder @ fewer_probes @ milder_fault)

let fault_component s f =
  Printf.sprintf "%s%d" (if f.on_shunt then "s" else "r") (f.rung + 1)
  |> fun name -> ignore s; name

let print_scenario s =
  let fault =
    match s.fault with
    | None -> "none"
    | Some f ->
      Format.asprintf "%s.R %a" (fault_component s f) Fault.pp_mode f.mode
  in
  Printf.sprintf "%s fault=%s probes=[%s]" (print_ladder s.ladder) fault
    (String.concat ","
       (List.map (Printf.sprintf "n%d") s.probes))

let scenario_netlists s =
  let s = normalize s in
  let nominal = netlist_of_ladder s.ladder in
  let faulty =
    match s.fault with
    | None -> nominal
    | Some f ->
      Fault.inject nominal
        (Fault.make ~component:(fault_component s f) ~parameter:"R" f.mode)
  in
  (nominal, faulty)

let scenario_observations s =
  let s = normalize s in
  let _, faulty = scenario_netlists s in
  let sol = Flames_sim.Mna.solve faulty in
  let instrument =
    { Flames_sim.Measure.relative = s.ladder.imprecision; floor = 5e-4 }
  in
  Flames_sim.Measure.probe_all ~instrument sol
    (List.map (fun i -> Q.voltage (Printf.sprintf "n%d" i)) s.probes)

let scenario =
  { gen = gen_scenario; shrink = shrink_scenario; print = print_scenario }

(* {1 Session scripts} *)

(* All probeable nodes of the (faulty) scenario, measured with its
   instrument: the pool session ops draw from.  Unlike
   [scenario_observations] this ignores the scenario's probe subset —
   the script decides what gets measured, and when. *)
let session_pool s =
  let s = normalize s in
  let _, faulty = scenario_netlists s in
  let sol = Flames_sim.Mna.solve faulty in
  let instrument =
    { Flames_sim.Measure.relative = s.ladder.imprecision; floor = 5e-4 }
  in
  Flames_sim.Measure.probe_all ~instrument sol
    (List.map Q.voltage (nodes_of_ladder s.ladder))

type session_op = S_add of int | S_retract of int | S_refine of int
type session_script = { base : scenario; ops : session_op list }

(* Ops carry raw indices that the interpreter reduces modulo the live
   state (pool size / measurement count), so any op list is well-formed
   on any scenario and shrinking never has to repair references. *)
let gen_session_script rng =
  let base = gen_scenario rng in
  let nodes = List.length base.ladder.rungs + 1 in
  let n_ops = 1 + Rng.int rng 7 in
  let op () =
    let p = Rng.float rng 1. in
    if p < 0.6 then S_add (Rng.int rng nodes)
    else if p < 0.8 then S_retract (Rng.int rng 8)
    else S_refine (Rng.int rng 8)
  in
  { base; ops = List.init n_ops (fun _ -> op ()) }

let shrink_session_script s =
  let fewer_ops =
    if List.length s.ops > 1 then
      List.mapi
        (fun i _ -> { s with ops = List.filteri (fun j _ -> j <> i) s.ops })
        s.ops
    else []
  in
  let adds_only =
    if List.exists (function S_add _ -> false | _ -> true) s.ops then
      [
        {
          s with
          ops = List.filter (function S_add _ -> true | _ -> false) s.ops;
        };
      ]
    else []
  in
  let smaller_base =
    List.map (fun base -> { s with base }) (shrink_scenario s.base)
  in
  fewer_ops @ adds_only @ smaller_base

let print_session_op = function
  | S_add i -> Printf.sprintf "add#%d" i
  | S_retract i -> Printf.sprintf "retract#%d" i
  | S_refine i -> Printf.sprintf "refine#%d" i

let print_session_script s =
  Printf.sprintf "%s ops=[%s]" (print_scenario s.base)
    (String.concat "; " (List.map print_session_op s.ops))

let session_script =
  {
    gen = gen_session_script;
    shrink = shrink_session_script;
    print = print_session_script;
  }
