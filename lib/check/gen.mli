(** Seeded random generation of well-formed verification scenarios, with
    shrinking toward minimal failing cases.

    Generators are deterministic functions of a {!Rng.t} stream; a run is
    fully reproduced by its [(seed, case)] pair.  Each generated value is
    a {e spec} (a plain description) from which the concrete artefact —
    netlist, fault injection, measurement set — is rebuilt, so shrinking
    operates on the spec and every shrink candidate is well-formed by
    construction. *)

module Interval = Flames_fuzzy.Interval
module Env = Flames_atms.Env
module Netlist = Flames_circuit.Netlist
module Fault = Flames_circuit.Fault

(** {1 Generator combinator} *)

type 'a t = {
  gen : Rng.t -> 'a;
  shrink : 'a -> 'a list;  (** smaller candidates, most aggressive first *)
  print : 'a -> string;
}

type 'a failure = {
  seed : int;  (** seed of the whole run *)
  case : int;  (** failing case number within the run *)
  original : 'a;
  shrunk : 'a;
  shrink_steps : int;
  message : string;  (** why the property failed on [shrunk] *)
}

type 'a outcome = Pass of int  (** cases run *) | Fail of 'a failure

val run :
  ?seed:int -> count:int -> 'a t -> ('a -> (unit, string) result) -> 'a outcome
(** [run ~count gen prop] draws [count] cases and checks [prop] on each
    (an exception counts as a failure).  On the first failure the case is
    greedily shrunk while the property keeps failing, and the {!failure}
    records both the original and the shrunk value.  Re-running with the
    reported [seed] reproduces the identical failure; the failing case
    alone replays via [Rng.case_seed]. *)

val pp_failure : 'a t -> Format.formatter -> 'a failure -> unit
(** Human-readable report: seed, case number, shrink count, the shrunk
    counterexample (via the generator's printer) and the message. *)

(** {1 Fuzzy intervals} *)

val interval : Interval.t t
(** General trapezoids, including crisp-edged (zero-flank), degenerate
    point and zero-width-core shapes. *)

val positive_interval : Interval.t t
(** Trapezoids whose support stays strictly positive (divisor-safe). *)

(** {1 ATMS conflict sets} *)

val conflict_sets : Env.t list t
(** Random conflict sets over up to 12 assumptions, deliberately
    including duplicate conflicts, subset pairs and (rarely) the empty
    conflict. *)

(** {1 Raw environment scripts (bitset oracle)} *)

val id_lists : int list list t
(** Lists of raw assumption ids (possibly with duplicates), biased toward
    the 63-bit word boundaries (62, 63, 64, 126, 127...), for diffing the
    bitset {!Flames_atms.Env} against a naive [Set.Make(Int)]. *)

val weighted_envs : (int list * float) list t
(** Insertion scripts of (ids, degree) pairs — degrees on a 1/16 lattice
    for exact comparison — for diffing {!Flames_atms.Envindex} dominance
    queries against a naive linear-scan reference. *)

(** {1 ATMS justification networks} *)

type clause = {
  antecedents : int list;
      (** indices: [0 .. n_assumptions-1] name assumptions, larger values
          name derived nodes (offset by [n_assumptions]), always earlier
          than the clause's own target so the network is a DAG *)
  target : int option;  (** derived-node index, [None] = contradiction *)
  degree : float;
}

type atms_spec = {
  n_assumptions : int;
  n_nodes : int;
  clauses : clause list;
  premises : int list;  (** derived-node indices promoted to premises *)
}

val atms_spec : atms_spec t

val build_atms : atms_spec -> Flames_atms.Atms.t
(** Replay the spec into a live ATMS (assumptions, justifications and
    premises installed in order). *)

(** {1 Circuit scenarios} *)

type rung = { series : float;  (** ohms *) shunt : float option }

type ladder = {
  source : float;  (** volts *)
  tolerance : float;  (** relative component tolerance *)
  imprecision : float;  (** relative instrument imprecision *)
  rungs : rung list;  (** at least one; the last always has a shunt *)
}

type fault_spec = {
  rung : int;
  on_shunt : bool;
  mode : Fault.mode;
}

type scenario = {
  ladder : ladder;
  fault : fault_spec option;
  probes : int list;  (** indices of probed ladder nodes *)
}

val ladder : ladder t
(** Random R/V ladder networks: a source driving a chain of series
    resistors with shunt resistors to ground — always connected, grounded
    and solvable. *)

val scenario : scenario t
(** A ladder plus an optional fault injection and a non-empty probe set. *)

val netlist_of_ladder : ladder -> Netlist.t
val nodes_of_ladder : ladder -> string list
(** The probeable (non-ground) node names, source side first. *)

val scenario_netlists : scenario -> Netlist.t * Netlist.t
(** [(nominal, faulty)]; equal when the scenario has no fault. *)

val scenario_observations :
  scenario -> (Flames_circuit.Quantity.t * Interval.t) list
(** Probe the faulty circuit's simulated operating point at the
    scenario's probes with its instrument imprecision. *)

(** {1 Incremental session scripts} *)

type session_op =
  | S_add of int  (** measure the ladder node with this index *)
  | S_retract of int  (** retract the n-th surviving measurement *)
  | S_refine of int  (** halve the flanks of the n-th measurement *)

type session_script = {
  base : scenario;  (** the circuit, fault and instrument *)
  ops : session_op list;
}

val session_pool :
  scenario -> (Flames_circuit.Quantity.t * Interval.t) list
(** Every probeable node of the scenario's faulty circuit measured with
    its instrument — the pool session [S_add] ops draw from (indices
    reduced modulo its length), independent of the scenario's probe
    subset. *)

val session_script : session_script t
(** A scenario plus a random measurement/retraction/refinement sequence.
    Op indices are reduced modulo the live state by the interpreter
    ({!Oracle.check_session}), so every op list is well-formed on every
    (shrunk) scenario; retract/refine ops on an empty session are
    no-ops. *)

val print_session_op : session_op -> string
