(** Golden snapshot corpus for the paper's three-stage-amplifier
    experiments.

    Each entry renders one experiment deterministically — the fig-6 bias
    point, the fig-7 defect table, the entropy-ordered test proposals of
    section 8 — to a text file.  [check] re-renders and diffs against the
    files on disk, so any behavioural drift in the diagnosis pipeline
    shows up as a corpus failure with the first differing line. *)

type status =
  | Match
  | Drift of string  (** first differing line, rendered vs golden *)
  | Missing  (** no golden file on disk yet *)

type report = { file : string; status : status }

val entries : string list
(** File names of the corpus, in rendering order. *)

val write : dir:string -> string list
(** Render every entry into [dir] (created if needed); returns the paths
    written. *)

val check : dir:string -> report list
val ok : report list -> bool
val pp_report : Format.formatter -> report -> unit
