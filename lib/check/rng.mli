(** Deterministic pseudo-random stream for the verification layer.

    A self-contained splitmix64 generator: the stream depends only on the
    integer seed, never on any global state, OCaml version or platform
    word order, so every failure report's [(seed, case)] pair replays the
    exact same scenario forever.  (The stdlib [Random] is avoided on
    purpose: its algorithm is not part of its interface contract.) *)

type t

val make : int -> t
(** Fresh stream from a seed. *)

val case_seed : seed:int -> case:int -> int
(** The derived seed of one numbered case of a run: mixing rather than
    sequential draws, so any case replays without generating its
    predecessors. *)

val bits64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly in [[0, bound)]. *)

val range : t -> float -> float -> float
(** Uniform draw in [[lo, hi)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a list -> 'a
(** Uniform pick. @raise Invalid_argument on an empty list. *)
