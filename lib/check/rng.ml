(* Splitmix64 (Steele, Lea & Flood 2014): tiny, full-period, and entirely
   specified by these few lines — the reproducibility contract of the
   whole verification layer rests on this function never changing. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let case_seed ~seed ~case =
  let s = Int64.add (Int64.of_int seed) (Int64.mul golden (Int64.of_int (case + 1))) in
  Int64.to_int (mix s)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  let mask = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float mask /. 9007199254740992. *. bound

let range t lo hi = lo +. float t (hi -. lo)
let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t p = float t 1. < p

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))
