(** Seeded chaos harness for the resilience layer.

    Builds a batch of random ladder diagnoses ({!Gen.scenario}) and
    injects faults into the job bodies through the {!Flames_engine.Batch}
    prelude hook — exceptions, worker kills ({!Flames_engine.Pool.Kill_worker}),
    genuinely singular systems through the production solver, NaN
    measurements, delays — then runs the batch with budgets, retry and a
    circuit breaker, and asserts the resilience invariants:

    - every job yields exactly one outcome (no hung await, promises all
      resolve) and the succeeded/failed split accounts for all of them;
    - the metrics registry accounts for every submission: one per job
      plus one per retry (requeues and sheds submit nothing);
    - every failure is a structured {!Flames_core.Err.t} of a kind that
      was actually injectable under the configuration;
    - degraded results are sound subsets of the corresponding full
      (unbudgeted) diagnosis — candidates are truncated, never invented;
    - supervision bookkeeping: respawns only with kills injected,
      requeues never exceed respawns, stats agree with the registry.

    Everything is a deterministic function of [config.seed]: a failure
    replays forever from its seed (see [Rng.case_seed]). *)

type config = {
  seed : int;
  jobs : int;
  workers : int;
  p_raise : float;  (** injected exception at job start *)
  p_kill : float;  (** worker-domain kill at job start *)
  p_singular : float;  (** forced singular solve *)
  p_nan : float;  (** NaN measurement (Interval.Invalid) *)
  p_delay : float;  (** small sleep, to shuffle scheduling *)
  budget_candidates : int option;  (** per-attempt candidate quota *)
  budget_wall : float option;  (** per-attempt wall budget (seconds) *)
  retries : int;  (** max attempts per job ([<= 1] disables retry) *)
}

val default : config
(** 16 jobs on 3 workers, every fault kind enabled, candidate quota 1,
    3 attempts. *)

type report = {
  cases : int;
  succeeded : int;
  degraded : int;  (** successes flagged degraded *)
  failures : (string * int) list;  (** error label → count, sorted *)
  retried : int;
  respawned : int;
  requeued : int;
  shed : int;
}

val pp_report : Format.formatter -> report -> unit

val run : ?config:config -> unit -> (report, string) result
(** One chaos batch; [Error] describes the first violated invariant. *)

val check : ?config:config -> int -> (unit, string) result
(** [check seed] — {!run} with the seed substituted; the property-suite
    entry point (one seeded case per call). *)

val check_session : ?config:config -> int -> (unit, string) result
(** Mid-session fault injection: replays a random {!Gen.session_script}
    through a live {!Flames_session.Session} whose [fault_point] raises
    between steps with probability 0.35.  Asserts that

    - a faulted mutation is transactional — the measurement list is
      untouched, nothing half-applies;
    - after any number of mid-session faults the session still answers,
      bit-identically to a from-scratch diagnosis of its surviving
      measurements;
    - under [config.budget_candidates], a budget-tripped {e session}
      diagnosis is a sound subset of the full ranking (candidates
      truncated, never invented), deterministic on re-query (degraded
      results are not cached), and the session keeps accepting
      measurements afterwards. *)

val check_crash : ?config:config -> int -> (unit, string) result
(** Crash injection against the session journal: run a random
    {!Gen.session_script} through a journaled session (every acknowledged
    mutation appended as a {!Flames_store.Record}), then damage the
    segment the way a [kill -9] mid-write would — truncate exactly at a
    seeded frame boundary, truncate {e inside} a seeded frame (torn
    tail), or flip a payload/checksum bit (CRC corruption) — restart by
    running {!Flames_store.Journal.recover} over the damaged directory,
    and assert the recovery invariants:

    - exactly the clean prefix of records before the damage is applied,
      nothing dropped, with the torn-tail / corrupt-frame / skipped-byte
      accounting matching the injected shape exactly;
    - the recovered session carries the same surviving measurement list
      (ids, quantities and intervals bit-exact through the codec) and
      the same id counter as the pre-crash session held after that
      prefix;
    - the equivalence oracle holds across the restart: the recovered
      session's diagnosis is {!Oracle.result_fingerprint}-identical to a
      from-scratch run over the surviving measurements. *)
