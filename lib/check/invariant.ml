module Atms = Flames_atms.Atms
module Env = Flames_atms.Env
module Candidates = Flames_atms.Candidates
module Consistency = Flames_fuzzy.Consistency
module Diagnose = Flames_core.Diagnose
module Propagate = Flames_core.Propagate
module SS = Set.Make (String)

let audit_atms t =
  match Atms.audit t with
  | [] -> Ok ()
  | violations -> Error (String.concat "; " violations)

let finite x = x -. x = 0.

let collect checks =
  match List.filter_map Fun.id checks with
  | [] -> Ok ()
  | problems -> Error (String.concat "; " problems)

let check_symptom (s : Diagnose.symptom) =
  let q = Flames_circuit.Quantity.to_string s.Diagnose.quantity in
  let verdict_ok =
    match s.Diagnose.verdict with
    | None -> None
    | Some v ->
      if (not (finite v.Consistency.dc)) || v.Consistency.dc < 0.
         || v.Consistency.dc > 1.
      then Some (Printf.sprintf "%s: Dc %g outside [0, 1]" q v.Consistency.dc)
      else None
  in
  let signed_ok =
    match s.Diagnose.signed_dc with
    | None -> None
    | Some d ->
      if (not (finite d)) || d < -1. || d > 1. then
        Some (Printf.sprintf "%s: signed Dc %g outside [-1, 1]" q d)
      else begin
        match s.Diagnose.verdict with
        | Some { Consistency.direction = Consistency.Low; _ } when d >= 0. ->
          Some (Printf.sprintf "%s: Low deviation with signed Dc %g >= 0" q d)
        | Some { Consistency.direction = Consistency.High; _ } when d <= 0. ->
          Some (Printf.sprintf "%s: High deviation with signed Dc %g <= 0" q d)
        | Some { Consistency.direction = Consistency.Within; _ } when d < 0. ->
          Some (Printf.sprintf "%s: Within verdict with signed Dc %g < 0" q d)
        | _ -> None
      end
  in
  List.filter_map Fun.id [ verdict_ok; signed_ok ]

let audit_result (r : Diagnose.result) =
  let name = Propagate.names r.Diagnose.engine in
  let conflict_names =
    List.map
      (fun (c : Candidates.conflict) ->
        SS.of_list (List.map name (Env.to_list c.Candidates.env)))
      r.Diagnose.conflicts
  in
  let suspicion_of component =
    List.fold_left2
      (fun acc (c : Candidates.conflict) names ->
        if SS.mem component names then Float.max acc c.Candidates.degree
        else acc)
      0. r.Diagnose.conflicts conflict_names
  in
  let symptom_problems = List.concat_map check_symptom r.Diagnose.symptoms in
  let conflict_problems =
    List.filter_map
      (fun (c : Candidates.conflict) ->
        if (not (finite c.Candidates.degree)) || c.Candidates.degree <= 0.
           || c.Candidates.degree > 1.
        then
          Some
            (Printf.sprintf "conflict %s: degree %g outside (0, 1]"
               c.Candidates.reason c.Candidates.degree)
        else None)
      r.Diagnose.conflicts
  in
  let rec sorted_desc = function
    | (a : Diagnose.suspect) :: (b :: _ as rest) ->
      if a.Diagnose.suspicion +. 1e-12 < b.Diagnose.suspicion then
        Some
          (Printf.sprintf "suspects out of order: %s@%g before %s@%g"
             a.Diagnose.component a.Diagnose.suspicion b.Diagnose.component
             b.Diagnose.suspicion)
      else sorted_desc rest
    | _ -> None
  in
  let suspect_problems =
    Option.to_list (sorted_desc r.Diagnose.suspects)
    @ List.filter_map
        (fun (s : Diagnose.suspect) ->
          let expected = suspicion_of s.Diagnose.component in
          if Float.abs (expected -. s.Diagnose.suspicion) > 1e-9 then
            Some
              (Printf.sprintf
                 "suspect %s: suspicion %g but max conflict degree %g"
                 s.Diagnose.component s.Diagnose.suspicion expected)
          else None)
        r.Diagnose.suspects
  in
  let diag_sets =
    List.map (fun (members, _) -> SS.of_list members) r.Diagnose.diagnoses
  in
  let show set = String.concat "," (SS.elements set) in
  let diagnosis_problems =
    List.concat
      (List.map2
         (fun (members, rank) set ->
           let hits =
             List.for_all
               (fun c -> not (SS.disjoint set c))
               conflict_names
           in
           let minimal =
             not
               (List.exists
                  (fun other ->
                    (not (SS.equal other set)) && SS.subset other set)
                  diag_sets)
           in
           let expected_rank =
             List.fold_left
               (fun acc m -> Float.min acc (suspicion_of m))
               Float.infinity members
           in
           List.filter_map Fun.id
             [
               (if hits then None
                else
                  Some
                    (Printf.sprintf "diagnosis {%s} misses a conflict"
                       (show set)));
               (if minimal then None
                else
                  Some
                    (Printf.sprintf "diagnosis {%s} is not minimal" (show set)));
               (if members <> []
                   && Float.abs (expected_rank -. rank) > 1e-9
                then
                  Some
                    (Printf.sprintf
                       "diagnosis {%s}: rank %g but min member suspicion %g"
                       (show set) rank expected_rank)
                else None);
             ])
         r.Diagnose.diagnoses diag_sets)
  in
  let rec diag_order = function
    | (ma, ra) :: ((mb, rb) :: _ as rest) ->
      if ra +. 1e-12 < rb then
        Some
          (Printf.sprintf "diagnoses out of order: rank %g before rank %g" ra
             rb)
      else if Float.abs (ra -. rb) <= 1e-12
              && List.length ma > List.length mb then
        Some
          (Printf.sprintf
             "diagnoses out of order: size %d before size %d at rank %g"
             (List.length ma) (List.length mb) ra)
      else diag_order rest
    | _ -> None
  in
  let single_problems =
    List.filter_map
      (fun (component, degree) ->
        if
          not
            (List.for_all (fun c -> SS.mem component c) conflict_names)
        then
          Some
            (Printf.sprintf "single fault %s absent from some conflict"
               component)
        else if Float.abs (degree -. suspicion_of component) > 1e-9 then
          Some
            (Printf.sprintf "single fault %s: degree %g but suspicion %g"
               component degree (suspicion_of component))
        else None)
      r.Diagnose.single_faults
  in
  collect
    (List.map Option.some symptom_problems
    @ List.map Option.some conflict_problems
    @ List.map Option.some suspect_problems
    @ List.map Option.some diagnosis_problems
    @ [ diag_order r.Diagnose.diagnoses ]
    @ List.map Option.some single_problems)
