module Interval = Flames_fuzzy.Interval
module Arith = Flames_fuzzy.Arith
module Piecewise = Flames_fuzzy.Piecewise
module Consistency = Flames_fuzzy.Consistency
module Env = Flames_atms.Env
module Hitting = Flames_atms.Hitting
module Component = Flames_circuit.Component
module Netlist = Flames_circuit.Netlist
module Mna = Flames_sim.Mna
module Diagnose = Flames_core.Diagnose
module Batch = Flames_engine.Batch
module Cache = Flames_engine.Cache

(* {1 Minimal hitting sets} *)

let by_size a b =
  let c = Int.compare (Env.cardinal a) (Env.cardinal b) in
  if c <> 0 then c else Env.compare a b

let brute_hitting conflicts =
  let conflicts = List.sort_uniq Env.compare conflicts in
  if conflicts = [] then [ Env.empty ]
  else if List.exists Env.is_empty conflicts then []
  else begin
    let universe =
      Env.to_list (List.fold_left Env.union Env.empty conflicts)
    in
    let arr = Array.of_list universe in
    let n = Array.length arr in
    if n > 20 then invalid_arg "brute_hitting: universe too large";
    let hits env = List.for_all (fun c -> not (Env.disjoint env c)) conflicts in
    let all = ref [] in
    for mask = 0 to (1 lsl n) - 1 do
      let env = ref Env.empty in
      for b = 0 to n - 1 do
        if mask land (1 lsl b) <> 0 then env := Env.add arr.(b) !env
      done;
      if hits !env then all := !env :: !all
    done;
    let hitting = !all in
    List.filter
      (fun e ->
        not
          (List.exists
             (fun f -> (not (Env.equal f e)) && Env.subset f e)
             hitting))
      hitting
    |> List.sort by_size
  end

let print_envs envs =
  String.concat " "
    (List.map
       (fun e ->
         "{"
         ^ String.concat "," (List.map string_of_int (Env.to_list e))
         ^ "}")
       envs)

let check_hitting conflicts =
  let expected = brute_hitting conflicts in
  let actual = Hitting.minimal_hitting_sets conflicts in
  if List.length expected = List.length actual
     && List.for_all2 Env.equal expected actual
  then Ok ()
  else
    Error
      (Printf.sprintf
         "hitting-set divergence:\n  brute force: %s\n  Atms.Hitting: %s"
         (print_envs expected) (print_envs actual))

(* {1 Bitset environments vs naive Set.Make(Int)} *)

module IS = Set.Make (Int)

let print_ids l = "{" ^ String.concat "," (List.map string_of_int l) ^ "}"

(* Diff every Env operation against the int-set reference, pairwise over
   the generated lists.  Also checks the interning contract (structural
   round-trips are physically equal) and the signature Bloom property. *)
let check_env lists =
  let pairs =
    List.map (fun ids -> (IS.of_list ids, Env.of_list ids, ids)) lists
  in
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_one (s, e, ids) =
    let* () =
      if IS.elements s = Env.to_list e then Ok ()
      else
        fail "of_list/to_list %s: set %s, env %s" (print_ids ids)
          (print_ids (IS.elements s))
          (print_ids (Env.to_list e))
    in
    let* () =
      if IS.cardinal s = Env.cardinal e then Ok ()
      else
        fail "cardinal %s: set %d, env %d" (print_ids ids) (IS.cardinal s)
          (Env.cardinal e)
    in
    let* () =
      if Env.of_list ids == e then Ok ()
      else fail "interning: of_list %s not physically equal" (print_ids ids)
    in
    let* () =
      let probe = [ 0; 62; 63; 64; 126; 127 ] @ ids in
      if List.for_all (fun i -> IS.mem i s = Env.mem i e) probe then Ok ()
      else fail "mem disagrees on %s" (print_ids ids)
    in
    let* () =
      if IS.min_elt_opt s = Env.choose e then Ok ()
      else fail "choose disagrees on %s" (print_ids ids)
    in
    match IS.max_elt_opt s with
    | None -> Ok ()
    | Some m ->
      let s' = IS.add (m + 1) s and e' = Env.add (m + 1) e in
      if IS.elements s' = Env.to_list e' then Ok ()
      else fail "add %d to %s diverges" (m + 1) (print_ids ids)
  in
  let sign = Stdlib.compare in
  let check_pair (sa, ea, ia) (sb, eb, ib) =
    let binop name sref eref =
      if IS.elements sref = Env.to_list eref then Ok ()
      else
        fail "%s %s %s: set %s, env %s" name (print_ids ia) (print_ids ib)
          (print_ids (IS.elements sref))
          (print_ids (Env.to_list eref))
    in
    let* () = binop "union" (IS.union sa sb) (Env.union ea eb) in
    let* () = binop "inter" (IS.inter sa sb) (Env.inter ea eb) in
    let* () = binop "diff" (IS.diff sa sb) (Env.diff ea eb) in
    let* () =
      if IS.subset sa sb = Env.subset ea eb then Ok ()
      else fail "subset %s %s disagrees" (print_ids ia) (print_ids ib)
    in
    let* () =
      if IS.disjoint sa sb = Env.disjoint ea eb then Ok ()
      else fail "disjoint %s %s disagrees" (print_ids ia) (print_ids ib)
    in
    let* () =
      if sign (IS.compare sa sb) 0 = sign (Env.compare ea eb) 0 then Ok ()
      else
        fail "compare %s %s: set %d, env %d" (print_ids ia) (print_ids ib)
          (IS.compare sa sb) (Env.compare ea eb)
    in
    let* () =
      if IS.equal sa sb = Env.equal ea eb then Ok ()
      else fail "equal %s %s disagrees" (print_ids ia) (print_ids ib)
    in
    let* () =
      if (not (Env.equal ea eb)) || Env.hash ea = Env.hash eb then Ok ()
      else fail "equal envs with different hashes: %s %s" (print_ids ia) (print_ids ib)
    in
    let* () =
      if
        (not (Env.subset ea eb))
        || Env.subset_word (Env.signature ea) (Env.signature eb)
      then Ok ()
      else fail "signature violates the Bloom property: %s %s" (print_ids ia) (print_ids ib)
    in
    (* interning again: the same union built twice is the same block *)
    if Env.union ea eb == Env.union eb ea then Ok ()
    else fail "union %s %s not interned" (print_ids ia) (print_ids ib)
  in
  let rec all_ones = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = check_one x in
      all_ones rest
  in
  let* () = all_ones pairs in
  let rec all_pairs = function
    | [] -> Ok ()
    | x :: rest ->
      let rec against = function
        | [] -> Ok ()
        | y :: ys ->
          let* () = check_pair x y in
          against ys
      in
      let* () = against (x :: rest) in
      all_pairs rest
  in
  all_pairs pairs

(* {1 Envindex dominance vs naive linear scan} *)

(* The naive reference replays the pre-index algorithm: an unsorted list
   scanned linearly, dominance = subset with >= degree. *)
module Naive_index = struct
  type t = (IS.t * float) list ref

  let create () : t = ref []

  let is_dominated (t : t) env degree =
    List.exists (fun (e, d) -> IS.subset e env && d >= degree) !t

  let max_subset_degree (t : t) env =
    List.fold_left
      (fun acc (e, d) -> if IS.subset e env then Float.max acc d else acc)
      0. !t

  let insert (t : t) env degree =
    if is_dominated t env degree then false
    else begin
      t := List.filter (fun (e, d) -> not (IS.subset env e && degree >= d)) !t;
      t := (env, degree) :: !t;
      true
    end

  let contents (t : t) =
    List.sort Stdlib.compare
      (List.map (fun (e, d) -> (IS.elements e, d)) !t)
end

let check_envindex script =
  let naive = Naive_index.create () in
  let idx : unit Flames_atms.Envindex.t = Flames_atms.Envindex.create () in
  let indexed_insert env degree =
    if Flames_atms.Envindex.is_dominated idx env degree then false
    else begin
      ignore (Flames_atms.Envindex.remove_dominated idx env degree);
      Flames_atms.Envindex.add idx env degree ();
      true
    end
  in
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let queries =
    (* every script env plus the whole universe: subset queries from
       below, above and sideways *)
    let universe = List.concat_map fst script in
    List.map fst script @ [ universe; [] ]
  in
  let rec replay = function
    | [] -> Ok ()
    | (ids, degree) :: rest ->
      let s = IS.of_list ids and e = Env.of_list ids in
      let rn = Naive_index.insert naive s degree in
      let ri = indexed_insert e degree in
      let* () =
        if rn = ri then Ok ()
        else
          fail "insert %s@%g: naive %b, indexed %b" (print_ids ids) degree rn
            ri
      in
      let* () =
        if List.length !naive = Flames_atms.Envindex.size idx then Ok ()
        else
          fail "size after %s@%g: naive %d, indexed %d" (print_ids ids) degree
            (List.length !naive)
            (Flames_atms.Envindex.size idx)
      in
      let rec check_queries = function
        | [] -> Ok ()
        | q :: qs ->
          let sq = IS.of_list q and eq = Env.of_list q in
          let dn = Naive_index.max_subset_degree naive sq in
          let di = Flames_atms.Envindex.max_subset_degree idx eq in
          let* () =
            if dn = di then Ok ()
            else
              fail "max_subset_degree %s: naive %g, indexed %g" (print_ids q)
                dn di
          in
          let bn = Naive_index.is_dominated naive sq 0.5 in
          let bi = Flames_atms.Envindex.is_dominated idx eq 0.5 in
          if bn = bi then check_queries qs
          else fail "is_dominated %s@0.5: naive %b, indexed %b" (print_ids q) bn bi
      in
      let* () = check_queries queries in
      replay rest
  in
  let* () = replay script in
  let ci =
    Flames_atms.Envindex.fold
      (fun it acc -> (Env.to_list it.Flames_atms.Envindex.env, it.Flames_atms.Envindex.degree) :: acc)
      idx []
    |> List.sort Stdlib.compare
  in
  if Naive_index.contents naive = ci then Ok ()
  else Error "final contents diverge between naive and indexed stores"

(* {1 Alpha-cut fuzzy arithmetic} *)

let iadd (alo, ahi) (blo, bhi) = (alo +. blo, ahi +. bhi)
let isub (alo, ahi) (blo, bhi) = (alo -. bhi, ahi -. blo)

let imul (alo, ahi) (blo, bhi) =
  let ps = [ alo *. blo; alo *. bhi; ahi *. blo; ahi *. bhi ] in
  (List.fold_left Float.min Float.infinity ps,
   List.fold_left Float.max Float.neg_infinity ps)

let idiv a (blo, bhi) =
  if blo <= 0. && bhi >= 0. then
    raise (Arith.Undefined "naive_div: divisor support contains 0");
  imul a (1. /. bhi, 1. /. blo)

let of_cuts (c1lo, c1hi) (c0lo, c0hi) =
  (* inclusion monotony of interval operations guarantees cut1 inside
     cut0; normalized absorbs the float dust on the boundary *)
  Interval.normalized ~m1:c1lo ~m2:c1hi ~alpha:(c1lo -. c0lo)
    ~beta:(c0hi -. c1hi)

let cutwise op a b =
  of_cuts
    (op (Interval.core a) (Interval.core b))
    (op (Interval.support a) (Interval.support b))

let naive_add = cutwise iadd
let naive_sub = cutwise isub
let naive_mul = cutwise imul
let naive_div = cutwise idiv

let check_arith (a, b) =
  let diff name expected actual =
    if Interval.equal_rel ~rel:1e-9 expected actual then Ok ()
    else
      Error
        (Printf.sprintf "%s divergence: alpha-cut oracle %s, Arith %s" name
           (Interval.to_string expected)
           (Interval.to_string actual))
  in
  let ( let* ) = Result.bind in
  let* () = diff "add" (naive_add a b) (Arith.add a b) in
  let* () = diff "sub" (naive_sub a b) (Arith.sub a b) in
  let* () = diff "mul" (naive_mul a b) (Arith.mul a b) in
  let* () =
    let blo, bhi = Interval.support b in
    if blo <= 0. && bhi >= 0. then Ok ()
    else diff "div" (naive_div a b) (Arith.div a b)
  in
  let* () =
    if Interval.membership (Arith.sub a a) 0. >= 1. -. 1e-9 then Ok ()
    else Error "sub: a - a does not contain 0 with full membership"
  in
  if Interval.equal ~eps:1e-12 (Arith.add a b) (Arith.add b a) then Ok ()
  else Error "add: not commutative"

(* {1 Grid integration of membership functions} *)

let default_samples = 20_000

let grid_integral f lo hi samples =
  if hi <= lo then 0.
  else begin
    let step = (hi -. lo) /. Float.of_int samples in
    let acc = ref 0. in
    for i = 0 to samples - 1 do
      acc := !acc +. f (lo +. ((Float.of_int i +. 0.5) *. step))
    done;
    !acc *. step
  end

let grid_min_area ?(samples = default_samples) a b =
  let alo, ahi = Interval.support a and blo, bhi = Interval.support b in
  let lo = Float.max alo blo and hi = Float.min ahi bhi in
  grid_integral
    (fun x -> Float.min (Interval.membership a x) (Interval.membership b x))
    lo hi samples

let grid_max_area ?(samples = default_samples) a b =
  let alo, ahi = Interval.support a and blo, bhi = Interval.support b in
  let lo = Float.min alo blo and hi = Float.max ahi bhi in
  grid_integral
    (fun x -> Float.max (Interval.membership a x) (Interval.membership b x))
    lo hi samples

let grid_dc ~measured ~nominal =
  if not (Interval.overlap measured nominal) then 0.
  else
    let am = Interval.area measured in
    if am <= 1e-12 then
      Interval.membership nominal (Interval.midpoint measured)
    else Float.max 0. (Float.min 1. (grid_min_area measured nominal /. am))

(* Midpoint-rule error is confined to the cells containing one of the
   (at most ~8 + ~8) breakpoints or crossings, each bounded by the cell
   area: tolerance scales with the step. *)
let grid_tolerance lo hi =
  (32. *. Float.max 0. (hi -. lo) /. Float.of_int default_samples) +. 1e-9

let check_consistency (a, b) =
  let ( let* ) = Result.bind in
  let close name expected actual tol =
    if Float.abs (expected -. actual) <= tol then Ok ()
    else
      Error
        (Printf.sprintf "%s divergence: grid oracle %.6g, exact %.6g (tol %.2g)"
           name expected actual tol)
  in
  let alo, ahi = Interval.support a and blo, bhi = Interval.support b in
  let itol = grid_tolerance (Float.max alo blo) (Float.min ahi bhi) in
  let utol = grid_tolerance (Float.min alo blo) (Float.max ahi bhi) in
  let* () = close "min_area" (grid_min_area a b) (Piecewise.min_area a b) itol in
  let* () = close "max_area" (grid_max_area a b) (Piecewise.max_area a b) utol in
  let check_dc m n =
    let d = Consistency.dc ~measured:m ~nominal:n in
    let* () =
      if d <> d then Error "dc is NaN"
      else if d < 0. || d > 1. then
        Error (Printf.sprintf "dc %.6g outside [0, 1]" d)
      else Ok ()
    in
    close "dc" (grid_dc ~measured:m ~nominal:n) d 0.005
  in
  let* () = check_dc a b in
  check_dc b a

(* {1 Dense nodal analysis} *)

let gauss_jordan a b =
  (* full-pivot Gauss–Jordan, written independently of Sim.Linalg *)
  let n = Array.length b in
  let perm = Array.init n Fun.id in
  for k = 0 to n - 1 do
    (* find the largest remaining pivot anywhere in the submatrix *)
    let pr = ref k and pc = ref k and best = ref 0. in
    for r = k to n - 1 do
      for c = k to n - 1 do
        let v = Float.abs a.(r).(c) in
        if v > !best then begin
          best := v;
          pr := r;
          pc := c
        end
      done
    done;
    if !best < 1e-12 then failwith "gauss_jordan: singular system";
    let swap_rows i j =
      if i <> j then begin
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t;
        let t = b.(i) in
        b.(i) <- b.(j);
        b.(j) <- t
      end
    in
    let swap_cols i j =
      if i <> j then begin
        for r = 0 to n - 1 do
          let t = a.(r).(i) in
          a.(r).(i) <- a.(r).(j);
          a.(r).(j) <- t
        done;
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      end
    in
    swap_rows k !pr;
    swap_cols k !pc;
    let piv = a.(k).(k) in
    for c = k to n - 1 do
      a.(k).(c) <- a.(k).(c) /. piv
    done;
    b.(k) <- b.(k) /. piv;
    for r = 0 to n - 1 do
      if r <> k && a.(r).(k) <> 0. then begin
        let f = a.(r).(k) in
        for c = k to n - 1 do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(k).(c))
        done;
        b.(r) <- b.(r) -. (f *. b.(k))
      end
    done
  done;
  let x = Array.make n 0. in
  for i = 0 to n - 1 do
    x.(perm.(i)) <- b.(i)
  done;
  x

let dense_solve netlist =
  let ground = netlist.Netlist.ground in
  let nodes = List.filter (fun n -> n <> ground) (Netlist.nodes netlist) in
  let index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.add index n i) nodes;
  let n_nodes = List.length nodes in
  let sources =
    List.filter
      (fun (c : Component.t) ->
        match c.kind with Component.Voltage_source _ -> true | _ -> false)
      netlist.Netlist.components
  in
  let dim = n_nodes + List.length sources in
  let a = Array.make_matrix dim dim 0. and b = Array.make dim 0. in
  let idx node = if node = ground then None else Some (Hashtbl.find index node) in
  let stamp r c v =
    match (r, c) with
    | Some r, Some c -> a.(r).(c) <- a.(r).(c) +. v
    | None, _ | _, None -> ()
  in
  List.iter
    (fun (c : Component.t) ->
      match c.kind with
      | Component.Resistor ohms ->
        let g = 1. /. Interval.centroid ohms in
        let p = idx (Component.node_of c "p")
        and n = idx (Component.node_of c "n") in
        stamp p p g;
        stamp n n g;
        stamp p n (-.g);
        stamp n p (-.g)
      | Component.Voltage_source _ -> ()
      | Component.Capacitor _ | Component.Inductor _ | Component.Diode _
      | Component.Gain_block _ | Component.Bjt _ ->
        invalid_arg "dense_solve: only resistor/source netlists are supported")
    netlist.Netlist.components;
  List.iteri
    (fun k (c : Component.t) ->
      let volts =
        match c.kind with
        | Component.Voltage_source v -> Interval.centroid v
        | _ -> assert false
      in
      let j = n_nodes + k in
      let p = idx (Component.node_of c "p")
      and n = idx (Component.node_of c "n") in
      (match p with
      | Some p ->
        a.(p).(j) <- a.(p).(j) +. 1.;
        a.(j).(p) <- a.(j).(p) +. 1.
      | None -> ());
      (match n with
      | Some n ->
        a.(n).(j) <- a.(n).(j) -. 1.;
        a.(j).(n) <- a.(j).(n) -. 1.
      | None -> ());
      b.(j) <- volts)
    sources;
  let x = gauss_jordan a b in
  List.map (fun n -> (n, x.(Hashtbl.find index n))) nodes

let check_mna netlist =
  let reference = dense_solve netlist in
  let sol = Mna.solve netlist in
  let rec diff = function
    | [] -> Ok ()
    | (node, expected) :: rest ->
      let actual = Mna.voltage sol node in
      let tol = 1e-6 *. Float.max 1. (Float.abs expected) in
      if Float.abs (expected -. actual) <= tol then diff rest
      else
        Error
          (Printf.sprintf
             "MNA divergence at node %s: dense oracle %.9g, Sim.Mna %.9g"
             node expected actual)
  in
  diff reference

(* {1 Batch engine determinism} *)

let result_fingerprint (r : Diagnose.result) =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let fi (v : Interval.t) =
    Format.fprintf ppf "[%h %h %h %h]" v.Interval.m1 v.Interval.m2
      v.Interval.alpha v.Interval.beta
  in
  let fopt f = function
    | None -> Format.fprintf ppf "-"
    | Some x -> f x
  in
  Format.fprintf ppf "netlist %s@." r.Diagnose.netlist.Netlist.name;
  List.iter
    (fun (s : Diagnose.symptom) ->
      Format.fprintf ppf "symptom %s measured="
        (Flames_circuit.Quantity.to_string s.Diagnose.quantity);
      fi s.Diagnose.measured;
      Format.fprintf ppf " predicted=";
      fopt fi s.Diagnose.predicted;
      Format.fprintf ppf " verdict=";
      fopt
        (fun (v : Consistency.verdict) ->
          let dir =
            match v.Consistency.direction with
            | Consistency.Within -> "within"
            | Consistency.Low -> "low"
            | Consistency.High -> "high"
          in
          Format.fprintf ppf "%h:%s" v.Consistency.dc dir)
        s.Diagnose.verdict;
      Format.fprintf ppf " signed=";
      fopt (fun d -> Format.fprintf ppf "%h" d) s.Diagnose.signed_dc;
      Format.fprintf ppf "@.")
    r.Diagnose.symptoms;
  (* The reason string is provenance (the cell where the conflict was
     first seen), which legitimately depends on propagation order —
     incremental and batch runs may discover the same nogood at
     different sites — so it is not diagnostic content. *)
  List.iter
    (fun (c : Flames_atms.Candidates.conflict) ->
      Format.fprintf ppf "conflict {%s} degree=%h@."
        (String.concat ","
           (List.map string_of_int (Env.to_list c.Flames_atms.Candidates.env)))
        c.Flames_atms.Candidates.degree)
    r.Diagnose.conflicts;
  List.iter
    (fun (s : Diagnose.suspect) ->
      Format.fprintf ppf "suspect %s suspicion=%h explains=%b"
        s.Diagnose.component s.Diagnose.suspicion s.Diagnose.explains;
      List.iter
        (fun (e : Diagnose.mode_estimate) ->
          Format.fprintf ppf " %s nominal=%h estimated=" e.Diagnose.parameter
            e.Diagnose.nominal;
          fopt (fun v -> Format.fprintf ppf "%h" v) e.Diagnose.estimated;
          Format.fprintf ppf " residual=";
          fopt (fun v -> Format.fprintf ppf "%h" v) e.Diagnose.fit_residual;
          List.iter
            (fun (m, d) ->
              Format.fprintf ppf " %a=%h" Flames_circuit.Fault.pp_mode m d)
            e.Diagnose.modes)
        s.Diagnose.estimates;
      Format.fprintf ppf "@.")
    r.Diagnose.suspects;
  List.iter
    (fun (members, rank) ->
      Format.fprintf ppf "diagnosis {%s} rank=%h@."
        (String.concat "," members)
        rank)
    r.Diagnose.diagnoses;
  List.iter
    (fun (c, d) -> Format.fprintf ppf "single-fault %s@%h@." c d)
    r.Diagnose.single_faults;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec walk i = function
    | [], [] -> "(identical?)"
    | x :: _, [] -> Printf.sprintf "line %d: extra %S" i x
    | [], y :: _ -> Printf.sprintf "line %d: missing %S" i y
    | x :: xs, y :: ys ->
      if String.equal x y then walk (i + 1) (xs, ys)
      else Printf.sprintf "line %d: %S vs %S" i x y
  in
  walk 1 (la, lb)

let check_batch ?(workers = [ 1; 2; 4 ]) jobs =
  let references, _ = Batch.sequential jobs in
  let refs = List.map result_fingerprint references in
  let compare_outcomes phase outcomes =
    let rec walk jobs refs outcomes =
      match (jobs, refs, outcomes) with
      | [], [], [] -> Ok ()
      | (j : Batch.job) :: js, fp :: fps, outcome :: os -> begin
        match (outcome : Batch.outcome) with
        | Error _ ->
          Error
            (Format.asprintf "%s: job %s failed in the pool: %a" phase
               j.Batch.label Batch.pp_outcome outcome)
        | Ok r ->
          let fp' = result_fingerprint r in
          if String.equal fp fp' then walk js fps os
          else
            Error
              (Printf.sprintf
                 "%s: job %s diverges from sequential run: %s" phase
                 j.Batch.label (first_diff fp fp'))
      end
      | _ -> Error (phase ^ ": outcome count mismatch")
    in
    walk jobs refs outcomes
  in
  let ( let* ) = Result.bind in
  let rec cold = function
    | [] -> Ok ()
    | w :: rest ->
      let outcomes, _ = Batch.run ~workers:w jobs in
      let* () = compare_outcomes (Printf.sprintf "cold %d-worker" w) outcomes in
      cold rest
  in
  let* () = cold workers in
  (* warm: a cache pre-filled by a sequential pass, shared by the pool *)
  let cache = Cache.create () in
  let _ = Batch.sequential ~cache jobs in
  let rec warm = function
    | [] -> Ok ()
    | w :: rest ->
      let outcomes, _ = Batch.run ~workers:w ~cache jobs in
      let* () = compare_outcomes (Printf.sprintf "warm %d-worker" w) outcomes in
      warm rest
  in
  warm workers

(* {1 Degraded-diagnosis soundness} *)

let check_degraded (scenario : Gen.scenario) =
  let nominal, _ = Gen.scenario_netlists scenario in
  let observations = Gen.scenario_observations scenario in
  let full = Diagnose.run nominal observations in
  if full.Diagnose.degraded then Error "unbudgeted run reports degraded"
  else
    let n = List.length full.Diagnose.diagnoses in
    if n = 0 then Ok () (* healthy run: nothing to truncate *)
    else begin
      let quota = Int.max 1 (n / 2) in
      let budget =
        Flames_core.Budget.start
          (Flames_core.Budget.spec ~max_candidates:quota ())
      in
      let part = Diagnose.run ~budget nominal observations in
      let got = List.length part.Diagnose.diagnoses in
      (* A candidate-only quota leaves propagation untouched, so the
         conflicts — and hence ranks — are those of the full run; the
         truncated enumeration must return a non-empty sound subset. *)
      if not part.Diagnose.degraded then
        Error "budgeted run not flagged degraded"
      else if not (List.mem Flames_core.Budget.Candidates part.Diagnose.trips)
      then Error "candidate quota trip not recorded"
      else if got = 0 then Error "degraded run returned no candidate"
      else if got > quota then
        Error (Printf.sprintf "quota %d exceeded: %d candidates" quota got)
      else
        let mem d = List.mem d full.Diagnose.diagnoses in
        match List.find_opt (fun d -> not (mem d)) part.Diagnose.diagnoses with
        | Some (names, rank) ->
          Error
            (Printf.sprintf
               "unsound degraded candidate {%s}@%h not in the full ranking"
               (String.concat "," names) rank)
        | None -> Ok ()
    end

(* {1 Compiled schedule vs interpreter} *)

let check_compiled (scenario : Gen.scenario) =
  let nominal, _ = Gen.scenario_netlists scenario in
  let observations = Gen.scenario_observations scenario in
  let model = Flames_core.Model.compile nominal in
  let schedule = Flames_core.Schedule.of_model model in
  let compare_runs phase ~compiled ~interp =
    if compiled.Diagnose.degraded <> interp.Diagnose.degraded then
      Error
        (Printf.sprintf "%s: degraded flag diverges (compiled %b, interp %b)"
           phase compiled.Diagnose.degraded interp.Diagnose.degraded)
    else if compiled.Diagnose.trips <> interp.Diagnose.trips then
      Error (phase ^ ": budget trips diverge")
    else
      let fc = result_fingerprint compiled
      and fi = result_fingerprint interp in
      if String.equal fc fi then Ok ()
      else
        Error
          (Printf.sprintf "%s: compiled run diverges from interpreter: %s"
             phase (first_diff fi fc))
  in
  let ( let* ) = Result.bind in
  let full_c = Diagnose.run ~model ~use_compiled:true nominal observations in
  let full_i = Diagnose.run ~model ~use_compiled:false nominal observations in
  let* () = compare_runs "full" ~compiled:full_c ~interp:full_i in
  (* reusing one schedule across runs must not leak state between them *)
  let again = Diagnose.run ~schedule nominal observations in
  let* () = compare_runs "schedule-reuse" ~compiled:again ~interp:full_i in
  (* budget-tripped (degraded) runs must degrade identically: same
     trips, same truncated candidate list, bit for bit *)
  let n = List.length full_c.Diagnose.diagnoses in
  if n = 0 then Ok ()
  else begin
    let quota = Int.max 1 (n / 2) in
    let budgeted use_compiled =
      let budget =
        Flames_core.Budget.start
          (Flames_core.Budget.spec ~max_candidates:quota ())
      in
      Diagnose.run ~model ~budget ~use_compiled nominal observations
    in
    let part_c = budgeted true and part_i = budgeted false in
    let* () = compare_runs "budgeted" ~compiled:part_c ~interp:part_i in
    if not part_c.Diagnose.degraded then
      Error "budgeted compiled run not flagged degraded"
    else Ok ()
  end

(* {1 Incremental sessions vs from-scratch diagnosis} *)

module Session = Flames_session.Session

let check_session (script : Gen.session_script) =
  let nominal, _ = Gen.scenario_netlists script.Gen.base in
  let pool = Gen.session_pool script.Gen.base in
  if pool = [] then Ok ()
  else begin
    let model = Flames_core.Model.compile nominal in
    let session = Session.create ~model nominal in
    (* the naive reference: a plain measurement list, re-diagnosed from
       scratch after every step *)
    let mirror = ref [] in
    let narrow (v : Interval.t) =
      Interval.make ~m1:v.Interval.m1 ~m2:v.Interval.m2
        ~alpha:(v.Interval.alpha /. 2.) ~beta:(v.Interval.beta /. 2.)
    in
    let apply op =
      match op with
      | Gen.S_add i ->
        let q, v = List.nth pool (i mod List.length pool) in
        let m = Session.add_measurement session q v in
        mirror := !mirror @ [ (m.Session.id, q, v) ];
        Ok ()
      | Gen.S_retract n -> begin
        match !mirror with
        | [] -> Ok () (* nothing to retract: no-op by construction *)
        | ms ->
          let id, _, _ = List.nth ms (n mod List.length ms) in
          if Session.retract session ~id then begin
            mirror := List.filter (fun (id', _, _) -> id' <> id) ms;
            Ok ()
          end
          else Error (Printf.sprintf "retract of live id %d refused" id)
      end
      | Gen.S_refine n -> begin
        match !mirror with
        | [] -> Ok ()
        | ms -> (
          let id, _, v = List.nth ms (n mod List.length ms) in
          let v' = narrow v in
          match Session.refine session ~id v' with
          | Some _ ->
            mirror :=
              List.map
                (fun (id', q, w) -> if id' = id then (id', q, v') else (id', q, w))
                ms;
            Ok ()
          | None -> Error (Printf.sprintf "refine of live id %d refused" id))
      end
    in
    let ( let* ) = Result.bind in
    let rec steps i = function
      | [] -> Ok ()
      | op :: rest ->
        let* () = apply op in
        let observations = List.map (fun (_, q, v) -> (q, v)) !mirror in
        let expected =
          result_fingerprint (Diagnose.run ~model nominal observations)
        in
        let got = result_fingerprint (Session.diagnoses session) in
        let* () =
          if String.equal expected got then Ok ()
          else
            Error
              (Printf.sprintf
                 "session diverges from scratch run at step %d (%s): %s" i
                 (Gen.print_session_op op) (first_diff expected got))
        in
        steps (i + 1) rest
    in
    steps 0 script.Gen.ops
  end
