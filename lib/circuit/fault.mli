(** Fault modes and fault injection.

    Common fault modes (open, short, high, low — paper section 7) are
    modelled as fuzzy sets over the {e deviation ratio}
    [actual / nominal] of the faulty parameter, so that both hard faults
    and slight ("soft") deviations are captured without special
    heuristics. *)

module Interval = Flames_fuzzy.Interval

type mode =
  | Short  (** parameter collapses towards 0 (ratio ≈ 0) *)
  | Open  (** parameter explodes (ratio ≫ 1) *)
  | Low  (** noticeably below nominal *)
  | High  (** noticeably above nominal *)
  | Shifted of float  (** parameter set to an exact value (soft fault) *)

type t = { component : string; parameter : string; mode : mode }

val make : component:string -> parameter:string -> mode -> t

val short : string -> parameter:string -> t
val opened : string -> parameter:string -> t
val shifted : string -> parameter:string -> float -> t

val mode_region : mode -> Interval.t
(** The fuzzy set of deviation ratios characterising the mode:
    short ≈ [0, 0.01] with a soft upper flank, open ≈ [100, ∞),
    low ≈ [0.3, 0.8], high ≈ [1.25, 3]. [Shifted v] has no generic
    region; its region is the crisp ratio once the nominal is known
    (see {!mode_membership}). *)

val mode_membership : mode -> nominal:float -> actual:float -> float
(** Degree with which the ratio [actual / nominal] belongs to the mode's
    region (for [Shifted v], the membership of [actual] in a narrow fuzzy
    number around [v]). *)

val classify : nominal:float -> actual:float -> (mode * float) list
(** All generic modes (short/open/low/high) with non-zero membership for
    the observed deviation, best first. *)

val inject : Netlist.t -> t -> Netlist.t
(** Apply the fault to the netlist: the named parameter of the named
    component is replaced by the faulty (crisp) value — [Short] by
    [nominal × 1e-6], [Open] by [nominal × 1e9], [Low]/[High] by the
    centroid of the mode region times nominal, [Shifted v] by [v].
    @raise Not_found on unknown component or parameter. *)

val faulty_value : t -> nominal:Interval.t -> Interval.t
(** The crisp parameter value {!inject} uses. *)

val open_node : Netlist.t -> string -> Netlist.t
(** Model an open (broken) node: every connection to the node [n] is
    rerouted to a fresh isolated copy [n^k] per component, severing the
    electrical contact (the paper's "open circuit in N1" defect).
    Single-component nodes are returned unchanged. *)

val pp : Format.formatter -> t -> unit
val pp_mode : Format.formatter -> mode -> unit

val of_spec : string -> (t, string) result
(** Parse a [comp.param=mode] fault spec (mode: [short], [open], [low],
    [high] or a numeric value for a soft {!Shifted} fault) — the syntax
    shared by the CLI's [--fault], batch scenario files and the
    diagnosis service. *)
