module Interval = Flames_fuzzy.Interval

type error = { line : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d: %s" e.line e.message

exception Fail of error

let fail line fmt =
  Format.kasprintf (fun message -> raise (Fail { line; message })) fmt

let suffixes =
  [
    ("meg", 1e6); ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6);
    ("m", 1e-3); ("k", 1e3); ("g", 1e9); ("t", 1e12);
  ]

let parse_value token =
  let token = String.lowercase_ascii token in
  let try_suffix (suffix, mult) =
    let lt = String.length token and ls = String.length suffix in
    if lt > ls && String.sub token (lt - ls) ls = suffix then
      Option.map
        (fun v -> v *. mult)
        (float_of_string_opt (String.sub token 0 (lt - ls)))
    else None
  in
  match float_of_string_opt token with
  | Some v -> Some v
  | None -> List.find_map try_suffix suffixes

let parse_tolerance line token =
  (* "1%" or "0.01" *)
  let v =
    if String.length token > 0 && token.[String.length token - 1] = '%' then
      Option.map
        (fun p -> p /. 100.)
        (float_of_string_opt (String.sub token 0 (String.length token - 1)))
    else float_of_string_opt token
  in
  match v with
  | Some t when t >= 0. -> t
  | Some _ -> fail line "negative tolerance"
  | None -> fail line "malformed tolerance %S" token

(* split "key=value" attributes from plain tokens *)
let attributes line tokens =
  List.partition_map
    (fun token ->
      match String.index_opt token '=' with
      | None -> Right token
      | Some i ->
        let key = String.sub token 0 i
        and v = String.sub token (i + 1) (String.length token - i - 1) in
        if key = "" || v = "" then fail line "malformed attribute %S" token;
        Left (String.lowercase_ascii key, v))
    tokens

let toleranced line value = function
  | None -> Interval.crisp value
  | Some tol_token ->
    let rel = parse_tolerance line tol_token in
    Interval.around value ~rel

let number_of line token =
  match parse_value token with
  | Some v -> v
  | None -> fail line "malformed value %S" token

let component_of_card line card =
  match String.split_on_char ' ' card |> List.filter (fun s -> s <> "") with
  | [] -> None
  | kind :: rest ->
    let attrs, plain = attributes line rest in
    let attr key = List.assoc_opt key attrs in
    let tol = attr "tol" in
    let value_attr key =
      match attr key with
      | Some v -> number_of line v
      | None -> fail line "missing %s=" key
    in
    (match (String.lowercase_ascii kind, plain) with
    | "r", [ name; p; n; value ] ->
      Some
        (Component.resistor name
           ~ohms:(toleranced line (number_of line value) tol)
           ~p ~n)
    | "c", [ name; p; n; value ] ->
      Some
        (Component.capacitor name
           ~farads:(toleranced line (number_of line value) tol)
           ~p ~n)
    | "l", [ name; p; n; value ] ->
      Some
        (Component.inductor name
           ~henries:(toleranced line (number_of line value) tol)
           ~p ~n)
    | "v", [ name; p; n; value ] ->
      Some
        (Component.vsource name
           ~volts:(toleranced line (number_of line value) tol)
           ~p ~n)
    | "a", [ name; input; output ] ->
      Some
        (Component.gain_block name
           ~gain:(toleranced line (value_attr "gain") tol)
           ~input ~output)
    | "d", [ name; p; n ] ->
      let imax = value_attr "imax" in
      if imax <= 0. then fail line "imax must be positive (got %g)" imax;
      Some
        (Component.diode name
           ~forward_drop:(toleranced line (value_attr "vf") tol)
           ~max_current:
             (Interval.make ~m1:(-.imax /. 100.) ~m2:imax ~alpha:0.
                ~beta:(0.1 *. imax))
           ~p ~n)
    | "q", [ name; b; c; e ] ->
      Some
        (Component.bjt name
           ~beta:(toleranced line (value_attr "beta") tol)
           ~vbe:(toleranced line (value_attr "vbe") tol)
           ~b ~c ~e)
    | ("r" | "c" | "l" | "v" | "a" | "d" | "q"), _ ->
      fail line "wrong number of fields for a %s card" kind
    | other, _ -> fail line "unknown card type %S" other)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse source =
  let name = ref "netlist" and ground = ref "gnd" and ports = ref [] in
  let components = ref [] in
  let handle lineno raw =
    let text = String.trim (strip_comment raw) in
    if text = "" || text.[0] = '*' then ()
    else if text.[0] = '.' then begin
      match
        String.split_on_char ' ' text |> List.filter (fun s -> s <> "")
      with
      | [ ".circuit"; n ] -> name := n
      | [ ".ground"; n ] -> ground := n
      | [ ".port"; n ] -> ports := n :: !ports
      | directive :: _ -> fail lineno "unknown directive %S" directive
      | [] -> ()
    end
    else
      match component_of_card lineno text with
      | Some comp -> components := comp :: !components
      | None -> ()
      (* values like "1e999" parse to a float but not to a valid fuzzy
         interval; surface them as parse errors, not exceptions *)
      | exception Interval.Invalid message -> fail lineno "%s" message
  in
  match
    String.split_on_char '\n' source
    |> List.iteri (fun i l -> handle (i + 1) l)
  with
  | () -> begin
    match
      Netlist.make ~ports:!ports ~name:!name ~ground:!ground
        (List.rev !components)
    with
    | netlist -> Ok netlist
    | exception Netlist.Ill_formed message -> Error { line = 0; message }
  end
  | exception Fail e -> Error e

let parse_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | source -> parse source
  | exception Sys_error message -> Error { line = 0; message }

let render_interval buf v =
  let centre = Interval.centroid v in
  let rel =
    if centre = 0. then 0.
    else
      let lo, hi = Interval.support v in
      (hi -. lo) /. 2. /. Float.abs centre
  in
  Buffer.add_string buf (Printf.sprintf "%.12g" centre);
  if rel > 1e-12 then Buffer.add_string buf (Printf.sprintf " tol=%.12g" rel)

let to_string (netlist : Netlist.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf ".circuit %s\n" netlist.Netlist.name);
  Buffer.add_string buf (Printf.sprintf ".ground %s\n" netlist.Netlist.ground);
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf ".port %s\n" p))
    netlist.Netlist.ports;
  List.iter
    (fun (c : Component.t) ->
      let node t = Component.node_of c t in
      (match c.Component.kind with
      | Component.Resistor v ->
        Buffer.add_string buf
          (Printf.sprintf "R %s %s %s " c.Component.name (node "p") (node "n"));
        render_interval buf v
      | Component.Capacitor v ->
        Buffer.add_string buf
          (Printf.sprintf "C %s %s %s " c.Component.name (node "p") (node "n"));
        render_interval buf v
      | Component.Inductor v ->
        Buffer.add_string buf
          (Printf.sprintf "L %s %s %s " c.Component.name (node "p") (node "n"));
        render_interval buf v
      | Component.Voltage_source v ->
        Buffer.add_string buf
          (Printf.sprintf "V %s %s %s " c.Component.name (node "p") (node "n"));
        render_interval buf v
      | Component.Gain_block g ->
        Buffer.add_string buf
          (Printf.sprintf "A %s %s %s gain=%.12g" c.Component.name (node "in")
             (node "out") (Interval.centroid g));
        let lo, hi = Interval.support g in
        let centre = Interval.centroid g in
        let rel = if centre = 0. then 0. else (hi -. lo) /. 2. /. Float.abs centre in
        if rel > 1e-12 then
          Buffer.add_string buf (Printf.sprintf " tol=%.12g" rel)
      | Component.Diode { forward_drop; max_current } ->
        Buffer.add_string buf
          (Printf.sprintf "D %s %s %s vf=%.12g imax=%.12g" c.Component.name
             (node "p") (node "n")
             (Interval.centroid forward_drop)
             (snd (Interval.core max_current)))
      | Component.Bjt { beta; vbe } ->
        Buffer.add_string buf
          (Printf.sprintf "Q %s %s %s %s beta=%.12g vbe=%.12g"
             c.Component.name (node "b") (node "c") (node "e")
             (Interval.centroid beta) (Interval.centroid vbe)));
      Buffer.add_char buf '\n')
    netlist.Netlist.components;
  Buffer.contents buf
