module Interval = Flames_fuzzy.Interval

type mode = Short | Open | Low | High | Shifted of float
type t = { component : string; parameter : string; mode : mode }

let make ~component ~parameter mode = { component; parameter; mode }
let short component ~parameter = make ~component ~parameter Short
let opened component ~parameter = make ~component ~parameter Open
let shifted component ~parameter v = make ~component ~parameter (Shifted v)

let mode_region = function
  | Short -> Interval.make ~m1:0. ~m2:0.01 ~alpha:0. ~beta:0.09
  | Open -> Interval.make ~m1:100. ~m2:1e12 ~alpha:90. ~beta:0.
  | Low -> Interval.make ~m1:0.3 ~m2:0.8 ~alpha:0.2 ~beta:0.15
  | High -> Interval.make ~m1:1.25 ~m2:3. ~alpha:0.2 ~beta:97.
  | Shifted v ->
    (* a narrow fuzzy ratio around v / nominal is built in mode_membership;
       without the nominal we only can centre on 1 *)
    Interval.number (if v = 0. then 0. else 1.) ~spread:0.05

let mode_membership mode ~nominal ~actual =
  match mode with
  | Shifted v ->
    let width = Float.max (0.02 *. Float.abs v) 1e-12 in
    Interval.membership (Interval.number v ~spread:width) actual
  | Short | Open | Low | High ->
    if nominal = 0. then 0.
    else Interval.membership (mode_region mode) (actual /. nominal)

let classify ~nominal ~actual =
  [ Short; Open; Low; High ]
  |> List.filter_map (fun m ->
         let d = mode_membership m ~nominal ~actual in
         if d > 0. then Some (m, d) else None)
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let faulty_value fault ~nominal =
  let n = Interval.centroid nominal in
  let v =
    match fault.mode with
    | Short -> n *. 1e-6
    | Open -> n *. 1e9
    | Low -> n *. Interval.centroid (mode_region Low)
    | High -> n *. Interval.centroid (mode_region High)
    | Shifted v -> v
  in
  Interval.crisp v

let inject netlist fault =
  let comp = Netlist.find netlist fault.component in
  let nominal = Component.nominal_parameter comp fault.parameter in
  let comp' =
    Component.with_parameter comp fault.parameter (faulty_value fault ~nominal)
  in
  Netlist.replace netlist comp'

(* An open node is modelled by giving each component terminal its own copy
   of the node, tied to the original through a very large "break" resistor:
   electrically open, yet the netlist stays connected and solvable. *)
let break_resistance = Interval.crisp 1e9

let open_node netlist node =
  let attached = Netlist.components_at netlist node in
  if List.length attached < 2 then netlist
  else
    let counter = ref 0 in
    let components', breaks =
      List.fold_left
        (fun (comps, breaks) (c : Component.t) ->
          let nodes', breaks =
            List.fold_left
              (fun (nodes, breaks) (term, n) ->
                if n <> node then ((term, n) :: nodes, breaks)
                else begin
                  incr counter;
                  let fresh = Printf.sprintf "%s^%d" node !counter in
                  let break =
                    Component.resistor
                      (Printf.sprintf "break_%s_%d" node !counter)
                      ~ohms:break_resistance ~p:fresh ~n:node
                  in
                  ((term, fresh) :: nodes, break :: breaks)
                end)
              ([], breaks) c.nodes
          in
          ({ c with nodes = List.rev nodes' } :: comps, breaks))
        ([], []) attached
    in
    let untouched =
      List.filter
        (fun (c : Component.t) ->
          not (List.exists (fun (a : Component.t) -> a.name = c.name) attached))
        netlist.Netlist.components
    in
    Netlist.make ~name:netlist.Netlist.name ~ground:netlist.Netlist.ground
      (untouched @ List.rev components' @ breaks)

let pp_mode ppf = function
  | Short -> Format.pp_print_string ppf "short"
  | Open -> Format.pp_print_string ppf "open"
  | Low -> Format.pp_print_string ppf "low"
  | High -> Format.pp_print_string ppf "high"
  | Shifted v -> Format.fprintf ppf "shifted to %g" v

let pp ppf f =
  Format.fprintf ppf "%s.%s %a" f.component f.parameter pp_mode f.mode

(* comp.param=short|open|low|high|<float> — the spec syntax of the CLI's
   --fault option, batch scenario files and the service's "fault" field. *)
let of_spec spec =
  match String.split_on_char '=' spec with
  | [ target; mode ] -> begin
    match String.split_on_char '.' target with
    | [ component; parameter ] ->
      let mode =
        match mode with
        | "short" -> Ok Short
        | "open" -> Ok Open
        | "low" -> Ok Low
        | "high" -> Ok High
        | v -> begin
          match float_of_string_opt v with
          | Some f -> Ok (Shifted f)
          | None -> Error (Printf.sprintf "bad fault mode %S" v)
        end
      in
      Result.map (fun mode -> { component; parameter; mode }) mode
    | [ _ ] | [] | _ :: _ ->
      Error (Printf.sprintf "bad fault target %S (want comp.param)" target)
  end
  | [ _ ] | [] | _ :: _ ->
    Error (Printf.sprintf "bad fault spec %S (want comp.param=mode)" spec)
