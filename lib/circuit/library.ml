module Interval = Flames_fuzzy.Interval

let chain_nodes k =
  List.init (k + 1) (fun i ->
      let letter = Char.chr (Char.code 'A' + (i mod 26)) in
      if i < 26 then String.make 1 letter
      else Printf.sprintf "%c%d" letter (i / 26))

let amplifier_chain ?(gains = [ 1.; 2.; 3. ]) ?(tolerance = 0.05) () =
  let k = List.length gains in
  let nodes = chain_nodes k in
  let source =
    Component.vsource "va" ~volts:(Interval.number 3. ~spread:0.05) ~p:"A"
      ~n:"gnd"
  in
  let amps =
    List.mapi
      (fun i g ->
        let input = List.nth nodes i and output = List.nth nodes (i + 1) in
        Component.gain_block
          (Printf.sprintf "amp%d" (i + 1))
          ~gain:(Interval.number g ~spread:tolerance)
          ~input ~output)
      gains
  in
  (* ground the output through a load so no node dangles *)
  let load =
    Component.resistor "load" ~ohms:(Interval.crisp 1e6)
      ~p:(List.nth nodes k) ~n:"gnd"
  in
  Netlist.make ~name:"amplifier-chain" ~ground:"gnd" (source :: load :: amps)

let micro = 1e-6

let diode_resistor ?(powered = false) () =
  (* resistances are crisp 10 kΩ as in the paper's fig. 5; the model
     imprecision is carried by the diode's fuzzy current bound *)
  let r = Interval.crisp 10e3 in
  let bound =
    (* the paper's fuzzy current bound [-1,100,0,10] microamperes *)
    Interval.make ~m1:(-1. *. micro) ~m2:(100. *. micro) ~alpha:0.
      ~beta:(10. *. micro)
  in
  let chain =
    [
      Component.resistor "r1" ~ohms:r ~p:"in" ~n:"n1";
      Component.diode "d1"
        ~forward_drop:(Interval.number 0.2 ~spread:0.02)
        ~max_current:bound ~p:"n1" ~n:"n2";
      Component.resistor "r2" ~ohms:r ~p:"n2" ~n:"gnd";
    ]
  in
  if powered then
    Netlist.make ~name:"diode-resistor" ~ground:"gnd"
      (Component.vsource "vin" ~volts:(Interval.crisp 2.25) ~p:"in" ~n:"gnd"
      :: chain)
  else Netlist.make ~ports:[ "in" ] ~name:"diode-resistor" ~ground:"gnd" chain

let three_stage_amplifier ?(tolerance = 0.02) () =
  let r v = Interval.around v ~rel:tolerance in
  let beta v = Interval.around v ~rel:tolerance in
  let vbe = Interval.number 0.7 ~spread:0.02 in
  Netlist.make ~name:"three-stage-amplifier" ~ground:"gnd"
    [
      Component.vsource "vcc" ~volts:(Interval.number 18. ~spread:0.05)
        ~p:"vcc" ~n:"gnd";
      (* stage 1: common emitter — R1/R3 bias divider, R2 collector load
         (probe V1 at the collector), R4 emitter degeneration *)
      Component.resistor "r1" ~ohms:(r 200e3) ~p:"vcc" ~n:"n1";
      Component.resistor "r3" ~ohms:(r 24e3) ~p:"n1" ~n:"gnd";
      Component.bjt "t1" ~beta:(beta 300.) ~vbe ~b:"n1" ~c:"v1" ~e:"e1";
      Component.resistor "r2" ~ohms:(r 12e3) ~p:"vcc" ~n:"v1";
      Component.resistor "r4" ~ohms:(r 3e3) ~p:"e1" ~n:"gnd";
      (* stage 2: emitter follower (probe V2 at node n2) *)
      Component.bjt "t2" ~beta:(beta 200.) ~vbe ~b:"v1" ~c:"vcc" ~e:"n2";
      Component.resistor "r5" ~ohms:(r 2.2e3) ~p:"n2" ~n:"gnd";
      (* stage 3: emitter follower into the output load (probe Vs) *)
      Component.bjt "t3" ~beta:(beta 100.) ~vbe ~b:"n2" ~c:"vcc" ~e:"vs";
      Component.resistor "r6" ~ohms:(r 1.8e3) ~p:"vs" ~n:"gnd";
    ]

let voltage_divider ?(r1 = 10e3) ?(r2 = 10e3) ?(vin = 10.) () =
  Netlist.make ~name:"voltage-divider" ~ground:"gnd"
    [
      Component.vsource "vin" ~volts:(Interval.number vin ~spread:(0.01 *. vin))
        ~p:"in" ~n:"gnd";
      Component.resistor "r1" ~ohms:(Interval.around r1 ~rel:0.01) ~p:"in"
        ~n:"mid";
      Component.resistor "r2" ~ohms:(Interval.around r2 ~rel:0.01) ~p:"mid"
        ~n:"gnd";
    ]

let rc_lowpass ?(tolerance = 0.02) () =
  Netlist.make ~name:"rc-lowpass" ~ground:"gnd"
    [
      Component.vsource "vin" ~volts:(Interval.crisp 1.) ~p:"in" ~n:"gnd";
      Component.resistor "r1" ~ohms:(Interval.around 10e3 ~rel:tolerance)
        ~p:"in" ~n:"out";
      Component.capacitor "c1" ~farads:(Interval.around 10e-9 ~rel:tolerance)
        ~p:"out" ~n:"gnd";
    ]

let rlc_bandpass ?(tolerance = 0.02) () =
  Netlist.make ~name:"rlc-bandpass" ~ground:"gnd"
    [
      Component.vsource "vin" ~volts:(Interval.crisp 1.) ~p:"in" ~n:"gnd";
      Component.inductor "l1" ~henries:(Interval.around 10e-3 ~rel:tolerance)
        ~p:"in" ~n:"m";
      Component.capacitor "c1" ~farads:(Interval.around 100e-9 ~rel:tolerance)
        ~p:"m" ~n:"out";
      Component.resistor "r1" ~ohms:(Interval.around 100. ~rel:tolerance)
        ~p:"out" ~n:"gnd";
    ]

let sallen_key_lowpass ?(tolerance = 0.02) () =
  Netlist.make ~name:"sallen-key-lowpass" ~ground:"gnd"
    [
      Component.vsource "vin" ~volts:(Interval.crisp 1.) ~p:"in" ~n:"gnd";
      Component.resistor "r1" ~ohms:(Interval.around 10e3 ~rel:tolerance)
        ~p:"in" ~n:"a";
      Component.resistor "r2" ~ohms:(Interval.around 10e3 ~rel:tolerance)
        ~p:"a" ~n:"b";
      Component.capacitor "c1" ~farads:(Interval.around 10e-9 ~rel:tolerance)
        ~p:"a" ~n:"out";
      Component.capacitor "c2" ~farads:(Interval.around 10e-9 ~rel:tolerance)
        ~p:"b" ~n:"gnd";
      Component.gain_block "amp" ~gain:(Interval.number 1. ~spread:0.001)
        ~input:"b" ~output:"out";
    ]

let probe_points netlist =
  Netlist.nodes netlist
  |> List.filter (fun n ->
         n <> netlist.Netlist.ground && not (String.contains n '^'))
  |> List.map Quantity.voltage

(* The named circuits the CLI and the diagnosis service accept by name;
   one list so both front ends (and their docs) stay in sync. *)
let builtins =
  [
    ("divider", fun () -> voltage_divider ());
    ("diode", fun () -> diode_resistor ~powered:true ());
    ("amplifier", fun () -> three_stage_amplifier ());
    ("chain", fun () -> amplifier_chain ());
    ("rc-lowpass", fun () -> rc_lowpass ());
    ("rlc-bandpass", fun () -> rlc_bandpass ());
    ("sallen-key", fun () -> sallen_key_lowpass ());
  ]
