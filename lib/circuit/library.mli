(** Prebuilt circuits used by the paper's examples and experiments. *)

module Interval = Flames_fuzzy.Interval

val amplifier_chain : ?gains:float list -> ?tolerance:float -> unit -> Netlist.t
(** The fig-2 circuit: a cascade of ideal gain blocks [amp1 .. ampk]
    driven by source [va] on node [A], output on the last node.
    Default gains [1; 2; 3] with ±0.05 absolute tolerance on each gain
    (the paper's [amp_i = [g, g, 0.05, 0.05]]); [tolerance] overrides the
    absolute flank width.  Nodes are ["A"; "B"; "C"; ...]. *)

val chain_nodes : int -> string list
(** The node names of an amplifier chain with k stages (k+1 names). *)

val diode_resistor : ?powered:bool -> unit -> Netlist.t
(** The fig-5 circuit: [r1] (10 kΩ, crisp), diode [d1] (0.2 V drop,
    current bound [[-1, 100, 0, 10]] µA, in amperes), [r2] (10 kΩ, crisp)
    in series through nodes [in] → [n1] → [n2] → [gnd].  By default the
    input node [in] is an externally driven port, exactly the paper's
    setting where only the drops are measured; [~powered:true] adds a
    2.25 V source for simulation. *)

val three_stage_amplifier : ?tolerance:float -> unit -> Netlist.t
(** The fig-6 circuit reconstruction (see DESIGN.md): Vcc = 18 V;
    stage 1 common-emitter T1 (β=300) biased by the R1 = 200 kΩ /
    R3 = 24 kΩ divider, with R2 = 12 kΩ as collector load (probe V1 at
    the collector) and R4 = 3 kΩ as emitter degeneration; stage 2 emitter
    follower T2 (β=200) into R5 = 2.2 kΩ (probe V2 at node [n2]); stage 3
    emitter follower T3 (β=100) into R6 = 1.8 kΩ (probe Vs).  All
    Vbe = 0.7 V.  [tolerance] is the relative parameter tolerance
    (default 2 %).

    Nodes: [vcc], [n1] (T1 base), [e1], [v1] (T1 collector), [n2]
    (V2 probe), [vs], [gnd]. *)

val voltage_divider : ?r1:float -> ?r2:float -> ?vin:float -> unit -> Netlist.t
(** A two-resistor divider (quickstart example): [vin] → [r1] → [mid] →
    [r2] → [gnd]. *)

val rc_lowpass : ?tolerance:float -> unit -> Netlist.t
(** First-order RC low-pass for dynamic-mode diagnosis: source [vin] →
    [r1] (10 kΩ) → node [out] → [c1] (10 nF) → [gnd]; corner at
    ≈ 1.59 kHz. *)

val rlc_bandpass : ?tolerance:float -> unit -> Netlist.t
(** Series RLC band-pass: [vin] → [l1] (10 mH) → [m] → [c1] (100 nF) →
    [out] → [r1] (100 Ω) → [gnd], output across the resistor; resonance
    at ≈ 5.03 kHz. *)

val sallen_key_lowpass : ?tolerance:float -> unit -> Netlist.t
(** Second-order unity-gain Sallen–Key low-pass built from two RC
    sections and an ideal unity-gain buffer ([amp]): [vin] → [r1]
    (10 kΩ) → [a] → [r2] (10 kΩ) → [b] → buffer → [out], with [c1]
    (10 nF) from [a] to [out] (the bootstrap) and [c2] (10 nF) from [b]
    to [gnd]; corner ≈ 1.59 kHz. *)

val probe_points : Netlist.t -> Quantity.t list
(** The measurable node voltages of a circuit (every non-ground,
    non-internal node). *)

val builtins : (string * (unit -> Netlist.t)) list
(** The built-in circuits by CLI/service name, in presentation order. *)
