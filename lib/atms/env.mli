(** Assumption environments.

    An environment is a finite set of assumption identifiers; a value (or a
    node) holds in an environment when it is derivable from exactly those
    assumptions plus the premises.  Assumption identifiers are small
    non-negative integers allocated by {!Atms}; names are kept in the ATMS
    table.

    Environments are immutable hash-consed bitsets: ids index bits in an
    array of 63-bit words, and every value is interned in a per-domain
    weak table.  {!equal} short-circuits on physical equality (with a
    structural fallback for values that crossed a domain boundary),
    {!cardinal} and {!hash} are O(1) cached fields, and the set
    operations are word loops.  Constructors raise [Invalid_argument]
    on negative ids. *)

type t

val empty : t
val singleton : int -> t
val of_list : int list -> t
val to_list : t -> int list
(** Sorted increasing. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val mem : int -> t -> bool
val add : int -> t -> t
val subset : t -> t -> bool
(** [subset a b] holds when [a ⊆ b]. *)

val disjoint : t -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool
val choose : t -> int option
(** Smallest element, if any. *)

val hash : t -> int
(** O(1): cached at interning time.  Equal environments hash equally in
    every domain. *)

val signature : t -> int
(** 63-bit Bloom word of the membership (bit [id mod 63] per element):
    [subset a b] implies [subset_word (signature a) (signature b)], so a
    failed {!subset_word} test refutes subsumption without touching the
    words.  O(1): cached at interning time. *)

val subset_word : int -> int -> bool
(** [subset_word sa sb] over two {!signature} words: [false] proves the
    first environment is not a subset of the second; [true] is only a
    maybe. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** Prints as [{a, b, c}] using the naming function. *)
